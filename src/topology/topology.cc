#include "topology/topology.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace astra {

const char *
blockShortName(BlockType t)
{
    switch (t) {
      case BlockType::Ring: return "R";
      case BlockType::FullyConnected: return "FC";
      case BlockType::Switch: return "SW";
    }
    return "?";
}

const char *
blockLongName(BlockType t)
{
    switch (t) {
      case BlockType::Ring: return "Ring";
      case BlockType::FullyConnected: return "FullyConnected";
      case BlockType::Switch: return "Switch";
    }
    return "?";
}

Topology::Topology(std::vector<Dimension> dims) : dims_(std::move(dims))
{
    ASTRA_USER_CHECK(!dims_.empty(), "topology needs at least 1 dimension");
    stride_.resize(dims_.size());
    for (size_t d = 0; d < dims_.size(); ++d) {
        ASTRA_USER_CHECK(dims_[d].size >= 1,
                         "dimension %zu has invalid size %d", d + 1,
                         dims_[d].size);
        ASTRA_USER_CHECK(dims_[d].bandwidth > 0.0,
                         "dimension %zu has non-positive bandwidth", d + 1);
        ASTRA_USER_CHECK(dims_[d].latency >= 0.0,
                         "dimension %zu has negative latency", d + 1);
        stride_[d] = npus_;
        npus_ *= dims_[d].size;
    }
}

const Dimension &
Topology::dim(int d) const
{
    ASTRA_ASSERT(d >= 0 && d < numDims(), "dimension index %d out of range",
                 d);
    return dims_[static_cast<size_t>(d)];
}

std::vector<int>
Topology::coordsOf(NpuId id) const
{
    ASTRA_ASSERT(id >= 0 && id < npus_, "NPU id %d out of range", id);
    std::vector<int> coords(dims_.size());
    int rest = id;
    for (size_t d = 0; d < dims_.size(); ++d) {
        coords[d] = rest % dims_[d].size;
        rest /= dims_[d].size;
    }
    return coords;
}

NpuId
Topology::idOf(const std::vector<int> &coords) const
{
    ASTRA_ASSERT(coords.size() == dims_.size(),
                 "coordinate arity %zu != dims %zu", coords.size(),
                 dims_.size());
    NpuId id = 0;
    for (size_t d = 0; d < dims_.size(); ++d) {
        ASTRA_ASSERT(coords[d] >= 0 && coords[d] < dims_[d].size,
                     "coordinate %d out of range in dim %zu", coords[d],
                     d + 1);
        id += coords[d] * stride_[d];
    }
    return id;
}

int
Topology::strideOf(int d) const
{
    ASTRA_ASSERT(d >= 0 && d < numDims(), "dim %d out of range", d);
    return stride_[static_cast<size_t>(d)];
}

int
Topology::coordInDim(NpuId id, int d) const
{
    ASTRA_ASSERT(id >= 0 && id < npus_, "NPU id %d out of range", id);
    ASTRA_ASSERT(d >= 0 && d < numDims(), "dim %d out of range", d);
    return (id / stride_[d]) % dims_[d].size;
}

std::vector<NpuId>
Topology::groupInDim(NpuId id, int d) const
{
    ASTRA_ASSERT(d >= 0 && d < numDims(), "dim %d out of range", d);
    int base = id - coordInDim(id, d) * stride_[d];
    std::vector<NpuId> group;
    group.reserve(static_cast<size_t>(dims_[d].size));
    for (int i = 0; i < dims_[d].size; ++i)
        group.push_back(base + i * stride_[d]);
    return group;
}

NpuId
Topology::peerInDim(NpuId id, int d, int offset) const
{
    int k = dim(d).size;
    int coord = coordInDim(id, d);
    int peer_coord = ((coord + offset) % k + k) % k;
    return id + (peer_coord - coord) * stride_[d];
}

int
Topology::hopsInDim(int coord_a, int coord_b, int d) const
{
    if (coord_a == coord_b)
        return 0;
    switch (dim(d).type) {
      case BlockType::Ring: {
        int k = dim(d).size;
        int fwd = ((coord_b - coord_a) % k + k) % k;
        return std::min(fwd, k - fwd);
      }
      case BlockType::FullyConnected:
        return 1;
      case BlockType::Switch:
        return 2;
    }
    return 0;
}

int
Topology::hopsBetween(NpuId a, NpuId b) const
{
    int hops = 0;
    for (int d = 0; d < numDims(); ++d)
        hops += hopsInDim(coordInDim(a, d), coordInDim(b, d), d);
    return hops;
}

GroupDim
Topology::normalizeGroup(const GroupDim &g) const
{
    ASTRA_USER_CHECK(g.dim >= 0 && g.dim < numDims(),
                     "group dimension %d out of range", g.dim);
    GroupDim out = g;
    int k = dim(g.dim).size;
    if (out.size == 0)
        out.size = k;
    ASTRA_USER_CHECK(out.stride >= 1, "group stride must be >= 1");
    ASTRA_USER_CHECK(out.size >= 1 && out.size <= k,
                     "group size %d does not fit dimension of size %d",
                     out.size, k);
    ASTRA_USER_CHECK(k % (out.size * out.stride) == 0 || out.size == k,
                     "group (size=%d, stride=%d) does not tile a "
                     "dimension of size %d",
                     out.size, out.stride, k);
    return out;
}

int
Topology::posInGroup(NpuId id, const GroupDim &g) const
{
    int coord = coordInDim(id, g.dim);
    return (coord / g.stride) % g.size;
}

NpuId
Topology::peerInGroup(NpuId id, const GroupDim &g, int offset) const
{
    int pos = posInGroup(id, g);
    int peer_pos = ((pos + offset) % g.size + g.size) % g.size;
    int coord_delta = (peer_pos - pos) * g.stride;
    return id + coord_delta * strideOf(g.dim);
}

NpuId
Topology::zeroGroup(NpuId id, const GroupDim &g) const
{
    int pos = posInGroup(id, g);
    return id - pos * g.stride * strideOf(g.dim);
}

std::string
Topology::shapeString() const
{
    std::string s;
    for (size_t d = 0; d < dims_.size(); ++d) {
        if (d)
            s += "_";
        s += std::to_string(dims_[d].size);
    }
    return s;
}

std::string
Topology::notation() const
{
    std::string s;
    for (size_t d = 0; d < dims_.size(); ++d) {
        if (d)
            s += "_";
        s += blockLongName(dims_[d].type);
        s += "(" + std::to_string(dims_[d].size) + ")";
    }
    return s;
}

GBps
Topology::totalBandwidthPerNpu() const
{
    GBps total = 0.0;
    for (const Dimension &d : dims_)
        total += d.bandwidth;
    return total;
}

} // namespace astra
