#include "topology/presets.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace astra {
namespace presets {

namespace {

Dimension
makeDim(BlockType type, int size, GBps bw, TimeNs lat = kDefaultLatency)
{
    Dimension d;
    d.type = type;
    d.size = size;
    d.bandwidth = bw;
    d.latency = lat;
    return d;
}

} // namespace

Topology
wafer1D(GBps bw, int npus)
{
    return Topology({makeDim(BlockType::Switch, npus, bw)});
}

Topology
wafer2D(int dim1, int dim2, GBps bw1, GBps bw2)
{
    return Topology({makeDim(BlockType::Switch, dim1, bw1),
                     makeDim(BlockType::Switch, dim2, bw2)});
}

Topology
conv3D()
{
    return Topology({makeDim(BlockType::Ring, 16, 200.0),
                     makeDim(BlockType::FullyConnected, 8, 100.0),
                     makeDim(BlockType::Switch, 4, 50.0)});
}

Topology
conv4D()
{
    return Topology({makeDim(BlockType::Ring, 2, 250.0),
                     makeDim(BlockType::FullyConnected, 8, 200.0),
                     makeDim(BlockType::Ring, 8, 100.0),
                     makeDim(BlockType::Switch, 4, 50.0)});
}

Topology
waferBaseline(int dim1, int dim4)
{
    return Topology({makeDim(BlockType::Ring, dim1, 1000.0),
                     makeDim(BlockType::FullyConnected, 8, 200.0),
                     makeDim(BlockType::Ring, 8, 100.0),
                     makeDim(BlockType::Switch, dim4, 50.0)});
}

Topology
dgx1(int nodes)
{
    return Topology({makeDim(BlockType::Ring, 4, 150.0),
                     makeDim(BlockType::Switch, nodes, 25.0)});
}

Topology
dgxA100(int nodes)
{
    return Topology({makeDim(BlockType::Switch, 8, 300.0),
                     makeDim(BlockType::Switch, nodes, 25.0)});
}

Topology
dgx2(int nodes)
{
    return Topology({makeDim(BlockType::Switch, 16, 150.0),
                     makeDim(BlockType::Switch, nodes, 12.5)});
}

Topology
tpuV2(int x, int y)
{
    return Topology({makeDim(BlockType::Ring, x, 62.5),
                     makeDim(BlockType::Ring, y, 62.5)});
}

Topology
tpuV4(int x, int y, int z)
{
    // 448 Gb/s inter-core interconnect per dimension (§III-B).
    return Topology({makeDim(BlockType::Ring, x, 56.0),
                     makeDim(BlockType::Ring, y, 56.0),
                     makeDim(BlockType::Ring, z, 56.0)});
}

Topology
dragonfly(int a, int b, int c)
{
    return Topology({makeDim(BlockType::FullyConnected, a, 100.0),
                     makeDim(BlockType::FullyConnected, b, 50.0),
                     makeDim(BlockType::FullyConnected, c, 25.0)});
}

Topology
habana(int nodes)
{
    return Topology({makeDim(BlockType::FullyConnected, 4, 100.0),
                     makeDim(BlockType::Switch, nodes, 25.0)});
}

Topology
metaZion(int nodes)
{
    return Topology({makeDim(BlockType::Ring, 4, 100.0),
                     makeDim(BlockType::Switch, nodes, 25.0)});
}

Topology
byName(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    if (n == "w1d-350")
        return wafer1D(350.0);
    if (n == "w1d-500")
        return wafer1D(500.0);
    if (n == "w1d-600")
        return wafer1D(600.0);
    if (n == "w2d")
        return wafer2D();
    if (n == "conv3d")
        return conv3D();
    if (n == "conv4d")
        return conv4D();
    if (n == "dgx1")
        return dgx1();
    if (n == "dgx2")
        return dgx2();
    if (n == "dgxa100")
        return dgxA100();
    if (n == "tpuv2" || n == "tpuv3")
        return tpuV2();
    if (n == "tpuv4")
        return tpuV4();
    if (n == "dragonfly")
        return dragonfly();
    if (n == "habana")
        return habana();
    if (n == "zion")
        return metaZion();
    fatal("unknown topology preset '%s'", name.c_str());
}

std::vector<std::string>
names()
{
    return {"w1d-350", "w1d-500", "w1d-600", "w2d",       "conv3d",
            "conv4d",  "dgx1",    "dgx2",    "dgxa100",   "tpuv2",
            "tpuv3",   "tpuv4",   "dragonfly", "habana",  "zion"};
}

} // namespace presets
} // namespace astra
