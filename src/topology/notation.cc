#include "topology/notation.h"

#include <cctype>

#include "common/logging.h"

namespace astra {

namespace {

std::string
lower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** Split "a_b_c" at top level (underscores never appear inside parens). */
std::vector<std::string>
splitDims(const std::string &text)
{
    std::vector<std::string> parts;
    std::string cur;
    int depth = 0;
    for (char c : text) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == '_' && depth == 0) {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

std::vector<std::string>
splitArgs(const std::string &inner)
{
    std::vector<std::string> args;
    std::string cur;
    for (char c : inner) {
        if (c == ',') {
            args.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    args.push_back(cur);
    return args;
}

double
parseNumber(const std::string &tok, const std::string &what)
{
    try {
        size_t used = 0;
        double v = std::stod(tok, &used);
        ASTRA_USER_CHECK(used == tok.size(),
                         "topology notation: bad %s '%s'", what.c_str(),
                         tok.c_str());
        return v;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("topology notation: bad %s '%s'", what.c_str(), tok.c_str());
    }
}

} // namespace

BlockType
parseBlockType(const std::string &name)
{
    std::string n = lower(name);
    if (n == "r" || n == "ring")
        return BlockType::Ring;
    if (n == "fc" || n == "fullyconnected")
        return BlockType::FullyConnected;
    if (n == "sw" || n == "switch")
        return BlockType::Switch;
    fatal("unknown topology building block '%s' "
          "(expected Ring/R, FullyConnected/FC, Switch/SW)",
          name.c_str());
}

Topology
parseTopology(const std::string &text, const std::vector<GBps> &bandwidths,
              const std::vector<TimeNs> &latencies)
{
    ASTRA_USER_CHECK(!text.empty(), "empty topology notation");
    std::vector<std::string> parts = splitDims(text);

    std::vector<Dimension> dims;
    for (const std::string &part : parts) {
        size_t open = part.find('(');
        size_t close = part.rfind(')');
        ASTRA_USER_CHECK(open != std::string::npos &&
                             close != std::string::npos && close > open,
                         "topology notation: malformed dimension '%s'",
                         part.c_str());
        Dimension dim;
        dim.type = parseBlockType(part.substr(0, open));
        std::vector<std::string> args =
            splitArgs(part.substr(open + 1, close - open - 1));
        ASTRA_USER_CHECK(args.size() >= 1 && args.size() <= 3,
                         "topology notation: dimension '%s' takes 1-3 "
                         "arguments (size[,bw_gbps[,latency_ns]])",
                         part.c_str());
        dim.size = static_cast<int>(parseNumber(args[0], "size"));
        ASTRA_USER_CHECK(dim.size >= 1,
                         "topology notation: size must be >= 1 in '%s'",
                         part.c_str());
        if (args.size() >= 2)
            dim.bandwidth = parseNumber(args[1], "bandwidth");
        if (args.size() >= 3)
            dim.latency = parseNumber(args[2], "latency");
        dims.push_back(dim);
    }

    auto apply = [&](auto &values, auto setter, const char *what) {
        if (values.empty())
            return;
        ASTRA_USER_CHECK(values.size() == dims.size(),
                         "%s override count %zu != dimension count %zu",
                         what, values.size(), dims.size());
        for (size_t d = 0; d < dims.size(); ++d)
            setter(dims[d], values[d]);
    };
    apply(bandwidths,
          [](Dimension &d, GBps bw) { d.bandwidth = bw; }, "bandwidth");
    apply(latencies,
          [](Dimension &d, TimeNs lat) { d.latency = lat; }, "latency");

    return Topology(std::move(dims));
}

} // namespace astra
