/**
 * @file
 * Parser for the hierarchical topology notation of §IV-B / Fig. 3(c).
 *
 * Grammar (case-insensitive block names, underscores between dims):
 *
 *   topology := dim ("_" dim)*
 *   dim      := block "(" k ["," bw_gbps ["," latency_ns]] ")"
 *   block    := "Ring" | "R" | "FullyConnected" | "FC" | "Switch" | "SW"
 *
 * Examples:
 *   "Ring(4)_Switch(2)"           — shapes only; caller supplies BW.
 *   "R(4,250)_SW(2,50)"           — per-dim bandwidth in GB/s.
 *   "FC(4,100,500)_FC(2,50,700)"  — plus per-hop latency in ns.
 */
#ifndef ASTRA_TOPOLOGY_NOTATION_H_
#define ASTRA_TOPOLOGY_NOTATION_H_

#include <string>
#include <vector>

#include "topology/topology.h"

namespace astra {

/**
 * Parse the topology notation.
 *
 * @param text        notation string (see grammar above).
 * @param bandwidths  optional per-dim BW (GB/s) overriding in-string
 *                    values; may be empty, or have one entry per dim.
 * @param latencies   optional per-dim per-hop latency (ns); same rules.
 */
Topology parseTopology(const std::string &text,
                       const std::vector<GBps> &bandwidths = {},
                       const std::vector<TimeNs> &latencies = {});

/** Parse just a block name ("R", "Ring", "fc", ...); fatal() if unknown. */
BlockType parseBlockType(const std::string &name);

} // namespace astra

#endif // ASTRA_TOPOLOGY_NOTATION_H_
