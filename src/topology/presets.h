/**
 * @file
 * Named topology presets: the Table II evaluation systems and the
 * Fig. 3(c) state-of-the-art platforms.
 *
 * Bandwidths are the per-NPU per-dimension figures from the paper
 * (Table II); platform presets use representative public numbers.
 */
#ifndef ASTRA_TOPOLOGY_PRESETS_H_
#define ASTRA_TOPOLOGY_PRESETS_H_

#include <string>
#include <vector>

#include "topology/topology.h"

namespace astra {
namespace presets {

/** Default per-hop link latency used by the presets (ns). */
constexpr TimeNs kDefaultLatency = 500.0;

/** W-1D: wafer-scale proxy, Switch(512) at `bw` GB/s (350/500/600). */
Topology wafer1D(GBps bw, int npus = 512);

/** W-2D: Switch(32)_Switch(16), 250_250 GB/s. */
Topology wafer2D(int dim1 = 32, int dim2 = 16, GBps bw1 = 250.0,
                 GBps bw2 = 250.0);

/** Conv-3D: Ring(16)_FC(8)_Switch(4), 200_100_50 GB/s. */
Topology conv3D();

/** Conv-4D: Ring(2)_FC(8)_Ring(8)_Switch(4), 250_200_100_50 GB/s. */
Topology conv4D();

/**
 * The Table IV baseline: Conv-4D with dim-1 bandwidth raised to
 * 1000 GB/s to model the on-wafer dimension, shape d1_8_8_d4.
 */
Topology waferBaseline(int dim1 = 2, int dim4 = 4);

/** NVIDIA DGX-1: Ring(4)_Switch(n) (hybrid-cube-mesh reduced). */
Topology dgx1(int nodes = 2);

/** NVIDIA DGX-A100 / DGX-2: Switch(8/16 NVSwitch)_Switch(n IB). */
Topology dgxA100(int nodes = 2);
Topology dgx2(int nodes = 2);

/** Google TPUv2/v3: 2-D torus Ring(x)_Ring(y). */
Topology tpuV2(int x = 4, int y = 2);

/** Google TPUv4: 3-D torus Ring(x)_Ring(y)_Ring(z). */
Topology tpuV4(int x = 4, int y = 2, int z = 2);

/** Fully-populated DragonFly: FC(a)_FC(b)_FC(c). */
Topology dragonfly(int a = 4, int b = 2, int c = 2);

/** Intel Habana: FC(4)_Switch(n). */
Topology habana(int nodes = 2);

/** Meta Zion: Ring(4)_Switch(n). */
Topology metaZion(int nodes = 2);

/** Lookup by name (case-insensitive); fatal() on unknown names.
 *  Names: w1d-350, w1d-500, w1d-600, w2d, conv3d, conv4d, dgx1, dgx2,
 *  dgxa100, tpuv2, tpuv3, tpuv4, dragonfly, habana, zion. */
Topology byName(const std::string &name);

/** All preset names (for help text and tests). */
std::vector<std::string> names();

} // namespace presets
} // namespace astra

#endif // ASTRA_TOPOLOGY_PRESETS_H_
