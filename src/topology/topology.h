/**
 * @file
 * Multi-dimensional hierarchical network topology representation
 * (paper §IV-B, Fig. 3).
 *
 * A topology is an ordered stack of building blocks. Dimension 1 (index
 * 0 here) is the innermost/fastest dimension (e.g., on-wafer or NVLink),
 * the last dimension is the outermost scale-out network (e.g., NIC).
 * NPU ids map to mixed-radix coordinates with dimension 0 varying
 * fastest, exactly like the `R(4)_SW(2)` notation in the paper: NPU id
 * = c0 + k0*(c1 + k1*(c2 + ...)).
 */
#ifndef ASTRA_TOPOLOGY_TOPOLOGY_H_
#define ASTRA_TOPOLOGY_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace astra {

/** NPU identifier (dense, 0-based). */
using NpuId = int;

/** The three hierarchical building blocks of Fig. 3(a). */
enum class BlockType {
    Ring,           //!< Ring(k): two neighbours per NPU.
    FullyConnected, //!< FullyConnected(k): all-to-all links.
    Switch,         //!< Switch(k): external switch fabric.
};

/** Short and long printable names ("R"/"Ring"). */
const char *blockShortName(BlockType t);
const char *blockLongName(BlockType t);

/**
 * A collective group factor within one topology dimension.
 *
 * Most collectives span whole dimensions (`size == dimension size`,
 * `stride == 1`). Parallelization strategies mapped onto flat (e.g.,
 * wafer-scale) topologies need sub-groups of a dimension: `size`
 * members spaced `stride` apart in the dimension's coordinate space.
 * E.g., on Switch(512), model-parallel groups of 16 are
 * {dim=0, size=16, stride=1} and the matching data-parallel groups of
 * 32 are {dim=0, size=32, stride=16}.
 */
struct GroupDim
{
    int dim = 0;    //!< topology dimension index.
    int size = 0;   //!< members per group (0 = whole dimension).
    int stride = 1; //!< coordinate spacing between members.
};

/**
 * One network dimension: a building block plus its link parameters.
 *
 * `bandwidth` is the per-NPU aggregate bandwidth available in this
 * dimension (the BW/NPU figures of Table II). `latency` is the per-hop
 * link latency.
 */
struct Dimension
{
    BlockType type = BlockType::Ring;
    int size = 1;             //!< k: NPUs per instance of this block.
    GBps bandwidth = 100.0;   //!< per-NPU aggregate bandwidth, GB/s.
    TimeNs latency = 500.0;   //!< per-hop link latency, ns.
};

/**
 * An N-dimensional hierarchical topology assembled from building
 * blocks (the "multi-dimensional topology assembler" of Fig. 3(b)).
 */
class Topology
{
  public:
    /** Build from explicit dimensions; fatal() on invalid sizes. */
    explicit Topology(std::vector<Dimension> dims);

    int numDims() const { return static_cast<int>(dims_.size()); }
    const Dimension &dim(int d) const;
    const std::vector<Dimension> &dims() const { return dims_; }

    /** Total number of NPUs (product of dimension sizes). */
    int npus() const { return npus_; }

    /** Mixed-radix coordinates of `id`, dimension 0 first. */
    std::vector<int> coordsOf(NpuId id) const;

    /** Inverse of coordsOf(). */
    NpuId idOf(const std::vector<int> &coords) const;

    /** Coordinate of `id` within dimension `d`. */
    int coordInDim(NpuId id, int d) const;

    /** NPU-id delta corresponding to one step along dimension `d`. */
    int strideOf(int d) const;

    /**
     * The NPUs forming `id`'s collective group in dimension `d`: all
     * NPUs sharing every coordinate except dimension `d`, ordered by
     * their dim-`d` coordinate (so group[i] has coordinate i).
     */
    std::vector<NpuId> groupInDim(NpuId id, int d) const;

    /** Peer reached by moving `offset` steps along dimension `d`
     *  (wrapping modulo the dimension size). */
    NpuId peerInDim(NpuId id, int d, int offset) const;

    /**
     * Hop count between two NPUs in dimension `d` under the block's
     * native routing: Ring = minimal ring distance, FullyConnected = 1,
     * Switch = 2 (NPU-switch-NPU). Returns 0 for the same coordinate.
     */
    int hopsInDim(int coord_a, int coord_b, int d) const;

    /**
     * Total hop count of dimension-ordered routing between two NPUs
     * (sum of per-dimension hops).
     */
    int hopsBetween(NpuId a, NpuId b) const;

    /** Normalize and validate a group factor; fatal() on user error
     *  (size/stride must tile the dimension). size==0 expands to the
     *  whole dimension. */
    GroupDim normalizeGroup(const GroupDim &g) const;

    /** Position of `id` within its group under factor `g`. */
    int posInGroup(NpuId id, const GroupDim &g) const;

    /** Member of `id`'s group `offset` positions away (wrapping). */
    NpuId peerInGroup(NpuId id, const GroupDim &g, int offset) const;

    /** `id` with its position under `g` zeroed (group's canonical
     *  representative; equal for all members of the same group). */
    NpuId zeroGroup(NpuId id, const GroupDim &g) const;

    /** Shape string, e.g. "2_8_8_4". */
    std::string shapeString() const;

    /** Full notation, e.g. "Ring(2)_FullyConnected(8)_Switch(4)". */
    std::string notation() const;

    /** Aggregate per-NPU injection bandwidth (sum over dimensions). */
    GBps totalBandwidthPerNpu() const;

  private:
    std::vector<Dimension> dims_;
    std::vector<int> stride_; //!< stride_[d]: id delta per unit of dim d.
    int npus_ = 1;
};

} // namespace astra

#endif // ASTRA_TOPOLOGY_TOPOLOGY_H_
