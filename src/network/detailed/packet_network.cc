#include "network/detailed/packet_network.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace astra {

namespace {

uint64_t
linkKey(int from, int to)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
}

} // namespace

PacketNetwork::PacketNetwork(EventQueue &eq, const Topology &topo,
                             Bytes packet_bytes, Bytes header_bytes,
                             TimeNs message_overhead)
    : NetworkApi(eq, topo), packetBytes_(packet_bytes),
      headerBytes_(header_bytes), messageOverhead_(message_overhead)
{
    ASTRA_USER_CHECK(packet_bytes > 0.0, "packet size must be positive");
    ASTRA_USER_CHECK(header_bytes >= 0.0 && message_overhead >= 0.0,
                     "packet overheads must be non-negative");

    // Assign switch node ids after the NPU ids.
    totalNodes_ = topo.npus();
    switchBase_.assign(static_cast<size_t>(topo.numDims()), -1);
    for (int d = 0; d < topo.numDims(); ++d) {
        if (topo.dim(d).type == BlockType::Switch) {
            switchBase_[static_cast<size_t>(d)] = totalNodes_;
            totalNodes_ += topo.npus() / topo.dim(d).size;
        }
    }

    // Build links dimension by dimension.
    for (int d = 0; d < topo.numDims(); ++d) {
        const Dimension &dim = topo.dim(d);
        if (dim.size < 2)
            continue;
        switch (dim.type) {
          case BlockType::Ring:
            for (NpuId npu = 0; npu < topo.npus(); ++npu) {
                NpuId next = topo.peerInDim(npu, d, 1);
                if (next != npu) {
                    addLink(npu, next, dim.bandwidth, dim.latency);
                    addLink(next, npu, dim.bandwidth, dim.latency);
                }
            }
            break;
          case BlockType::FullyConnected: {
            GBps per_link = dim.bandwidth / double(dim.size - 1);
            for (NpuId npu = 0; npu < topo.npus(); ++npu) {
                int coord = topo.coordInDim(npu, d);
                for (int pc = coord + 1; pc < dim.size; ++pc) {
                    NpuId peer = topo.peerInDim(npu, d, pc - coord);
                    addLink(npu, peer, per_link, dim.latency);
                    addLink(peer, npu, per_link, dim.latency);
                }
            }
            break;
          }
          case BlockType::Switch:
            for (NpuId npu = 0; npu < topo.npus(); ++npu) {
                int sw = switchNode(d, groupIndexOf(d, npu));
                addLink(npu, sw, dim.bandwidth, dim.latency);
                addLink(sw, npu, dim.bandwidth, dim.latency);
            }
            break;
        }
    }
}

int
PacketNetwork::groupIndexOf(int dim, NpuId member) const
{
    // Remove dimension `dim` from the mixed-radix id: the remaining
    // digits enumerate the dimension's groups densely, in ascending
    // order of the group's smallest member id.
    int stride = topo_.strideOf(dim);
    int k = topo_.dim(dim).size;
    int low = member % stride;
    int high = member / (stride * k);
    return low + high * stride;
}

int
PacketNetwork::switchNode(int dim, int group_index) const
{
    int base = switchBase_[static_cast<size_t>(dim)];
    ASTRA_ASSERT(base >= 0, "dimension %d has no switch nodes", dim);
    return base + group_index;
}

void
PacketNetwork::addLink(int from, int to, GBps bw, TimeNs lat)
{
    Link &link = links_[linkKey(from, to)];
    link.bandwidth = bw;
    link.latency = lat;
    link.freeAt = 0.0;
}

PacketNetwork::Link &
PacketNetwork::linkBetween(int from, int to)
{
    auto it = links_.find(linkKey(from, to));
    ASTRA_ASSERT(it != links_.end(), "no link between nodes %d and %d",
                 from, to);
    return it->second;
}

void
PacketNetwork::routeInDim(int dim, NpuId from, NpuId to,
                          std::vector<int> &path) const
{
    int ca = topo_.coordInDim(from, dim);
    int cb = topo_.coordInDim(to, dim);
    if (ca == cb)
        return;
    const Dimension &d = topo_.dim(dim);
    switch (d.type) {
      case BlockType::Ring: {
        int k = d.size;
        int fwd = ((cb - ca) % k + k) % k;
        int step = (fwd <= k - fwd) ? 1 : -1;
        int hops = std::min(fwd, k - fwd);
        NpuId cur = from;
        for (int i = 0; i < hops; ++i) {
            cur = topo_.peerInDim(cur, dim, step);
            path.push_back(cur);
        }
        break;
      }
      case BlockType::FullyConnected:
        path.push_back(topo_.peerInDim(from, dim, cb - ca));
        break;
      case BlockType::Switch:
        path.push_back(switchNode(dim, groupIndexOf(dim, from)));
        path.push_back(topo_.peerInDim(from, dim, cb - ca));
        break;
    }
}

std::vector<int>
PacketNetwork::route(NpuId src, NpuId dst, int dim) const
{
    std::vector<int> path;
    path.push_back(src);
    if (dim != kAutoRoute) {
        routeInDim(dim, src, dst, path);
        ASTRA_ASSERT(path.back() == dst,
                     "dim %d does not connect NPUs %d and %d", dim, src,
                     dst);
        return path;
    }
    NpuId cur = src;
    for (int d = 0; d < topo_.numDims(); ++d) {
        int target_coord = topo_.coordInDim(dst, d);
        int cur_coord = topo_.coordInDim(cur, d);
        if (target_coord == cur_coord)
            continue;
        NpuId next = cur + (target_coord - cur_coord) * topo_.strideOf(d);
        routeInDim(d, cur, next, path);
        cur = next;
    }
    ASTRA_ASSERT(path.back() == dst,
                 "routing failed between %d and %d", src, dst);
    return path;
}

const std::vector<int> *
PacketNetwork::routeFor(NpuId src, NpuId dst, int dim)
{
    // Pack (src, dst, dim) into one key; node ids stay well below
    // 2^28 and dim is a small non-negative index or kAutoRoute (-1).
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(src))
                    << 36) |
                   (static_cast<uint64_t>(static_cast<uint32_t>(dst))
                    << 8) |
                   static_cast<uint8_t>(dim + 1);
    auto it = routeCache_.find(key);
    if (it == routeCache_.end())
        it = routeCache_.emplace(key, route(src, dst, dim)).first;
    return &it->second;
}

void
PacketNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                       uint64_t tag, SendHandlers handlers)
{
    if (src == dst) {
        eq_.schedule(0.0, [this, src, dst, tag,
                           handlers = std::move(handlers)]() mutable {
            if (handlers.onInjected)
                handlers.onInjected();
            deliver(src, dst, tag, std::move(handlers.onDelivered));
        });
        return;
    }

    const std::vector<int> *path = routeFor(src, dst, dim);
    int packets =
        std::max(1, static_cast<int>(std::ceil(bytes / packetBytes_)));

    // Stats: attribute payload to the first dimension the path crosses.
    int first_dim = dim;
    if (first_dim == kAutoRoute) {
        for (int d = 0; d < topo_.numDims(); ++d) {
            if (topo_.coordInDim(src, d) != topo_.coordInDim(dst, d)) {
                first_dim = d;
                break;
            }
        }
    }
    account(first_dim, bytes);

    EventCallback on_injected = std::move(handlers.onInjected);

    uint64_t id = allocMessage();
    Message &msg = messageFor(id);
    msg.src = src;
    msg.dst = dst;
    msg.tag = tag;
    msg.packetsRemaining = packets;
    msg.handlers.onDelivered = std::move(handlers.onDelivered);

    if (messageOverhead_ > 0.0) {
        // Software/NIC launch cost before the first packet enters the
        // network.
        eq_.schedule(messageOverhead_,
                     [this, id, path, bytes, packets,
                      on_injected = std::move(on_injected)]() mutable {
                         launchMessage(id, path, bytes, packets,
                                       std::move(on_injected));
                     });
    } else {
        launchMessage(id, path, bytes, packets, std::move(on_injected));
    }
}

void
PacketNetwork::launchMessage(uint64_t msg_id, const std::vector<int> *path,
                             Bytes bytes, int packets,
                             EventCallback on_injected)
{
    Bytes remaining = bytes;
    for (int p = 0; p < packets; ++p) {
        Bytes pkt = std::min(packetBytes_, remaining);
        remaining -= pkt;
        forwardPacket(msg_id, path, 0, pkt);
    }

    if (on_injected) {
        // Injection completes when the last packet clears the first link.
        Link &first = linkBetween((*path)[0], (*path)[1]);
        eq_.scheduleAt(first.freeAt, std::move(on_injected));
    }
}

void
PacketNetwork::forwardPacket(uint64_t msg_id, const std::vector<int> *path,
                             size_t hop, Bytes pkt_bytes)
{
    if (hop + 1 >= path->size()) {
        packetArrived(msg_id);
        return;
    }
    Link &link = linkBetween((*path)[hop], (*path)[hop + 1]);
    TimeNs start = std::max(eq_.now(), link.freeAt);
    TimeNs tx_done =
        start + txTime(pkt_bytes + headerBytes_, link.bandwidth);
    link.freeAt = tx_done;
    // [this, id, ptr, 2 words]: inline in InlineEvent — the per-hop
    // closure chain performs no allocation at all.
    eq_.scheduleAt(tx_done + link.latency,
                   [this, msg_id, path, hop, pkt_bytes]() {
                       forwardPacket(msg_id, path, hop + 1, pkt_bytes);
                   });
}

uint64_t
PacketNetwork::allocMessage()
{
    uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<uint32_t>(messages_.size());
        messages_.emplace_back();
    }
    Message &msg = messages_[slot];
    ++msg.gen; // ids of the slot's previous lives go stale.
    return static_cast<uint64_t>(slot) |
           (static_cast<uint64_t>(msg.gen) << 32);
}

PacketNetwork::Message &
PacketNetwork::messageFor(uint64_t msg_id)
{
    uint32_t slot = static_cast<uint32_t>(msg_id);
    uint32_t gen = static_cast<uint32_t>(msg_id >> 32);
    ASTRA_ASSERT(slot < messages_.size(), "message slot out of range");
    Message &msg = messages_[slot];
    ASTRA_ASSERT(msg.gen == gen, "stale message id (slot recycled)");
    return msg;
}

void
PacketNetwork::releaseMessage(Message &msg)
{
    uint32_t slot = static_cast<uint32_t>(&msg - messages_.data());
    msg.handlers = SendHandlers{};
    freeSlots_.push_back(slot);
}

void
PacketNetwork::packetArrived(uint64_t msg_id)
{
    Message &msg = messageFor(msg_id);
    ASTRA_ASSERT(msg.packetsRemaining > 0, "arrival on idle message slot");
    if (--msg.packetsRemaining > 0)
        return;
    // Pull the completion handler out before recycling the slot: the
    // deliver() chain may send again and reuse it immediately.
    NpuId src = msg.src;
    NpuId dst = msg.dst;
    uint64_t tag = msg.tag;
    EventCallback on_delivered = std::move(msg.handlers.onDelivered);
    releaseMessage(msg);
    deliver(src, dst, tag, std::move(on_delivered));
}

} // namespace astra
