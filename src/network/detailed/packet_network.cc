#include "network/detailed/packet_network.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "trace/tracer.h"

namespace astra {

PacketNetwork::PacketNetwork(EventQueue &eq, const Topology &topo,
                             Bytes packet_bytes, Bytes header_bytes,
                             TimeNs message_overhead)
    : NetworkApi(eq, topo), graph_(topo), packetBytes_(packet_bytes),
      headerBytes_(header_bytes), messageOverhead_(message_overhead)
{
    ASTRA_USER_CHECK(packet_bytes > 0.0, "packet size must be positive");
    ASTRA_USER_CHECK(header_bytes >= 0.0 && message_overhead >= 0.0,
                     "packet overheads must be non-negative");
    ports_.assign(graph_.linkCount(), PortState{});
    portScale_.assign(graph_.linkCount(), 1.0);
    portUp_.assign(graph_.linkCount(), 1);
    stats_.linksPerDim = graph_.linksPerDim();
}

void
PacketNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                       uint64_t tag, SendHandlers handlers)
{
    if (src == dst) {
        deliverLoopback(src, tag, std::move(handlers));
        return;
    }

    const std::vector<LinkId> *path = graph_.pathFor(src, dst, dim);
    int packets =
        std::max(1, static_cast<int>(std::ceil(bytes / packetBytes_)));
    account(accountDim(src, dst, dim), bytes);

    EventCallback on_injected = std::move(handlers.onInjected);

    uint64_t id = messages_.claim();
    Message &msg = messages_.get(id);
    msg.src = src;
    msg.dst = dst;
    msg.tag = tag;
    msg.dim = dim;
    msg.packetsRemaining = packets;
    msg.traceStart = eq_.now();
    msg.handlers.onDelivered = std::move(handlers.onDelivered);
    msg.owner = sendOwner_;

    if (messageOverhead_ > 0.0) {
        // Software/NIC launch cost before the first packet enters the
        // network.
        eq_.schedule(messageOverhead_,
                     [this, id, path, bytes, packets,
                      on_injected = std::move(on_injected)]() mutable {
                         launchMessage(id, path, bytes, packets,
                                       std::move(on_injected));
                     });
    } else {
        launchMessage(id, path, bytes, packets, std::move(on_injected));
    }
}

void
PacketNetwork::launchMessage(uint64_t msg_id,
                             const std::vector<LinkId> *path,
                             Bytes bytes, int packets,
                             EventCallback on_injected)
{
    Bytes remaining = bytes;
    for (int p = 0; p < packets; ++p) {
        Bytes pkt = std::min(packetBytes_, remaining);
        remaining -= pkt;
        forwardPacket(msg_id, path, 0, pkt);
    }

    if (on_injected) {
        // Injection completes when the last packet clears the first
        // link. The max() only matters when the first hop is down and
        // its freeAt is stale: the packets are parked, and injection
        // reports complete now (async NIC, unbounded egress queue).
        eq_.scheduleAt(std::max(eq_.now(), ports_[(*path)[0]].freeAt),
                       std::move(on_injected));
    }
}

void
PacketNetwork::forwardPacket(uint64_t msg_id,
                             const std::vector<LinkId> *path,
                             size_t hop, Bytes pkt_bytes)
{
    if (hop >= path->size()) {
        packetArrived(msg_id);
        return;
    }
    LinkId lid = (*path)[hop];
    if (!portUp_[lid]) {
        // Down link: park in FIFO order; setLinkUp(true) re-issues.
        parked_[lid].push_back(ParkedPacket{msg_id, path, hop, pkt_bytes});
        return;
    }
    const LinkGraph::Link &link = graph_.link(lid);
    PortState &port = ports_[lid];
    TimeNs start = std::max(eq_.now(), port.freeAt);
    TimeNs tx = txTime(pkt_bytes + headerBytes_,
                       link.bandwidth * portScale_[lid]);
    TimeNs tx_done = start + tx;
    port.freeAt = tx_done;
    port.busyNs += tx;
    accountBusy(link.dim, tx, port.busyNs);
    if (tracer_)
        tracer_->linkBusy(lid, start, tx_done);
    if (Message *msg = messages_.find(msg_id); msg && msg->owner)
        (*msg->owner)[static_cast<size_t>(link.dim)] += tx;
    // [this, id, ptr, 2 words]: inline in InlineEvent — the per-hop
    // closure chain performs no allocation at all.
    eq_.scheduleAt(tx_done + link.latency,
                   [this, msg_id, path, hop, pkt_bytes]() {
                       forwardPacket(msg_id, path, hop + 1, pkt_bytes);
                   });
}

void
PacketNetwork::setLinkCapacityScale(NpuId src, NpuId dst, int dim,
                                    double scale)
{
    ASTRA_USER_CHECK(scale > 0.0 && std::isfinite(scale),
                     "link capacity scale must be > 0 and finite "
                     "(take the link down for a full outage)");
    for (LinkId l : graph_.faultLinks(src, dst, dim))
        portScale_[l] = scale;
}

void
PacketNetwork::setLinkUp(NpuId src, NpuId dst, int dim, bool up)
{
    std::vector<LinkId> links = graph_.faultLinks(src, dst, dim);
    for (LinkId l : links)
        portUp_[l] = up ? 1 : 0;
    if (!up)
        return;
    // Release each restored link's parking lot in FIFO order (links
    // themselves in selector order — deterministic either way, since
    // re-issue serializes per port from `now`).
    for (LinkId l : links) {
        auto it = parked_.find(l);
        if (it == parked_.end())
            continue;
        std::vector<ParkedPacket> lot = std::move(it->second);
        parked_.erase(it);
        for (const ParkedPacket &p : lot)
            forwardPacket(p.msgId, p.path, p.hop, p.bytes);
    }
}

void
PacketNetwork::packetArrived(uint64_t msg_id)
{
    Message &msg = messages_.get(msg_id);
    ASTRA_ASSERT(msg.packetsRemaining > 0, "arrival on idle message slot");
    if (--msg.packetsRemaining > 0)
        return;
    // Pull the completion handler out before recycling the slot: the
    // deliver() chain may send again and reuse it immediately.
    NpuId src = msg.src;
    NpuId dst = msg.dst;
    uint64_t tag = msg.tag;
    if (tracer_ && tracer_->full())
        tracer_->span(0, int32_t(src), "net", "msg %lld->%lld d%d",
                      msg.traceStart, eq_.now() - msg.traceStart,
                      (long long)src, (long long)dst, msg.dim);
    EventCallback on_delivered = std::move(msg.handlers.onDelivered);
    msg.handlers = SendHandlers{};
    messages_.release(msg_id);
    deliver(src, dst, tag, std::move(on_delivered));
}

size_t
PacketNetwork::bytesInUse() const
{
    constexpr size_t kNodeOverhead = 4 * sizeof(void *);
    size_t bytes = NetworkApi::bytesInUse() + graph_.bytesInUse() +
                   messages_.bytesInUse() +
                   ports_.capacity() * sizeof(PortState) +
                   portScale_.capacity() * sizeof(double) +
                   portUp_.capacity() * sizeof(uint8_t);
    for (const auto &[link, lot] : parked_) {
        (void)link;
        bytes += sizeof(LinkId) + kNodeOverhead +
                 lot.capacity() * sizeof(ParkedPacket);
    }
    return bytes;
}

void
PacketNetwork::setTracer(trace::Tracer *tracer)
{
    NetworkApi::setTracer(tracer);
    if (!tracer)
        return;
    for (LinkId l = 0; l < graph_.linkCount(); ++l) {
        const LinkGraph::Link &link = graph_.link(l);
        tracer->registerLink(l, detail::formatV("d%d %d->%d", link.dim,
                                                link.from, link.to));
    }
}

} // namespace astra
