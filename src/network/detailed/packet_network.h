/**
 * @file
 * Packet-level store-and-forward network backend.
 *
 * This is the "detailed" reference backend standing in for both the
 * Garnet (gem5) backend and the real NCCL/V100 testbed of the paper's
 * Fig. 4 validation: it does not apply the analytical closed form but
 * simulates every message as a train of packets crossing explicit
 * links with FIFO serialization, per-hop latency, and contention.
 *
 * Graph construction from the Topology:
 *  - Ring dims contribute bidirectional neighbour links at the full
 *    per-NPU dimension bandwidth (matching the counter-rotating-ring
 *    aggregate convention of the analytical backend).
 *  - FullyConnected dims contribute a link per NPU pair at
 *    bandwidth/(k-1) each.
 *  - Switch dims contribute an explicit switch node per group with
 *    up/down links at the dimension bandwidth.
 *
 * Routing is dimension-ordered; within a Ring dimension packets take
 * the minimal direction through intermediate NPUs (store-and-forward).
 */
#ifndef ASTRA_NETWORK_DETAILED_PACKET_NETWORK_H_
#define ASTRA_NETWORK_DETAILED_PACKET_NETWORK_H_

#include <unordered_map>
#include <vector>

#include "network/network_api.h"

namespace astra {

/** Detailed packet-level backend (see file comment). */
class PacketNetwork : public NetworkApi
{
  public:
    /**
     * @param packet_bytes     maximum packet payload; messages are
     *                         split into ceil(bytes / packet_bytes)
     *                         packets.
     * @param header_bytes     per-packet protocol header serialized
     *                         along with the payload (the closed-form
     *                         backend ignores it).
     * @param message_overhead fixed software/NIC launch latency per
     *                         message before the first packet enters
     *                         the network.
     */
    PacketNetwork(EventQueue &eq, const Topology &topo,
                  Bytes packet_bytes = 4096.0, Bytes header_bytes = 0.0,
                  TimeNs message_overhead = 0.0);

    void simSend(NpuId src, NpuId dst, Bytes bytes, int dim, uint64_t tag,
                 SendHandlers handlers) override;

    /** Number of directed links in the constructed graph. */
    size_t linkCount() const { return links_.size(); }

    /** Message slots currently allocated (live + recyclable); exposed
     *  so tests can verify free-list recycling. */
    size_t messageSlots() const { return messages_.size(); }

    Bytes packetBytes() const { return packetBytes_; }

  private:
    struct Link
    {
        GBps bandwidth = 1.0;
        TimeNs latency = 0.0;
        TimeNs freeAt = 0.0;
    };

    /**
     * In-flight message bookkeeping in flat slot storage (free list +
     * generation ids, mirroring CollectiveEngine's instance slots):
     * message ids are `slot | (generation << 32)`, so the per-packet
     * arrival path is one array indexing instead of a hash lookup, and
     * a stale id (message already delivered, slot recycled) is still
     * detected by the generation check.
     */
    struct Message
    {
        NpuId src = 0;
        NpuId dst = 0;
        uint64_t tag = 0;
        int packetsRemaining = 0; //!< 0 while the slot is free.
        uint32_t gen = 0;
        SendHandlers handlers;
    };

    /** Dense node numbering: NPUs first, then switch nodes. */
    int switchNode(int dim, int group_index) const;

    /** Dense index of `member`'s group within dimension `dim`. */
    int groupIndexOf(int dim, NpuId member) const;

    void addLink(int from, int to, GBps bw, TimeNs lat);
    Link &linkBetween(int from, int to);

    /** Node path (including src and dst) for a message. */
    std::vector<int> route(NpuId src, NpuId dst, int dim) const;

    /**
     * Cached route lookup. The topology (and hence every route) is
     * immutable, so each (src, dst, dim) path is computed once; the
     * returned pointer is stable (unordered_map values do not move on
     * rehash) and in-flight packets hold it directly, replacing the
     * per-message shared_ptr allocation of the old path handling.
     */
    const std::vector<int> *routeFor(NpuId src, NpuId dst, int dim);

    /** Route contribution of a single dimension, appended to `path`. */
    void routeInDim(int dim, NpuId from, NpuId to,
                    std::vector<int> &path) const;

    void launchMessage(uint64_t msg_id, const std::vector<int> *path,
                       Bytes bytes, int packets,
                       EventCallback on_injected);
    void forwardPacket(uint64_t msg_id, const std::vector<int> *path,
                       size_t hop, Bytes pkt_bytes);
    void packetArrived(uint64_t msg_id);

    /** Claim a message slot; returns its id (slot | gen << 32). */
    uint64_t allocMessage();
    Message &messageFor(uint64_t msg_id);
    void releaseMessage(Message &msg);

    Bytes packetBytes_;
    Bytes headerBytes_;
    TimeNs messageOverhead_;
    int totalNodes_ = 0;
    std::vector<int> switchBase_; //!< per-dim base index of switch nodes.
    std::unordered_map<uint64_t, Link> links_;
    std::unordered_map<uint64_t, std::vector<int>> routeCache_;
    std::vector<Message> messages_;   //!< slot-indexed, recycled.
    std::vector<uint32_t> freeSlots_;
};

} // namespace astra

#endif // ASTRA_NETWORK_DETAILED_PACKET_NETWORK_H_
