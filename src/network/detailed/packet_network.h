/**
 * @file
 * Packet-level store-and-forward network backend.
 *
 * This is the "detailed" reference backend standing in for both the
 * Garnet (gem5) backend and the real NCCL/V100 testbed of the paper's
 * Fig. 4 validation: it does not apply the analytical closed form but
 * simulates every message as a train of packets crossing explicit
 * links with FIFO serialization, per-hop latency, and contention.
 *
 * The link graph and the dimension-ordered routes come from the
 * shared LinkGraph expansion (network/flow/link_graph.h), so this
 * backend and the flow-level backend resolve contention over the
 * *identical* topology-to-links mapping by construction — the
 * accuracy comparisons in bench_flow_vs_packet and the equivalence
 * tests rely on that. This backend adds the per-link FIFO state
 * (next-free time) on top.
 */
#ifndef ASTRA_NETWORK_DETAILED_PACKET_NETWORK_H_
#define ASTRA_NETWORK_DETAILED_PACKET_NETWORK_H_

#include <map>
#include <vector>

#include "common/slot_pool.h"
#include "network/flow/link_graph.h"
#include "network/network_api.h"

namespace astra {

/** Detailed packet-level backend (see file comment). */
class PacketNetwork : public NetworkApi
{
  public:
    /**
     * @param packet_bytes     maximum packet payload; messages are
     *                         split into ceil(bytes / packet_bytes)
     *                         packets.
     * @param header_bytes     per-packet protocol header serialized
     *                         along with the payload (the closed-form
     *                         backend ignores it).
     * @param message_overhead fixed software/NIC launch latency per
     *                         message before the first packet enters
     *                         the network.
     */
    PacketNetwork(EventQueue &eq, const Topology &topo,
                  Bytes packet_bytes = 4096.0, Bytes header_bytes = 0.0,
                  TimeNs message_overhead = 0.0);

    void simSend(NpuId src, NpuId dst, Bytes bytes, int dim, uint64_t tag,
                 SendHandlers handlers) override;

    /**
     * Fault hooks (docs/fault.md). A degraded link serializes packets
     * at `bandwidth * scale`; a *down* link parks arriving packets in
     * a per-link FIFO and releases them in order when the link comes
     * back up. Injection completion still tracks the source port's
     * free time only — a send into a downed first hop reports
     * "injected" once its packets are queued at the dead port (an
     * async NIC with an unbounded egress queue).
     */
    void setLinkCapacityScale(NpuId src, NpuId dst, int dim,
                              double scale) override;
    void setLinkUp(NpuId src, NpuId dst, int dim, bool up) override;

    /** Registers one link track per directed LinkGraph link; per-hop
     *  port occupancy feeds the utilization series (and coalesced
     *  occupancy spans at full detail); see docs/trace.md. */
    void setTracer(trace::Tracer *tracer) override;

    const LinkGraph &graph() const { return graph_; }

    /** Number of directed links in the shared graph. */
    size_t linkCount() const { return graph_.linkCount(); }

    /** Message slots currently allocated (live + recyclable); exposed
     *  so tests can verify free-list recycling. */
    size_t messageSlots() const { return messages_.slots(); }

    /** The message pool doubles as this backend's in-flight-unit pool
     *  for the bytes/flow footprint metric (telemetry). */
    size_t flowSlots() const override { return messages_.slots(); }

    /** Heartbeat gauge: messages currently in flight. */
    size_t activeCount() const override { return messages_.liveCount(); }

    /** Adds the link graph, port FIFOs, message pool and parking lots
     *  to the base accounting (telemetry footprint protocol). */
    size_t bytesInUse() const override;

    Bytes packetBytes() const { return packetBytes_; }

  private:
    /** Mutable FIFO state per LinkGraph link (indexed by LinkId). */
    struct PortState
    {
        TimeNs freeAt = 0.0;
        TimeNs busyNs = 0.0; //!< cumulative transmit time (stats).
    };

    /**
     * In-flight message bookkeeping in a generational SlotPool
     * (common/slot_pool.h, the idiom shared with CollectiveEngine's
     * instances and FlowNetwork's flows): the per-packet arrival path
     * is one array indexing instead of a hash lookup, and a stale id
     * (message already delivered, slot recycled) is detected by the
     * pool's generation check.
     */
    struct Message
    {
        NpuId src = 0;
        NpuId dst = 0;
        uint64_t tag = 0;
        int dim = 0;              //!< topology dimension (trace tag).
        int packetsRemaining = 0; //!< 0 while the slot is free.
        TimeNs traceStart = 0.0;  //!< submission time (trace lifetimes).
        SendHandlers handlers;
        /** Per-job attribution target captured at submission (the
         *  NetworkApi send-owner channel); null when unattributed. */
        std::vector<double> *owner = nullptr;
    };

    /** A packet held at an administratively-down link. */
    struct ParkedPacket
    {
        uint64_t msgId = 0;
        const std::vector<LinkId> *path = nullptr;
        size_t hop = 0;
        Bytes bytes = 0.0;
    };

    void launchMessage(uint64_t msg_id, const std::vector<LinkId> *path,
                       Bytes bytes, int packets,
                       EventCallback on_injected);
    void forwardPacket(uint64_t msg_id, const std::vector<LinkId> *path,
                       size_t hop, Bytes pkt_bytes);
    void packetArrived(uint64_t msg_id);

    LinkGraph graph_;
    Bytes packetBytes_;
    Bytes headerBytes_;
    TimeNs messageOverhead_;
    std::vector<PortState> ports_;    //!< per-link FIFO state.
    SlotPool<Message> messages_;
    // Fault state: per-link service-rate scale and up/down flag
    // (all-1.0 / all-up defaults are bit-identical to the pre-fault
    // arithmetic), plus the per-link parking lots of down links.
    std::vector<double> portScale_;
    std::vector<uint8_t> portUp_;
    std::map<LinkId, std::vector<ParkedPacket>> parked_;
};

} // namespace astra

#endif // ASTRA_NETWORK_DETAILED_PACKET_NETWORK_H_
