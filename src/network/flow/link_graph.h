/**
 * @file
 * Explicit directed-link expansion of a multi-dimensional Topology
 * (the substrate of the congestion-aware flow backend, docs/network.md).
 *
 * The Topology describes dimensions abstractly (block type, size,
 * per-NPU bandwidth, hop latency); the LinkGraph materializes every
 * directed link so that contention can be resolved per link. The
 * expansion rules per BlockType match the packet backend's graph so
 * the two detailed backends agree on what shares what:
 *
 *  - Ring(k): one link to each neighbour per direction at the full
 *    per-NPU dimension bandwidth (counter-rotating-ring aggregate
 *    convention — same as the analytical model's charge).
 *  - FullyConnected(k): a link per ordered NPU pair at
 *    bandwidth / (k-1) each (the per-NPU aggregate split across the
 *    k-1 private links).
 *  - Switch(k): an explicit switch node per group with an up-link and
 *    a down-link per member NPU, each at the dimension bandwidth.
 *
 * Node numbering is dense: NPUs first (node id == NPU id), then one
 * node per switch instance. Routing is dimension-ordered; within a
 * Ring dimension paths take the minimal direction through
 * intermediate NPUs. Paths are sequences of LinkIds, computed once
 * per (src, dst, dim) and cached with stable storage so callers can
 * hold the pointer for the lifetime of the graph.
 */
#ifndef ASTRA_NETWORK_FLOW_LINK_GRAPH_H_
#define ASTRA_NETWORK_FLOW_LINK_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "topology/topology.h"

namespace astra {

/** Dense directed-link identifier within a LinkGraph. */
using LinkId = uint32_t;

/** See file comment. */
class LinkGraph
{
  public:
    struct Link
    {
        int from = 0;        //!< source node (NPU or switch id).
        int to = 0;          //!< destination node.
        int dim = 0;         //!< topology dimension the link belongs to.
        GBps bandwidth = 1.0;
        TimeNs latency = 0.0;
    };

    explicit LinkGraph(const Topology &topo);

    size_t linkCount() const { return links_.size(); }
    const Link &link(LinkId id) const { return links_[id]; }
    const std::vector<Link> &links() const { return links_; }

    /** NPU nodes plus one node per switch instance. */
    int numNodes() const { return totalNodes_; }

    /** Directed links per topology dimension. */
    const std::vector<int> &linksPerDim() const { return linksPerDim_; }

    /**
     * Link-id path from `src` to `dst` (dim == kAutoRoute for
     * dimension-ordered routing, otherwise within one dimension).
     * Cached; the returned pointer is stable for the graph's lifetime.
     * fatal-asserts if the NPUs are not connected in `dim`.
     */
    const std::vector<LinkId> *pathFor(NpuId src, NpuId dst, int dim);

    /** Sum of per-hop latencies along a path. */
    TimeNs pathLatency(const std::vector<LinkId> &path) const;

    /**
     * Links a fault selector `(src, dst, dim)` names (src/fault/):
     * the routed path's links for a concrete `dst >= 0`, or every
     * egress link of `src` (dim-filtered) when `dst < 0`. `dim < 0`
     * means all dimensions. `src` must be an NPU (node id == NPU id).
     */
    std::vector<LinkId> faultLinks(NpuId src, NpuId dst, int dim);

    /** Dense id of the switch node serving `member` in dimension
     *  `dim` (which must be a Switch dimension). */
    int switchNodeOf(int dim, NpuId member) const;

    /** Heap bytes held by the link table, routing index and path
     *  cache (telemetry footprint protocol; hash-map node sizes are
     *  estimates, but deterministic functions of the key sets). */
    size_t bytesInUse() const;

  private:
    void addLink(int from, int to, int dim, GBps bw, TimeNs lat);
    LinkId linkBetween(int from, int to) const;

    /** Dense index of `member`'s group within dimension `dim`. */
    int groupIndexOf(int dim, NpuId member) const;

    /** Append the node-path contribution of one dimension. */
    void routeInDim(int dim, NpuId from, NpuId to,
                    std::vector<int> &nodes) const;

    /** Full node path (including endpoints) for a message. */
    std::vector<int> nodeRoute(NpuId src, NpuId dst, int dim) const;

    const Topology &topo_;
    int totalNodes_ = 0;
    std::vector<int> switchBase_; //!< per-dim base id of switch nodes.
    std::vector<Link> links_;
    std::vector<int> linksPerDim_;
    std::unordered_map<uint64_t, LinkId> linkIndex_; //!< (from,to) -> id.
    std::unordered_map<uint64_t, std::vector<LinkId>> pathCache_;
};

/**
 * Link <-> member incidence: which members (flows, identified by a
 * caller-chosen dense index such as a SlotPool slot) currently occupy
 * each link. This is the substrate of the incremental max-min solver
 * (docs/network.md): the affected-component walk is a BFS over these
 * per-link lists.
 *
 * Entries are generation-tagged and removal is *implicit*: when a
 * member departs, its generation (SlotPool::genAt) advances and every
 * entry carrying the old generation goes stale — departure costs
 * nothing here. Scanners (the solver BFS) test staleness with one
 * compare and compact the lists they touch in place, so dead entries
 * live only until the next scan of their link — and the dirty-seed
 * protocol guarantees every add/departure makes its links scanned by
 * the very next solve. Per-link lists are recycled vectors: no
 * allocation in steady state once high-water capacity is reached.
 */
class LinkIncidence
{
  public:
    struct Entry
    {
        uint32_t member; //!< caller's dense member index.
        uint32_t gen;    //!< member's generation when added; the
                         //!< entry is stale once it disagrees with
                         //!< the member's current generation.
    };

    /** Size the per-link lists for `link_count` links (dropping any
     *  previous membership). */
    void reset(size_t link_count);

    /** Register (`member`, `gen`) on every link of `path`. A member
     *  must be on at most one path per generation. */
    void add(uint32_t member, uint32_t gen,
             const std::vector<LinkId> &path)
    {
        for (LinkId l : path)
            lists_[l].push_back(Entry{member, gen});
    }

    /** Entries on link `l`, live and stale alike — callers filter by
     *  generation. Mutable so scanners can compact stale entries away
     *  (order-preserving) while they iterate. */
    std::vector<Entry> &entriesOn(LinkId l) { return lists_[l]; }
    const std::vector<Entry> &entriesOn(LinkId l) const
    {
        return lists_[l];
    }

    /** Upper bound on live members of `l` (stale entries included). */
    size_t entryCount(LinkId l) const { return lists_[l].size(); }

    /** Heap bytes held by the per-link lists (telemetry footprint
     *  protocol; capacity-based). */
    size_t
    bytesInUse() const
    {
        size_t bytes = lists_.capacity() * sizeof(std::vector<Entry>);
        for (const std::vector<Entry> &list : lists_)
            bytes += list.capacity() * sizeof(Entry);
        return bytes;
    }

  private:
    std::vector<std::vector<Entry>> lists_; //!< per-link membership.
};

} // namespace astra

#endif // ASTRA_NETWORK_FLOW_LINK_GRAPH_H_
