#include "network/flow/flow_network.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace astra {

namespace {

/** Relative tolerance grouping near-tied link shares into one
 *  bottleneck level, so exact-ratio allocations (1/2, 1/N) come out
 *  of the solver bit-stable instead of splitting across iterations
 *  on last-bit rounding. */
constexpr double kShareTieRel = 1e-9;

/** Rates are bounded away from zero so a predicted finish is always
 *  finite (progressive filling cannot actually assign zero to a flow
 *  on links of positive capacity; this is a numerical backstop). */
constexpr GBps kMinRate = 1e-12;

} // namespace

FlowNetwork::FlowNetwork(EventQueue &eq, const Topology &topo)
    : NetworkApi(eq, topo), graph_(topo)
{
    linkBusy_.assign(graph_.linkCount(), 0.0);
    stamp_.assign(graph_.linkCount(), 0);
    capLeft_.assign(graph_.linkCount(), 0.0);
    flowsLeft_.assign(graph_.linkCount(), 0);
    stats_.linksPerDim = graph_.linksPerDim();
}

uint64_t
FlowNetwork::allocFlow()
{
    uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<uint32_t>(flows_.size());
        flows_.emplace_back();
    }
    Flow &flow = flows_[slot];
    ++flow.gen; // ids of the slot's previous lives go stale.
    return static_cast<uint64_t>(slot) |
           (static_cast<uint64_t>(flow.gen) << 32);
}

FlowNetwork::Flow *
FlowNetwork::flowForId(uint64_t id)
{
    uint32_t slot = static_cast<uint32_t>(id);
    uint32_t gen = static_cast<uint32_t>(id >> 32);
    ASTRA_ASSERT(slot < flows_.size(), "flow slot out of range");
    Flow &flow = flows_[slot];
    return flow.gen == gen ? &flow : nullptr;
}

void
FlowNetwork::releaseFlow(Flow &flow)
{
    uint32_t slot = static_cast<uint32_t>(&flow - flows_.data());
    flow.handlers = SendHandlers{};
    flow.path = nullptr;
    freeSlots_.push_back(slot);
}

void
FlowNetwork::markDirty()
{
    if (dirty_)
        return;
    dirty_ = true;
    // Deferred to the end of the current timestamp's FIFO run: any
    // number of same-time arrivals/departures trigger one solve.
    eq_.schedule(0.0, [this] {
        dirty_ = false;
        resolve();
    });
}

void
FlowNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                     uint64_t tag, SendHandlers handlers)
{
    ASTRA_ASSERT(bytes >= 0.0, "simSend: negative size");
    if (src == dst) {
        // Loopback: no network resources involved.
        deliverLoopback(src, tag, std::move(handlers));
        return;
    }

    account(accountDim(src, dst, dim), bytes);

    const std::vector<LinkId> *path = graph_.pathFor(src, dst, dim);
    ASTRA_ASSERT(!path->empty(), "flow with an empty path");

    uint64_t id = allocFlow();
    Flow &flow = flows_[static_cast<uint32_t>(id)];
    flow.src = src;
    flow.dst = dst;
    flow.tag = tag;
    flow.path = path;
    flow.remaining = bytes;
    flow.rate = 0.0; // no bandwidth until the deferred solve runs.
    flow.latency = graph_.pathLatency(*path);
    flow.hasEvent = false;
    flow.active = true;
    flow.activeIdx = static_cast<uint32_t>(active_.size());
    flow.handlers = std::move(handlers);
    active_.push_back(static_cast<uint32_t>(id));
    markDirty();
}

void
FlowNetwork::integrateTo(TimeNs t)
{
    TimeNs dt = t - lastIntegrate_;
    if (dt > 0.0) {
        for (uint32_t slot : active_) {
            Flow &flow = flows_[slot];
            if (flow.rate <= 0.0)
                continue;
            flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
            // Busy accounting: transmitting `rate * dt` bytes keeps a
            // link of bandwidth B busy for `rate * dt / B` ns.
            for (LinkId l : *flow.path) {
                const LinkGraph::Link &link = graph_.link(l);
                TimeNs busy = flow.rate * dt / link.bandwidth;
                linkBusy_[l] += busy;
                accountBusy(link.dim, busy, linkBusy_[l]);
            }
        }
    }
    lastIntegrate_ = t;
}

void
FlowNetwork::resolve()
{
    integrateTo(eq_.now());
    if (active_.empty())
        return;
    ++solves_;

    // Progressive filling (water-filling): repeatedly find the link
    // with the smallest fair share capacity/flows, freeze every flow
    // crossing such a bottleneck at that share, withdraw the frozen
    // bandwidth, and continue with the rest. The fixpoint is the
    // unique max-min fair allocation.
    ++solveStamp_;
    touched_.clear();
    for (uint32_t slot : active_) {
        for (LinkId l : *flows_[slot].path) {
            if (stamp_[l] != solveStamp_) {
                stamp_[l] = solveStamp_;
                capLeft_[l] = graph_.link(l).bandwidth;
                flowsLeft_[l] = 0;
                touched_.push_back(l);
            }
            ++flowsLeft_[l];
        }
    }

    unfixed_.assign(active_.begin(), active_.end());
    while (!unfixed_.empty()) {
        double min_share = std::numeric_limits<double>::infinity();
        for (uint32_t l : touched_) {
            if (flowsLeft_[l] > 0) {
                double share =
                    std::max(capLeft_[l], 0.0) / double(flowsLeft_[l]);
                min_share = std::min(min_share, share);
            }
        }
        ASTRA_ASSERT(min_share <
                         std::numeric_limits<double>::infinity(),
                     "unfixed flow crosses no counted link");
        double tie_limit = min_share + min_share * kShareTieRel;

        size_t kept = 0;
        for (uint32_t slot : unfixed_) {
            Flow &flow = flows_[slot];
            bool bottlenecked = false;
            for (LinkId l : *flow.path) {
                if (flowsLeft_[l] > 0 &&
                    std::max(capLeft_[l], 0.0) / double(flowsLeft_[l]) <=
                        tie_limit) {
                    bottlenecked = true;
                    break;
                }
            }
            if (bottlenecked) {
                flow.rate = std::max(min_share, kMinRate);
                for (LinkId l : *flow.path) {
                    capLeft_[l] -= min_share;
                    --flowsLeft_[l];
                }
            } else {
                unfixed_[kept++] = slot;
            }
        }
        ASTRA_ASSERT(kept < unfixed_.size(),
                     "max-min filling made no progress");
        unfixed_.resize(kept);
    }

    // Re-schedule completion events for flows whose prediction moved.
    TimeNs now = eq_.now();
    for (uint32_t slot : active_) {
        Flow &flow = flows_[slot];
        TimeNs finish = now + flow.remaining / flow.rate;
        // "Unchanged" must be judged with a relative component: the
        // recomputed finish differs from the stored one by a few ULPs
        // (finish * ~1e-16) even when the rate did not move, which
        // dwarfs the absolute kTimeEpsNs once sim time reaches
        // milliseconds. 1e-12 relative keeps the kept-event error
        // negligible (rate * tol bytes) while restoring the
        // only-reschedule-moved-flows property at any time scale.
        TimeNs tol = kTimeEpsNs + flow.predictedFinish * 1e-12;
        if (flow.hasEvent &&
            std::abs(finish - flow.predictedFinish) <= tol)
            continue; // the already-scheduled event still matches.
        flow.predictedFinish = std::max(finish, now);
        ++flow.epoch;
        flow.hasEvent = true;
        uint64_t id = static_cast<uint64_t>(slot) |
                      (static_cast<uint64_t>(flow.gen) << 32);
        uint32_t epoch = flow.epoch;
        // [this, id, epoch]: inline in InlineEvent — re-rating never
        // allocates; superseded events are dropped by the epoch check.
        eq_.scheduleAt(flow.predictedFinish, [this, id, epoch] {
            onCompletion(id, epoch);
        });
    }
}

void
FlowNetwork::onCompletion(uint64_t id, uint32_t epoch)
{
    Flow *found = flowForId(id);
    if (found == nullptr || !found->active || found->epoch != epoch)
        return; // superseded by a later re-rate (or recycled slot).
    Flow &flow = *found;

    // Settle every flow's remaining bytes to this instant before the
    // departure changes rates; the finishing flow's own residual is
    // last-bit rounding of the integration chain.
    integrateTo(eq_.now());
    flow.remaining = 0.0;

    // Swap-remove from the active list (deterministic: the order is a
    // pure function of the event sequence).
    uint32_t last = active_.back();
    active_[flow.activeIdx] = last;
    flows_[last].activeIdx = flow.activeIdx;
    active_.pop_back();
    flow.active = false;
    markDirty(); // freed bandwidth redistributes to the rest.

    // Transmission done now; delivery after the path's hop latency.
    NpuId src = flow.src;
    NpuId dst = flow.dst;
    uint64_t tag = flow.tag;
    TimeNs delivered_at = eq_.now() + flow.latency;
    SendHandlers handlers = std::move(flow.handlers);
    releaseFlow(flow); // the handlers may send again and reuse the slot.

    if (handlers.onInjected)
        handlers.onInjected();
    // Even a null kNoTag callback schedules, so final-time semantics
    // include the trailing latency exactly like the other backends.
    scheduleDelivery(delivered_at, src, dst, tag,
                     std::move(handlers.onDelivered));
}

} // namespace astra
