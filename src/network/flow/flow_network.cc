#include "network/flow/flow_network.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "trace/tracer.h"

namespace astra {

namespace {

/** Relative tolerance grouping near-tied link shares into one
 *  bottleneck level, so exact-ratio allocations (1/2, 1/N) come out
 *  of the solver bit-stable instead of splitting across iterations
 *  on last-bit rounding. */
constexpr double kShareTieRel = 1e-9;

/** Rates are bounded away from zero so a predicted finish is always
 *  finite (progressive filling cannot actually assign zero to a flow
 *  on links of positive capacity; this is a numerical backstop). */
constexpr GBps kMinRate = 1e-12;

} // namespace

FlowNetwork::FlowNetwork(EventQueue &eq, const Topology &topo)
    : NetworkApi(eq, topo), graph_(topo)
{
    size_t links = graph_.linkCount();
    incidence_.reset(links);
    linkBusy_.assign(links, 0.0);
    capScale_.assign(links, 1.0);
    linkUpState_.assign(links, 1);
    seedMark_.assign(links, 0);
    linkVisit_.assign(links, 0);
    fillStamp_.assign(links, 0);
    capLeft_.assign(links, 0.0);
    flowsLeft_.assign(links, 0);
    stats_.linksPerDim = graph_.linksPerDim();
}

FlowNetwork::FlowProbe
FlowNetwork::probeActiveFlow(size_t active_index) const
{
    const Flow &flow = flows_.at(active_[active_index]);
    FlowProbe probe;
    probe.src = flow.src;
    probe.dst = flow.dst;
    probe.remaining = flow.remaining;
    probe.rate = flow.rate;
    probe.lastUpdateNs = flow.lastUpdate;
    probe.predictedFinishNs = flow.predictedFinish;
    probe.epoch = flow.epoch;
    return probe;
}

void
FlowNetwork::markDirty()
{
    if (dirty_)
        return;
    dirty_ = true;
    // Deferred to the end of the current timestamp's FIFO run: any
    // number of same-time arrivals/departures trigger one solve.
    // With a tracer attached the solve is wall-clocked for the
    // per-subsystem attribution counters (solves are chunky, so
    // per-solve timing is cheap; results are unaffected).
    eq_.schedule(0.0, [this] {
        dirty_ = false;
        if (tracer_) {
            auto t0 = std::chrono::steady_clock::now();
            resolve();
            auto t1 = std::chrono::steady_clock::now();
            tracer_->counters().addWall(
                "wall_solver_seconds",
                std::chrono::duration<double>(t1 - t0).count());
        } else {
            resolve();
        }
    });
}

void
FlowNetwork::markLinksDirty(const std::vector<LinkId> &path)
{
    for (LinkId l : path) {
        if (seedMark_[l] != seedEpoch_) {
            seedMark_[l] = seedEpoch_;
            dirtySeeds_.push_back(l);
        }
    }
}

void
FlowNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                     uint64_t tag, SendHandlers handlers)
{
    ASTRA_ASSERT(bytes >= 0.0, "simSend: negative size");
    if (src == dst) {
        // Loopback: no network resources involved.
        deliverLoopback(src, tag, std::move(handlers));
        return;
    }

    account(accountDim(src, dst, dim), bytes);

    const std::vector<LinkId> *path = graph_.pathFor(src, dst, dim);
    ASTRA_ASSERT(!path->empty(), "flow with an empty path");

    uint64_t id = flows_.claim();
    uint32_t slot = SlotPool<Flow>::slotOf(id);
    if (slot >= slotScratch_.size()) {
        // Geometric growth with the pool's high-water mark: steady
        // state (recycled slots) takes only the size check.
        slotScratch_.resize(
            std::max<size_t>(2 * slotScratch_.size(), slot + 1));
    }
    Flow &flow = flows_.get(id);
    flow.src = src;
    flow.dst = dst;
    flow.tag = tag;
    flow.path = path;
    flow.remaining = bytes;
    flow.rate = 0.0; // no bandwidth until the deferred solve runs.
    flow.lastUpdate = eq_.now();
    flow.latency = graph_.pathLatency(*path);
    flow.traceStart = eq_.now();
    flow.traceSegStart = -1.0;
    flow.traceRate = 0.0;
    flow.traceSegEmitted = false;
    flow.hasEvent = false;
    flow.active = true;
    flow.activeIdx = static_cast<uint32_t>(active_.size());
    flow.owner = sendOwner_;
    flow.handlers = std::move(handlers);
    active_.push_back(slot);
    incidence_.add(slot, SlotPool<Flow>::genOf(id), *path);
    markLinksDirty(*path);
    markDirty();
}

void
FlowNetwork::integrateFlow(Flow &flow, TimeNs t)
{
    TimeNs dt = t - flow.lastUpdate;
    if (dt > 0.0 && flow.rate > 0.0) {
        flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
        // Busy accounting: transmitting `rate * dt` bytes keeps a
        // link of bandwidth B busy for `rate * dt / B` ns.
        for (LinkId l : *flow.path) {
            const LinkGraph::Link &link = graph_.link(l);
            TimeNs busy = flow.rate * dt / link.bandwidth;
            linkBusy_[l] += busy;
            accountBusy(link.dim, busy, linkBusy_[l]);
            if (flow.owner)
                (*flow.owner)[static_cast<size_t>(link.dim)] += busy;
        }
        if (tracer_) {
            // A lazy integration stretch is one constant-rate segment
            // of the flow: feed the utilization series with the
            // fractional busy share per link, and at full detail
            // grow the coalesced rate segment on the source's flow
            // track. Stretches within rate_epsilon (relative, default
            // 25%) of the open segment's rate extend it rather than
            // emit — max-min churn re-rates whole components
            // constantly, and one event per re-rate would double the
            // trace for no visual gain; small rate wiggles are
            // invisible on a timeline (docs/trace.md).
            if (tracer_->utilization())
                for (LinkId l : *flow.path)
                    tracer_->linkBusy(
                        l, flow.lastUpdate, t,
                        flow.rate / graph_.link(l).bandwidth);
            if (tracer_->full()) {
                if (flow.traceSegStart < 0.0) {
                    flow.traceSegStart = flow.lastUpdate;
                    flow.traceRate = flow.rate;
                } else if (std::abs(flow.rate - flow.traceRate) >
                           rateEpsilon_ * flow.traceRate) {
                    flushRateSegment(flow, flow.lastUpdate);
                    flow.traceSegStart = flow.lastUpdate;
                    flow.traceRate = flow.rate;
                }
            }
        }
    }
    flow.lastUpdate = t;
}

void
FlowNetwork::flushRateSegment(Flow &flow, TimeNs end)
{
    if (flow.traceSegStart < 0.0 || end <= flow.traceSegStart)
        return;
    tracer_->span(0, trace::Tracer::kFlowTidBase + int32_t(flow.src),
                  "flow", "f%lld->%lld %lldMB/s", flow.traceSegStart,
                  end - flow.traceSegStart, (long long)flow.src,
                  (long long)flow.dst,
                  (long long)(flow.traceRate * 1000.0));
    flow.traceSegStart = -1.0;
    flow.traceSegEmitted = true;
}

void
FlowNetwork::scanLink(LinkId l, uint64_t epoch,
                      std::vector<uint32_t> *out)
{
    // One pass does double duty: collect unvisited live members into
    // the BFS queue and compact stale (departed / recycled) entries
    // away in place — incidence removal is a generation bump, and the
    // links a departure dirtied are exactly the ones scanned here at
    // the very next solve.
    std::vector<LinkIncidence::Entry> &list = incidence_.entriesOn(l);
    size_t kept = 0;
    for (size_t i = 0; i < list.size(); ++i) {
        const LinkIncidence::Entry e = list[i];
        if (flows_.genAt(e.member) != e.gen)
            continue; // stale (departed / recycled): compact away.
        if (kept != i)
            list[kept] = e; // only dirty the list when compacting.
        ++kept;
        if (slotScratch_[e.member].visit != epoch) {
            slotScratch_[e.member].visit = epoch;
            out->push_back(e.member);
        }
    }
    list.resize(kept);
}

void
FlowNetwork::collectComponent(LinkId seed, uint64_t epoch,
                              std::vector<uint32_t> *out)
{
    out->clear();
    if (linkVisit_[seed] == epoch)
        return;
    linkVisit_[seed] = epoch;
    scanLink(seed, epoch, out);
    // `out` is the BFS queue: every flow reached pulls in all links of
    // its path, and every new link pulls in all flows crossing it.
    for (size_t head = 0; head < out->size(); ++head) {
        const Flow &flow = flows_.at((*out)[head]);
        for (LinkId l : *flow.path) {
            if (linkVisit_[l] == epoch)
                continue;
            linkVisit_[l] = epoch;
            scanLink(l, epoch, out);
        }
    }
}

void
FlowNetwork::fillComponent(const std::vector<uint32_t> &comp,
                           uint64_t epoch, double SlotScratch::*out)
{
    // Progressive filling (water-filling): repeatedly find the link
    // with the smallest fair share capacity/flows, freeze every flow
    // crossing such a bottleneck at that share, withdraw the frozen
    // bandwidth, and continue with the rest. The fixpoint is the
    // unique max-min fair allocation. Iteration order over `comp` is
    // canonical (sorted by slot), so the arithmetic — and therefore
    // the last bit of every rate — is independent of how the
    // component was discovered (incremental seed walk or full solve).
    ++fillEpoch_;
    touched_.clear();
    for (uint32_t slot : comp) {
        for (LinkId l : *flows_.at(slot).path) {
            if (fillStamp_[l] != fillEpoch_) {
                fillStamp_[l] = fillEpoch_;
                // Faults enter the solver only here: a degraded link
                // fills with scaled capacity, a down link with zero.
                double cap = linkUpState_[l]
                                 ? graph_.link(l).bandwidth * capScale_[l]
                                 : 0.0;
                // Bandwidth pinned by flows outside the component
                // would be withdrawn here — but under full transitive
                // closure no such flow can exist (any member of a
                // component link is swept into the component by the
                // BFS), so the subtraction is provably zero and the
                // hot path skips the membership scan. The verify pass
                // asserts the invariant instead of trusting it.
                if (fullSolveVerify_) {
                    for (const LinkIncidence::Entry &e :
                         incidence_.entriesOn(l)) {
                        ASTRA_ASSERT(
                            flows_.genAt(e.member) != e.gen ||
                                slotScratch_[e.member].visit == epoch,
                            "component link carries a flow outside "
                            "the component");
                    }
                }
                capLeft_[l] = cap;
                flowsLeft_[l] = 0;
                touched_.push_back(l);
            }
            ++flowsLeft_[l];
        }
    }

    unfixed_.assign(comp.begin(), comp.end());
    while (!unfixed_.empty()) {
        double min_share = std::numeric_limits<double>::infinity();
        for (uint32_t l : touched_) {
            if (flowsLeft_[l] > 0) {
                double share =
                    std::max(capLeft_[l], 0.0) / double(flowsLeft_[l]);
                min_share = std::min(min_share, share);
            }
        }
        ASTRA_ASSERT(min_share <
                         std::numeric_limits<double>::infinity(),
                     "unfixed flow crosses no counted link");
        double tie_limit = min_share + min_share * kShareTieRel;

        size_t kept = 0;
        for (uint32_t slot : unfixed_) {
            const Flow &flow = flows_.at(slot);
            bool bottlenecked = false;
            for (LinkId l : *flow.path) {
                if (flowsLeft_[l] > 0 &&
                    std::max(capLeft_[l], 0.0) / double(flowsLeft_[l]) <=
                        tie_limit) {
                    bottlenecked = true;
                    break;
                }
            }
            if (bottlenecked) {
                double rate = std::max(min_share, kMinRate);
                // Distinguish a structurally dead link (capacity is
                // exactly zero: administratively down) from capLeft
                // rounding to zero on a healthy link — only the former
                // stalls the flow; the latter keeps the kMinRate
                // numerical backstop.
                if (min_share <= 0.0 && crossesDeadLink(flow))
                    rate = 0.0;
                slotScratch_[slot].*out = rate;
                for (LinkId l : *flow.path) {
                    capLeft_[l] -= min_share;
                    --flowsLeft_[l];
                }
            } else {
                unfixed_[kept++] = slot;
            }
        }
        ASTRA_ASSERT(kept < unfixed_.size(),
                     "max-min filling made no progress");
        unfixed_.resize(kept);
    }
}

void
FlowNetwork::resolve()
{
    // Drain the seed set even when nothing is left to rate: links
    // dirtied by the last departures matter only to flows that exist.
    if (active_.empty()) {
        dirtySeeds_.clear();
        ++seedEpoch_;
        return;
    }
    ++solver_.solves;

    // Phase 1 — affected components: BFS from each dirty link over
    // the incidence lists. Flows transitively sharing a link with a
    // changed flow are re-rated; everything else is provably at its
    // max-min fixpoint already and is not even looked at.
    ++visitEpoch_;
    uint64_t epoch = visitEpoch_;
    affected_.clear();
    bool multi = false;
    for (LinkId seed : dirtySeeds_) {
        // Single-component solves (the common case: one region went
        // dirty) collect straight into `affected_` and skip the
        // merge copy + re-sort below.
        std::vector<uint32_t> *dst =
            affected_.empty() ? &affected_ : &comp_;
        collectComponent(seed, epoch, dst);
        if (dst->empty())
            continue; // already swept, or the seed link went idle.
        std::sort(dst->begin(), dst->end());
        fillComponent(*dst, epoch, &SlotScratch::newRate);
        ++solver_.componentsTouched;
        if (dst == &comp_) {
            affected_.insert(affected_.end(), comp_.begin(),
                             comp_.end());
            multi = true;
        }
    }
    dirtySeeds_.clear();
    ++seedEpoch_;

    solver_.flowsTouched += affected_.size();
    solver_.componentFracSum +=
        double(affected_.size()) / double(active_.size());
    for (uint32_t slot : affected_)
        slotScratch_[slot].affectedMark = solver_.solves;

    if (fullSolveVerify_)
        verifyFullSolve();

    // Phase 2 — apply, in canonical slot order across components so
    // same-timestamp completion events enqueue identically no matter
    // how the components were discovered. A flow whose re-filled rate
    // is bit-equal keeps its event and is NOT integrated: its stored
    // (lastUpdate, remaining, rate, predictedFinish) tuple is still
    // exact under a constant rate.
    if (multi)
        std::sort(affected_.begin(), affected_.end());
    TimeNs now = eq_.now();
    for (uint32_t slot : affected_) {
        Flow &flow = flows_.at(slot);
        double new_rate = slotScratch_[slot].newRate;
        if (new_rate == flow.rate)
            continue;
        integrateFlow(flow, now); // lazy: settle only on rate change.
        flow.rate = new_rate;
        ++flow.epoch; // supersedes any event scheduled for the old rate.
        if (new_rate <= 0.0) {
            // Stalled on a down link: no completion event at all — a
            // far-future placeholder would still fire during the final
            // queue drain and distort the finish time. The flow
            // resumes when a link-up re-solve assigns a positive rate.
            flow.hasEvent = false;
            continue;
        }
        TimeNs finish = now + flow.remaining / flow.rate;
        flow.predictedFinish = std::max(finish, now);
        flow.hasEvent = true;
        uint64_t id = flows_.idAt(slot);
        uint32_t flow_epoch = flow.epoch;
        // [this, id, epoch]: inline in InlineEvent — re-rating never
        // allocates; superseded events are dropped by the epoch check.
        eq_.scheduleAt(flow.predictedFinish, [this, id, flow_epoch] {
            onCompletion(id, flow_epoch);
        });
    }
}

void
FlowNetwork::verifyFullSolve()
{
    // Re-run the fill over EVERY active flow (per connected component,
    // canonical order — identical arithmetic to an incremental fill of
    // the same component) and demand bit-exact agreement with the
    // incremental result. `affectedMark_` still holds this solve's
    // affected stamps; the walk below uses a fresh visit epoch.
    ++visitEpoch_;
    uint64_t epoch = visitEpoch_;
    for (LinkId l = 0; l < graph_.linkCount(); ++l) {
        if (incidence_.entryCount(l) == 0 || linkVisit_[l] == epoch)
            continue;
        collectComponent(l, epoch, &comp_);
        if (comp_.empty())
            continue;
        std::sort(comp_.begin(), comp_.end());
        fillComponent(comp_, epoch, &SlotScratch::verifyRate);
        for (uint32_t slot : comp_) {
            const Flow &flow = flows_.at(slot);
            const SlotScratch &scratch = slotScratch_[slot];
            if (scratch.affectedMark == solver_.solves) {
                ASTRA_ASSERT(scratch.verifyRate == scratch.newRate,
                             "full-solve verify: incremental rate of an "
                             "affected flow diverges from the full "
                             "max-min solution");
            } else {
                ASTRA_ASSERT(scratch.verifyRate == flow.rate,
                             "full-solve verify: a flow outside the "
                             "affected component would change rate");
                ASTRA_ASSERT(flow.rate > 0.0 || crossesDeadLink(flow),
                             "full-solve verify: unaffected flow was "
                             "never rated");
                ASTRA_ASSERT(
                    !flow.hasEvent ||
                        flow.predictedFinish ==
                            std::max(flow.lastUpdate +
                                         flow.remaining / flow.rate,
                                     flow.lastUpdate),
                    "full-solve verify: unaffected flow's completion "
                    "prediction is stale");
            }
        }
    }
}

bool
FlowNetwork::crossesDeadLink(const Flow &flow) const
{
    for (LinkId l : *flow.path)
        if (!linkUpState_[l])
            return true;
    return false;
}

void
FlowNetwork::setLinkCapacityScale(NpuId src, NpuId dst, int dim,
                                  double scale)
{
    ASTRA_USER_CHECK(scale > 0.0 && std::isfinite(scale),
                     "link capacity scale must be > 0 and finite "
                     "(take the link down for a full outage)");
    std::vector<LinkId> links = graph_.faultLinks(src, dst, dim);
    for (LinkId l : links)
        capScale_[l] = scale;
    markLinksDirty(links);
    markDirty();
}

void
FlowNetwork::setLinkUp(NpuId src, NpuId dst, int dim, bool up)
{
    std::vector<LinkId> links = graph_.faultLinks(src, dst, dim);
    for (LinkId l : links)
        linkUpState_[l] = up ? 1 : 0;
    markLinksDirty(links);
    markDirty();
}

void
FlowNetwork::setTracer(trace::Tracer *tracer)
{
    NetworkApi::setTracer(tracer);
    if (!tracer)
        return;
    rateEpsilon_ = tracer->config().rateEpsilon;
    for (LinkId l = 0; l < graph_.linkCount(); ++l) {
        const LinkGraph::Link &link = graph_.link(l);
        tracer->registerLink(l, detail::formatV("d%d %d->%d", link.dim,
                                                link.from, link.to));
    }
}

void
FlowNetwork::fillTraceCounters(trace::Counters &counters) const
{
    counters.add("solver_solves", double(solver_.solves));
    counters.add("solver_flows_touched", double(solver_.flowsTouched));
    counters.add("solver_components_touched",
                 double(solver_.componentsTouched));
    counters.add("solver_avg_component_frac",
                 solver_.avgComponentFrac());
}

size_t
FlowNetwork::bytesInUse() const
{
    return NetworkApi::bytesInUse() + graph_.bytesInUse() +
           flows_.bytesInUse() + incidence_.bytesInUse() +
           active_.capacity() * sizeof(uint32_t) +
           linkBusy_.capacity() * sizeof(TimeNs) +
           capScale_.capacity() * sizeof(double) +
           linkUpState_.capacity() * sizeof(uint8_t) +
           dirtySeeds_.capacity() * sizeof(LinkId) +
           seedMark_.capacity() * sizeof(uint64_t) +
           linkVisit_.capacity() * sizeof(uint64_t) +
           slotScratch_.capacity() * sizeof(SlotScratch) +
           comp_.capacity() * sizeof(uint32_t) +
           affected_.capacity() * sizeof(uint32_t) +
           fillStamp_.capacity() * sizeof(uint64_t) +
           touched_.capacity() * sizeof(uint32_t) +
           capLeft_.capacity() * sizeof(double) +
           flowsLeft_.capacity() * sizeof(int) +
           unfixed_.capacity() * sizeof(uint32_t);
}

void
FlowNetwork::onCompletion(uint64_t id, uint32_t epoch)
{
    Flow *found = flows_.find(id);
    if (found == nullptr || !found->active || found->epoch != epoch)
        return; // superseded by a later re-rate (or recycled slot).
    Flow &flow = *found;

    // Settle this flow to its finish instant; its residual is last-bit
    // rounding of the integration chain. Other flows stay lazy — their
    // state is exact until the deferred solve changes their rate.
    integrateFlow(flow, eq_.now());
    flow.remaining = 0.0;

    // No incidence removal: releasing the slot below advances its
    // generation, which invalidates every incidence entry at once;
    // the dirtied links are compacted by the next solve's scan.
    markLinksDirty(*flow.path); // freed bandwidth redistributes.

    // Swap-remove from the active list (deterministic: the order is a
    // pure function of the event sequence).
    uint32_t last = active_.back();
    active_[flow.activeIdx] = last;
    flows_.at(last).activeIdx = flow.activeIdx;
    active_.pop_back();
    flow.active = false;
    markDirty();

    // Transmission done now; delivery after the path's hop latency.
    NpuId src = flow.src;
    NpuId dst = flow.dst;
    uint64_t tag = flow.tag;
    TimeNs delivered_at = eq_.now() + flow.latency;
    if (tracer_ && tracer_->full()) {
        // The closing segment is only interesting for flows whose
        // rate actually changed; for the rest the message span below
        // already describes one constant-rate transmission.
        if (flow.traceSegEmitted)
            flushRateSegment(flow, eq_.now());
        tracer_->span(0, int32_t(src), "net", "flow %lld->%lld d%d",
                      flow.traceStart, delivered_at - flow.traceStart,
                      (long long)src, (long long)dst,
                      graph_.link((*flow.path)[0]).dim);
    }
    SendHandlers handlers = std::move(flow.handlers);
    flow.handlers = SendHandlers{};
    flow.path = nullptr;
    flows_.release(id); // the handlers may send again and reuse the slot.

    if (handlers.onInjected)
        handlers.onInjected();
    // Even a null kNoTag callback schedules, so final-time semantics
    // include the trailing latency exactly like the other backends.
    scheduleDelivery(delivered_at, src, dst, tag,
                     std::move(handlers.onDelivered));
}

} // namespace astra
