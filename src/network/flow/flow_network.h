/**
 * @file
 * Congestion-aware flow-level network backend (docs/network.md).
 *
 * The middle fidelity point between the closed-form analytical model
 * and the packet-level reference: every in-flight message is a *fluid
 * flow* over its explicit link path (LinkGraph), and link bandwidth is
 * shared between concurrent flows by progressive-filling **max-min
 * fairness** — the steady-state allocation of per-flow fair queueing,
 * and the classic fluid approximation used by flow-level simulators.
 * There are no per-packet events: the simulation advances from rate
 * change to rate change.
 *
 * Event-driven re-rating:
 *  - A flow arrival or departure marks the solver dirty; one deferred
 *    zero-delay event re-solves the rate allocation, so any number of
 *    same-timestamp arrivals/departures cost a single solve.
 *  - Each solve first *integrates* the elapsed interval (remaining
 *    bytes decrease at the old rates; per-link busy time accrues),
 *    then re-runs progressive filling and re-schedules the completion
 *    event of every flow whose predicted finish moved. Stale
 *    completion events are rejected by (slot generation, epoch)
 *    checks, mirroring the id-recycling idiom of the packet backend
 *    and the collective engine.
 *  - A flow's transmission finishes when its remaining bytes reach
 *    zero (fires onInjected); delivery follows after the path's
 *    constant hop-latency sum (fires onDelivered / simRecv matching).
 *
 * For a congestion-free message over Ring or Switch dimensions the
 * model reduces exactly to the analytical closed form
 * `bytes / bottleneck_bw + latency * hops`; FullyConnected dimensions
 * expose per-pair links at bw/(k-1) and therefore diverge from the
 * analytical aggregate-port charge in the same documented way the
 * packet backend does. Under contention, N flows crossing one link
 * each get 1/N of it (and unused headroom is redistributed max-min
 * fair), which the analytical backend cannot see beyond its own
 * transmit port.
 *
 * The hot path is allocation-free after warm-up: flows live in flat
 * slot storage with a free list, paths are cached LinkId vectors, the
 * solver works in member scratch arrays stamped per solve, and every
 * scheduled closure fits InlineEvent's inline buffer.
 */
#ifndef ASTRA_NETWORK_FLOW_FLOW_NETWORK_H_
#define ASTRA_NETWORK_FLOW_FLOW_NETWORK_H_

#include <vector>

#include "network/flow/link_graph.h"
#include "network/network_api.h"

namespace astra {

/** See file comment. */
class FlowNetwork : public NetworkApi
{
  public:
    FlowNetwork(EventQueue &eq, const Topology &topo);

    void simSend(NpuId src, NpuId dst, Bytes bytes, int dim, uint64_t tag,
                 SendHandlers handlers) override;

    const LinkGraph &graph() const { return graph_; }

    /** Flows currently transmitting. */
    size_t activeFlowCount() const { return active_.size(); }

    /** Flow slots allocated (live + recyclable); exposed so tests can
     *  verify free-list recycling. */
    size_t flowSlots() const { return flows_.size(); }

    /** Max-min solves performed so far (one per dirty batch). */
    uint64_t solveCount() const { return solves_; }

  private:
    struct Flow
    {
        NpuId src = 0;
        NpuId dst = 0;
        uint64_t tag = 0;
        const std::vector<LinkId> *path = nullptr;
        Bytes remaining = 0.0;
        GBps rate = 0.0;
        TimeNs latency = 0.0; //!< constant hop-latency sum of the path.
        TimeNs predictedFinish = 0.0;
        uint32_t gen = 0;      //!< slot generation (id staleness).
        uint32_t epoch = 0;    //!< completion-event generation.
        uint32_t activeIdx = 0; //!< position in active_ while active.
        bool active = false;
        bool hasEvent = false;
        SendHandlers handlers;
    };

    /** Claim a flow slot; returns its id (slot | gen << 32). */
    uint64_t allocFlow();
    Flow *flowForId(uint64_t id); //!< null when the id is stale.
    void releaseFlow(Flow &flow);

    /** Schedule the deferred re-solve if not already pending. */
    void markDirty();

    /** Advance remaining bytes and per-link busy time to `t` at the
     *  current rates. */
    void integrateTo(TimeNs t);

    /** Integrate, run progressive filling, re-schedule completions. */
    void resolve();

    /** Completion-event handler; ignores stale (gen/epoch) firings. */
    void onCompletion(uint64_t id, uint32_t epoch);

    LinkGraph graph_;
    std::vector<Flow> flows_;      //!< slot-indexed, recycled.
    std::vector<uint32_t> freeSlots_;
    std::vector<uint32_t> active_; //!< slots of in-flight flows.
    std::vector<TimeNs> linkBusy_; //!< cumulative busy ns per link.
    TimeNs lastIntegrate_ = 0.0;
    bool dirty_ = false;
    uint64_t solves_ = 0;

    // Solver scratch (reused across solves; see resolve()).
    std::vector<uint32_t> touched_;   //!< links used by active flows.
    std::vector<uint32_t> stamp_;     //!< per-link touch stamp.
    std::vector<double> capLeft_;     //!< per-link unassigned capacity.
    std::vector<int> flowsLeft_;      //!< per-link unfixed flow count.
    std::vector<uint32_t> unfixed_;   //!< flows not yet assigned a rate.
    uint32_t solveStamp_ = 0;
};

} // namespace astra

#endif // ASTRA_NETWORK_FLOW_FLOW_NETWORK_H_
