/**
 * @file
 * Congestion-aware flow-level network backend (docs/network.md).
 *
 * The middle fidelity point between the closed-form analytical model
 * and the packet-level reference: every in-flight message is a *fluid
 * flow* over its explicit link path (LinkGraph), and link bandwidth is
 * shared between concurrent flows by progressive-filling **max-min
 * fairness** — the steady-state allocation of per-flow fair queueing,
 * and the classic fluid approximation used by flow-level simulators.
 * There are no per-packet events: the simulation advances from rate
 * change to rate change.
 *
 * Incremental event-driven re-rating:
 *  - A flow arrival or departure marks its path's links dirty and
 *    schedules one deferred zero-delay solve, so any number of
 *    same-timestamp changes cost a single solve.
 *  - The solve does NOT re-rate every active flow. It walks the
 *    link<->flow incidence lists (LinkIncidence) from the dirty links
 *    to find the *affected components* — flows transitively sharing a
 *    link with a changed flow — and re-runs progressive filling only
 *    there. Max-min allocations decompose exactly over connected
 *    components of the sharing graph (and the transitive closure
 *    guarantees no unaffected flow touches a component link), so the
 *    rates of untouched flows are already at their fixpoint: skipping
 *    them is bit-exact, not an approximation. Components are filled
 *    in canonical (sorted-slot) order so an incremental solve and a
 *    full solve perform identical arithmetic.
 *  - Byte integration is lazy and per-flow: each flow carries a
 *    `lastUpdate` timestamp and its remaining bytes / per-link busy
 *    time are settled only when its rate actually changes or it
 *    completes — not at every solve. A flow whose re-filled rate is
 *    bit-equal to its current rate keeps its completion event
 *    untouched (the prediction is still exact), so only flows whose
 *    rate moved are re-scheduled. Stale completion events are dropped
 *    by (slot generation, epoch) checks, the SlotPool id-recycling
 *    idiom shared with the packet backend and the collective engine.
 *  - `setFullSolveVerify(true)` (tests / debugging) makes every solve
 *    additionally run the full per-component fill over all active
 *    flows and panic unless flows outside the affected set keep
 *    bit-identical rates and exact completion predictions — the
 *    equivalence contract `tests/flow/test_flow_solver_equivalence.cc`
 *    exercises end-to-end.
 *  - A flow's transmission finishes when its remaining bytes reach
 *    zero (fires onInjected); delivery follows after the path's
 *    constant hop-latency sum (fires onDelivered / simRecv matching).
 *
 * For a congestion-free message over Ring or Switch dimensions the
 * model reduces exactly to the analytical closed form
 * `bytes / bottleneck_bw + latency * hops`; FullyConnected dimensions
 * expose per-pair links at bw/(k-1) and therefore diverge from the
 * analytical aggregate-port charge in the same documented way the
 * packet backend does. Under contention, N flows crossing one link
 * each get 1/N of it (and unused headroom is redistributed max-min
 * fair), which the analytical backend cannot see beyond its own
 * transmit port.
 *
 * The hot path is allocation-free after warm-up: flows live in a
 * generational SlotPool, paths are cached LinkId vectors, incidence
 * lists and the solver's component/fill scratch are member arrays
 * stamped per solve, and every scheduled closure fits InlineEvent's
 * inline buffer.
 */
#ifndef ASTRA_NETWORK_FLOW_FLOW_NETWORK_H_
#define ASTRA_NETWORK_FLOW_FLOW_NETWORK_H_

#include <vector>

#include "common/slot_pool.h"
#include "network/flow/link_graph.h"
#include "network/network_api.h"

namespace astra {

/** See file comment. */
class FlowNetwork : public NetworkApi
{
  public:
    FlowNetwork(EventQueue &eq, const Topology &topo);

    void simSend(NpuId src, NpuId dst, Bytes bytes, int dim, uint64_t tag,
                 SendHandlers handlers) override;

    /**
     * Fault hooks (docs/fault.md). Degraded links simply fill with
     * `bandwidth * scale` capacity — the max-min solver needs no other
     * change, and the dirty-link incremental path re-rates exactly the
     * affected components. A *down* link is a zero-capacity fill: the
     * flows crossing it are frozen at rate 0 with **no** completion
     * event (a far-future event would outlive recovery and distort the
     * queue-drained time), and a later link-up re-solve re-rates and
     * re-schedules them. Busy-time accounting stays relative to the
     * nominal link bandwidth, so a degraded link's utilization reads
     * proportionally lower.
     */
    void setLinkCapacityScale(NpuId src, NpuId dst, int dim,
                              double scale) override;
    void setLinkUp(NpuId src, NpuId dst, int dim, bool up) override;

    /** Registers one link track per directed LinkGraph link. At full
     *  detail, flows additionally emit constant-rate segments (one
     *  per lazy integration stretch) on per-source tracks and a
     *  lifetime span on the source rank's track; see docs/trace.md. */
    void setTracer(trace::Tracer *tracer) override;

    /** Adds the incremental max-min solver work counters
     *  (solver_solves, solver_flows_touched, ...) — deterministic
     *  functions of the traffic, see SolverStats. */
    void fillTraceCounters(trace::Counters &counters) const override;

    const LinkGraph &graph() const { return graph_; }

    /** Flows currently transmitting. */
    size_t activeFlowCount() const { return active_.size(); }

    /** Flow slots allocated (live + recyclable); exposed so tests can
     *  verify free-list recycling, and the denominator of the
     *  bytes/flow footprint metric (telemetry). */
    size_t flowSlots() const override { return flows_.slots(); }

    /** Heartbeat gauge: in-flight flows (== activeFlowCount()). */
    size_t activeCount() const override { return active_.size(); }

    /** Adds the link graph, flow pool, incidence lists and solver
     *  scratch to the base accounting (telemetry footprint protocol).
     *  Shallow: per-flow cached paths belong to the graph's path
     *  cache, which LinkGraph::bytesInUse counts once. */
    size_t bytesInUse() const override;

    /** Max-min solves performed so far (one per dirty batch). */
    uint64_t solveCount() const { return solver_.solves; }

    /**
     * Incremental-solver work counters. `flowsTouched` sums the
     * affected-component sizes over all solves (the flows the solver
     * actually examined); `avgComponentFrac()` is the mean fraction
     * of active flows per solve that were affected — 1.0 means every
     * solve re-rated everything (the pre-incremental behaviour), and
     * values below 1 measure the work the incidence walk avoided.
     */
    struct SolverStats
    {
        uint64_t solves = 0;       //!< dirty batches solved.
        uint64_t flowsTouched = 0; //!< sum of affected flows per solve.
        uint64_t componentsTouched = 0; //!< affected components total.
        double componentFracSum = 0.0;  //!< sum of affected/active.

        double
        avgComponentFrac() const
        {
            return solves > 0 ? componentFracSum / double(solves) : 0.0;
        }
    };
    const SolverStats &solverStats() const { return solver_; }

    /** Cumulative transmit-busy nanoseconds of one directed link.
     *  Settled lazily — final once the event queue has drained. */
    TimeNs linkBusyNs(LinkId l) const { return linkBusy_[l]; }

    /**
     * Test / debug toggle: every solve additionally re-runs the
     * progressive filling over ALL active flows (per connected
     * component, in the same canonical order) and panics unless the
     * full solve agrees bit-exactly with the incremental one —
     * identical rates inside the affected set, unchanged rates and
     * exact completion predictions outside it.
     */
    void setFullSolveVerify(bool on) { fullSolveVerify_ = on; }

    /** Introspection snapshot of an active flow (tests). */
    struct FlowProbe
    {
        NpuId src = 0;
        NpuId dst = 0;
        Bytes remaining = 0.0;
        GBps rate = 0.0;
        TimeNs lastUpdateNs = 0.0;
        TimeNs predictedFinishNs = 0.0;
        uint32_t epoch = 0;
    };
    FlowProbe probeActiveFlow(size_t active_index) const;

  private:
    struct Flow
    {
        // Solver-hot fields first: a fill + apply pass stays within
        // the first cache line of each flow.
        const std::vector<LinkId> *path = nullptr;
        Bytes remaining = 0.0;  //!< as of `lastUpdate`, not "now".
        GBps rate = 0.0;
        TimeNs lastUpdate = 0.0; //!< when remaining/busy were settled.
        TimeNs predictedFinish = 0.0;
        uint32_t epoch = 0;     //!< completion-event generation.
        uint32_t activeIdx = 0; //!< position in active_ while active.
        bool active = false;
        bool hasEvent = false;
        // Completion/delivery-time fields.
        NpuId src = 0;
        NpuId dst = 0;
        uint64_t tag = 0;
        TimeNs latency = 0.0; //!< constant hop-latency sum of the path.
        TimeNs traceStart = 0.0; //!< submission time (trace lifetimes).
        /** Open coalesced rate segment (full-detail tracing): start
         *  time (< 0 = none) and the rate it was opened at. Stretches
         *  within 25% of traceRate extend the segment instead of
         *  emitting one event per max-min re-rate, and a flow whose rate
         *  never materially changed emits no segments at all — its
         *  `net` message span already tells the constant-rate story
         *  (docs/trace.md). */
        TimeNs traceSegStart = -1.0;
        GBps traceRate = 0.0;
        bool traceSegEmitted = false; //!< any segment emitted yet?
        SendHandlers handlers;
        /** Per-job attribution target captured at submission (the
         *  NetworkApi send-owner channel); must stay valid for the
         *  flow's lifetime. Null for unattributed traffic. */
        std::vector<double> *owner = nullptr;
    };

    /** Per-flow-slot solver scratch; see the member comment below. */
    struct SlotScratch
    {
        uint64_t visit = 0;        //!< BFS stamp (visitEpoch_).
        uint64_t affectedMark = 0; //!< solve counter when affected.
        double newRate = 0.0;      //!< incremental fill result.
        double verifyRate = 0.0;   //!< full-solve fill result.
    };

    /** Schedule the deferred re-solve if not already pending. */
    void markDirty();

    /** Seed every link of `path` into the dirty set (deduped). */
    void markLinksDirty(const std::vector<LinkId> &path);

    /** Settle one flow's remaining bytes and per-link busy time from
     *  its `lastUpdate` to `t` at its current (constant) rate. */
    void integrateFlow(Flow &flow, TimeNs t);

    /** Emit the open coalesced rate segment ending at `end`, if any
     *  (full-detail tracing; see Flow::traceSegStart). */
    void flushRateSegment(Flow &flow, TimeNs end);

    /** Incremental re-solve; see file comment. */
    void resolve();

    /** Append link `l`'s unvisited live members to `out` (stamping
     *  them with `epoch`), compacting stale incidence entries of
     *  departed flows in the same pass. */
    void scanLink(LinkId l, uint64_t epoch, std::vector<uint32_t> *out);

    /**
     * BFS from `seed` over the incidence lists: collect the connected
     * component of flows transitively sharing links, stamping links
     * and flows with `epoch`. No-op if `seed` was already visited
     * under `epoch`. `out` doubles as the BFS queue.
     */
    void collectComponent(LinkId seed, uint64_t epoch,
                          std::vector<uint32_t> *out);

    /**
     * Progressive filling over one component (`comp` sorted by slot,
     * stamped with `epoch`), writing each member's max-min rate into
     * `slotScratch_[slot].*out`. Links start at full capacity:
     * transitive closure guarantees no flow outside the component pins
     * bandwidth on a component link (the verify pass asserts this
     * instead of re-scanning memberships on the hot path).
     */
    void fillComponent(const std::vector<uint32_t> &comp, uint64_t epoch,
                       double SlotScratch::*out);

    /** Full-solve cross-check (setFullSolveVerify); panics on any
     *  divergence from the incremental result. */
    void verifyFullSolve();

    /** Completion-event handler; ignores stale (gen/epoch) firings. */
    void onCompletion(uint64_t id, uint32_t epoch);

    /** True if any link of `flow`'s path is administratively down. */
    bool crossesDeadLink(const Flow &flow) const;

    LinkGraph graph_;
    SlotPool<Flow> flows_;
    LinkIncidence incidence_;      //!< link -> active flows on it.
    std::vector<uint32_t> active_; //!< slots of in-flight flows.
    std::vector<TimeNs> linkBusy_; //!< cumulative busy ns per link.
    // Fault state: per-link capacity multiplier and up/down flag.
    // All-1.0 / all-up (the default) is bit-identical to the
    // pre-fault code paths (x * 1.0 == x for IEEE doubles).
    std::vector<double> capScale_;
    std::vector<uint8_t> linkUpState_;
    bool dirty_ = false;
    bool fullSolveVerify_ = false;
    /** Relative rate-change threshold for coalescing trace rate
     *  segments; cached from TraceConfig::rateEpsilon in setTracer. */
    double rateEpsilon_ = 0.25;
    SolverStats solver_;

    // Dirty-link seeds accumulated since the last solve (deduped by
    // stamp; the epoch advances when the seed list is drained).
    std::vector<LinkId> dirtySeeds_;
    std::vector<uint64_t> seedMark_;
    uint64_t seedEpoch_ = 1;

    // Component-walk scratch (per-link and per-slot stamp arrays keep
    // the BFS allocation-free; epochs advance per walk). Per-slot
    // fields live in one SlotScratch so a solve touches one cache
    // line per flow, and the array grows geometrically with the
    // pool's high-water mark (one branch per send in steady state).
    uint64_t visitEpoch_ = 0;
    std::vector<uint64_t> linkVisit_;     //!< per link.
    std::vector<SlotScratch> slotScratch_; //!< per flow slot.
    std::vector<uint32_t> comp_;     //!< current component / BFS queue.
    std::vector<uint32_t> affected_; //!< union of affected components.

    // Progressive-filling scratch (stamped per fill).
    uint64_t fillEpoch_ = 0;
    std::vector<uint64_t> fillStamp_; //!< per-link touch stamp.
    std::vector<uint32_t> touched_;   //!< links used by the component.
    std::vector<double> capLeft_;     //!< per-link unassigned capacity.
    std::vector<int> flowsLeft_;      //!< per-link unfixed flow count.
    std::vector<uint32_t> unfixed_;   //!< flows not yet assigned a rate.
};

} // namespace astra

#endif // ASTRA_NETWORK_FLOW_FLOW_NETWORK_H_
