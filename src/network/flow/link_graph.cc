#include "network/flow/link_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "network/network_api.h" // kAutoRoute

namespace astra {

namespace {

uint64_t
nodePairKey(int from, int to)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
}

} // namespace

LinkGraph::LinkGraph(const Topology &topo) : topo_(topo)
{
    // Switch nodes are numbered after the NPUs, per dimension.
    totalNodes_ = topo.npus();
    switchBase_.assign(static_cast<size_t>(topo.numDims()), -1);
    for (int d = 0; d < topo.numDims(); ++d) {
        if (topo.dim(d).type == BlockType::Switch) {
            switchBase_[static_cast<size_t>(d)] = totalNodes_;
            totalNodes_ += topo.npus() / topo.dim(d).size;
        }
    }

    linksPerDim_.assign(static_cast<size_t>(topo.numDims()), 0);
    for (int d = 0; d < topo.numDims(); ++d) {
        const Dimension &dim = topo.dim(d);
        if (dim.size < 2)
            continue;
        switch (dim.type) {
          case BlockType::Ring:
            for (NpuId npu = 0; npu < topo.npus(); ++npu) {
                NpuId next = topo.peerInDim(npu, d, 1);
                if (next != npu) {
                    addLink(npu, next, d, dim.bandwidth, dim.latency);
                    addLink(next, npu, d, dim.bandwidth, dim.latency);
                }
            }
            break;
          case BlockType::FullyConnected: {
            GBps per_link = dim.bandwidth / double(dim.size - 1);
            for (NpuId npu = 0; npu < topo.npus(); ++npu) {
                int coord = topo.coordInDim(npu, d);
                for (int pc = coord + 1; pc < dim.size; ++pc) {
                    NpuId peer = topo.peerInDim(npu, d, pc - coord);
                    addLink(npu, peer, d, per_link, dim.latency);
                    addLink(peer, npu, d, per_link, dim.latency);
                }
            }
            break;
          }
          case BlockType::Switch:
            for (NpuId npu = 0; npu < topo.npus(); ++npu) {
                int sw = switchNodeOf(d, npu);
                addLink(npu, sw, d, dim.bandwidth, dim.latency);
                addLink(sw, npu, d, dim.bandwidth, dim.latency);
            }
            break;
        }
    }
}

void
LinkGraph::addLink(int from, int to, int dim, GBps bw, TimeNs lat)
{
    uint64_t key = nodePairKey(from, to);
    auto [it, inserted] =
        linkIndex_.emplace(key, static_cast<LinkId>(links_.size()));
    if (!inserted) {
        // Ring(2): both directions map to the same neighbour pair;
        // keep the first definition (identical parameters).
        return;
    }
    links_.push_back(Link{from, to, dim, bw, lat});
    ++linksPerDim_[static_cast<size_t>(dim)];
}

LinkId
LinkGraph::linkBetween(int from, int to) const
{
    auto it = linkIndex_.find(nodePairKey(from, to));
    ASTRA_ASSERT(it != linkIndex_.end(), "no link between nodes %d and %d",
                 from, to);
    return it->second;
}

int
LinkGraph::groupIndexOf(int dim, NpuId member) const
{
    // Remove dimension `dim` from the mixed-radix id: the remaining
    // digits enumerate the dimension's groups densely.
    int stride = topo_.strideOf(dim);
    int k = topo_.dim(dim).size;
    int low = member % stride;
    int high = member / (stride * k);
    return low + high * stride;
}

int
LinkGraph::switchNodeOf(int dim, NpuId member) const
{
    int base = switchBase_[static_cast<size_t>(dim)];
    ASTRA_ASSERT(base >= 0, "dimension %d has no switch nodes", dim);
    return base + groupIndexOf(dim, member);
}

void
LinkGraph::routeInDim(int dim, NpuId from, NpuId to,
                      std::vector<int> &nodes) const
{
    int ca = topo_.coordInDim(from, dim);
    int cb = topo_.coordInDim(to, dim);
    if (ca == cb)
        return;
    const Dimension &d = topo_.dim(dim);
    switch (d.type) {
      case BlockType::Ring: {
        int k = d.size;
        int fwd = ((cb - ca) % k + k) % k;
        int step = (fwd <= k - fwd) ? 1 : -1;
        int hops = std::min(fwd, k - fwd);
        NpuId cur = from;
        for (int i = 0; i < hops; ++i) {
            cur = topo_.peerInDim(cur, dim, step);
            nodes.push_back(cur);
        }
        break;
      }
      case BlockType::FullyConnected:
        nodes.push_back(topo_.peerInDim(from, dim, cb - ca));
        break;
      case BlockType::Switch:
        nodes.push_back(switchNodeOf(dim, from));
        nodes.push_back(topo_.peerInDim(from, dim, cb - ca));
        break;
    }
}

std::vector<int>
LinkGraph::nodeRoute(NpuId src, NpuId dst, int dim) const
{
    std::vector<int> nodes;
    nodes.push_back(src);
    if (dim != kAutoRoute) {
        routeInDim(dim, src, dst, nodes);
        ASTRA_ASSERT(nodes.back() == dst,
                     "dim %d does not connect NPUs %d and %d", dim, src,
                     dst);
        return nodes;
    }
    NpuId cur = src;
    for (int d = 0; d < topo_.numDims(); ++d) {
        int target_coord = topo_.coordInDim(dst, d);
        int cur_coord = topo_.coordInDim(cur, d);
        if (target_coord == cur_coord)
            continue;
        NpuId next = cur + (target_coord - cur_coord) * topo_.strideOf(d);
        routeInDim(d, cur, next, nodes);
        cur = next;
    }
    ASTRA_ASSERT(nodes.back() == dst, "routing failed between %d and %d",
                 src, dst);
    return nodes;
}

const std::vector<LinkId> *
LinkGraph::pathFor(NpuId src, NpuId dst, int dim)
{
    // Pack (src, dst, dim) into one key; node ids stay well below
    // 2^28 and dim is a small non-negative index or kAutoRoute (-1).
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(src))
                    << 36) |
                   (static_cast<uint64_t>(static_cast<uint32_t>(dst))
                    << 8) |
                   static_cast<uint8_t>(dim + 1);
    auto it = pathCache_.find(key);
    if (it == pathCache_.end()) {
        std::vector<int> nodes = nodeRoute(src, dst, dim);
        std::vector<LinkId> path;
        path.reserve(nodes.size() - 1);
        for (size_t i = 0; i + 1 < nodes.size(); ++i)
            path.push_back(linkBetween(nodes[i], nodes[i + 1]));
        it = pathCache_.emplace(key, std::move(path)).first;
    }
    return &it->second;
}

TimeNs
LinkGraph::pathLatency(const std::vector<LinkId> &path) const
{
    TimeNs lat = 0.0;
    for (LinkId id : path)
        lat += links_[id].latency;
    return lat;
}

std::vector<LinkId>
LinkGraph::faultLinks(NpuId src, NpuId dst, int dim)
{
    ASTRA_USER_CHECK(src >= 0 && src < topo_.npus(),
                     "fault selector: src %d out of range for %d NPUs",
                     src, topo_.npus());
    ASTRA_USER_CHECK(dim < topo_.numDims(),
                     "fault selector: dim %d out of range for %d dims",
                     dim, topo_.numDims());
    if (dst >= 0) {
        ASTRA_USER_CHECK(dst < topo_.npus(),
                         "fault selector: dst %d out of range for %d "
                         "NPUs", dst, topo_.npus());
        ASTRA_USER_CHECK(dst != src, "fault selector: src == dst");
        return *pathFor(src, dst, dim < 0 ? kAutoRoute : dim);
    }
    std::vector<LinkId> out;
    for (LinkId id = 0; id < links_.size(); ++id) {
        const Link &l = links_[id];
        if (l.from == src && (dim < 0 || l.dim == dim))
            out.push_back(id);
    }
    return out;
}

size_t
LinkGraph::bytesInUse() const
{
    // unordered_map nodes: payload + a next pointer per node, plus one
    // bucket pointer per bucket. An estimate of libstdc++'s layout —
    // but a pure function of the key set, hence deterministic.
    constexpr size_t kHashNode = sizeof(void *);
    size_t bytes = links_.capacity() * sizeof(Link) +
                   linksPerDim_.capacity() * sizeof(int) +
                   switchBase_.capacity() * sizeof(int);
    bytes += linkIndex_.bucket_count() * sizeof(void *) +
             linkIndex_.size() *
                 (sizeof(uint64_t) + sizeof(LinkId) + kHashNode);
    bytes += pathCache_.bucket_count() * sizeof(void *);
    for (const auto &[key, path] : pathCache_) {
        (void)key;
        bytes += sizeof(uint64_t) + sizeof(std::vector<LinkId>) +
                 kHashNode + path.capacity() * sizeof(LinkId);
    }
    return bytes;
}

void
LinkIncidence::reset(size_t link_count)
{
    // clear() + resize keeps already-grown inner vectors' capacity.
    for (std::vector<Entry> &list : lists_)
        list.clear();
    lists_.resize(link_count);
}

} // namespace astra
