/**
 * @file
 * The analytical network backend of §IV-C.
 *
 * A message of `bytes` routed over `hops` links in dimension `d` costs
 *
 *     time = link_latency(d) * hops + bytes / bandwidth(d)
 *
 * instead of being simulated packet by packet. On top of the pure
 * equation, the backend (by default) serializes transmissions sharing
 * a (source NPU, dimension) transmit port: a message starts only when
 * the port is free, and occupies it for its serialization delay. This
 * first-order contention model is what makes chunked hierarchical
 * collectives pipeline across dimensions and reproduces the
 * bandwidth-bottleneck behaviour of Table IV; disabling it
 * (`serialize = false`) yields the pure closed-form variant.
 */
#ifndef ASTRA_NETWORK_ANALYTICAL_H_
#define ASTRA_NETWORK_ANALYTICAL_H_

#include <map>
#include <vector>

#include "network/network_api.h"

namespace astra {

/** Equation-based network backend (see file comment). */
class AnalyticalNetwork : public NetworkApi
{
  public:
    /**
     * @param serialize  enable per-(NPU,dim) transmit-port
     *                   serialization (first-order congestion).
     */
    AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                      bool serialize = true);

    void simSend(NpuId src, NpuId dst, Bytes bytes, int dim, uint64_t tag,
                 SendHandlers handlers) override;

    /**
     * Fault hooks (docs/fault.md). The analytical model has no
     * individual links — its only serialization points are the
     * (source NPU, dimension) transmit ports — so fault selectors are
     * coarsened to that granularity: a concrete `dst` only picks the
     * *charged* dimension of the route, and a fault on one of several
     * parallel links is indistinguishable from degrading the whole
     * port (documented blindness, like the interference caveat). A
     * degraded port serializes at `bandwidth * scale`; a *down* port
     * parks whole sends (before any accounting) and re-issues them in
     * FIFO order when the port comes back up.
     */
    void setLinkCapacityScale(NpuId src, NpuId dst, int dim,
                              double scale) override;
    void setLinkUp(NpuId src, NpuId dst, int dim, bool up) override;

    /** Registers one link track per (NPU, dim) TX port — the model's
     *  serialization points; see docs/trace.md. */
    void setTracer(trace::Tracer *tracer) override;

    /** The time at which (npu, dim)'s transmit port frees up. */
    TimeNs txFreeAt(NpuId npu, int dim) const;

    /** Adds the per-port arrays and parked-send lots to the base
     *  accounting (telemetry footprint protocol). */
    size_t bytesInUse() const override;

  private:
    struct Route
    {
        int dim;        //!< dimension whose TX port is charged.
        GBps bandwidth; //!< serialization bandwidth.
        TimeNs latency; //!< total hop-latency along the path.
    };

    /** Resolve routing for a message (single-dim or dimension-ordered). */
    Route resolve(NpuId src, NpuId dst, int dim) const;

    /** A send held at an administratively-down transmit port. */
    struct ParkedSend
    {
        NpuId src = 0;
        NpuId dst = 0;
        Bytes bytes = 0.0;
        int dim = 0;
        uint64_t tag = 0;
        SendHandlers handlers;
        std::vector<double> *owner = nullptr;
    };

    /** Dense index of (npu, dim)'s transmit port. */
    size_t portIndex(NpuId npu, int dim) const;

    /** Transmit ports a fault selector names (see setLink* docs). */
    std::vector<size_t> faultPorts(NpuId src, NpuId dst, int dim) const;

    /**
     * Claim (src, dim)'s transmit port for `ser` ns starting no earlier
     * than now; returns the granted start time and advances the port's
     * free time. Uses the shared kTimeEpsNs tolerance (common/units.h)
     * for its sanity check, matching EventQueue's past-time check so a
     * port-derived timestamp that is within tolerance of now is always
     * schedulable.
     */
    TimeNs claimTxPort(NpuId src, int dim, TimeNs ser);

    bool serialize_;
    /** txFree_[npu * numDims + dim]: next free time of that TX port. */
    std::vector<TimeNs> txFree_;
    /** Cumulative serialization time per TX port (same indexing);
     *  feeds the per-dim busy-time / max-link-utilization stats. The
     *  analytical model's only serialization points are the transmit
     *  ports, so they are its "links". */
    std::vector<TimeNs> txBusy_;
    // Fault state (same TX-port indexing): service-rate scale and
    // up/down flag — all-1.0 / all-up defaults are bit-identical to
    // the pre-fault arithmetic — plus the down-port parking lots.
    std::vector<double> txScale_;
    std::vector<uint8_t> txUp_;
    std::map<size_t, std::vector<ParkedSend>> parked_;
};

} // namespace astra

#endif // ASTRA_NETWORK_ANALYTICAL_H_
