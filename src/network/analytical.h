/**
 * @file
 * The analytical network backend of §IV-C.
 *
 * A message of `bytes` routed over `hops` links in dimension `d` costs
 *
 *     time = link_latency(d) * hops + bytes / bandwidth(d)
 *
 * instead of being simulated packet by packet. On top of the pure
 * equation, the backend (by default) serializes transmissions sharing
 * a (source NPU, dimension) transmit port: a message starts only when
 * the port is free, and occupies it for its serialization delay. This
 * first-order contention model is what makes chunked hierarchical
 * collectives pipeline across dimensions and reproduces the
 * bandwidth-bottleneck behaviour of Table IV; disabling it
 * (`serialize = false`) yields the pure closed-form variant.
 */
#ifndef ASTRA_NETWORK_ANALYTICAL_H_
#define ASTRA_NETWORK_ANALYTICAL_H_

#include <vector>

#include "network/network_api.h"

namespace astra {

/** Equation-based network backend (see file comment). */
class AnalyticalNetwork : public NetworkApi
{
  public:
    /**
     * @param serialize  enable per-(NPU,dim) transmit-port
     *                   serialization (first-order congestion).
     */
    AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                      bool serialize = true);

    void simSend(NpuId src, NpuId dst, Bytes bytes, int dim, uint64_t tag,
                 SendHandlers handlers) override;

    /** The time at which (npu, dim)'s transmit port frees up. */
    TimeNs txFreeAt(NpuId npu, int dim) const;

  private:
    struct Route
    {
        int dim;        //!< dimension whose TX port is charged.
        GBps bandwidth; //!< serialization bandwidth.
        TimeNs latency; //!< total hop-latency along the path.
    };

    /** Resolve routing for a message (single-dim or dimension-ordered). */
    Route resolve(NpuId src, NpuId dst, int dim) const;

    /**
     * Claim (src, dim)'s transmit port for `ser` ns starting no earlier
     * than now; returns the granted start time and advances the port's
     * free time. Uses the shared kTimeEpsNs tolerance (common/units.h)
     * for its sanity check, matching EventQueue's past-time check so a
     * port-derived timestamp that is within tolerance of now is always
     * schedulable.
     */
    TimeNs claimTxPort(NpuId src, int dim, TimeNs ser);

    bool serialize_;
    /** txFree_[npu * numDims + dim]: next free time of that TX port. */
    std::vector<TimeNs> txFree_;
    /** Cumulative serialization time per TX port (same indexing);
     *  feeds the per-dim busy-time / max-link-utilization stats. The
     *  analytical model's only serialization points are the transmit
     *  ports, so they are its "links". */
    std::vector<TimeNs> txBusy_;
};

} // namespace astra

#endif // ASTRA_NETWORK_ANALYTICAL_H_
