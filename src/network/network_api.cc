#include "network/network_api.h"

#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "network/analytical.h"
#include "network/detailed/packet_network.h"
#include "network/flow/flow_network.h"

namespace astra {

NetworkApi::NetworkApi(EventQueue &eq, const Topology &topo)
    : eq_(eq), topo_(topo)
{
    stats_.bytesPerDim.assign(static_cast<size_t>(topo.numDims()), 0.0);
    stats_.busyTimePerDim.assign(static_cast<size_t>(topo.numDims()),
                                 0.0);
    stats_.linksPerDim.assign(static_cast<size_t>(topo.numDims()), 0);
}

void
NetworkApi::simRecv(NpuId dst, NpuId src, uint64_t tag, EventCallback cb)
{
    PendingKey key{dst, src, tag};
    auto it = arrived_.find(key);
    if (it != arrived_.end()) {
        // Message already delivered; consume one arrival.
        if (--it->second == 0)
            arrived_.erase(it);
        // Fire asynchronously to keep callback ordering uniform.
        eq_.schedule(0.0, std::move(cb));
        return;
    }
    posted_[key].push_back(std::move(cb));
}

void
NetworkApi::simSchedule(TimeNs delay, EventCallback cb)
{
    eq_.schedule(delay, std::move(cb));
}

void
NetworkApi::setLinkCapacityScale(NpuId src, NpuId dst, int dim,
                                 double scale)
{
    (void)src;
    (void)dst;
    (void)dim;
    (void)scale;
    fatal("this network backend does not support link fault injection");
}

void
NetworkApi::setLinkUp(NpuId src, NpuId dst, int dim, bool up)
{
    (void)src;
    (void)dst;
    (void)dim;
    (void)up;
    fatal("this network backend does not support link fault injection");
}

size_t
NetworkApi::bytesInUse() const
{
    // std::map nodes: payload plus the three pointers + color of an
    // rb-tree node (an estimate that is still a pure function of the
    // live key set, so deterministic).
    constexpr size_t kNodeOverhead = 4 * sizeof(void *);
    size_t bytes = stats_.bytesPerDim.capacity() * sizeof(double) +
                   stats_.busyTimePerDim.capacity() * sizeof(double) +
                   stats_.linksPerDim.capacity() * sizeof(int);
    bytes += arrived_.size() *
             (sizeof(PendingKey) + sizeof(int) + kNodeOverhead);
    for (const auto &[key, cbs] : posted_) {
        (void)key;
        bytes += sizeof(PendingKey) + kNodeOverhead +
                 cbs.capacity() * sizeof(EventCallback);
    }
    return bytes;
}

std::vector<NetworkApi::PendingIo>
NetworkApi::danglingRecvs() const
{
    std::vector<PendingIo> out;
    for (const auto &[key, cbs] : posted_)
        out.push_back({key.dst, key.src, key.tag,
                       static_cast<int>(cbs.size())});
    return out;
}

std::vector<NetworkApi::PendingIo>
NetworkApi::unclaimedDeliveries() const
{
    std::vector<PendingIo> out;
    for (const auto &[key, count] : arrived_)
        out.push_back({key.dst, key.src, key.tag, count});
    return out;
}

std::string
NetworkApi::danglingSummary(size_t max_items) const
{
    auto describe = [max_items](const std::vector<PendingIo> &items,
                                std::string &out) {
        char buf[128];
        for (size_t i = 0; i < items.size(); ++i) {
            if (i == max_items) {
                std::snprintf(buf, sizeof(buf), ", ... (%zu more)",
                              items.size() - max_items);
                out += buf;
                break;
            }
            std::snprintf(buf, sizeof(buf),
                          "%sdst=%d src=%d tag=%llu x%d",
                          i == 0 ? "" : ", ", items[i].dst, items[i].src,
                          static_cast<unsigned long long>(items[i].tag),
                          items[i].count);
            out += buf;
        }
    };
    std::vector<PendingIo> recvs = danglingRecvs();
    std::vector<PendingIo> sends = unclaimedDeliveries();
    if (recvs.empty() && sends.empty())
        return "no dangling sends or recvs";
    std::string out;
    if (!recvs.empty()) {
        out += std::to_string(recvs.size()) + " dangling recv key(s) [";
        describe(recvs, out);
        out += "]";
    }
    if (!sends.empty()) {
        if (!out.empty())
            out += "; ";
        out += std::to_string(sends.size()) +
               " unclaimed delivery key(s) [";
        describe(sends, out);
        out += "]";
    }
    return out;
}

void
NetworkApi::deliver(NpuId src, NpuId dst, uint64_t tag,
                    EventCallback on_delivered)
{
    if (on_delivered)
        on_delivered();
    if (tag == kNoTag)
        return;
    PendingKey key{dst, src, tag};
    auto it = posted_.find(key);
    if (it != posted_.end()) {
        EventCallback cb = std::move(it->second.front());
        it->second.erase(it->second.begin());
        if (it->second.empty())
            posted_.erase(it);
        cb();
        return;
    }
    ++arrived_[key];
}

void
NetworkApi::deliverLoopback(NpuId src, uint64_t tag,
                            SendHandlers handlers)
{
    eq_.schedule(0.0, [this, src, tag,
                       handlers = std::move(handlers)]() mutable {
        if (handlers.onInjected)
            handlers.onInjected();
        deliver(src, src, tag, std::move(handlers.onDelivered));
    });
}

void
NetworkApi::scheduleDelivery(TimeNs at, NpuId src, NpuId dst,
                             uint64_t tag, EventCallback on_delivered)
{
    if (tag == kNoTag) {
        eq_.scheduleAt(at, std::move(on_delivered));
    } else {
        eq_.scheduleAt(at, [this, src, dst, tag,
                            cb = std::move(on_delivered)]() mutable {
            deliver(src, dst, tag, std::move(cb));
        });
    }
}

int
NetworkApi::accountDim(NpuId src, NpuId dst, int dim) const
{
    if (dim != kAutoRoute)
        return dim;
    for (int d = 0; d < topo_.numDims(); ++d) {
        if (topo_.coordInDim(src, d) != topo_.coordInDim(dst, d))
            return d;
    }
    return 0;
}

void
NetworkApi::account(int dim, Bytes bytes)
{
    ++stats_.messages;
    if (dim >= 0 && dim < topo_.numDims())
        stats_.bytesPerDim[static_cast<size_t>(dim)] += bytes;
}

void
NetworkApi::accountBusy(int dim, TimeNs delta, TimeNs link_total)
{
    if (dim >= 0 && dim < topo_.numDims())
        stats_.busyTimePerDim[static_cast<size_t>(dim)] += delta;
    if (link_total > stats_.maxLinkBusyNs)
        stats_.maxLinkBusyNs = link_total;
}

const char *
backendName(NetworkBackendKind kind)
{
    switch (kind) {
      case NetworkBackendKind::Analytical:
        return "analytical";
      case NetworkBackendKind::AnalyticalPure:
        return "analytical-pure";
      case NetworkBackendKind::Flow:
        return "flow";
      case NetworkBackendKind::Packet:
        return "packet";
    }
    panic("unknown network backend kind");
}

std::unique_ptr<NetworkApi>
makeNetwork(NetworkBackendKind kind, EventQueue &eq, const Topology &topo)
{
    switch (kind) {
      case NetworkBackendKind::Analytical:
        return std::make_unique<AnalyticalNetwork>(eq, topo, true);
      case NetworkBackendKind::AnalyticalPure:
        return std::make_unique<AnalyticalNetwork>(eq, topo, false);
      case NetworkBackendKind::Flow:
        return std::make_unique<FlowNetwork>(eq, topo);
      case NetworkBackendKind::Packet:
        return std::make_unique<PacketNetwork>(eq, topo);
    }
    panic("unknown network backend kind");
}

} // namespace astra
