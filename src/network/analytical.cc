#include "network/analytical.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace astra {

AnalyticalNetwork::AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                                     bool serialize)
    : NetworkApi(eq, topo), serialize_(serialize)
{
    txFree_.assign(
        static_cast<size_t>(topo.npus()) *
            static_cast<size_t>(topo.numDims()),
        0.0);
}

TimeNs
AnalyticalNetwork::txFreeAt(NpuId npu, int dim) const
{
    return txFree_[static_cast<size_t>(npu) *
                       static_cast<size_t>(topo_.numDims()) +
                   static_cast<size_t>(dim)];
}

AnalyticalNetwork::Route
AnalyticalNetwork::resolve(NpuId src, NpuId dst, int dim) const
{
    if (dim != kAutoRoute) {
        ASTRA_ASSERT(dim >= 0 && dim < topo_.numDims(),
                     "simSend: bad dimension %d", dim);
        const Dimension &d = topo_.dim(dim);
        int hops = topo_.hopsInDim(topo_.coordInDim(src, dim),
                                   topo_.coordInDim(dst, dim), dim);
        ASTRA_ASSERT(hops > 0 || src == dst,
                     "simSend: src %d and dst %d are not peers in dim %d",
                     src, dst, dim);
        return Route{dim, d.bandwidth, d.latency * hops};
    }

    // Dimension-ordered routing: accumulate hop latency across every
    // dimension the path traverses; serialization is charged at the
    // bottleneck (slowest) traversed dimension's transmit port.
    TimeNs latency = 0.0;
    GBps bottleneck = 0.0;
    int charged_dim = 0;
    bool found = false;
    for (int d = 0; d < topo_.numDims(); ++d) {
        int hops = topo_.hopsInDim(topo_.coordInDim(src, d),
                                   topo_.coordInDim(dst, d), d);
        if (hops == 0)
            continue;
        latency += topo_.dim(d).latency * hops;
        if (!found || topo_.dim(d).bandwidth < bottleneck) {
            bottleneck = topo_.dim(d).bandwidth;
            charged_dim = d;
            found = true;
        }
    }
    if (!found) {
        // Self-send: deliver after zero network time.
        return Route{0, topo_.dim(0).bandwidth, 0.0};
    }
    return Route{charged_dim, bottleneck, latency};
}

void
AnalyticalNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                           uint64_t tag, SendHandlers handlers)
{
    ASTRA_ASSERT(bytes >= 0.0, "simSend: negative size");
    Route route = resolve(src, dst, dim);
    account(route.dim, bytes);

    if (src == dst) {
        // Loopback: no network resources involved.
        eq_.schedule(0.0, [this, src, dst, tag,
                           handlers = std::move(handlers)]() mutable {
            if (handlers.onInjected)
                handlers.onInjected();
            deliver(src, dst, tag, std::move(handlers.onDelivered));
        });
        return;
    }

    TimeNs ser = txTime(bytes, route.bandwidth);
    TimeNs start = eq_.now();
    if (serialize_) {
        TimeNs &free_at =
            txFree_[static_cast<size_t>(src) *
                        static_cast<size_t>(topo_.numDims()) +
                    static_cast<size_t>(route.dim)];
        start = std::max(start, free_at);
        free_at = start + ser;
    }
    TimeNs injected_at = start + ser;
    TimeNs delivered_at = injected_at + route.latency;

    if (handlers.onInjected)
        eq_.scheduleAt(injected_at, std::move(handlers.onInjected));
    eq_.scheduleAt(delivered_at,
                   [this, src, dst, tag,
                    cb = std::move(handlers.onDelivered)]() mutable {
                       deliver(src, dst, tag, std::move(cb));
                   });
}

} // namespace astra
