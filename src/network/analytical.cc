#include "network/analytical.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace astra {

AnalyticalNetwork::AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                                     bool serialize)
    : NetworkApi(eq, topo), serialize_(serialize)
{
    txFree_.assign(
        static_cast<size_t>(topo.npus()) *
            static_cast<size_t>(topo.numDims()),
        0.0);
}

TimeNs
AnalyticalNetwork::txFreeAt(NpuId npu, int dim) const
{
    return txFree_[static_cast<size_t>(npu) *
                       static_cast<size_t>(topo_.numDims()) +
                   static_cast<size_t>(dim)];
}

AnalyticalNetwork::Route
AnalyticalNetwork::resolve(NpuId src, NpuId dst, int dim) const
{
    if (dim != kAutoRoute) {
        ASTRA_ASSERT(dim >= 0 && dim < topo_.numDims(),
                     "simSend: bad dimension %d", dim);
        const Dimension &d = topo_.dim(dim);
        int hops = topo_.hopsInDim(topo_.coordInDim(src, dim),
                                   topo_.coordInDim(dst, dim), dim);
        ASTRA_ASSERT(hops > 0 || src == dst,
                     "simSend: src %d and dst %d are not peers in dim %d",
                     src, dst, dim);
        return Route{dim, d.bandwidth, d.latency * hops};
    }

    // Dimension-ordered routing: accumulate hop latency across every
    // dimension the path traverses; serialization is charged at the
    // bottleneck (slowest) traversed dimension's transmit port.
    TimeNs latency = 0.0;
    GBps bottleneck = 0.0;
    int charged_dim = 0;
    bool found = false;
    for (int d = 0; d < topo_.numDims(); ++d) {
        int hops = topo_.hopsInDim(topo_.coordInDim(src, d),
                                   topo_.coordInDim(dst, d), d);
        if (hops == 0)
            continue;
        latency += topo_.dim(d).latency * hops;
        if (!found || topo_.dim(d).bandwidth < bottleneck) {
            bottleneck = topo_.dim(d).bandwidth;
            charged_dim = d;
            found = true;
        }
    }
    if (!found) {
        // Self-send: deliver after zero network time.
        return Route{0, topo_.dim(0).bandwidth, 0.0};
    }
    return Route{charged_dim, bottleneck, latency};
}

TimeNs
AnalyticalNetwork::claimTxPort(NpuId src, int dim, TimeNs ser)
{
    TimeNs &free_at = txFree_[static_cast<size_t>(src) *
                                  static_cast<size_t>(topo_.numDims()) +
                              static_cast<size_t>(dim)];
    ASTRA_ASSERT(ser >= 0.0, "negative serialization time %g", ser);
    TimeNs now = eq_.now();
    TimeNs start = std::max(now, free_at);
    free_at = start + ser;
    // The granted start is at/after now by construction, and the
    // chained bandwidth arithmetic keeps derived event times within
    // the shared kTimeEpsNs tolerance that EventQueue::scheduleAt
    // accepts — both sides of that contract live in common/units.h.
    ASTRA_ASSERT(timeNotBefore(start, now), "tx port granted the past");
    return start;
}

void
AnalyticalNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                           uint64_t tag, SendHandlers handlers)
{
    ASTRA_ASSERT(bytes >= 0.0, "simSend: negative size");
    Route route = resolve(src, dst, dim);
    account(route.dim, bytes);

    if (src == dst) {
        // Loopback: no network resources involved.
        eq_.schedule(0.0, [this, src, dst, tag,
                           handlers = std::move(handlers)]() mutable {
            if (handlers.onInjected)
                handlers.onInjected();
            deliver(src, dst, tag, std::move(handlers.onDelivered));
        });
        return;
    }

    TimeNs ser = txTime(bytes, route.bandwidth);
    TimeNs start = serialize_ ? claimTxPort(src, route.dim, ser)
                              : eq_.now();
    TimeNs injected_at = start + ser;
    TimeNs delivered_at = injected_at + route.latency;

    if (handlers.onInjected)
        eq_.scheduleAt(injected_at, std::move(handlers.onInjected));
    if (tag == kNoTag) {
        // Untagged (callback-only) messages skip simRecv matching
        // entirely, so the completion callback itself is the delivery
        // event: no wrapper closure, no deliver() dispatch. A null
        // callback still schedules (as an empty event) to keep event
        // counts and final-time semantics identical.
        eq_.scheduleAt(delivered_at, std::move(handlers.onDelivered));
    } else {
        eq_.scheduleAt(delivered_at,
                       [this, src, dst, tag,
                        cb = std::move(handlers.onDelivered)]() mutable {
                           deliver(src, dst, tag, std::move(cb));
                       });
    }
}

} // namespace astra
