#include "network/analytical.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace astra {

AnalyticalNetwork::AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                                     bool serialize)
    : NetworkApi(eq, topo), serialize_(serialize)
{
    txFree_.assign(
        static_cast<size_t>(topo.npus()) *
            static_cast<size_t>(topo.numDims()),
        0.0);
    txBusy_.assign(txFree_.size(), 0.0);
    // One serialization point per (NPU, dimension) transmit port.
    for (int d = 0; d < topo.numDims(); ++d)
        stats_.linksPerDim[static_cast<size_t>(d)] = topo.npus();
}

TimeNs
AnalyticalNetwork::txFreeAt(NpuId npu, int dim) const
{
    return txFree_[static_cast<size_t>(npu) *
                       static_cast<size_t>(topo_.numDims()) +
                   static_cast<size_t>(dim)];
}

AnalyticalNetwork::Route
AnalyticalNetwork::resolve(NpuId src, NpuId dst, int dim) const
{
    if (dim != kAutoRoute) {
        ASTRA_ASSERT(dim >= 0 && dim < topo_.numDims(),
                     "simSend: bad dimension %d", dim);
        const Dimension &d = topo_.dim(dim);
        int hops = topo_.hopsInDim(topo_.coordInDim(src, dim),
                                   topo_.coordInDim(dst, dim), dim);
        ASTRA_ASSERT(hops > 0 || src == dst,
                     "simSend: src %d and dst %d are not peers in dim %d",
                     src, dst, dim);
        return Route{dim, d.bandwidth, d.latency * hops};
    }

    // Dimension-ordered routing: accumulate hop latency across every
    // dimension the path traverses; serialization is charged at the
    // bottleneck (slowest) traversed dimension's transmit port.
    TimeNs latency = 0.0;
    GBps bottleneck = 0.0;
    int charged_dim = 0;
    bool found = false;
    for (int d = 0; d < topo_.numDims(); ++d) {
        int hops = topo_.hopsInDim(topo_.coordInDim(src, d),
                                   topo_.coordInDim(dst, d), d);
        if (hops == 0)
            continue;
        latency += topo_.dim(d).latency * hops;
        if (!found || topo_.dim(d).bandwidth < bottleneck) {
            bottleneck = topo_.dim(d).bandwidth;
            charged_dim = d;
            found = true;
        }
    }
    if (!found) {
        // Self-send: deliver after zero network time.
        return Route{0, topo_.dim(0).bandwidth, 0.0};
    }
    return Route{charged_dim, bottleneck, latency};
}

TimeNs
AnalyticalNetwork::claimTxPort(NpuId src, int dim, TimeNs ser)
{
    TimeNs &free_at = txFree_[static_cast<size_t>(src) *
                                  static_cast<size_t>(topo_.numDims()) +
                              static_cast<size_t>(dim)];
    ASTRA_ASSERT(ser >= 0.0, "negative serialization time %g", ser);
    TimeNs now = eq_.now();
    TimeNs start = std::max(now, free_at);
    free_at = start + ser;
    // The granted start is at/after now by construction, and the
    // chained bandwidth arithmetic keeps derived event times within
    // the shared kTimeEpsNs tolerance that EventQueue::scheduleAt
    // accepts — both sides of that contract live in common/units.h.
    ASTRA_ASSERT(timeNotBefore(start, now), "tx port granted the past");
    return start;
}

void
AnalyticalNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                           uint64_t tag, SendHandlers handlers)
{
    ASTRA_ASSERT(bytes >= 0.0, "simSend: negative size");
    if (src == dst) {
        // Loopback: no network resources — and, like the flow and
        // packet backends, no stats accounting (the messages /
        // bytesPerDim counters track *network* traffic only, so the
        // columns stay comparable across a backend sweep axis).
        deliverLoopback(src, tag, std::move(handlers));
        return;
    }
    Route route = resolve(src, dst, dim);
    account(route.dim, bytes);

    TimeNs ser = txTime(bytes, route.bandwidth);
    TimeNs &busy = txBusy_[static_cast<size_t>(src) *
                               static_cast<size_t>(topo_.numDims()) +
                           static_cast<size_t>(route.dim)];
    busy += ser;
    accountBusy(route.dim, ser, busy);
    TimeNs start = serialize_ ? claimTxPort(src, route.dim, ser)
                              : eq_.now();
    TimeNs injected_at = start + ser;
    TimeNs delivered_at = injected_at + route.latency;

    if (handlers.onInjected)
        eq_.scheduleAt(injected_at, std::move(handlers.onInjected));
    scheduleDelivery(delivered_at, src, dst, tag,
                     std::move(handlers.onDelivered));
}

} // namespace astra
