#include "network/analytical.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "trace/tracer.h"

namespace astra {

AnalyticalNetwork::AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                                     bool serialize)
    : NetworkApi(eq, topo), serialize_(serialize)
{
    txFree_.assign(
        static_cast<size_t>(topo.npus()) *
            static_cast<size_t>(topo.numDims()),
        0.0);
    txBusy_.assign(txFree_.size(), 0.0);
    txScale_.assign(txFree_.size(), 1.0);
    txUp_.assign(txFree_.size(), 1);
    // One serialization point per (NPU, dimension) transmit port.
    for (int d = 0; d < topo.numDims(); ++d)
        stats_.linksPerDim[static_cast<size_t>(d)] = topo.npus();
}

void
AnalyticalNetwork::setTracer(trace::Tracer *tracer)
{
    NetworkApi::setTracer(tracer);
    if (!tracer)
        return;
    for (NpuId n = 0; n < topo_.npus(); ++n)
        for (int d = 0; d < topo_.numDims(); ++d)
            tracer->registerLink(
                uint32_t(portIndex(n, d)),
                detail::formatV("tx n%d.d%d", n, d));
}

TimeNs
AnalyticalNetwork::txFreeAt(NpuId npu, int dim) const
{
    return txFree_[static_cast<size_t>(npu) *
                       static_cast<size_t>(topo_.numDims()) +
                   static_cast<size_t>(dim)];
}

size_t
AnalyticalNetwork::bytesInUse() const
{
    constexpr size_t kNodeOverhead = 4 * sizeof(void *);
    size_t bytes = NetworkApi::bytesInUse() +
                   txFree_.capacity() * sizeof(TimeNs) +
                   txBusy_.capacity() * sizeof(TimeNs) +
                   txScale_.capacity() * sizeof(double) +
                   txUp_.capacity() * sizeof(uint8_t);
    for (const auto &[port, lot] : parked_) {
        (void)port;
        bytes += sizeof(size_t) + kNodeOverhead +
                 lot.capacity() * sizeof(ParkedSend);
    }
    return bytes;
}

AnalyticalNetwork::Route
AnalyticalNetwork::resolve(NpuId src, NpuId dst, int dim) const
{
    if (dim != kAutoRoute) {
        ASTRA_ASSERT(dim >= 0 && dim < topo_.numDims(),
                     "simSend: bad dimension %d", dim);
        const Dimension &d = topo_.dim(dim);
        int hops = topo_.hopsInDim(topo_.coordInDim(src, dim),
                                   topo_.coordInDim(dst, dim), dim);
        ASTRA_ASSERT(hops > 0 || src == dst,
                     "simSend: src %d and dst %d are not peers in dim %d",
                     src, dst, dim);
        return Route{dim, d.bandwidth, d.latency * hops};
    }

    // Dimension-ordered routing: accumulate hop latency across every
    // dimension the path traverses; serialization is charged at the
    // bottleneck (slowest) traversed dimension's transmit port.
    TimeNs latency = 0.0;
    GBps bottleneck = 0.0;
    int charged_dim = 0;
    bool found = false;
    for (int d = 0; d < topo_.numDims(); ++d) {
        int hops = topo_.hopsInDim(topo_.coordInDim(src, d),
                                   topo_.coordInDim(dst, d), d);
        if (hops == 0)
            continue;
        latency += topo_.dim(d).latency * hops;
        if (!found || topo_.dim(d).bandwidth < bottleneck) {
            bottleneck = topo_.dim(d).bandwidth;
            charged_dim = d;
            found = true;
        }
    }
    if (!found) {
        // Self-send: deliver after zero network time.
        return Route{0, topo_.dim(0).bandwidth, 0.0};
    }
    return Route{charged_dim, bottleneck, latency};
}

size_t
AnalyticalNetwork::portIndex(NpuId npu, int dim) const
{
    return static_cast<size_t>(npu) *
               static_cast<size_t>(topo_.numDims()) +
           static_cast<size_t>(dim);
}

std::vector<size_t>
AnalyticalNetwork::faultPorts(NpuId src, NpuId dst, int dim) const
{
    ASTRA_USER_CHECK(src >= 0 && src < topo_.npus(),
                     "fault selector: src %d out of range for %d NPUs",
                     src, topo_.npus());
    ASTRA_USER_CHECK(dim < topo_.numDims(),
                     "fault selector: dim %d out of range for %d dims",
                     dim, topo_.numDims());
    std::vector<size_t> out;
    if (dim >= 0) {
        out.push_back(portIndex(src, dim));
    } else if (dst >= 0) {
        ASTRA_USER_CHECK(dst < topo_.npus(),
                         "fault selector: dst %d out of range for %d "
                         "NPUs", dst, topo_.npus());
        // Coarsened to the charged dimension of the route — the
        // analytical model cannot see individual links.
        out.push_back(portIndex(src, resolve(src, dst, kAutoRoute).dim));
    } else {
        for (int d = 0; d < topo_.numDims(); ++d)
            out.push_back(portIndex(src, d));
    }
    return out;
}

void
AnalyticalNetwork::setLinkCapacityScale(NpuId src, NpuId dst, int dim,
                                        double scale)
{
    ASTRA_USER_CHECK(scale > 0.0 && std::isfinite(scale),
                     "link capacity scale must be > 0 and finite "
                     "(take the link down for a full outage)");
    for (size_t p : faultPorts(src, dst, dim))
        txScale_[p] = scale;
}

void
AnalyticalNetwork::setLinkUp(NpuId src, NpuId dst, int dim, bool up)
{
    std::vector<size_t> ports = faultPorts(src, dst, dim);
    for (size_t p : ports)
        txUp_[p] = up ? 1 : 0;
    if (!up)
        return;
    for (size_t p : ports) {
        auto it = parked_.find(p);
        if (it == parked_.end())
            continue;
        std::vector<ParkedSend> lot = std::move(it->second);
        parked_.erase(it);
        for (ParkedSend &s : lot) {
            // Restore the send's original attribution channel around
            // the re-issue (we are inside a fault event, not a job).
            std::vector<double> *saved = sendOwner_;
            sendOwner_ = s.owner;
            simSend(s.src, s.dst, s.bytes, s.dim, s.tag,
                    std::move(s.handlers));
            sendOwner_ = saved;
        }
    }
}

TimeNs
AnalyticalNetwork::claimTxPort(NpuId src, int dim, TimeNs ser)
{
    TimeNs &free_at = txFree_[static_cast<size_t>(src) *
                                  static_cast<size_t>(topo_.numDims()) +
                              static_cast<size_t>(dim)];
    ASTRA_ASSERT(ser >= 0.0, "negative serialization time %g", ser);
    TimeNs now = eq_.now();
    TimeNs start = std::max(now, free_at);
    free_at = start + ser;
    // The granted start is at/after now by construction, and the
    // chained bandwidth arithmetic keeps derived event times within
    // the shared kTimeEpsNs tolerance that EventQueue::scheduleAt
    // accepts — both sides of that contract live in common/units.h.
    ASTRA_ASSERT(timeNotBefore(start, now), "tx port granted the past");
    return start;
}

void
AnalyticalNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                           uint64_t tag, SendHandlers handlers)
{
    ASTRA_ASSERT(bytes >= 0.0, "simSend: negative size");
    if (src == dst) {
        // Loopback: no network resources — and, like the flow and
        // packet backends, no stats accounting (the messages /
        // bytesPerDim counters track *network* traffic only, so the
        // columns stay comparable across a backend sweep axis).
        deliverLoopback(src, tag, std::move(handlers));
        return;
    }
    Route route = resolve(src, dst, dim);
    size_t port = portIndex(src, route.dim);
    if (!txUp_[port]) {
        // Down port: park the whole send *before* any accounting, so
        // the eventual re-issue through simSend accounts exactly once.
        parked_[port].push_back(ParkedSend{src, dst, bytes, dim, tag,
                                           std::move(handlers),
                                           sendOwner_});
        return;
    }
    account(route.dim, bytes);

    TimeNs ser = txTime(bytes, route.bandwidth * txScale_[port]);
    TimeNs &busy = txBusy_[port];
    busy += ser;
    accountBusy(route.dim, ser, busy);
    if (sendOwner_)
        (*sendOwner_)[static_cast<size_t>(route.dim)] += ser;
    TimeNs start = serialize_ ? claimTxPort(src, route.dim, ser)
                              : eq_.now();
    TimeNs injected_at = start + ser;
    TimeNs delivered_at = injected_at + route.latency;

    if (tracer_) {
        // Port-claim busy interval (utilization series + coalesced
        // occupancy spans) and, at full detail, the message lifetime
        // from submission to delivery on the source rank's track.
        tracer_->linkBusy(uint32_t(port), start, injected_at);
        if (tracer_->full())
            tracer_->span(0, int32_t(src), "net", "msg %lld->%lld d%lld",
                          eq_.now(), delivered_at - eq_.now(),
                          (long long)src, (long long)dst,
                          (long long)route.dim);
    }

    if (handlers.onInjected)
        eq_.scheduleAt(injected_at, std::move(handlers.onInjected));
    scheduleDelivery(delivered_at, src, dst, tag,
                     std::move(handlers.onDelivered));
}

} // namespace astra
