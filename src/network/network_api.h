/**
 * @file
 * The ASTRA-sim frontend NetworkAPI (paper §IV-C, Snippet 2).
 *
 * The system layer delegates all communication to a backend through
 * this interface: `simSend` hands a message to the network, and the
 * backend invokes callbacks when injection finishes and when the
 * message is delivered. `simRecv` posts a receive that is matched
 * against deliveries by (src, dst, tag), exactly like the
 * sim_send/sim_recv pair in the paper. `simSchedule` exposes the
 * backend's event queue for timed callbacks.
 *
 * Two backends implement the interface:
 *  - AnalyticalNetwork (src/network/analytical.h): the paper's
 *    equation-based backend with first-order transmit serialization.
 *  - PacketNetwork (src/network/detailed/packet_network.h): a
 *    packet-level store-and-forward reference used for validation and
 *    the simulation-speed study (substitute for Garnet / the real
 *    NCCL testbed).
 */
#ifndef ASTRA_NETWORK_NETWORK_API_H_
#define ASTRA_NETWORK_NETWORK_API_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/units.h"
#include "event/event_queue.h"
#include "topology/topology.h"

namespace astra {

/** Route hint: send within a specific topology dimension. */
constexpr int kAutoRoute = -1;

/** Tag value that bypasses simRecv matching (callback-only messages,
 *  used by the collective engine's internal traffic). */
constexpr uint64_t kNoTag = ~0ULL;

/** Per-message completion callbacks (either may be null). */
struct SendHandlers
{
    /** Fires when the message has fully left the source (TX done). */
    EventCallback onInjected;
    /** Fires when the message has fully arrived at the destination. */
    EventCallback onDelivered;
};

/** Cumulative traffic counters per topology dimension. */
struct NetworkStats
{
    std::vector<double> bytesPerDim; //!< payload bytes sent per dim.
    uint64_t messages = 0;
};

/**
 * Abstract network backend; see file comment.
 *
 * Lifetime: the backend borrows the EventQueue and Topology, which
 * must outlive it.
 */
class NetworkApi
{
  public:
    NetworkApi(EventQueue &eq, const Topology &topo);
    virtual ~NetworkApi() = default;

    NetworkApi(const NetworkApi &) = delete;
    NetworkApi &operator=(const NetworkApi &) = delete;

    /**
     * Transmit `bytes` from `src` to `dst`.
     *
     * @param dim  topology dimension to route in, or kAutoRoute for
     *             dimension-ordered routing across all dims.
     * @param tag  message tag used by simRecv matching.
     */
    virtual void simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                         uint64_t tag, SendHandlers handlers) = 0;

    /**
     * Post a receive at `dst` for a message from `src` with `tag`.
     * Fires immediately if the message already arrived (eager buffer).
     */
    void simRecv(NpuId dst, NpuId src, uint64_t tag, EventCallback cb);

    /** Schedule a callback after `delay` ns (Snippet 2 sim_schedule). */
    void simSchedule(TimeNs delay, EventCallback cb);

    TimeNs now() const { return eq_.now(); }
    EventQueue &eventQueue() { return eq_; }
    const Topology &topology() const { return topo_; }
    const NetworkStats &stats() const { return stats_; }

  protected:
    /** Implementations call this when a message reaches `dst`;
     *  it resolves simRecv matching and the onDelivered handler. */
    void deliver(NpuId src, NpuId dst, uint64_t tag,
                 EventCallback on_delivered);

    /** Record payload accounting for stats(). */
    void account(int dim, Bytes bytes);

    EventQueue &eq_;
    const Topology &topo_;
    NetworkStats stats_;

  private:
    struct PendingKey
    {
        NpuId dst;
        NpuId src;
        uint64_t tag;
        auto operator<=>(const PendingKey &) const = default;
    };

    /** Deliveries that arrived before the matching simRecv. */
    std::map<PendingKey, int> arrived_;
    /** Posted receives awaiting a delivery. */
    std::map<PendingKey, std::vector<EventCallback>> posted_;
};

/** Backend selector used by the simulator facade. */
enum class NetworkBackendKind {
    Analytical,       //!< equation-based with TX serialization (default).
    AnalyticalPure,   //!< pure equations, no serialization queueing.
    Packet,           //!< detailed packet-level reference backend.
};

/** Factory for the built-in backends. */
std::unique_ptr<NetworkApi> makeNetwork(NetworkBackendKind kind,
                                        EventQueue &eq,
                                        const Topology &topo);

} // namespace astra

#endif // ASTRA_NETWORK_NETWORK_API_H_
