/**
 * @file
 * The ASTRA-sim frontend NetworkAPI (paper §IV-C, Snippet 2).
 *
 * The system layer delegates all communication to a backend through
 * this interface: `simSend` hands a message to the network, and the
 * backend invokes callbacks when injection finishes and when the
 * message is delivered. `simRecv` posts a receive that is matched
 * against deliveries by (src, dst, tag), exactly like the
 * sim_send/sim_recv pair in the paper. `simSchedule` exposes the
 * backend's event queue for timed callbacks.
 *
 * Three backends implement the interface (docs/network.md):
 *  - AnalyticalNetwork (src/network/analytical.h): the paper's
 *    equation-based backend with first-order transmit serialization.
 *  - FlowNetwork (src/network/flow/flow_network.h): congestion-aware
 *    fluid-flow backend — explicit link graph, max-min fair bandwidth
 *    sharing, event-driven re-rating (the middle fidelity point).
 *  - PacketNetwork (src/network/detailed/packet_network.h): a
 *    packet-level store-and-forward reference used for validation and
 *    the simulation-speed study (substitute for Garnet / the real
 *    NCCL testbed).
 */
#ifndef ASTRA_NETWORK_NETWORK_API_H_
#define ASTRA_NETWORK_NETWORK_API_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "event/event_queue.h"
#include "topology/topology.h"

namespace astra {

namespace trace {
class Tracer;
struct Counters;
} // namespace trace

/** Route hint: send within a specific topology dimension. */
constexpr int kAutoRoute = -1;

/** Tag value that bypasses simRecv matching (callback-only messages,
 *  used by the collective engine's internal traffic). */
constexpr uint64_t kNoTag = ~0ULL;

/** Per-message completion callbacks (either may be null). */
struct SendHandlers
{
    /** Fires when the message has fully left the source (TX done). */
    EventCallback onInjected;
    /** Fires when the message has fully arrived at the destination. */
    EventCallback onDelivered;
};

/**
 * Cumulative traffic counters per topology dimension.
 *
 * Besides payload accounting, every backend reports *link occupancy*:
 * `busyTimePerDim[d]` accumulates the nanoseconds its serialization
 * points in dimension `d` spent transmitting (summed over links), and
 * `maxLinkBusyNs` tracks the single busiest link. Divided by the
 * run's end-to-end time these yield utilization figures — the
 * max-link number is the hot-link saturation metric sweeps rank by
 * (Report::maxLinkUtilization()). What counts as a "link" is
 * backend-specific: the analytical backend has one per (NPU, dim)
 * transmit port; the flow and packet backends count every directed
 * link of their explicit graphs (`linksPerDim` records how many, so
 * per-dim busy time can be normalized into a mean busy fraction).
 */
struct NetworkStats
{
    std::vector<double> bytesPerDim; //!< payload bytes sent per dim.
    std::vector<double> busyTimePerDim; //!< link-busy ns summed per dim.
    std::vector<int> linksPerDim; //!< serialization points per dim.
    double maxLinkBusyNs = 0.0;   //!< busiest single link's busy ns.
    uint64_t messages = 0;
};

/**
 * Abstract network backend; see file comment.
 *
 * Lifetime: the backend borrows the EventQueue and Topology, which
 * must outlive it.
 */
class NetworkApi
{
  public:
    NetworkApi(EventQueue &eq, const Topology &topo);
    virtual ~NetworkApi() = default;

    NetworkApi(const NetworkApi &) = delete;
    NetworkApi &operator=(const NetworkApi &) = delete;

    /**
     * Transmit `bytes` from `src` to `dst`.
     *
     * @param dim  topology dimension to route in, or kAutoRoute for
     *             dimension-ordered routing across all dims.
     * @param tag  message tag used by simRecv matching.
     */
    virtual void simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                         uint64_t tag, SendHandlers handlers) = 0;

    /**
     * Post a receive at `dst` for a message from `src` with `tag`.
     * Fires immediately if the message already arrived (eager buffer).
     * Virtual so decorating views (cluster/rank_view.h) can forward
     * matching to the backend that actually sees the deliveries.
     */
    virtual void simRecv(NpuId dst, NpuId src, uint64_t tag,
                         EventCallback cb);

    /** Schedule a callback after `delay` ns (Snippet 2 sim_schedule). */
    void simSchedule(TimeNs delay, EventCallback cb);

    /**
     * Fault hooks (src/fault/): rescale or cut the capacity of the
     * links a `(src, dst, dim)` selector names — the dimension-ordered
     * path for a concrete `dst`, or every egress link of `src` when
     * `dst < 0` (`dim < 0` = all dimensions). Scales are absolute
     * (the latest call wins, they do not compound) and must be > 0;
     * full outages go through setLinkUp. The base implementation
     * fatal()s: backends opt in, and each models faults at its own
     * fidelity (docs/fault.md).
     */
    virtual void setLinkCapacityScale(NpuId src, NpuId dst, int dim,
                                      double scale);
    /** Take the selected links down (traffic stalls/parks) or bring
     *  them back up (stalled traffic resumes). See above. */
    virtual void setLinkUp(NpuId src, NpuId dst, int dim, bool up);

    /**
     * Attribution channel for multi-tenant accounting: while non-null,
     * link-busy time caused by subsequently submitted sends is *also*
     * added to `owner[dim]` (cluster dimension space). The cluster's
     * per-job views set this around each forwarded simSend and clear
     * it afterwards; a message/flow keeps the pointer it was submitted
     * with for its whole lifetime, so busy time lands on the right
     * job even when it accrues long after submission.
     */
    void setSendOwner(std::vector<double> *owner) { sendOwner_ = owner; }

    /** One unmatched send/recv record (dangling-I/O introspection). */
    struct PendingIo
    {
        NpuId dst = -1;
        NpuId src = -1;
        uint64_t tag = 0;
        int count = 0;
    };

    /** Posted receives no delivery ever matched. */
    std::vector<PendingIo> danglingRecvs() const;
    /** Deliveries that arrived but were never claimed by a simRecv. */
    std::vector<PendingIo> unclaimedDeliveries() const;
    /** Human-readable digest of both, for deadlock diagnostics. */
    std::string danglingSummary(size_t max_items = 6) const;

    /**
     * Attach the tracing sink (docs/trace.md; null detaches). Borrowed
     * — the tracer must outlive the backend's traffic. Backends
     * override to register their link tracks (each backend owns its
     * own dense link-index space: TX ports for analytical, LinkIds
     * for flow/packet) and then emit message/flow lifetimes at detail
     * `full` plus per-link busy intervals for the utilization series.
     * Purely observational: tracing never alters simulation results.
     */
    virtual void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }
    trace::Tracer *tracer() const { return tracer_; }

    /** Add backend-specific self-profiling counters (e.g. the flow
     *  backend's incremental-solver work) to a trace counter registry;
     *  the base backend has none. */
    virtual void fillTraceCounters(trace::Counters &counters) const
    {
        (void)counters;
    }

    /**
     * Heap bytes held by the backend's own state (telemetry footprint
     * protocol, docs/observability.md). Capacity-based — a
     * deterministic function of the traffic, not of malloc — and
     * shallow where objects nest (pool slot storage, not per-slot
     * member heaps). The base accounting covers the shared
     * matching/dangling maps; backends add their graphs, ports, and
     * pools on top.
     */
    virtual size_t bytesInUse() const;

    /**
     * Slots the backend's in-flight-unit pool has allocated (flows
     * for the flow backend, messages for the packet backend; the
     * analytical backend has no per-message state and reports 0).
     * The bytes/flow headline metric is bytesInUse() / flowSlots().
     */
    virtual size_t flowSlots() const { return 0; }

    /** In-flight units right now (active flows / messages; 0 where
     *  the backend keeps no such state). Heartbeat gauge. */
    virtual size_t activeCount() const { return 0; }

    TimeNs now() const { return eq_.now(); }
    EventQueue &eventQueue() { return eq_; }
    const Topology &topology() const { return topo_; }
    const NetworkStats &stats() const { return stats_; }

  protected:
    /** Implementations call this when a message reaches `dst`;
     *  it resolves simRecv matching and the onDelivered handler. */
    void deliver(NpuId src, NpuId dst, uint64_t tag,
                 EventCallback on_delivered);

    /** Complete a src == dst message: no network resources, both
     *  handlers fire after a zero-delay deferral (uniform callback
     *  ordering across backends). */
    void deliverLoopback(NpuId src, uint64_t tag, SendHandlers handlers);

    /**
     * Schedule the delivery side of a message for time `at`. kNoTag
     * (callback-only) messages skip simRecv matching entirely, so the
     * completion callback itself is the delivery event — no wrapper
     * closure, no deliver() dispatch; a null callback still schedules
     * (as an empty event) to keep event counts and final-time
     * semantics identical across backends. Tagged messages route
     * through deliver() for matching.
     */
    void scheduleDelivery(TimeNs at, NpuId src, NpuId dst, uint64_t tag,
                          EventCallback on_delivered);

    /** Dimension a message's payload is attributed to in stats():
     *  `dim` itself, or — for kAutoRoute — the first dimension the
     *  dimension-ordered path crosses. */
    int accountDim(NpuId src, NpuId dst, int dim) const;

    /** Record payload accounting for stats(). */
    void account(int dim, Bytes bytes);

    /**
     * Record `delta` ns of transmit-busy time on a link of dimension
     * `dim` whose cumulative busy time is now `link_total` (the
     * caller keeps the per-link counter; passing the new total lets
     * the max-link tracker update in O(1) per call).
     */
    void accountBusy(int dim, TimeNs delta, TimeNs link_total);

    EventQueue &eq_;
    const Topology &topo_;
    NetworkStats stats_;
    /** Per-job attribution target; see setSendOwner(). */
    std::vector<double> *sendOwner_ = nullptr;
    /** Tracing sink; null (the default) disables all trace hooks. */
    trace::Tracer *tracer_ = nullptr;

  private:
    struct PendingKey
    {
        NpuId dst;
        NpuId src;
        uint64_t tag;
        auto operator<=>(const PendingKey &) const = default;
    };

    /** Deliveries that arrived before the matching simRecv. */
    std::map<PendingKey, int> arrived_;
    /** Posted receives awaiting a delivery. */
    std::map<PendingKey, std::vector<EventCallback>> posted_;
};

/** Backend selector used by the simulator facade. */
enum class NetworkBackendKind {
    Analytical,       //!< equation-based with TX serialization (default).
    AnalyticalPure,   //!< pure equations, no serialization queueing.
    Flow,             //!< congestion-aware fluid flows, max-min fair.
    Packet,           //!< detailed packet-level reference backend.
};

/** Canonical config-schema name of a backend kind ("analytical",
 *  "flow", ...) — the inverse of backendFromJson. */
const char *backendName(NetworkBackendKind kind);

/** Factory for the built-in backends. */
std::unique_ptr<NetworkApi> makeNetwork(NetworkBackendKind kind,
                                        EventQueue &eq,
                                        const Topology &topo);

} // namespace astra

#endif // ASTRA_NETWORK_NETWORK_API_H_
