/**
 * @file
 * Live run telemetry: progress/ETA heartbeats, per-subsystem memory
 * accounting, and run manifests (docs/observability.md).
 *
 * PR 7/8 made *simulated time* observable; this layer makes the
 * simulator observable as a *host process*. Three pillars:
 *
 *  - **Heartbeats**: a Monitor polled from the event loop on an
 *    event-count or wall-clock cadence emits NDJSON records carrying
 *    progress (executed workload nodes / total, per job in cluster
 *    runs), sim-time advance rate, event throughput, queue depth,
 *    active flows, solver-work deltas, per-subsystem memory
 *    footprint, and an ETA estimate.
 *  - **Memory accounting**: a `bytesInUse()` protocol implemented by
 *    the pooled subsystems (SlotPool, EventQueue, LinkGraph, the
 *    network backends, CollectiveEngine, Tracer, sweep ResultStore)
 *    is rolled up per subsystem into heartbeats and the final Report,
 *    making bytes/flow and bytes/NPU first-class numbers. Accounting
 *    is capacity-based (vector/pool high-water capacities, not malloc
 *    truth) and therefore *deterministic*: two runs of the same
 *    config report identical footprints. Peak RSS (VmHWM) is captured
 *    separately and, like every wall-clock number, never serialized.
 *  - **Run manifests**: a machine-readable provenance record per run
 *    (config hash via the sweep cache machinery, schema versions,
 *    backend, topology shape, peak footprint, wall breakdown, output
 *    inventory) so any result row is traceable to what produced it.
 *
 * Contract (same as tracing, docs/trace.md): telemetry off costs one
 * null-pointer check per event and is bit-identical; telemetry on is
 * purely observational — it never schedules events, never consumes
 * randomness, and never feeds back into the simulation. Wall-derived
 * heartbeat fields are `wall_`-prefixed and quarantined from the
 * deterministic ones exactly like the tracer's `wall_*` counters.
 */
#ifndef ASTRA_TELEMETRY_TELEMETRY_H_
#define ASTRA_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/units.h"

namespace astra {

class CommandLine;
class Topology;
struct Report;

namespace telemetry {

/**
 * The `telemetry:{...}` config block (and the `--heartbeat*` /
 * `--manifest` CLI flags layered over it). All defaults off: a
 * default-constructed config means no monitor is created and the
 * simulation runs the exact pre-telemetry code path.
 */
struct TelemetryConfig
{
    /** Heartbeat NDJSON output path ("" = keep records in memory
     *  only; heartbeats still run if a cadence is set). */
    std::string file;
    /** Wall-clock cadence in milliseconds (0 = off). Wall cadence
     *  produces a machine-dependent *number* of heartbeats; use
     *  `intervalEvents` when deterministic beats matter. */
    double intervalMs = 0.0;
    /** Event-count cadence: emit every N executed events (0 = off).
     *  Deterministic: beat timing and count are functions of the
     *  simulation alone. */
    uint64_t intervalEvents = 0;
    /** Run-manifest output path ("" = none). */
    std::string manifest;

    /** Config hash of the originating JSON document, injected by the
     *  layer that owns the document (sweep runner, CLIs). Not a JSON
     *  key; 0 = unknown. */
    uint64_t configHash = 0;

    /** True if a heartbeat monitor should be attached. */
    bool
    heartbeatsEnabled() const
    {
        return !file.empty() || intervalMs > 0.0 || intervalEvents > 0;
    }
    /** True if anything (heartbeats or manifest) is on. */
    bool enabled() const { return heartbeatsEnabled() || !manifest.empty(); }
};

/** Parse a `telemetry:{}` block; unknown keys are rejected with a
 *  path-qualified error. */
TelemetryConfig telemetryConfigFromJson(const json::Value &doc,
                                        const std::string &path);
json::Value telemetryConfigToJson(const TelemetryConfig &cfg);

/**
 * Layer the shared CLI flags over `base`: --heartbeat FILE,
 * --heartbeat-interval-ms N, --heartbeat-events N, --manifest FILE.
 * Asking for a heartbeat file without a cadence implies the default
 * event cadence (kDefaultIntervalEvents) so the beats stay
 * deterministic unless wall cadence is explicitly requested.
 */
TelemetryConfig telemetryConfigFromCli(const CommandLine &cl,
                                       TelemetryConfig base = {});

/** Default event cadence when a heartbeat sink is requested without
 *  an explicit cadence. */
constexpr uint64_t kDefaultIntervalEvents = 65536;

/** One named memory-footprint source ("event_queue", "network", ...).
 *  The getter is sampled at each heartbeat and once at run end; it
 *  must stay valid for the monitor's lifetime. */
struct FootprintSource
{
    std::string name;
    std::function<size_t()> bytes;
};

/** Progress snapshot from the workload layer. */
struct Progress
{
    size_t done = 0;
    size_t total = 0;
};

/** Per-job progress entry (cluster runs). */
struct JobProgress
{
    std::string name;
    size_t done = 0;
    size_t total = 0;
};

/**
 * One heartbeat. Deterministic fields are pure functions of the
 * simulation (byte-identical across repeats under event cadence);
 * every wall-derived field is `wall`-prefixed and quarantined.
 */
struct HeartbeatRecord
{
    // -- deterministic --
    uint64_t seq = 0;           //!< heartbeat ordinal, 0-based.
    TimeNs simTimeNs = 0.0;     //!< event-queue now().
    uint64_t events = 0;        //!< executed events so far.
    size_t queueDepth = 0;      //!< pending events.
    size_t nodesDone = 0;       //!< executed workload nodes.
    size_t nodesTotal = 0;
    double progress = 0.0;      //!< nodesDone / nodesTotal (0 if unknown).
    double etaSimNs = 0.0;      //!< remaining sim time estimate.
    size_t active = 0;          //!< in-flight flows/messages.
    uint64_t solverSolves = 0;  //!< cumulative max-min solves.
    uint64_t solverSolvesDelta = 0; //!< since the previous beat.
    size_t footprintBytes = 0;  //!< total across sources.
    std::vector<std::pair<std::string, size_t>> footprint;
    std::vector<JobProgress> jobs; //!< cluster runs only.
    // -- wall-clock (machine-dependent, never compared) --
    double wallSeconds = 0.0;
    double wallSimNsPerSec = 0.0;
    double wallEventsPerSec = 0.0;
    double wallEtaSeconds = 0.0;
};

/**
 * The heartbeat monitor. Attached to an EventQueue via setMonitor();
 * the queue calls poll() when its per-event countdown hits zero and
 * re-arms with the returned value, so the off cost is one null check
 * and the on cost is one decrement per event plus the (rare) poll.
 *
 * Purely observational: poll() reads the registered providers,
 * appends a HeartbeatRecord, and (if configured) writes one NDJSON
 * line. It never touches simulation state.
 */
class Monitor
{
  public:
    explicit Monitor(const TelemetryConfig &cfg);
    ~Monitor();

    Monitor(const Monitor &) = delete;
    Monitor &operator=(const Monitor &) = delete;

    /** Workload-progress provider (ExecutionEngine counts). */
    void setProgress(std::function<Progress()> fn) { progress_ = std::move(fn); }
    /** In-flight flow/message-count provider. */
    void setActive(std::function<size_t()> fn) { active_ = std::move(fn); }
    /** Cumulative solver-solve-count provider (flow backend). */
    void setSolves(std::function<uint64_t()> fn) { solves_ = std::move(fn); }
    /** Per-job progress provider (cluster runs). */
    void setJobs(std::function<std::vector<JobProgress>()> fn)
    {
        jobs_ = std::move(fn);
    }
    /** Register a named footprint source (sampled every beat). */
    void addFootprint(std::string name, std::function<size_t()> bytes);

    /**
     * Called by the event queue. `now`/`executed`/`pending` describe
     * the queue at the sampled event. Returns the countdown (events)
     * until the next poll. Under wall cadence the poll probes the
     * clock but only emits once `intervalMs` elapsed.
     */
    uint64_t poll(TimeNs now, uint64_t executed, size_t pending);

    /** Initial countdown for EventQueue::setMonitor. */
    uint64_t initialCountdown() const;

    /** Emit one final heartbeat (run end), flush and close the sink.
     *  Idempotent. */
    void finish(TimeNs now, uint64_t executed, size_t pending);

    /** True when beats fire on the event-count cadence only, i.e. the
     *  beat *count* is deterministic. */
    bool deterministicCadence() const
    {
        return cfg_.intervalEvents > 0 && cfg_.intervalMs <= 0.0;
    }

    const std::vector<HeartbeatRecord> &records() const { return records_; }
    size_t heartbeatCount() const { return records_.size(); }

    /** Latest total footprint rollup (recomputed; run-end callers). */
    size_t sampleFootprint(std::vector<std::pair<std::string, size_t>> *by_source) const;

    const TelemetryConfig &config() const { return cfg_; }

  private:
    void emit(TimeNs now, uint64_t executed, size_t pending);
    void writeLine(const HeartbeatRecord &r);

    TelemetryConfig cfg_;
    std::function<Progress()> progress_;
    std::function<size_t()> active_;
    std::function<uint64_t()> solves_;
    std::function<std::vector<JobProgress>()> jobs_;
    std::vector<FootprintSource> sources_;
    std::vector<HeartbeatRecord> records_;
    std::FILE *out_ = nullptr;
    bool finished_ = false;
    double startWall_ = 0.0;    //!< steady-clock origin (seconds).
    double lastEmitWall_ = 0.0; //!< wall seconds at the last emit.
    uint64_t lastSolves_ = 0;
    /** Wall-cadence clock-probe granularity (events per probe). */
    static constexpr uint64_t kWallProbeEvents = 4096;
};

/** Process peak resident-set size in bytes (VmHWM); 0 where
 *  unavailable. Machine- and history-dependent: report it, never
 *  serialize it into deterministic documents. */
size_t peakRssBytes();

/** Monotonic wall clock in seconds (shared helper). */
double wallNow();

/**
 * Run-manifest inputs. The writer combines these with the ambient
 * schema/fingerprint constants (sweep::cacheFingerprint,
 * kSpecSchemaVersion) into one provenance JSON document.
 */
struct ManifestInfo
{
    std::string kind;      //!< "simulator" | "cluster" | "sweep-row".
    uint64_t configHash = 0; //!< sweep::configHash of the doc; 0 = n/a.
    std::string backend;
    std::string topology;  //!< shape string, e.g. "Ring(8) x Switch(32)".
    int npus = 0;
    uint64_t seed = 0;     //!< fault seed (0 = none).
    bool fromCache = false; //!< sweep rows served from the ResultCache.
    size_t peakFootprintBytes = 0;
    std::vector<std::pair<std::string, size_t>> footprint;
    size_t peakRssBytes = 0;
    double bytesPerFlow = 0.0;
    double bytesPerNpu = 0.0;
    uint64_t heartbeats = 0;
    double wallSeconds = 0.0;
    /** Named wall-time slices ("run", "trace_write", ...). */
    std::vector<std::pair<std::string, double>> wallBreakdown;
    /** Output files this run produced (heartbeat NDJSON, trace JSON,
     *  CSV, ...). */
    std::vector<std::string> outputs;
};

/** Manifest schema version (bump when the document shape changes). */
constexpr int kManifestSchemaVersion = 1;

/** Topology shape in the notation grammar ("Ring(8,200,300)_..."),
 *  for the manifest's `topology` field. */
std::string topologyNotation(const Topology &topo);

/** Build the manifest document (exposed for tests). */
json::Value manifestToJson(const ManifestInfo &info);

/** Write `manifest.json` to `path`. */
void writeManifest(const std::string &path, const ManifestInfo &info);

/** Convenience: fill the footprint/RSS fields of `info` from a
 *  finished Report. */
void fillManifestFromReport(ManifestInfo &info, const Report &report);

} // namespace telemetry
} // namespace astra

#endif // ASTRA_TELEMETRY_TELEMETRY_H_
