#include "telemetry/telemetry.h"

#include <chrono>
#include <cinttypes>
#include <cstring>

#include "astra/report.h"
#include "common/cli.h"
#include "common/logging.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "topology/topology.h"

namespace astra {
namespace telemetry {

TelemetryConfig
telemetryConfigFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: expected an object",
                     path.c_str());
    static const char *known[] = {"file", "interval_ms", "interval_events",
                                  "manifest"};
    for (const auto &kv : doc.asObject()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || kv.first == k;
        ASTRA_USER_CHECK(ok, "%s.%s: unknown telemetry config key",
                         path.c_str(), kv.first.c_str());
    }
    TelemetryConfig cfg;
    cfg.file = doc.getString("file", "");
    cfg.intervalMs = doc.getNumber("interval_ms", 0.0);
    ASTRA_USER_CHECK(cfg.intervalMs >= 0.0,
                     "%s.interval_ms: must be >= 0", path.c_str());
    int64_t events = doc.getInt("interval_events", 0);
    ASTRA_USER_CHECK(events >= 0, "%s.interval_events: must be >= 0",
                     path.c_str());
    cfg.intervalEvents = static_cast<uint64_t>(events);
    cfg.manifest = doc.getString("manifest", "");
    return cfg;
}

json::Value
telemetryConfigToJson(const TelemetryConfig &cfg)
{
    json::Object doc;
    doc["file"] = json::Value(cfg.file);
    doc["interval_ms"] = json::Value(cfg.intervalMs);
    doc["interval_events"] = json::Value(cfg.intervalEvents);
    doc["manifest"] = json::Value(cfg.manifest);
    return json::Value(std::move(doc));
}

TelemetryConfig
telemetryConfigFromCli(const CommandLine &cl, TelemetryConfig base)
{
    TelemetryConfig cfg = std::move(base);
    if (cl.has("heartbeat"))
        cfg.file = cl.getString("heartbeat", cfg.file);
    if (cl.has("heartbeat-interval-ms"))
        cfg.intervalMs =
            cl.getDouble("heartbeat-interval-ms", cfg.intervalMs);
    if (cl.has("heartbeat-events"))
        cfg.intervalEvents = static_cast<uint64_t>(
            cl.getInt("heartbeat-events", int64_t(cfg.intervalEvents)));
    if (cl.has("manifest"))
        cfg.manifest = cl.getString("manifest", cfg.manifest);
    ASTRA_USER_CHECK(cfg.intervalMs >= 0.0,
                     "--heartbeat-interval-ms: must be >= 0");
    // A sink without a cadence implies the deterministic default.
    if (!cfg.file.empty() && cfg.intervalMs <= 0.0 &&
        cfg.intervalEvents == 0)
        cfg.intervalEvents = kDefaultIntervalEvents;
    return cfg;
}

double
wallNow()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

size_t
peakRssBytes()
{
#ifdef __linux__
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (f == nullptr)
        return 0;
    char line[256];
    size_t kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            std::sscanf(line + 6, "%zu", &kb);
            break;
        }
    }
    std::fclose(f);
    return kb * 1024;
#else
    return 0;
#endif
}

Monitor::Monitor(const TelemetryConfig &cfg) : cfg_(cfg)
{
    if (cfg_.heartbeatsEnabled() && cfg_.intervalMs <= 0.0 &&
        cfg_.intervalEvents == 0)
        cfg_.intervalEvents = kDefaultIntervalEvents;
    if (!cfg_.file.empty()) {
        out_ = std::fopen(cfg_.file.c_str(), "w");
        ASTRA_USER_CHECK(out_ != nullptr,
                         "telemetry: cannot open heartbeat file \"%s\"",
                         cfg_.file.c_str());
    }
    startWall_ = wallNow();
    lastEmitWall_ = startWall_;
}

Monitor::~Monitor()
{
    if (out_ != nullptr)
        std::fclose(out_);
}

void
Monitor::addFootprint(std::string name, std::function<size_t()> bytes)
{
    sources_.push_back(FootprintSource{std::move(name), std::move(bytes)});
}

uint64_t
Monitor::initialCountdown() const
{
    return cfg_.intervalEvents > 0 ? cfg_.intervalEvents
                                   : kWallProbeEvents;
}

size_t
Monitor::sampleFootprint(
    std::vector<std::pair<std::string, size_t>> *by_source) const
{
    size_t total = 0;
    for (const FootprintSource &s : sources_) {
        size_t b = s.bytes ? s.bytes() : 0;
        total += b;
        if (by_source != nullptr)
            by_source->emplace_back(s.name, b);
    }
    return total;
}

uint64_t
Monitor::poll(TimeNs now, uint64_t executed, size_t pending)
{
    if (cfg_.intervalEvents > 0) {
        // Event cadence: every poll is a beat (deterministic).
        emit(now, executed, pending);
        return cfg_.intervalEvents;
    }
    // Wall cadence: the countdown only bounds how often the clock is
    // probed; a beat fires once the interval elapsed.
    double w = wallNow();
    if ((w - lastEmitWall_) * 1000.0 >= cfg_.intervalMs)
        emit(now, executed, pending);
    return kWallProbeEvents;
}

void
Monitor::emit(TimeNs now, uint64_t executed, size_t pending)
{
    HeartbeatRecord r;
    r.seq = records_.size();
    r.simTimeNs = now;
    r.events = executed;
    r.queueDepth = pending;
    if (progress_) {
        Progress p = progress_();
        r.nodesDone = p.done;
        r.nodesTotal = p.total;
        if (p.total > 0)
            r.progress = double(p.done) / double(p.total);
    }
    // Deterministic ETA: with fraction p done at sim time t, the
    // remaining sim time extrapolates to t * (1 - p) / p. Exact when
    // progress is uniform in sim time (a serial chain), an estimate
    // otherwise.
    if (r.progress > 0.0)
        r.etaSimNs = r.simTimeNs * (1.0 - r.progress) / r.progress;
    if (active_)
        r.active = active_();
    if (solves_) {
        r.solverSolves = solves_();
        r.solverSolvesDelta = r.solverSolves - lastSolves_;
        lastSolves_ = r.solverSolves;
    }
    r.footprintBytes = sampleFootprint(&r.footprint);
    if (jobs_)
        r.jobs = jobs_();

    double w = wallNow();
    r.wallSeconds = w - startWall_;
    if (r.wallSeconds > 0.0) {
        r.wallSimNsPerSec = r.simTimeNs / r.wallSeconds;
        r.wallEventsPerSec = double(r.events) / r.wallSeconds;
    }
    if (r.progress > 0.0 && r.progress < 1.0)
        r.wallEtaSeconds =
            r.wallSeconds * (1.0 - r.progress) / r.progress;
    lastEmitWall_ = w;

    if (out_ != nullptr)
        writeLine(r);
    records_.push_back(std::move(r));
}

void
Monitor::writeLine(const HeartbeatRecord &r)
{
    // One compact JSON object per line (NDJSON). Built through
    // json::Value so string escaping and number formatting match the
    // rest of the toolchain; heartbeats are rare, so the allocation
    // cost is irrelevant.
    json::Object o;
    o["seq"] = json::Value(r.seq);
    o["sim_time_ns"] = json::Value(r.simTimeNs);
    o["events"] = json::Value(r.events);
    o["queue_depth"] = json::Value(uint64_t(r.queueDepth));
    o["nodes_done"] = json::Value(uint64_t(r.nodesDone));
    o["nodes_total"] = json::Value(uint64_t(r.nodesTotal));
    o["progress"] = json::Value(r.progress);
    o["eta_sim_ns"] = json::Value(r.etaSimNs);
    o["active"] = json::Value(uint64_t(r.active));
    o["solver_solves"] = json::Value(r.solverSolves);
    o["solver_solves_delta"] = json::Value(r.solverSolvesDelta);
    o["footprint_bytes"] = json::Value(uint64_t(r.footprintBytes));
    if (!r.footprint.empty()) {
        json::Object fp;
        for (const auto &[name, bytes] : r.footprint)
            fp[name] = json::Value(uint64_t(bytes));
        o["footprint"] = json::Value(std::move(fp));
    }
    if (!r.jobs.empty()) {
        json::Array jobs;
        for (const JobProgress &j : r.jobs) {
            json::Object jo;
            jo["name"] = json::Value(j.name);
            jo["done"] = json::Value(uint64_t(j.done));
            jo["total"] = json::Value(uint64_t(j.total));
            jobs.push_back(json::Value(std::move(jo)));
        }
        o["jobs"] = json::Value(std::move(jobs));
    }
    o["wall_seconds"] = json::Value(r.wallSeconds);
    o["wall_sim_ns_per_s"] = json::Value(r.wallSimNsPerSec);
    o["wall_events_per_s"] = json::Value(r.wallEventsPerSec);
    o["wall_eta_seconds"] = json::Value(r.wallEtaSeconds);
    std::string line = json::Value(std::move(o)).dump();
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), out_);
}

void
Monitor::finish(TimeNs now, uint64_t executed, size_t pending)
{
    if (finished_)
        return;
    finished_ = true;
    emit(now, executed, pending);
    if (out_ != nullptr) {
        std::fclose(out_);
        out_ = nullptr;
    }
}

std::string
topologyNotation(const Topology &topo)
{
    std::string out;
    for (int d = 0; d < topo.numDims(); ++d) {
        const Dimension &dim = topo.dim(d);
        if (d > 0)
            out += '_';
        out += detail::formatV("%s(%d,%g,%g)", blockLongName(dim.type),
                               dim.size, dim.bandwidth, dim.latency);
    }
    return out;
}

json::Value
manifestToJson(const ManifestInfo &info)
{
    json::Object doc;
    doc["kind"] = json::Value("astra-run-manifest");
    doc["run_kind"] = json::Value(info.kind);
    doc["manifest_schema_version"] = json::Value(kManifestSchemaVersion);
    doc["spec_schema_version"] = json::Value(sweep::kSpecSchemaVersion);
    doc["cache_fingerprint"] = json::Value(sweep::cacheFingerprint());
    // Hashes are 64-bit: serialized as the canonical 16-hex-digit
    // string (a JSON number would round through a double).
    doc["config_hash"] = json::Value(
        info.configHash != 0 ? sweep::configHashString(info.configHash)
                             : std::string());
    doc["backend"] = json::Value(info.backend);
    doc["topology"] = json::Value(info.topology);
    doc["npus"] = json::Value(info.npus);
    doc["seed"] = json::Value(info.seed);
    if (info.fromCache)
        doc["from_cache"] = json::Value(true);
    doc["peak_footprint_bytes"] =
        json::Value(uint64_t(info.peakFootprintBytes));
    if (!info.footprint.empty()) {
        json::Object fp;
        for (const auto &[name, bytes] : info.footprint)
            fp[name] = json::Value(uint64_t(bytes));
        doc["footprint"] = json::Value(std::move(fp));
    }
    doc["bytes_per_flow"] = json::Value(info.bytesPerFlow);
    doc["bytes_per_npu"] = json::Value(info.bytesPerNpu);
    doc["heartbeats"] = json::Value(info.heartbeats);
    doc["peak_rss_bytes"] = json::Value(uint64_t(info.peakRssBytes));
    doc["wall_seconds"] = json::Value(info.wallSeconds);
    if (!info.wallBreakdown.empty()) {
        json::Object wall;
        for (const auto &[name, seconds] : info.wallBreakdown)
            wall[name] = json::Value(seconds);
        doc["wall"] = json::Value(std::move(wall));
    }
    json::Array outputs;
    for (const std::string &path : info.outputs)
        outputs.push_back(json::Value(path));
    doc["outputs"] = json::Value(std::move(outputs));
    return json::Value(std::move(doc));
}

void
writeManifest(const std::string &path, const ManifestInfo &info)
{
    json::writeFile(path, manifestToJson(info));
    debugT("telemetry", "wrote run manifest %s", path.c_str());
}

void
fillManifestFromReport(ManifestInfo &info, const Report &report)
{
    info.peakFootprintBytes = report.peakFootprintBytes;
    info.footprint = report.footprintBySubsystem;
    info.peakRssBytes = report.peakRssBytes;
    info.bytesPerFlow = report.bytesPerFlow;
    info.bytesPerNpu = report.bytesPerNpu;
    info.heartbeats = report.telemetryHeartbeats;
    info.wallSeconds = report.wallSeconds;
}

} // namespace telemetry
} // namespace astra
