#include "common/logging.h"

#include <cstdarg>
#include <cstdlib>
#include <iostream>

namespace astra {

namespace {

LogLevel g_level = LogLevel::Info;

} // namespace

namespace detail {

std::string
formatV(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

} // namespace detail

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(g_level);
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Info:  return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

LogLevel
logLevelFromString(const std::string &name)
{
    if (name == "error")
        return LogLevel::Error;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    fatal("unknown log level \"%s\" (expected error|warn|info|debug)",
          name.c_str());
}

void
setVerbose(bool verbose)
{
    g_level = verbose ? LogLevel::Info : LogLevel::Warn;
}

bool
verbose()
{
    return logEnabled(LogLevel::Info);
}

void
logStr(LogLevel level, const char *tag, const std::string &msg)
{
    if (!logEnabled(level))
        return;
    std::ostream &out =
        static_cast<int>(level) <= static_cast<int>(LogLevel::Warn)
            ? std::cerr
            : std::cout;
    out << logLevelName(level) << ": ";
    if (tag)
        out << '[' << tag << "] ";
    out << msg << "\n";
}

void
informStr(const std::string &msg)
{
    logStr(LogLevel::Info, nullptr, msg);
}

void
warnStr(const std::string &msg)
{
    logStr(LogLevel::Warn, nullptr, msg);
}

void
fatalStr(const std::string &msg)
{
    throw FatalError(msg);
}

void
panicStr(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace astra
