#include "common/logging.h"

#include <cstdarg>
#include <cstdlib>
#include <iostream>

namespace astra {

namespace {

bool g_verbose = true;

} // namespace

namespace detail {

std::string
formatV(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

} // namespace detail

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

void
informStr(const std::string &msg)
{
    if (g_verbose)
        std::cout << "info: " << msg << "\n";
}

void
warnStr(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
fatalStr(const std::string &msg)
{
    throw FatalError(msg);
}

void
panicStr(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace astra
