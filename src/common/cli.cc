#include "common/cli.h"

#include <algorithm>

#include "common/logging.h"

namespace astra {

CommandLine::CommandLine(int argc, const char *const *argv,
                         std::vector<std::string> known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::string value;
        bool has_value = false;
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            has_value = true;
        }
        ASTRA_USER_CHECK(
            std::find(known.begin(), known.end(), name) != known.end(),
            "unknown flag --%s", name.c_str());
        if (!has_value) {
            // `--flag value` form when the next token is not a flag;
            // otherwise a boolean switch.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        flags_[name] = value;
    }
}

bool
CommandLine::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CommandLine::getString(const std::string &name, const std::string &dflt) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : it->second;
}

double
CommandLine::getDouble(const std::string &name, double dflt) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    try {
        return std::stod(it->second);
    } catch (const std::exception &) {
        fatal("flag --%s expects a number, got '%s'", name.c_str(),
              it->second.c_str());
    }
}

int64_t
CommandLine::getInt(const std::string &name, int64_t dflt) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    try {
        return std::stoll(it->second);
    } catch (const std::exception &) {
        fatal("flag --%s expects an integer, got '%s'", name.c_str(),
              it->second.c_str());
    }
}

bool
CommandLine::getBool(const std::string &name, bool dflt) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

} // namespace astra
