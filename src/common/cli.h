/**
 * @file
 * Tiny command-line flag parser for the examples and benches.
 *
 * Supports `--name value` and `--name=value` forms plus boolean
 * switches (`--verbose`). Unknown flags are fatal() (user error).
 */
#ifndef ASTRA_COMMON_CLI_H_
#define ASTRA_COMMON_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace astra {

/** Parsed command line with typed lookups and defaults. */
class CommandLine
{
  public:
    /**
     * Parse argv.
     *
     * @param known  names of the accepted flags (without `--`);
     *               anything else is a fatal user error.
     */
    CommandLine(int argc, const char *const *argv,
                std::vector<std::string> known);

    bool has(const std::string &name) const;
    std::string getString(const std::string &name,
                          const std::string &dflt) const;
    double getDouble(const std::string &name, double dflt) const;
    int64_t getInt(const std::string &name, int64_t dflt) const;
    bool getBool(const std::string &name, bool dflt = false) const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace astra

#endif // ASTRA_COMMON_CLI_H_
