/**
 * @file
 * Lightweight statistics helpers: accumulators and the exposed-time
 * breakdown used throughout the evaluation (Fig. 9, Fig. 11).
 */
#ifndef ASTRA_COMMON_STATS_H_
#define ASTRA_COMMON_STATS_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/units.h"

namespace astra {

/** Running scalar statistics (count/sum/min/max/mean). */
class Accumulator
{
  public:
    void
    add(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * The five runtime categories of the paper's breakdowns.
 *
 * At every instant an NPU is attributed to exactly one category, by
 * priority: busy compute wins, then in-flight communication, then
 * local memory, then remote memory, then idle. "Exposed" therefore
 * means "not hidden behind compute (or a higher-priority activity)".
 */
enum class RuntimeClass : int {
    Compute = 0,
    ExposedComm = 1,
    ExposedLocalMem = 2,
    ExposedRemoteMem = 3,
    Idle = 4,
};

constexpr int kNumRuntimeClasses = 5;

/** Printable name of a runtime class. */
const char *runtimeClassName(RuntimeClass c);

/**
 * Integrates wall-clock time into the five RuntimeClass buckets.
 *
 * Drive it with beginActivity()/endActivity() around each operation on
 * an NPU; it attributes elapsed simulated time to the highest-priority
 * concurrently-active class.
 */
class BreakdownTracker
{
  public:
    /** Activity classes an operation can register as. */
    enum class Activity : int {
        Compute = 0,
        Comm = 1,
        LocalMem = 2,
        RemoteMem = 3,
    };
    static constexpr int kNumActivities = 4;

    void beginActivity(Activity a, TimeNs now);
    void endActivity(Activity a, TimeNs now);

    /**
     * Start attribution at `now` instead of the default t=0, so an
     * NPU assigned to a job admitted mid-simulation is not charged
     * idle time for the era before the job existed. Must be called
     * before any activity or attribution; a no-op at now == 0 keeps
     * time-zero runs bit-identical with untracked construction.
     */
    void alignStart(TimeNs now);

    /** Flush attribution up to `now` (e.g., at end of simulation). */
    void finish(TimeNs now);

    /** Accumulated time per runtime class (after finish()). */
    TimeNs time(RuntimeClass c) const
    {
        return buckets_[static_cast<int>(c)];
    }

    TimeNs total() const;

  private:
    void attribute(TimeNs now);
    RuntimeClass currentClass() const;

    int active_[kNumActivities] = {0, 0, 0, 0};
    TimeNs last_ = 0.0;
    TimeNs buckets_[kNumRuntimeClasses] = {0, 0, 0, 0, 0};
};

/** Breakdown result in a plain struct, aggregated over NPUs. */
struct RuntimeBreakdown
{
    TimeNs compute = 0.0;
    TimeNs exposedComm = 0.0;
    TimeNs exposedLocalMem = 0.0;
    TimeNs exposedRemoteMem = 0.0;
    TimeNs idle = 0.0;

    TimeNs
    total() const
    {
        return compute + exposedComm + exposedLocalMem + exposedRemoteMem +
               idle;
    }

    RuntimeBreakdown &operator+=(const RuntimeBreakdown &o);
    RuntimeBreakdown scaled(double f) const;
};

/** Extract the breakdown from a finished tracker. */
RuntimeBreakdown breakdownOf(const BreakdownTracker &t);

} // namespace astra

#endif // ASTRA_COMMON_STATS_H_
