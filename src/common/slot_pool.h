/**
 * @file
 * Generational slot pool — the shared home of the
 * slot + free-list + generation-id idiom used by every subsystem that
 * hands out recyclable handles to event closures: collective-engine
 * instances, packet-backend messages, and flow-backend flows.
 *
 * Objects live in a dense slot-indexed vector; `claim()` pops a free
 * slot (or appends one) and returns a 64-bit id `slot | gen << 32`.
 * The generation counter advances on *both* claim and release (odd
 * while the slot is live, even while it is free), so an id goes stale
 * the instant its slot is released — a completion event that outlived
 * its object is detected even before the slot is reclaimed, not only
 * after the next claim. `find()` resolves an id to the object or to
 * nullptr when stale; `get()` panics instead, for callers whose
 * protocol guarantees liveness.
 *
 * Recycling deliberately does NOT destroy or re-construct the object:
 * the previous tenant's fields (and, crucially, the heap capacity of
 * any member vectors) survive into the next claim, and the caller
 * resets what it uses. That is what makes the pools allocation-free
 * in steady state — see the warm-up contract in docs/eventcore.md.
 *
 * Hot paths that already know a live slot index (per-link incidence
 * lists, active-flow arrays) use `at(slot)` directly and skip the
 * generation check entirely.
 *
 * Not thread-safe; each owner confines its pool to one simulation
 * thread (the same contract as EventQueue).
 */
#ifndef ASTRA_COMMON_SLOT_POOL_H_
#define ASTRA_COMMON_SLOT_POOL_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace astra {

/** See file comment. */
template <typename T>
class SlotPool
{
  public:
    /** Slot index of an id (low 32 bits). */
    static constexpr uint32_t
    slotOf(uint64_t id)
    {
        return static_cast<uint32_t>(id);
    }

    /** Generation of an id (high 32 bits). */
    static constexpr uint32_t
    genOf(uint64_t id)
    {
        return static_cast<uint32_t>(id >> 32);
    }

    /**
     * Claim a slot (recycling the most recently released one first)
     * and return its id. The object keeps whatever state its previous
     * tenant left — reset the fields you use.
     */
    uint64_t
    claim()
    {
        uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slot = static_cast<uint32_t>(values_.size());
            values_.emplace_back();
            gens_.push_back(0);
        }
        ++gens_[slot]; // even (free) -> odd (live).
        ++live_;
        return idAt(slot);
    }

    /** Release a live id's slot back to the free list; every
     *  outstanding id of this tenancy goes stale immediately. */
    void
    release(uint64_t id)
    {
        uint32_t slot = slotOf(id);
        ASTRA_ASSERT(valid(id), "releasing a stale or free slot id");
        ++gens_[slot]; // odd (live) -> even (free).
        --live_;
        free_.push_back(slot);
    }

    /** True while `id` refers to a live (claimed, unreleased) slot. */
    bool
    valid(uint64_t id) const
    {
        uint32_t slot = slotOf(id);
        return slot < gens_.size() && gens_[slot] == genOf(id) &&
               (gens_[slot] & 1u) != 0;
    }

    /** Object for a live id, or nullptr when the id is stale. */
    T *
    find(uint64_t id)
    {
        return valid(id) ? &values_[slotOf(id)] : nullptr;
    }

    /** Object for an id the caller guarantees live; panics if stale. */
    T &
    get(uint64_t id)
    {
        ASTRA_ASSERT(valid(id), "stale slot id (object released)");
        return values_[slotOf(id)];
    }

    /** Direct slot access (no generation check; hot paths that track
     *  live slots themselves). */
    T &
    at(uint32_t slot)
    {
        return values_[slot];
    }
    const T &
    at(uint32_t slot) const
    {
        return values_[slot];
    }

    /** Current id of a slot (meaningful only while the slot is live). */
    uint64_t
    idAt(uint32_t slot) const
    {
        return static_cast<uint64_t>(slot) |
               (static_cast<uint64_t>(gens_[slot]) << 32);
    }

    /** Current generation of a slot (odd while live). External
     *  structures can tag references with this and later test
     *  staleness with one compare — see LinkIncidence. */
    uint32_t
    genAt(uint32_t slot) const
    {
        return gens_[slot];
    }

    /** Slots allocated so far (live + recyclable) — the warm-up
     *  footprint tests assert on. */
    size_t
    slots() const
    {
        return values_.size();
    }

    /** Currently claimed slots. */
    size_t
    liveCount() const
    {
        return live_;
    }

    /**
     * Heap bytes held by the pool's own containers (telemetry
     * footprint protocol, docs/observability.md). Shallow: counts the
     * slot storage itself (capacity-based, so deterministic), not
     * heap owned by member fields of T — owners that care add those
     * separately.
     */
    size_t
    bytesInUse() const
    {
        return values_.capacity() * sizeof(T) +
               gens_.capacity() * sizeof(uint32_t) +
               free_.capacity() * sizeof(uint32_t);
    }

  private:
    std::vector<T> values_;       //!< slot-indexed, recycled in place.
    std::vector<uint32_t> gens_;  //!< per-slot generation (odd = live).
    std::vector<uint32_t> free_;  //!< released slots, LIFO.
    size_t live_ = 0;
};

} // namespace astra

#endif // ASTRA_COMMON_SLOT_POOL_H_
