/**
 * @file
 * ASCII table printer used by the benchmark harnesses to print the
 * paper's tables/figure series in a readable form.
 */
#ifndef ASTRA_COMMON_TABLE_H_
#define ASTRA_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace astra {

/**
 * RFC-4180 CSV field quoting: fields containing commas, quotes, or
 * newlines are wrapped in double quotes with embedded quotes doubled.
 * Shared by every CSV writer (sweep result store, cluster job table)
 * so quoting rules cannot diverge between outputs.
 */
std::string csvField(const std::string &s);

/** Column-aligned ASCII table builder. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Render with column alignment and a separator under the header. */
    std::string render() const;

    /** Render directly to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace astra

#endif // ASTRA_COMMON_TABLE_H_
