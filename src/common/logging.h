/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * Severity model (following the gem5 coding style guide):
 *  - inform(): normal operating message, no connotation of misbehaviour.
 *  - warn():   something may be modelled imperfectly; simulation continues.
 *  - fatal():  the simulation cannot continue due to a *user* error
 *              (bad configuration, invalid arguments). Throws
 *              FatalError so tests can assert on misconfiguration.
 *  - panic():  an internal simulator bug; should never happen regardless
 *              of user input. Aborts the process.
 */
#ifndef ASTRA_COMMON_LOGGING_H_
#define ASTRA_COMMON_LOGGING_H_

#include <cstdio>
#include <stdexcept>
#include <string>

namespace astra {

/** Error thrown by fatal(): a user-level misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

std::string formatV(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Global verbosity switch; examples/benches may silence inform(). */
void setVerbose(bool verbose);
bool verbose();

/** Print a normal status message to stdout (when verbose). */
void informStr(const std::string &msg);
/** Print a warning to stderr. */
void warnStr(const std::string &msg);
/** Abort the simulation with a user-error message (throws FatalError). */
[[noreturn]] void fatalStr(const std::string &msg);
/** Abort the process on an internal invariant violation. */
[[noreturn]] void panicStr(const std::string &msg);

template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        informStr(fmt);
    else
        informStr(detail::formatV(fmt, args...));
}

template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        warnStr(fmt);
    else
        warnStr(detail::formatV(fmt, args...));
}

template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        fatalStr(fmt);
    else
        fatalStr(detail::formatV(fmt, args...));
}

template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        panicStr(fmt);
    else
        panicStr(detail::formatV(fmt, args...));
}

/** fatal() unless the user-facing condition holds. */
#define ASTRA_USER_CHECK(cond, ...)                                        \
    do {                                                                   \
        if (!(cond))                                                       \
            ::astra::fatal(__VA_ARGS__);                                   \
    } while (0)

/** panic() unless the internal invariant holds. */
#define ASTRA_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond))                                                       \
            ::astra::panic(__VA_ARGS__);                                   \
    } while (0)

} // namespace astra

#endif // ASTRA_COMMON_LOGGING_H_
