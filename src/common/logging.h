/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * Severity model (following the gem5 coding style guide):
 *  - inform(): normal operating message, no connotation of misbehaviour.
 *  - warn():   something may be modelled imperfectly; simulation continues.
 *  - fatal():  the simulation cannot continue due to a *user* error
 *              (bad configuration, invalid arguments). Throws
 *              FatalError so tests can assert on misconfiguration.
 *  - panic():  an internal simulator bug; should never happen regardless
 *              of user input. Aborts the process.
 */
#ifndef ASTRA_COMMON_LOGGING_H_
#define ASTRA_COMMON_LOGGING_H_

#include <cstdio>
#include <stdexcept>
#include <string>

namespace astra {

/** Error thrown by fatal(): a user-level misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

std::string formatV(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Leveled logging. Messages carry a severity and an optional
 * subsystem tag; anything above the global threshold is dropped at
 * the call site. Error/Warn go to stderr, Info/Debug to stdout.
 * fatal()/panic() are not levels — they are control flow (throw /
 * abort) and always fire.
 */
enum class LogLevel {
    Error = 0, //!< always printed (reserved for non-fatal errors).
    Warn  = 1, //!< something may be modelled imperfectly.
    Info  = 2, //!< normal operating messages (default threshold).
    Debug = 3, //!< high-volume diagnostics, off by default.
};

/** Global threshold: messages with level > threshold are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();
/** True when `level` messages currently print (guard expensive
 *  message construction with this). */
bool logEnabled(LogLevel level);

const char *logLevelName(LogLevel level);
/** Parse "error"|"warn"|"info"|"debug" (CLI --log-level); fatal()
 *  on anything else. */
LogLevel logLevelFromString(const std::string &name);

/**
 * Legacy verbosity switch, now a shim over the level threshold:
 * setVerbose(true) = Info, setVerbose(false) = Warn; verbose() is
 * "Info messages currently print". Prefer setLogLevel().
 */
void setVerbose(bool verbose);
bool verbose();

/** Core sink: print `msg` at `level` with an optional subsystem tag
 *  (nullptr = untagged), honoring the global threshold. */
void logStr(LogLevel level, const char *tag, const std::string &msg);

/** Formatted, tagged message at an explicit level. */
template <typename... Args>
void
logmsg(LogLevel level, const char *tag, const char *fmt, Args... args)
{
    if (!logEnabled(level))
        return;
    if constexpr (sizeof...(Args) == 0)
        logStr(level, tag, fmt);
    else
        logStr(level, tag, detail::formatV(fmt, args...));
}

/** Print a normal status message to stdout (when >= Info). */
void informStr(const std::string &msg);
/** Print a warning to stderr. */
void warnStr(const std::string &msg);
/** Abort the simulation with a user-error message (throws FatalError). */
[[noreturn]] void fatalStr(const std::string &msg);
/** Abort the process on an internal invariant violation. */
[[noreturn]] void panicStr(const std::string &msg);

template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        informStr(fmt);
    else
        informStr(detail::formatV(fmt, args...));
}

template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        warnStr(fmt);
    else
        warnStr(detail::formatV(fmt, args...));
}

/** Debug-level diagnostic (dropped unless the threshold is Debug). */
template <typename... Args>
void
debug(const char *fmt, Args... args)
{
    logmsg(LogLevel::Debug, nullptr, fmt, args...);
}

/** Tagged variants: `tag` names the subsystem ("flow", "cluster",
 *  "fault", "trace", ...) and prints as `info: [flow] ...`. */
template <typename... Args>
void
informT(const char *tag, const char *fmt, Args... args)
{
    logmsg(LogLevel::Info, tag, fmt, args...);
}

template <typename... Args>
void
warnT(const char *tag, const char *fmt, Args... args)
{
    logmsg(LogLevel::Warn, tag, fmt, args...);
}

template <typename... Args>
void
debugT(const char *tag, const char *fmt, Args... args)
{
    logmsg(LogLevel::Debug, tag, fmt, args...);
}

template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        fatalStr(fmt);
    else
        fatalStr(detail::formatV(fmt, args...));
}

template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        panicStr(fmt);
    else
        panicStr(detail::formatV(fmt, args...));
}

/** fatal() unless the user-facing condition holds. */
#define ASTRA_USER_CHECK(cond, ...)                                        \
    do {                                                                   \
        if (!(cond))                                                       \
            ::astra::fatal(__VA_ARGS__);                                   \
    } while (0)

/** panic() unless the internal invariant holds. */
#define ASTRA_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond))                                                       \
            ::astra::panic(__VA_ARGS__);                                   \
    } while (0)

} // namespace astra

#endif // ASTRA_COMMON_LOGGING_H_
