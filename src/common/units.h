/**
 * @file
 * Simulation units and conversion helpers.
 *
 * Conventions used across the whole code base:
 *  - Time is a double measured in nanoseconds (TimeNs).
 *  - Data sizes are doubles measured in bytes (Bytes). Collective math
 *    divides sizes by group products, so fractional bytes are allowed
 *    in intermediate values exactly as in the original analytical model.
 *  - Bandwidth is measured in GB/s. Conveniently 1 GB/s == 1 byte/ns,
 *    so `bytes / bw_gbps` directly yields nanoseconds.
 */
#ifndef ASTRA_COMMON_UNITS_H_
#define ASTRA_COMMON_UNITS_H_

#include <cstdint>

namespace astra {

using TimeNs = double;
using Bytes = double;
using GBps = double;

constexpr Bytes kKiB = 1024.0;
constexpr Bytes kMiB = 1024.0 * 1024.0;
constexpr Bytes kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr Bytes kKB = 1e3;
constexpr Bytes kMB = 1e6;
constexpr Bytes kGB = 1e9;

constexpr TimeNs kUs = 1e3;
constexpr TimeNs kMs = 1e6;
constexpr TimeNs kSec = 1e9;

/**
 * Tolerance for time comparisons across the whole simulator.
 *
 * TimeNs is a double: chained bandwidth/latency arithmetic (transmit
 * port accounting, phase time sums) accumulates last-bit rounding, so
 * "is `a` at or after `b`" checks must allow a sub-ns slack instead of
 * comparing exactly. Every component (EventQueue past-time check,
 * AnalyticalNetwork transmit-port accounting, ...) uses this one
 * constant so the tolerance cannot silently diverge between layers.
 */
constexpr TimeNs kTimeEpsNs = 1e-9;

/** True when `a` is at or after `b`, within kTimeEpsNs slack. */
constexpr bool
timeNotBefore(TimeNs a, TimeNs b)
{
    return a + kTimeEpsNs >= b;
}

/** Serialization delay of `bytes` over a link of `bw` GB/s, in ns. */
constexpr TimeNs
txTime(Bytes bytes, GBps bw)
{
    return bytes / bw;
}

/** FLOP count helpers (FLOPs are plain doubles). */
using Flops = double;
constexpr Flops kGFLOP = 1e9;
constexpr Flops kTFLOP = 1e12;

/** TFLOP/s in FLOP per ns: 1 TFLOPS == 1e12 FLOP/s == 1e3 FLOP/ns. */
constexpr double
tflopsToFlopPerNs(double tflops)
{
    return tflops * 1e3;
}

namespace literals {

constexpr Bytes operator""_MB(long double v) { return double(v) * kMB; }
constexpr Bytes operator""_MB(unsigned long long v) { return double(v) * kMB; }
constexpr Bytes operator""_GB(long double v) { return double(v) * kGB; }
constexpr Bytes operator""_GB(unsigned long long v) { return double(v) * kGB; }
constexpr Bytes operator""_KB(unsigned long long v) { return double(v) * kKB; }
constexpr Bytes operator""_MiB(unsigned long long v) { return double(v) * kMiB; }
constexpr Bytes operator""_GiB(unsigned long long v) { return double(v) * kGiB; }
constexpr TimeNs operator""_us(unsigned long long v) { return double(v) * kUs; }
constexpr TimeNs operator""_us(long double v) { return double(v) * kUs; }
constexpr TimeNs operator""_ms(unsigned long long v) { return double(v) * kMs; }
constexpr TimeNs operator""_ns(unsigned long long v) { return double(v); }

} // namespace literals

} // namespace astra

#endif // ASTRA_COMMON_UNITS_H_
