#include "common/stats.h"

#include "common/logging.h"

namespace astra {

const char *
runtimeClassName(RuntimeClass c)
{
    switch (c) {
      case RuntimeClass::Compute: return "compute";
      case RuntimeClass::ExposedComm: return "exposed_comm";
      case RuntimeClass::ExposedLocalMem: return "exposed_local_mem";
      case RuntimeClass::ExposedRemoteMem: return "exposed_remote_mem";
      case RuntimeClass::Idle: return "idle";
    }
    return "?";
}

void
BreakdownTracker::attribute(TimeNs now)
{
    ASTRA_ASSERT(now + 1e-9 >= last_,
                 "breakdown tracker saw time going backwards");
    if (now > last_) {
        buckets_[static_cast<int>(currentClass())] += now - last_;
        last_ = now;
    }
}

RuntimeClass
BreakdownTracker::currentClass() const
{
    if (active_[static_cast<int>(Activity::Compute)] > 0)
        return RuntimeClass::Compute;
    if (active_[static_cast<int>(Activity::Comm)] > 0)
        return RuntimeClass::ExposedComm;
    if (active_[static_cast<int>(Activity::LocalMem)] > 0)
        return RuntimeClass::ExposedLocalMem;
    if (active_[static_cast<int>(Activity::RemoteMem)] > 0)
        return RuntimeClass::ExposedRemoteMem;
    return RuntimeClass::Idle;
}

void
BreakdownTracker::beginActivity(Activity a, TimeNs now)
{
    attribute(now);
    ++active_[static_cast<int>(a)];
}

void
BreakdownTracker::endActivity(Activity a, TimeNs now)
{
    attribute(now);
    int &n = active_[static_cast<int>(a)];
    ASTRA_ASSERT(n > 0, "endActivity without matching beginActivity");
    --n;
}

void
BreakdownTracker::alignStart(TimeNs now)
{
    ASTRA_ASSERT(last_ == 0.0 && total() == 0.0,
                 "alignStart on a tracker that already attributed time");
    last_ = now;
}

void
BreakdownTracker::finish(TimeNs now)
{
    attribute(now);
}

TimeNs
BreakdownTracker::total() const
{
    TimeNs t = 0.0;
    for (TimeNs b : buckets_)
        t += b;
    return t;
}

RuntimeBreakdown &
RuntimeBreakdown::operator+=(const RuntimeBreakdown &o)
{
    compute += o.compute;
    exposedComm += o.exposedComm;
    exposedLocalMem += o.exposedLocalMem;
    exposedRemoteMem += o.exposedRemoteMem;
    idle += o.idle;
    return *this;
}

RuntimeBreakdown
RuntimeBreakdown::scaled(double f) const
{
    RuntimeBreakdown r;
    r.compute = compute * f;
    r.exposedComm = exposedComm * f;
    r.exposedLocalMem = exposedLocalMem * f;
    r.exposedRemoteMem = exposedRemoteMem * f;
    r.idle = idle * f;
    return r;
}

RuntimeBreakdown
breakdownOf(const BreakdownTracker &t)
{
    RuntimeBreakdown b;
    b.compute = t.time(RuntimeClass::Compute);
    b.exposedComm = t.time(RuntimeClass::ExposedComm);
    b.exposedLocalMem = t.time(RuntimeClass::ExposedLocalMem);
    b.exposedRemoteMem = t.time(RuntimeClass::ExposedRemoteMem);
    b.idle = t.time(RuntimeClass::Idle);
    return b;
}

} // namespace astra
