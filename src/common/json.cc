#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace astra {
namespace json {

namespace {

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

} // namespace

bool
Value::asBool() const
{
    ASTRA_USER_CHECK(kind_ == Kind::Bool,
                     "json: expected bool, got %s", kindName(kind_));
    return bool_;
}

double
Value::asNumber() const
{
    ASTRA_USER_CHECK(kind_ == Kind::Number,
                     "json: expected number, got %s", kindName(kind_));
    return num_;
}

int64_t
Value::asInt() const
{
    return static_cast<int64_t>(std::llround(asNumber()));
}

const std::string &
Value::asString() const
{
    ASTRA_USER_CHECK(kind_ == Kind::String,
                     "json: expected string, got %s", kindName(kind_));
    return str_;
}

const Array &
Value::asArray() const
{
    ASTRA_USER_CHECK(kind_ == Kind::Array,
                     "json: expected array, got %s", kindName(kind_));
    return *arr_;
}

const Object &
Value::asObject() const
{
    ASTRA_USER_CHECK(kind_ == Kind::Object,
                     "json: expected object, got %s", kindName(kind_));
    return *obj_;
}

Array &
Value::mutableArray()
{
    if (kind_ != Kind::Array) {
        kind_ = Kind::Array;
        arr_ = std::make_shared<Array>();
    }
    return *arr_;
}

Object &
Value::mutableObject()
{
    if (kind_ != Kind::Object) {
        kind_ = Kind::Object;
        obj_ = std::make_shared<Object>();
    }
    return *obj_;
}

const Value &
Value::at(const std::string &key) const
{
    const Object &obj = asObject();
    auto it = obj.find(key);
    ASTRA_USER_CHECK(it != obj.end(), "json: missing key '%s'", key.c_str());
    return it->second;
}

bool
Value::has(const std::string &key) const
{
    return kind_ == Kind::Object && obj_->count(key) > 0;
}

double
Value::getNumber(const std::string &key, double dflt) const
{
    return has(key) ? at(key).asNumber() : dflt;
}

int64_t
Value::getInt(const std::string &key, int64_t dflt) const
{
    return has(key) ? at(key).asInt() : dflt;
}

bool
Value::getBool(const std::string &key, bool dflt) const
{
    return has(key) ? at(key).asBool() : dflt;
}

std::string
Value::getString(const std::string &key, const std::string &dflt) const
{
    return has(key) ? at(key).asString() : dflt;
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
numberToString(std::string &out, double n)
{
    if (n == std::floor(n) && std::abs(n) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(n));
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", n);
        out += buf;
    }
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent >= 0) {
            out += '\n';
            out.append(static_cast<size_t>(indent * d), ' ');
        }
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        numberToString(out, num_);
        break;
      case Kind::String:
        escapeString(out, str_);
        break;
      case Kind::Array: {
        if (arr_->empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const Value &v : *arr_) {
            if (!first)
                out += indent >= 0 ? "," : ",";
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (obj_->empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, v] : *obj_) {
            if (!first)
                out += ",";
            first = false;
            newline(depth + 1);
            escapeString(out, key);
            out += indent >= 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Value
Value::clone() const
{
    switch (kind_) {
      case Kind::Array: {
        Array copy;
        copy.reserve(arr_->size());
        for (const Value &v : *arr_)
            copy.push_back(v.clone());
        return Value(std::move(copy));
      }
      case Kind::Object: {
        Object copy;
        for (const auto &[key, v] : *obj_)
            copy.emplace(key, v.clone());
        return Value(std::move(copy));
      }
      default:
        // Scalars hold no shared state; plain copy is already deep.
        return *this;
    }
}

namespace {

/** Recursive-descent JSON parser with line/column error reporting. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        skipWs();
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            error("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    error(const std::string &msg)
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("json parse error at line %zu col %zu: %s", line, col,
              msg.c_str());
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    char
    get()
    {
        if (pos_ >= text_.size())
            error("unexpected end of input");
        return text_[pos_++];
    }

    void
    expect(char c)
    {
        if (get() != c)
            error(std::string("expected '") + c + "'");
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t len = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, len, lit) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Value(true);
            error("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return Value(false);
            error("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return Value(nullptr);
            error("invalid literal");
          default:
            return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Object obj;
        skipWs();
        if (peek() == '}') {
            get();
            return Value(std::move(obj));
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                error("expected object key string");
            std::string key = parseString();
            skipWs();
            expect(':');
            obj[key] = parseValue();
            skipWs();
            char c = get();
            if (c == '}')
                break;
            if (c != ',')
                error("expected ',' or '}' in object");
        }
        return Value(std::move(obj));
    }

    Value
    parseArray()
    {
        expect('[');
        Array arr;
        skipWs();
        if (peek() == ']') {
            get();
            return Value(std::move(arr));
        }
        while (true) {
            arr.push_back(parseValue());
            skipWs();
            char c = get();
            if (c == ']')
                break;
            if (c != ',')
                error("expected ',' or ']' in array");
        }
        return Value(std::move(arr));
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = get();
            if (c == '"')
                break;
            if (c == '\\') {
                char e = get();
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = get();
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code += unsigned(h - 'A' + 10);
                        else
                            error("invalid \\u escape");
                    }
                    // Encode as UTF-8 (basic multilingual plane only;
                    // surrogate pairs are not needed for ET files).
                    if (code < 0x80) {
                        out += char(code);
                    } else if (code < 0x800) {
                        out += char(0xC0 | (code >> 6));
                        out += char(0x80 | (code & 0x3F));
                    } else {
                        out += char(0xE0 | (code >> 12));
                        out += char(0x80 | ((code >> 6) & 0x3F));
                        out += char(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    error("invalid escape character");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    Value
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (pos_ == start)
            error("invalid number");
        std::string tok = text_.substr(start, pos_ - start);
        try {
            size_t used = 0;
            double v = std::stod(tok, &used);
            if (used != tok.size())
                error("invalid number '" + tok + "'");
            return Value(v);
        } catch (const std::exception &) {
            error("invalid number '" + tok + "'");
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

Value
parseFile(const std::string &path)
{
    std::ifstream in(path);
    ASTRA_USER_CHECK(in.good(), "json: cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

void
writeFile(const std::string &path, const Value &v, int indent)
{
    std::ofstream out(path);
    ASTRA_USER_CHECK(out.good(), "json: cannot write '%s'", path.c_str());
    out << v.dump(indent) << "\n";
}

} // namespace json
} // namespace astra
