#include "common/table.h"

#include <cstdio>
#include <iostream>

#include "common/logging.h"

namespace astra {

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    ASTRA_ASSERT(cells.size() == headers_.size(),
                 "table row arity %zu != header arity %zu", cells.size(),
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += "| ";
            line += row[c];
            line.append(widths[c] - row[c].size() + 1, ' ');
        }
        line += "|\n";
        return line;
    };

    std::string out = renderRow(headers_);
    std::string sep;
    for (size_t c = 0; c < headers_.size(); ++c) {
        sep += "|";
        sep.append(widths[c] + 2, '-');
    }
    sep += "|\n";
    out += sep;
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

void
Table::print() const
{
    std::cout << render();
}

} // namespace astra
