/**
 * @file
 * Deterministic xoshiro256** RNG for workload generation and property
 * tests. Seeded explicitly so every simulation is reproducible.
 */
#ifndef ASTRA_COMMON_RNG_H_
#define ASTRA_COMMON_RNG_H_

#include <cstdint>

namespace astra {

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding per the xoshiro reference implementation.
        uint64_t x = seed;
        for (int i = 0; i < 4; ++i) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s_[i] = z ^ (z >> 31);
        }
    }

    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        uint64_t result = rotl(s_[1] * 5, 7) * 9;
        uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        return lo + static_cast<int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + uniform() * (hi - lo);
    }

  private:
    uint64_t s_[4];
};

} // namespace astra

#endif // ASTRA_COMMON_RNG_H_
