/**
 * @file
 * Minimal self-contained JSON value type, parser, and writer.
 *
 * Used for execution-trace (ET) files and simulator configuration.
 * Supports the full JSON grammar (objects, arrays, strings with
 * escapes, numbers, booleans, null). No external dependencies.
 */
#ifndef ASTRA_COMMON_JSON_H_
#define ASTRA_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace astra {
namespace json {

class Value;

using Array = std::vector<Value>;
/** std::map keeps keys ordered, giving deterministic serialization. */
using Object = std::map<std::string, Value>;

/** Discriminated union over the JSON value kinds. */
enum class Kind { Null, Bool, Number, String, Array, Object };

/**
 * A JSON value with value semantics.
 *
 * Accessors come in two flavours: checked (asX(), fatal() on kind
 * mismatch — user error, since these come from user-supplied files)
 * and lookup helpers with defaults (getX()).
 */
class Value
{
  public:
    Value() : kind_(Kind::Null) {}
    Value(std::nullptr_t) : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(int n) : kind_(Kind::Number), num_(n) {}
    Value(int64_t n) : kind_(Kind::Number), num_(double(n)) {}
    Value(uint64_t n) : kind_(Kind::Number), num_(double(n)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(Array a)
        : kind_(Kind::Array), arr_(std::make_shared<Array>(std::move(a))) {}
    Value(Object o)
        : kind_(Kind::Object), obj_(std::make_shared<Object>(std::move(o))) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Checked accessors; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Mutable access (copy-on-write is not needed; shared for cheap copy,
     *  callers building documents own the unique reference). */
    Array &mutableArray();
    Object &mutableObject();

    /** Object member lookup; fatal() if not an object or key missing. */
    const Value &at(const std::string &key) const;
    /** True if this is an object containing key. */
    bool has(const std::string &key) const;

    /** Lookup with defaults (no error if missing). */
    double getNumber(const std::string &key, double dflt) const;
    int64_t getInt(const std::string &key, int64_t dflt) const;
    bool getBool(const std::string &key, bool dflt) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;

    /**
     * Deep copy. Copy construction shares arrays/objects (cheap value
     * semantics for readers); clone() is for callers that mutate a
     * document built from another, e.g. the sweep engine overlaying
     * axis values onto a shared base config.
     */
    Value clone() const;

    /** Serialize; indent < 0 means compact single-line output. */
    std::string dump(int indent = -1) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::shared_ptr<Array> arr_;
    std::shared_ptr<Object> obj_;
};

/** Parse a JSON document; fatal() with line/column info on syntax error. */
Value parse(const std::string &text);

/** Parse the JSON document stored in a file; fatal() if unreadable. */
Value parseFile(const std::string &path);

/** Write a JSON document to a file; fatal() if unwritable. */
void writeFile(const std::string &path, const Value &v, int indent = 2);

} // namespace json
} // namespace astra

#endif // ASTRA_COMMON_JSON_H_
