/**
 * @file
 * Zero-allocation event callback (the hot-path replacement for
 * `std::function<void()>` in the discrete-event core).
 *
 * Simulations schedule one callback per message hop, chunk phase, and
 * memory access; at 4k+ NPUs that is tens of millions of closures per
 * run, and `std::function`'s heap allocation for captures beyond its
 * (implementation-defined, ~16 B) small-buffer dominates the event
 * dispatch profile. InlineEvent fixes the capture budget explicitly:
 *
 *  - Captures up to kInlineBytes (48 B) are stored inline; the common
 *    closures in the network backends and the collective engine
 *    ([this, ids, chunk, phase]) fit with room to spare.
 *  - Larger captures (typically closures that themselves own another
 *    InlineEvent, e.g. a completion chain) fall back to fixed
 *    size-class blocks recycled through a free list (CallbackPool), so
 *    steady-state execution performs no general-purpose heap traffic.
 *  - Trivially-movable captures relocate with memcpy (no per-move
 *    virtual dispatch), which keeps event-queue sorting cheap.
 *
 * InlineEvent is move-only (unlike std::function it accepts move-only
 * captures such as unique_ptr). The simulation core is single-threaded
 * by design (one EventQueue drives one simulation).
 *
 * Threading contract
 * ------------------
 * CallbackPool keeps its free lists and counters in `thread_local`
 * state, so independent simulations may run concurrently on separate
 * threads with no synchronization and no false sharing — this is what
 * makes batch runs (src/sweep) embarrassingly parallel. The rules:
 *
 *  - A simulation (EventQueue, Simulator, and every InlineEvent it
 *    creates) must be confined to a single thread for its lifetime.
 *    Pooled capture blocks are returned to the free list of the thread
 *    that destroys the event; destroying an event on a different
 *    thread than the one that created it would migrate the block and
 *    corrupt both threads' counters.
 *  - Pool counters (outstanding/heapAllocs/cached, or the combined
 *    stats() snapshot) report the *calling thread's* pool only. The
 *    sweep batch runner snapshots each worker's stats after its last
 *    simulation and surfaces them per thread in the batch outcome.
 *  - Blocks cached by a worker thread are released when the thread
 *    exits (thread_local destructor), not at process exit.
 */
#ifndef ASTRA_EVENT_INLINE_EVENT_H_
#define ASTRA_EVENT_INLINE_EVENT_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace astra {

/**
 * Free-list allocator for out-of-line callback captures.
 *
 * Blocks come in four size classes (64/128/256/512 B); freed blocks
 * are cached per class and reused, so after warm-up the pool serves
 * allocations without touching the system heap. Captures above the
 * largest class (rare; a deliberately large test capture) fall through
 * to plain operator new. Counters are exposed for tests and benches.
 *
 * All state is per-thread (see the threading contract in the file
 * comment): each thread allocates from and frees to its own pool.
 */
class CallbackPool
{
  public:
    static constexpr size_t kClassSizes[4] = {64, 128, 256, 512};

    static void *
    allocate(size_t bytes)
    {
        State &st = state();
        int cls = classOf(bytes);
        ++st.live;
        if (cls < 0) {
            ++st.heapAllocs;
            return ::operator new(bytes);
        }
        std::vector<void *> &fl = st.freeList[cls];
        if (!fl.empty()) {
            void *p = fl.back();
            fl.pop_back();
            return p;
        }
        ++st.heapAllocs;
        return ::operator new(kClassSizes[cls]);
    }

    static void
    deallocate(void *p, size_t bytes) noexcept
    {
        State &st = state();
        --st.live;
        int cls = classOf(bytes);
        if (cls < 0) {
            ::operator delete(p);
            return;
        }
        st.freeList[cls].push_back(p);
    }

    /** Blocks currently handed out by this thread's pool. */
    static size_t outstanding() { return state().live; }

    /** Times this thread's pool went to the system heap (cold misses). */
    static uint64_t heapAllocs() { return state().heapAllocs; }

    /** Blocks cached in this thread's free lists, ready for reuse. */
    static size_t
    cached()
    {
        size_t n = 0;
        for (const std::vector<void *> &fl : state().freeList)
            n += fl.size();
        return n;
    }

    /** Per-thread counter snapshot (surfaced by the sweep batch runner
     *  as per-worker stats). */
    struct Stats
    {
        size_t outstanding = 0;
        uint64_t heapAllocs = 0;
        size_t cached = 0;
    };

    /** Snapshot of the calling thread's pool counters. */
    static Stats
    stats()
    {
        return Stats{outstanding(), heapAllocs(), cached()};
    }

  private:
    struct State
    {
        std::vector<void *> freeList[4];
        size_t live = 0;
        uint64_t heapAllocs = 0;

        ~State()
        {
            for (std::vector<void *> &fl : freeList)
                for (void *p : fl)
                    ::operator delete(p);
        }
    };

    static State &
    state()
    {
        // One pool per thread: parallel batch runs (src/sweep) place
        // whole simulations on worker threads, and each allocates and
        // frees exclusively against its own free lists.
        thread_local State st;
        return st;
    }

    static constexpr int
    classOf(size_t bytes)
    {
        for (int c = 0; c < 4; ++c)
            if (bytes <= kClassSizes[c])
                return c;
        return -1;
    }
};

/** See file comment. */
class InlineEvent
{
  public:
    /** Inline capture budget; sized so every closure on the message
     *  hot path (this + a few ids) stays in-place. */
    static constexpr size_t kInlineBytes = 48;

    InlineEvent() noexcept = default;
    InlineEvent(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                  std::is_invocable_v<std::decay_t<F> &>>>
    InlineEvent(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InlineEvent(InlineEvent &&other) noexcept { moveFrom(other); }

    InlineEvent &
    operator=(InlineEvent &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineEvent &
    operator=(std::nullptr_t) noexcept
    {
        destroy();
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                  std::is_invocable_v<std::decay_t<F> &>>>
    InlineEvent &
    operator=(F &&f)
    {
        destroy();
        emplace(std::forward<F>(f));
        return *this;
    }

    InlineEvent(const InlineEvent &) = delete;
    InlineEvent &operator=(const InlineEvent &) = delete;

    ~InlineEvent() { destroy(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void
    operator()()
    {
        assert(ops_ != nullptr && "invoking empty InlineEvent");
        ops_->invoke(buf_);
    }

    /** True when the capture lives in the inline buffer (for tests). */
    bool
    isInline() const noexcept
    {
        return ops_ != nullptr && !ops_->pooled;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Null means "relocate with memcpy of the whole buffer". */
        void (*moveDestroy)(void *src, void *dst) noexcept;
        /** Null means "no destruction needed". */
        void (*destroy)(void *) noexcept;
        bool pooled;
    };

    template <typename F>
    static constexpr bool kFitsInline =
        sizeof(F) <= kInlineBytes &&
        alignof(F) <= alignof(std::max_align_t);

    template <typename F>
    static constexpr bool kTrivialMove =
        std::is_trivially_move_constructible_v<F> &&
        std::is_trivially_destructible_v<F>;

    template <typename F> struct InlineOps
    {
        static void
        invoke(void *p)
        {
            (*std::launder(reinterpret_cast<F *>(p)))();
        }
        static void
        moveDestroy(void *src, void *dst) noexcept
        {
            F *from = std::launder(reinterpret_cast<F *>(src));
            ::new (dst) F(std::move(*from));
            from->~F();
        }
        static void
        destroy(void *p) noexcept
        {
            std::launder(reinterpret_cast<F *>(p))->~F();
        }
        static constexpr Ops ops{&invoke,
                                 kTrivialMove<F> ? nullptr : &moveDestroy,
                                 std::is_trivially_destructible_v<F>
                                     ? nullptr
                                     : &destroy,
                                 false};
    };

    template <typename F> struct PooledOps
    {
        static F *&
        slot(void *p)
        {
            return *std::launder(reinterpret_cast<F **>(p));
        }
        static void
        invoke(void *p)
        {
            (*slot(p))();
        }
        static void
        destroy(void *p) noexcept
        {
            F *obj = slot(p);
            obj->~F();
            CallbackPool::deallocate(obj, sizeof(F));
        }
        // moveDestroy is null: relocating the owning pointer is a
        // memcpy, and the moved-from event's ops_ is nulled so the
        // block is never freed twice.
        static constexpr Ops ops{&invoke, nullptr, &destroy, true};
    };

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (kFitsInline<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            static_assert(alignof(Fn) <= alignof(std::max_align_t),
                          "over-aligned captures are not supported");
            void *block = CallbackPool::allocate(sizeof(Fn));
            Fn *obj = ::new (block) Fn(std::forward<F>(f));
            ::new (static_cast<void *>(buf_)) Fn *(obj);
            ops_ = &PooledOps<Fn>::ops;
        }
    }

    void
    moveFrom(InlineEvent &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            if (ops_->moveDestroy != nullptr)
                ops_->moveDestroy(other.buf_, buf_);
            else
                std::memcpy(buf_, other.buf_, kInlineBytes);
            other.ops_ = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (ops_ != nullptr) {
            if (ops_->destroy != nullptr)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace astra

#endif // ASTRA_EVENT_INLINE_EVENT_H_
