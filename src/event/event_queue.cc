#include "event/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace astra {

void
EventQueue::schedule(TimeNs delay, EventCallback cb)
{
    ASTRA_ASSERT(delay >= 0.0, "negative event delay %g", delay);
    scheduleAt(now_ + delay, std::move(cb));
}

void
EventQueue::scheduleAt(TimeNs when, EventCallback cb)
{
    ASTRA_ASSERT(when + 1e-9 >= now_,
                 "event scheduled in the past (when=%g now=%g)", when, now_);
    heap_.push(Entry{std::max(when, now_), seq_++, std::move(cb)});
}

void
EventQueue::pop(Entry &out)
{
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately afterwards.
    out = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
}

TimeNs
EventQueue::run()
{
    while (!heap_.empty())
        step();
    return now_;
}

TimeNs
EventQueue::runUntil(TimeNs until)
{
    while (!heap_.empty() && heap_.top().when <= until)
        step();
    if (now_ < until)
        now_ = until;
    return now_;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    Entry e;
    pop(e);
    now_ = e.when;
    ++executed_;
    e.cb();
    return true;
}

void
EventQueue::reset()
{
    while (!heap_.empty())
        heap_.pop();
    now_ = 0.0;
    seq_ = 0;
    executed_ = 0;
}

} // namespace astra
