#include "event/event_queue.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace astra {

namespace {

/** Histogram slot for a count: its bit-width, clamped to the array. */
inline size_t
log2Slot(size_t n)
{
    size_t w = std::bit_width(n);
    return w < 31 ? w : 31;
}

} // namespace

EventQueue::EventQueue(TimeNs bucket_width, bool adaptive)
    : bucketWidth_(bucket_width), invWidth_(1.0 / bucket_width),
      adaptive_(adaptive)
{
    ASTRA_ASSERT(bucket_width > 0.0, "bucket width must be positive");
}

void
EventQueue::setBucketWidth(TimeNs width)
{
    ASTRA_ASSERT(pending_ == 0,
                 "bucket width can only change on an empty queue");
    ASTRA_ASSERT(width > 0.0, "bucket width must be positive");
    bucketWidth_ = width;
    invWidth_ = 1.0 / width;
}

bool
EventQueue::entryBefore(const Entry &a, const Entry &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    return a.seq < b.seq;
}

bool
EventQueue::entryAfter(const Entry &a, const Entry &b)
{
    return entryBefore(b, a);
}

void
EventQueue::schedule(TimeNs delay, EventCallback cb)
{
    ASTRA_ASSERT(delay >= 0.0, "negative event delay %g", delay);
    scheduleAt(now_ + delay, std::move(cb));
}

void
EventQueue::scheduleAt(TimeNs when, EventCallback cb)
{
    ASTRA_ASSERT(timeNotBefore(when, now_),
                 "event scheduled in the past (when=%g now=%g)", when, now_);
    ++pending_;
    if (when <= now_) {
        // At (or within tolerance of) the current time: FIFO order is
        // (time, insertion) order for equal timestamps. O(1), and by
        // far the hottest scheduling path (zero-delay deferrals).
        nowFifo_.push_back(std::move(cb));
        return;
    }
    if (timedScheduled_ == 0 || when < firstTimedWhen_)
        firstTimedWhen_ = when;
    if (timedScheduled_ == 0 || when > lastTimedWhen_)
        lastTimedWhen_ = when;
    ++timedScheduled_;
    int64_t tick = tickOf(when);
    if (tick < baseTick_)
        rebaseWindow(tick);
    Entry e{when, seq_++, std::move(cb)};
    if (tick >= baseTick_ + static_cast<int64_t>(kNumBuckets)) {
        overflow_.push_back(std::move(e));
        std::push_heap(overflow_.begin(), overflow_.end(), entryAfter);
        return;
    }
    std::vector<Entry> &bucket = bucketAt(tick);
    if (tick == baseTick_ && activeSorted_) {
        // Insert into the live (sorted) bucket at its ordered slot.
        auto pos = std::upper_bound(bucket.begin() +
                                        static_cast<ptrdiff_t>(activeHead_),
                                    bucket.end(), e, entryBefore);
        bucket.insert(pos, std::move(e));
    } else {
        bucket.push_back(std::move(e));
    }
    ++windowCount_;
}

void
EventQueue::rebaseWindow(int64_t tick)
{
    // A new event lands below the window base. This can only happen
    // when runUntil() stopped inside a gap: ensureNext() had already
    // advanced the window to the next pending event's tick (beyond
    // `until`), and the caller then scheduled between `until` and that
    // event. No event of the current base bucket has executed in that
    // state (executing one would have pulled now_ — and so every later
    // schedule — up to baseTick_), so the window holds no moved-out
    // entries and can be spilled wholesale.
    ASTRA_ASSERT(activeHead_ == 0, "rebase with a part-drained bucket");
    if (windowCount_ > 0) {
        for (std::vector<Entry> &bucket : buckets_) {
            for (Entry &e : bucket) {
                overflow_.push_back(std::move(e));
                std::push_heap(overflow_.begin(), overflow_.end(),
                               entryAfter);
            }
            bucket.clear();
        }
        windowCount_ = 0;
    }
    baseTick_ = tick;
    activeSorted_ = false;
}

void
EventQueue::activate(int64_t tick)
{
    baseTick_ = tick;
    // Overflow entries that fall inside the re-based window migrate to
    // their buckets now, so the window invariant (overflow holds only
    // ticks >= baseTick_ + kNumBuckets) is restored before any pop.
    const int64_t limit = tick + static_cast<int64_t>(kNumBuckets);
    while (!overflow_.empty() && tickOf(overflow_.front().when) < limit) {
        std::pop_heap(overflow_.begin(), overflow_.end(), entryAfter);
        Entry e = std::move(overflow_.back());
        overflow_.pop_back();
        bucketAt(tickOf(e.when)).push_back(std::move(e));
        ++windowCount_;
    }
    std::vector<Entry> &bucket = bucketAt(tick);
    // Appends carry monotonically increasing seq, so a bucket filled
    // in nondecreasing time order — the common case: synchronized
    // completion waves put hundreds of equal-timestamp events in one
    // bucket — is already in (when, seq) order. Detect that in one
    // early-exit pass instead of paying the full sort; a genuinely
    // shuffled bucket fails the check within a few elements.
    if (!std::is_sorted(bucket.begin(), bucket.end(), entryBefore))
        std::sort(bucket.begin(), bucket.end(), entryBefore);
    activeHead_ = 0;
    activeSorted_ = true;
    if (prof_) {
        ++prof_->bucketActivations;
        ++prof_->bucketHist[log2Slot(bucket.size())];
    }
}

bool
EventQueue::ensureNext()
{
    if (nowHead_ < nowFifo_.size())
        return true;
    if (nowHead_ != 0) {
        nowFifo_.clear();
        nowHead_ = 0;
    }
    if (pending_ == 0)
        return false;

    std::vector<Entry> &active = bucketAt(baseTick_);
    if (activeHead_ < active.size()) {
        if (!activeSorted_)
            activate(baseTick_);
        return true;
    }
    if (!active.empty()) {
        active.clear();
        activeHead_ = 0;
        activeSorted_ = false;
    }

    // Advance the window to the next live tick. Window entries always
    // precede overflow entries (overflow ticks lie beyond the window),
    // so scan the ring first and fall back to the overflow heap.
    int64_t next;
    if (windowCount_ > 0) {
        int64_t tick = baseTick_ + 1;
        while (bucketAt(tick).empty())
            ++tick;
        next = tick;
    } else {
        ASTRA_ASSERT(!overflow_.empty(), "pending events lost");
        next = tickOf(overflow_.front().when);
    }
    activate(next);
    return true;
}

TimeNs
EventQueue::nextTime()
{
    if (nowHead_ < nowFifo_.size())
        return now_;
    return bucketAt(baseTick_)[activeHead_].when;
}

InlineEvent
EventQueue::popNext()
{
    if (nowHead_ < nowFifo_.size())
        return std::move(nowFifo_[nowHead_++]);

    std::vector<Entry> &active = bucketAt(baseTick_);
    TimeNs t = active[activeHead_].when;
    now_ = t;
    // Move the whole equal-time run into the FIFO: entries scheduled
    // *during* its execution at time t (strictly higher seq) then
    // naturally queue behind it, preserving (time, seq) order.
    while (activeHead_ < active.size() && active[activeHead_].when == t) {
        nowFifo_.push_back(std::move(active[activeHead_].cb));
        ++activeHead_;
        --windowCount_;
    }
    if (activeHead_ == active.size()) {
        active.clear();
        activeHead_ = 0;
        activeSorted_ = false;
    }
    return std::move(nowFifo_[nowHead_++]);
}

TimeNs
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

TimeNs
EventQueue::runUntil(TimeNs until)
{
    while (ensureNext() && nextTime() <= until)
        step();
    if (now_ < until)
        now_ = until;
    return now_;
}

bool
EventQueue::step()
{
    if (!ensureNext())
        return false;
    InlineEvent cb = popNext();
    --pending_;
    ++executed_;
    if (monitor_ != nullptr && --monitorCountdown_ == 0)
        monitorCountdown_ = monitor_->poll(now_, executed_, pending_);
    if (prof_) {
        profiledDispatch(std::move(cb));
        return true;
    }
    if (cb)
        cb();
    return true;
}

void
EventQueue::profiledDispatch(InlineEvent cb)
{
    if (executed_ % QueueProfile::kDepthSampleEvery == 0) {
        ++prof_->depthSamples;
        ++prof_->depthHist[log2Slot(pending_)];
    }
    if (!cb)
        return;
    if (prof_->timeCallbacks &&
        executed_ % QueueProfile::kCallbackSampleEvery == 0) {
        auto t0 = std::chrono::steady_clock::now();
        cb();
        auto t1 = std::chrono::steady_clock::now();
        ++prof_->callbackSamples;
        prof_->callbackWallSeconds +=
            std::chrono::duration<double>(t1 - t0).count() *
            double(QueueProfile::kCallbackSampleEvery);
        return;
    }
    cb();
}

void
EventQueue::setMonitor(telemetry::Monitor *monitor)
{
    monitor_ = monitor;
    monitorCountdown_ = monitor ? monitor->initialCountdown() : 0;
}

size_t
EventQueue::bytesInUse() const
{
    size_t bytes = nowFifo_.capacity() * sizeof(InlineEvent) +
                   overflow_.capacity() * sizeof(Entry);
    for (const std::vector<Entry> &bucket : buckets_)
        bytes += bucket.capacity() * sizeof(Entry);
    return bytes;
}

void
EventQueue::reset()
{
    // Plain container clears: no per-event ordering work (the old
    // binary heap popped every entry at O(log n) apiece). Capacities
    // are retained for reuse.
    nowFifo_.clear();
    nowHead_ = 0;
    if (windowCount_ > 0) {
        for (std::vector<Entry> &bucket : buckets_)
            bucket.clear();
    }
    windowCount_ = 0;
    overflow_.clear();
    baseTick_ = 0;
    activeHead_ = 0;
    activeSorted_ = false;
    now_ = 0.0;
    seq_ = 0;
    executed_ = 0;
    pending_ = 0;

    // Adapt the bucket width to the spacing the finished run actually
    // observed (see the header comment): mean timed-event spacing / 4
    // keeps dependent events a few buckets ahead of the cursor. The
    // spacing is the first-to-last timed span over the count, so a
    // run whose timed events cluster late (long zero-delay warm-up)
    // is not mistaken for a coarse-grained one.
    if (adaptive_ && timedScheduled_ >= kAdaptSampleMin &&
        lastTimedWhen_ > firstTimedWhen_) {
        TimeNs spacing = (lastTimedWhen_ - firstTimedWhen_) /
                         double(timedScheduled_ - 1);
        setBucketWidth(std::clamp(spacing / 4.0, kMinBucketWidthNs,
                                  kMaxBucketWidthNs));
    }
    timedScheduled_ = 0;
    firstTimedWhen_ = 0.0;
    lastTimedWhen_ = 0.0;
}

void
EventQueue::reserve(size_t events, TimeNs expected_span)
{
    nowFifo_.reserve(events);
    overflow_.reserve(events);
    if (adaptive_ && pending_ == 0 && expected_span > 0.0 &&
        events > 0) {
        TimeNs spacing = expected_span / double(events);
        setBucketWidth(std::clamp(spacing / 4.0, kMinBucketWidthNs,
                                  kMaxBucketWidthNs));
    }
}

} // namespace astra
