/**
 * @file
 * Discrete-event simulation core.
 *
 * A single EventQueue instance drives a simulation: components
 * schedule callbacks at absolute or relative simulated times and the
 * queue executes them in (time, insertion-order) order. This is the
 * substrate below the network backends, the memory models, and the
 * graph-based execution engine, mirroring the event queue in the
 * original ASTRA-sim system layer (Fig. 1(c)).
 */
#ifndef ASTRA_EVENT_EVENT_QUEUE_H_
#define ASTRA_EVENT_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace astra {

/** Callback executed when an event fires. */
using EventCallback = std::function<void()>;

/**
 * Priority-queue based discrete-event scheduler.
 *
 * Events at equal timestamps fire in insertion order (stable), which
 * keeps simulations deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in nanoseconds. */
    TimeNs now() const { return now_; }

    /** Schedule `cb` to fire `delay` ns after now; delay must be >= 0. */
    void schedule(TimeNs delay, EventCallback cb);

    /** Schedule `cb` at absolute time `when` (>= now). */
    void scheduleAt(TimeNs when, EventCallback cb);

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Execute events until the queue drains; returns final time. */
    TimeNs run();

    /**
     * Execute events with time <= `until`; events beyond stay queued.
     * Returns the time of the last executed event (or `until`).
     */
    TimeNs runUntil(TimeNs until);

    /** Execute exactly one event if present; returns false when empty. */
    bool step();

    /** Total number of events executed so far (for speed reporting). */
    uint64_t executedEvents() const { return executed_; }

    /** Drop all pending events and reset the clock. */
    void reset();

  private:
    struct Entry
    {
        TimeNs when;
        uint64_t seq;
        EventCallback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void pop(Entry &out);

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    TimeNs now_ = 0.0;
    uint64_t seq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace astra

#endif // ASTRA_EVENT_EVENT_QUEUE_H_
