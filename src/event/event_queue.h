/**
 * @file
 * Discrete-event simulation core.
 *
 * A single EventQueue instance drives a simulation: components
 * schedule callbacks at absolute or relative simulated times and the
 * queue executes them in (time, insertion-order) order. This is the
 * substrate below the network backends, the memory models, and the
 * graph-based execution engine, mirroring the event queue in the
 * original ASTRA-sim system layer (Fig. 1(c)).
 *
 * Implementation (see docs/eventcore.md for the design note): a
 * two-level calendar queue instead of a binary heap.
 *
 *  - A "now FIFO" holds events scheduled at exactly the current time.
 *    Zero-delay scheduling (deferred completions, loopback sends, the
 *    simRecv eager path) is the hottest pattern in the simulator and
 *    costs O(1) push/pop with no ordering work at all, because FIFO
 *    order *is* (time, insertion-order) order for equal timestamps.
 *  - A ring of kNumBuckets buckets covers the near future in
 *    fixed-width integer ticks (tick = floor(time / bucket width)).
 *    Scheduling into a future bucket is an O(1) push; a bucket is
 *    sorted once when the clock reaches it.
 *  - Events beyond the bucket window land in an overflow min-heap and
 *    migrate into the window lazily as it advances.
 *
 * Determinism guarantee: events fire in strictly nondecreasing time,
 * and events with equal timestamps fire in insertion order, exactly as
 * the old binary-heap implementation documented. The bucket width is a
 * pure performance knob — it can never reorder events, because the
 * queue always drains the lowest-tick bucket fully ordered before
 * touching later ticks, and tick order is consistent with time order.
 */
#ifndef ASTRA_EVENT_EVENT_QUEUE_H_
#define ASTRA_EVENT_EVENT_QUEUE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "event/inline_event.h"

namespace astra {

namespace telemetry { class Monitor; }

/** Callback executed when an event fires. */
using EventCallback = InlineEvent;

/**
 * Optional self-profiling sink for an EventQueue (introspection layer,
 * docs/trace.md). When attached via setProfile(), the queue samples
 * its own shape while running:
 *
 *  - `depthHist[b]` counts samples (taken every kDepthSampleEvery
 *    executed events) whose pending-event count had bit-width b —
 *    i.e. a log2 histogram of queue depth over the run.
 *  - `bucketHist[b]` is a log2 histogram of active-bucket sizes at
 *    sort time (one entry per bucket activation), which is the
 *    quantity the adaptive bucket width tries to keep small.
 *  - When `timeCallbacks` is set, every kCallbackSampleEvery-th
 *    callback is wall-clocked and the total is extrapolated into
 *    `callbackWallSeconds` (sampled attribution: dispatch overhead
 *    stays bounded whatever the event rate).
 *
 * Both histograms are pure functions of the simulated event sequence
 * (deterministic); the wall figures are host measurements. Profiling
 * never alters scheduling order, so results are bit-identical with or
 * without a profile attached.
 */
struct QueueProfile
{
    static constexpr uint64_t kDepthSampleEvery = 1024;
    static constexpr uint64_t kCallbackSampleEvery = 64;

    std::array<uint64_t, 32> depthHist{};
    std::array<uint64_t, 32> bucketHist{};
    uint64_t depthSamples = 0;
    uint64_t bucketActivations = 0;
    bool timeCallbacks = false;
    double callbackWallSeconds = 0.0;
    uint64_t callbackSamples = 0;
};

/**
 * Two-level bucketed (calendar) discrete-event scheduler.
 *
 * Events at equal timestamps fire in insertion order (stable), which
 * keeps simulations deterministic.
 */
class EventQueue
{
  public:
    /** Near-future window granularity. One tick should be comfortably
     *  below the typical event spacing created by link latencies
     *  (hundreds of ns), so that dependent events land in later
     *  buckets and the active bucket rarely takes sorted inserts. */
    static constexpr TimeNs kDefaultBucketWidthNs = 64.0;

    /** Buckets in the near-future ring (power of two). With the
     *  default width the window spans ~65 us of simulated time. */
    static constexpr size_t kNumBuckets = 1024;

    /** Bounds for the adaptive bucket width (see reset()). */
    static constexpr TimeNs kMinBucketWidthNs = 4.0;
    static constexpr TimeNs kMaxBucketWidthNs = 4096.0;

    /** Timed events a finished run must have executed before its
     *  spacing sample is trusted for adaptation. */
    static constexpr uint64_t kAdaptSampleMin = 1024;

    /**
     * Default-constructed queues start at kDefaultBucketWidthNs and
     * *adapt*: each reset() re-derives the width from the event
     * spacing the previous run actually exhibited (see reset()).
     * Constructing with an explicit width pins it — the width is a
     * pure performance knob either way and can never reorder events.
     */
    EventQueue() : EventQueue(kDefaultBucketWidthNs, true) {}

    explicit EventQueue(TimeNs bucket_width)
        : EventQueue(bucket_width, false)
    {
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in nanoseconds. */
    TimeNs now() const { return now_; }

    /** Schedule `cb` to fire `delay` ns after now; delay must be >= 0. */
    void schedule(TimeNs delay, EventCallback cb);

    /** Schedule `cb` at absolute time `when` (>= now - kTimeEpsNs;
     *  earlier times within the tolerance clamp to now). */
    void scheduleAt(TimeNs when, EventCallback cb);

    /** Number of pending events. */
    size_t pending() const { return pending_; }

    /** True if no events remain. */
    bool empty() const { return pending_ == 0; }

    /** Execute events until the queue drains; returns final time. */
    TimeNs run();

    /**
     * Execute events with time <= `until`; events beyond stay queued.
     * Returns the time of the last executed event (or `until`).
     */
    TimeNs runUntil(TimeNs until);

    /** Execute exactly one event if present; returns false when empty. */
    bool step();

    /** Total number of events executed so far (for speed reporting). */
    uint64_t executedEvents() const { return executed_; }

    /**
     * Drop all pending events and reset the clock. Container
     * capacities are kept, so a reused queue schedules without
     * reallocating.
     *
     * Adaptive queues (default constructor) additionally re-derive
     * the bucket width here from the run that just finished: the mean
     * inter-event spacing of *timed* events — the span from the first
     * to the last timed timestamp divided by their count (zero-delay
     * FIFO traffic never touches the buckets and is excluded) —
     * divided by 4, clamped to [kMinBucketWidthNs,
     * kMaxBucketWidthNs], so dependent events keep landing a few
     * buckets ahead whatever the workload's natural time scale. Runs
     * below kAdaptSampleMin timed events keep the current width
     * (kDefaultBucketWidthNs fallback). The queue is empty at this
     * point, so changing the width cannot reorder anything — it
     * remains a pure performance knob.
     */
    void reset();

    /**
     * Pre-size the internal containers for ~`events` events. When
     * `expected_span` is given (> 0), also seed the adaptive bucket
     * width from the anticipated mean spacing `expected_span /
     * events` before any event is scheduled (only meaningful on an
     * empty adaptive queue; ignored otherwise) — for the seed to be
     * accurate, pass the *total* timed-event count you expect over
     * the span, not just the concurrently-pending high-water mark
     * (the container reserve tolerates the larger figure).
     */
    void reserve(size_t events, TimeNs expected_span = 0.0);

    /** The current near-future window granularity. */
    TimeNs bucketWidth() const { return bucketWidth_; }

    /** True when reset()/reserve() re-derive the bucket width. */
    bool adaptiveBucketWidth() const { return adaptive_; }

    /** Attach (or detach, with nullptr) a self-profiling sink; the
     *  caller keeps ownership and the profile must outlive the runs
     *  it observes. Purely observational — see QueueProfile. */
    void setProfile(QueueProfile *profile) { prof_ = profile; }

    /**
     * Attach (or detach, with nullptr) a telemetry heartbeat monitor
     * (docs/observability.md). The dispatch loop decrements a
     * countdown per executed event and calls Monitor::poll() when it
     * hits zero, re-arming with the returned value — so the detached
     * cost is one null check and the attached cost one decrement.
     * Purely observational: polling never schedules events or alters
     * dispatch order.
     */
    void setMonitor(telemetry::Monitor *monitor);

    /**
     * Heap bytes held by the queue's containers (telemetry footprint
     * protocol, docs/observability.md): capacity-based, so it is a
     * deterministic function of the event sequence, not of malloc.
     */
    size_t bytesInUse() const;

  private:
    EventQueue(TimeNs bucket_width, bool adaptive);

    struct Entry
    {
        TimeNs when;
        uint64_t seq;
        InlineEvent cb;
    };

    /** Install a new bucket width (queue must be empty). */
    void setBucketWidth(TimeNs width);

    int64_t
    tickOf(TimeNs when) const
    {
        return static_cast<int64_t>(when * invWidth_);
    }

    std::vector<Entry> &
    bucketAt(int64_t tick)
    {
        return buckets_[static_cast<size_t>(tick) & (kNumBuckets - 1)];
    }

    /** Establish the next event source: returns false when empty,
     *  otherwise either the now-FIFO is non-empty or the active bucket
     *  is sorted with its head at the globally earliest entry. */
    bool ensureNext();

    /** Time of the next event; call only after ensureNext() == true. */
    TimeNs nextTime();

    /** Make `tick` the active bucket: migrate overflow entries that
     *  fall inside the new window, then sort the bucket. */
    void activate(int64_t tick);

    /** Re-base the window backwards to `tick` (< baseTick_). Only
     *  possible after runUntil() stopped in a gap with the window
     *  already advanced to a later event; see the .cc comment. */
    void rebaseWindow(int64_t tick);

    /** Pop the next callback in (time, seq) order, advancing now_. */
    InlineEvent popNext();

    /** step() tail with a profile attached (out of line to keep the
     *  unprofiled dispatch loop tight). */
    void profiledDispatch(InlineEvent cb);

    static bool entryBefore(const Entry &a, const Entry &b);
    static bool entryAfter(const Entry &a, const Entry &b);

    // Events at exactly now_ in insertion order (head index pops).
    std::vector<InlineEvent> nowFifo_;
    size_t nowHead_ = 0;

    // Near-future ring. baseTick_ is the active (lowest live) tick;
    // the window covers [baseTick_, baseTick_ + kNumBuckets). The
    // active bucket is kept sorted ascending by (when, seq) with
    // activeHead_ as its pop cursor; other buckets are unsorted.
    std::array<std::vector<Entry>, kNumBuckets> buckets_;
    size_t windowCount_ = 0;
    int64_t baseTick_ = 0;
    size_t activeHead_ = 0;
    bool activeSorted_ = false;

    // Far-future events (tick beyond the window): min-heap by
    // (when, seq), migrated into the ring as the window advances.
    std::vector<Entry> overflow_;

    TimeNs bucketWidth_;
    double invWidth_;
    bool adaptive_;
    TimeNs now_ = 0.0;
    uint64_t seq_ = 0;
    uint64_t executed_ = 0;
    size_t pending_ = 0;
    /** Events that went through the buckets/overflow (not the
     *  now-FIFO): the spacing sample for adaptation is the
     *  [first, last] timed-timestamp span over their count. */
    uint64_t timedScheduled_ = 0;
    TimeNs firstTimedWhen_ = 0.0;
    TimeNs lastTimedWhen_ = 0.0;

    QueueProfile *prof_ = nullptr;

    // Telemetry heartbeat hook (null = detached). The countdown is
    // decremented per executed event only while monitor_ is set.
    telemetry::Monitor *monitor_ = nullptr;
    uint64_t monitorCountdown_ = 0;
};

} // namespace astra

#endif // ASTRA_EVENT_EVENT_QUEUE_H_
