/**
 * @file
 * The graph-based execution engine (paper §IV-A, Fig. 1(b)).
 *
 * Each NPU runs an independent engine instance over its ET graph: a
 * node becomes ready when all its parents completed, ready nodes are
 * issued to the NPU's system layer, and completions release children.
 * Because every NPU consumes its own graph, different NPUs can run
 * different operations at the same time — the property that enables
 * pipeline parallelism and other arbitrary strategies. The engine
 * finishes when every node of every graph has been consumed.
 */
#ifndef ASTRA_WORKLOAD_ENGINE_H_
#define ASTRA_WORKLOAD_ENGINE_H_

#include <memory>
#include <vector>

#include "system/sys.h"
#include "workload/et.h"

namespace astra {

/** See file comment. */
class ExecutionEngine
{
  public:
    /**
     * @param sys  one system layer per NPU (indexed by NPU id);
     *             borrowed, must outlive the engine.
     * @param wl   validated workload (one graph per NPU); borrowed.
     */
    ExecutionEngine(std::vector<std::unique_ptr<Sys>> &sys,
                    const Workload &wl);

    /** Seed all dependency-free nodes into the system layers. */
    void start();

    /** True once every node has completed. */
    bool finished() const { return completed_ == total_; }

    /** Number of completed ET nodes. */
    size_t completedNodes() const { return completed_; }
    size_t totalNodes() const { return total_; }

    /**
     * Convenience: start(), drain the event queue, and fatal() if the
     * workload deadlocked (e.g., mismatched send/recv pairs).
     * Returns the finish time.
     */
    TimeNs run();

  private:
    struct PerNpu
    {
        std::vector<int> indegree;
        std::vector<std::vector<size_t>> children;
    };

    void issue(NpuId npu, size_t index);
    void onDone(NpuId npu, size_t index);

    std::vector<std::unique_ptr<Sys>> &sys_;
    const Workload &wl_;
    std::vector<PerNpu> state_;
    size_t total_ = 0;
    size_t completed_ = 0;
};

} // namespace astra

#endif // ASTRA_WORKLOAD_ENGINE_H_
