/**
 * @file
 * The graph-based execution engine (paper §IV-A, Fig. 1(b)).
 *
 * Each NPU runs an independent engine instance over its ET graph: a
 * node becomes ready when all its parents completed, ready nodes are
 * issued to the NPU's system layer, and completions release children.
 * Because every NPU consumes its own graph, different NPUs can run
 * different operations at the same time — the property that enables
 * pipeline parallelism and other arbitrary strategies. The engine
 * finishes when every node of every graph has been consumed.
 *
 * Ready-node state is arena-allocated: the indegree counters and the
 * children adjacency of *all* graphs live in three flat arrays (a
 * CSR layout indexed by a per-NPU node base), so the completion path
 * — decrement indegrees, walk a child span — is cache-linear instead
 * of chasing one heap allocation per node's child list. The public
 * ET types (workload/et.h) are unchanged; the arena is an engine
 * implementation detail rebuilt per run.
 */
#ifndef ASTRA_WORKLOAD_ENGINE_H_
#define ASTRA_WORKLOAD_ENGINE_H_

#include <memory>
#include <vector>

#include "system/sys.h"
#include "workload/et.h"

namespace astra {

namespace trace { class Tracer; }

/** See file comment. */
class ExecutionEngine
{
  public:
    /**
     * @param sys  one system layer per NPU (indexed by NPU id);
     *             borrowed, must outlive the engine.
     * @param wl   validated workload (one graph per NPU); borrowed.
     * @param initial_done  optional completion snapshot (one flag per
     *             flat node index, from snapshotDone() of a previous
     *             engine over the same workload): those nodes are
     *             marked complete up front and never re-issued —
     *             checkpoint-restart resumes from here. The snapshot
     *             must be dependency-closed (every parent of a done
     *             node is done), which snapshotDone() guarantees.
     */
    ExecutionEngine(std::vector<std::unique_ptr<Sys>> &sys,
                    const Workload &wl,
                    const std::vector<uint8_t> *initial_done = nullptr);

    /** Seed all dependency-free nodes into the system layers. */
    void start();

    /**
     * Stop consuming completions: every subsequent node completion is
     * ignored (no children issued, no progress counted). Used on NPU
     * failure — in-flight events of the abandoned incarnation still
     * fire harmlessly against the cancelled engine. Irreversible.
     */
    void cancel() { cancelled_ = true; }
    bool cancelled() const { return cancelled_; }

    /** Per-node completion flags (flat arena index); a consistent
     *  cut usable as another engine's `initial_done`. */
    std::vector<uint8_t> snapshotDone() const { return done_; }

    /** True once every node has completed. */
    bool finished() const { return completed_ == total_; }

    /**
     * Install a callback invoked *synchronously* from the completion
     * of the last node (no event is scheduled, so the surrounding
     * event stream is unchanged). Used by the cluster simulator to
     * observe per-job finish times while co-executing many engines on
     * one event queue.
     */
    void setOnFinished(EventCallback cb) { onFinished_ = std::move(cb); }

    /** Number of completed ET nodes. */
    size_t completedNodes() const { return completed_; }
    size_t totalNodes() const { return total_; }

    /**
     * Attach the tracing sink (docs/trace.md): every node execution
     * becomes a complete span on its rank's track (tid = NPU id)
     * under process `pid` (0 for single-job runs, job id + 1 in the
     * cluster). Null detaches. Purely observational.
     */
    void setTracer(trace::Tracer *tracer, int32_t pid);

    /**
     * Convenience: start(), drain the event queue, and fatal() if the
     * workload deadlocked (e.g., mismatched send/recv pairs).
     * Returns the finish time.
     */
    TimeNs run();

  private:
    void issue(NpuId npu, size_t index);
    void onDone(NpuId npu, size_t index);

    /** Flat index of node `index` of NPU `npu` in the arenas. */
    size_t
    flatIndex(NpuId npu, size_t index) const
    {
        return nodeBase_[static_cast<size_t>(npu)] + index;
    }

    std::vector<std::unique_ptr<Sys>> &sys_;
    const Workload &wl_;

    // Arena-allocated ready-node state (CSR across all graphs; see
    // file comment). childStart_ has one extra sentinel entry per the
    // usual CSR convention: node g's children are
    // children_[childStart_[g] .. childStart_[g + 1]).
    std::vector<size_t> nodeBase_;    //!< per-NPU arena offset.
    std::vector<int> indegree_;       //!< unmet parents per node.
    std::vector<uint32_t> childStart_; //!< CSR row starts (+1 sentinel).
    std::vector<uint32_t> children_;  //!< child node indices (graph-local).
    std::vector<uint8_t> done_;       //!< per-node completion flags.

    size_t total_ = 0;
    size_t completed_ = 0;
    bool cancelled_ = false;
    EventCallback onFinished_;

    // Tracing (null = disabled): per-node issue timestamps, allocated
    // only when a tracer attaches.
    trace::Tracer *tracer_ = nullptr;
    int32_t tracePid_ = 0;
    std::vector<TimeNs> issuedAt_;
};

} // namespace astra

#endif // ASTRA_WORKLOAD_ENGINE_H_
