/**
 * @file
 * Parallelization-strategy trace builders (paper §II-A / §IV-A).
 *
 * These are the stand-in for collecting PyTorch execution graphs: each
 * builder synthesizes the ASTRA-sim ET a framework would record for a
 * given model + parallelization strategy. Strategies are expressed
 * purely as node metadata and dependencies, so the simulator frontend
 * stays strategy-agnostic (the decoupling §III-A calls for).
 *
 * Supported strategies:
 *  - data-parallel / model-parallel / hybrid MP x DP transformers,
 *  - DLRM-style embedding All-to-All + data-parallel MLPs,
 *  - GPipe-style pipeline parallelism with micro-batches and p2p
 *    activation transfers (different graphs per NPU),
 *  - MoE training over disaggregated memory with either network
 *    collectives (ZeRO-Infinity style) or in-switch fused
 *    gather-on-load / scatter-on-store (§IV-D.3).
 */
#ifndef ASTRA_WORKLOAD_BUILDERS_H_
#define ASTRA_WORKLOAD_BUILDERS_H_

#include "topology/topology.h"
#include "workload/et.h"
#include "workload/models.h"

namespace astra {

/** How MP/DP group factors tile the topology (§V-A.1). */
struct ParallelMapping
{
    int mp = 1;
    int dp = 1;
    std::vector<GroupDim> mpGroups; //!< inner (fast) dims.
    std::vector<GroupDim> dpGroups; //!< outer (scale-out) dims.
};

/**
 * Map an MP x DP hybrid onto the topology: model-parallel groups take
 * the innermost dimensions (splitting one dimension with strided
 * factors if needed, e.g. on a single-dim wafer), data-parallel
 * groups take the rest. fatal() if mp*dp != npus or sizes do not
 * factor.
 */
ParallelMapping mapHybrid(const Topology &topo, int mp, int dp);

/** Options for transformer-style hybrid training traces. */
struct HybridOptions
{
    int mp = 1;         //!< model-parallel ways (dp = npus / mp).
    int iterations = 1;
    int simLayers = 0;  //!< override model coarsening (0 = model's).
};

/** Hybrid (MP x DP) transformer training trace; mp=1 is pure DP. */
Workload buildHybridTransformer(const Topology &topo,
                                const ModelDesc &model,
                                const HybridOptions &opts);

/** DLRM: embedding All-to-All + data-parallel MLP (Table III). */
struct DlrmOptions
{
    int iterations = 1;
};
Workload buildDlrm(const Topology &topo, const ModelDesc &model,
                   const DlrmOptions &opts);

/** A single whole-system collective as a workload (Fig. 9's
 *  "All-Reduce (1GB)" row). */
Workload buildSingleCollective(const Topology &topo, CollectiveType type,
                               Bytes bytes);

/** GPipe-style pipeline parallelism: one stage per NPU. */
struct PipelineOptions
{
    int microbatches = 8;
    int iterations = 1;
};
Workload buildPipelineParallel(const Topology &topo,
                               const ModelDesc &model,
                               const PipelineOptions &opts);

/** Parameter path for disaggregated-memory training (§V-B). */
enum class ParamPath {
    NetworkCollectives, //!< AG/RS over the GPU network (ZeRO style).
    FusedInSwitch,      //!< gather-on-load / scatter-on-store
                        //!< in the pooled memory fabric (§IV-D.3).
};

/** MoE training over a disaggregated memory pool. */
struct MoEOptions
{
    int iterations = 1;
    ParamPath path = ParamPath::NetworkCollectives;
    int simLayers = 0;
};
Workload buildMoEDisaggregated(const Topology &topo,
                               const ModelDesc &model,
                               const MoEOptions &opts);

/** Fresh globally-unique collective rendezvous key. */
uint64_t freshCommKey();

} // namespace astra

#endif // ASTRA_WORKLOAD_BUILDERS_H_
