#include "workload/converter.h"

#include "common/logging.h"

namespace astra {

namespace {

EtNode
convertNode(const json::Value &v)
{
    EtNode node;
    node.id = static_cast<int>(v.at("id").asInt());
    node.name = v.getString("name", "");
    if (v.has("inputs"))
        for (const json::Value &d : v.at("inputs").asArray())
            node.deps.push_back(static_cast<int>(d.asInt()));

    std::string op = v.at("op").asString();
    json::Value attrs =
        v.has("attrs") ? v.at("attrs") : json::Value(json::Object{});

    if (op == "compute") {
        node.type = NodeType::Compute;
        node.flops = attrs.getNumber("flops", 0.0);
        node.tensorBytes = attrs.getNumber("bytes", 0.0);
    } else if (op == "memory") {
        node.type = NodeType::Memory;
        node.memBytes = attrs.getNumber("bytes", 0.0);
        node.location = attrs.getString("location", "local") == "remote"
                            ? MemLocation::Remote
                            : MemLocation::Local;
        node.memOp = attrs.getString("rw", "load") == "store"
                         ? MemOp::Store
                         : MemOp::Load;
        node.fused = attrs.getBool("fused", false);
    } else if (op == "comm") {
        std::string comm_type = attrs.getString("comm_type", "");
        if (comm_type == "send") {
            node.type = NodeType::CommSend;
            node.peer =
                static_cast<NpuId>(attrs.getInt("peer", -1));
            node.p2pBytes = attrs.getNumber("bytes", 0.0);
            node.tag = static_cast<uint64_t>(attrs.getInt("tag", 0));
        } else if (comm_type == "recv") {
            node.type = NodeType::CommRecv;
            node.peer =
                static_cast<NpuId>(attrs.getInt("peer", -1));
            node.tag = static_cast<uint64_t>(attrs.getInt("tag", 0));
        } else {
            node.type = NodeType::CommColl;
            node.coll = parseCollectiveType(comm_type);
            node.commBytes = attrs.getNumber("bytes", 0.0);
        }
    } else {
        fatal("pytorch-et: unknown op kind '%s' (node %d)", op.c_str(),
              node.id);
    }
    return node;
}

} // namespace

Workload
convertPyTorchTraces(const std::vector<json::Value> &rank_docs,
                     const ProcessGroups &groups)
{
    ASTRA_USER_CHECK(!rank_docs.empty(), "converter: no rank documents");
    Workload wl;
    wl.name = "converted-pytorch-et";

    // Collective rendezvous keys must be equal across ranks for the
    // same logical collective. PyTorch traces are SPMD per process
    // group: the n-th collective on a given pg matches across ranks.
    // Key = (pg id, per-pg occurrence counter), assembled per rank.
    for (size_t rank = 0; rank < rank_docs.size(); ++rank) {
        const json::Value &doc = rank_docs[rank];
        ASTRA_USER_CHECK(doc.getString("schema", "") == "pytorch-et",
                         "converter: document %zu is not a pytorch-et "
                         "trace",
                         rank);
        ASTRA_USER_CHECK(
            static_cast<size_t>(doc.at("rank").asInt()) == rank,
            "converter: rank documents out of order (got %lld at %zu)",
            static_cast<long long>(doc.at("rank").asInt()), rank);

        EtGraph graph;
        graph.npu = static_cast<NpuId>(rank);
        std::map<int64_t, uint64_t> pg_counter;
        for (const json::Value &n : doc.at("nodes").asArray()) {
            EtNode node = convertNode(n);
            if (node.type == NodeType::CommColl) {
                json::Value attrs = n.has("attrs")
                                        ? n.at("attrs")
                                        : json::Value(json::Object{});
                int64_t pg = attrs.getInt("pg", 0);
                uint64_t occurrence = pg_counter[pg]++;
                node.commKey =
                    (static_cast<uint64_t>(pg) << 32) | occurrence;
                auto it = groups.find(pg);
                if (it != groups.end())
                    node.groups = it->second;
            }
            graph.nodes.push_back(std::move(node));
        }
        wl.graphs.push_back(std::move(graph));
    }
    return wl;
}

} // namespace astra
