#include "workload/et_json.h"

#include "common/logging.h"

namespace astra {

namespace {

constexpr const char *kSchema = "astra-sim-et-v2";

json::Value
nodeToJson(const EtNode &node)
{
    json::Object o;
    o["id"] = json::Value(node.id);
    o["type"] = json::Value(nodeTypeName(node.type));
    if (!node.name.empty())
        o["name"] = json::Value(node.name);
    if (!node.deps.empty()) {
        json::Array deps;
        for (int d : node.deps)
            deps.push_back(json::Value(d));
        o["deps"] = json::Value(std::move(deps));
    }
    switch (node.type) {
      case NodeType::Compute:
        o["flops"] = json::Value(node.flops);
        o["tensor_bytes"] = json::Value(node.tensorBytes);
        break;
      case NodeType::Memory:
        o["op"] = json::Value(memOpName(node.memOp));
        o["location"] = json::Value(memLocationName(node.location));
        o["bytes"] = json::Value(node.memBytes);
        if (node.fused)
            o["fused"] = json::Value(true);
        break;
      case NodeType::CommColl: {
        o["coll"] = json::Value(collectiveName(node.coll));
        o["bytes"] = json::Value(node.commBytes);
        // JSON numbers are doubles: keys beyond 2^53 would silently
        // collide after a round trip.
        ASTRA_USER_CHECK(node.commKey < (1ULL << 53),
                         "ET node %d: collective key %llu too large to "
                         "serialize",
                         node.id,
                         static_cast<unsigned long long>(node.commKey));
        o["key"] = json::Value(static_cast<double>(node.commKey));
        if (!node.groups.empty()) {
            json::Array groups;
            for (const GroupDim &g : node.groups) {
                json::Object go;
                go["dim"] = json::Value(g.dim);
                go["size"] = json::Value(g.size);
                go["stride"] = json::Value(g.stride);
                groups.push_back(json::Value(std::move(go)));
            }
            o["groups"] = json::Value(std::move(groups));
        }
        break;
      }
      case NodeType::CommSend:
        o["peer"] = json::Value(node.peer);
        o["bytes"] = json::Value(node.p2pBytes);
        o["tag"] = json::Value(static_cast<double>(node.tag));
        break;
      case NodeType::CommRecv:
        o["peer"] = json::Value(node.peer);
        o["tag"] = json::Value(static_cast<double>(node.tag));
        break;
    }
    return json::Value(std::move(o));
}

EtNode
nodeFromJson(const json::Value &v)
{
    EtNode node;
    node.id = static_cast<int>(v.at("id").asInt());
    node.type = parseNodeType(v.at("type").asString());
    node.name = v.getString("name", "");
    if (v.has("deps"))
        for (const json::Value &d : v.at("deps").asArray())
            node.deps.push_back(static_cast<int>(d.asInt()));
    switch (node.type) {
      case NodeType::Compute:
        node.flops = v.getNumber("flops", 0.0);
        node.tensorBytes = v.getNumber("tensor_bytes", 0.0);
        break;
      case NodeType::Memory:
        node.memOp = v.getString("op", "load") == "store" ? MemOp::Store
                                                          : MemOp::Load;
        node.location = v.getString("location", "local") == "remote"
                            ? MemLocation::Remote
                            : MemLocation::Local;
        node.memBytes = v.getNumber("bytes", 0.0);
        node.fused = v.getBool("fused", false);
        break;
      case NodeType::CommColl: {
        node.coll = parseCollectiveType(v.at("coll").asString());
        node.commBytes = v.getNumber("bytes", 0.0);
        node.commKey = static_cast<uint64_t>(v.getNumber("key", 0.0));
        if (v.has("groups")) {
            for (const json::Value &g : v.at("groups").asArray()) {
                GroupDim gd;
                gd.dim = static_cast<int>(g.at("dim").asInt());
                gd.size = static_cast<int>(g.getInt("size", 0));
                gd.stride = static_cast<int>(g.getInt("stride", 1));
                node.groups.push_back(gd);
            }
        }
        break;
      }
      case NodeType::CommSend:
        node.peer = static_cast<NpuId>(v.at("peer").asInt());
        node.p2pBytes = v.getNumber("bytes", 0.0);
        node.tag = static_cast<uint64_t>(v.getNumber("tag", 0.0));
        break;
      case NodeType::CommRecv:
        node.peer = static_cast<NpuId>(v.at("peer").asInt());
        node.tag = static_cast<uint64_t>(v.getNumber("tag", 0.0));
        break;
    }
    return node;
}

} // namespace

json::Value
workloadToJson(const Workload &wl)
{
    json::Object doc;
    doc["schema"] = json::Value(kSchema);
    doc["name"] = json::Value(wl.name);
    doc["npus"] = json::Value(static_cast<int64_t>(wl.graphs.size()));
    json::Array graphs;
    for (const EtGraph &g : wl.graphs) {
        json::Object go;
        go["npu"] = json::Value(g.npu);
        json::Array nodes;
        for (const EtNode &node : g.nodes)
            nodes.push_back(nodeToJson(node));
        go["nodes"] = json::Value(std::move(nodes));
        graphs.push_back(json::Value(std::move(go)));
    }
    doc["graphs"] = json::Value(std::move(graphs));
    return json::Value(std::move(doc));
}

Workload
workloadFromJson(const json::Value &doc)
{
    ASTRA_USER_CHECK(doc.getString("schema", "") == kSchema,
                     "ET document schema is '%s', expected '%s' (use the "
                     "converter for external trace formats)",
                     doc.getString("schema", "<missing>").c_str(),
                     kSchema);
    Workload wl;
    wl.name = doc.getString("name", "trace");
    int64_t npus = doc.at("npus").asInt();
    const json::Array &graphs = doc.at("graphs").asArray();
    ASTRA_USER_CHECK(static_cast<int64_t>(graphs.size()) == npus,
                     "ET document: npus=%lld but %zu graphs",
                     static_cast<long long>(npus), graphs.size());
    for (const json::Value &g : graphs) {
        EtGraph graph;
        graph.npu = static_cast<NpuId>(g.at("npu").asInt());
        for (const json::Value &n : g.at("nodes").asArray())
            graph.nodes.push_back(nodeFromJson(n));
        wl.graphs.push_back(std::move(graph));
    }
    return wl;
}

void
saveWorkload(const std::string &path, const Workload &wl)
{
    json::writeFile(path, workloadToJson(wl));
}

Workload
loadWorkload(const std::string &path)
{
    return workloadFromJson(json::parseFile(path));
}

} // namespace astra
