#include "workload/builders.h"

#include <atomic>

#include "common/logging.h"

namespace astra {

uint64_t
freshCommKey()
{
    // Keys must survive a JSON round trip (numbers are doubles), so
    // stay well below 2^53.
    static std::atomic<uint64_t> counter{0};
    return ++counter;
}

ParallelMapping
mapHybrid(const Topology &topo, int mp, int dp)
{
    ASTRA_USER_CHECK(mp >= 1 && dp >= 1,
                     "parallel degrees must be positive (mp=%d dp=%d)",
                     mp, dp);
    ASTRA_USER_CHECK(mp * dp == topo.npus(),
                     "mp(%d) x dp(%d) != %d NPUs", mp, dp, topo.npus());

    ParallelMapping map;
    map.mp = mp;
    map.dp = dp;
    int remaining_mp = mp;
    for (int d = 0; d < topo.numDims(); ++d) {
        int k = topo.dim(d).size;
        if (k < 2)
            continue;
        if (remaining_mp > 1) {
            if (remaining_mp >= k) {
                ASTRA_USER_CHECK(remaining_mp % k == 0,
                                 "mp=%d does not factor over dim %d "
                                 "(size %d)",
                                 mp, d + 1, k);
                map.mpGroups.push_back(
                    topo.normalizeGroup(GroupDim{d, k, 1}));
                remaining_mp /= k;
            } else {
                // Split this dimension: MP takes the inner factor,
                // DP the outer strided factor (e.g. on a 1-D wafer).
                ASTRA_USER_CHECK(k % remaining_mp == 0,
                                 "mp=%d does not divide dim %d (size %d)",
                                 mp, d + 1, k);
                map.mpGroups.push_back(
                    topo.normalizeGroup(GroupDim{d, remaining_mp, 1}));
                int rest = k / remaining_mp;
                if (rest > 1) {
                    map.dpGroups.push_back(topo.normalizeGroup(
                        GroupDim{d, rest, remaining_mp}));
                }
                remaining_mp = 1;
            }
        } else {
            map.dpGroups.push_back(
                topo.normalizeGroup(GroupDim{d, k, 1}));
        }
    }
    ASTRA_USER_CHECK(remaining_mp == 1,
                     "mp=%d exceeds the topology size", mp);
    return map;
}

namespace {

/** SPMD helper: builds one node template and replicates per NPU. */
class SpmdBuilder
{
  public:
    int
    addNode(EtNode node)
    {
        node.id = static_cast<int>(nodes_.size());
        nodes_.push_back(std::move(node));
        return nodes_.back().id;
    }

    int
    addCompute(std::string name, Flops flops, Bytes bytes,
               std::vector<int> deps)
    {
        EtNode n;
        n.type = NodeType::Compute;
        n.name = std::move(name);
        n.flops = flops;
        n.tensorBytes = bytes;
        n.deps = std::move(deps);
        return addNode(std::move(n));
    }

    int
    addCollective(std::string name, CollectiveType type, Bytes bytes,
                  std::vector<GroupDim> groups, std::vector<int> deps)
    {
        EtNode n;
        n.type = NodeType::CommColl;
        n.name = std::move(name);
        n.coll = type;
        n.commBytes = bytes;
        n.groups = std::move(groups);
        n.commKey = freshCommKey();
        n.deps = std::move(deps);
        return addNode(std::move(n));
    }

    int
    addMemory(std::string name, MemLocation loc, MemOp op, Bytes bytes,
              bool fused, std::vector<int> deps)
    {
        EtNode n;
        n.type = NodeType::Memory;
        n.name = std::move(name);
        n.location = loc;
        n.memOp = op;
        n.memBytes = bytes;
        n.fused = fused;
        n.deps = std::move(deps);
        return addNode(std::move(n));
    }

    Workload
    replicate(const std::string &name, int npus) const
    {
        Workload wl;
        wl.name = name;
        wl.graphs.reserve(static_cast<size_t>(npus));
        for (NpuId n = 0; n < npus; ++n) {
            EtGraph g;
            g.npu = n;
            g.nodes = nodes_;
            wl.graphs.push_back(std::move(g));
        }
        return wl;
    }

  private:
    std::vector<EtNode> nodes_;
};

} // namespace

Workload
buildHybridTransformer(const Topology &topo, const ModelDesc &model,
                       const HybridOptions &opts)
{
    ASTRA_USER_CHECK(opts.iterations >= 1, "iterations must be >= 1");
    int mp = opts.mp;
    int dp = topo.npus() / mp;
    ParallelMapping map = mapHybrid(topo, mp, dp);

    int layers = opts.simLayers > 0 ? opts.simLayers
                                    : model.effectiveLayers();
    double params_per_layer = model.params / layers;
    double tokens = double(model.tokensPerBatch);
    // Graph coarsening merges `merge` real layers into one node; all
    // per-layer volumes (FLOPs via params_per_layer, activations,
    // weight gradients) scale by the same factor so aggregate totals
    // are preserved.
    double merge = double(model.layers) / double(layers);
    // Megatron-style sharded matmuls: forward multiplies every token
    // by this NPU's parameter shard.
    Flops fwd_flops = 2.0 * (params_per_layer / mp) * tokens;
    Bytes act_bytes =
        tokens * model.hidden * model.bytesPerParam * merge;
    Bytes layer_weight_bytes =
        params_per_layer * model.bytesPerParam / mp;
    Bytes wgrad_bytes = layer_weight_bytes;

    SpmdBuilder b;
    int prev = -1;
    auto chain = [&](int id) {
        prev = id;
        return id;
    };
    auto deps_of = [&]() {
        return prev >= 0 ? std::vector<int>{prev} : std::vector<int>{};
    };

    for (int it = 0; it < opts.iterations; ++it) {
        std::vector<int> iteration_tail;
        // Forward pass. Megatron-style tensor parallelism reduces
        // activations twice per layer (after the attention block and
        // after the MLP block).
        for (int l = 0; l < layers; ++l) {
            std::string tag =
                "it" + std::to_string(it) + ".l" + std::to_string(l);
            chain(b.addCompute(tag + ".attn_fwd", 0.5 * fwd_flops,
                               act_bytes + 0.5 * layer_weight_bytes,
                               deps_of()));
            if (mp > 1) {
                chain(b.addCollective(tag + ".attn_fwd_ar",
                                      CollectiveType::AllReduce,
                                      act_bytes, map.mpGroups,
                                      deps_of()));
            }
            chain(b.addCompute(tag + ".mlp_fwd", 0.5 * fwd_flops,
                               act_bytes + 0.5 * layer_weight_bytes,
                               deps_of()));
            if (mp > 1) {
                chain(b.addCollective(tag + ".mlp_fwd_ar",
                                      CollectiveType::AllReduce,
                                      act_bytes, map.mpGroups,
                                      deps_of()));
            }
        }
        // Backward pass; weight-gradient all-reduces overlap the
        // remaining backward computes (they only gate the optimizer).
        for (int l = layers - 1; l >= 0; --l) {
            std::string tag =
                "it" + std::to_string(it) + ".l" + std::to_string(l);
            chain(b.addCompute(tag + ".mlp_bwd", fwd_flops,
                               act_bytes + 0.5 * layer_weight_bytes,
                               deps_of()));
            if (mp > 1) {
                chain(b.addCollective(tag + ".mlp_bwd_ar",
                                      CollectiveType::AllReduce,
                                      act_bytes, map.mpGroups,
                                      deps_of()));
            }
            int bwd = chain(b.addCompute(tag + ".attn_bwd", fwd_flops,
                                         act_bytes +
                                             0.5 * layer_weight_bytes,
                                         deps_of()));
            if (mp > 1) {
                chain(b.addCollective(tag + ".attn_bwd_ar",
                                      CollectiveType::AllReduce,
                                      act_bytes, map.mpGroups,
                                      deps_of()));
            }
            if (dp > 1) {
                iteration_tail.push_back(b.addCollective(
                    tag + ".wgrad_ar", CollectiveType::AllReduce,
                    wgrad_bytes, map.dpGroups, {bwd}));
            }
        }
        // Optimizer step: waits for the backward chain and all
        // outstanding weight-gradient all-reduces.
        iteration_tail.push_back(prev);
        chain(b.addCompute("it" + std::to_string(it) + ".opt",
                           2.0 * model.params / mp,
                           2.0 * model.params * model.bytesPerParam / mp,
                           std::move(iteration_tail)));
    }

    return b.replicate(model.name + "-hybrid-mp" + std::to_string(mp) +
                           "-dp" + std::to_string(dp),
                       topo.npus());
}

Workload
buildDlrm(const Topology &topo, const ModelDesc &model,
          const DlrmOptions &opts)
{
    ASTRA_USER_CHECK(model.embeddingExchangeBytes > 0.0,
                     "DLRM model needs embeddingExchangeBytes");
    int layers = model.effectiveLayers();
    double params_per_layer = model.params / layers;
    double samples = double(model.tokensPerBatch);
    Flops mlp_flops = 2.0 * params_per_layer * samples;
    Bytes act_bytes = samples * model.hidden * model.bytesPerParam;

    SpmdBuilder b;
    int prev = -1;
    auto chain = [&](int id) {
        prev = id;
        return id;
    };
    auto deps_of = [&]() {
        return prev >= 0 ? std::vector<int>{prev} : std::vector<int>{};
    };

    for (int it = 0; it < opts.iterations; ++it) {
        std::string pre = "it" + std::to_string(it) + ".";
        // Embedding lookups exchanged across every NPU (model-parallel
        // embedding tables).
        chain(b.addCollective(pre + "emb_fwd_a2a",
                              CollectiveType::AllToAll,
                              model.embeddingExchangeBytes, {},
                              deps_of()));
        for (int l = 0; l < layers; ++l)
            chain(b.addCompute(pre + "mlp" + std::to_string(l) + ".fwd",
                               mlp_flops, act_bytes, deps_of()));
        for (int l = layers - 1; l >= 0; --l)
            chain(b.addCompute(pre + "mlp" + std::to_string(l) + ".bwd",
                               2.0 * mlp_flops, act_bytes, deps_of()));
        int bwd_tail = prev;
        int a2a = b.addCollective(pre + "emb_bwd_a2a",
                                  CollectiveType::AllToAll,
                                  model.embeddingExchangeBytes, {},
                                  {bwd_tail});
        // Data-parallel MLP gradient synchronization across all NPUs.
        int wgrad = b.addCollective(
            pre + "mlp_wgrad_ar", CollectiveType::AllReduce,
            model.params * model.bytesPerParam, {}, {bwd_tail});
        chain(b.addCompute(pre + "opt", 2.0 * model.params,
                           2.0 * model.params * model.bytesPerParam,
                           {a2a, wgrad}));
    }
    return b.replicate(model.name + "-dlrm", topo.npus());
}

Workload
buildSingleCollective(const Topology &topo, CollectiveType type,
                      Bytes bytes)
{
    SpmdBuilder b;
    b.addCollective(std::string(collectiveName(type)), type, bytes, {},
                    {});
    return b.replicate(std::string("single-") + collectiveName(type),
                       topo.npus());
}

Workload
buildPipelineParallel(const Topology &topo, const ModelDesc &model,
                      const PipelineOptions &opts)
{
    ASTRA_USER_CHECK(opts.microbatches >= 1,
                     "pipeline needs at least one micro-batch");
    int stages = topo.npus();
    int micro = opts.microbatches;
    double params_per_stage = model.params / stages;
    double tokens_per_micro =
        double(model.tokensPerBatch) / double(micro);
    Flops fwd_flops = 2.0 * params_per_stage * tokens_per_micro;
    Bytes act_bytes =
        tokens_per_micro * model.hidden * model.bytesPerParam;

    // Tags identify (iteration, micro-batch, direction).
    auto tag_of = [](int it, int m, bool fwd) {
        return (static_cast<uint64_t>(it) << 24) |
               (static_cast<uint64_t>(m) << 1) | (fwd ? 1u : 0u);
    };

    Workload wl;
    wl.name = model.name + "-pipeline-" + std::to_string(stages) + "s" +
              std::to_string(micro) + "m";
    for (NpuId s = 0; s < stages; ++s) {
        EtGraph g;
        g.npu = s;
        int next_id = 0;
        int prev = -1;
        auto add = [&](EtNode n) {
            n.id = next_id++;
            if (prev >= 0)
                n.deps.push_back(prev);
            prev = n.id;
            g.nodes.push_back(std::move(n));
            return prev;
        };

        for (int it = 0; it < opts.iterations; ++it) {
            // GPipe schedule: all forward micro-batches, then all
            // backward micro-batches in reverse.
            for (int m = 0; m < micro; ++m) {
                if (s > 0) {
                    EtNode recv;
                    recv.type = NodeType::CommRecv;
                    recv.name = "fwd_recv.m" + std::to_string(m);
                    recv.peer = s - 1;
                    recv.tag = tag_of(it, m, true);
                    add(std::move(recv));
                }
                EtNode c;
                c.type = NodeType::Compute;
                c.name = "fwd.m" + std::to_string(m);
                c.flops = fwd_flops;
                c.tensorBytes = act_bytes;
                add(std::move(c));
                if (s < stages - 1) {
                    EtNode send;
                    send.type = NodeType::CommSend;
                    send.name = "fwd_send.m" + std::to_string(m);
                    send.peer = s + 1;
                    send.p2pBytes = act_bytes;
                    send.tag = tag_of(it, m, true);
                    add(std::move(send));
                }
            }
            for (int m = micro - 1; m >= 0; --m) {
                if (s < stages - 1) {
                    EtNode recv;
                    recv.type = NodeType::CommRecv;
                    recv.name = "bwd_recv.m" + std::to_string(m);
                    recv.peer = s + 1;
                    recv.tag = tag_of(it, m, false);
                    add(std::move(recv));
                }
                EtNode c;
                c.type = NodeType::Compute;
                c.name = "bwd.m" + std::to_string(m);
                c.flops = 2.0 * fwd_flops;
                c.tensorBytes = act_bytes;
                add(std::move(c));
                if (s > 0) {
                    EtNode send;
                    send.type = NodeType::CommSend;
                    send.name = "bwd_send.m" + std::to_string(m);
                    send.peer = s - 1;
                    send.p2pBytes = act_bytes;
                    send.tag = tag_of(it, m, false);
                    add(std::move(send));
                }
            }
        }
        wl.graphs.push_back(std::move(g));
    }
    return wl;
}

Workload
buildMoEDisaggregated(const Topology &topo, const ModelDesc &model,
                      const MoEOptions &opts)
{
    int layers =
        opts.simLayers > 0 ? opts.simLayers : model.effectiveLayers();
    double params_per_layer = model.params / layers;
    Bytes layer_bytes = params_per_layer * model.bytesPerParam;
    Bytes shard_bytes = layer_bytes / topo.npus();
    double tokens = double(model.tokensPerBatch);
    Flops layer_flops =
        2.0 * (model.params * model.activeParamFraction / layers) *
        tokens / topo.npus();
    Bytes a2a_bytes = tokens * model.hidden * model.bytesPerParam /
                      topo.npus();
    bool fused = opts.path == ParamPath::FusedInSwitch;

    SpmdBuilder b;
    int prev = -1;
    auto chain = [&](int id) {
        prev = id;
        return id;
    };
    auto deps_of = [&]() {
        return prev >= 0 ? std::vector<int>{prev} : std::vector<int>{};
    };

    for (int it = 0; it < opts.iterations; ++it) {
        // Fused mode prefetches: gather-on-load nodes depend only on
        // the previous load (the DMA queue serializes them), so the
        // fabric streams the next layer's parameters while the NPUs
        // route tokens and compute. This is the "hide communication
        // time" configuration of §V-B; the network-collective path
        // keeps ZeRO-Infinity's serial fetch semantics.
        int prev_load = -1;
        std::vector<int> fwd_loads(static_cast<size_t>(layers), -1);
        if (fused) {
            for (int l = 0; l < layers; ++l) {
                std::string tag = "it" + std::to_string(it) + ".l" +
                                  std::to_string(l);
                std::vector<int> deps;
                if (prev_load >= 0)
                    deps.push_back(prev_load);
                prev_load = b.addMemory(tag + ".param_gather_load",
                                        MemLocation::Remote, MemOp::Load,
                                        shard_bytes, true,
                                        std::move(deps));
                fwd_loads[static_cast<size_t>(l)] = prev_load;
            }
        }
        for (int l = 0; l < layers; ++l) {
            std::string tag =
                "it" + std::to_string(it) + ".l" + std::to_string(l);
            // Parameters live in the remote pool, ZeRO-sharded.
            if (fused) {
                std::vector<int> deps = deps_of();
                deps.push_back(fwd_loads[static_cast<size_t>(l)]);
                chain(b.addCollective(tag + ".a2a_fwd",
                                      CollectiveType::AllToAll,
                                      a2a_bytes, {}, std::move(deps)));
            } else {
                chain(b.addMemory(tag + ".param_shard_load",
                                  MemLocation::Remote, MemOp::Load,
                                  shard_bytes, false, deps_of()));
                chain(b.addCollective(tag + ".param_ag",
                                      CollectiveType::AllGather,
                                      layer_bytes, {}, deps_of()));
                chain(b.addCollective(tag + ".a2a_fwd",
                                      CollectiveType::AllToAll,
                                      a2a_bytes, {}, deps_of()));
            }
            // Expert FFN + return routing.
            chain(b.addCompute(tag + ".fwd", layer_flops,
                               a2a_bytes + shard_bytes, deps_of()));
            chain(b.addCollective(tag + ".a2a_fwd_ret",
                                  CollectiveType::AllToAll, a2a_bytes,
                                  {}, deps_of()));
        }
        std::vector<int> iteration_tail;
        for (int l = layers - 1; l >= 0; --l) {
            std::string tag =
                "it" + std::to_string(it) + ".l" + std::to_string(l);
            chain(b.addCollective(tag + ".a2a_bwd",
                                  CollectiveType::AllToAll, a2a_bytes,
                                  {}, deps_of()));
            int bwd = chain(b.addCompute(tag + ".bwd", 2.0 * layer_flops,
                                         a2a_bytes + shard_bytes,
                                         deps_of()));
            chain(b.addCollective(tag + ".a2a_bwd_ret",
                                  CollectiveType::AllToAll, a2a_bytes,
                                  {}, deps_of()));
            // Gradient reduction back into the sharded optimizer.
            int store;
            if (fused) {
                // Scatter-on-store off the critical chain: the fabric
                // drains gradients while earlier layers keep running.
                store = b.addMemory(tag + ".grad_scatter_store",
                                    MemLocation::Remote, MemOp::Store,
                                    shard_bytes, true, {bwd});
            } else {
                int rs = chain(b.addCollective(
                    tag + ".grad_rs", CollectiveType::ReduceScatter,
                    layer_bytes, {}, deps_of()));
                store = b.addMemory(tag + ".grad_shard_store",
                                    MemLocation::Remote, MemOp::Store,
                                    shard_bytes, false, {rs});
                chain(store);
            }
            // Local optimizer math on the shard.
            iteration_tail.push_back(b.addCompute(
                tag + ".opt", 4.0 * params_per_layer / topo.npus(),
                2.0 * shard_bytes, {store}));
        }
        // Next iteration starts after every optimizer shard landed.
        iteration_tail.push_back(prev);
        chain(b.addCompute("it" + std::to_string(it) + ".sync", 0.0, 0.0,
                           std::move(iteration_tail)));
    }
    return b.replicate(model.name + (fused ? "-fused" : "-netcoll"),
                       topo.npus());
}

} // namespace astra
