/**
 * @file
 * ASTRA-sim ET JSON (de)serialization (paper §IV-A).
 *
 * The on-disk schema ("astra-sim-et-v2") mirrors the in-memory
 * Workload: a document header plus one node array per NPU. Node
 * objects carry only the fields meaningful for their type; see
 * tests/workload/test_et_json.cc for examples.
 */
#ifndef ASTRA_WORKLOAD_ET_JSON_H_
#define ASTRA_WORKLOAD_ET_JSON_H_

#include <string>

#include "common/json.h"
#include "workload/et.h"

namespace astra {

/** Serialize a workload to the astra-sim-et-v2 JSON document. */
json::Value workloadToJson(const Workload &wl);

/** Parse an astra-sim-et-v2 document; fatal() on schema violations. */
Workload workloadFromJson(const json::Value &doc);

/** File helpers. */
void saveWorkload(const std::string &path, const Workload &wl);
Workload loadWorkload(const std::string &path);

} // namespace astra

#endif // ASTRA_WORKLOAD_ET_JSON_H_
