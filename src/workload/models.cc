#include "workload/models.h"

namespace astra {

ModelDesc
dlrm()
{
    ModelDesc m;
    m.name = "DLRM";
    m.params = 57e6; // Table III: 57M MLP parameters.
    m.layers = 8;
    m.simLayers = 8;
    m.bytesPerParam = 4.0; // fp32 MLPs.
    m.hidden = 1024.0;
    m.tokensPerBatch = 4096; // samples per replica.
    // Embedding-lookup results exchanged across all NPUs each
    // direction (the communication that dominates DLRM training).
    m.embeddingExchangeBytes = 64e6;
    return m;
}

ModelDesc
gpt3()
{
    ModelDesc m;
    m.name = "GPT-3";
    m.params = 175e9;
    m.layers = 96;
    m.simLayers = 12; // coarsened 8:1; volumes preserved.
    m.bytesPerParam = 2.0;
    m.hidden = 12288.0;
    m.tokensPerBatch = 2048;
    return m;
}

ModelDesc
transformer1T()
{
    ModelDesc m;
    m.name = "Transformer-1T";
    m.params = 1e12;
    m.layers = 128;
    m.simLayers = 16;
    m.bytesPerParam = 2.0;
    m.hidden = 25600.0;
    m.tokensPerBatch = 2048;
    return m;
}

ModelDesc
moe1T()
{
    ModelDesc m;
    m.name = "MoE-1T";
    m.params = 1e12;
    m.layers = 24; // MoE layers (experts dominate the parameters).
    m.simLayers = 12;
    m.bytesPerParam = 2.0;
    m.hidden = 8192.0;
    m.tokensPerBatch = 1 << 20; // global batch tokens (4K per GPU).
    m.activeParamFraction = 0.025; // ~25B active per token.
    return m;
}

} // namespace astra
