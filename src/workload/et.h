/**
 * @file
 * ASTRA-sim execution traces (ETs), paper §IV-A / Fig. 1(b).
 *
 * An ET encodes the execution of an ML model and its parallelization
 * strategy as one dependency graph per NPU. Node types follow the
 * paper: compute nodes carry FLOP count and tensor size (timed by the
 * roofline model), memory nodes carry tensor size and location (timed
 * by the Memory API), and communication nodes are either collectives
 * (type + size + group) or point-to-point send/receive pairs.
 * Parallelization strategies are encoded purely through node metadata
 * and dependency edges, which is what decouples them from the
 * simulator frontend.
 */
#ifndef ASTRA_WORKLOAD_ET_H_
#define ASTRA_WORKLOAD_ET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collective/types.h"
#include "memory/memory_api.h"
#include "topology/topology.h"

namespace astra {

/** ET node kinds (Fig. 1(b): compute, memory, communication). */
enum class NodeType {
    Compute,
    Memory,
    CommColl,
    CommSend,
    CommRecv,
};

const char *nodeTypeName(NodeType t);
NodeType parseNodeType(const std::string &name);

/** One ET node; the meaningful fields depend on `type`. */
struct EtNode
{
    int id = -1;
    NodeType type = NodeType::Compute;
    std::string name;       //!< optional human label ("layer3.wgrad").
    std::vector<int> deps;  //!< parent node ids (must all complete).

    // -- Compute metadata (flops + touched bytes, §IV-A).
    Flops flops = 0.0;
    Bytes tensorBytes = 0.0;

    // -- Memory metadata.
    MemLocation location = MemLocation::Local;
    MemOp memOp = MemOp::Load;
    Bytes memBytes = 0.0;
    /** In-switch collective fusion (§IV-D.3). */
    bool fused = false;

    // -- Collective metadata.
    CollectiveType coll = CollectiveType::AllReduce;
    Bytes commBytes = 0.0;
    std::vector<GroupDim> groups; //!< empty = whole topology.
    /** Rendezvous key; equal across the group's NPUs. */
    uint64_t commKey = 0;

    // -- Point-to-point metadata.
    NpuId peer = -1;
    Bytes p2pBytes = 0.0;
    uint64_t tag = 0;
};

/** One NPU's dependency graph. */
struct EtGraph
{
    NpuId npu = 0;
    std::vector<EtNode> nodes;
};

/** A complete workload: one graph per NPU. */
struct Workload
{
    std::string name;
    std::vector<EtGraph> graphs;

    size_t totalNodes() const;
};

/**
 * Validate a workload against a topology size: one graph per NPU in
 * order, unique node ids per graph, dependencies referencing existing
 * nodes, acyclic graphs, peers in range. fatal() on violations (ETs
 * are user input).
 */
void validateWorkload(const Workload &wl, int npus);

} // namespace astra

#endif // ASTRA_WORKLOAD_ET_H_
