#include "workload/engine.h"

#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "trace/tracer.h"

namespace astra {

ExecutionEngine::ExecutionEngine(std::vector<std::unique_ptr<Sys>> &sys,
                                 const Workload &wl,
                                 const std::vector<uint8_t> *initial_done)
    : sys_(sys), wl_(wl)
{
    ASTRA_ASSERT(sys_.size() == wl_.graphs.size(),
                 "engine needs one Sys per graph (%zu vs %zu)",
                 sys_.size(), wl_.graphs.size());
    total_ = wl_.totalNodes();

    // Build the CSR arenas in three passes: arena offsets, per-node
    // child counts (prefix-summed into row starts), then the child
    // lists themselves. One id->index map is reused across graphs.
    nodeBase_.resize(wl_.graphs.size());
    size_t base = 0;
    for (size_t n = 0; n < wl_.graphs.size(); ++n) {
        nodeBase_[n] = base;
        base += wl_.graphs[n].nodes.size();
    }
    ASTRA_ASSERT(base == total_, "arena size mismatch");

    indegree_.assign(total_, 0);
    childStart_.assign(total_ + 1, 0);
    // Resolve every dependency edge once (one id->index map, reused
    // across graphs); the edge list then feeds both the in-place
    // prefix sum and the CSR fill without re-hashing.
    std::vector<std::pair<uint32_t, uint32_t>> edges; // (parent, child)
    std::unordered_map<int, size_t> index;
    for (size_t n = 0; n < wl_.graphs.size(); ++n) {
        const EtGraph &g = wl_.graphs[n];
        index.clear();
        for (size_t i = 0; i < g.nodes.size(); ++i)
            index.emplace(g.nodes[i].id, i);
        for (size_t i = 0; i < g.nodes.size(); ++i) {
            for (int dep : g.nodes[i].deps) {
                auto it = index.find(dep);
                ASTRA_ASSERT(it != index.end(),
                             "unvalidated workload reached the engine");
                edges.emplace_back(
                    static_cast<uint32_t>(nodeBase_[n] + it->second),
                    static_cast<uint32_t>(i));
                // Counts land one slot ahead so the prefix sum below
                // turns them into row starts in place.
                ++childStart_[nodeBase_[n] + it->second + 1];
                ++indegree_[nodeBase_[n] + i];
            }
        }
    }
    for (size_t g = 1; g <= total_; ++g)
        childStart_[g] += childStart_[g - 1];
    children_.resize(childStart_[total_]);

    std::vector<uint32_t> fill(childStart_.begin(),
                               childStart_.end() - 1);
    for (const auto &[parent, child] : edges)
        children_[fill[parent]++] = child;

    done_.assign(total_, 0);
    if (initial_done != nullptr) {
        // Checkpoint-restart: replay a completion snapshot. Done nodes
        // are counted complete and their out-edges released, so
        // start() seeds exactly the frontier the snapshot left ready.
        ASTRA_ASSERT(initial_done->size() == total_,
                     "completion snapshot size %zu does not match "
                     "workload (%zu nodes)", initial_done->size(),
                     total_);
        for (size_t n = 0; n < wl_.graphs.size(); ++n) {
            size_t base = nodeBase_[n];
            size_t count = wl_.graphs[n].nodes.size();
            for (size_t i = 0; i < count; ++i) {
                size_t flat = base + i;
                if (!(*initial_done)[flat])
                    continue;
                done_[flat] = 1;
                ++completed_;
                for (uint32_t c = childStart_[flat];
                     c < childStart_[flat + 1]; ++c)
                    --indegree_[base + children_[c]];
            }
        }
    }
}

void
ExecutionEngine::start()
{
    for (size_t n = 0; n < wl_.graphs.size(); ++n)
        for (size_t i = 0; i < wl_.graphs[n].nodes.size(); ++i)
            if (indegree_[nodeBase_[n] + i] == 0 &&
                !done_[nodeBase_[n] + i])
                issue(static_cast<NpuId>(n), i);
}

void
ExecutionEngine::setTracer(trace::Tracer *tracer, int32_t pid)
{
    tracer_ = tracer;
    tracePid_ = pid;
    if (tracer_)
        issuedAt_.assign(total_, 0.0);
    else
        issuedAt_.clear();
}

void
ExecutionEngine::issue(NpuId npu, size_t index)
{
    const EtNode &node = wl_.graphs[static_cast<size_t>(npu)].nodes[index];
    Sys &sys = *sys_[static_cast<size_t>(npu)];
    EventCallback done = [this, npu, index] { onDone(npu, index); };

    if (tracer_)
        issuedAt_[flatIndex(npu, index)] = sys.eventQueue().now();

    switch (node.type) {
      case NodeType::Compute:
        sys.issueCompute(node.flops, node.tensorBytes, std::move(done));
        break;
      case NodeType::Memory:
        sys.issueMemory(node.location, node.memOp, node.memBytes,
                        node.fused, std::move(done));
        break;
      case NodeType::CommColl: {
        CollectiveRequest req;
        req.type = node.coll;
        req.bytes = node.commBytes;
        req.groups = node.groups;
        req.chunks = 0; // filled from the SysConfig default.
        sys.issueCollective(node.commKey, req, std::move(done));
        break;
      }
      case NodeType::CommSend:
        sys.issueSend(node.peer, node.p2pBytes, node.tag, std::move(done));
        break;
      case NodeType::CommRecv:
        sys.issueRecv(node.peer, node.tag, std::move(done));
        break;
    }
}

void
ExecutionEngine::onDone(NpuId npu, size_t index)
{
    if (cancelled_)
        return; // abandoned incarnation; stale completions are inert.
    ++completed_;
    size_t flat = flatIndex(npu, index);
    done_[flat] = 1;
    if (tracer_) {
        const EtNode &node =
            wl_.graphs[static_cast<size_t>(npu)].nodes[index];
        TimeNs now = sys_[static_cast<size_t>(npu)]->eventQueue().now();
        tracer_->spanStr(tracePid_, int32_t(npu), nodeTypeName(node.type),
                         node.name.empty() ? nodeTypeName(node.type)
                                           : node.name,
                         issuedAt_[flat], now - issuedAt_[flat]);
    }
    size_t base = nodeBase_[static_cast<size_t>(npu)];
    for (uint32_t c = childStart_[flat]; c < childStart_[flat + 1]; ++c) {
        uint32_t child = children_[c];
        if (--indegree_[base + child] == 0)
            issue(npu, child);
    }
    if (completed_ == total_ && onFinished_)
        onFinished_();
}

TimeNs
ExecutionEngine::run()
{
    ASTRA_ASSERT(!sys_.empty(), "engine has no system layers");
    start();
    EventQueue &eq = sys_[0]->eventQueue();
    eq.run();
    ASTRA_USER_CHECK(finished(),
                     "workload '%s' deadlocked: %zu of %zu nodes "
                     "completed (check send/recv pairing and collective "
                     "group membership); %s",
                     wl_.name.c_str(), completed_, total_,
                     sys_[0]->network().danglingSummary().c_str());
    return eq.now();
}

} // namespace astra
