#include "workload/engine.h"

#include <unordered_map>

#include "common/logging.h"

namespace astra {

ExecutionEngine::ExecutionEngine(std::vector<std::unique_ptr<Sys>> &sys,
                                 const Workload &wl)
    : sys_(sys), wl_(wl)
{
    ASTRA_ASSERT(sys_.size() == wl_.graphs.size(),
                 "engine needs one Sys per graph (%zu vs %zu)",
                 sys_.size(), wl_.graphs.size());
    total_ = wl_.totalNodes();

    state_.resize(wl_.graphs.size());
    for (size_t n = 0; n < wl_.graphs.size(); ++n) {
        const EtGraph &g = wl_.graphs[n];
        PerNpu &st = state_[n];
        st.indegree.assign(g.nodes.size(), 0);
        st.children.assign(g.nodes.size(), {});
        std::unordered_map<int, size_t> index;
        for (size_t i = 0; i < g.nodes.size(); ++i)
            index.emplace(g.nodes[i].id, i);
        for (size_t i = 0; i < g.nodes.size(); ++i) {
            for (int dep : g.nodes[i].deps) {
                auto it = index.find(dep);
                ASTRA_ASSERT(it != index.end(),
                             "unvalidated workload reached the engine");
                st.children[it->second].push_back(i);
                ++st.indegree[i];
            }
        }
    }
}

void
ExecutionEngine::start()
{
    for (size_t n = 0; n < wl_.graphs.size(); ++n)
        for (size_t i = 0; i < wl_.graphs[n].nodes.size(); ++i)
            if (state_[n].indegree[i] == 0)
                issue(static_cast<NpuId>(n), i);
}

void
ExecutionEngine::issue(NpuId npu, size_t index)
{
    const EtNode &node = wl_.graphs[static_cast<size_t>(npu)].nodes[index];
    Sys &sys = *sys_[static_cast<size_t>(npu)];
    EventCallback done = [this, npu, index] { onDone(npu, index); };

    switch (node.type) {
      case NodeType::Compute:
        sys.issueCompute(node.flops, node.tensorBytes, std::move(done));
        break;
      case NodeType::Memory:
        sys.issueMemory(node.location, node.memOp, node.memBytes,
                        node.fused, std::move(done));
        break;
      case NodeType::CommColl: {
        CollectiveRequest req;
        req.type = node.coll;
        req.bytes = node.commBytes;
        req.groups = node.groups;
        req.chunks = 0; // filled from the SysConfig default.
        sys.issueCollective(node.commKey, req, std::move(done));
        break;
      }
      case NodeType::CommSend:
        sys.issueSend(node.peer, node.p2pBytes, node.tag, std::move(done));
        break;
      case NodeType::CommRecv:
        sys.issueRecv(node.peer, node.tag, std::move(done));
        break;
    }
}

void
ExecutionEngine::onDone(NpuId npu, size_t index)
{
    ++completed_;
    PerNpu &st = state_[static_cast<size_t>(npu)];
    for (size_t child : st.children[index]) {
        if (--st.indegree[child] == 0)
            issue(npu, child);
    }
}

TimeNs
ExecutionEngine::run()
{
    ASTRA_ASSERT(!sys_.empty(), "engine has no system layers");
    start();
    EventQueue &eq = sys_[0]->eventQueue();
    eq.run();
    ASTRA_USER_CHECK(finished(),
                     "workload '%s' deadlocked: %zu of %zu nodes "
                     "completed (check send/recv pairing and collective "
                     "group membership)",
                     wl_.name.c_str(), completed_, total_);
    return eq.now();
}

} // namespace astra
