/**
 * @file
 * Converter from an external (PyTorch-flavoured) execution-graph
 * schema into ASTRA-sim ET (paper §IV-A: "we provide a converter from
 * any ET (e.g., PyTorch ET) to ASTRA-sim ET").
 *
 * The external schema mimics the PyTorch ExecutionGraphObserver /
 * PARAM dumps the paper collects (Snippet 1): one document per rank
 * with operator nodes referencing their data dependencies by id:
 *
 *   {
 *     "schema": "pytorch-et",
 *     "rank": 0,
 *     "nodes": [
 *       {"id": 1, "name": "aten::mm", "op": "compute",
 *        "inputs": [], "attrs": {"flops": 1e9, "bytes": 4e6}},
 *       {"id": 2, "name": "nccl:all_reduce", "op": "comm",
 *        "inputs": [1], "attrs": {"comm_type": "all_reduce",
 *                                 "bytes": 1e8, "pg": 3}},
 *       {"id": 3, "name": "record_param_comms", "op": "memory",
 *        "inputs": [2], "attrs": {"bytes": 2e6, "location": "remote",
 *                                 "rw": "load"}}
 *     ]
 *   }
 *
 * Process-group ids ("pg") map to collective rendezvous keys;
 * communication groups default to the whole topology unless a
 * process-group table is supplied.
 */
#ifndef ASTRA_WORKLOAD_CONVERTER_H_
#define ASTRA_WORKLOAD_CONVERTER_H_

#include <map>
#include <vector>

#include "common/json.h"
#include "workload/et.h"

namespace astra {

/** Optional process-group table: pg id -> group factors. */
using ProcessGroups = std::map<int64_t, std::vector<GroupDim>>;

/**
 * Convert one external per-rank document set into a Workload.
 *
 * @param rank_docs  one "pytorch-et" document per rank, rank order.
 * @param groups     process-group table (may be empty).
 */
Workload convertPyTorchTraces(const std::vector<json::Value> &rank_docs,
                              const ProcessGroups &groups = {});

} // namespace astra

#endif // ASTRA_WORKLOAD_CONVERTER_H_
