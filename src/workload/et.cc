#include "workload/et.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace astra {

const char *
nodeTypeName(NodeType t)
{
    switch (t) {
      case NodeType::Compute: return "compute";
      case NodeType::Memory: return "memory";
      case NodeType::CommColl: return "comm_coll";
      case NodeType::CommSend: return "comm_send";
      case NodeType::CommRecv: return "comm_recv";
    }
    return "?";
}

NodeType
parseNodeType(const std::string &name)
{
    if (name == "compute")
        return NodeType::Compute;
    if (name == "memory")
        return NodeType::Memory;
    if (name == "comm_coll")
        return NodeType::CommColl;
    if (name == "comm_send")
        return NodeType::CommSend;
    if (name == "comm_recv")
        return NodeType::CommRecv;
    fatal("unknown ET node type '%s'", name.c_str());
}

size_t
Workload::totalNodes() const
{
    size_t n = 0;
    for (const EtGraph &g : graphs)
        n += g.nodes.size();
    return n;
}

void
validateWorkload(const Workload &wl, int npus)
{
    ASTRA_USER_CHECK(static_cast<int>(wl.graphs.size()) == npus,
                     "workload '%s' has %zu graphs but the topology has "
                     "%d NPUs",
                     wl.name.c_str(), wl.graphs.size(), npus);
    for (int n = 0; n < npus; ++n) {
        const EtGraph &g = wl.graphs[static_cast<size_t>(n)];
        ASTRA_USER_CHECK(g.npu == n,
                         "graph %d is labelled for NPU %d", n, g.npu);

        std::unordered_map<int, size_t> index;
        for (size_t i = 0; i < g.nodes.size(); ++i) {
            const EtNode &node = g.nodes[i];
            ASTRA_USER_CHECK(node.id >= 0, "NPU %d: negative node id", n);
            ASTRA_USER_CHECK(index.emplace(node.id, i).second,
                             "NPU %d: duplicate node id %d", n, node.id);
            if (node.type == NodeType::CommSend ||
                node.type == NodeType::CommRecv) {
                ASTRA_USER_CHECK(node.peer >= 0 && node.peer < npus,
                                 "NPU %d node %d: peer %d out of range",
                                 n, node.id, node.peer);
            }
        }

        // Dependency existence + cycle detection via Kahn's algorithm.
        std::vector<int> indegree(g.nodes.size(), 0);
        std::vector<std::vector<size_t>> children(g.nodes.size());
        for (size_t i = 0; i < g.nodes.size(); ++i) {
            for (int dep : g.nodes[i].deps) {
                auto it = index.find(dep);
                ASTRA_USER_CHECK(it != index.end(),
                                 "NPU %d node %d: missing dependency %d",
                                 n, g.nodes[i].id, dep);
                ASTRA_USER_CHECK(it->second != i,
                                 "NPU %d node %d depends on itself", n,
                                 g.nodes[i].id);
                children[it->second].push_back(i);
                ++indegree[i];
            }
        }
        std::vector<size_t> ready;
        for (size_t i = 0; i < g.nodes.size(); ++i)
            if (indegree[i] == 0)
                ready.push_back(i);
        size_t seen = 0;
        while (!ready.empty()) {
            size_t i = ready.back();
            ready.pop_back();
            ++seen;
            for (size_t c : children[i])
                if (--indegree[c] == 0)
                    ready.push_back(c);
        }
        ASTRA_USER_CHECK(seen == g.nodes.size(),
                         "NPU %d: dependency cycle in execution trace",
                         n);
    }
}

} // namespace astra
