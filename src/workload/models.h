/**
 * @file
 * The evaluation model zoo (paper Table III + §V-B).
 *
 * Models are described by aggregate quantities (parameters, layers,
 * hidden width, batch tokens); the workload builders turn them into
 * execution traces. `simLayers` lets large models be simulated with a
 * coarsened graph: consecutive layers are merged while preserving the
 * total FLOP and communication volume, which keeps event counts
 * tractable at 512-4096 NPUs without changing aggregate ratios.
 */
#ifndef ASTRA_WORKLOAD_MODELS_H_
#define ASTRA_WORKLOAD_MODELS_H_

#include <string>

#include "common/units.h"

namespace astra {

/** Aggregate description of a training workload. */
struct ModelDesc
{
    std::string name;
    double params = 0.0;        //!< trainable parameter count.
    int layers = 1;             //!< real model depth.
    int simLayers = 0;          //!< coarsened depth (0 = layers).
    double bytesPerParam = 2.0; //!< bf16 weights/grads on the wire.
    double hidden = 0.0;        //!< activation width.
    int tokensPerBatch = 2048;  //!< tokens per replica per iteration.
    /** DLRM: per-NPU embedding exchange payload (All-to-All). */
    Bytes embeddingExchangeBytes = 0.0;
    /** MoE: fraction of parameters active per token. */
    double activeParamFraction = 1.0;

    int effectiveLayers() const { return simLayers > 0 ? simLayers : layers; }
    double paramsPerLayer() const { return params / effectiveLayers(); }
};

/** DLRM (Table III): 57M MLP parameters, All-to-All heavy. */
ModelDesc dlrm();

/** GPT-3 175B (Table III): MP 16. */
ModelDesc gpt3();

/** Transformer-1T (Table III): MP 128. */
ModelDesc transformer1T();

/** Mixture-of-Experts 1T (§V-B disaggregated-memory study). */
ModelDesc moe1T();

} // namespace astra

#endif // ASTRA_WORKLOAD_MODELS_H_
