#include "collective/estimate.h"

#include <algorithm>

#include "collective/scheduler.h"
#include "common/logging.h"

namespace astra {

TimeNs
phaseTime(const Topology &topo, const Phase &phase)
{
    const Dimension &dim = topo.dim(phase.group.dim);
    TimeNs serialization = txTime(phaseSentBytes(phase), dim.bandwidth);
    if (phase.algorithm == PhaseAlgorithm::TreeReduce ||
        phase.algorithm == PhaseAlgorithm::TreeBroadcast) {
        // Critical chain: the full tensor is retransmitted at every
        // tree level.
        serialization = double(treeDepth(phase.group.size)) *
                        txTime(phase.tensorBytes, dim.bandwidth);
    }
    // Hop count per step: Ring steps hop to the next group member
    // (stride hops through the physical ring), Direct is one hop,
    // Switch traversals are two hops.
    int hops_per_step = 1;
    switch (dim.type) {
      case BlockType::Ring:
        hops_per_step = std::min(phase.group.stride,
                                 dim.size - phase.group.stride);
        hops_per_step = std::max(hops_per_step, 1);
        break;
      case BlockType::FullyConnected:
        hops_per_step = 1;
        break;
      case BlockType::Switch:
        hops_per_step = 2;
        break;
    }
    TimeNs latency =
        double(phaseSteps(phase)) * double(hops_per_step) * dim.latency;
    return serialization + latency;
}

CollectiveEstimate
estimateCollective(const Topology &topo, const CollectiveRequest &req)
{
    CollectiveEstimate est;
    est.sentPerDim.assign(static_cast<size_t>(topo.numDims()), 0.0);

    std::vector<GroupDim> groups = normalizedGroups(topo, req);
    Bytes chunk_bytes = req.bytes / double(req.chunks);

    // Replay the scheduler's per-chunk order choices.
    CollectiveScheduler scheduler(topo);
    std::vector<TimeNs> dim_load(static_cast<size_t>(topo.numDims()), 0.0);
    TimeNs sequential_full = 0.0; //!< one chunk, full collective bytes.
    TimeNs fill = 0.0;            //!< first chunk's sequential time.
    for (int c = 0; c < req.chunks; ++c) {
        std::vector<GroupDim> order =
            scheduler.nextOrder(groups, req.type, chunk_bytes, req.policy);
        std::vector<Phase> phases = buildPhases(
            topo, req.type, chunk_bytes, order, req.treeAllReduce);
        TimeNs chunk_seq = 0.0;
        for (const Phase &ph : phases) {
            TimeNs t = phaseTime(topo, ph);
            chunk_seq += t;
            dim_load[static_cast<size_t>(ph.group.dim)] +=
                txTime(phaseSentBytes(ph),
                       topo.dim(ph.group.dim).bandwidth);
            est.sentPerDim[static_cast<size_t>(ph.group.dim)] +=
                phaseSentBytes(ph);
        }
        if (c == 0)
            fill = chunk_seq;
        sequential_full += chunk_seq;
    }

    est.bottleneck =
        *std::max_element(dim_load.begin(), dim_load.end());
    est.sequential = sequential_full;
    if (req.chunks == 1 || req.serializeChunks) {
        // One chunk at a time: phases execute back to back.
        est.time = sequential_full;
    } else {
        // Pipeline: the bottleneck dimension's queue drains at its
        // bandwidth while the first chunk's fill hides the rest.
        est.time = std::max(est.bottleneck + fill, fill);
    }
    return est;
}

} // namespace astra
