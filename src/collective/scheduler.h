/**
 * @file
 * Collective dimension-order schedulers (paper §V-A).
 *
 * The multi-rail executor asks the scheduler for the reduce-scatter
 * group order of each chunk. The baseline policy always returns the
 * canonical order (Dim 1 first), which loads the first dimension with
 * the largest share `(k1-1)/k1` of the tensor.
 *
 * The Themis-style greedy policy [9] balances bandwidth utilization:
 * it tracks the accumulated serialization time queued on every
 * topology dimension and, for each chunk, orders the groups so the
 * least-loaded dimension carries the biggest share. With many chunks
 * this spreads the collective across all rails and approaches the
 * aggregate-bandwidth bound, which is why only multi-dimensional
 * topologies benefit (Fig. 9(a)).
 */
#ifndef ASTRA_COLLECTIVE_SCHEDULER_H_
#define ASTRA_COLLECTIVE_SCHEDULER_H_

#include <vector>

#include "collective/phases.h"
#include "collective/types.h"
#include "topology/topology.h"

namespace astra {

/**
 * Chooses per-chunk group orders and tracks per-dimension load.
 * One instance lives in the CollectiveEngine so that load balancing
 * also spans consecutive collectives.
 */
class CollectiveScheduler
{
  public:
    explicit CollectiveScheduler(const Topology &topo);

    /**
     * Group order (reduce-scatter direction) for the next chunk.
     *
     * @param groups  normalized participating group factors in
     *                canonical order.
     * @param type    collective pattern (loads differ per pattern).
     * @param bytes   chunk payload bytes.
     * @param policy  Baseline or Themis.
     */
    std::vector<GroupDim> nextOrder(const std::vector<GroupDim> &groups,
                                    CollectiveType type, Bytes bytes,
                                    SchedPolicy policy);

    /** Accumulated per-dimension serialization load (ns). */
    const std::vector<TimeNs> &loads() const { return load_; }

    /** Forget accumulated loads (e.g., between experiments). */
    void resetLoads();

  private:
    void accountOrder(const std::vector<GroupDim> &order,
                      CollectiveType type, Bytes bytes);

    /** Minimax-greedy order search for the Themis policy; writes the
     *  winning order into `best`. */
    void themisOrder(const std::vector<GroupDim> &groups,
                     CollectiveType type, Bytes bytes,
                     std::vector<GroupDim> &best);

    const Topology &topo_;
    /** Accumulated serialization time per topology dimension, dense
     *  and indexed by dimension (flat: touched per chunk, so no
     *  map lookups on the scheduling path). */
    std::vector<TimeNs> load_;
    // Scratch reused across nextOrder() calls so steady-state
    // scheduling performs no allocation (candidate orders + the
    // per-dimension sent-bytes accumulator of the evaluated order).
    std::vector<GroupDim> candidateScratch_;
    std::vector<size_t> permScratch_;
    std::vector<Bytes> sentScratch_;
};

} // namespace astra

#endif // ASTRA_COLLECTIVE_SCHEDULER_H_
