#include "collective/types.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace astra {

const char *
collectiveName(CollectiveType t)
{
    switch (t) {
      case CollectiveType::ReduceScatter: return "reduce_scatter";
      case CollectiveType::AllGather: return "all_gather";
      case CollectiveType::AllReduce: return "all_reduce";
      case CollectiveType::AllToAll: return "all_to_all";
    }
    return "?";
}

CollectiveType
parseCollectiveType(const std::string &name)
{
    std::string n;
    for (char c : name)
        if (c != '_' && c != '-')
            n += char(std::tolower(static_cast<unsigned char>(c)));
    if (n == "reducescatter")
        return CollectiveType::ReduceScatter;
    if (n == "allgather")
        return CollectiveType::AllGather;
    if (n == "allreduce")
        return CollectiveType::AllReduce;
    if (n == "alltoall")
        return CollectiveType::AllToAll;
    fatal("unknown collective type '%s'", name.c_str());
}

const char *
policyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::Baseline: return "baseline";
      case SchedPolicy::Themis: return "themis";
    }
    return "?";
}

} // namespace astra
