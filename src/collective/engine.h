/**
 * @file
 * Event-driven multi-rail hierarchical collective executor.
 *
 * Every NPU in a collective's group joins an instance (identified by a
 * caller-provided key); when the last member joins, the instance
 * starts. Each chunk of the collective walks its per-dimension phase
 * list (phases.h) as a per-NPU state machine exchanging real messages
 * through the NetworkAPI backend, so pipelining between chunks and
 * bandwidth contention between phases emerge from the backend's
 * transmit-port serialization rather than from closed-form shortcuts.
 * This mirrors how the real ASTRA-sim system layer drives collectives
 * through sim_send/sim_recv.
 *
 * Per-NPU completion fires when that NPU has finished its part of
 * every chunk, which lets the workload layer overlap subsequent
 * compute with stragglers exactly like the real system layer.
 *
 * Hot-path layout (see docs/eventcore.md): member and chunk state live
 * in dense vectors indexed by the member's group-local rank (the mixed
 * radix over the instance's group factors), not in per-NPU maps, so
 * the per-message bookkeeping on delivery is a couple of array
 * indexings. Retired instances are recycled through a free list; ids
 * carry a generation tag so a message addressed to a retired instance
 * is still detected.
 */
#ifndef ASTRA_COLLECTIVE_ENGINE_H_
#define ASTRA_COLLECTIVE_ENGINE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "collective/phases.h"
#include "collective/scheduler.h"
#include "collective/types.h"
#include "common/slot_pool.h"
#include "network/network_api.h"

namespace astra {

/** See file comment. */
class CollectiveEngine
{
  public:
    explicit CollectiveEngine(NetworkApi &net);

    CollectiveEngine(const CollectiveEngine &) = delete;
    CollectiveEngine &operator=(const CollectiveEngine &) = delete;

    /**
     * Join `npu` to the collective identified by `key`.
     *
     * All members of the group (NPUs sharing `npu`'s coordinates
     * outside the participating group factors) must eventually join
     * with the same key and an equivalent request. `on_complete`
     * fires when this NPU's participation ends.
     */
    void join(uint64_t key, NpuId npu, const CollectiveRequest &req,
              EventCallback on_complete);

    /** Total bytes sent per topology dimension (all NPUs, all time). */
    const std::vector<double> &sentBytesPerDim() const { return sent_; }

    /** The shared dimension-order scheduler (persistent loads). */
    CollectiveScheduler &scheduler() { return scheduler_; }

    NetworkApi &network() { return net_; }

    /** Number of collective instances that ran to completion. */
    uint64_t completedInstances() const { return completedInstances_; }

    /**
     * Quiesce every in-flight collective: arriving messages are
     * dropped instead of pumping the chunk state machines, so no
     * further sends are issued and no completion callbacks fire.
     * Irreversible. Used for abandoned incarnations after an NPU
     * failure (docs/fault.md): traffic already in the fabric drains
     * normally, but the ghost stack must not keep feeding whole
     * chunk pipelines into the shared fabric for the rest of the
     * cluster run.
     */
    void cancelAll() { cancelled_ = true; }
    bool cancelled() const { return cancelled_; }

    /** Instance slots currently allocated (live + recyclable); exposed
     *  so tests can verify free-list recycling. */
    size_t instanceSlots() const { return instances_.slots(); }

    /**
     * Heap bytes held by the engine's own state (telemetry footprint
     * protocol, docs/observability.md): the instance pool including
     * the nested per-instance vectors recycled slots keep warm (their
     * capacities are a deterministic function of the traffic), the
     * rendezvous table, and the scratch arrays. Excludes the network
     * backend, which reports itself.
     */
    size_t bytesInUse() const;

    /**
     * Attach the tracing sink (docs/trace.md): each instance becomes
     * an open span on its pool slot's track (tid = kCollTidBase +
     * slot, so concurrently live instances never share a track) under
     * process `pid`; at full detail every (member, chunk, phase)
     * traversal adds a span on the member's rank track. Null
     * detaches. Purely observational.
     */
    void
    setTracer(trace::Tracer *tracer, int32_t pid)
    {
        tracer_ = tracer;
        tracePid_ = pid;
    }

  private:
    struct ChunkState
    {
        bool started = false; //!< member entered this chunk (advance()
                              //!< ran); messages arriving earlier are
                              //!< held in `early`.
        size_t phase = 0; //!< index into the chunk's phase list.
        int sent = 0;     //!< algorithm steps sent in current phase.
        int recvd = 0;    //!< messages received in current phase.
        /** Entry time of the current phase; maintained only at full
         *  trace detail (phase spans). */
        TimeNs phaseEnteredAt = 0.0;
        /** Messages that arrived for a later phase than the member is
         *  in (rails of the same dimension progress independently
         *  under contention); consumed when the phase is entered. */
        std::vector<int> early;
    };

    struct MemberState
    {
        EventCallback onComplete;
        bool joined = false;
        int chunksDone = 0;
        std::vector<ChunkState> chunks;
    };

    struct Instance
    {
        /** Pool id (SlotPool slot | generation << 32); 0 while the
         *  slot is free. Cached here so per-message closures can carry
         *  it without a pool lookup. */
        uint64_t id = 0;
        CollectiveRequest req;
        std::vector<GroupDim> groups; //!< normalized factors.
        int groupSize = 1;
        int joinedMembers = 0;
        int completedMembers = 0;
        std::vector<std::vector<Phase>> chunkPhases;
        /** chunkPhaseMult[c][p]: rank-space multiplier of chunk c,
         *  phase p's group factor (product of the sizes of the group
         *  factors before it in `groups`), so a member's position in
         *  the phase group is `(rank / mult) % group.size` — no
         *  coordinate arithmetic on the per-message path. */
        std::vector<std::vector<int>> chunkPhaseMult;
        /** Dense member state, indexed by group-local rank. */
        std::vector<MemberState> members;
        /** rank -> NPU id (for sends and the deterministic kick
         *  order). */
        std::vector<NpuId> npuOfRank;
        /** Open trace span of this instance (Tracer::kNoSpan when
         *  tracing is off or the span is closed). */
        uint32_t traceSpan = 0xffffffffu;
    };

    /** Rendezvous key: (caller key, canonical group representative). */
    struct RendezvousKey
    {
        uint64_t key;
        NpuId base;
        bool operator==(const RendezvousKey &) const = default;
    };
    struct RendezvousHash
    {
        size_t
        operator()(const RendezvousKey &k) const
        {
            uint64_t h = k.key ^ (static_cast<uint64_t>(
                                      static_cast<uint32_t>(k.base)) *
                                  0x9e3779b97f4a7c15ULL);
            h ^= h >> 33;
            h *= 0xff51afd7ed558ccdULL;
            h ^= h >> 33;
            return static_cast<size_t>(h);
        }
    };

    /** Group canonical representative: `npu` with all participating
     *  group positions zeroed. */
    NpuId groupBase(NpuId npu, const std::vector<GroupDim> &groups) const;

    /** Dense group-local rank: mixed radix over the group factors. */
    int rankOf(const Instance &inst, NpuId npu) const;

    uint64_t allocInstance();
    Instance *findInstance(uint64_t id);
    void releaseInstance(Instance &inst);

    void start(Instance &inst);
    // The per-message state machine runs entirely in rank space: the
    // member's dense rank is computed once per external event and
    // passed through; peers are rank deltas resolved via npuOfRank.
    void advance(Instance &inst, int rank, int chunk);
    void pump(Instance &inst, int rank, int chunk);
    void onMessage(uint64_t inst_id, int rank, int chunk,
                   size_t phase_idx);
    void sendStep(Instance &inst, int rank, int chunk, const Phase &ph,
                  int mult, int step);
    /** Per-member counts; tree algorithms depend on the member's
     *  position in the group (root / internal / leaf). */
    int expectedRecvs(const Phase &ph, int pos) const;
    int totalSends(const Phase &ph, int pos) const;
    /** Number of binary-tree children of `pos` in a k-wide group. */
    static int treeChildren(int pos, int k);

    NetworkApi &net_;
    const Topology &topo_;
    CollectiveScheduler scheduler_;
    std::vector<double> sent_;
    std::unordered_map<RendezvousKey, uint64_t, RendezvousHash>
        rendezvous_;
    SlotPool<Instance> instances_; //!< recycled; nested capacities kept.
    std::vector<int> kickScratch_;    //!< reused by start().
    uint64_t completedInstances_ = 0;
    uint64_t startedInstances_ = 0; //!< issue-order ordinal source.
    bool cancelled_ = false;
    trace::Tracer *tracer_ = nullptr; //!< null = tracing disabled.
    int32_t tracePid_ = 0;
};

/** Result of a standalone collective run (runCollective helper). */
struct CollectiveRunResult
{
    TimeNs finish = 0.0;            //!< time the last NPU completed.
    std::vector<double> sentPerDim; //!< total bytes sent per dimension.
};

/**
 * Convenience for benches/tests: run a single collective over the
 * full topology (all NPUs join at the current time) and drain the
 * event queue. Returns the completion time of the last member.
 */
CollectiveRunResult runCollective(CollectiveEngine &engine,
                                  const CollectiveRequest &req);

} // namespace astra

#endif // ASTRA_COLLECTIVE_ENGINE_H_
