#include "collective/phases.h"

#include <algorithm>

#include "common/logging.h"

namespace astra {

namespace {

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

PhaseAlgorithm
algorithmFor(BlockType type, int group_size)
{
    switch (type) {
      case BlockType::Ring:
        return PhaseAlgorithm::Ring;
      case BlockType::FullyConnected:
        return PhaseAlgorithm::Direct;
      case BlockType::Switch:
        // Halving-Doubling needs a power-of-two group; otherwise run
        // Direct through the switch (still congestion-free).
        return isPowerOfTwo(group_size) ? PhaseAlgorithm::HalvingDoubling
                                        : PhaseAlgorithm::Direct;
    }
    return PhaseAlgorithm::Ring;
}

int
treeDepth(int k)
{
    // Depth of the complete binary tree holding positions 0..k-1
    // (position p's parent is (p-1)/2).
    int depth = 0;
    for (int p = k - 1; p > 0; p = (p - 1) / 2)
        ++depth;
    return depth;
}

std::vector<Phase>
buildPhases(const Topology &topo, CollectiveType type, Bytes chunk_bytes,
            const std::vector<GroupDim> &rs_order, bool tree)
{
    ASTRA_USER_CHECK(!tree || type == CollectiveType::AllReduce,
                     "tree execution only applies to All-Reduce");
    std::vector<Phase> phases;
    auto make_phase = [&](const GroupDim &g, PhaseOp op, Bytes tensor) {
        Phase p;
        p.group = g;
        p.op = op;
        p.algorithm = algorithmFor(topo.dim(g.dim).type, g.size);
        // All-to-All is a direct exchange pattern: recursive
        // halving/doubling does not apply (every pair owns distinct
        // data), so switch dims degrade to Direct through the switch.
        if (op == PhaseOp::AllToAll &&
            p.algorithm == PhaseAlgorithm::HalvingDoubling) {
            p.algorithm = PhaseAlgorithm::Direct;
        }
        p.tensorBytes = tensor;
        return p;
    };

    switch (type) {
      case CollectiveType::ReduceScatter: {
        Bytes cur = chunk_bytes;
        for (const GroupDim &g : rs_order) {
            if (g.size < 2)
                continue;
            phases.push_back(make_phase(g, PhaseOp::ReduceScatter, cur));
            cur /= double(g.size);
        }
        break;
      }
      case CollectiveType::AllGather: {
        // Pure All-Gather runs in the All-Gather direction: the
        // reverse of rs_order (descending dims under the baseline
        // ascending order, matching §II-B.2 and Table IV).
        Bytes shard = chunk_bytes;
        for (const GroupDim &g : rs_order) {
            if (g.size >= 2)
                shard /= double(g.size);
        }
        Bytes cur = shard;
        for (auto it = rs_order.rbegin(); it != rs_order.rend(); ++it) {
            if (it->size < 2)
                continue;
            cur *= double(it->size);
            phases.push_back(make_phase(*it, PhaseOp::AllGather, cur));
        }
        break;
      }
      case CollectiveType::AllReduce: {
        if (tree) {
            // Tree All-Reduce: reduce up each dimension, broadcast
            // back down in reverse order; the working set never
            // shrinks (full tensor on every tree edge).
            for (const GroupDim &g : rs_order) {
                if (g.size < 2)
                    continue;
                Phase p = make_phase(g, PhaseOp::ReduceScatter,
                                     chunk_bytes);
                p.algorithm = PhaseAlgorithm::TreeReduce;
                phases.push_back(p);
            }
            for (auto it = rs_order.rbegin(); it != rs_order.rend();
                 ++it) {
                if (it->size < 2)
                    continue;
                Phase p = make_phase(*it, PhaseOp::AllGather,
                                     chunk_bytes);
                p.algorithm = PhaseAlgorithm::TreeBroadcast;
                phases.push_back(p);
            }
            break;
        }
        Bytes cur = chunk_bytes;
        for (const GroupDim &g : rs_order) {
            if (g.size < 2)
                continue;
            phases.push_back(make_phase(g, PhaseOp::ReduceScatter, cur));
            cur /= double(g.size);
        }
        for (auto it = rs_order.rbegin(); it != rs_order.rend(); ++it) {
            if (it->size < 2)
                continue;
            cur *= double(it->size);
            phases.push_back(make_phase(*it, PhaseOp::AllGather, cur));
        }
        break;
      }
      case CollectiveType::AllToAll: {
        // Hierarchical All-to-All: exchange within each dimension in
        // turn; the working set does not shrink, so every phase
        // carries the full chunk.
        for (const GroupDim &g : rs_order) {
            if (g.size < 2)
                continue;
            phases.push_back(make_phase(g, PhaseOp::AllToAll, chunk_bytes));
        }
        break;
      }
    }
    return phases;
}

Bytes
phaseSentBytes(const Phase &phase)
{
    int k = phase.group.size;
    return phase.tensorBytes * double(k - 1) / double(k);
}

int
phaseSteps(const Phase &phase)
{
    int k = phase.group.size;
    if (k < 2)
        return 0;
    switch (phase.algorithm) {
      case PhaseAlgorithm::Ring:
        return k - 1;
      case PhaseAlgorithm::Direct:
        return 1;
      case PhaseAlgorithm::HalvingDoubling: {
        int steps = 0;
        for (int v = k; v > 1; v >>= 1)
            ++steps;
        return steps;
      }
      case PhaseAlgorithm::TreeReduce:
      case PhaseAlgorithm::TreeBroadcast:
        return treeDepth(k);
    }
    return 0;
}

std::vector<Bytes>
perDimSentBytes(const Topology &topo, CollectiveType type, Bytes bytes,
                const std::vector<GroupDim> &rs_order)
{
    std::vector<Bytes> sent;
    perDimSentBytesInto(topo, type, bytes, rs_order, sent);
    return sent;
}

void
perDimSentBytesInto(const Topology &topo, CollectiveType type, Bytes bytes,
                    const std::vector<GroupDim> &rs_order,
                    std::vector<Bytes> &sent)
{
    // Closed form of summing phaseSentBytes() over buildPhases(): each
    // phase over a factor of size k sends (k-1)/k of its large-side
    // tensor, and the working set shrinks by k per Reduce-Scatter step
    // (growing back symmetrically for All-Gather, so the per-dimension
    // contributions of the gather direction equal the scatter
    // direction at the same hierarchy level).
    sent.assign(static_cast<size_t>(topo.numDims()), 0.0);
    Bytes cur = bytes;
    for (const GroupDim &g : rs_order) {
        if (g.size < 2)
            continue;
        Bytes share = cur * double(g.size - 1) / double(g.size);
        switch (type) {
          case CollectiveType::ReduceScatter:
          case CollectiveType::AllGather:
            sent[static_cast<size_t>(g.dim)] += share;
            cur /= double(g.size);
            break;
          case CollectiveType::AllReduce:
            // RS + AG phase pair at the same working-set size.
            sent[static_cast<size_t>(g.dim)] += 2.0 * share;
            cur /= double(g.size);
            break;
          case CollectiveType::AllToAll:
            // Working set does not shrink across dimensions.
            sent[static_cast<size_t>(g.dim)] +=
                bytes * double(g.size - 1) / double(g.size);
            break;
        }
    }
}

std::vector<GroupDim>
wholeTopologyGroups(const Topology &topo)
{
    std::vector<GroupDim> groups;
    for (int d = 0; d < topo.numDims(); ++d)
        groups.push_back(topo.normalizeGroup(GroupDim{d, 0, 1}));
    return groups;
}

std::vector<GroupDim>
normalizedGroups(const Topology &topo, const CollectiveRequest &req)
{
    if (req.groups.empty())
        return wholeTopologyGroups(topo);
    std::vector<GroupDim> groups;
    groups.reserve(req.groups.size());
    for (const GroupDim &g : req.groups)
        groups.push_back(topo.normalizeGroup(g));
    return groups;
}

} // namespace astra
