#include "collective/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace astra {

CollectiveScheduler::CollectiveScheduler(const Topology &topo) : topo_(topo)
{
    load_.assign(static_cast<size_t>(topo.numDims()), 0.0);
}

void
CollectiveScheduler::resetLoads()
{
    std::fill(load_.begin(), load_.end(), 0.0);
}

std::vector<GroupDim>
CollectiveScheduler::nextOrder(const std::vector<GroupDim> &groups,
                               CollectiveType type, Bytes bytes,
                               SchedPolicy policy)
{
    ASTRA_ASSERT(!groups.empty(), "collective spans no dimensions");
    std::vector<GroupDim> order = groups;
    if (policy == SchedPolicy::Themis && groups.size() > 1)
        themisOrder(groups, type, bytes, order);
    accountOrder(order, type, bytes);
    return order;
}

void
CollectiveScheduler::themisOrder(const std::vector<GroupDim> &groups,
                                 CollectiveType type, Bytes bytes,
                                 std::vector<GroupDim> &best)
{
    // Minimax greedy: pick the order whose per-dimension serialization
    // increments leave the busiest dimension least loaded. Dimension
    // counts are small (<= ~6), so exhaustive permutation search is
    // cheap for the common cases; beyond that, fall back to candidate
    // orders that differ only in the (dominant) first position. Every
    // candidate is evaluated into preallocated scratch — the search
    // runs per chunk and must not allocate.
    auto evaluate = [&](const std::vector<GroupDim> &order) {
        perDimSentBytesInto(topo_, type, bytes, order, sentScratch_);
        TimeNs worst = 0.0;
        TimeNs total = 0.0;
        for (size_t d = 0; d < sentScratch_.size(); ++d) {
            TimeNs add =
                sentScratch_[d] > 0.0
                    ? txTime(sentScratch_[d],
                             topo_.dim(static_cast<int>(d)).bandwidth)
                    : 0.0;
            total += add;
            // The bottleneck term spans *every* dimension, including
            // ones this collective does not touch: an already-loaded
            // idle dimension saturates the max, which makes candidates
            // tie on `worst` and fall through to the total-time
            // tie-break (sub-topology collectives in MP x DP hybrids
            // rely on this).
            worst = std::max(worst, load_[d] + add);
        }
        // Primary: minimize the bottleneck; secondary: waste less
        // total bandwidth-time.
        return std::make_pair(worst, total);
    };

    best = groups;
    auto best_score = evaluate(best);
    std::vector<GroupDim> &candidate = candidateScratch_;

    if (groups.size() <= 5) {
        std::vector<size_t> &idx = permScratch_;
        idx.resize(groups.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        candidate.resize(groups.size());
        do {
            for (size_t i = 0; i < idx.size(); ++i)
                candidate[i] = groups[idx[i]];
            auto score = evaluate(candidate);
            if (score < best_score) {
                best_score = score;
                best = candidate;
            }
        } while (std::next_permutation(idx.begin(), idx.end()));
        return;
    }

    // Many dimensions: rotate each group into the lead position and
    // keep the rest in canonical order.
    for (size_t lead = 1; lead < groups.size(); ++lead) {
        candidate.clear();
        candidate.push_back(groups[lead]);
        for (size_t i = 0; i < groups.size(); ++i)
            if (i != lead)
                candidate.push_back(groups[i]);
        auto score = evaluate(candidate);
        if (score < best_score) {
            best_score = score;
            best = candidate;
        }
    }
}

void
CollectiveScheduler::accountOrder(const std::vector<GroupDim> &order,
                                  CollectiveType type, Bytes bytes)
{
    perDimSentBytesInto(topo_, type, bytes, order, sentScratch_);
    for (size_t d = 0; d < sentScratch_.size(); ++d) {
        if (sentScratch_[d] > 0.0)
            load_[d] += txTime(
                sentScratch_[d], topo_.dim(static_cast<int>(d)).bandwidth);
    }
}

} // namespace astra
