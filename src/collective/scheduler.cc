#include "collective/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace astra {

CollectiveScheduler::CollectiveScheduler(const Topology &topo) : topo_(topo)
{
    load_.assign(static_cast<size_t>(topo.numDims()), 0.0);
}

void
CollectiveScheduler::resetLoads()
{
    std::fill(load_.begin(), load_.end(), 0.0);
}

std::vector<GroupDim>
CollectiveScheduler::nextOrder(const std::vector<GroupDim> &groups,
                               CollectiveType type, Bytes bytes,
                               SchedPolicy policy)
{
    ASTRA_ASSERT(!groups.empty(), "collective spans no dimensions");
    std::vector<GroupDim> order = groups;
    if (policy == SchedPolicy::Themis && groups.size() > 1)
        order = themisOrder(groups, type, bytes);
    accountOrder(order, type, bytes);
    return order;
}

std::vector<GroupDim>
CollectiveScheduler::themisOrder(const std::vector<GroupDim> &groups,
                                 CollectiveType type, Bytes bytes) const
{
    // Minimax greedy: pick the order whose per-dimension serialization
    // increments leave the busiest dimension least loaded. Dimension
    // counts are small (<= ~6), so exhaustive permutation search is
    // cheap for the common cases; beyond that, fall back to candidate
    // orders that differ only in the (dominant) first position.
    auto evaluate = [&](const std::vector<GroupDim> &order) {
        std::vector<Bytes> sent = perDimSentBytes(topo_, type, bytes,
                                                  order);
        TimeNs worst = 0.0;
        TimeNs total = 0.0;
        for (size_t d = 0; d < sent.size(); ++d) {
            TimeNs add = txTime(sent[d],
                                topo_.dim(static_cast<int>(d)).bandwidth);
            total += add;
            worst = std::max(worst, load_[d] + add);
        }
        // Primary: minimize the bottleneck; secondary: waste less
        // total bandwidth-time.
        return std::make_pair(worst, total);
    };

    std::vector<GroupDim> best = groups;
    auto best_score = evaluate(best);

    if (groups.size() <= 5) {
        std::vector<size_t> idx(groups.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::vector<GroupDim> candidate(groups.size());
        do {
            for (size_t i = 0; i < idx.size(); ++i)
                candidate[i] = groups[idx[i]];
            auto score = evaluate(candidate);
            if (score < best_score) {
                best_score = score;
                best = candidate;
            }
        } while (std::next_permutation(idx.begin(), idx.end()));
        return best;
    }

    // Many dimensions: rotate each group into the lead position and
    // keep the rest in canonical order.
    for (size_t lead = 1; lead < groups.size(); ++lead) {
        std::vector<GroupDim> candidate;
        candidate.push_back(groups[lead]);
        for (size_t i = 0; i < groups.size(); ++i)
            if (i != lead)
                candidate.push_back(groups[i]);
        auto score = evaluate(candidate);
        if (score < best_score) {
            best_score = score;
            best = candidate;
        }
    }
    return best;
}

void
CollectiveScheduler::accountOrder(const std::vector<GroupDim> &order,
                                  CollectiveType type, Bytes bytes)
{
    std::vector<Bytes> sent = perDimSentBytes(topo_, type, bytes, order);
    for (size_t d = 0; d < sent.size(); ++d) {
        if (sent[d] > 0.0)
            load_[d] += txTime(
                sent[d], topo_.dim(static_cast<int>(d)).bandwidth);
    }
}

} // namespace astra
