/**
 * @file
 * Closed-form collective cost estimates (paper §IV-C equation).
 *
 * These formulas mirror the event-driven executor: a phase over a
 * group of size k moves `(k-1)/k * tensorBytes` per NPU at the
 * dimension's per-NPU bandwidth and pays `steps * hop_latency` in
 * latency. A single-chunk collective is the sequential sum of its
 * phases; a chunked collective is bounded below by the busiest
 * dimension's total serialization (the pipeline bottleneck) plus the
 * one-chunk fill time. Tests cross-check the executor against these.
 */
#ifndef ASTRA_COLLECTIVE_ESTIMATE_H_
#define ASTRA_COLLECTIVE_ESTIMATE_H_

#include <vector>

#include "collective/phases.h"
#include "collective/types.h"
#include "topology/topology.h"

namespace astra {

/** Breakdown of a closed-form collective estimate. */
struct CollectiveEstimate
{
    TimeNs time = 0.0;           //!< estimated completion time.
    TimeNs bottleneck = 0.0;     //!< busiest-dimension serialization.
    TimeNs sequential = 0.0;     //!< unchunked sequential phase sum.
    std::vector<Bytes> sentPerDim; //!< per-NPU sent bytes per dim.
};

/** Serialization + latency time of one phase at full size. */
TimeNs phaseTime(const Topology &topo, const Phase &phase);

/**
 * Estimate a collective's completion time on `topo`.
 *
 * Baseline policy uses the canonical order for every chunk; the
 * Themis policy replays the greedy scheduler's order choices so the
 * estimate reflects balanced per-dimension loads.
 */
CollectiveEstimate estimateCollective(const Topology &topo,
                                      const CollectiveRequest &req);

} // namespace astra

#endif // ASTRA_COLLECTIVE_ESTIMATE_H_
