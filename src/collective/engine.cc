#include "collective/engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace astra {

CollectiveEngine::CollectiveEngine(NetworkApi &net)
    : net_(net), topo_(net.topology()), scheduler_(net.topology())
{
    sent_.assign(static_cast<size_t>(topo_.numDims()), 0.0);
}

NpuId
CollectiveEngine::groupBase(NpuId npu,
                            const std::vector<GroupDim> &groups) const
{
    NpuId base = npu;
    for (const GroupDim &g : groups)
        base = topo_.zeroGroup(base, g);
    return base;
}

void
CollectiveEngine::join(uint64_t key, NpuId npu, const CollectiveRequest &req,
                       EventCallback on_complete)
{
    ASTRA_USER_CHECK(req.bytes >= 0.0, "collective with negative size");
    ASTRA_USER_CHECK(req.chunks >= 1, "collective needs chunks >= 1");

    std::vector<GroupDim> groups = normalizedGroups(topo_, req);

    NpuId base = groupBase(npu, groups);
    auto [it, inserted] =
        instanceIds_.try_emplace({key, base}, nextInstance_);
    if (inserted) {
        Instance &created = instances_[nextInstance_];
        created.id = nextInstance_;
        ++nextInstance_;
        created.req = req;
        created.groups = groups;
        created.groupSize = 1;
        for (const GroupDim &g : groups)
            created.groupSize *= g.size;
    }
    Instance &inst = instances_.at(it->second);

    ASTRA_ASSERT(!inst.members.count(npu),
                 "NPU %d joined collective %llu twice", npu,
                 static_cast<unsigned long long>(key));
    MemberState &member = inst.members[npu];
    member.onComplete = std::move(on_complete);
    member.chunks.assign(static_cast<size_t>(req.chunks), ChunkState{});

    if (static_cast<int>(inst.members.size()) == inst.groupSize) {
        // Last member arrived: the group is synchronized; release the
        // rendezvous key (allowing the same key to be reused) and go.
        instanceIds_.erase(it);
        start(inst);
    }
}

void
CollectiveEngine::start(Instance &inst)
{
    // Build per-chunk phase lists. The scheduler picks each chunk's
    // group order (computed once, so all members' state machines stay
    // consistent).
    Bytes chunk_bytes = inst.req.bytes / double(inst.req.chunks);
    inst.chunkPhases.reserve(static_cast<size_t>(inst.req.chunks));
    for (int c = 0; c < inst.req.chunks; ++c) {
        std::vector<GroupDim> order = scheduler_.nextOrder(
            inst.groups, inst.req.type, chunk_bytes, inst.req.policy);
        inst.chunkPhases.push_back(
            buildPhases(topo_, inst.req.type, chunk_bytes, order,
                        inst.req.treeAllReduce));
    }

    // Size the early-arrival buffers now that phase lists exist.
    for (auto &[npu, member] : inst.members) {
        for (int c = 0; c < inst.req.chunks; ++c) {
            member.chunks[static_cast<size_t>(c)].early.assign(
                inst.chunkPhases[static_cast<size_t>(c)].size(), 0);
        }
    }

    // Kick every (member, chunk) state machine. Chunks all enter their
    // first phase now; pipelining across phases emerges from transmit
    // port serialization in the backend.
    uint64_t id = inst.id;
    std::vector<NpuId> npus;
    npus.reserve(inst.members.size());
    for (const auto &[npu, member] : inst.members)
        npus.push_back(npu);
    int kick = inst.req.serializeChunks ? 1 : inst.req.chunks;
    for (NpuId npu : npus) {
        for (int c = 0; c < kick; ++c) {
            auto it = instances_.find(id);
            if (it == instances_.end())
                return; // degenerate instance completed synchronously.
            advance(it->second, npu, c);
        }
    }
}

int
CollectiveEngine::treeChildren(int pos, int k)
{
    int children = 0;
    if (2 * pos + 1 < k)
        ++children;
    if (2 * pos + 2 < k)
        ++children;
    return children;
}

int
CollectiveEngine::expectedRecvs(const Phase &ph, int pos) const
{
    int k = ph.group.size;
    switch (ph.algorithm) {
      case PhaseAlgorithm::Ring:
      case PhaseAlgorithm::Direct:
        return k - 1;
      case PhaseAlgorithm::HalvingDoubling:
        return phaseSteps(ph);
      case PhaseAlgorithm::TreeReduce:
        return treeChildren(pos, k);
      case PhaseAlgorithm::TreeBroadcast:
        return pos > 0 ? 1 : 0;
    }
    return 0;
}

int
CollectiveEngine::totalSends(const Phase &ph, int pos) const
{
    switch (ph.algorithm) {
      case PhaseAlgorithm::TreeReduce:
        return pos > 0 ? 1 : 0;
      case PhaseAlgorithm::TreeBroadcast:
        return treeChildren(pos, ph.group.size);
      default:
        // Symmetric exchange: as many sends as receives.
        return expectedRecvs(ph, pos);
    }
}

void
CollectiveEngine::advance(Instance &inst, NpuId npu, int chunk)
{
    MemberState &member = inst.members.at(npu);
    ChunkState &st = member.chunks[static_cast<size_t>(chunk)];
    st.started = true;
    const std::vector<Phase> &phases =
        inst.chunkPhases[static_cast<size_t>(chunk)];

    if (st.phase >= phases.size()) {
        ++member.chunksDone;
        if (inst.req.serializeChunks &&
            member.chunksDone < inst.req.chunks) {
            // Conservative scheduler: the member's next chunk enters
            // the pipeline only now.
            advance(inst, npu, member.chunksDone);
            return;
        }
        if (member.chunksDone == inst.req.chunks) {
            if (member.onComplete) {
                // Deferred through the queue: the callback may join the
                // NPU to its next collective, which would otherwise
                // mutate instances_ under our feet.
                net_.simSchedule(0.0, std::move(member.onComplete));
            }
            ++inst.completedMembers;
            if (inst.completedMembers ==
                static_cast<int>(inst.members.size())) {
                ++completedInstances_;
                instances_.erase(inst.id);
            }
        }
        return;
    }
    st.sent = 0;
    st.recvd = st.early[st.phase];
    pump(inst, npu, chunk);
}

void
CollectiveEngine::pump(Instance &inst, NpuId npu, int chunk)
{
    MemberState &member = inst.members.at(npu);
    ChunkState &st = member.chunks[static_cast<size_t>(chunk)];
    const Phase &ph =
        inst.chunkPhases[static_cast<size_t>(chunk)][st.phase];

    int pos = topo_.posInGroup(npu, ph.group);
    int sends = totalSends(ph, pos);
    switch (ph.algorithm) {
      case PhaseAlgorithm::Ring:
      case PhaseAlgorithm::HalvingDoubling:
        // Step s may go out once step s-1's message has arrived.
        while (st.sent < sends && st.sent <= st.recvd) {
            sendStep(inst, npu, chunk, ph, st.sent);
            ++st.sent;
        }
        break;
      case PhaseAlgorithm::Direct:
        // One-shot: fire all peer messages; the transmit port
        // serializes them at the dimension's aggregate bandwidth.
        while (st.sent < sends) {
            sendStep(inst, npu, chunk, ph, st.sent);
            ++st.sent;
        }
        break;
      case PhaseAlgorithm::TreeReduce:
      case PhaseAlgorithm::TreeBroadcast:
        // Forward only once the whole subtree/parent input arrived.
        if (st.recvd == expectedRecvs(ph, pos)) {
            while (st.sent < sends) {
                sendStep(inst, npu, chunk, ph, st.sent);
                ++st.sent;
            }
        }
        break;
    }

    if (st.recvd == expectedRecvs(ph, pos) && st.sent == sends) {
        ++st.phase;
        advance(inst, npu, chunk);
    }
}

void
CollectiveEngine::sendStep(Instance &inst, NpuId npu, int chunk,
                           const Phase &ph, int step)
{
    int k = ph.group.size;
    NpuId dst = npu;
    Bytes bytes = 0.0;

    switch (ph.algorithm) {
      case PhaseAlgorithm::Ring:
        dst = topo_.peerInGroup(npu, ph.group, 1);
        bytes = ph.tensorBytes / double(k);
        break;
      case PhaseAlgorithm::Direct:
        dst = topo_.peerInGroup(npu, ph.group, step + 1);
        bytes = ph.tensorBytes / double(k);
        break;
      case PhaseAlgorithm::HalvingDoubling: {
        int pos = topo_.posInGroup(npu, ph.group);
        int partner_pos;
        if (ph.op == PhaseOp::AllGather) {
            // Recursive doubling: distances 1, 2, ..., k/2 with
            // message sizes tensor/k, 2*tensor/k, ..., tensor/2.
            partner_pos = pos ^ (1 << step);
            bytes = ph.tensorBytes * double(1 << step) / double(k);
        } else {
            // Recursive halving: distances k/2, ..., 1 with message
            // sizes tensor/2, tensor/4, ..., tensor/k.
            partner_pos = pos ^ (k >> (step + 1));
            bytes = ph.tensorBytes / double(2 << step);
        }
        dst = topo_.peerInGroup(npu, ph.group, partner_pos - pos);
        break;
      }
      case PhaseAlgorithm::TreeReduce: {
        // Full partial sums travel up to the parent.
        int pos = topo_.posInGroup(npu, ph.group);
        int parent = (pos - 1) / 2;
        dst = topo_.peerInGroup(npu, ph.group, parent - pos);
        bytes = ph.tensorBytes;
        break;
      }
      case PhaseAlgorithm::TreeBroadcast: {
        int pos = topo_.posInGroup(npu, ph.group);
        int child = 2 * pos + 1 + step;
        dst = topo_.peerInGroup(npu, ph.group, child - pos);
        bytes = ph.tensorBytes;
        break;
      }
    }

    sent_[static_cast<size_t>(ph.group.dim)] += bytes;
    uint64_t inst_id = inst.id;
    MemberState &member = inst.members.at(npu);
    size_t phase_idx = member.chunks[static_cast<size_t>(chunk)].phase;
    SendHandlers handlers;
    handlers.onDelivered = [this, inst_id, dst, chunk, phase_idx]() {
        onMessage(inst_id, dst, chunk, phase_idx);
    };
    net_.simSend(npu, dst, bytes, ph.group.dim, kNoTag,
                 std::move(handlers));
}

void
CollectiveEngine::onMessage(uint64_t inst_id, NpuId npu, int chunk,
                            size_t phase_idx)
{
    auto it = instances_.find(inst_id);
    ASTRA_ASSERT(it != instances_.end(),
                 "message for retired collective instance");
    Instance &inst = it->second;
    MemberState &member = inst.members.at(npu);
    ChunkState &st = member.chunks[static_cast<size_t>(chunk)];
    if (!st.started || phase_idx != st.phase) {
        // The sender's rail ran ahead of this member (possibly into a
        // chunk this member has not opened yet under serialized
        // chunking); hold the message until the member enters that
        // phase.
        ASTRA_ASSERT(!st.started || phase_idx > st.phase,
                     "collective message for an already-finished phase");
        ++st.early[phase_idx];
        return;
    }
    ++st.recvd;
    pump(inst, npu, chunk);
}

CollectiveRunResult
runCollective(CollectiveEngine &engine, const CollectiveRequest &req)
{
    static uint64_t run_key = 0xC011EC71FE000000ULL;
    ++run_key;

    NetworkApi &net = engine.network();
    const Topology &topo = net.topology();
    std::vector<double> sent_before = engine.sentBytesPerDim();

    CollectiveRunResult result;
    int remaining = topo.npus();
    for (NpuId npu = 0; npu < topo.npus(); ++npu) {
        engine.join(run_key, npu, req, [&result, &net, &remaining]() {
            --remaining;
            result.finish = std::max(result.finish, net.now());
        });
    }
    net.eventQueue().run();
    ASTRA_ASSERT(remaining == 0, "collective did not complete (%d left)",
                 remaining);

    result.sentPerDim = engine.sentBytesPerDim();
    for (size_t d = 0; d < result.sentPerDim.size(); ++d)
        result.sentPerDim[d] -= sent_before[d];
    return result;
}

} // namespace astra
