#include "collective/engine.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/logging.h"
#include "trace/tracer.h"

namespace astra {

CollectiveEngine::CollectiveEngine(NetworkApi &net)
    : net_(net), topo_(net.topology()), scheduler_(net.topology())
{
    sent_.assign(static_cast<size_t>(topo_.numDims()), 0.0);
}

NpuId
CollectiveEngine::groupBase(NpuId npu,
                            const std::vector<GroupDim> &groups) const
{
    NpuId base = npu;
    for (const GroupDim &g : groups)
        base = topo_.zeroGroup(base, g);
    return base;
}

int
CollectiveEngine::rankOf(const Instance &inst, NpuId npu) const
{
    int rank = 0;
    int mult = 1;
    for (const GroupDim &g : inst.groups) {
        rank += topo_.posInGroup(npu, g) * mult;
        mult *= g.size;
    }
    return rank;
}

uint64_t
CollectiveEngine::allocInstance()
{
    uint64_t id = instances_.claim();
    instances_.get(id).id = id;
    return id;
}

CollectiveEngine::Instance *
CollectiveEngine::findInstance(uint64_t id)
{
    return instances_.find(id);
}

void
CollectiveEngine::releaseInstance(Instance &inst)
{
    ++completedInstances_;
    if (tracer_ && inst.traceSpan != trace::Tracer::kNoSpan) {
        tracer_->endSpan(inst.traceSpan, net_.now());
        inst.traceSpan = trace::Tracer::kNoSpan;
    }
    uint64_t id = inst.id;
    inst.id = 0;
    // Clears keep the top-level capacities (and the per-member nested
    // vectors) alive for the next instance in this slot — SlotPool
    // recycles the object in place.
    inst.chunkPhases.clear();
    inst.chunkPhaseMult.clear();
    instances_.release(id);
}

size_t
CollectiveEngine::bytesInUse() const
{
    constexpr size_t kHashNode = sizeof(void *);
    size_t bytes = instances_.bytesInUse() +
                   sent_.capacity() * sizeof(double) +
                   kickScratch_.capacity() * sizeof(int);
    bytes += rendezvous_.bucket_count() * sizeof(void *) +
             rendezvous_.size() *
                 (sizeof(RendezvousKey) + sizeof(uint64_t) + kHashNode);
    // Nested per-instance vectors survive recycling (releaseInstance
    // clears, never shrinks), so walk every slot — live or free.
    for (uint32_t s = 0; s < instances_.slots(); ++s) {
        const Instance &inst = instances_.at(s);
        bytes += inst.groups.capacity() * sizeof(GroupDim) +
                 inst.npuOfRank.capacity() * sizeof(NpuId) +
                 inst.chunkPhases.capacity() * sizeof(std::vector<Phase>) +
                 inst.chunkPhaseMult.capacity() *
                     sizeof(std::vector<int>) +
                 inst.members.capacity() * sizeof(MemberState);
        for (const std::vector<Phase> &phases : inst.chunkPhases)
            bytes += phases.capacity() * sizeof(Phase);
        for (const std::vector<int> &mult : inst.chunkPhaseMult)
            bytes += mult.capacity() * sizeof(int);
        for (const MemberState &m : inst.members) {
            bytes += m.chunks.capacity() * sizeof(ChunkState);
            for (const ChunkState &c : m.chunks)
                bytes += c.early.capacity() * sizeof(int);
        }
    }
    return bytes;
}

void
CollectiveEngine::join(uint64_t key, NpuId npu, const CollectiveRequest &req,
                       EventCallback on_complete)
{
    ASTRA_ASSERT(!cancelled_,
                 "join on a cancelled collective engine (the workload "
                 "engine of an abandoned incarnation must be cancelled "
                 "first)");
    ASTRA_USER_CHECK(req.bytes >= 0.0, "collective with negative size");
    ASTRA_USER_CHECK(req.chunks >= 1, "collective needs chunks >= 1");

    std::vector<GroupDim> groups = normalizedGroups(topo_, req);

    NpuId base = groupBase(npu, groups);
    auto [it, inserted] =
        rendezvous_.try_emplace(RendezvousKey{key, base}, 0);
    if (inserted) {
        it->second = allocInstance();
        Instance &created = *findInstance(it->second);
        created.req = req;
        created.groups = std::move(groups);
        created.groupSize = 1;
        for (const GroupDim &g : created.groups)
            created.groupSize *= g.size;
        created.joinedMembers = 0;
        created.completedMembers = 0;
        created.members.resize(static_cast<size_t>(created.groupSize));
        for (MemberState &m : created.members) {
            m.joined = false;
            m.chunksDone = 0;
        }
        created.npuOfRank.assign(static_cast<size_t>(created.groupSize),
                                 -1);
    }
    Instance &inst = *findInstance(it->second);

    size_t rank = static_cast<size_t>(rankOf(inst, npu));
    MemberState &member = inst.members[rank];
    ASTRA_ASSERT(!member.joined, "NPU %d joined collective %llu twice",
                 npu, static_cast<unsigned long long>(key));
    member.joined = true;
    member.onComplete = std::move(on_complete);
    member.chunks.assign(static_cast<size_t>(req.chunks), ChunkState{});
    inst.npuOfRank[rank] = npu;

    if (++inst.joinedMembers == inst.groupSize) {
        // Last member arrived: the group is synchronized; release the
        // rendezvous key (allowing the same key to be reused) and go.
        rendezvous_.erase(it);
        start(inst);
    }
}

void
CollectiveEngine::start(Instance &inst)
{
    // Build per-chunk phase lists. The scheduler picks each chunk's
    // group order (computed once, so all members' state machines stay
    // consistent).
    Bytes chunk_bytes = inst.req.bytes / double(inst.req.chunks);
    inst.chunkPhases.reserve(static_cast<size_t>(inst.req.chunks));
    for (int c = 0; c < inst.req.chunks; ++c) {
        std::vector<GroupDim> order = scheduler_.nextOrder(
            inst.groups, inst.req.type, chunk_bytes, inst.req.policy);
        inst.chunkPhases.push_back(
            buildPhases(topo_, inst.req.type, chunk_bytes, order,
                        inst.req.treeAllReduce));
    }

    // Precompute each phase's rank-space multiplier (the radix weight
    // of its group factor within `groups`), so the per-message path
    // turns ranks into phase positions with one div/mod.
    inst.chunkPhaseMult.resize(inst.chunkPhases.size());
    for (size_t c = 0; c < inst.chunkPhases.size(); ++c) {
        const std::vector<Phase> &phases = inst.chunkPhases[c];
        std::vector<int> &mults = inst.chunkPhaseMult[c];
        mults.assign(phases.size(), 1);
        for (size_t p = 0; p < phases.size(); ++p) {
            const GroupDim &pg = phases[p].group;
            int mult = 1;
            bool found = false;
            for (const GroupDim &g : inst.groups) {
                if (g.dim == pg.dim && g.size == pg.size &&
                    g.stride == pg.stride) {
                    found = true;
                    break;
                }
                mult *= g.size;
            }
            ASTRA_ASSERT(found, "phase group is not an instance factor");
            mults[p] = mult;
        }
    }

    // Size the early-arrival buffers now that phase lists exist.
    for (MemberState &member : inst.members) {
        for (int c = 0; c < inst.req.chunks; ++c) {
            member.chunks[static_cast<size_t>(c)].early.assign(
                inst.chunkPhases[static_cast<size_t>(c)].size(), 0);
        }
    }

    uint64_t ordinal = startedInstances_++;
    if (tracer_) {
        // The " #<ordinal>" suffix gives instance spans a stable
        // identity for cross-run alignment: SlotPool track slots are
        // reused in backend-timing order, but the issue order of
        // collectives is a property of the workload alone.
        inst.traceSpan = tracer_->beginSpan(
            tracePid_,
            trace::Tracer::kCollTidBase +
                static_cast<int32_t>(SlotPool<Instance>::slotOf(inst.id)),
            "coll",
            detail::formatV("%s %.0fB x%d chunks=%d #%llu",
                            collectiveName(inst.req.type), inst.req.bytes,
                            inst.groupSize, inst.req.chunks,
                            static_cast<unsigned long long>(ordinal)),
            net_.now());
    } else {
        inst.traceSpan = trace::Tracer::kNoSpan;
    }

    // Kick every (member, chunk) state machine in ascending NPU-id
    // order. Chunks all enter their first phase now; pipelining across
    // phases emerges from transmit port serialization in the backend.
    uint64_t id = inst.id;
    kickScratch_.resize(inst.npuOfRank.size());
    for (size_t r = 0; r < kickScratch_.size(); ++r)
        kickScratch_[r] = static_cast<int>(r);
    std::sort(kickScratch_.begin(), kickScratch_.end(),
              [&inst](int a, int b) {
                  return inst.npuOfRank[static_cast<size_t>(a)] <
                         inst.npuOfRank[static_cast<size_t>(b)];
              });
    int kick = inst.req.serializeChunks ? 1 : inst.req.chunks;
    for (int rank : kickScratch_) {
        for (int c = 0; c < kick; ++c) {
            Instance *live = findInstance(id);
            if (live == nullptr)
                return; // degenerate instance completed synchronously.
            advance(*live, rank, c);
        }
    }
}

int
CollectiveEngine::treeChildren(int pos, int k)
{
    int children = 0;
    if (2 * pos + 1 < k)
        ++children;
    if (2 * pos + 2 < k)
        ++children;
    return children;
}

int
CollectiveEngine::expectedRecvs(const Phase &ph, int pos) const
{
    int k = ph.group.size;
    switch (ph.algorithm) {
      case PhaseAlgorithm::Ring:
      case PhaseAlgorithm::Direct:
        return k - 1;
      case PhaseAlgorithm::HalvingDoubling:
        return phaseSteps(ph);
      case PhaseAlgorithm::TreeReduce:
        return treeChildren(pos, k);
      case PhaseAlgorithm::TreeBroadcast:
        return pos > 0 ? 1 : 0;
    }
    return 0;
}

int
CollectiveEngine::totalSends(const Phase &ph, int pos) const
{
    switch (ph.algorithm) {
      case PhaseAlgorithm::TreeReduce:
        return pos > 0 ? 1 : 0;
      case PhaseAlgorithm::TreeBroadcast:
        return treeChildren(pos, ph.group.size);
      default:
        // Symmetric exchange: as many sends as receives.
        return expectedRecvs(ph, pos);
    }
}

void
CollectiveEngine::advance(Instance &inst, int rank, int chunk)
{
    MemberState &member = inst.members[static_cast<size_t>(rank)];
    ChunkState &st = member.chunks[static_cast<size_t>(chunk)];
    st.started = true;
    const std::vector<Phase> &phases =
        inst.chunkPhases[static_cast<size_t>(chunk)];

    if (st.phase >= phases.size()) {
        ++member.chunksDone;
        if (inst.req.serializeChunks &&
            member.chunksDone < inst.req.chunks) {
            // Conservative scheduler: the member's next chunk enters
            // the pipeline only now.
            advance(inst, rank, member.chunksDone);
            return;
        }
        if (member.chunksDone == inst.req.chunks) {
            if (member.onComplete) {
                // Deferred through the queue: the callback may join the
                // NPU to its next collective, which would otherwise
                // mutate the instance table under our feet.
                net_.simSchedule(0.0, std::move(member.onComplete));
            }
            ++inst.completedMembers;
            if (inst.completedMembers == inst.groupSize)
                releaseInstance(inst);
        }
        return;
    }
    st.sent = 0;
    st.recvd = st.early[st.phase];
    if (tracer_ && tracer_->full())
        st.phaseEnteredAt = net_.now();
    pump(inst, rank, chunk);
}

void
CollectiveEngine::pump(Instance &inst, int rank, int chunk)
{
    MemberState &member = inst.members[static_cast<size_t>(rank)];
    ChunkState &st = member.chunks[static_cast<size_t>(chunk)];
    const Phase &ph =
        inst.chunkPhases[static_cast<size_t>(chunk)][st.phase];
    int mult =
        inst.chunkPhaseMult[static_cast<size_t>(chunk)][st.phase];

    int pos = (rank / mult) % ph.group.size;
    int sends = totalSends(ph, pos);
    switch (ph.algorithm) {
      case PhaseAlgorithm::Ring:
      case PhaseAlgorithm::HalvingDoubling:
        // Step s may go out once step s-1's message has arrived.
        while (st.sent < sends && st.sent <= st.recvd) {
            sendStep(inst, rank, chunk, ph, mult, st.sent);
            ++st.sent;
        }
        break;
      case PhaseAlgorithm::Direct:
        // One-shot: fire all peer messages; the transmit port
        // serializes them at the dimension's aggregate bandwidth.
        while (st.sent < sends) {
            sendStep(inst, rank, chunk, ph, mult, st.sent);
            ++st.sent;
        }
        break;
      case PhaseAlgorithm::TreeReduce:
      case PhaseAlgorithm::TreeBroadcast:
        // Forward only once the whole subtree/parent input arrived.
        if (st.recvd == expectedRecvs(ph, pos)) {
            while (st.sent < sends) {
                sendStep(inst, rank, chunk, ph, mult, st.sent);
                ++st.sent;
            }
        }
        break;
    }

    if (st.recvd == expectedRecvs(ph, pos) && st.sent == sends) {
        if (tracer_ && tracer_->full())
            tracer_->span(tracePid_,
                          inst.npuOfRank[static_cast<size_t>(rank)],
                          "coll", "c%lld p%lld d%lld", st.phaseEnteredAt,
                          net_.now() - st.phaseEnteredAt,
                          static_cast<long long>(chunk),
                          static_cast<long long>(st.phase),
                          static_cast<long long>(ph.group.dim));
        ++st.phase;
        advance(inst, rank, chunk);
    }
}

void
CollectiveEngine::sendStep(Instance &inst, int rank, int chunk,
                           const Phase &ph, int mult, int step)
{
    int k = ph.group.size;
    int pos = (rank / mult) % k;
    int peer_pos = pos;
    Bytes bytes = 0.0;

    switch (ph.algorithm) {
      case PhaseAlgorithm::Ring:
        peer_pos = (pos + 1) % k;
        bytes = ph.tensorBytes / double(k);
        break;
      case PhaseAlgorithm::Direct:
        peer_pos = (pos + step + 1) % k;
        bytes = ph.tensorBytes / double(k);
        break;
      case PhaseAlgorithm::HalvingDoubling:
        if (ph.op == PhaseOp::AllGather) {
            // Recursive doubling: distances 1, 2, ..., k/2 with
            // message sizes tensor/k, 2*tensor/k, ..., tensor/2.
            peer_pos = pos ^ (1 << step);
            bytes = ph.tensorBytes * double(1 << step) / double(k);
        } else {
            // Recursive halving: distances k/2, ..., 1 with message
            // sizes tensor/2, tensor/4, ..., tensor/k.
            peer_pos = pos ^ (k >> (step + 1));
            bytes = ph.tensorBytes / double(2 << step);
        }
        break;
      case PhaseAlgorithm::TreeReduce:
        // Full partial sums travel up to the parent.
        peer_pos = (pos - 1) / 2;
        bytes = ph.tensorBytes;
        break;
      case PhaseAlgorithm::TreeBroadcast:
        peer_pos = 2 * pos + 1 + step;
        bytes = ph.tensorBytes;
        break;
    }

    int dst_rank = rank + (peer_pos - pos) * mult;
    NpuId src = inst.npuOfRank[static_cast<size_t>(rank)];
    NpuId dst = inst.npuOfRank[static_cast<size_t>(dst_rank)];

    sent_[static_cast<size_t>(ph.group.dim)] += bytes;
    uint64_t inst_id = inst.id;
    size_t phase_idx = inst.members[static_cast<size_t>(rank)]
                           .chunks[static_cast<size_t>(chunk)]
                           .phase;
    SendHandlers handlers;
    // [this, 2 ids, 2 ints]: fits InlineEvent's inline buffer, so the
    // per-message delivery closure never allocates; capturing the
    // destination *rank* makes delivery a pure array walk.
    handlers.onDelivered = [this, inst_id, dst_rank, chunk, phase_idx]() {
        onMessage(inst_id, dst_rank, chunk, phase_idx);
    };
    net_.simSend(src, dst, bytes, ph.group.dim, kNoTag,
                 std::move(handlers));
}

void
CollectiveEngine::onMessage(uint64_t inst_id, int rank, int chunk,
                            size_t phase_idx)
{
    if (cancelled_)
        return; // abandoned incarnation: drop, don't pump.
    Instance *found = findInstance(inst_id);
    ASTRA_ASSERT(found != nullptr,
                 "message for retired collective instance");
    Instance &inst = *found;
    MemberState &member = inst.members[static_cast<size_t>(rank)];
    ChunkState &st = member.chunks[static_cast<size_t>(chunk)];
    if (!st.started || phase_idx != st.phase) {
        // The sender's rail ran ahead of this member (possibly into a
        // chunk this member has not opened yet under serialized
        // chunking); hold the message until the member enters that
        // phase.
        ASTRA_ASSERT(!st.started || phase_idx > st.phase,
                     "collective message for an already-finished phase");
        ++st.early[phase_idx];
        return;
    }
    ++st.recvd;
    pump(inst, rank, chunk);
}

CollectiveRunResult
runCollective(CollectiveEngine &engine, const CollectiveRequest &req)
{
    // Atomic so concurrent standalone runs on worker threads (sweep
    // batches, parallel benches) never share a rendezvous key.
    static std::atomic<uint64_t> run_key{0xC011EC71FE000000ULL};
    uint64_t key = ++run_key;

    NetworkApi &net = engine.network();
    const Topology &topo = net.topology();
    std::vector<double> sent_before = engine.sentBytesPerDim();

    CollectiveRunResult result;
    int remaining = topo.npus();
    for (NpuId npu = 0; npu < topo.npus(); ++npu) {
        engine.join(key, npu, req, [&result, &net, &remaining]() {
            --remaining;
            result.finish = std::max(result.finish, net.now());
        });
    }
    net.eventQueue().run();
    ASTRA_ASSERT(remaining == 0, "collective did not complete (%d left)",
                 remaining);

    result.sentPerDim = engine.sentBytesPerDim();
    for (size_t d = 0; d < result.sentPerDim.size(); ++d)
        result.sentPerDim[d] -= sent_before[d];
    return result;
}

} // namespace astra
