/**
 * @file
 * Collective communication types (paper §II-B, Fig. 2).
 */
#ifndef ASTRA_COLLECTIVE_TYPES_H_
#define ASTRA_COLLECTIVE_TYPES_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "topology/topology.h"

namespace astra {

/** The four collective patterns of Fig. 2. */
enum class CollectiveType {
    ReduceScatter,
    AllGather,
    AllReduce,
    AllToAll,
};

const char *collectiveName(CollectiveType t);

/** Parse a collective name ("all_reduce", "allreduce", ...). */
CollectiveType parseCollectiveType(const std::string &name);

/** Collective scheduling policy for multi-rail execution (§V-A). */
enum class SchedPolicy {
    Baseline, //!< fixed ascending dimension order for every chunk.
    Themis,   //!< greedy bandwidth-aware per-chunk ordering [9].
};

const char *policyName(SchedPolicy p);

/**
 * A collective operation request.
 *
 * `bytes` is the full tensor size: for All-Reduce / Reduce-Scatter /
 * All-to-All every NPU initially holds `bytes`; for All-Gather `bytes`
 * is the gathered result size (each NPU starts with bytes/group).
 */
struct CollectiveRequest
{
    CollectiveType type = CollectiveType::AllReduce;
    Bytes bytes = 0.0;
    /**
     * The group factors the collective spans, in the canonical
     * "Dim 1 first" order the baseline scheduler uses for the
     * reduce-scatter direction. Empty means all topology dimensions
     * (whole-system collective). Use {GroupDim{d, 0, 1}} for a whole
     * single dimension, or strided factors for sub-dimension groups.
     */
    std::vector<GroupDim> groups;
    /** Chunking factor for pipelining across dimension phases. */
    int chunks = 1;
    SchedPolicy policy = SchedPolicy::Baseline;
    /**
     * When true, each NPU processes its chunks strictly one after
     * another (the conservative hierarchical scheduler, which leaves
     * the pipelining bubbles of §V-A.1); when false all chunks enter
     * the pipeline immediately and per-dimension transmit ports are
     * kept busy.
     */
    bool serializeChunks = false;
    /**
     * All-Reduce only: replace each dimension's RS/AG phase pair with
     * a binary-tree reduce + broadcast (the Tree algorithm of §II-B).
     * Latency-optimal at small sizes, bandwidth-suboptimal at large
     * sizes (full tensor on every tree edge); see
     * bench_ablation_tree.
     */
    bool treeAllReduce = false;

    /** Convenience: collective over whole dimensions `dims`. */
    static CollectiveRequest
    overDims(CollectiveType type, Bytes bytes, std::vector<int> dims = {},
             int chunks = 1, SchedPolicy policy = SchedPolicy::Baseline)
    {
        CollectiveRequest req;
        req.type = type;
        req.bytes = bytes;
        for (int d : dims)
            req.groups.push_back(GroupDim{d, 0, 1});
        req.chunks = chunks;
        req.policy = policy;
        return req;
    }
};

} // namespace astra

#endif // ASTRA_COLLECTIVE_TYPES_H_
