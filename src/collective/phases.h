/**
 * @file
 * Multi-rail hierarchical phase construction (paper §II-B.2, §IV-B).
 *
 * A collective over an N-dimensional topology is decomposed into
 * per-dimension phases: an All-Reduce runs Reduce-Scatter over the
 * dimensions in the scheduler-chosen order, then All-Gather in the
 * reverse order. Each phase uses the building block's topology-aware
 * algorithm (Table I): Ring on Ring dims, Direct on FullyConnected
 * dims, Halving-Doubling on Switch dims (falling back to Direct when
 * the group size is not a power of two).
 *
 * Phase sizes follow the hierarchical shrink/grow rule: a
 * Reduce-Scatter phase over a group of size k shrinks the per-NPU
 * working set by k; All-Gather grows it back. `tensorBytes` always
 * records the *large* side of the phase (input for RS, output for
 * AG), so the bytes transmitted per NPU within the phase are
 * `(k-1)/k * tensorBytes` for every algorithm.
 */
#ifndef ASTRA_COLLECTIVE_PHASES_H_
#define ASTRA_COLLECTIVE_PHASES_H_

#include <vector>

#include "collective/types.h"
#include "topology/topology.h"

namespace astra {

/** The communication pattern a single phase executes. */
enum class PhaseOp {
    ReduceScatter,
    AllGather,
    AllToAll,
};

/** The per-dimension algorithm used inside a phase (Table I, plus
 *  the tree algorithm of §II-B [50] as an optional extension). */
enum class PhaseAlgorithm {
    Ring,            //!< (k-1) neighbour steps.
    Direct,          //!< one shot, k-1 parallel messages.
    HalvingDoubling, //!< log2(k) recursive exchange steps.
    TreeReduce,      //!< binary-tree reduction to position 0.
    TreeBroadcast,   //!< binary-tree broadcast from position 0.
};

/** Pick the algorithm for a building block and group size (Table I). */
PhaseAlgorithm algorithmFor(BlockType type, int group_size);

/** One per-dimension phase of a multi-rail collective. */
struct Phase
{
    GroupDim group;              //!< dimension factor this phase spans.
    PhaseOp op = PhaseOp::ReduceScatter;
    PhaseAlgorithm algorithm = PhaseAlgorithm::Ring;
    Bytes tensorBytes = 0.0;     //!< large-side per-NPU data size.
};

/**
 * Build the ordered phase list for one chunk of a collective.
 *
 * @param topo        topology (for dimension sizes/types).
 * @param type        collective pattern.
 * @param chunk_bytes full tensor bytes carried by this chunk.
 * @param rs_order    normalized group factors in reduce-scatter
 *                    direction order; All-Gather phases run reversed.
 * @param tree        All-Reduce only: use tree reduce + broadcast per
 *                    dimension instead of RS + AG (no shrinking).
 */
std::vector<Phase> buildPhases(const Topology &topo, CollectiveType type,
                               Bytes chunk_bytes,
                               const std::vector<GroupDim> &rs_order,
                               bool tree = false);

/** Bytes transmitted (sent) per NPU in a phase, averaged over the
 *  group: (k-1)/k * tensorBytes for every algorithm (tree phases move
 *  k-1 full-tensor messages across k members). */
Bytes phaseSentBytes(const Phase &phase);

/** Number of algorithm steps in a phase (latency-chain length). */
int phaseSteps(const Phase &phase);

/** Depth of the binary tree over k positions (tree-phase chain). */
int treeDepth(int k);

/**
 * Per-topology-dimension bytes sent by one NPU for a whole collective
 * executed with the given RS-direction order (sums over phases). Used
 * for the Table IV message-size accounting, where the paper reports
 * in+out traffic, i.e. 2x these values.
 */
std::vector<Bytes> perDimSentBytes(const Topology &topo,
                                   CollectiveType type, Bytes bytes,
                                   const std::vector<GroupDim> &rs_order);

/**
 * Allocation-free variant of perDimSentBytes() for per-chunk hot paths
 * (the Themis scheduler evaluates it for every candidate order of
 * every chunk): `sent` is resized to numDims and filled in place using
 * the closed-form shrink/grow accounting, without materializing Phase
 * objects.
 */
void perDimSentBytesInto(const Topology &topo, CollectiveType type,
                         Bytes bytes,
                         const std::vector<GroupDim> &rs_order,
                         std::vector<Bytes> &sent);

/** Expand "all topology dims, whole size" into normalized factors. */
std::vector<GroupDim> wholeTopologyGroups(const Topology &topo);

/** Normalize a request's groups (empty -> whole topology). */
std::vector<GroupDim> normalizedGroups(const Topology &topo,
                                       const CollectiveRequest &req);

} // namespace astra

#endif // ASTRA_COLLECTIVE_PHASES_H_
