/**
 * @file
 * Top-level simulator facade wiring the full ASTRA-sim 2.0 stack
 * (Fig. 1(c)): topology + network backend + collective engine +
 * memory model + per-NPU system layers + the graph-based execution
 * engine. One Simulator instance runs one workload and produces a
 * Report with the end-to-end time and the five-way runtime breakdown
 * used throughout the paper's evaluation.
 */
#ifndef ASTRA_ASTRA_SIMULATOR_H_
#define ASTRA_ASTRA_SIMULATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "astra/report.h"
#include "collective/engine.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "memory/memory_model.h"
#include "network/network_api.h"
#include "system/sys.h"
#include "telemetry/telemetry.h"
#include "topology/topology.h"
#include "trace/tracer.h"
#include "workload/et.h"

namespace astra {

/** Full-stack configuration for a simulation. */
struct SimulatorConfig
{
    NetworkBackendKind backend = NetworkBackendKind::Analytical;
    SysConfig sys;
    LocalMemoryConfig localMem;
    /** At most one remote tier may be set. */
    std::optional<RemoteMemoryConfig> pooledMem;
    std::optional<ZeroInfinityConfig> zeroInfinityMem;
    /**
     * Optional fault scenario (docs/fault.md). A single-workload
     * simulation supports link faults and stragglers; NPU fail/
     * recover events need the cluster layer's checkpoint/restart
     * machinery and are rejected here. Absent or empty scenarios
     * leave every code path bit-identical to a fault-free build.
     */
    std::optional<fault::FaultConfig> fault;
    /**
     * Tracing & self-profiling (docs/trace.md). The default
     * (`detail: off`) records nothing and leaves every code path
     * bit-identical to a build without tracing; `spans`/`full` record
     * a simulated-time timeline (exported as Chrome trace-event JSON
     * when `file` is set) and fill the report's trace counters.
     */
    trace::TraceConfig trace;
    /**
     * Host-process telemetry (docs/observability.md): heartbeat
     * monitoring and run-manifest output. The default (all off)
     * leaves every code path bit-identical to a build without
     * telemetry; the footprint rollup in the Report is always
     * measured (it is deterministic and costs one pass at run end).
     */
    telemetry::TelemetryConfig telemetry;
};

/** See file comment. */
class Simulator
{
  public:
    Simulator(Topology topo, SimulatorConfig cfg = {});

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Validate and execute `wl` to completion; callable once per
     * Simulator instance.
     */
    Report run(const Workload &wl);

    const Topology &topology() const { return topo_; }
    EventQueue &eventQueue() { return eq_; }
    NetworkApi &network() { return *net_; }
    CollectiveEngine &collectives() { return *coll_; }
    const MemoryModel &memory() const { return *mem_; }
    Sys &sys(NpuId npu);

    /** The run's tracer (null unless cfg.trace enabled it); exposed
     *  so tests can inspect the recorded timeline in memory. */
    trace::Tracer *tracer() { return tracer_.get(); }

    /** The run's heartbeat monitor (null unless cfg.telemetry enabled
     *  heartbeats); exposed so tests can inspect the in-memory
     *  records. Valid after run() returns. */
    telemetry::Monitor *monitor() { return monitor_.get(); }

  private:
    Topology topo_;
    SimulatorConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<NetworkApi> net_;
    std::unique_ptr<CollectiveEngine> coll_;
    std::unique_ptr<MemoryModel> mem_;
    std::vector<std::unique_ptr<Sys>> sys_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<telemetry::Monitor> monitor_;
    QueueProfile profile_; //!< attached to eq_ while tracing.
    bool ran_ = false;
};

} // namespace astra

#endif // ASTRA_ASTRA_SIMULATOR_H_
