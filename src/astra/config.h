/**
 * @file
 * JSON configuration loading for the simulator, mirroring the real
 * ASTRA-sim's split into a *network* config (topology shape,
 * per-dimension bandwidths/latencies) and a *system* config (compute,
 * scheduling policy, chunking, memory tiers). Together with an ET
 * trace file this makes a complete simulation runnable from the
 * command line (see examples/astra_sim.cpp).
 *
 * Network config schema:
 * ```json
 * {
 *   "topology": "Ring(2,250)_FC(8,200)_Ring(8,100)_Switch(4,50)",
 *   // or explicit:
 *   "dims": [{"type": "Ring", "size": 2,
 *             "bandwidth_gbps": 250, "latency_ns": 500}, ...],
 *   "backend": "analytical" | "analytical-pure" | "flow" | "packet",
 *   "packet_bytes": 4096
 * }
 * ```
 *
 * System config schema:
 * ```json
 * {
 *   "peak_tflops": 234,
 *   "compute_mem_bw_gbps": 2039,
 *   "kernel_overhead_ns": 0,
 *   "collective_chunks": 8,
 *   "scheduling_policy": "baseline" | "themis",
 *   "serialize_chunks": false,
 *   "local_memory": {"bandwidth_gbps": 4096, "latency_ns": 100},
 *   "remote_memory": {
 *     "kind": "pooled" | "zero-infinity",
 *     // pooled:
 *     "architecture": "hierarchical" | "multi_level_switch"
 *                     | "ring" | "mesh",
 *     "nodes": 16, "gpus_per_node": 16, "out_node_switches": 16,
 *     "remote_memory_groups": 256, "chunk_bytes": 262144,
 *     "remote_group_bw_gbps": 100, "gpu_side_bw_gbps": 256,
 *     "in_node_fabric_bw_gbps": 256, "latency_ns": 1000,
 *     // zero-infinity:
 *     "tier_bw_gbps": 100, "latency_ns": 2000
 *   }
 * }
 * ```
 */
#ifndef ASTRA_ASTRA_CONFIG_H_
#define ASTRA_ASTRA_CONFIG_H_

#include <string>

#include "astra/simulator.h"
#include "common/json.h"
#include "topology/topology.h"

namespace astra {

/** Parse a network config document; fatal() on schema errors. */
Topology topologyFromJson(const json::Value &doc);

/** Serialize a topology into the explicit-dims network schema. */
json::Value topologyToJson(const Topology &topo);

/** Backend selection from a network config ("backend" key). */
NetworkBackendKind backendFromJson(const json::Value &doc);

/** Parse a system config document into a SimulatorConfig (backend is
 *  taken from the network document; pass it in). */
SimulatorConfig simulatorConfigFromJson(const json::Value &system_doc,
                                        NetworkBackendKind backend);

/** Serialize a SimulatorConfig into the system schema. */
json::Value simulatorConfigToJson(const SimulatorConfig &cfg);

/** Write commented sample config files (quickstart scaffolding). */
void writeSampleConfigs(const std::string &network_path,
                        const std::string &system_path);

} // namespace astra

#endif // ASTRA_ASTRA_CONFIG_H_
