#include "astra/config.h"

#include <cmath>

#include "common/logging.h"
#include "topology/notation.h"

namespace astra {

Topology
topologyFromJson(const json::Value &doc)
{
    if (doc.has("topology"))
        return parseTopology(doc.at("topology").asString());

    ASTRA_USER_CHECK(doc.has("dims"),
                     "network config needs either \"topology\" "
                     "(notation string) or \"dims\" (explicit array)");
    std::vector<Dimension> dims;
    for (const json::Value &d : doc.at("dims").asArray()) {
        Dimension dim;
        dim.type = parseBlockType(d.at("type").asString());
        dim.size = static_cast<int>(d.at("size").asInt());
        dim.bandwidth = d.getNumber("bandwidth_gbps", 100.0);
        dim.latency = d.getNumber("latency_ns", 500.0);
        dims.push_back(dim);
    }
    return Topology(std::move(dims));
}

json::Value
topologyToJson(const Topology &topo)
{
    json::Object doc;
    json::Array dims;
    for (int d = 0; d < topo.numDims(); ++d) {
        json::Object o;
        o["type"] = json::Value(blockLongName(topo.dim(d).type));
        o["size"] = json::Value(topo.dim(d).size);
        o["bandwidth_gbps"] = json::Value(topo.dim(d).bandwidth);
        o["latency_ns"] = json::Value(topo.dim(d).latency);
        dims.push_back(json::Value(std::move(o)));
    }
    doc["dims"] = json::Value(std::move(dims));
    return json::Value(std::move(doc));
}

NetworkBackendKind
backendFromJson(const json::Value &doc)
{
    std::string name = doc.getString("backend", "analytical");
    if (name == "analytical")
        return NetworkBackendKind::Analytical;
    if (name == "analytical-pure")
        return NetworkBackendKind::AnalyticalPure;
    if (name == "flow")
        return NetworkBackendKind::Flow;
    if (name == "packet")
        return NetworkBackendKind::Packet;
    fatal("network config: unknown backend '%s' (analytical | "
          "analytical-pure | flow | packet)",
          name.c_str());
}

namespace {

RemoteMemoryConfig
pooledFromJson(const json::Value &m)
{
    RemoteMemoryConfig pool;
    std::string arch = m.getString("architecture", "hierarchical");
    if (arch == "hierarchical")
        pool.arch = PoolArch::Hierarchical;
    else if (arch == "multi_level_switch")
        pool.arch = PoolArch::MultiLevelSwitch;
    else if (arch == "ring")
        pool.arch = PoolArch::Ring;
    else if (arch == "mesh")
        pool.arch = PoolArch::Mesh;
    else
        fatal("system config: unknown pool architecture '%s'",
              arch.c_str());
    pool.numNodes = static_cast<int>(m.getInt("nodes", pool.numNodes));
    pool.gpusPerNode =
        static_cast<int>(m.getInt("gpus_per_node", pool.gpusPerNode));
    pool.numOutNodeSwitches = static_cast<int>(
        m.getInt("out_node_switches", pool.numOutNodeSwitches));
    pool.numRemoteMemoryGroups = static_cast<int>(
        m.getInt("remote_memory_groups", pool.numRemoteMemoryGroups));
    pool.chunkBytes = m.getNumber("chunk_bytes", pool.chunkBytes);
    pool.remoteMemGroupBw =
        m.getNumber("remote_group_bw_gbps", pool.remoteMemGroupBw);
    pool.gpuSideOutNodeBw =
        m.getNumber("gpu_side_bw_gbps", pool.gpuSideOutNodeBw);
    pool.inNodeFabricBw =
        m.getNumber("in_node_fabric_bw_gbps", pool.inNodeFabricBw);
    pool.baseLatency = m.getNumber("latency_ns", pool.baseLatency);
    return pool;
}

} // namespace

SimulatorConfig
simulatorConfigFromJson(const json::Value &system_doc,
                        NetworkBackendKind backend)
{
    SimulatorConfig cfg;
    cfg.backend = backend;
    cfg.sys.compute.peakTflops =
        system_doc.getNumber("peak_tflops", 234.0);
    cfg.sys.compute.memBandwidth =
        system_doc.getNumber("compute_mem_bw_gbps", 2039.0);
    cfg.sys.compute.kernelOverhead =
        system_doc.getNumber("kernel_overhead_ns", 0.0);
    cfg.sys.collectiveChunks =
        static_cast<int>(system_doc.getInt("collective_chunks", 8));
    std::string policy =
        system_doc.getString("scheduling_policy", "baseline");
    if (policy == "themis")
        cfg.sys.policy = SchedPolicy::Themis;
    else if (policy == "baseline")
        cfg.sys.policy = SchedPolicy::Baseline;
    else
        fatal("system config: unknown scheduling_policy '%s'",
              policy.c_str());
    cfg.sys.serializeChunks =
        system_doc.getBool("serialize_chunks", false);

    // Numeric sanity: NaN or non-positive rates would otherwise be
    // silently accepted and surface as nonsense times (or infinite
    // loops) deep in the simulation.
    auto require_positive = [](double v, const char *key) {
        ASTRA_USER_CHECK(std::isfinite(v) && v > 0.0,
                         "system config: '%s' must be a positive "
                         "finite number, got %g",
                         key, v);
    };
    auto require_non_negative = [](double v, const char *key) {
        ASTRA_USER_CHECK(std::isfinite(v) && v >= 0.0,
                         "system config: '%s' must be a non-negative "
                         "finite number, got %g",
                         key, v);
    };
    require_positive(cfg.sys.compute.peakTflops, "peak_tflops");
    require_positive(cfg.sys.compute.memBandwidth,
                     "compute_mem_bw_gbps");
    require_non_negative(cfg.sys.compute.kernelOverhead,
                         "kernel_overhead_ns");

    if (system_doc.has("local_memory")) {
        const json::Value &m = system_doc.at("local_memory");
        cfg.localMem.bandwidth =
            m.getNumber("bandwidth_gbps", cfg.localMem.bandwidth);
        cfg.localMem.latency =
            m.getNumber("latency_ns", cfg.localMem.latency);
        require_positive(cfg.localMem.bandwidth,
                         "local_memory.bandwidth_gbps");
        require_non_negative(cfg.localMem.latency,
                             "local_memory.latency_ns");
    }

    if (system_doc.has("remote_memory")) {
        const json::Value &m = system_doc.at("remote_memory");
        std::string kind = m.getString("kind", "pooled");
        if (kind == "pooled") {
            cfg.pooledMem = pooledFromJson(m);
        } else if (kind == "zero-infinity") {
            ZeroInfinityConfig zero;
            zero.tierBandwidth =
                m.getNumber("tier_bw_gbps", zero.tierBandwidth);
            zero.baseLatency =
                m.getNumber("latency_ns", zero.baseLatency);
            cfg.zeroInfinityMem = zero;
        } else {
            fatal("system config: unknown remote_memory kind '%s'",
                  kind.c_str());
        }
    }
    return cfg;
}

json::Value
simulatorConfigToJson(const SimulatorConfig &cfg)
{
    json::Object doc;
    doc["peak_tflops"] = json::Value(cfg.sys.compute.peakTflops);
    doc["compute_mem_bw_gbps"] =
        json::Value(cfg.sys.compute.memBandwidth);
    doc["kernel_overhead_ns"] =
        json::Value(cfg.sys.compute.kernelOverhead);
    doc["collective_chunks"] = json::Value(cfg.sys.collectiveChunks);
    doc["scheduling_policy"] = json::Value(policyName(cfg.sys.policy));
    doc["serialize_chunks"] = json::Value(cfg.sys.serializeChunks);

    json::Object local;
    local["bandwidth_gbps"] = json::Value(cfg.localMem.bandwidth);
    local["latency_ns"] = json::Value(cfg.localMem.latency);
    doc["local_memory"] = json::Value(std::move(local));

    if (cfg.pooledMem) {
        const RemoteMemoryConfig &pool = *cfg.pooledMem;
        json::Object m;
        m["kind"] = json::Value("pooled");
        m["architecture"] = json::Value(poolArchName(pool.arch));
        m["nodes"] = json::Value(pool.numNodes);
        m["gpus_per_node"] = json::Value(pool.gpusPerNode);
        m["out_node_switches"] = json::Value(pool.numOutNodeSwitches);
        m["remote_memory_groups"] =
            json::Value(pool.numRemoteMemoryGroups);
        m["chunk_bytes"] = json::Value(pool.chunkBytes);
        m["remote_group_bw_gbps"] = json::Value(pool.remoteMemGroupBw);
        m["gpu_side_bw_gbps"] = json::Value(pool.gpuSideOutNodeBw);
        m["in_node_fabric_bw_gbps"] = json::Value(pool.inNodeFabricBw);
        m["latency_ns"] = json::Value(pool.baseLatency);
        doc["remote_memory"] = json::Value(std::move(m));
    } else if (cfg.zeroInfinityMem) {
        json::Object m;
        m["kind"] = json::Value("zero-infinity");
        m["tier_bw_gbps"] =
            json::Value(cfg.zeroInfinityMem->tierBandwidth);
        m["latency_ns"] = json::Value(cfg.zeroInfinityMem->baseLatency);
        doc["remote_memory"] = json::Value(std::move(m));
    }
    return json::Value(std::move(doc));
}

void
writeSampleConfigs(const std::string &network_path,
                   const std::string &system_path)
{
    json::Object net;
    net["topology"] =
        json::Value("Ring(2,250)_FC(8,200)_Ring(8,100)_Switch(4,50)");
    net["backend"] = json::Value("analytical");
    json::writeFile(network_path, json::Value(std::move(net)));

    SimulatorConfig cfg; // library defaults = the paper's A100 system.
    json::writeFile(system_path, simulatorConfigToJson(cfg));
}

} // namespace astra
