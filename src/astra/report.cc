#include "astra/report.h"

#include <algorithm>
#include <cstdio>

namespace astra {

double
Report::exposedCommFraction() const
{
    TimeNs total = average.total();
    return total > 0.0 ? average.exposedComm / total : 0.0;
}

std::vector<double>
Report::dimUtilization(const Topology &topo) const
{
    std::vector<double> util(bytesPerDim.size(), 0.0);
    if (totalTime <= 0.0)
        return util;
    for (size_t d = 0;
         d < util.size() && d < size_t(topo.numDims()); ++d) {
        double per_npu = bytesPerDim[d] / double(topo.npus());
        util[d] = per_npu /
                  (topo.dim(static_cast<int>(d)).bandwidth * totalTime);
    }
    return util;
}

double
Report::maxLinkUtilization() const
{
    return totalTime > 0.0 ? maxLinkBusyNs / totalTime : 0.0;
}

std::vector<double>
Report::dimBusyFraction() const
{
    std::vector<double> frac(busyTimePerDim.size(), 0.0);
    if (totalTime <= 0.0)
        return frac;
    for (size_t d = 0; d < frac.size(); ++d) {
        int links = d < linksPerDim.size() ? linksPerDim[d] : 0;
        if (links > 0)
            frac[d] = busyTimePerDim[d] / (double(links) * totalTime);
    }
    return frac;
}

std::string
Report::summary() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "workload:            %s\n"
        "total time:          %.3f ms\n"
        "  compute:           %.3f ms (%.1f%%)\n"
        "  exposed comm:      %.3f ms (%.1f%%)\n"
        "  exposed local mem: %.3f ms (%.1f%%)\n"
        "  exposed remote mem:%.3f ms (%.1f%%)\n"
        "  idle:              %.3f ms (%.1f%%)\n"
        "events: %llu  messages: %llu  host time: %.3f s\n"
        "max link utilization: %.1f%%\n",
        workload.c_str(), totalTime / kMs, average.compute / kMs,
        100.0 * average.compute / std::max(average.total(), 1.0),
        average.exposedComm / kMs,
        100.0 * average.exposedComm / std::max(average.total(), 1.0),
        average.exposedLocalMem / kMs,
        100.0 * average.exposedLocalMem / std::max(average.total(), 1.0),
        average.exposedRemoteMem / kMs,
        100.0 * average.exposedRemoteMem /
            std::max(average.total(), 1.0),
        average.idle / kMs,
        100.0 * average.idle / std::max(average.total(), 1.0),
        static_cast<unsigned long long>(events),
        static_cast<unsigned long long>(messages), wallSeconds,
        100.0 * maxLinkUtilization());
    std::string out = buf;
    if (numFaults > 0) {
        std::snprintf(buf, sizeof(buf),
                      "faults: %llu  lost work: %.3f ms  recovery: "
                      "%.3f ms  goodput: %.3f\n",
                      static_cast<unsigned long long>(numFaults),
                      lostWorkNs / kMs, recoveryTimeNs / kMs, goodput);
        out += buf;
    }
    if (peakFootprintBytes > 0) {
        std::snprintf(buf, sizeof(buf),
                      "footprint: %.2f MiB  bytes/flow: %.0f  "
                      "bytes/NPU: %.0f\n",
                      double(peakFootprintBytes) / (1024.0 * 1024.0),
                      bytesPerFlow, bytesPerNpu);
        out += buf;
    }
    if (availability > 0.0 || blastRadius > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "availability: %.3f  blast radius: %.2f  "
                      "recovery p50/p95: %.3f/%.3f ms  spare util: "
                      "%.3f\n",
                      availability, blastRadius, recoveryP50Ns / kMs,
                      recoveryP95Ns / kMs, spareUtilization);
        out += buf;
    }
    return out;
}

namespace {

json::Value
breakdownToJson(const RuntimeBreakdown &b)
{
    json::Object o;
    o["compute_ns"] = json::Value(b.compute);
    o["exposed_comm_ns"] = json::Value(b.exposedComm);
    o["exposed_local_mem_ns"] = json::Value(b.exposedLocalMem);
    o["exposed_remote_mem_ns"] = json::Value(b.exposedRemoteMem);
    o["idle_ns"] = json::Value(b.idle);
    return json::Value(std::move(o));
}

RuntimeBreakdown
breakdownFromJson(const json::Value &v)
{
    RuntimeBreakdown b;
    b.compute = v.getNumber("compute_ns", 0.0);
    b.exposedComm = v.getNumber("exposed_comm_ns", 0.0);
    b.exposedLocalMem = v.getNumber("exposed_local_mem_ns", 0.0);
    b.exposedRemoteMem = v.getNumber("exposed_remote_mem_ns", 0.0);
    b.idle = v.getNumber("idle_ns", 0.0);
    return b;
}

} // namespace

json::Value
reportToJson(const Report &report)
{
    json::Object doc;
    doc["workload"] = json::Value(report.workload);
    doc["total_time_ns"] = json::Value(report.totalTime);
    doc["average"] = breakdownToJson(report.average);
    json::Array per_npu;
    per_npu.reserve(report.perNpu.size());
    for (const RuntimeBreakdown &b : report.perNpu)
        per_npu.push_back(breakdownToJson(b));
    doc["per_npu"] = json::Value(std::move(per_npu));
    doc["events"] = json::Value(report.events);
    doc["messages"] = json::Value(report.messages);
    json::Array bytes;
    bytes.reserve(report.bytesPerDim.size());
    for (double b : report.bytesPerDim)
        bytes.push_back(json::Value(b));
    doc["bytes_per_dim"] = json::Value(std::move(bytes));
    json::Array busy;
    busy.reserve(report.busyTimePerDim.size());
    for (double b : report.busyTimePerDim)
        busy.push_back(json::Value(b));
    doc["busy_time_per_dim_ns"] = json::Value(std::move(busy));
    json::Array links;
    links.reserve(report.linksPerDim.size());
    for (int n : report.linksPerDim)
        links.push_back(json::Value(n));
    doc["links_per_dim"] = json::Value(std::move(links));
    doc["max_link_busy_ns"] = json::Value(report.maxLinkBusyNs);
    doc["queueing_delay_ns"] = json::Value(report.queueingDelayNs);
    doc["interference_slowdown"] =
        json::Value(report.interferenceSlowdown);
    doc["lost_work_ns"] = json::Value(report.lostWorkNs);
    doc["recovery_time_ns"] = json::Value(report.recoveryTimeNs);
    doc["num_faults"] = json::Value(report.numFaults);
    doc["goodput"] = json::Value(report.goodput);
    // Failure-domain metrics are serialized only when measured so
    // fault-free report JSON — and the sweep cache fingerprint — is
    // unchanged (same contract as the trace fields below).
    if (report.availability > 0.0)
        doc["availability"] = json::Value(report.availability);
    if (report.blastRadius > 0.0)
        doc["blast_radius"] = json::Value(report.blastRadius);
    if (report.recoveryP50Ns > 0.0 || report.recoveryP95Ns > 0.0) {
        doc["recovery_p50_ns"] = json::Value(report.recoveryP50Ns);
        doc["recovery_p95_ns"] = json::Value(report.recoveryP95Ns);
    }
    if (report.spareUtilization > 0.0)
        doc["spare_utilization"] = json::Value(report.spareUtilization);
    // Footprint rollup (telemetry protocol): capacity-based, hence a
    // deterministic function of the configuration, and serialized
    // unconditionally — bytes/flow and bytes/NPU are first-class
    // metrics. Adding these keys intentionally orphans pre-telemetry
    // sweep caches via the automatic fingerprint. Peak RSS is
    // process-wide host state and is excluded like wallSeconds.
    doc["peak_footprint_bytes"] =
        json::Value(static_cast<uint64_t>(report.peakFootprintBytes));
    json::Object footprint;
    for (const auto &[name, bytes] : report.footprintBySubsystem)
        footprint[name] = json::Value(static_cast<uint64_t>(bytes));
    doc["footprint"] = json::Value(std::move(footprint));
    doc["bytes_per_flow"] = json::Value(report.bytesPerFlow);
    doc["bytes_per_npu"] = json::Value(report.bytesPerNpu);
    // Heartbeat count is deterministic only under a pure event-count
    // cadence (the Monitor leaves it 0 otherwise), so nonzero values
    // are safe to serialize and wall-cadence runs stay bit-identical
    // to telemetry-off runs.
    if (report.telemetryHeartbeats > 0)
        doc["telemetry_heartbeats"] =
            json::Value(report.telemetryHeartbeats);
    // Trace self-profiling is serialized only when present so the
    // default (untraced) report JSON — and with it the sweep cache
    // fingerprint — is unchanged. Wall-clock attribution is excluded
    // for the same reason wallSeconds is (see header comment).
    if (!report.traceCounters.empty()) {
        json::Object counters;
        for (const auto &[key, v] : report.traceCounters)
            counters[key] = json::Value(v);
        doc["trace_counters"] = json::Value(std::move(counters));
    }
    if (!report.traceHistograms.empty()) {
        json::Object hists;
        for (const auto &[key, buckets] : report.traceHistograms) {
            json::Array arr;
            arr.reserve(buckets.size());
            for (uint64_t b : buckets)
                arr.push_back(json::Value(b));
            hists[key] = json::Value(std::move(arr));
        }
        doc["trace_histograms"] = json::Value(std::move(hists));
    }
    if (report.criticalPathNs > 0.0) {
        doc["critical_path_ns"] = json::Value(report.criticalPathNs);
        json::Array exposed;
        exposed.reserve(report.traceExposedCommPerDim.size());
        for (double ns : report.traceExposedCommPerDim)
            exposed.push_back(json::Value(ns));
        doc["trace_exposed_comm_per_dim_ns"] =
            json::Value(std::move(exposed));
        doc["bottleneck_link"] = json::Value(report.bottleneckLink);
        doc["bottleneck_link_share"] =
            json::Value(report.bottleneckLinkShare);
    }
    return json::Value(std::move(doc));
}

Report
reportFromJson(const json::Value &doc)
{
    Report report;
    report.workload = doc.getString("workload", "");
    report.totalTime = doc.getNumber("total_time_ns", 0.0);
    if (doc.has("average"))
        report.average = breakdownFromJson(doc.at("average"));
    if (doc.has("per_npu")) {
        for (const json::Value &v : doc.at("per_npu").asArray())
            report.perNpu.push_back(breakdownFromJson(v));
    }
    report.events =
        static_cast<uint64_t>(doc.getInt("events", 0));
    report.messages =
        static_cast<uint64_t>(doc.getInt("messages", 0));
    if (doc.has("bytes_per_dim")) {
        for (const json::Value &v : doc.at("bytes_per_dim").asArray())
            report.bytesPerDim.push_back(v.asNumber());
    }
    if (doc.has("busy_time_per_dim_ns")) {
        for (const json::Value &v :
             doc.at("busy_time_per_dim_ns").asArray())
            report.busyTimePerDim.push_back(v.asNumber());
    }
    if (doc.has("links_per_dim")) {
        for (const json::Value &v : doc.at("links_per_dim").asArray())
            report.linksPerDim.push_back(
                static_cast<int>(v.asNumber()));
    }
    report.maxLinkBusyNs = doc.getNumber("max_link_busy_ns", 0.0);
    report.queueingDelayNs = doc.getNumber("queueing_delay_ns", 0.0);
    report.interferenceSlowdown =
        doc.getNumber("interference_slowdown", 0.0);
    report.lostWorkNs = doc.getNumber("lost_work_ns", 0.0);
    report.recoveryTimeNs = doc.getNumber("recovery_time_ns", 0.0);
    report.numFaults =
        static_cast<uint64_t>(doc.getInt("num_faults", 0));
    report.goodput = doc.getNumber("goodput", 0.0);
    report.availability = doc.getNumber("availability", 0.0);
    report.blastRadius = doc.getNumber("blast_radius", 0.0);
    report.recoveryP50Ns = doc.getNumber("recovery_p50_ns", 0.0);
    report.recoveryP95Ns = doc.getNumber("recovery_p95_ns", 0.0);
    report.spareUtilization = doc.getNumber("spare_utilization", 0.0);
    report.peakFootprintBytes = static_cast<size_t>(
        doc.getNumber("peak_footprint_bytes", 0.0));
    if (doc.has("footprint")) {
        for (const auto &[name, v] : doc.at("footprint").asObject())
            report.footprintBySubsystem.emplace_back(
                name, static_cast<size_t>(v.asNumber()));
    }
    report.bytesPerFlow = doc.getNumber("bytes_per_flow", 0.0);
    report.bytesPerNpu = doc.getNumber("bytes_per_npu", 0.0);
    report.telemetryHeartbeats =
        static_cast<uint64_t>(doc.getInt("telemetry_heartbeats", 0));
    if (doc.has("trace_counters")) {
        for (const auto &[key, v] :
             doc.at("trace_counters").asObject())
            report.traceCounters[key] = v.asNumber();
    }
    report.criticalPathNs = doc.getNumber("critical_path_ns", 0.0);
    if (doc.has("trace_exposed_comm_per_dim_ns")) {
        for (const json::Value &v :
             doc.at("trace_exposed_comm_per_dim_ns").asArray())
            report.traceExposedCommPerDim.push_back(v.asNumber());
    }
    report.bottleneckLink = doc.getString("bottleneck_link", "");
    report.bottleneckLinkShare =
        doc.getNumber("bottleneck_link_share", 0.0);
    if (doc.has("trace_histograms")) {
        for (const auto &[key, v] :
             doc.at("trace_histograms").asObject()) {
            std::vector<uint64_t> buckets;
            for (const json::Value &b : v.asArray())
                buckets.push_back(
                    static_cast<uint64_t>(b.asNumber()));
            report.traceHistograms[key] = std::move(buckets);
        }
    }
    return report;
}

} // namespace astra
