#include "astra/report.h"

#include <algorithm>
#include <cstdio>

namespace astra {

double
Report::exposedCommFraction() const
{
    TimeNs total = average.total();
    return total > 0.0 ? average.exposedComm / total : 0.0;
}

std::vector<double>
Report::dimUtilization(const Topology &topo) const
{
    std::vector<double> util(bytesPerDim.size(), 0.0);
    if (totalTime <= 0.0)
        return util;
    for (size_t d = 0;
         d < util.size() && d < size_t(topo.numDims()); ++d) {
        double per_npu = bytesPerDim[d] / double(topo.npus());
        util[d] = per_npu /
                  (topo.dim(static_cast<int>(d)).bandwidth * totalTime);
    }
    return util;
}

std::string
Report::summary() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "workload:            %s\n"
        "total time:          %.3f ms\n"
        "  compute:           %.3f ms (%.1f%%)\n"
        "  exposed comm:      %.3f ms (%.1f%%)\n"
        "  exposed local mem: %.3f ms (%.1f%%)\n"
        "  exposed remote mem:%.3f ms (%.1f%%)\n"
        "  idle:              %.3f ms (%.1f%%)\n"
        "events: %llu  messages: %llu  host time: %.3f s\n",
        workload.c_str(), totalTime / kMs, average.compute / kMs,
        100.0 * average.compute / std::max(average.total(), 1.0),
        average.exposedComm / kMs,
        100.0 * average.exposedComm / std::max(average.total(), 1.0),
        average.exposedLocalMem / kMs,
        100.0 * average.exposedLocalMem / std::max(average.total(), 1.0),
        average.exposedRemoteMem / kMs,
        100.0 * average.exposedRemoteMem /
            std::max(average.total(), 1.0),
        average.idle / kMs,
        100.0 * average.idle / std::max(average.total(), 1.0),
        static_cast<unsigned long long>(events),
        static_cast<unsigned long long>(messages), wallSeconds);
    return buf;
}

} // namespace astra
