#include "astra/simulator.h"

#include <chrono>

#include "common/logging.h"
#include "workload/engine.h"

namespace astra {

Simulator::Simulator(Topology topo, SimulatorConfig cfg)
    : topo_(std::move(topo)), cfg_(std::move(cfg))
{
    ASTRA_USER_CHECK(!(cfg_.pooledMem && cfg_.zeroInfinityMem),
                     "configure at most one remote memory tier");
    net_ = makeNetwork(cfg_.backend, eq_, topo_);
    coll_ = std::make_unique<CollectiveEngine>(*net_);
    if (cfg_.pooledMem) {
        mem_ = std::make_unique<MemoryModel>(cfg_.localMem,
                                             *cfg_.pooledMem);
    } else if (cfg_.zeroInfinityMem) {
        mem_ = std::make_unique<MemoryModel>(cfg_.localMem,
                                             *cfg_.zeroInfinityMem);
    } else {
        mem_ = std::make_unique<MemoryModel>(cfg_.localMem);
    }
    sys_.reserve(static_cast<size_t>(topo_.npus()));
    for (NpuId n = 0; n < topo_.npus(); ++n)
        sys_.push_back(
            std::make_unique<Sys>(n, cfg_.sys, *coll_, *mem_));
}

Sys &
Simulator::sys(NpuId npu)
{
    ASTRA_ASSERT(npu >= 0 && npu < topo_.npus(), "NPU %d out of range",
                 npu);
    return *sys_[static_cast<size_t>(npu)];
}

Report
Simulator::run(const Workload &wl)
{
    ASTRA_USER_CHECK(!ran_, "a Simulator instance runs one workload; "
                            "create a fresh instance per run");
    ran_ = true;
    validateWorkload(wl, topo_.npus());

    auto host_start = std::chrono::steady_clock::now();
    ExecutionEngine engine(sys_, wl);
    TimeNs finish = engine.run();
    auto host_end = std::chrono::steady_clock::now();

    Report report;
    report.workload = wl.name;
    report.totalTime = finish;
    report.perNpu.reserve(sys_.size());
    for (auto &sys : sys_) {
        sys->tracker().finish(finish);
        report.perNpu.push_back(breakdownOf(sys->tracker()));
        report.average += report.perNpu.back();
    }
    report.average = report.average.scaled(1.0 / double(sys_.size()));
    report.events = eq_.executedEvents();
    report.messages = net_->stats().messages;
    report.bytesPerDim = net_->stats().bytesPerDim;
    report.busyTimePerDim = net_->stats().busyTimePerDim;
    report.linksPerDim = net_->stats().linksPerDim;
    report.maxLinkBusyNs = net_->stats().maxLinkBusyNs;
    report.wallSeconds =
        std::chrono::duration<double>(host_end - host_start).count();
    return report;
}

} // namespace astra
