#include "astra/simulator.h"

#include <chrono>

#include "common/json.h"
#include "common/logging.h"
#include "fault/injector.h"
#include "network/flow/flow_network.h"
#include "trace/analysis/analysis.h"
#include "workload/engine.h"

namespace astra {

Simulator::Simulator(Topology topo, SimulatorConfig cfg)
    : topo_(std::move(topo)), cfg_(std::move(cfg))
{
    ASTRA_USER_CHECK(!(cfg_.pooledMem && cfg_.zeroInfinityMem),
                     "configure at most one remote memory tier");
    net_ = makeNetwork(cfg_.backend, eq_, topo_);
    coll_ = std::make_unique<CollectiveEngine>(*net_);
    if (cfg_.pooledMem) {
        mem_ = std::make_unique<MemoryModel>(cfg_.localMem,
                                             *cfg_.pooledMem);
    } else if (cfg_.zeroInfinityMem) {
        mem_ = std::make_unique<MemoryModel>(cfg_.localMem,
                                             *cfg_.zeroInfinityMem);
    } else {
        mem_ = std::make_unique<MemoryModel>(cfg_.localMem);
    }
    sys_.reserve(static_cast<size_t>(topo_.npus()));
    for (NpuId n = 0; n < topo_.npus(); ++n)
        sys_.push_back(
            std::make_unique<Sys>(n, cfg_.sys, *coll_, *mem_));
}

Sys &
Simulator::sys(NpuId npu)
{
    ASTRA_ASSERT(npu >= 0 && npu < topo_.npus(), "NPU %d out of range",
                 npu);
    return *sys_[static_cast<size_t>(npu)];
}

Report
Simulator::run(const Workload &wl)
{
    ASTRA_USER_CHECK(!ran_, "a Simulator instance runs one workload; "
                            "create a fresh instance per run");
    ran_ = true;
    validateWorkload(wl, topo_.npus());

    auto host_start = std::chrono::steady_clock::now();
    ExecutionEngine engine(sys_, wl);
    if (cfg_.trace.enabled()) {
        tracer_ = std::make_unique<trace::Tracer>(cfg_.trace);
        tracer_->processName(0, "sim " + wl.name);
        for (NpuId n = 0; n < topo_.npus(); ++n)
            tracer_->threadName(0, n, detail::formatV("rank %d", n));
        tracer_->threadName(0, trace::Tracer::kLifecycleTid,
                            "lifecycle");
        net_->setTracer(tracer_.get());
        coll_->setTracer(tracer_.get(), 0);
        engine.setTracer(tracer_.get(), 0);
        // Self-profiling piggybacks on the tracer: queue-depth and
        // bucket-occupancy histograms always, per-callback wall
        // sampling only at full detail (it is the costlier probe).
        profile_.timeCallbacks = tracer_->full();
        eq_.setProfile(&profile_);
    }
    if (cfg_.telemetry.heartbeatsEnabled()) {
        // Heartbeat monitor (docs/observability.md): attached to the
        // event queue, purely observational. Providers read live
        // subsystem state; the engine reference is only sampled while
        // run() executes (finish() below detaches the monitor).
        monitor_ = std::make_unique<telemetry::Monitor>(cfg_.telemetry);
        monitor_->setProgress([&engine] {
            return telemetry::Progress{engine.completedNodes(),
                                       engine.totalNodes()};
        });
        monitor_->setActive([this] { return net_->activeCount(); });
        if (auto *flow = dynamic_cast<FlowNetwork *>(net_.get()))
            monitor_->setSolves([flow] { return flow->solveCount(); });
        monitor_->addFootprint("event_queue",
                               [this] { return eq_.bytesInUse(); });
        monitor_->addFootprint("network",
                               [this] { return net_->bytesInUse(); });
        monitor_->addFootprint("collectives",
                               [this] { return coll_->bytesInUse(); });
        if (tracer_)
            monitor_->addFootprint(
                "tracer", [this] { return tracer_->bytesInUse(); });
        eq_.setMonitor(monitor_.get());
    }
    // With faults active, the queue can outlive the workload (a fault
    // timeline's tail event may fire after the last node), so the
    // finish time is captured at the last completion rather than read
    // from the drained queue. Fault-free runs keep the original path —
    // setOnFinished is synchronous and schedules nothing, so the event
    // stream is bit-identical.
    TimeNs finish_at = 0.0;
    engine.setOnFinished([this, &finish_at] { finish_at = eq_.now(); });
    bool faulted = cfg_.fault && !cfg_.fault->empty();
    if (faulted) {
        fault::FaultHooks hooks;
        hooks.net = net_.get();
        hooks.computeScale = [this](NpuId n, double s) {
            sys_[static_cast<size_t>(n)]->setComputeScale(s);
        };
        hooks.active = [&engine] { return !engine.finished(); };
        injector_ = std::make_unique<fault::FaultInjector>(
            eq_, topo_, *cfg_.fault, std::move(hooks));
        if (tracer_)
            injector_->setTracer(tracer_.get(), 0);
        injector_->start();
    }
    engine.run();
    TimeNs finish = faulted ? finish_at : eq_.now();
    if (monitor_) {
        monitor_->finish(eq_.now(), eq_.executedEvents(), eq_.pending());
        eq_.setMonitor(nullptr);
    }
    auto host_end = std::chrono::steady_clock::now();

    Report report;
    report.workload = wl.name;
    report.totalTime = finish;
    report.perNpu.reserve(sys_.size());
    for (auto &sys : sys_) {
        sys->tracker().finish(finish);
        report.perNpu.push_back(breakdownOf(sys->tracker()));
        report.average += report.perNpu.back();
    }
    report.average = report.average.scaled(1.0 / double(sys_.size()));
    report.events = eq_.executedEvents();
    report.messages = net_->stats().messages;
    report.bytesPerDim = net_->stats().bytesPerDim;
    report.busyTimePerDim = net_->stats().busyTimePerDim;
    report.linksPerDim = net_->stats().linksPerDim;
    report.maxLinkBusyNs = net_->stats().maxLinkBusyNs;
    report.numFaults = injector_ ? injector_->firedCount() : 0;
    report.wallSeconds =
        std::chrono::duration<double>(host_end - host_start).count();
    if (tracer_) {
        eq_.setProfile(nullptr);
        trace::Counters &c = tracer_->counters();
        c.add("trace_events", double(tracer_->eventCount()));
        trace::addQueueProfile(profile_, c);
        net_->fillTraceCounters(c);
        if (cfg_.trace.analysis) {
            // In-memory analytics: consumes the tracer's event blocks
            // directly (no JSON round trip) and is purely
            // observational — the simulated results above are already
            // final. Runs before writeOutputs so flushed occupancy
            // spans land in the export too.
            auto a_start = std::chrono::steady_clock::now();
            trace::analysis::TraceData data =
                trace::analysis::TraceData::fromTracer(*tracer_);
            trace::analysis::AnalysisResult analysis =
                trace::analysis::analyzeTrace(data);
            report.criticalPathNs = analysis.path.lengthNs;
            for (const trace::analysis::DimCommRow &row : analysis.dims) {
                if (row.dim >= 0) {
                    if (report.traceExposedCommPerDim.size() <=
                        size_t(row.dim))
                        report.traceExposedCommPerDim.resize(
                            size_t(row.dim) + 1, 0.0);
                    report.traceExposedCommPerDim[size_t(row.dim)] =
                        row.exposedNs;
                }
            }
            if (!analysis.links.empty()) {
                report.bottleneckLink = analysis.links.front().link;
                report.bottleneckLinkShare =
                    analysis.links.front().share;
            }
            if (!cfg_.trace.analysisFile.empty())
                json::writeFile(
                    cfg_.trace.analysisFile,
                    trace::analysis::analysisToJson(analysis));
            c.addWall("wall_analysis_seconds",
                      std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - a_start)
                          .count());
        }
        double write_wall = tracer_->writeOutputs();
        c.addWall("wall_trace_write_seconds", write_wall);
        report.traceCounters = c.values;
        report.traceHistograms = c.histograms;
        report.traceWallSeconds = c.wallSeconds;
    }
    // Footprint rollup (telemetry protocol, docs/observability.md):
    // always measured — one deterministic capacity-based pass over
    // the subsystems at run end, when pool high-water marks are
    // final. Peak RSS is host state (never serialized).
    report.footprintBySubsystem.emplace_back("event_queue",
                                             eq_.bytesInUse());
    report.footprintBySubsystem.emplace_back("network",
                                             net_->bytesInUse());
    report.footprintBySubsystem.emplace_back("collectives",
                                             coll_->bytesInUse());
    if (tracer_)
        report.footprintBySubsystem.emplace_back(
            "tracer", tracer_->bytesInUse());
    for (const auto &[name, bytes] : report.footprintBySubsystem) {
        (void)name;
        report.peakFootprintBytes += bytes;
    }
    size_t flow_slots = net_->flowSlots();
    if (flow_slots > 0)
        report.bytesPerFlow =
            double(net_->bytesInUse()) / double(flow_slots);
    report.bytesPerNpu =
        double(report.peakFootprintBytes) / double(topo_.npus());
    // The beat count is only serialized under a deterministic (pure
    // event-count) cadence; see Report::telemetryHeartbeats.
    if (monitor_ && monitor_->deterministicCadence())
        report.telemetryHeartbeats = monitor_->heartbeatCount();
    report.peakRssBytes = telemetry::peakRssBytes();

    if (!cfg_.telemetry.manifest.empty()) {
        telemetry::ManifestInfo info;
        info.kind = "simulator";
        info.configHash = cfg_.telemetry.configHash;
        info.backend = backendName(cfg_.backend);
        info.topology = telemetry::topologyNotation(topo_);
        info.npus = topo_.npus();
        info.seed = cfg_.fault ? cfg_.fault->seed : 0;
        telemetry::fillManifestFromReport(info, report);
        info.wallBreakdown.emplace_back("run", report.wallSeconds);
        if (!cfg_.telemetry.file.empty())
            info.outputs.push_back(cfg_.telemetry.file);
        if (!cfg_.trace.file.empty())
            info.outputs.push_back(cfg_.trace.file);
        if (!cfg_.trace.utilizationFile.empty())
            info.outputs.push_back(cfg_.trace.utilizationFile);
        if (!cfg_.trace.analysisFile.empty())
            info.outputs.push_back(cfg_.trace.analysisFile);
        telemetry::writeManifest(cfg_.telemetry.manifest, info);
    }
    return report;
}

} // namespace astra
