/**
 * @file
 * Simulation results: end-to-end time, per-NPU and aggregate runtime
 * breakdowns (the compute / exposed comm / exposed local mem /
 * exposed remote mem / idle split of Fig. 9 and Fig. 11), and
 * simulation-speed metadata.
 */
#ifndef ASTRA_ASTRA_REPORT_H_
#define ASTRA_ASTRA_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "common/units.h"
#include "topology/topology.h"

namespace astra {

/** Result of one Simulator::run. */
struct Report
{
    std::string workload;
    TimeNs totalTime = 0.0;       //!< simulated end-to-end time.
    RuntimeBreakdown average;     //!< mean across NPUs.
    std::vector<RuntimeBreakdown> perNpu;
    uint64_t events = 0;          //!< DES events executed.
    uint64_t messages = 0;        //!< network messages simulated.
    std::vector<double> bytesPerDim; //!< network payload per dim.
    std::vector<double> busyTimePerDim; //!< link-busy ns per dim.
    std::vector<int> linksPerDim; //!< serialization points per dim.
    double maxLinkBusyNs = 0.0;   //!< busiest single link's busy ns.
    /**
     * Multi-tenant metrics (src/cluster/). For a per-job report:
     * how long the job waited in the admission queue, and its
     * co-executed duration divided by its isolated-baseline duration
     * (> 1 means shared-fabric contention slowed it down). For a
     * cluster-aggregate report: means across jobs. Plain single-job
     * Simulator runs leave both at 0 (slowdown 0 = "not measured").
     */
    double queueingDelayNs = 0.0;
    double interferenceSlowdown = 0.0;
    /**
     * Failure-resilience metrics (src/fault/, docs/fault.md).
     * `numFaults` counts injected fault events; `lostWorkNs` sums the
     * simulated time rolled back to the last checkpoint on NPU
     * failures; `recoveryTimeNs` sums failure-to-restart gaps; and
     * `goodput` is ideal fault-free time / achieved time (per job:
     * its isolated fault-free duration over its achieved duration;
     * aggregate: mean across finished jobs). 0 = "not measured" —
     * goodput needs the cluster layer's isolated baselines.
     */
    TimeNs lostWorkNs = 0.0;
    TimeNs recoveryTimeNs = 0.0;
    uint64_t numFaults = 0;
    double goodput = 0.0;
    /**
     * Failure-domain resilience metrics (docs/fault.md "Failure
     * domains & placement policies"), cluster runs only.
     * `availability` = 1 - recovery / duration (per job; aggregate:
     * mean over finished jobs); `blastRadius` = mean jobs disrupted
     * per fail incident (one NpuFail root or one whole DomainFail);
     * `recoveryP50Ns`/`recoveryP95Ns` are nearest-rank percentiles of
     * failure-to-restart gaps; `spareUtilization` is the busy
     * fraction of the reserved spare pool. All 0 ("not measured") on
     * fault-free runs, and serialized only when nonzero so plain-run
     * report JSON is unchanged.
     */
    double availability = 0.0;
    double blastRadius = 0.0;
    TimeNs recoveryP50Ns = 0.0;
    TimeNs recoveryP95Ns = 0.0;
    double spareUtilization = 0.0;
    double wallSeconds = 0.0;     //!< host wall-clock of the run.
    /**
     * Memory-accounting rollup (src/telemetry/, docs/observability.md):
     * heap bytes held by the simulator's own subsystems, sampled via
     * the bytesInUse() footprint protocol at the end of the run (when
     * pool high-water capacities are final). Capacity-based, so a
     * deterministic function of the configuration — serialized
     * unconditionally, which makes bytes/flow and bytes/NPU
     * first-class sweep metrics. `bytesPerFlow` divides the network
     * backend's footprint by its in-flight-unit pool size (0 for the
     * analytical backend, which keeps no per-message state);
     * `bytesPerNpu` divides the total footprint by the NPU count.
     * `telemetryHeartbeats` counts heartbeat records emitted —
     * deterministic (and serialized) only under a pure event-count
     * cadence, 0 otherwise. `peakRssBytes` (VmHWM) is process-wide
     * and nondeterministic: like wallSeconds it is NEVER serialized.
     */
    size_t peakFootprintBytes = 0;
    std::vector<std::pair<std::string, size_t>> footprintBySubsystem;
    double bytesPerFlow = 0.0;
    double bytesPerNpu = 0.0;
    uint64_t telemetryHeartbeats = 0;
    size_t peakRssBytes = 0;
    /**
     * Self-profiling counters (src/trace/, docs/trace.md), filled
     * only when tracing is enabled. `traceCounters` (scalars) and
     * `traceHistograms` (log2-bucketed, e.g. event-queue depth) are
     * pure functions of the configuration and are serialized when
     * non-empty — an untraced run's report JSON is byte-identical to
     * one from a build without tracing, preserving the sweep cache
     * fingerprint. `traceWallSeconds` holds per-subsystem host-time
     * attribution (solver vs callbacks vs trace export) and, like
     * `wallSeconds`, is never serialized.
     */
    std::map<std::string, double> traceCounters;
    std::map<std::string, std::vector<uint64_t>> traceHistograms;
    std::map<std::string, double> traceWallSeconds;
    /**
     * Trace-analysis results (src/trace/analysis/, docs/trace.md
     * "Analysis"), filled only when `trace.analysis` is enabled:
     * critical-path length, per-dimension exposed communication as
     * measured from the trace (chunk-phase time not covered by
     * compute/memory spans), and the busiest fabric link with its
     * busy share. Serialized only when criticalPathNs > 0, keeping
     * the default report JSON — and the sweep cache fingerprint —
     * unchanged. Like the trace counters, these are deterministic
     * functions of the configuration.
     */
    TimeNs criticalPathNs = 0.0;
    std::vector<double> traceExposedCommPerDim;
    std::string bottleneckLink;
    double bottleneckLinkShare = 0.0;

    /** Exposed-communication share of total runtime [0, 1]. */
    double exposedCommFraction() const;

    /**
     * Mean injection-bandwidth utilization of each network dimension
     * over the whole run: payload bytes sent per NPU divided by the
     * dimension's bandwidth-time product. Needs the topology the run
     * used (per-dim bandwidths).
     */
    std::vector<double> dimUtilization(const Topology &topo) const;

    /**
     * Busy fraction of the single hottest network link over the
     * whole run (hot-link saturation; what sweeps rank by). The
     * backend's NetworkStats define what a "link" is — TX ports for
     * the analytical backend, explicit directed links for the flow
     * and packet backends. For the congestion-resolving backends
     * (flow, packet) this is a physical occupancy in [0, 1]; for the
     * analytical backends it is a *demand* ratio — `analytical-pure`
     * does not serialize overlapping sends, so a value above 1 means
     * the port was asked for more than it could physically carry
     * (exactly the oversubscription a congestion-aware backend would
     * resolve into longer runtimes).
     */
    double maxLinkUtilization() const;

    /** Mean link busy fraction per dimension
     *  (busyTimePerDim / (linksPerDim * totalTime)). */
    std::vector<double> dimBusyFraction() const;

    /** Render a human-readable summary block. */
    std::string summary() const;
};

/**
 * Serialize a Report's *simulated* results to JSON. Host wall-clock
 * (`wallSeconds`) is deliberately excluded: it is nondeterministic,
 * and the sweep engine's determinism guarantee (identical stores for
 * any thread count) plus its result cache both rely on serialized
 * reports being a pure function of the configuration.
 */
json::Value reportToJson(const Report &report);

/** Inverse of reportToJson (wallSeconds comes back as 0). */
Report reportFromJson(const json::Value &doc);

} // namespace astra

#endif // ASTRA_ASTRA_REPORT_H_
