#include "trace/tracer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/cli.h"
#include "common/logging.h"
#include "event/event_queue.h"

namespace astra {
namespace trace {

void
addQueueProfile(const QueueProfile &prof, Counters &counters)
{
    auto trimmed = [](const std::array<uint64_t, 32> &hist) {
        size_t n = hist.size();
        while (n > 0 && hist[n - 1] == 0)
            --n;
        return std::vector<uint64_t>(hist.begin(), hist.begin() + n);
    };
    if (prof.depthSamples > 0) {
        counters.histograms["event_queue_depth_log2"] =
            trimmed(prof.depthHist);
        counters.add("queue_depth_samples", double(prof.depthSamples));
    }
    if (prof.bucketActivations > 0) {
        counters.histograms["event_bucket_size_log2"] =
            trimmed(prof.bucketHist);
        counters.add("queue_bucket_activations",
                     double(prof.bucketActivations));
    }
    if (prof.callbackSamples > 0) {
        counters.add("queue_callback_samples",
                     double(prof.callbackSamples));
        counters.addWall("wall_callbacks_seconds",
                         prof.callbackWallSeconds);
    }
}

const char *
detailName(Detail d)
{
    switch (d) {
      case Detail::Off:   return "off";
      case Detail::Spans: return "spans";
      case Detail::Full:  return "full";
    }
    return "?";
}

Detail
detailFromString(const std::string &name, const std::string &path)
{
    if (name == "off")
        return Detail::Off;
    if (name == "spans")
        return Detail::Spans;
    if (name == "full")
        return Detail::Full;
    fatal("%s: unknown trace detail \"%s\" (expected off|spans|full)",
          path.c_str(), name.c_str());
}

TraceConfig
traceConfigFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: expected an object",
                     path.c_str());
    static const char *known[] = {"file", "detail", "utilization_bucket_ns",
                                  "utilization_file", "rate_epsilon",
                                  "analysis", "analysis_file"};
    for (const auto &kv : doc.asObject()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || kv.first == k;
        ASTRA_USER_CHECK(ok, "%s.%s: unknown trace config key",
                         path.c_str(), kv.first.c_str());
    }
    TraceConfig cfg;
    cfg.file = doc.getString("file", "");
    cfg.detail = detailFromString(doc.getString("detail", "off"),
                                  path + ".detail");
    cfg.utilizationBucketNs = doc.getNumber("utilization_bucket_ns", 0.0);
    ASTRA_USER_CHECK(cfg.utilizationBucketNs >= 0.0,
                     "%s.utilization_bucket_ns: must be >= 0",
                     path.c_str());
    cfg.utilizationFile = doc.getString("utilization_file", "");
    cfg.rateEpsilon = doc.getNumber("rate_epsilon", 0.25);
    ASTRA_USER_CHECK(cfg.rateEpsilon >= 0.0,
                     "%s.rate_epsilon: must be >= 0", path.c_str());
    cfg.analysisFile = doc.getString("analysis_file", "");
    cfg.analysis =
        doc.getBool("analysis", false) || !cfg.analysisFile.empty();
    ASTRA_USER_CHECK(!cfg.analysis || cfg.enabled(),
                     "%s.analysis: requires detail \"spans\" or \"full\" "
                     "(the analyzers consume recorded spans)",
                     path.c_str());
    return cfg;
}

json::Value
traceConfigToJson(const TraceConfig &cfg)
{
    json::Object doc;
    doc["file"] = json::Value(cfg.file);
    doc["detail"] = json::Value(detailName(cfg.detail));
    doc["utilization_bucket_ns"] = json::Value(cfg.utilizationBucketNs);
    doc["utilization_file"] = json::Value(cfg.utilizationFile);
    doc["rate_epsilon"] = json::Value(cfg.rateEpsilon);
    doc["analysis"] = json::Value(cfg.analysis);
    doc["analysis_file"] = json::Value(cfg.analysisFile);
    return json::Value(std::move(doc));
}

TraceConfig
traceConfigFromCli(const CommandLine &cl, const char *file_flag,
                   TraceConfig base)
{
    TraceConfig cfg = std::move(base);
    if (cl.has(file_flag))
        cfg.file = cl.getString(file_flag, cfg.file);
    if (cl.has("trace-util"))
        cfg.utilizationFile = cl.getString("trace-util",
                                           cfg.utilizationFile);
    if (cl.has("trace-util-bucket"))
        cfg.utilizationBucketNs =
            cl.getDouble("trace-util-bucket", cfg.utilizationBucketNs);
    if (cl.has("trace-rate-eps"))
        cfg.rateEpsilon = cl.getDouble("trace-rate-eps", cfg.rateEpsilon);
    if (cl.has("trace-analysis-out"))
        cfg.analysisFile =
            cl.getString("trace-analysis-out", cfg.analysisFile);
    if (cl.getBool("trace-analysis") || !cfg.analysisFile.empty())
        cfg.analysis = true;
    if (cl.has("trace-detail"))
        cfg.detail = detailFromString(cl.getString("trace-detail", ""),
                                      "--trace-detail");
    else if (cfg.detail == Detail::Off &&
             (cl.has(file_flag) || cl.has("trace-util")))
        cfg.detail = Detail::Spans; // asking for output implies spans.
    // Analysis wants message + chunk-phase spans: asking for it on the
    // command line implies full detail rather than erroring like the
    // JSON path (a config file is durable; a flag is an intent).
    if (cfg.analysis && cfg.detail == Detail::Off)
        cfg.detail = Detail::Full;
    if (!cfg.utilizationFile.empty() && cfg.utilizationBucketNs <= 0.0)
        cfg.utilizationBucketNs = 1000.0;
    ASTRA_USER_CHECK(cfg.utilizationBucketNs >= 0.0,
                     "--trace-util-bucket: must be >= 0");
    ASTRA_USER_CHECK(cfg.rateEpsilon >= 0.0,
                     "--trace-rate-eps: must be >= 0");
    return cfg;
}

Tracer::Tracer(TraceConfig cfg) : cfg_(std::move(cfg))
{
    // Analysis ranks links by busy-share integrals from the sampled
    // utilization series; the flow backend has no other busy source
    // (fractional rates never emit occupancy spans). Default a bucket
    // so analysis sees link data on every backend.
    if (cfg_.analysis && cfg_.utilizationBucketNs <= 0.0)
        cfg_.utilizationBucketNs = 1000.0;
}

/** Recycled event blocks. A fresh 4 MB block costs ~a thousand page
 *  faults to fill — a measurable slice of the recording budget — so
 *  retired tracers donate their blocks (pages already resident) to the
 *  next tracer on the same thread instead of freeing them. Capped so a
 *  one-off huge trace can't pin memory forever; thread-local because
 *  sweep workers each run their own simulators. */
struct Tracer::BlockPool
{
    std::vector<std::unique_ptr<Event[]>> blocks;

    BlockPool() { ptr() = this; }
    ~BlockPool() { ptr() = nullptr; }

    /** Trivially-destructible, so it stays readable after the pool
     *  itself is gone — the ctor/dtor above keep it pointing at the
     *  live pool or null. */
    static BlockPool *&ptr()
    {
        thread_local BlockPool *p = nullptr;
        return p;
    }
};

Tracer::BlockPool *
Tracer::blockPool()
{
    // The declaration only constructs on the first pass; afterwards
    // (including after this thread's pool was destroyed — static
    // destruction order is arbitrary relative to tracer owners) the
    // self-registering pointer is the source of truth.
    thread_local BlockPool pool;
    return BlockPool::ptr();
}

Tracer::~Tracer()
{
    constexpr size_t kBlockPoolMax = 8; // x 4 MB retained per thread.
    BlockPool *pool = blockPool();
    if (pool == nullptr)
        return; // pool already torn down: just free the blocks.
    for (auto &block : blocks_) {
        if (pool->blocks.size() >= kBlockPoolMax)
            break;
        pool->blocks.push_back(std::move(block));
    }
}

void
Tracer::newBlock()
{
    // One cache line per append on LP64 (see the Event doc comment).
    static_assert(sizeof(void *) != 8 || sizeof(Event) == 64,
                  "Event outgrew a cache line — recording cost "
                  "regresses ~4x (bench_trace_overhead)");
    BlockPool *pool = blockPool();
    if (pool != nullptr && !pool->blocks.empty()) {
        blocks_.push_back(std::move(pool->blocks.back()));
        pool->blocks.pop_back();
    } else {
        // Uninitialized storage on purpose: zeroing 4 MB up front
        // would touch every page whether or not the trace grows into
        // it.
        blocks_.emplace_back(new Event[kBlockSize]);
    }
    cur_ = blocks_.back().get();
    curEnd_ = cur_ + kBlockSize;
}

void
Tracer::pushEvent(int32_t pid, int32_t tid, const char *cat,
                  const char *fmt, double ts, double dur, long long a0,
                  long long a1, long long a2)
{
    if (cur_ == curEnd_)
        newBlock();
    *cur_++ = Event{ts, dur, pid, tid, cat, fmt, a0, a1, a2};
}

void
Tracer::spanStr(int32_t pid, int32_t tid, const char *cat,
                std::string name, TimeNs ts, TimeNs dur)
{
    names_.push_back(std::move(name));
    pushEvent(pid, tid, cat, nullptr, ts, dur < 0 ? 0 : dur,
              (long long)(names_.size() - 1), 0, 0);
}

void
Tracer::instantStr(int32_t pid, int32_t tid, const char *cat,
                   std::string name, TimeNs ts)
{
    names_.push_back(std::move(name));
    pushEvent(pid, tid, cat, nullptr, ts, kInstant,
              (long long)(names_.size() - 1), 0, 0);
}

Tracer::SpanId
Tracer::beginSpan(int32_t pid, int32_t tid, const char *cat,
                  std::string name, TimeNs ts)
{
    names_.push_back(std::move(name));
    pushEvent(pid, tid, cat, nullptr, ts, kOpen,
              (long long)(names_.size() - 1), 0, 0);
    return SpanId(eventCount() - 1);
}

void
Tracer::endSpan(SpanId id, TimeNs ts)
{
    ASTRA_ASSERT(id < eventCount(), "endSpan(%u): bad span id", id);
    Event &ev = eventAt(id);
    ASTRA_ASSERT(ev.dur == kOpen, "endSpan(%u): span already closed", id);
    ev.dur = std::max(0.0, double(ts) - ev.ts);
}

void
Tracer::processName(int32_t pid, std::string name)
{
    processNames_[pid] = std::move(name);
}

void
Tracer::threadName(int32_t pid, int32_t tid, std::string name)
{
    threadNames_[{pid, tid}] = std::move(name);
}

void
Tracer::registerLink(uint32_t index, std::string label)
{
    if (index >= links_.size())
        links_.resize(index + 1);
    if (links_[index].label.empty())
        links_[index].label = std::move(label);
}

void
Tracer::accumulateBuckets(LinkState &ls, TimeNs t0, TimeNs t1,
                          double fraction)
{
    const double w = cfg_.utilizationBucketNs;
    size_t first = size_t(t0 / w);
    size_t last = size_t(t1 / w);
    if (last >= ls.busyNs.size())
        ls.busyNs.resize(last + 1, 0.0);
    for (size_t b = first; b <= last; ++b) {
        double lo = std::max(double(t0), double(b) * w);
        double hi = std::min(double(t1), double(b + 1) * w);
        if (hi > lo)
            ls.busyNs[b] += (hi - lo) * fraction;
    }
}

void
Tracer::linkBusy(uint32_t index, TimeNs t0, TimeNs t1, double fraction)
{
    if (t1 <= t0 || fraction <= 0.0)
        return;
    if (index >= links_.size())
        links_.resize(index + 1);
    LinkState &ls = links_[index];
    if (utilization())
        accumulateBuckets(ls, t0, t1, fraction);
    if (full() && fraction >= 1.0) {
        // Coalesce contiguous busy intervals into one occupancy span
        // so dense packet trains cost one event per idle gap, not one
        // per packet.
        if (ls.openT1 >= 0.0 && t0 <= ls.openT1 + 1e-9) {
            ls.openT1 = std::max(ls.openT1, double(t1));
        } else {
            if (ls.openT1 >= 0.0)
                span(0, kLinkTidBase + int32_t(index), "link", "busy",
                     ls.openT0, ls.openT1 - ls.openT0);
            ls.openT0 = t0;
            ls.openT1 = t1;
        }
    }
}

void
Tracer::flushOpenOccupancy()
{
    for (uint32_t i = 0; i < links_.size(); ++i) {
        LinkState &ls = links_[i];
        if (ls.openT1 >= 0.0) {
            span(0, kLinkTidBase + int32_t(i), "link", "busy", ls.openT0,
                 ls.openT1 - ls.openT0);
            ls.openT1 = -1.0;
        }
    }
}

std::string
Tracer::eventName(const Event &ev) const
{
    if (ev.fmt == nullptr)
        return names_[size_t(ev.a0)];
    char buf[128];
    std::snprintf(buf, sizeof(buf), ev.fmt, ev.a0, ev.a1, ev.a2);
    return buf;
}

void
Tracer::visitEvents(
    const std::function<void(const ResolvedEvent &)> &fn) const
{
    size_t n = eventCount();
    ResolvedEvent out;
    for (size_t i = 0; i < n; ++i) {
        const Event &ev = eventAt(i);
        out.ts = ev.ts;
        out.instant = ev.dur == kInstant;
        out.open = ev.dur == kOpen;
        out.dur = (out.instant || out.open) ? 0.0 : ev.dur;
        out.pid = ev.pid;
        out.tid = ev.tid;
        out.cat = ev.cat;
        out.name = eventName(ev);
        fn(out);
    }
}

namespace {

/** Minimal JSON string escaping for event/track names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

struct FileCloser
{
    std::FILE *f;
    ~FileCloser() { if (f) std::fclose(f); }
};

} // namespace

void
Tracer::writeChromeTrace(const std::string &path)
{
    flushOpenOccupancy();
    for (uint32_t i = 0; i < links_.size(); ++i)
        if (!links_[i].label.empty())
            threadName(0, kLinkTidBase + int32_t(i), links_[i].label);

    // Stable sort by timestamp: Chrome/Perfetto accept any order, but
    // sorted output gives monotonic per-track timestamps (checked by
    // tests and scripts/check_trace.py) and faster ingestion.
    std::vector<uint32_t> order(eventCount());
    for (uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return eventAt(a).ts < eventAt(b).ts;
                     });

    std::FILE *f = std::fopen(path.c_str(), "w");
    ASTRA_USER_CHECK(f, "cannot write trace file %s", path.c_str());
    FileCloser closer{f};

    std::fputs("{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[\n", f);
    bool first = true;
    auto sep = [&] {
        if (!first)
            std::fputs(",\n", f);
        first = false;
    };
    for (const auto &pn : processNames_) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
                     "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                     pn.first, jsonEscape(pn.second).c_str());
    }
    for (const auto &tn : threadNames_) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,"
                     "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                     tn.first.first, tn.first.second,
                     jsonEscape(tn.second).c_str());
    }

    uint64_t unclosed = 0;
    for (uint32_t idx : order) {
        const Event &ev = eventAt(idx);
        if (ev.dur == kOpen) {
            ++unclosed;
            continue;
        }
        sep();
        // Chrome trace timestamps are in microseconds; sub-ns
        // precision survives via the fractional digits.
        if (ev.dur == kInstant) {
            std::fprintf(f,
                         "{\"ph\":\"i\",\"name\":\"%s\",\"cat\":\"%s\","
                         "\"pid\":%d,\"tid\":%d,\"ts\":%.6f,\"s\":\"t\"}",
                         jsonEscape(eventName(ev)).c_str(), ev.cat,
                         ev.pid, ev.tid, ev.ts / 1000.0);
        } else {
            std::fprintf(f,
                         "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\","
                         "\"pid\":%d,\"tid\":%d,\"ts\":%.6f,"
                         "\"dur\":%.6f}",
                         jsonEscape(eventName(ev)).c_str(), ev.cat,
                         ev.pid, ev.tid, ev.ts / 1000.0,
                         ev.dur / 1000.0);
        }
    }
    std::fputs("\n]}\n", f);
    if (unclosed)
        counters_.add("trace_unclosed_spans", double(unclosed));
}

json::Value
Tracer::utilizationJson() const
{
    json::Object doc;
    doc["bucket_ns"] = json::Value(cfg_.utilizationBucketNs);
    json::Array links;
    for (const LinkState &ls : links_) {
        if (ls.busyNs.empty())
            continue;
        json::Object link;
        link["link"] = json::Value(ls.label);
        json::Array busy;
        busy.reserve(ls.busyNs.size());
        for (double ns : ls.busyNs)
            busy.push_back(json::Value(ns / cfg_.utilizationBucketNs));
        link["busy_fraction"] = json::Value(std::move(busy));
        links.push_back(json::Value(std::move(link)));
    }
    doc["links"] = json::Value(std::move(links));
    return json::Value(std::move(doc));
}

void
Tracer::writeUtilization(const std::string &path)
{
    ASTRA_USER_CHECK(utilization(),
                     "utilization output %s requested but "
                     "utilization_bucket_ns is 0", path.c_str());
    bool as_json = path.size() >= 5 &&
                   path.compare(path.size() - 5, 5, ".json") == 0;
    if (as_json) {
        json::writeFile(path, utilizationJson());
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASTRA_USER_CHECK(f, "cannot write utilization file %s", path.c_str());
    FileCloser closer{f};
    std::fputs("link,bucket_start_ns,busy_fraction\n", f);
    for (const LinkState &ls : links_) {
        for (size_t b = 0; b < ls.busyNs.size(); ++b) {
            if (ls.busyNs[b] <= 0.0)
                continue;
            std::fprintf(f, "%s,%.3f,%.6f\n",
                         jsonEscape(ls.label).c_str(),
                         double(b) * cfg_.utilizationBucketNs,
                         ls.busyNs[b] / cfg_.utilizationBucketNs);
        }
    }
}

double
Tracer::writeOutputs()
{
    auto t0 = std::chrono::steady_clock::now();
    if (!cfg_.file.empty()) {
        writeChromeTrace(cfg_.file);
        informT("trace", "wrote %s (%zu events)", cfg_.file.c_str(),
                eventCount());
    }
    if (!cfg_.utilizationFile.empty()) {
        writeUtilization(cfg_.utilizationFile);
        informT("trace", "wrote %s", cfg_.utilizationFile.c_str());
    }
    auto t1 = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(t1 - t0).count();
    if (!cfg_.file.empty() || !cfg_.utilizationFile.empty())
        counters_.addWall("wall_trace_write_seconds", s);
    return s;
}

} // namespace trace
} // namespace astra
