/**
 * @file
 * Cross-run trace diffing (docs/trace.md, "Analysis").
 *
 * Two runs' spans are aligned by their stable taxonomy — alignKey()
 * (track class + pid + tid + cat + normalized name) — and, within one
 * key, by ordinal: the i-th occurrence in time order on side A pairs
 * with the i-th on side B. Matched pairs contribute their duration
 * delta; unmatched spans (count changes) contribute whole durations.
 * Rows aggregate per spanKind() and sort by |delta| descending, so
 * the top row names the span population that explains most of the
 * total-time difference between the runs.
 */
#ifndef ASTRA_TRACE_ANALYSIS_DIFF_H_
#define ASTRA_TRACE_ANALYSIS_DIFF_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "trace/analysis/trace_data.h"

namespace astra {
namespace trace {
namespace analysis {

/** Per-kind aggregate of aligned span deltas. */
struct DiffKindRow
{
    std::string kind;      //!< spanKind() both sides share.
    uint64_t countA = 0;   //!< spans of this kind in run A.
    uint64_t countB = 0;
    double totalANs = 0.0; //!< duration sums.
    double totalBNs = 0.0;
    /** totalB − totalA: this kind's contribution to the run-time
     *  delta (duration drift + count changes together). */
    double deltaNs = 0.0;
    /** Σ (durB − durA) over ordinal-matched pairs only — duration
     *  drift isolated from count changes. */
    double matchedDeltaNs = 0.0;
    uint64_t matched = 0;  //!< ordinal-matched pair count.
};

struct TraceDiff
{
    double endANs = 0.0;
    double endBNs = 0.0;
    double totalDeltaNs = 0.0; //!< endB − endA.
    /** Sorted by |deltaNs| descending (kind ascending on ties). */
    std::vector<DiffKindRow> kinds;
};

TraceDiff diffTraces(const TraceData &a, const TraceData &b);

json::Value diffToJson(const TraceDiff &diff);
/** `kind,count_a,count_b,total_a_ns,total_b_ns,delta_ns,
 *  matched_delta_ns` rows in sorted order. */
std::string diffToCsv(const TraceDiff &diff);
/** Human-readable console block (trace_analyze --diff). */
std::string diffSummary(const TraceDiff &diff, size_t top_k = 12);

} // namespace analysis
} // namespace trace
} // namespace astra

#endif // ASTRA_TRACE_ANALYSIS_DIFF_H_
