#include "trace/analysis/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/table.h"
#include "common/units.h"

namespace astra {
namespace trace {
namespace analysis {

namespace {

/** Per-alignKey span durations in time order (ts, recording order —
 *  TraceData::spans is already sorted that way). */
std::map<std::string, std::vector<const Span *>>
groupByKey(const TraceData &data)
{
    std::map<std::string, std::vector<const Span *>> out;
    for (const Span &s : data.spans) {
        // Only workload-semantic tracks participate: rank timelines
        // (node spans, chunk phases, messages) and collective
        // instances. Infrastructure tracks — link occupancy, flow
        // rate segments, lifecycle markers — describe the fabric's
        // mechanism, are backend-private (rate segments only exist on
        // the flow backend), and double-count time the rank tracks
        // already carry; including them would let instrumentation
        // shape dominate a cross-backend diff.
        if (s.track != TrackClass::Rank && s.track != TrackClass::Coll)
            continue;
        out[alignKey(s)].push_back(&s);
    }
    return out;
}

} // namespace

TraceDiff
diffTraces(const TraceData &a, const TraceData &b)
{
    TraceDiff diff;
    diff.endANs = a.endNs;
    diff.endBNs = b.endNs;
    diff.totalDeltaNs = b.endNs - a.endNs;

    auto ga = groupByKey(a);
    auto gb = groupByKey(b);
    std::map<std::string, DiffKindRow> kinds;
    auto rowFor = [&](const Span &s) -> DiffKindRow & {
        return kinds[spanKind(s)];
    };
    for (const auto &[key, sa] : ga) {
        auto it = gb.find(key);
        const std::vector<const Span *> empty;
        const std::vector<const Span *> &sb =
            it == gb.end() ? empty : it->second;
        DiffKindRow &row = rowFor(*sa.front());
        size_t matched = std::min(sa.size(), sb.size());
        row.matched += matched;
        for (size_t i = 0; i < matched; ++i)
            row.matchedDeltaNs += sb[i]->dur - sa[i]->dur;
        for (const Span *s : sa) {
            ++row.countA;
            row.totalANs += s->dur;
        }
        for (const Span *s : sb) {
            ++row.countB;
            row.totalBNs += s->dur;
        }
    }
    for (const auto &[key, sb] : gb) {
        if (ga.count(key))
            continue; // handled above.
        DiffKindRow &row = rowFor(*sb.front());
        for (const Span *s : sb) {
            ++row.countB;
            row.totalBNs += s->dur;
        }
    }
    diff.kinds.reserve(kinds.size());
    for (auto &[kind, row] : kinds) {
        row.kind = kind;
        row.deltaNs = row.totalBNs - row.totalANs;
        diff.kinds.push_back(std::move(row));
    }
    std::stable_sort(diff.kinds.begin(), diff.kinds.end(),
                     [](const DiffKindRow &x, const DiffKindRow &y) {
                         double ax = std::abs(x.deltaNs);
                         double ay = std::abs(y.deltaNs);
                         if (ax != ay)
                             return ax > ay;
                         return x.kind < y.kind;
                     });
    return diff;
}

json::Value
diffToJson(const TraceDiff &diff)
{
    json::Object doc;
    doc["kind"] = json::Value("astra-trace-diff");
    doc["end_a_ns"] = json::Value(diff.endANs);
    doc["end_b_ns"] = json::Value(diff.endBNs);
    doc["total_delta_ns"] = json::Value(diff.totalDeltaNs);
    json::Array rows;
    rows.reserve(diff.kinds.size());
    for (const DiffKindRow &row : diff.kinds) {
        json::Object r;
        r["kind"] = json::Value(row.kind);
        r["count_a"] = json::Value(row.countA);
        r["count_b"] = json::Value(row.countB);
        r["total_a_ns"] = json::Value(row.totalANs);
        r["total_b_ns"] = json::Value(row.totalBNs);
        r["delta_ns"] = json::Value(row.deltaNs);
        r["matched"] = json::Value(row.matched);
        r["matched_delta_ns"] = json::Value(row.matchedDeltaNs);
        rows.push_back(json::Value(std::move(r)));
    }
    doc["kinds"] = json::Value(std::move(rows));
    return json::Value(std::move(doc));
}

std::string
diffToCsv(const TraceDiff &diff)
{
    std::string out = "kind,count_a,count_b,total_a_ns,total_b_ns,"
                      "delta_ns,matched_delta_ns\n";
    char buf[192];
    for (const DiffKindRow &row : diff.kinds) {
        std::snprintf(buf, sizeof(buf),
                      ",%llu,%llu,%.3f,%.3f,%.3f,%.3f\n",
                      static_cast<unsigned long long>(row.countA),
                      static_cast<unsigned long long>(row.countB),
                      row.totalANs, row.totalBNs, row.deltaNs,
                      row.matchedDeltaNs);
        out += csvField(row.kind);
        out += buf;
    }
    return out;
}

std::string
diffSummary(const TraceDiff &diff, size_t top_k)
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "run A end: %.3f ms   run B end: %.3f ms   delta: "
                  "%+.3f ms (%+.1f%%)\n",
                  diff.endANs / kMs, diff.endBNs / kMs,
                  diff.totalDeltaNs / kMs,
                  diff.endANs > 0.0
                      ? 100.0 * diff.totalDeltaNs / diff.endANs
                      : 0.0);
    out += buf;
    out += "span kinds by |delta|:\n";
    size_t shown = 0;
    for (const DiffKindRow &row : diff.kinds) {
        if (shown++ >= top_k)
            break;
        std::snprintf(buf, sizeof(buf),
                      "  %-32s %+10.3f ms (matched %+10.3f ms, "
                      "%llu/%llu spans)\n",
                      row.kind.c_str(), row.deltaNs / kMs,
                      row.matchedDeltaNs / kMs,
                      static_cast<unsigned long long>(row.countA),
                      static_cast<unsigned long long>(row.countB));
        out += buf;
    }
    return out;
}

} // namespace analysis
} // namespace trace
} // namespace astra
