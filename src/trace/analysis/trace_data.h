/**
 * @file
 * Normalized span model for trace analytics (docs/trace.md,
 * "Analysis").
 *
 * A TraceData is the analyzer-facing view of one run's timeline:
 * every recorded span with its track class resolved from the tid
 * namespace, message peers ("src->dst") and dimension ("d<k>") parsed
 * out of the name, plus the per-link utilization series when it was
 * sampled. It is built either directly from an in-memory Tracer (the
 * no-reparse path Simulator uses) or by loading an exported Chrome
 * trace-event JSON file (the trace_analyze CLI path) — both yield the
 * same model, so every analyzer works on live and archived traces
 * alike.
 */
#ifndef ASTRA_TRACE_ANALYSIS_TRACE_DATA_H_
#define ASTRA_TRACE_ANALYSIS_TRACE_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/tracer.h"

namespace astra {
namespace trace {
namespace analysis {

/** Which track-namespace region a span was recorded on
 *  (docs/trace.md tid table). */
enum class TrackClass {
    Rank,      //!< per-rank: node spans, chunk phases, message spans.
    Lifecycle, //!< job lifecycle + fault instants.
    Link,      //!< fabric link occupancy.
    Flow,      //!< per-source flow rate segments.
    Coll,      //!< collective-instance tracks.
};

const char *trackClassName(TrackClass c);
TrackClass trackClassOf(int32_t tid);

/** One complete span, with the name's structure parsed out. */
struct Span
{
    int32_t pid = 0;
    int32_t tid = 0;
    TrackClass track = TrackClass::Rank;
    std::string cat;
    std::string name;
    double ts = 0.0;  //!< start, simulated ns.
    double dur = 0.0; //!< duration, ns (>= 0).
    /** Topology dimension parsed from a trailing "d<k>" name token
     *  (chunk phases, message spans); -1 when absent. */
    int dim = -1;
    /** Message endpoints parsed from an "a->b" name token (net
     *  message spans, flow rate segments); -1 when absent. */
    int64_t peerSrc = -1;
    int64_t peerDst = -1;

    double end() const { return ts + dur; }
};

/** Per-link utilization series (bucket width = TraceData::bucketNs). */
struct LinkSeries
{
    std::string label;
    std::vector<double> busyNs;
};

/** See file comment. */
struct TraceData
{
    /** All complete spans, sorted by (ts, recording order). Open
     *  (never-closed) spans and instant markers are dropped — same
     *  policy as the Chrome export. */
    std::vector<Span> spans;
    double bucketNs = 0.0;         //!< 0 = no utilization series.
    std::vector<LinkSeries> links; //!< empty entries for idle links.
    double endNs = 0.0;            //!< max span end (0 if no spans).

    /** Ingest an in-memory tracer (flushes pending link occupancy
     *  first; purely observational otherwise). */
    static TraceData fromTracer(Tracer &tracer);
    /** Load an exported Chrome trace-event JSON file. Link-track
     *  labels are recovered from thread_name metadata; the
     *  utilization series is not part of the Chrome format, so
     *  `links` stays empty (link ranking falls back to occupancy
     *  spans). fatal() on unreadable/malformed files. */
    static TraceData fromChromeFile(const std::string &path);
};

/**
 * Stable span taxonomy used by the stretch table, the differ, and the
 * critical path's per-kind rollups: `cat:name` with every digit run
 * in the name collapsed to '#', except that a parsed dimension is
 * kept literal (so "coll:c# p# d1" aggregates per dimension), and the
 * flow backend's "flow a->b" message spans normalize to "msg a->b" so
 * kinds align across backends.
 */
std::string spanKind(const Span &span);

/** Per-span alignment key for cross-run diffing: track class + pid +
 *  cat + normalized-prefix name. Collective-instance spans key on
 *  their (ordinal-tagged) name alone — their tid is a pool slot, not
 *  a stable identity; rank/link/flow tracks include the tid. */
std::string alignKey(const Span &span);

} // namespace analysis
} // namespace trace
} // namespace astra

#endif // ASTRA_TRACE_ANALYSIS_TRACE_DATA_H_
