/**
 * @file
 * Trace analytics: critical-path extraction and bottleneck
 * attribution over a TraceData (docs/trace.md, "Analysis").
 *
 * Critical path — the longest dependent chain of recorded spans,
 * reconstructed backwards from the last rank-track event by exact
 * end-time matching: an incoming message span whose delivery
 * coincides with the current point hops the walk to the sender's
 * rank; otherwise the local span ending there extends the chain on
 * the same rank; otherwise the gap back to the previous activity
 * becomes an explicit "wait" segment. Segments tile [0, path end]
 * exactly, so their durations sum to the path length, which in turn
 * is bounded by the simulated total time. Off-path span time shows up
 * as per-kind slack (recorded − on-path time): spans fully overlapped
 * by the chain elsewhere did not gate the run.
 *
 * Bottleneck attribution — per-link busy-share ranking (utilization-
 * series integrals when sampled, occupancy-span integrals otherwise),
 * per-dimension exposed vs overlapped communication (chunk-phase time
 * minus the portion covered by compute/memory node spans on the same
 * rank), and the stretch table: span kinds whose total duration most
 * exceeds `count × min duration` — the kind's least-contended
 * observed instance standing in for the uncontended estimate.
 *
 * Everything here is deterministic (stable orders, no host state) and
 * purely observational.
 */
#ifndef ASTRA_TRACE_ANALYSIS_ANALYSIS_H_
#define ASTRA_TRACE_ANALYSIS_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "trace/analysis/trace_data.h"

namespace astra {
namespace trace {
namespace analysis {

/** One tile of the critical path (time-ascending, gap-free). */
struct PathSegment
{
    /** Index into TraceData::spans, or SIZE_MAX for a wait segment. */
    size_t spanIndex = size_t(-1);
    std::string kind; //!< spanKind() of the span, or "wait".
    int32_t tid = -1; //!< rank track the segment lies on.
    int dim = -1;     //!< network dimension (message/phase segments).
    double startNs = 0.0;
    double endNs = 0.0;

    double durNs() const { return endNs - startNs; }
    bool isWait() const { return spanIndex == size_t(-1); }
};

/** Per-kind rollup of rank-track span time vs the critical path. */
struct KindRollup
{
    std::string kind;
    uint64_t count = 0;    //!< spans of this kind (rank tracks).
    double totalNs = 0.0;  //!< recorded duration sum.
    double onPathNs = 0.0; //!< portion lying on the critical path.
    /** Off-path time: recorded − on-path. Fully-slack kinds were
     *  completely overlapped by the chain and did not gate the run. */
    double slackNs = 0.0;
};

/** See file comment. */
struct CriticalPath
{
    std::vector<PathSegment> segments; //!< tile [0, lengthNs].
    double lengthNs = 0.0; //!< last rank-track span end (= Σ segment).
    double waitNs = 0.0;   //!< total wait-segment time on the path.
    /** Rollups sorted by on-path time descending (kind ascending on
     *  ties); covers every rank-track span kind, on-path or not. */
    std::vector<KindRollup> rollup;
    /** On-path communication time (message + chunk-phase segments)
     *  per network dimension. */
    std::map<int, double> onPathCommByDim;
};

/** Busy share of one fabric link over the trace window. */
struct LinkShare
{
    std::string link;   //!< registered label, or "link <i>".
    double busyNs = 0.0;
    double share = 0.0; //!< busyNs / trace end.
};

/** Exposed vs overlapped communication of one network dimension. */
struct DimCommRow
{
    int dim = 0;
    double totalNs = 0.0;      //!< per-rank comm span time, summed.
    double exposedNs = 0.0;    //!< not covered by compute/memory.
    double overlappedNs = 0.0; //!< total − exposed.
};

/** One stretch-table row (see file comment). */
struct StretchRow
{
    std::string kind;
    uint64_t count = 0;
    double totalNs = 0.0;
    double minNs = 0.0;     //!< least-contended observed duration.
    double stretchNs = 0.0; //!< total − count × min.
};

struct AnalysisOptions
{
    int32_t pid = 0;       //!< process to analyze (0 = fabric).
    size_t topLinks = 5;   //!< link-ranking rows kept.
    size_t topStretch = 10; //!< stretch-table rows kept.
};

struct AnalysisResult
{
    double endNs = 0.0; //!< trace end (max span end, all tracks).
    CriticalPath path;
    std::vector<LinkShare> links;    //!< busiest first.
    std::vector<DimCommRow> dims;    //!< dimension ascending.
    std::vector<StretchRow> stretch; //!< most-stretched first.
};

CriticalPath extractCriticalPath(const TraceData &data, int32_t pid = 0);
std::vector<LinkShare> rankLinks(const TraceData &data, size_t top_k);
std::vector<DimCommRow> dimCommBreakdown(const TraceData &data,
                                         int32_t pid = 0);
std::vector<StretchRow> stretchTable(const TraceData &data,
                                     size_t top_k);

/** Run all analyzers. */
AnalysisResult analyzeTrace(const TraceData &data,
                            const AnalysisOptions &opts = {});

json::Value analysisToJson(const AnalysisResult &result);
/** Tidy CSV: `section,name,dim,count,total_ns,value_ns,share` where
 *  `value_ns` is on-path time (path_kind rows), exposed time (dim
 *  rows), stretch (stretch rows), or busy time (link rows). */
std::string analysisToCsv(const AnalysisResult &result);
/** Human-readable console block (trace_analyze). */
std::string analysisSummary(const AnalysisResult &result);

} // namespace analysis
} // namespace trace
} // namespace astra

#endif // ASTRA_TRACE_ANALYSIS_ANALYSIS_H_
