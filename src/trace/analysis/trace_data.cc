#include "trace/analysis/trace_data.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace astra {
namespace trace {
namespace analysis {

const char *
trackClassName(TrackClass c)
{
    switch (c) {
      case TrackClass::Rank:      return "rank";
      case TrackClass::Lifecycle: return "lifecycle";
      case TrackClass::Link:      return "link";
      case TrackClass::Flow:      return "flow";
      case TrackClass::Coll:      return "coll";
    }
    return "?";
}

TrackClass
trackClassOf(int32_t tid)
{
    if (tid >= Tracer::kCollTidBase)
        return TrackClass::Coll;
    if (tid >= Tracer::kFlowTidBase)
        return TrackClass::Flow;
    if (tid >= Tracer::kLinkTidBase)
        return TrackClass::Link;
    if (tid == Tracer::kLifecycleTid)
        return TrackClass::Lifecycle;
    return TrackClass::Rank;
}

namespace {

bool
allDigits(const std::string &s, size_t from, size_t to)
{
    if (from >= to)
        return false;
    for (size_t i = from; i < to; ++i)
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
    return true;
}

/** Parse the structured name tokens into the span: an "a->b" peer
 *  pair anywhere, and a trailing " d<k>" dimension token. */
void
parseNameTokens(Span &s)
{
    const std::string &n = s.name;
    size_t arrow = n.find("->");
    if (arrow != std::string::npos) {
        size_t lo = arrow;
        while (lo > 0 &&
               std::isdigit(static_cast<unsigned char>(n[lo - 1])))
            --lo;
        size_t hi = arrow + 2;
        size_t hi_end = hi;
        while (hi_end < n.size() &&
               std::isdigit(static_cast<unsigned char>(n[hi_end])))
            ++hi_end;
        if (lo < arrow && hi_end > hi) {
            s.peerSrc = std::stoll(n.substr(lo, arrow - lo));
            s.peerDst = std::stoll(n.substr(hi, hi_end - hi));
        }
    }
    size_t sp = n.rfind(' ');
    size_t tok = sp == std::string::npos ? 0 : sp + 1;
    if (tok < n.size() && n[tok] == 'd' &&
        allDigits(n, tok + 1, n.size()))
        s.dim = std::stoi(n.substr(tok + 1));
}

/** "flow a->b" message spans (flow backend) carry the same meaning as
 *  the other backends' "msg a->b"; unify so kinds and alignment keys
 *  agree across backends. */
std::string
unifiedName(const Span &s)
{
    if (s.cat == "net" && s.name.rfind("flow ", 0) == 0)
        return "msg " + s.name.substr(5);
    return s.name;
}

} // namespace

std::string
spanKind(const Span &span)
{
    std::string name = unifiedName(span);
    std::string out;
    out.reserve(span.cat.size() + name.size() + 1);
    out += span.cat;
    out += ':';
    bool in_digits = false;
    for (char c : name) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            if (!in_digits)
                out += '#';
            in_digits = true;
        } else {
            out += c;
            in_digits = false;
        }
    }
    // Keep the parsed dimension literal so kinds aggregate per dim
    // ("coll:c# p# d1", "net:msg #-># d0").
    if (span.dim >= 0 && out.size() >= 2 &&
        out.compare(out.size() - 2, 2, "d#") == 0) {
        out.erase(out.size() - 1);
        out += std::to_string(span.dim);
    }
    return out;
}

std::string
alignKey(const Span &span)
{
    std::string key = trackClassName(span.track);
    key += '|';
    key += std::to_string(span.pid);
    key += '|';
    // Collective-instance tracks are SlotPool slots: which slot an
    // instance lands on depends on backend timing, so the (ordinal-
    // tagged) name alone is the stable identity. Every other track id
    // is structural (rank, link index, source rank).
    if (span.track != TrackClass::Coll) {
        key += std::to_string(span.tid);
        key += '|';
    }
    key += span.cat;
    key += '|';
    key += unifiedName(span);
    return key;
}

TraceData
TraceData::fromTracer(Tracer &tracer)
{
    TraceData data;
    tracer.closeOccupancy();
    data.spans.reserve(tracer.eventCount());
    tracer.visitEvents([&](const Tracer::ResolvedEvent &ev) {
        if (ev.instant || ev.open)
            return; // same drop policy as the Chrome export.
        Span s;
        s.pid = ev.pid;
        s.tid = ev.tid;
        s.track = trackClassOf(ev.tid);
        s.cat = ev.cat;
        s.name = ev.name;
        s.ts = ev.ts;
        s.dur = ev.dur;
        parseNameTokens(s);
        data.spans.push_back(std::move(s));
    });
    std::stable_sort(data.spans.begin(), data.spans.end(),
                     [](const Span &a, const Span &b) {
                         return a.ts < b.ts;
                     });
    for (const Span &s : data.spans)
        data.endNs = std::max(data.endNs, s.end());
    data.bucketNs = tracer.config().utilizationBucketNs;
    for (size_t i = 0; i < tracer.linkCount(); ++i)
        data.links.push_back(
            LinkSeries{tracer.linkLabel(i), tracer.linkBusyNs(i)});
    return data;
}

TraceData
TraceData::fromChromeFile(const std::string &path)
{
    json::Value doc = json::parseFile(path);
    const json::Array *events = nullptr;
    if (doc.isArray()) {
        events = &doc.asArray();
    } else {
        ASTRA_USER_CHECK(doc.has("traceEvents"),
                         "%s: no traceEvents array", path.c_str());
        events = &doc.at("traceEvents").asArray();
    }

    TraceData data;
    for (const json::Value &ev : *events) {
        std::string ph = ev.getString("ph", "");
        if (ph == "M") {
            // Recover link-track labels from thread_name metadata.
            if (ev.getString("name", "") != "thread_name")
                continue;
            int32_t tid = static_cast<int32_t>(ev.getInt("tid", 0));
            if (trackClassOf(tid) != TrackClass::Link ||
                !ev.has("args"))
                continue;
            size_t index = size_t(tid - Tracer::kLinkTidBase);
            if (index >= data.links.size())
                data.links.resize(index + 1);
            data.links[index].label =
                ev.at("args").getString("name", "");
            continue;
        }
        if (ph != "X")
            continue; // instants don't feed the analyzers.
        Span s;
        s.pid = static_cast<int32_t>(ev.getInt("pid", 0));
        s.tid = static_cast<int32_t>(ev.getInt("tid", 0));
        s.track = trackClassOf(s.tid);
        s.cat = ev.getString("cat", "");
        s.name = ev.getString("name", "");
        // Chrome trace timestamps are microseconds (docs/trace.md).
        s.ts = ev.getNumber("ts", 0.0) * 1000.0;
        s.dur = ev.getNumber("dur", 0.0) * 1000.0;
        parseNameTokens(s);
        data.spans.push_back(std::move(s));
    }
    std::stable_sort(data.spans.begin(), data.spans.end(),
                     [](const Span &a, const Span &b) {
                         return a.ts < b.ts;
                     });
    for (const Span &s : data.spans)
        data.endNs = std::max(data.endNs, s.end());
    return data;
}

} // namespace analysis
} // namespace trace
} // namespace astra
