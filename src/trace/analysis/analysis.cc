#include "trace/analysis/analysis.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"

namespace astra {
namespace trace {
namespace analysis {

namespace {

/** End-time match tolerance. The DES hands exact timestamps to the
 *  tracer (0-delay deferrals preserve them), so dependent spans abut
 *  bit-exactly in memory; the tolerance only absorbs the micro-second
 *  rounding of a Chrome-file round trip (~1e-7 ns). */
constexpr double kEndEpsNs = 1e-3;

bool
isCommKind(const std::string &kind)
{
    return kind.rfind("net:", 0) == 0 || kind.rfind("coll:", 0) == 0;
}

/** Indices of `spans` entries, ordered by span end time (stable). */
std::vector<size_t>
sortByEnd(const std::vector<Span> &spans, std::vector<size_t> indices)
{
    std::stable_sort(indices.begin(), indices.end(),
                     [&](size_t a, size_t b) {
                         return spans[a].end() < spans[b].end();
                     });
    return indices;
}

/** Among `byEnd` (end-sorted indices), those ending within kEndEpsNs
 *  of `t`. */
void
endingAt(const std::vector<Span> &spans, const std::vector<size_t> &byEnd,
         double t, std::vector<size_t> &out)
{
    out.clear();
    auto lo = std::lower_bound(byEnd.begin(), byEnd.end(), t - kEndEpsNs,
                               [&](size_t i, double v) {
                                   return spans[i].end() < v;
                               });
    for (auto it = lo; it != byEnd.end(); ++it) {
        if (spans[*it].end() > t + kEndEpsNs)
            break;
        out.push_back(*it);
    }
}

/** Latest span end strictly before `t - kEndEpsNs` (wait target);
 *  -1 if none. */
double
latestEndBefore(const std::vector<Span> &spans,
                const std::vector<size_t> &byEnd, double t)
{
    auto it = std::lower_bound(byEnd.begin(), byEnd.end(), t - kEndEpsNs,
                               [&](size_t i, double v) {
                                   return spans[i].end() < v;
                               });
    if (it == byEnd.begin())
        return -1.0;
    return spans[*std::prev(it)].end();
}

} // namespace

CriticalPath
extractCriticalPath(const TraceData &data, int32_t pid)
{
    CriticalPath path;
    const std::vector<Span> &spans = data.spans;

    // Candidate sets, all restricted to this pid's rank tracks:
    // local spans (anything whose end is an event on its own track —
    // node execution, chunk phases) per rank, and message spans
    // (recorded on the source track, ending at delivery) per
    // *destination* rank.
    std::map<int32_t, std::vector<size_t>> local;
    std::map<int32_t, std::vector<size_t>> arrivals;
    double t_end = 0.0;
    int32_t end_tid = -1;
    size_t end_index = size_t(-1);
    for (size_t i = 0; i < spans.size(); ++i) {
        const Span &s = spans[i];
        if (s.pid != pid || s.track != TrackClass::Rank)
            continue;
        bool is_msg = s.cat == "net" && s.peerDst >= 0;
        if (is_msg)
            arrivals[int32_t(s.peerDst)].push_back(i);
        else
            local[s.tid].push_back(i);
        if (s.end() > t_end) {
            t_end = s.end();
            end_tid = is_msg ? int32_t(s.peerDst) : s.tid;
            end_index = i;
        }
    }
    (void)end_index;
    if (end_tid < 0)
        return path; // empty trace: zero-length path.
    for (auto &[tid, v] : local)
        v = sortByEnd(spans, std::move(v));
    for (auto &[tid, v] : arrivals)
        v = sortByEnd(spans, std::move(v));

    path.lengthNs = t_end;
    static const std::vector<size_t> kNone;
    auto listOf = [](const std::map<int32_t, std::vector<size_t>> &m,
                     int32_t tid) -> const std::vector<size_t> & {
        auto it = m.find(tid);
        return it == m.end() ? kNone : it->second;
    };

    int32_t cur = end_tid;
    double t = t_end;
    std::vector<size_t> candidates;
    while (t > kEndEpsNs) {
        // 1. A message delivered to this rank exactly now is the
        // dependency edge that gated progress: follow it to the
        // sender. Ties pick the longest transmission (the one that
        // constrained the longest), then recording order.
        endingAt(spans, listOf(arrivals, cur), t, candidates);
        size_t best = size_t(-1);
        for (size_t i : candidates) {
            if (spans[i].ts >= t - kEndEpsNs)
                continue; // need strict progress backwards.
            if (best == size_t(-1) || spans[i].dur > spans[best].dur ||
                (spans[i].dur == spans[best].dur && i < best))
                best = i;
        }
        if (best != size_t(-1)) {
            const Span &s = spans[best];
            path.segments.push_back(PathSegment{
                best, spanKind(s), s.tid, s.dim, s.ts, t});
            cur = s.tid; // the source rank.
            t = s.ts;
            continue;
        }
        // 2. A local span ending now extends the chain on this rank.
        // Chunk-phase spans outrank node spans (finer attribution);
        // then longest first.
        endingAt(spans, listOf(local, cur), t, candidates);
        for (size_t i : candidates) {
            if (spans[i].ts >= t - kEndEpsNs)
                continue;
            if (best == size_t(-1))
                best = i;
            else {
                bool coll_i = spans[i].cat == "coll";
                bool coll_b = spans[best].cat == "coll";
                if (coll_i != coll_b) {
                    if (coll_i)
                        best = i;
                } else if (spans[i].dur > spans[best].dur ||
                           (spans[i].dur == spans[best].dur && i < best)) {
                    best = i;
                }
            }
        }
        if (best != size_t(-1)) {
            const Span &s = spans[best];
            path.segments.push_back(PathSegment{
                best, spanKind(s), cur, s.dim, s.ts, t});
            t = s.ts;
            continue;
        }
        // 3. Nothing ends here: the rank was waiting. Tile the gap
        // back to its previous activity (or the run start).
        double prev = std::max(
            latestEndBefore(spans, listOf(local, cur), t),
            latestEndBefore(spans, listOf(arrivals, cur), t));
        if (prev < 0.0)
            prev = 0.0;
        path.segments.push_back(
            PathSegment{size_t(-1), "wait", cur, -1, prev, t});
        t = prev;
    }
    std::reverse(path.segments.begin(), path.segments.end());

    // Per-kind rollup over every rank-track span (on-path or not).
    std::map<std::string, KindRollup> kinds;
    for (size_t i = 0; i < spans.size(); ++i) {
        const Span &s = spans[i];
        if (s.pid != pid || s.track != TrackClass::Rank)
            continue;
        KindRollup &row = kinds[spanKind(s)];
        ++row.count;
        row.totalNs += s.dur;
    }
    for (const PathSegment &seg : path.segments) {
        if (seg.isWait()) {
            path.waitNs += seg.durNs();
            continue;
        }
        kinds[seg.kind].onPathNs += seg.durNs();
        if (seg.dim >= 0 && isCommKind(seg.kind))
            path.onPathCommByDim[seg.dim] += seg.durNs();
    }
    path.rollup.reserve(kinds.size());
    for (auto &[kind, row] : kinds) {
        row.kind = kind;
        row.slackNs = std::max(0.0, row.totalNs - row.onPathNs);
        path.rollup.push_back(std::move(row));
    }
    std::stable_sort(path.rollup.begin(), path.rollup.end(),
                     [](const KindRollup &a, const KindRollup &b) {
                         if (a.onPathNs != b.onPathNs)
                             return a.onPathNs > b.onPathNs;
                         return a.kind < b.kind;
                     });
    return path;
}

std::vector<LinkShare>
rankLinks(const TraceData &data, size_t top_k)
{
    // Busy integrals: the sampled utilization series is the
    // quantitative source when present (it sees fractional flow
    // rates); otherwise fall back to the 0/1 occupancy spans on the
    // link tracks.
    std::vector<double> busy(data.links.size(), 0.0);
    bool have_series = false;
    for (size_t i = 0; i < data.links.size(); ++i) {
        for (double ns : data.links[i].busyNs) {
            busy[i] += ns;
            have_series = true;
        }
    }
    if (!have_series) {
        for (const Span &s : data.spans) {
            if (s.track != TrackClass::Link)
                continue;
            size_t index = size_t(s.tid - Tracer::kLinkTidBase);
            if (index >= busy.size())
                busy.resize(index + 1, 0.0);
            busy[index] += s.dur;
        }
    }
    std::vector<size_t> order;
    for (size_t i = 0; i < busy.size(); ++i)
        if (busy[i] > 0.0)
            order.push_back(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         if (busy[a] != busy[b])
                             return busy[a] > busy[b];
                         return a < b;
                     });
    if (order.size() > top_k)
        order.resize(top_k);
    std::vector<LinkShare> out;
    out.reserve(order.size());
    for (size_t i : order) {
        LinkShare row;
        row.link = i < data.links.size() && !data.links[i].label.empty()
                       ? data.links[i].label
                       : "link " + std::to_string(i);
        row.busyNs = busy[i];
        row.share = data.endNs > 0.0 ? busy[i] / data.endNs : 0.0;
        out.push_back(std::move(row));
    }
    return out;
}

std::vector<DimCommRow>
dimCommBreakdown(const TraceData &data, int32_t pid)
{
    // Merged compute/memory intervals per rank: communication covered
    // by them is overlapped (hidden); the rest is exposed.
    std::map<int32_t, std::vector<std::pair<double, double>>> work;
    // Chunk-phase spans are the preferred comm evidence per dim; only
    // dims without any (spans-detail analytical runs) fall back to
    // message spans, which double-cover the same wire time.
    std::vector<const Span *> chunk, net;
    for (const Span &s : data.spans) {
        if (s.pid != pid || s.track != TrackClass::Rank)
            continue;
        if (s.cat == "compute" || s.cat == "memory") {
            work[s.tid].emplace_back(s.ts, s.end());
        } else if (s.dim >= 0) {
            if (s.cat == "coll")
                chunk.push_back(&s);
            else if (s.cat == "net")
                net.push_back(&s);
        }
    }
    for (auto &[tid, iv] : work) {
        std::sort(iv.begin(), iv.end());
        size_t out = 0;
        for (const auto &[lo, hi] : iv) {
            if (out > 0 && lo <= iv[out - 1].second) {
                iv[out - 1].second = std::max(iv[out - 1].second, hi);
            } else {
                iv[out++] = {lo, hi};
            }
        }
        iv.resize(out);
    }
    auto overlap = [&](const Span &s) {
        auto it = work.find(s.tid);
        if (it == work.end())
            return 0.0;
        const auto &iv = it->second;
        double covered = 0.0;
        auto first = std::upper_bound(
            iv.begin(), iv.end(),
            std::make_pair(s.ts, std::numeric_limits<double>::max()));
        if (first != iv.begin())
            --first;
        for (auto w = first; w != iv.end() && w->first < s.end(); ++w) {
            double lo = std::max(w->first, s.ts);
            double hi = std::min(w->second, s.end());
            if (hi > lo)
                covered += hi - lo;
        }
        return covered;
    };

    std::map<int, DimCommRow> rows;
    std::map<int, bool> has_chunk;
    for (const Span *s : chunk)
        has_chunk[s->dim] = true;
    for (const Span *s : chunk) {
        DimCommRow &row = rows[s->dim];
        row.totalNs += s->dur;
        row.exposedNs += s->dur - overlap(*s);
    }
    for (const Span *s : net) {
        if (has_chunk[s->dim])
            continue;
        DimCommRow &row = rows[s->dim];
        row.totalNs += s->dur;
        row.exposedNs += s->dur - overlap(*s);
    }
    std::vector<DimCommRow> out;
    out.reserve(rows.size());
    for (auto &[dim, row] : rows) {
        row.dim = dim;
        row.overlappedNs = std::max(0.0, row.totalNs - row.exposedNs);
        out.push_back(row);
    }
    return out;
}

std::vector<StretchRow>
stretchTable(const TraceData &data, size_t top_k)
{
    std::map<std::string, StretchRow> kinds;
    for (const Span &s : data.spans) {
        if (s.track != TrackClass::Rank && s.track != TrackClass::Coll)
            continue;
        if (s.dur <= 0.0)
            continue;
        StretchRow &row = kinds[spanKind(s)];
        ++row.count;
        row.totalNs += s.dur;
        row.minNs = row.count == 1 ? s.dur : std::min(row.minNs, s.dur);
    }
    std::vector<StretchRow> out;
    out.reserve(kinds.size());
    for (auto &[kind, row] : kinds) {
        row.kind = kind;
        row.stretchNs = row.totalNs - double(row.count) * row.minNs;
        out.push_back(std::move(row));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const StretchRow &a, const StretchRow &b) {
                         if (a.stretchNs != b.stretchNs)
                             return a.stretchNs > b.stretchNs;
                         return a.kind < b.kind;
                     });
    if (out.size() > top_k)
        out.resize(top_k);
    return out;
}

AnalysisResult
analyzeTrace(const TraceData &data, const AnalysisOptions &opts)
{
    AnalysisResult result;
    result.endNs = data.endNs;
    result.path = extractCriticalPath(data, opts.pid);
    result.links = rankLinks(data, opts.topLinks);
    result.dims = dimCommBreakdown(data, opts.pid);
    result.stretch = stretchTable(data, opts.topStretch);
    return result;
}

json::Value
analysisToJson(const AnalysisResult &result)
{
    json::Object doc;
    doc["kind"] = json::Value("astra-trace-analysis");
    doc["end_ns"] = json::Value(result.endNs);

    json::Object cp;
    cp["length_ns"] = json::Value(result.path.lengthNs);
    cp["wait_ns"] = json::Value(result.path.waitNs);
    json::Array segs;
    segs.reserve(result.path.segments.size());
    for (const PathSegment &seg : result.path.segments) {
        json::Object s;
        s["kind"] = json::Value(seg.kind);
        s["tid"] = json::Value(int64_t(seg.tid));
        s["dim"] = json::Value(int64_t(seg.dim));
        s["start_ns"] = json::Value(seg.startNs);
        s["end_ns"] = json::Value(seg.endNs);
        segs.push_back(json::Value(std::move(s)));
    }
    cp["segments"] = json::Value(std::move(segs));
    json::Array kinds;
    kinds.reserve(result.path.rollup.size());
    for (const KindRollup &row : result.path.rollup) {
        json::Object k;
        k["kind"] = json::Value(row.kind);
        k["count"] = json::Value(row.count);
        k["total_ns"] = json::Value(row.totalNs);
        k["on_path_ns"] = json::Value(row.onPathNs);
        k["slack_ns"] = json::Value(row.slackNs);
        kinds.push_back(json::Value(std::move(k)));
    }
    cp["kinds"] = json::Value(std::move(kinds));
    json::Array comm;
    for (const auto &[dim, ns] : result.path.onPathCommByDim) {
        json::Object c;
        c["dim"] = json::Value(int64_t(dim));
        c["on_path_ns"] = json::Value(ns);
        comm.push_back(json::Value(std::move(c)));
    }
    cp["on_path_comm_by_dim"] = json::Value(std::move(comm));
    doc["critical_path"] = json::Value(std::move(cp));

    json::Array links;
    for (const LinkShare &row : result.links) {
        json::Object l;
        l["link"] = json::Value(row.link);
        l["busy_ns"] = json::Value(row.busyNs);
        l["share"] = json::Value(row.share);
        links.push_back(json::Value(std::move(l)));
    }
    doc["links"] = json::Value(std::move(links));

    json::Array dims;
    for (const DimCommRow &row : result.dims) {
        json::Object d;
        d["dim"] = json::Value(int64_t(row.dim));
        d["total_ns"] = json::Value(row.totalNs);
        d["exposed_ns"] = json::Value(row.exposedNs);
        d["overlapped_ns"] = json::Value(row.overlappedNs);
        dims.push_back(json::Value(std::move(d)));
    }
    doc["dims"] = json::Value(std::move(dims));

    json::Array stretch;
    for (const StretchRow &row : result.stretch) {
        json::Object s;
        s["kind"] = json::Value(row.kind);
        s["count"] = json::Value(row.count);
        s["total_ns"] = json::Value(row.totalNs);
        s["min_ns"] = json::Value(row.minNs);
        s["stretch_ns"] = json::Value(row.stretchNs);
        stretch.push_back(json::Value(std::move(s)));
    }
    doc["stretch"] = json::Value(std::move(stretch));
    return json::Value(std::move(doc));
}

std::string
analysisToCsv(const AnalysisResult &result)
{
    std::string out = "section,name,dim,count,total_ns,value_ns,share\n";
    char buf[256];
    auto row = [&](const char *section, const std::string &name, int dim,
                   uint64_t count, double total, double value,
                   double share) {
        std::snprintf(buf, sizeof(buf), ",%d,%llu,%.3f,%.3f,%.6f\n",
                      dim, static_cast<unsigned long long>(count), total,
                      value, share);
        out += section;
        out += ',' + csvField(name) + buf;
    };
    for (const KindRollup &k : result.path.rollup)
        row("path_kind", k.kind, -1, k.count, k.totalNs, k.onPathNs,
            result.path.lengthNs > 0.0
                ? k.onPathNs / result.path.lengthNs
                : 0.0);
    row("path_kind", "wait", -1, 0, result.path.waitNs,
        result.path.waitNs,
        result.path.lengthNs > 0.0
            ? result.path.waitNs / result.path.lengthNs
            : 0.0);
    for (const LinkShare &l : result.links)
        row("link", l.link, -1, 0, l.busyNs, l.busyNs, l.share);
    for (const DimCommRow &d : result.dims)
        row("dim", "comm", d.dim, 0, d.totalNs, d.exposedNs,
            d.totalNs > 0.0 ? d.exposedNs / d.totalNs : 0.0);
    for (const StretchRow &s : result.stretch)
        row("stretch", s.kind, -1, s.count, s.totalNs, s.stretchNs,
            s.totalNs > 0.0 ? s.stretchNs / s.totalNs : 0.0);
    return out;
}

std::string
analysisSummary(const AnalysisResult &result)
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "trace end: %.3f ms\n"
                  "critical path: %.3f ms (%zu segments, wait %.3f ms "
                  "= %.1f%%)\n",
                  result.endNs / kMs, result.path.lengthNs / kMs,
                  result.path.segments.size(), result.path.waitNs / kMs,
                  result.path.lengthNs > 0.0
                      ? 100.0 * result.path.waitNs / result.path.lengthNs
                      : 0.0);
    out += buf;
    size_t shown = 0;
    for (const KindRollup &k : result.path.rollup) {
        if (k.onPathNs <= 0.0 || shown++ >= 8)
            break;
        std::snprintf(buf, sizeof(buf),
                      "  %-32s on-path %8.3f ms (%5.1f%%)  slack "
                      "%8.3f ms\n",
                      k.kind.c_str(), k.onPathNs / kMs,
                      100.0 * k.onPathNs / result.path.lengthNs,
                      k.slackNs / kMs);
        out += buf;
    }
    if (!result.links.empty()) {
        out += "top links by busy share:\n";
        for (const LinkShare &l : result.links) {
            std::snprintf(buf, sizeof(buf), "  %-24s busy %8.3f ms "
                          "(%5.1f%%)\n",
                          l.link.c_str(), l.busyNs / kMs,
                          100.0 * l.share);
            out += buf;
        }
    }
    if (!result.dims.empty()) {
        out += "communication exposure per dimension:\n";
        for (const DimCommRow &d : result.dims) {
            std::snprintf(buf, sizeof(buf),
                          "  d%-3d total %8.3f ms  exposed %8.3f ms  "
                          "overlapped %8.3f ms\n",
                          d.dim, d.totalNs / kMs, d.exposedNs / kMs,
                          d.overlappedNs / kMs);
            out += buf;
        }
    }
    if (!result.stretch.empty()) {
        out += "most-stretched span kinds (total - count x min):\n";
        for (const StretchRow &s : result.stretch) {
            std::snprintf(buf, sizeof(buf),
                          "  %-32s x%-6llu stretch %8.3f ms of "
                          "%8.3f ms\n",
                          s.kind.c_str(),
                          static_cast<unsigned long long>(s.count),
                          s.stretchNs / kMs, s.totalNs / kMs);
            out += buf;
        }
    }
    return out;
}

} // namespace analysis
} // namespace trace
} // namespace astra
