/**
 * @file
 * Simulation tracing & introspection layer (docs/trace.md).
 *
 * A Tracer records *simulated-time* spans and instant events from
 * every layer of the stack — workload node execution, collective
 * instances and chunk phases, per-message/flow lifetimes in the
 * network backends, fault-injector events, cluster job lifecycle —
 * and exports them as Chrome trace-event JSON (loadable in Perfetto /
 * chrome://tracing) plus an optional sampled per-link utilization
 * time-series.
 *
 * Contract with the rest of the simulator:
 *  - Zero overhead when disabled. Instrumented code holds a
 *    `trace::Tracer *` that is null by default; every hook is a
 *    single null-check. `detail: off` (the default) is bit-identical
 *    to a build without tracing.
 *  - Purely observational. The tracer never schedules events, never
 *    consumes randomness, and never feeds back into simulation
 *    state, so simulated results are bit-identical with tracing on
 *    or off at any detail level (tests/trace/ enforces this).
 *  - Recording is cheap; exporting is not free. The hot-path record
 *    call appends one POD struct (name formatting is deferred to
 *    export time), keeping the recording overhead under the 25%
 *    budget that bench_trace_overhead gates. Writing the JSON file
 *    afterwards costs I/O proportional to the trace size and is
 *    reported separately (docs/trace.md, "overhead contract").
 */
#ifndef ASTRA_TRACE_TRACER_H_
#define ASTRA_TRACE_TRACER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"

namespace astra {

struct QueueProfile;
class CommandLine;

namespace trace {

/** How much the tracer records (see docs/trace.md for the taxonomy). */
enum class Detail {
    Off,   //!< record nothing; all hooks are a null/flag check.
    Spans, //!< coarse: node spans, collective instances, job
           //!< lifecycle, fault instants.
    Full,  //!< + chunk phases, per-message/flow lifetimes, flow
           //!< rate-change segments, link port occupancy.
};

const char *detailName(Detail d);
/** Parse "off" | "spans" | "full"; fatal() otherwise (`path` names the
 *  offending config location in the error). */
Detail detailFromString(const std::string &name, const std::string &path);

/** `trace: {...}` block of Simulator/Cluster configs (sweepable). */
struct TraceConfig
{
    std::string file;          //!< Chrome trace JSON path ("" = none).
    Detail detail = Detail::Off;
    /** Utilization time-series bucket width; 0 disables sampling. */
    double utilizationBucketNs = 0.0;
    /** Utilization series output (".csv" or ".json"; "" = none). */
    std::string utilizationFile;
    /**
     * Flow-backend rate-segment coalescing threshold: a lazy
     * integration stretch whose max-min rate stays within
     * `rateEpsilon` (relative) of the open segment's opening rate
     * extends the segment instead of emitting a new one
     * (docs/trace.md). 0 emits one segment per rate change; large
     * values collapse each flow to at most one segment.
     */
    double rateEpsilon = 0.25;
    /**
     * Run the trace analytics pass (src/trace/analysis/,
     * docs/trace.md "Analysis") after the simulation: critical-path
     * extraction, bottleneck attribution, and the stretch table,
     * flowing into the Report's critical_path_ns /
     * trace_exposed_comm_per_dim_ns / bottleneck_link fields.
     * Requires detail != off (the analyzers consume recorded spans).
     */
    bool analysis = false;
    /** Analysis JSON report output path ("" = in-report only);
     *  non-empty implies `analysis`. */
    std::string analysisFile;

    bool enabled() const { return detail != Detail::Off; }
};

/** Parse a `trace` config object; unknown keys are fatal() with a
 *  path-qualified message (same discipline as fault/cluster configs). */
TraceConfig traceConfigFromJson(const json::Value &doc,
                                const std::string &path);
json::Value traceConfigToJson(const TraceConfig &cfg);

/**
 * Layer the shared tracing CLI flags over `base` (a config parsed
 * from JSON, or the default): `--<file_flag> FILE` sets the Chrome
 * trace path (and implies detail `spans` if still off),
 * `--trace-detail off|spans|full`, `--trace-util FILE` the
 * utilization series path (implying a 1000 ns bucket if none set),
 * `--trace-util-bucket NS` the bucket width, `--trace-rate-eps F` the
 * flow rate-segment coalescing threshold, and `--trace-analysis` /
 * `--trace-analysis-out FILE` the post-run analytics pass (implying
 * detail `full` if still off — the analyzers want message and
 * chunk-phase spans). `file_flag` is "trace-out" where `--trace`
 * already means an input ET file (astra_sim, trace_runner) and
 * "trace" in cluster_runner.
 */
TraceConfig traceConfigFromCli(const CommandLine &cl,
                               const char *file_flag,
                               TraceConfig base = {});

/**
 * Self-profiling counters registry: named scalar counters and
 * log2-bucketed histograms describing the simulator itself (event
 * queue depth, bucket occupancy, solver work), plus wall-clock
 * attribution per subsystem. Scalars and histograms are pure
 * functions of the configuration (deterministic); wall-seconds are
 * host measurements and are kept apart so they never leak into
 * deterministic serialization (see reportToJson).
 */
struct Counters
{
    std::map<std::string, double> values;
    std::map<std::string, std::vector<uint64_t>> histograms;
    std::map<std::string, double> wallSeconds;

    void add(const std::string &key, double v) { values[key] += v; }
    void addWall(const std::string &key, double s) { wallSeconds[key] += s; }
    bool empty() const
    {
        return values.empty() && histograms.empty() && wallSeconds.empty();
    }
};

/** Fold an EventQueue self-profile (event/event_queue.h) into the
 *  registry: depth / bucket-size histograms (trailing-zero-trimmed)
 *  and sample counts as deterministic entries, sampled callback wall
 *  time as `wall_callbacks_seconds`. */
void addQueueProfile(const QueueProfile &prof, Counters &counters);

/** See file comment. */
class Tracer
{
  public:
    /** Span/instant identifier returned by beginSpan(). */
    using SpanId = uint32_t;
    /** Sentinel for "no open span" (never returned by beginSpan()). */
    static constexpr SpanId kNoSpan = 0xffffffffu;

    /** tid namespace layout (docs/trace.md): ranks occupy [0, nranks),
     *  fabric link tracks start at kLinkTidBase, per-source flow
     *  tracks at kFlowTidBase, collective-instance tracks (one per
     *  SlotPool slot, so concurrent instances never share a track) at
     *  kCollTidBase, and job-lifecycle instants share kLifecycleTid.
     *  pid 0 is the fabric/simulator process; cluster jobs are
     *  pid = job id + 1. */
    static constexpr int32_t kLinkTidBase = 1 << 20;
    static constexpr int32_t kFlowTidBase = 1 << 21;
    static constexpr int32_t kCollTidBase = 1 << 22;
    static constexpr int32_t kLifecycleTid = kLinkTidBase - 1;

    explicit Tracer(TraceConfig cfg);
    /** Retires this tracer's event blocks into a per-thread recycle
     *  pool so the next tracer skips their page faults (tracer.cc). */
    ~Tracer();

    const TraceConfig &config() const { return cfg_; }
    /** True at detail >= spans / == full; hooks check these (or the
     *  null tracer pointer) before touching anything else. */
    bool spans() const { return cfg_.detail != Detail::Off; }
    bool full() const { return cfg_.detail == Detail::Full; }
    bool utilization() const { return cfg_.utilizationBucketNs > 0.0; }

    // ---- timeline recording -------------------------------------
    // Fast path: `cat` and `fmt` must be string literals (or anything
    // outliving the tracer); the name is snprintf(fmt, a0, a1, a2)
    // with long long args, formatted only at export time so the
    // recording cost is one POD append. Defined inline: these run
    // once per message/rate-change at detail full, and an out-of-line
    // call (ten args spilled) costs several times the append itself
    // (bench_trace_overhead).
    void span(int32_t pid, int32_t tid, const char *cat, const char *fmt,
              TimeNs ts, TimeNs dur, long long a0 = 0, long long a1 = 0,
              long long a2 = 0)
    {
        if (cur_ == curEnd_)
            newBlock();
        *cur_++ = Event{ts, dur < 0 ? 0 : double(dur), pid, tid, cat,
                        fmt, a0, a1, a2};
    }
    void instant(int32_t pid, int32_t tid, const char *cat,
                 const char *fmt, TimeNs ts, long long a0 = 0,
                 long long a1 = 0, long long a2 = 0)
    {
        if (cur_ == curEnd_)
            newBlock();
        *cur_++ = Event{ts, kInstant, pid, tid, cat, fmt, a0, a1, a2};
    }
    /** Slow path for dynamic names (node names, job ids); the string
     *  is copied. Low-volume call sites only. */
    void spanStr(int32_t pid, int32_t tid, const char *cat,
                 std::string name, TimeNs ts, TimeNs dur);
    void instantStr(int32_t pid, int32_t tid, const char *cat,
                    std::string name, TimeNs ts);

    /** Open span for state that closes later (collective instances,
     *  job lifetimes). Spans never closed are dropped at export and
     *  counted in `trace_unclosed_spans`. */
    SpanId beginSpan(int32_t pid, int32_t tid, const char *cat,
                     std::string name, TimeNs ts);
    void endSpan(SpanId id, TimeNs ts);

    /** Perfetto display metadata ("M" events). */
    void processName(int32_t pid, std::string name);
    void threadName(int32_t pid, int32_t tid, std::string name);

    // ---- per-link utilization / occupancy -----------------------
    /** Register fabric link track `index` (tid = kLinkTidBase+index)
     *  with a display label; idempotent. */
    void registerLink(uint32_t index, std::string label);
    /**
     * Account `fraction` of [t0, t1) as busy on link `index`:
     * accumulates into the sampled utilization series (when
     * utilization_bucket_ns > 0) and, at detail full with
     * fraction == 1, coalesces contiguous busy intervals into
     * occupancy spans on the link's track. Fractional rates (flow
     * backend) only feed the series — per-flow rate segments already
     * tell that story on the timeline.
     */
    void linkBusy(uint32_t index, TimeNs t0, TimeNs t1,
                  double fraction = 1.0);

    Counters &counters() { return counters_; }
    const Counters &counters() const { return counters_; }

    /** Number of timeline events recorded so far (metadata excluded). */
    size_t eventCount() const
    {
        return blocks_.empty()
                   ? 0
                   : (blocks_.size() - 1) * kBlockSize +
                         size_t(cur_ - blocks_.back().get());
    }

    /**
     * Heap bytes held by the event blocks, link tracks and name table
     * (telemetry footprint protocol, docs/observability.md). Blocks
     * are counted at full size — they are allocated whole — so this
     * is a deterministic step function of the event count.
     */
    size_t
    bytesInUse() const
    {
        size_t bytes = blocks_.size() * kBlockSize * sizeof(Event) +
                       blocks_.capacity() * sizeof(void *) +
                       names_.capacity() * sizeof(std::string) +
                       links_.capacity() * sizeof(LinkState);
        for (const LinkState &ls : links_)
            bytes += ls.busyNs.capacity() * sizeof(double);
        return bytes;
    }

    // ---- in-memory inspection (src/trace/analysis/) -------------
    /** One recorded timeline event with its deferred name resolved.
     *  `open` marks never-closed beginSpan() spans (dropped at
     *  export); `instant` marks zero-duration instant markers. */
    struct ResolvedEvent
    {
        double ts = 0.0;   //!< ns (simulated).
        double dur = 0.0;  //!< ns (0 for instants and open spans).
        int32_t pid = 0;
        int32_t tid = 0;
        const char *cat = "";
        std::string name;
        bool instant = false;
        bool open = false;
    };
    /** Visit every recorded event in recording order with its name
     *  resolved — the analysis subsystem's no-reparse ingest path.
     *  Call closeOccupancy() first if pending link occupancy spans
     *  should be included. */
    void visitEvents(
        const std::function<void(const ResolvedEvent &)> &fn) const;
    /** Flush still-open coalesced link occupancy intervals into spans
     *  (idempotent; writeChromeTrace does this implicitly). */
    void closeOccupancy() { flushOpenOccupancy(); }

    /** Registered link tracks (index = fabric link id). Labels are ""
     *  for ids never registered; the busy series is empty unless
     *  utilization sampling was on. */
    size_t linkCount() const { return links_.size(); }
    const std::string &linkLabel(size_t index) const
    {
        return links_[index].label;
    }
    /** Per-bucket busy ns of link `index` (bucket width =
     *  config().utilizationBucketNs). */
    const std::vector<double> &linkBusyNs(size_t index) const
    {
        return links_[index].busyNs;
    }

    // ---- export -------------------------------------------------
    /** Write Chrome trace-event JSON ({"traceEvents": [...]}) sorted
     *  by timestamp; fatal() if unwritable. */
    void writeChromeTrace(const std::string &path);
    /** Write the utilization series; ".json" suffix selects JSON,
     *  anything else CSV (link,bucket_start_ns,busy_fraction). */
    void writeUtilization(const std::string &path);
    /** Honor config().file / config().utilizationFile (no-ops when
     *  empty). Returns wall seconds spent writing. */
    double writeOutputs();

    /** Utilization series as JSON (tests; same data as the file). */
    json::Value utilizationJson() const;

  private:
    struct Event
    {
        double ts;   //!< ns (simulated).
        double dur;  //!< ns; kInstant / kOpen markers below.
        int32_t pid;
        int32_t tid;
        const char *cat;  //!< static string.
        /** Static printf format, or nullptr => the name is
         *  names_[a0] (the Str/beginSpan paths never use the args).
         *  Folding the index into a0 keeps the struct at 64 bytes on
         *  LP64 — one cache line per append — which is what holds
         *  full-detail recording inside the overhead budget
         *  (bench_trace_overhead: a 72-byte event straddles lines and
         *  records ~4x slower). */
        const char *fmt;
        long long a0, a1, a2;
    };
    static constexpr double kInstant = -1.0;
    static constexpr double kOpen = -2.0;

    struct LinkState
    {
        std::string label;
        std::vector<double> busyNs;  //!< per utilization bucket.
        double openT0 = 0.0, openT1 = -1.0;  //!< coalesced occupancy.
    };

    void pushEvent(int32_t pid, int32_t tid, const char *cat,
                   const char *fmt, double ts, double dur, long long a0,
                   long long a1, long long a2);
    /** Open a fresh storage block (out of line; see blocks_). */
    void newBlock();
    /** Per-thread pool of retired blocks (pages resident) that
     *  newBlock() prefers over fresh allocation; see ~Tracer().
     *  Returns null once the calling thread's pool has been torn
     *  down, so tracers outliving it (static storage) degrade to
     *  plain allocation instead of touching a dead vector. */
    struct BlockPool;
    static BlockPool *blockPool();
    Event &eventAt(size_t i)
    {
        return blocks_[i >> kBlockShift][i & (kBlockSize - 1)];
    }
    const Event &eventAt(size_t i) const
    {
        return blocks_[i >> kBlockShift][i & (kBlockSize - 1)];
    }
    void accumulateBuckets(LinkState &ls, TimeNs t0, TimeNs t1,
                           double fraction);
    void flushOpenOccupancy();
    std::string eventName(const Event &ev) const;

    /** Event storage is a list of fixed-size blocks appended through
     *  a bump pointer (cur_/curEnd_), NOT one growing vector: a
     *  doubling vector would memcpy the whole trace ~once over and
     *  refault the copied pages, which alone busts the recording
     *  budget on big traces (bench_trace_overhead). Blocks are
     *  allocated uninitialized and never move, so recording is
     *  compare + 64-byte store + bump. */
    static constexpr size_t kBlockShift = 16; //!< 64Ki events, 4 MB.
    static constexpr size_t kBlockSize = size_t(1) << kBlockShift;

    TraceConfig cfg_;
    std::vector<std::unique_ptr<Event[]>> blocks_;
    Event *cur_ = nullptr;    //!< next append slot in blocks_.back().
    Event *curEnd_ = nullptr; //!< end of blocks_.back().
    std::vector<std::string> names_;
    std::vector<LinkState> links_;
    std::map<int32_t, std::string> processNames_;
    std::map<std::pair<int32_t, int32_t>, std::string> threadNames_;
    Counters counters_;
};

} // namespace trace
} // namespace astra

#endif // ASTRA_TRACE_TRACER_H_
