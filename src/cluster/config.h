/**
 * @file
 * JSON wiring for multi-tenant cluster scenarios (docs/cluster.md).
 *
 * A cluster configuration document reuses the single-job config keys
 * (`topology`, `backend`, `system` — astra/config.h, sweep/spec.h)
 * and adds a `cluster` object describing the job mix:
 * ```json
 * {
 *   "topology": "Ring(16,100)",
 *   "backend": "flow",
 *   "system": { ... },               // default per-job system config
 *   "cluster": {
 *     "admission": "fifo" | "backfill",
 *     "baselines": true,             // isolated re-runs for slowdown
 *     "placement": "contiguous",     // default job placement policy
 *     "jobs": [
 *       {"name": "a", "arrival_ns": 0, "size": 8, "priority": 0,
 *        "count": 1,                 // replicate this spec N times
 *        "placement": "contiguous" | "spread" | "explicit",
 *        "npus": [0, 2, 4, 6],       // explicit placement only
 *        "job_topology": "Ring(4,100)",  // explicit placement only
 *        "system": { ... },          // overrides the default
 *        "workload": { ... }}        // sweep workload schema
 *     ]
 *   }
 * }
 * ```
 * Any document containing a `cluster` key is routed to the
 * ClusterSimulator by sweep::runConfig, so placement policy, job mix,
 * admission policy, and workload parameters are all sweepable axes
 * ("cluster.jobs.0.placement", "cluster.admission", ...) — including
 * one axis applied at multiple paths to move every job's placement
 * policy together.
 */
#ifndef ASTRA_CLUSTER_CONFIG_H_
#define ASTRA_CLUSTER_CONFIG_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/json.h"

namespace astra {
namespace cluster {

/** A parsed cluster configuration document. */
struct ClusterScenario
{
    Topology topo;
    ClusterConfig cfg;
    std::vector<JobSpec> jobs;
};

/** True when `doc` is a cluster configuration (has a `cluster` key). */
bool isClusterDoc(const json::Value &doc);

/** Parse a cluster configuration; fatal() on schema errors. */
ClusterScenario scenarioFromJson(const json::Value &doc);

/** Build + run a scenario document to a full ClusterReport. */
ClusterReport runClusterScenario(const json::Value &doc);

/** Sweep-facing entry: run a cluster document and return the
 *  cluster-aggregate Report (ClusterReport::aggregate). */
Report runClusterDoc(const json::Value &doc);

/** Write a commented-by-example cluster scenario (CLI scaffolding). */
void writeSampleClusterConfig(const std::string &path);

} // namespace cluster
} // namespace astra

#endif // ASTRA_CLUSTER_CONFIG_H_
