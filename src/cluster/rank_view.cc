#include "cluster/rank_view.h"

#include <utility>

#include "common/logging.h"

namespace astra {
namespace cluster {

RankViewNetwork::RankViewNetwork(NetworkApi &fabric,
                                 const Topology &job_topo,
                                 const JobPlacement &placement,
                                 uint64_t tag_salt)
    : NetworkApi(fabric.eventQueue(), job_topo), fabric_(fabric),
      placement_(placement), tagSalt_(tag_salt)
{
    ASTRA_ASSERT(job_topo.npus() == placement.size(),
                 "job topology (%d NPUs) does not match placement (%d)",
                 job_topo.npus(), placement.size());
    // Per-job traffic stats live in *cluster* dimension space so job
    // reports are comparable with fabric-level (and plain-Simulator)
    // reports; re-size the base-class arrays accordingly.
    const Topology &cluster = fabric_.topology();
    stats_.bytesPerDim.assign(static_cast<size_t>(cluster.numDims()),
                              0.0);
    stats_.busyTimePerDim.assign(
        static_cast<size_t>(cluster.numDims()), 0.0);
    stats_.linksPerDim.assign(static_cast<size_t>(cluster.numDims()), 0);
    ownBusy_.assign(static_cast<size_t>(cluster.numDims()), 0.0);
}

uint64_t
RankViewNetwork::xlatTag(uint64_t tag) const
{
    if (tag == kNoTag)
        return tag; // callback-only traffic skips matching entirely.
    uint64_t salted = tag ^ tagSalt_;
    // A user tag crafted to collide with the sentinel after salting
    // would silently skip simRecv matching — reject it loudly.
    ASTRA_USER_CHECK(salted != kNoTag,
                     "job tag %llu collides with the reserved no-tag "
                     "sentinel under this job's tag namespace",
                     static_cast<unsigned long long>(tag));
    return salted;
}

NpuId
RankViewNetwork::globalOf(NpuId local) const
{
    ASTRA_ASSERT(local >= 0 && local < static_cast<NpuId>(
                                           placement_.globalOf.size()),
                 "job-local NPU %d out of range", local);
    return placement_.globalOf[static_cast<size_t>(local)];
}

void
RankViewNetwork::simSend(NpuId src, NpuId dst, Bytes bytes, int dim,
                         uint64_t tag, SendHandlers handlers)
{
    NpuId gsrc = globalOf(src);
    NpuId gdst = globalOf(dst);

    int cluster_dim = kAutoRoute;
    if (dim != kAutoRoute) {
        ASTRA_ASSERT(dim >= 0 && dim < topo_.numDims(),
                     "simSend: bad job dimension %d", dim);
        // Explicit placements carry no dimension map (dimMap empty):
        // every send falls back to dimension-ordered routing.
        if (static_cast<size_t>(dim) < placement_.dimMap.size())
            cluster_dim = placement_.dimMap[static_cast<size_t>(dim)];
    }

    if (gsrc != gdst) {
        // Per-job traffic accounting in cluster dimension space
        // (loopbacks are not network traffic, matching the backends).
        // kAutoRoute payload goes to the first dimension the
        // dimension-ordered path crosses.
        ++stats_.messages;
        int acct = cluster_dim;
        if (acct == kAutoRoute) {
            const Topology &cluster = fabric_.topology();
            for (int d = 0; d < cluster.numDims(); ++d) {
                if (cluster.coordInDim(gsrc, d) !=
                    cluster.coordInDim(gdst, d)) {
                    acct = d;
                    break;
                }
            }
        }
        if (acct >= 0)
            stats_.bytesPerDim[static_cast<size_t>(acct)] += bytes;
    }

    // Submit under this job's busy accumulator. The backends latch
    // the owner pointer per flow/message at submission (and charge it
    // as serialization accrues), so clearing it immediately after the
    // synchronous dispatch cannot leak attribution across tenants.
    fabric_.setSendOwner(&ownBusy_);
    fabric_.simSend(gsrc, gdst, bytes, cluster_dim, xlatTag(tag),
                    std::move(handlers));
    fabric_.setSendOwner(nullptr);
}

void
RankViewNetwork::simRecv(NpuId dst, NpuId src, uint64_t tag,
                         EventCallback cb)
{
    // Deliveries happen in the fabric's matching tables (simSend is
    // forwarded), so receives must be posted there too.
    fabric_.simRecv(globalOf(dst), globalOf(src), xlatTag(tag),
                    std::move(cb));
}

} // namespace cluster
} // namespace astra
