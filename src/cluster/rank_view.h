/**
 * @file
 * Rank-translation network view for multi-tenant co-execution
 * (docs/cluster.md).
 *
 * A RankViewNetwork is the NetworkApi a *job* sees: it presents the
 * job's private sliced topology (so the collective engine derives
 * rings/trees/groups in job-local id space) and forwards every
 * simSend/simRecv to the cluster's real backend with local ids
 * translated to cluster NPUs and job dimensions translated to cluster
 * dimensions. All traffic of all jobs therefore shares one link graph
 * and one event queue — inter-job contention emerges from the backend
 * (max-min fair sharing under `flow`, store-and-forward queueing under
 * `packet`) rather than from any cluster-level model.
 *
 * Translation rules:
 *  - ids: local -> JobPlacement::globalOf[local].
 *  - dims: job dim d -> dimMap[d] when aligned (sliced placements;
 *    the translated pair then differs in exactly that cluster
 *    dimension), else kAutoRoute (explicit placements).
 *  - tags are salted with a per-job namespace in the high bits.
 *    Disjoint placements keep *concurrent* tenants from colliding in
 *    the fabric's (src, dst, tag) matching space, but NPUs are
 *    *reused over time*: a finished job's still-unmatched delivery
 *    (a send whose receiver never posted) must not satisfy a
 *    successor tenant's simRecv on the same global ids. The salt
 *    keeps every job's matching keys private across reuse; kNoTag
 *    (callback-only traffic) passes through untouched.
 *
 * The view keeps per-job traffic stats in *cluster* dimension space
 * (messages + payload bytes, attributed to the mapped dimension or
 * the first dimension a dimension-ordered path crosses). Link busy
 * time is not separable per job on a shared fabric — the cluster
 * simulator reports fabric-level busy deltas over the job's
 * residency instead (see ClusterSimulator).
 *
 * The view adds zero events and zero timing of its own, which is what
 * makes a single-job cluster run byte-identical to a plain Simulator
 * run (the equivalence the cluster tests pin down).
 */
#ifndef ASTRA_CLUSTER_RANK_VIEW_H_
#define ASTRA_CLUSTER_RANK_VIEW_H_

#include "cluster/placement.h"
#include "network/network_api.h"

namespace astra {
namespace cluster {

/** See file comment. */
class RankViewNetwork : public NetworkApi
{
  public:
    /**
     * @param fabric     the cluster's shared backend (borrowed).
     * @param job_topo   the job's sliced topology (borrowed; must
     *                   outlive the view — owned by the job runtime).
     * @param placement  local->global mapping (borrowed likewise).
     * @param tag_salt   per-job tag namespace XORed into every
     *                   non-kNoTag tag (high bits; see file comment).
     */
    RankViewNetwork(NetworkApi &fabric, const Topology &job_topo,
                    const JobPlacement &placement, uint64_t tag_salt);

    void simSend(NpuId src, NpuId dst, Bytes bytes, int dim, uint64_t tag,
                 SendHandlers handlers) override;

    void simRecv(NpuId dst, NpuId src, uint64_t tag,
                 EventCallback cb) override;

    NpuId globalOf(NpuId local) const;

    const JobPlacement &placement() const { return placement_; }
    NetworkApi &fabric() { return fabric_; }

    /**
     * This job's own link-busy time per *cluster* dimension: the
     * serialization time of this job's packets/flows/sends on fabric
     * links, attributed via the backend's send-owner channel
     * (NetworkApi::setSendOwner). Unlike the fabric-level busy deltas
     * in the cluster report (which include all co-tenants), this is
     * separable per job: each view installs its own accumulator for
     * the duration of its forwarded simSend calls, and the backends
     * charge serialization to whichever accumulator the send was
     * submitted under. Grows monotonically while the job's traffic
     * drains; read at finalize time.
     */
    const std::vector<double> &ownBusy() const { return ownBusy_; }

  private:
    uint64_t xlatTag(uint64_t tag) const;

    NetworkApi &fabric_;
    const JobPlacement &placement_;
    uint64_t tagSalt_;
    std::vector<double> ownBusy_;
};

} // namespace cluster
} // namespace astra

#endif // ASTRA_CLUSTER_RANK_VIEW_H_
