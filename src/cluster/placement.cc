#include "cluster/placement.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace astra {
namespace cluster {

namespace {

/** Slice decomposition: size = partial * prefixProduct(splitDim).
 *  splitDim == numDims (partial == 1) means "the whole cluster". */
struct SliceShape
{
    int splitDim = 0;
    int partial = 1;
};

std::vector<int>
prefixProducts(const Topology &topo)
{
    std::vector<int> p(static_cast<size_t>(topo.numDims()) + 1, 1);
    for (int d = 0; d < topo.numDims(); ++d)
        p[static_cast<size_t>(d) + 1] =
            p[static_cast<size_t>(d)] * topo.dim(d).size;
    return p;
}

std::optional<SliceShape>
shapeOf(const Topology &topo, int size)
{
    if (size < 1 || size > topo.npus())
        return std::nullopt;
    std::vector<int> p = prefixProducts(topo);
    if (size == topo.npus())
        return SliceShape{topo.numDims(), 1};
    // The unique j with P_j <= size < P_{j+1}.
    int j = 0;
    while (p[static_cast<size_t>(j) + 1] <= size)
        ++j;
    if (size % p[static_cast<size_t>(j)] != 0)
        return std::nullopt;
    int c = size / p[static_cast<size_t>(j)];
    if (topo.dim(j).size % c != 0)
        return std::nullopt;
    return SliceShape{j, c};
}

SliceShape
requireShape(const Topology &topo, int size)
{
    std::optional<SliceShape> shape = shapeOf(topo, size);
    ASTRA_USER_CHECK(shape.has_value(),
                     "job size %d is not a sub-hierarchy slice of %s: "
                     "sizes must be (product of the first j dimension "
                     "sizes) x c with c dividing dimension j's size "
                     "(use an explicit placement for irregular shapes)",
                     size, topo.notation().c_str());
    return *shape;
}

std::vector<int>
identityDimMap(int dims)
{
    std::vector<int> map(static_cast<size_t>(dims));
    for (int d = 0; d < dims; ++d)
        map[static_cast<size_t>(d)] = d;
    return map;
}

} // namespace

const char *
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::Contiguous: return "contiguous";
      case PlacementPolicy::Spread: return "spread";
      case PlacementPolicy::Explicit: return "explicit";
      case PlacementPolicy::AvoidDegraded: return "avoid_degraded";
      case PlacementPolicy::AntiAffinity: return "anti_affinity";
    }
    return "?";
}

PlacementPolicy
parsePlacementPolicy(const std::string &name)
{
    if (name == "contiguous")
        return PlacementPolicy::Contiguous;
    if (name == "spread" || name == "striped")
        return PlacementPolicy::Spread;
    if (name == "explicit")
        return PlacementPolicy::Explicit;
    if (name == "avoid_degraded")
        return PlacementPolicy::AvoidDegraded;
    if (name == "anti_affinity")
        return PlacementPolicy::AntiAffinity;
    fatal("unknown placement policy '%s' (contiguous | spread | "
          "explicit | avoid_degraded | anti_affinity)",
          name.c_str());
}

std::string
JobPlacement::describe() const
{
    char buf[96];
    if (policy == PlacementPolicy::Contiguous && !globalOf.empty()) {
        std::snprintf(buf, sizeof(buf), "contiguous[%d..%d]",
                      globalOf.front(), globalOf.back());
        return buf;
    }
    std::string out = placementPolicyName(policy);
    out += '{';
    for (size_t i = 0; i < globalOf.size(); ++i) {
        if (i == 4 && globalOf.size() > 5) {
            out += ",..";
            break;
        }
        if (i > 0)
            out += ',';
        std::snprintf(buf, sizeof(buf), "%d", globalOf[i]);
        out += buf;
    }
    out += '}';
    return out;
}

bool
sliceCompatible(const Topology &topo, int size)
{
    return shapeOf(topo, size).has_value();
}

Topology
sliceTopology(const Topology &topo, int size)
{
    SliceShape shape = requireShape(topo, size);
    std::vector<Dimension> dims;
    for (int d = 0; d < shape.splitDim; ++d)
        dims.push_back(topo.dim(d));
    if (shape.partial > 1) {
        Dimension part = topo.dim(shape.splitDim);
        part.size = shape.partial;
        dims.push_back(part);
    }
    if (dims.empty()) {
        // Single-NPU job: a degenerate one-dimension topology (no
        // sends can occur, but builders need a shape to validate).
        Dimension solo = topo.dim(0);
        solo.size = 1;
        dims.push_back(solo);
    }
    return Topology(std::move(dims));
}

PlacementManager::PlacementManager(const Topology &topo)
    : topo_(topo), busy_(static_cast<size_t>(topo.npus()), 0),
      faulted_(static_cast<size_t>(topo.npus()), 0),
      spare_(static_cast<size_t>(topo.npus()), 0), free_(topo.npus())
{
}

void
PlacementManager::markFaulted(NpuId id, bool faulted)
{
    ASTRA_ASSERT(id >= 0 && id < topo_.npus(), "NPU %d out of range", id);
    faulted_[static_cast<size_t>(id)] = faulted ? 1 : 0;
}

bool
PlacementManager::isFaulted(NpuId id) const
{
    ASTRA_ASSERT(id >= 0 && id < topo_.npus(), "NPU %d out of range", id);
    return faulted_[static_cast<size_t>(id)] != 0;
}

int
PlacementManager::faultedCount() const
{
    int n = 0;
    for (uint8_t f : faulted_)
        n += f;
    return n;
}

bool
PlacementManager::isBusy(NpuId id) const
{
    ASTRA_ASSERT(id >= 0 && id < topo_.npus(), "NPU %d out of range", id);
    return busy_[static_cast<size_t>(id)] != 0;
}

bool
PlacementManager::allFree(const std::vector<NpuId> &ids) const
{
    for (NpuId id : ids)
        if (busy_[static_cast<size_t>(id)] ||
            faulted_[static_cast<size_t>(id)] ||
            spare_[static_cast<size_t>(id)])
            return false;
    return true;
}

JobPlacement
PlacementManager::claim(PlacementPolicy policy, std::vector<NpuId> ids,
                        std::vector<int> dim_map)
{
    for (NpuId id : ids) {
        ASTRA_ASSERT(!busy_[static_cast<size_t>(id)],
                     "claiming busy NPU %d", id);
        busy_[static_cast<size_t>(id)] = 1;
    }
    free_ -= static_cast<int>(ids.size());
    JobPlacement placement;
    placement.policy = policy;
    placement.globalOf = std::move(ids);
    placement.dimMap = std::move(dim_map);
    return placement;
}

std::optional<JobPlacement>
PlacementManager::tryPlace(int size, PlacementPolicy policy)
{
    ASTRA_USER_CHECK(policy == PlacementPolicy::Contiguous ||
                         policy == PlacementPolicy::Spread,
                     "tryPlace handles contiguous/spread only "
                     "(explicit -> tryPlaceExplicit, scored policies "
                     "-> tryPlaceScored)");
    SliceShape shape = requireShape(topo_, size);
    if (size > free_)
        return std::nullopt;

    std::vector<int> p = prefixProducts(topo_);
    int job_dims = shape.splitDim + (shape.partial > 1 ? 1 : 0);
    if (job_dims == 0)
        job_dims = 1; // single-NPU job (degenerate dimension).

    std::vector<NpuId> ids(static_cast<size_t>(size));
    if (policy == PlacementPolicy::Spread && shape.partial > 1) {
        // Stripe the partial dimension: c coordinates spaced s apart.
        int pj = p[static_cast<size_t>(shape.splitDim)];
        int pj1 = p[static_cast<size_t>(shape.splitDim) + 1];
        int s = topo_.dim(shape.splitDim).size / shape.partial;
        for (int high = 0; high * pj1 < topo_.npus(); ++high) {
            for (int a = 0; a < s; ++a) {
                for (int i = 0; i < shape.partial; ++i)
                    for (int low = 0; low < pj; ++low)
                        ids[static_cast<size_t>(i * pj + low)] =
                            high * pj1 + (a + i * s) * pj + low;
                if (allFree(ids))
                    return claim(policy, std::move(ids),
                                 identityDimMap(job_dims));
            }
        }
        return std::nullopt;
    }

    // Contiguous (and the degenerate c == 1 spread): aligned blocks
    // [base, base + size) at multiples of the job size. Alignment
    // guarantees the block is a coordinate box of the hierarchy.
    for (NpuId base = 0; base + size <= topo_.npus(); base += size) {
        for (int l = 0; l < size; ++l)
            ids[static_cast<size_t>(l)] = base + l;
        if (allFree(ids))
            return claim(policy, std::move(ids),
                         identityDimMap(job_dims));
    }
    return std::nullopt;
}

std::optional<JobPlacement>
PlacementManager::tryPlaceScored(int size, PlacementPolicy policy,
                                 const SliceScorer &score)
{
    ASTRA_USER_CHECK(policy == PlacementPolicy::AvoidDegraded ||
                         policy == PlacementPolicy::AntiAffinity,
                     "tryPlaceScored handles avoid_degraded/"
                     "anti_affinity only");
    ASTRA_ASSERT(score, "scored placement without a scorer");
    SliceShape shape = requireShape(topo_, size);
    if (size > free_)
        return std::nullopt;

    std::vector<int> p = prefixProducts(topo_);
    int job_dims = shape.splitDim + (shape.partial > 1 ? 1 : 0);
    if (job_dims == 0)
        job_dims = 1; // single-NPU job (degenerate dimension).

    std::vector<NpuId> ids(static_cast<size_t>(size));
    std::vector<NpuId> best;
    double bestScore = 0.0;
    auto consider = [&] {
        if (!allFree(ids))
            return;
        double s = score(ids);
        if (best.empty() || s < bestScore) {
            best = ids;
            bestScore = s;
        }
    };

    // Aligned contiguous blocks — the same candidate set tryPlace
    // enumerates, but every feasible one is scored instead of taking
    // the first.
    for (NpuId base = 0; base + size <= topo_.npus(); base += size) {
        for (int l = 0; l < size; ++l)
            ids[static_cast<size_t>(l)] = base + l;
        consider();
    }

    // Anti-affinity also considers spread stripes: striping across the
    // split dimension is how a job straddles failure domains.
    if (policy == PlacementPolicy::AntiAffinity && shape.partial > 1) {
        int pj = p[static_cast<size_t>(shape.splitDim)];
        int pj1 = p[static_cast<size_t>(shape.splitDim) + 1];
        int s = topo_.dim(shape.splitDim).size / shape.partial;
        for (int high = 0; high * pj1 < topo_.npus(); ++high) {
            for (int a = 0; a < s; ++a) {
                for (int i = 0; i < shape.partial; ++i)
                    for (int low = 0; low < pj; ++low)
                        ids[static_cast<size_t>(i * pj + low)] =
                            high * pj1 + (a + i * s) * pj + low;
                consider();
            }
        }
    }

    if (best.empty())
        return std::nullopt;
    return claim(policy, std::move(best), identityDimMap(job_dims));
}

void
PlacementManager::reserveSpares(const std::vector<NpuId> &ids)
{
    for (NpuId id : ids) {
        ASTRA_USER_CHECK(id >= 0 && id < topo_.npus(),
                         "spare NPU %d out of range (cluster has %d)",
                         id, topo_.npus());
        ASTRA_USER_CHECK(!busy_[static_cast<size_t>(id)],
                         "spare NPU %d is already placed", id);
        ASTRA_USER_CHECK(!spare_[static_cast<size_t>(id)],
                         "spare NPU %d reserved twice", id);
        spare_[static_cast<size_t>(id)] = 1;
    }
    free_ -= static_cast<int>(ids.size());
}

std::optional<JobPlacement>
PlacementManager::trySpareSwap(const JobPlacement &placement)
{
    std::vector<size_t> failedRanks;
    for (size_t r = 0; r < placement.globalOf.size(); ++r)
        if (faulted_[static_cast<size_t>(placement.globalOf[r])])
            failedRanks.push_back(r);
    ASTRA_ASSERT(!failedRanks.empty(),
                 "spare swap on a placement with no faulted NPUs");

    std::vector<NpuId> spares;
    for (NpuId id = 0;
         id < topo_.npus() && spares.size() < failedRanks.size(); ++id)
        if (spare_[static_cast<size_t>(id)] &&
            !faulted_[static_cast<size_t>(id)])
            spares.push_back(id);
    if (spares.size() < failedRanks.size())
        return std::nullopt;

    JobPlacement swapped;
    swapped.policy = PlacementPolicy::Explicit;
    swapped.globalOf = placement.globalOf;
    // Unaligned after the swap: translated sends fall back to
    // dimension-ordered routing (kAutoRoute), like any explicit
    // placement.
    swapped.dimMap.clear();
    for (size_t i = 0; i < failedRanks.size(); ++i) {
        NpuId failed = placement.globalOf[failedRanks[i]];
        NpuId fresh = spares[i];
        ASTRA_ASSERT(busy_[static_cast<size_t>(failed)],
                     "swapping NPU %d the job does not hold", failed);
        busy_[static_cast<size_t>(failed)] = 0;
        ++free_; // Back to the general pool (still marked faulted).
        spare_[static_cast<size_t>(fresh)] = 0; // Consumed for good.
        busy_[static_cast<size_t>(fresh)] = 1;
        swapped.globalOf[failedRanks[i]] = fresh;
    }
    return swapped;
}

int
PlacementManager::spareCount() const
{
    int n = 0;
    for (uint8_t s : spare_)
        n += s;
    return n;
}

int
PlacementManager::spareFreeCount() const
{
    int n = 0;
    for (size_t i = 0; i < spare_.size(); ++i)
        if (spare_[i] && !faulted_[i])
            ++n;
    return n;
}

bool
PlacementManager::isSpare(NpuId id) const
{
    ASTRA_ASSERT(id >= 0 && id < topo_.npus(), "NPU %d out of range", id);
    return spare_[static_cast<size_t>(id)] != 0;
}

std::optional<JobPlacement>
PlacementManager::tryPlaceExplicit(const std::vector<NpuId> &npus)
{
    ASTRA_USER_CHECK(!npus.empty(), "explicit placement with no NPUs");
    std::vector<uint8_t> seen(static_cast<size_t>(topo_.npus()), 0);
    for (NpuId id : npus) {
        ASTRA_USER_CHECK(id >= 0 && id < topo_.npus(),
                         "explicit placement NPU %d out of range "
                         "(cluster has %d)",
                         id, topo_.npus());
        ASTRA_USER_CHECK(!seen[static_cast<size_t>(id)],
                         "explicit placement lists NPU %d twice", id);
        seen[static_cast<size_t>(id)] = 1;
    }
    if (!allFree(npus))
        return std::nullopt;
    // No dimension alignment is assumed: the rank view routes every
    // translated send dimension-ordered (kAutoRoute).
    return claim(PlacementPolicy::Explicit, npus, {});
}

void
PlacementManager::release(const JobPlacement &placement)
{
    for (NpuId id : placement.globalOf) {
        ASTRA_ASSERT(busy_[static_cast<size_t>(id)],
                     "releasing free NPU %d", id);
        busy_[static_cast<size_t>(id)] = 0;
    }
    free_ += static_cast<int>(placement.globalOf.size());
}

} // namespace cluster
} // namespace astra
