#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/table.h"
#include "network/flow/flow_network.h"
#include "sweep/spec.h"

namespace astra {
namespace cluster {

namespace {

std::unique_ptr<MemoryModel>
makeMemory(const SimulatorConfig &cfg)
{
    ASTRA_USER_CHECK(!(cfg.pooledMem && cfg.zeroInfinityMem),
                     "configure at most one remote memory tier per job");
    if (cfg.pooledMem)
        return std::make_unique<MemoryModel>(cfg.localMem,
                                             *cfg.pooledMem);
    if (cfg.zeroInfinityMem)
        return std::make_unique<MemoryModel>(cfg.localMem,
                                             *cfg.zeroInfinityMem);
    return std::make_unique<MemoryModel>(cfg.localMem);
}

} // namespace

const char *
admissionPolicyName(AdmissionPolicy p)
{
    switch (p) {
      case AdmissionPolicy::Fifo: return "fifo";
      case AdmissionPolicy::Backfill: return "backfill";
    }
    return "?";
}

AdmissionPolicy
parseAdmissionPolicy(const std::string &name)
{
    if (name == "fifo")
        return AdmissionPolicy::Fifo;
    if (name == "backfill")
        return AdmissionPolicy::Backfill;
    fatal("unknown admission policy '%s' (fifo | backfill)",
          name.c_str());
}

/**
 * The per-job execution stack: rank-translation view, collective
 * engine, memory model, per-NPU system layers, execution engine.
 * Built by ClusterSimulator::buildStack for both the co-executed run
 * (on the shared fabric) and the isolated baseline (on a fresh one).
 */
struct ClusterSimulator::JobStack
{
    /** By-value placement copy: each incarnation's rank view
     *  references its own stack's placement, so ghost traffic of an
     *  abandoned incarnation stays correctly addressed even after
     *  the job is re-placed elsewhere (requeue restart). */
    JobPlacement placement;
    std::unique_ptr<RankViewNetwork> view;
    std::unique_ptr<CollectiveEngine> coll;
    std::unique_ptr<MemoryModel> mem;
    std::vector<std::unique_ptr<Sys>> sys;
    std::unique_ptr<ExecutionEngine> engine;
};

/**
 * One job's full runtime state. Heap-allocated (stable addresses: the
 * network view borrows the job topology, the collective engine
 * borrows the view, the system layers borrow both) and kept alive
 * until the ClusterSimulator dies — trailing fabric events may still
 * reference a finished job's callbacks.
 */
struct ClusterSimulator::JobRuntime
{
    int id = -1;
    JobSpec spec;
    Topology jobTopo;
    Workload wl;

    std::optional<JobPlacement> placement;
    std::unique_ptr<JobStack> stack;
    /**
     * Stacks of abandoned incarnations (NPU failures). Kept alive
     * until the ClusterSimulator dies: their ghost flows/messages
     * still reference the cancelled engine's callbacks and the
     * view's busy accumulators. unique_ptr (not by-value moves)
     * keeps every borrowed address stable.
     */
    std::vector<std::unique_ptr<JobStack>> graveyard;

    bool done = false;
    bool running = false;
    TimeNs admitted = 0.0;
    TimeNs finished = 0.0;
    TimeNs isolated = 0.0;

    // Failure-resilience state (docs/fault.md).
    fault::CheckpointPolicy ckpt;
    int incarnation = 0;          //!< bumped on every NPU failure.
    int restarts = 0;             //!< incarnations actually launched.
    uint64_t faults = 0;          //!< NPU failures that hit this job.
    std::vector<uint8_t> snapshot; //!< last checkpoint (done flags).
    TimeNs lastSnapshot = 0.0;    //!< checkpoint time (or launch).
    TimeNs incarnationStart = 0.0; //!< launch time of this incarnation.
    TimeNs lostWork = 0.0;        //!< rolled-back simulated time.
    TimeNs recovery = 0.0;        //!< failure-to-restart gaps.
    TimeNs failedAt = 0.0;        //!< time of the last failure.
    bool waitingRecovery = false; //!< restart-in-place pending.
    bool failed = false;          //!< permanent failure (see error).
    std::string error;
    /** Open lifecycle span of the running incarnation
     *  (Tracer::kNoSpan when tracing is off or not running). */
    uint32_t traceSpan = trace::Tracer::kNoSpan;

    // Fabric snapshots bracketing the residency (per-job report).
    uint64_t eventsAtAdmit = 0;
    uint64_t eventsAtFinish = 0;
    std::vector<double> busyAtAdmit;
    std::vector<double> busyAtFinish;
    double maxLinkAtFinish = 0.0;

    JobRuntime(JobSpec s, Topology jt, Workload w)
        : spec(std::move(s)), jobTopo(std::move(jt)), wl(std::move(w))
    {
    }
};

ClusterSimulator::ClusterSimulator(Topology topo, ClusterConfig cfg)
    : topo_(std::move(topo)), cfg_(std::move(cfg)),
      net_(makeNetwork(cfg_.backend, eq_, topo_)), placer_(topo_),
      npuComputeScale_(static_cast<size_t>(topo_.npus()), 1.0)
{
}

ClusterSimulator::~ClusterSimulator() = default;

int
ClusterSimulator::addJob(JobSpec spec)
{
    ASTRA_USER_CHECK(!ran_, "addJob after run()");
    ASTRA_USER_CHECK(spec.arrival >= 0.0,
                     "job '%s': negative arrival time",
                     spec.name.c_str());
    ASTRA_USER_CHECK(spec.workload.has_value() !=
                         !spec.workloadDoc.isNull(),
                     "job '%s': set exactly one of workload / "
                     "workloadDoc",
                     spec.name.c_str());

    Topology job_topo = [&] {
        if (spec.placement == PlacementPolicy::Explicit) {
            ASTRA_USER_CHECK(!spec.explicitNpus.empty(),
                             "job '%s': explicit placement needs "
                             "'npus'",
                             spec.name.c_str());
            int n = static_cast<int>(spec.explicitNpus.size());
            if (spec.explicitTopo) {
                ASTRA_USER_CHECK(
                    spec.explicitTopo->npus() == n,
                    "job '%s': job topology has %d NPUs but the "
                    "explicit placement lists %d",
                    spec.name.c_str(), spec.explicitTopo->npus(), n);
                return *spec.explicitTopo;
            }
            // Default shape for irregular placements: one flat
            // switch dimension with the cluster's innermost link
            // parameters (timing still comes from the real fabric).
            Dimension flat = topo_.dim(0);
            flat.type = BlockType::Switch;
            flat.size = n;
            return Topology({flat});
        }
        ASTRA_USER_CHECK(spec.size >= 1 && spec.size <= topo_.npus(),
                         "job '%s': size %d out of range (cluster has "
                         "%d NPUs)",
                         spec.name.c_str(), spec.size, topo_.npus());
        return sliceTopology(topo_, spec.size); // fatal if incompatible.
    }();

    Workload wl = spec.workload
                      ? *spec.workload
                      : sweep::workloadFromSpec(job_topo,
                                                spec.workloadDoc);
    validateWorkload(wl, job_topo.npus());

    auto job = std::make_unique<JobRuntime>(
        std::move(spec), std::move(job_topo), std::move(wl));
    job->id = static_cast<int>(jobs_.size());
    if (job->spec.name.empty())
        job->spec.name = "job" + std::to_string(job->id);
    job->ckpt = job->spec.checkpoint ? *job->spec.checkpoint
                                     : cfg_.defaultCheckpoint;
    jobs_.push_back(std::move(job));
    return jobs_.back()->id;
}

void
ClusterSimulator::buildStack(JobRuntime &job, NetworkApi &fabric,
                             JobStack &stack, bool shared)
{
    // Per-job tag namespace: NPUs are reused over time, so a
    // finished tenant's unmatched deliveries must never satisfy a
    // successor's receives on the same global ids (rank_view.h).
    // Restarted jobs additionally salt with the incarnation: the
    // ghost traffic of an abandoned incarnation must never match the
    // replacement's receives either. Incarnation 0 keeps the
    // original salt bit-exactly.
    uint64_t salt = (static_cast<uint64_t>(job.id) + 1) << 48;
    if (shared)
        salt ^= static_cast<uint64_t>(job.incarnation & 0xff) << 40;
    stack.placement = *job.placement;
    stack.view = std::make_unique<RankViewNetwork>(
        fabric, job.jobTopo, stack.placement, salt);
    stack.coll = std::make_unique<CollectiveEngine>(*stack.view);
    stack.mem = makeMemory(job.spec.cfg);
    stack.sys.reserve(static_cast<size_t>(job.jobTopo.npus()));
    TimeNs now = fabric.eventQueue().now();
    for (NpuId n = 0; n < job.jobTopo.npus(); ++n) {
        stack.sys.push_back(std::make_unique<Sys>(
            n, job.spec.cfg.sys, *stack.coll, *stack.mem));
        stack.sys.back()->tracker().alignStart(now);
        if (shared) {
            // Straggler faults outlive job turnover: a new tenant on
            // a slowed NPU inherits its compute scale.
            double scale = npuComputeScale_[static_cast<size_t>(
                stack.placement.globalOf[static_cast<size_t>(n)])];
            if (scale != 1.0)
                stack.sys.back()->setComputeScale(scale);
        }
    }
    const std::vector<uint8_t> *resume =
        shared && job.incarnation > 0 && !job.snapshot.empty()
            ? &job.snapshot
            : nullptr;
    stack.engine =
        std::make_unique<ExecutionEngine>(stack.sys, job.wl, resume);
    // Only the co-executed stack is traced: the isolated baseline
    // runs on its own throwaway fabric and would pollute the shared
    // timeline with duplicate spans at wrong (restarted) clocks.
    if (shared && tracer_) {
        int32_t pid = job.id + 1;
        stack.engine->setTracer(tracer_.get(), pid);
        stack.coll->setTracer(tracer_.get(), pid);
        for (NpuId n = 0; n < job.jobTopo.npus(); ++n)
            tracer_->threadName(
                pid, n,
                detail::formatV(
                    "rank %d g%d", n,
                    stack.placement.globalOf[static_cast<size_t>(n)]));
    }
}

void
ClusterSimulator::launch(JobRuntime &job)
{
    job.stack = std::make_unique<JobStack>();
    buildStack(job, *net_, *job.stack, /*shared=*/true);
    size_t index = static_cast<size_t>(job.id);
    job.stack->engine->setOnFinished(
        [this, index] { onJobFinished(index); });

    if (job.incarnation == 0) {
        job.admitted = eq_.now();
        job.eventsAtAdmit = eq_.executedEvents();
        job.busyAtAdmit = net_->stats().busyTimePerDim;
    } else {
        // Relaunch after an NPU failure: the original admission
        // metrics stand (duration spans all incarnations); account
        // the failure-to-restart gap instead.
        ++job.restarts;
        job.recovery += eq_.now() - job.failedAt;
        recoveryGaps_.push_back(eq_.now() - job.failedAt);
    }
    if (job.ckpt.autoInterval && job.ckpt.intervalNs <= 0.0)
        resolveAutoInterval(job);
    job.lastSnapshot = eq_.now();
    job.incarnationStart = eq_.now();
    job.running = true;
    ++runningJobs_;
    debugT("cluster", "t=%.0f job '%s' starting (incarnation %d)",
           eq_.now(), job.spec.name.c_str(), job.incarnation);
    if (tracer_) {
        if (job.incarnation > 0)
            tracer_->instantStr(job.id + 1, trace::Tracer::kLifecycleTid,
                                "job", "restart " + job.spec.name,
                                eq_.now());
        job.traceSpan = tracer_->beginSpan(
            job.id + 1, trace::Tracer::kLifecycleTid, "job",
            job.incarnation == 0
                ? "run " + job.spec.name
                : detail::formatV("run %s inc%d", job.spec.name.c_str(),
                                  job.incarnation),
            eq_.now());
    }
    job.stack->engine->start();
    scheduleCheckpoint(index);
}

bool
ClusterSimulator::admit(JobRuntime &job)
{
    std::optional<JobPlacement> placement;
    switch (job.spec.placement) {
      case PlacementPolicy::Explicit:
        placement = placer_.tryPlaceExplicit(job.spec.explicitNpus);
        break;
      case PlacementPolicy::AvoidDegraded:
      case PlacementPolicy::AntiAffinity:
        placement = placer_.tryPlaceScored(
            job.jobTopo.npus(), job.spec.placement,
            sliceScorer(job.spec.placement));
        break;
      default:
        placement =
            placer_.tryPlace(job.jobTopo.npus(), job.spec.placement);
        break;
    }
    if (!placement)
        return false;
    job.placement = std::move(*placement);
    launch(job);
    return true;
}

void
ClusterSimulator::tryAdmit()
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        JobRuntime &job = *jobs_[*it];
        if (admit(job)) {
            it = pending_.erase(it);
            continue;
        }
        if (cfg_.admission == AdmissionPolicy::Fifo)
            break; // the head blocks everything behind it.

        // Backfill. Without runtime estimates anywhere this is the
        // aggressive variant: anything that fits starts. When
        // estimates exist, EASY-style: project the blocked head's
        // start from the running jobs' estimated completions and let
        // a later job jump the queue only if its own estimate fits
        // into that hole (count-based free-NPU approximation; a job
        // with no estimate never backfills past a reserved head).
        TimeNs shadow = -1.0; // < 0: no reservation computable.
        if (it == pending_.begin()) {
            struct Freed { TimeNs at; int npus; };
            std::vector<Freed> freed;
            bool unknown_runtimes = false;
            for (const auto &jp : jobs_) {
                if (!jp->running || !jp->placement)
                    continue;
                if (jp->spec.estimatedDuration <= 0.0) {
                    unknown_runtimes = true;
                    continue;
                }
                TimeNs end =
                    jp->admitted + jp->spec.estimatedDuration;
                freed.push_back(
                    {std::max(end, eq_.now()),
                     jp->placement->size()});
            }
            if (!freed.empty()) {
                std::sort(freed.begin(), freed.end(),
                          [](const Freed &a, const Freed &b) {
                              return a.at < b.at;
                          });
                int avail = placer_.freeCount();
                for (const Freed &f : freed) {
                    avail += f.npus;
                    if (avail >= job.jobTopo.npus()) {
                        shadow = f.at;
                        break;
                    }
                }
                // Enough capacity never projects free (a job with an
                // unknown runtime holds the remainder): no
                // reservation unless every holder is estimated.
                if (shadow >= 0.0 && unknown_runtimes)
                    shadow = -1.0;
            }
        }
        ++it;
        while (it != pending_.end()) {
            JobRuntime &later = *jobs_[*it];
            bool fits_hole =
                shadow < 0.0 ||
                (later.spec.estimatedDuration > 0.0 &&
                 eq_.now() + later.spec.estimatedDuration <= shadow);
            if (fits_hole && admit(later))
                it = pending_.erase(it);
            else
                ++it;
        }
        break;
    }
}

void
ClusterSimulator::onJobFinished(size_t index)
{
    JobRuntime &job = *jobs_[index];
    ASTRA_ASSERT(!job.done, "job finished twice");
    job.done = true;
    job.running = false;
    job.finished = eq_.now();
    debugT("cluster", "t=%.0f job '%s' finished (%d restarts)",
           job.finished, job.spec.name.c_str(), job.restarts);
    lastFinish_ = std::max(lastFinish_, job.finished);
    if (tracer_ && job.traceSpan != trace::Tracer::kNoSpan) {
        tracer_->endSpan(job.traceSpan, job.finished);
        job.traceSpan = trace::Tracer::kNoSpan;
        tracer_->instantStr(job.id + 1, trace::Tracer::kLifecycleTid,
                            "job", "done " + job.spec.name,
                            job.finished);
    }
    job.eventsAtFinish = eq_.executedEvents();
    job.busyAtFinish = net_->stats().busyTimePerDim;
    job.maxLinkAtFinish = net_->stats().maxLinkBusyNs;
    for (auto &sys : job.stack->sys)
        sys->tracker().finish(job.finished);
    releasePlacement(job);
    --runningJobs_;
    tryAdmit();
}

void
ClusterSimulator::releasePlacement(JobRuntime &job)
{
    if (!spareClaimedAt_.empty())
        for (NpuId id : job.placement->globalOf) {
            TimeNs &claimed = spareClaimedAt_[static_cast<size_t>(id)];
            if (claimed >= 0.0) {
                spareBusyNs_ += eq_.now() - claimed;
                claimed = -1.0;
            }
        }
    placer_.release(*job.placement);
}

void
ClusterSimulator::scheduleCheckpoint(size_t index)
{
    JobRuntime &job = *jobs_[index];
    if (job.ckpt.intervalNs <= 0.0)
        return;
    // Chained timers with an incarnation guard: at most one stale
    // timer per (in)carnation fires as a no-op after the job ends
    // (the makespan is read from lastFinish_, not the drained clock).
    int incarnation = job.incarnation;
    ++ckptTimersPending_;
    eq_.schedule(job.ckpt.intervalNs, [this, index, incarnation] {
        --ckptTimersPending_;
        JobRuntime &job = *jobs_[index];
        if (!job.running || job.incarnation != incarnation)
            return;
        // Termination guard: if nothing is pending but other
        // checkpoint timers, the fabric is quiescent — every flow of
        // this job is stalled on a dead link and no event can ever
        // unstick it. Re-arming the timer would drive simulated time
        // to infinity; breaking the chain drains the queue so the
        // run-loop watchdog reports the job as stranded instead.
        if (faultActive_ &&
            eq_.pending() <= static_cast<size_t>(ckptTimersPending_)) {
            debugT("cluster",
                   "t=%.0f job '%s' checkpoint timer stopped: queue "
                   "quiescent (job stalled by faults)",
                   eq_.now(), job.spec.name.c_str());
            return;
        }
        // A checkpoint is a consistent cut of completed nodes:
        // in-flight work at the cut re-executes after a rollback.
        job.snapshot = job.stack->engine->snapshotDone();
        job.lastSnapshot = eq_.now();
        if (tracer_)
            tracer_->instant(job.id + 1, trace::Tracer::kLifecycleTid,
                             "job", "checkpoint", eq_.now());
        for (auto &sys : job.stack->sys)
            sys->stallCompute(job.ckpt.costNs);
        scheduleCheckpoint(index);
    });
}

void
ClusterSimulator::resolveAutoInterval(JobRuntime &job)
{
    // Young/Daly sqrt(2 * C * MTBF) with the job's *effective* MTBF:
    // independent per-NPU failures arrive at size/npuMtbf, and every
    // failure domain intersecting the placement adds its own rate.
    // The sweep-level tuner (sweep/resilience.h) refines this seed
    // against simulated goodput; see docs/fault.md.
    double rate = 0.0;
    if (cfg_.fault && cfg_.fault->npuMtbfNs > 0.0)
        rate += double(job.placement->size()) / cfg_.fault->npuMtbfNs;
    std::vector<uint8_t> counted(domains_.size(), 0);
    for (NpuId id : job.placement->globalOf) {
        if (domainsOfNpu_.empty())
            break;
        for (int d : domainsOfNpu_[static_cast<size_t>(id)]) {
            if (counted[static_cast<size_t>(d)])
                continue;
            counted[static_cast<size_t>(d)] = 1;
            TimeNs mtbf = domains_[static_cast<size_t>(d)].mtbfNs > 0.0
                              ? domains_[static_cast<size_t>(d)].mtbfNs
                              : cfg_.fault->domainMtbfNs;
            if (mtbf > 0.0)
                rate += 1.0 / mtbf;
        }
    }
    ASTRA_USER_CHECK(
        rate > 0.0,
        "job '%s': checkpoint interval \"auto\" needs MTBF-based "
        "fault generation (npu_mtbf_ns or failure domains) to derive "
        "an expected failure rate from",
        job.spec.name.c_str());
    job.ckpt.intervalNs =
        fault::youngDalyInterval(job.ckpt.costNs, 1.0 / rate);
    debugT("cluster",
           "t=%.0f job '%s' auto checkpoint interval %.0f ns "
           "(effective MTBF %.0f ns)",
           eq_.now(), job.spec.name.c_str(), job.ckpt.intervalNs,
           1.0 / rate);
}

ClusterSimulator::JobRuntime *
ClusterSimulator::residentJob(NpuId global)
{
    for (auto &job : jobs_) {
        if (!job->running || !job->placement)
            continue;
        for (NpuId id : job->placement->globalOf)
            if (id == global)
                return job.get();
    }
    return nullptr;
}

bool
ClusterSimulator::allSettled() const
{
    for (const auto &job : jobs_)
        if (!job->done && !job->failed)
            return false;
    return true;
}

std::string
ClusterSimulator::faultedDomainSummary() const
{
    std::string out;
    char buf[96];
    for (const fault::FailureDomain &d : domains_) {
        int down = 0;
        for (NpuId id : d.npus)
            if (placer_.isFaulted(id))
                ++down;
        if (down == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%s%s (%d/%zu NPUs faulted)",
                      out.empty() ? "" : ", ", d.name.c_str(), down,
                      d.npus.size());
        out += buf;
    }
    return out;
}

PlacementManager::SliceScorer
ClusterSimulator::sliceScorer(PlacementPolicy policy)
{
    if (policy == PlacementPolicy::AntiAffinity) {
        // Concentration cost: sum of squared per-domain overlaps, so
        // straddling two domains (2^2+2^2=8 for 4 NPUs) beats sitting
        // inside one (4^2=16). With no declared domains, level-1
        // blocks act as implicit domains so anti-affinity still
        // spreads.
        return [this](const std::vector<NpuId> &ids) {
            double score = 0.0;
            if (!domains_.empty()) {
                std::vector<int> overlap(domains_.size(), 0);
                for (NpuId id : ids)
                    for (int d : domainsOfNpu_[static_cast<size_t>(id)])
                        ++overlap[static_cast<size_t>(d)];
                for (int o : overlap)
                    score += double(o) * double(o);
            } else {
                int block = topo_.dim(0).size;
                std::vector<int> overlap(
                    static_cast<size_t>(topo_.npus() / block), 0);
                for (NpuId id : ids)
                    ++overlap[static_cast<size_t>(id / block)];
                for (int o : overlap)
                    score += double(o) * double(o);
            }
            return score;
        };
    }
    // AvoidDegraded: live fault state dominates (a domain with any
    // member currently down is near-unusable), then projected
    // per-domain failure intensity over the horizon, then known
    // stragglers.
    return [this](const std::vector<NpuId> &ids) {
        double score = 0.0;
        TimeNs horizon = cfg_.fault ? cfg_.fault->horizonNs : 0.0;
        if (!domains_.empty()) {
            std::vector<int> overlap(domains_.size(), 0);
            for (NpuId id : ids)
                for (int d : domainsOfNpu_[static_cast<size_t>(id)])
                    ++overlap[static_cast<size_t>(d)];
            for (size_t d = 0; d < domains_.size(); ++d) {
                if (overlap[d] == 0)
                    continue;
                const fault::FailureDomain &dom = domains_[d];
                int down = 0;
                for (NpuId id : dom.npus)
                    if (placer_.isFaulted(id))
                        ++down;
                TimeNs mtbf = dom.mtbfNs > 0.0
                                  ? dom.mtbfNs
                                  : cfg_.fault->domainMtbfNs;
                double intensity = mtbf > 0.0 && horizon > 0.0
                                       ? horizon / mtbf
                                       : 0.0;
                score += double(overlap[d]) *
                         ((down > 0 ? 1000.0 : 0.0) + intensity);
            }
        }
        for (NpuId id : ids) {
            double s = npuComputeScale_[static_cast<size_t>(id)];
            if (s != 1.0)
                score += s > 1.0 ? s - 1.0 : 1.0 - s;
        }
        return score;
    };
}

void
ClusterSimulator::onStraggler(NpuId global, double scale)
{
    npuComputeScale_[static_cast<size_t>(global)] = scale;
    if (JobRuntime *job = residentJob(global)) {
        const std::vector<NpuId> &ids = job->stack->placement.globalOf;
        for (size_t l = 0; l < ids.size(); ++l)
            if (ids[l] == global)
                job->stack->sys[l]->setComputeScale(scale);
    }
}

void
ClusterSimulator::onDomainFail(const fault::FaultEvent &ev)
{
    // Fired before any of the domain's constituent NpuFail events:
    // mark the whole blast radius unplaceable atomically, so a
    // requeue-path tryAdmit triggered by an early member's failure
    // can never hand a not-yet-failed member to a pending job.
    const fault::FailureDomain &d =
        domains_[static_cast<size_t>(ev.domain)];
    for (NpuId id : d.npus)
        placer_.markFaulted(id, true);
    if (ev.incident >= 0) {
        if (incidentFired_.size() <= static_cast<size_t>(ev.incident))
            incidentFired_.resize(static_cast<size_t>(ev.incident) + 1,
                                  0);
        incidentFired_[static_cast<size_t>(ev.incident)] = 1;
    }
    debugT("cluster", "t=%.0f domain '%s' failed (%zu NPUs)", ev.at,
           d.name.c_str(), d.npus.size());
}

void
ClusterSimulator::onNpuFail(const fault::FaultEvent &ev)
{
    NpuId global = ev.npu;
    placer_.markFaulted(global, true);
    if (ev.incident >= 0) {
        if (incidentFired_.size() <= static_cast<size_t>(ev.incident))
            incidentFired_.resize(static_cast<size_t>(ev.incident) + 1,
                                  0);
        incidentFired_[static_cast<size_t>(ev.incident)] = 1;
    }
    // Fail-stop at the NIC: every egress link of the failed NPU goes
    // down. Incoming links stay up — traffic already heading to the
    // dead NPU still occupies the fabric until delivered (and is
    // harmless: the failed incarnation's engine is cancelled).
    net_->setLinkUp(global, fault::kAllFaultPeers, fault::kAllFaultDims,
                    false);
    if (JobRuntime *job = residentJob(global))
        failJob(*job, &ev);
}

void
ClusterSimulator::failJob(JobRuntime &job, const fault::FaultEvent *ev)
{
    if (ev && ev->incident >= 0)
        ++disruptions_;
    ++job.faults;
    ++job.incarnation;
    // A cold requeue discards the snapshot, so the rollback is the
    // whole incarnation's progress — not just the tail past the
    // last checkpoint cut.
    job.lostWork += job.ckpt.restart == fault::RestartMode::Requeue
                        ? eq_.now() - job.incarnationStart
                        : eq_.now() - job.lastSnapshot;
    job.failedAt = eq_.now();
    job.running = false;
    if (tracer_ && job.traceSpan != trace::Tracer::kNoSpan) {
        tracer_->endSpan(job.traceSpan, eq_.now());
        job.traceSpan = trace::Tracer::kNoSpan;
        tracer_->instantStr(job.id + 1, trace::Tracer::kLifecycleTid,
                            "job", "fail " + job.spec.name, eq_.now());
    }
    job.stack->engine->cancel();
    // Quiesce the collective engine too: messages already in the
    // fabric drain (and are dropped on delivery), but the ghost
    // incarnation must not keep pumping chunk pipelines — a large
    // in-flight collective would otherwise run to completion and
    // contend with the restarted incarnation for the rest of the run.
    job.stack->coll->cancelAll();
    // The abandoned stack moves to the graveyard (see JobRuntime):
    // ghost traffic of this incarnation still references it.
    job.graveyard.push_back(std::move(job.stack));
    --runningJobs_;
    size_t index = static_cast<size_t>(job.id);
    fault::RestartMode mode = job.ckpt.restart;

    if (mode == fault::RestartMode::Spare) {
        // Patch the placement with healthy reserved spares and
        // relaunch in place — the surviving ranks keep their NPUs and
        // the snapshot (job-local done flags) stays valid on the
        // patched id set. Falls back to Migrate when the pool can't
        // cover the failure.
        std::optional<JobPlacement> swapped =
            placer_.trySpareSwap(*job.placement);
        if (swapped) {
            for (size_t r = 0; r < swapped->globalOf.size(); ++r)
                if (swapped->globalOf[r] != job.placement->globalOf[r])
                    spareClaimedAt_[static_cast<size_t>(
                        swapped->globalOf[r])] = eq_.now();
            job.placement = std::move(*swapped);
            int incarnation = job.incarnation;
            eq_.schedule(job.ckpt.restartDelayNs,
                         [this, index, incarnation] {
                JobRuntime &job = *jobs_[index];
                if (job.running || job.done ||
                    job.incarnation != incarnation)
                    return; // superseded by a newer failure.
                for (NpuId id : job.placement->globalOf)
                    if (placer_.isFaulted(id)) {
                        // A fresh failure hit the patched placement
                        // during the restart delay; wait for recovery
                        // like an in-place restart would.
                        job.waitingRecovery = true;
                        return;
                    }
                launch(job);
            });
            tryAdmit(); // the returned faulted NPUs change nothing,
                        // but a healthy-spare reshuffle might.
            return;
        }
        mode = fault::RestartMode::Migrate;
    }

    switch (mode) {
      case fault::RestartMode::Requeue:
      case fault::RestartMode::Migrate:
        // Restart on a fresh placement: give the NPUs back and
        // re-enter the admission queue after the restart delay.
        // Requeue is a cold start (the snapshot is discarded);
        // Migrate carries it — the snapshot is a placement-
        // independent cut of job-local done flags, so it resumes
        // wherever the job lands next.
        if (mode == fault::RestartMode::Requeue)
            job.snapshot.clear();
        releasePlacement(job);
        job.placement.reset();
        eq_.schedule(job.ckpt.restartDelayNs, [this, index] {
            enqueuePending(index);
            tryAdmit();
        });
        tryAdmit(); // the freed healthy NPUs may fit a pending job.
        break;
      case fault::RestartMode::Same:
      case fault::RestartMode::Spare:
        // Restart in place once every placement NPU is healthy
        // again (driven by onNpuRecover). The placement is retained
        // so no other tenant can take the surviving NPUs.
        job.waitingRecovery = true;
        break;
    }
}

void
ClusterSimulator::onNpuRecover(const fault::FaultEvent &ev)
{
    NpuId global = ev.npu;
    placer_.markFaulted(global, false);
    net_->setLinkUp(global, fault::kAllFaultPeers, fault::kAllFaultDims,
                    true);
    for (auto &jp : jobs_) {
        JobRuntime &job = *jp;
        if (!job.waitingRecovery)
            continue;
        bool healthy = true;
        for (NpuId id : job.placement->globalOf)
            if (placer_.isFaulted(id)) {
                healthy = false;
                break;
            }
        if (!healthy)
            continue;
        job.waitingRecovery = false;
        size_t index = static_cast<size_t>(job.id);
        int incarnation = job.incarnation;
        eq_.schedule(job.ckpt.restartDelayNs,
                     [this, index, incarnation] {
            JobRuntime &job = *jobs_[index];
            if (job.running || job.done ||
                job.incarnation != incarnation)
                return; // superseded by a newer failure/restart.
            for (NpuId id : job.placement->globalOf)
                if (placer_.isFaulted(id)) {
                    // A fresh failure hit during the restart delay;
                    // the next recovery re-arms us.
                    job.waitingRecovery = true;
                    return;
                }
            launch(job);
        });
    }
    tryAdmit();
}

TimeNs
ClusterSimulator::runIsolated(JobRuntime &job)
{
    // Fresh queue + fresh fabric, same placement, same workload, same
    // stack construction (buildStack): the only thing removed is the
    // other tenants. Finish is the last node's completion time (the
    // same definition the co-executed duration uses), so slowdown ==
    // 1.0 bit-exactly when nothing contended.
    EventQueue eq;
    std::unique_ptr<NetworkApi> net = makeNetwork(cfg_.backend, eq,
                                                  topo_);
    JobStack stack;
    buildStack(job, *net, stack, /*shared=*/false);
    TimeNs finish = 0.0;
    stack.engine->setOnFinished([&finish, &eq] { finish = eq.now(); });
    stack.engine->start();
    eq.run();
    ASTRA_USER_CHECK(stack.engine->finished(),
                     "job '%s': isolated baseline deadlocked",
                     job.spec.name.c_str());
    return finish;
}

JobResult
ClusterSimulator::finalizeJob(JobRuntime &job)
{
    JobResult r;
    r.id = job.id;
    r.name = job.spec.name;
    r.size = job.jobTopo.npus();
    r.placement = job.placement ? job.placement->describe() : "-";
    r.arrival = job.spec.arrival;
    r.numFaults = job.faults;
    r.lostWork = job.lostWork;
    r.recovery = job.recovery;
    r.restarts = job.restarts;
    r.failed = job.failed;
    r.error = job.error;

    // Own-traffic busy attribution, summed over every incarnation
    // that put traffic on the shared fabric (the isolated baseline
    // runs on its own fabric and is deliberately excluded).
    r.ownBusyPerDim.assign(static_cast<size_t>(topo_.numDims()), 0.0);
    auto accumulate = [&r](const JobStack *stack) {
        if (stack == nullptr || !stack->view)
            return;
        const std::vector<double> &own = stack->view->ownBusy();
        for (size_t d = 0; d < own.size(); ++d)
            r.ownBusyPerDim[d] += own[d];
    };
    for (const auto &ghost : job.graveyard)
        accumulate(ghost.get());
    accumulate(job.stack.get());

    Report &rep = r.report;
    rep.workload = job.wl.name;
    rep.numFaults = r.numFaults;
    rep.lostWorkNs = r.lostWork;
    rep.recoveryTimeNs = r.recovery;
    if (job.failed)
        return r; // never finished: timing/goodput fields stay 0.

    r.admitted = job.admitted;
    r.finished = job.finished;
    r.queueingDelay = job.admitted - job.spec.arrival;
    r.duration = job.finished - job.admitted;
    r.isolatedDuration = job.isolated;
    r.interferenceSlowdown =
        job.isolated > 0.0 ? r.duration / job.isolated : 0.0;
    r.goodput = job.isolated > 0.0 && r.duration > 0.0
                    ? job.isolated / r.duration
                    : 0.0;
    r.availability =
        r.duration > 0.0
            ? std::max(0.0, 1.0 - r.recovery / r.duration)
            : 0.0;

    rep.totalTime = r.duration;
    rep.perNpu.reserve(job.stack->sys.size());
    for (auto &sys : job.stack->sys) {
        rep.perNpu.push_back(breakdownOf(sys->tracker()));
        rep.average += rep.perNpu.back();
    }
    rep.average =
        rep.average.scaled(1.0 / double(job.stack->sys.size()));
    rep.events = job.eventsAtFinish - job.eventsAtAdmit;
    // Traffic counts span every incarnation (re-executed work after a
    // rollback is real fabric traffic); breakdowns cover the final
    // incarnation only (its trackers run [relaunch, finished]).
    rep.messages = job.stack->view->stats().messages;
    rep.bytesPerDim = job.stack->view->stats().bytesPerDim;
    for (const auto &ghost : job.graveyard) {
        rep.messages += ghost->view->stats().messages;
        const std::vector<double> &gb = ghost->view->stats().bytesPerDim;
        for (size_t d = 0; d < gb.size(); ++d)
            rep.bytesPerDim[d] += gb[d];
    }
    rep.busyTimePerDim = job.busyAtFinish;
    for (size_t d = 0; d < rep.busyTimePerDim.size(); ++d)
        rep.busyTimePerDim[d] -= job.busyAtAdmit[d];
    rep.linksPerDim = net_->stats().linksPerDim;
    rep.maxLinkBusyNs = job.maxLinkAtFinish;
    rep.queueingDelayNs = r.queueingDelay;
    rep.interferenceSlowdown = r.interferenceSlowdown;
    rep.goodput = r.goodput;
    rep.availability = r.availability;
    return r;
}

void
ClusterSimulator::enqueuePending(size_t id)
{
    if (tracer_)
        tracer_->instantStr(jobs_[id]->id + 1,
                            trace::Tracer::kLifecycleTid, "job",
                            "queued " + jobs_[id]->spec.name, eq_.now());
    auto pos = std::find_if(
        pending_.begin(), pending_.end(), [&](size_t other) {
            const JobSpec &a = jobs_[id]->spec;
            const JobSpec &b = jobs_[other]->spec;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            if (a.arrival != b.arrival)
                return a.arrival < b.arrival;
            return id < other;
        });
    pending_.insert(pos, id);
}

ClusterReport
ClusterSimulator::run()
{
    ASTRA_USER_CHECK(!ran_, "a ClusterSimulator runs once; create a "
                            "fresh instance per run");
    ASTRA_USER_CHECK(!jobs_.empty(), "cluster has no jobs");
    ran_ = true;

    if (cfg_.trace.enabled()) {
        tracer_ = std::make_unique<trace::Tracer>(cfg_.trace);
        tracer_->processName(0, "fabric");
        tracer_->threadName(0, trace::Tracer::kLifecycleTid,
                            "lifecycle");
        for (const auto &job : jobs_) {
            tracer_->processName(job->id + 1, job->spec.name);
            tracer_->threadName(job->id + 1,
                                trace::Tracer::kLifecycleTid,
                                "lifecycle");
        }
        net_->setTracer(tracer_.get());
        profile_.timeCallbacks = tracer_->full();
        eq_.setProfile(&profile_);
    }

    double host_start = telemetry::wallNow();
    if (cfg_.telemetry.heartbeatsEnabled()) {
        // Cluster heartbeats (docs/observability.md): progress
        // aggregates workload nodes across every registered job, and
        // each beat additionally carries per-job entries. Note the
        // aggregate can regress — admissions are known up front here,
        // but a failure rolls a job's completed count back to its
        // checkpoint snapshot.
        monitor_ = std::make_unique<telemetry::Monitor>(cfg_.telemetry);
        auto job_done = [](const JobRuntime &job) -> size_t {
            if (job.done)
                return job.wl.totalNodes();
            if (job.stack && job.stack->engine)
                return job.stack->engine->completedNodes();
            return 0;
        };
        monitor_->setProgress([this, job_done] {
            telemetry::Progress p;
            for (const auto &job : jobs_) {
                p.done += job_done(*job);
                p.total += job->wl.totalNodes();
            }
            return p;
        });
        monitor_->setJobs([this, job_done] {
            std::vector<telemetry::JobProgress> out;
            out.reserve(jobs_.size());
            for (const auto &job : jobs_)
                out.push_back({job->spec.name, job_done(*job),
                               job->wl.totalNodes()});
            return out;
        });
        monitor_->setActive([this] { return net_->activeCount(); });
        if (auto *flow = dynamic_cast<FlowNetwork *>(net_.get()))
            monitor_->setSolves([flow] { return flow->solveCount(); });
        monitor_->addFootprint("event_queue",
                               [this] { return eq_.bytesInUse(); });
        monitor_->addFootprint("network",
                               [this] { return net_->bytesInUse(); });
        monitor_->addFootprint("collectives", [this] {
            size_t bytes = 0;
            for (const auto &job : jobs_) {
                if (job->stack && job->stack->coll)
                    bytes += job->stack->coll->bytesInUse();
                for (const auto &ghost : job->graveyard)
                    if (ghost->coll)
                        bytes += ghost->coll->bytesInUse();
            }
            return bytes;
        });
        if (tracer_)
            monitor_->addFootprint(
                "tracer", [this] { return tracer_->bytesInUse(); });
        eq_.setMonitor(monitor_.get());
    }

    faultActive_ = cfg_.fault && !cfg_.fault->empty();
    bool timed_tail = faultActive_;
    for (const auto &job : jobs_)
        timed_tail = timed_tail ||
                     job->ckpt.intervalNs > 0.0 ||
                     job->ckpt.autoInterval;
    if (cfg_.fault && !cfg_.fault->domains.empty()) {
        domains_ = fault::resolveDomains(*cfg_.fault, topo_);
        domainsOfNpu_.assign(static_cast<size_t>(topo_.npus()), {});
        for (size_t d = 0; d < domains_.size(); ++d)
            for (NpuId id : domains_[d].npus)
                domainsOfNpu_[static_cast<size_t>(id)].push_back(
                    static_cast<int>(d));
    }

    // Spare pool (docs/fault.md "Spare-capacity restart"): reserved
    // before any admission so placements can never straddle it.
    ASTRA_USER_CHECK(cfg_.spareCount <= 0 || cfg_.spareDomain.empty(),
                     "cluster.spares: set a count or a domain name, "
                     "not both");
    std::vector<NpuId> spares;
    if (!cfg_.spareDomain.empty()) {
        const fault::FailureDomain *dom = nullptr;
        for (const fault::FailureDomain &d : domains_)
            if (d.name == cfg_.spareDomain)
                dom = &d;
        ASTRA_USER_CHECK(dom != nullptr,
                         "cluster.spares: unknown failure domain '%s' "
                         "(declare it under fault.domains)",
                         cfg_.spareDomain.c_str());
        spares = dom->npus;
    } else if (cfg_.spareCount > 0) {
        ASTRA_USER_CHECK(cfg_.spareCount < topo_.npus(),
                         "cluster.spares: %d spares leave no NPUs to "
                         "place on (cluster has %d)",
                         cfg_.spareCount, topo_.npus());
        for (int i = 0; i < cfg_.spareCount; ++i)
            spares.push_back(topo_.npus() - cfg_.spareCount + i);
    }
    if (!spares.empty()) {
        placer_.reserveSpares(spares);
        initialSpareCount_ = static_cast<int>(spares.size());
        spareClaimedAt_.assign(static_cast<size_t>(topo_.npus()), -1.0);
    }

    if (faultActive_) {
        fault::FaultHooks hooks;
        hooks.net = net_.get();
        hooks.computeScale = [this](NpuId g, double s) {
            onStraggler(g, s);
        };
        hooks.npuFail = [this](const fault::FaultEvent &ev) {
            onNpuFail(ev);
        };
        hooks.npuRecover = [this](const fault::FaultEvent &ev) {
            onNpuRecover(ev);
        };
        hooks.domainFail = [this](const fault::FaultEvent &ev) {
            onDomainFail(ev);
        };
        hooks.active = [this] { return !allSettled(); };
        injector_ = std::make_unique<fault::FaultInjector>(
            eq_, topo_, *cfg_.fault, std::move(hooks));
        if (tracer_)
            injector_->setTracer(tracer_.get(), 0);
        injector_->start();
    }

    // Arrival order (time, then submission order). Admission order
    // within the pending queue is (priority desc, arrival, id).
    std::vector<size_t> order(jobs_.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return jobs_[a]->spec.arrival <
                                jobs_[b]->spec.arrival;
                     });

    size_t next = 0;
    while (next < order.size()) {
        TimeNs t = jobs_[order[next]]->spec.arrival;
        // Drain everything at or before the arrival, then admit at
        // exactly t (runUntil advances the clock through gaps). A
        // time-zero arrival executes no events first, so a
        // single-job cluster replays a plain Simulator run exactly.
        eq_.runUntil(t);
        while (next < order.size() &&
               jobs_[order[next]]->spec.arrival == t)
            enqueuePending(order[next++]);
        tryAdmit();
    }
    eq_.run();

    // Safety net: admission progress is normally driven by job
    // completions; if jobs are still pending on a drained queue,
    // either admit them now or report the stall. Under a fault
    // scenario a stranded job (its NPUs never recover, or a restart
    // can never be re-placed) is a legitimate *per-job* outcome, so
    // it fails in isolation instead of aborting the cluster run.
    while (!pending_.empty()) {
        size_t before = pending_.size();
        tryAdmit();
        if (pending_.size() >= before) {
            if (!faultActive_) {
                ASTRA_USER_CHECK(
                    false,
                    "cluster admission stalled: job '%s' cannot be "
                    "placed (free NPUs: %d of %d)",
                    jobs_[pending_.front()]->spec.name.c_str(),
                    placer_.freeCount(), placer_.totalCount());
            }
            char buf[160];
            std::string domains_down = faultedDomainSummary();
            for (size_t id : pending_) {
                JobRuntime &job = *jobs_[id];
                std::snprintf(
                    buf, sizeof(buf),
                    "cannot be placed at drained time %.0f ns "
                    "(free NPUs: %d of %d, %d faulted)",
                    eq_.now(), placer_.freeCount(),
                    placer_.totalCount(), placer_.faultedCount());
                job.failed = true;
                job.error = buf;
                if (!domains_down.empty())
                    job.error += "; down domains: " + domains_down;
                if (!job.snapshot.empty()) {
                    size_t done = 0;
                    for (uint8_t b : job.snapshot)
                        done += b;
                    std::snprintf(buf, sizeof(buf),
                                  "; snapshot watermark: %zu of %zu "
                                  "nodes done",
                                  done, job.wl.totalNodes());
                    job.error += buf;
                }
            }
            pending_.clear();
            break;
        }
        eq_.run();
    }

    if (monitor_) {
        monitor_->finish(eq_.now(), eq_.executedEvents(),
                         eq_.pending());
        eq_.setMonitor(nullptr);
    }

    ClusterReport report;
    // With fault events or checkpoint timers in flight, the drained
    // queue's clock can sit on a stale no-op tail event past the
    // last completion; the makespan is the last job finish then.
    report.makespan = timed_tail ? lastFinish_ : eq_.now();
    report.totalEvents = eq_.executedEvents();
    report.totalMessages = net_->stats().messages;

    for (auto &job : jobs_) {
        if (!job->done && !job->failed) {
            // Watchdog (drained-queue diagnosis): report how far the
            // job got and every dangling send/recv on the fabric.
            size_t completed =
                job->stack && job->stack->engine
                    ? job->stack->engine->completedNodes()
                    : 0;
            std::string diag = net_->danglingSummary();
            if (faultActive_) {
                char buf[192];
                size_t done = 0;
                for (uint8_t b : job->snapshot)
                    done += b;
                std::snprintf(
                    buf, sizeof(buf),
                    "stranded at time %.0f ns: %zu of %zu nodes "
                    "completed (snapshot watermark: %zu of %zu); ",
                    eq_.now(), completed, job->wl.totalNodes(), done,
                    job->wl.totalNodes());
                job->failed = true;
                job->error = buf;
                std::string domains_down = faultedDomainSummary();
                if (!domains_down.empty())
                    job->error += "down domains: " + domains_down +
                                  "; ";
                job->error += diag;
            } else {
                ASTRA_USER_CHECK(
                    false,
                    "job '%s' deadlocked: %zu of %zu nodes completed "
                    "(check send/recv pairing and collective group "
                    "membership); %s",
                    job->spec.name.c_str(), completed,
                    job->wl.totalNodes(), diag.c_str());
            }
        }
        if (cfg_.isolatedBaselines && !job->failed)
            job->isolated = runIsolated(*job);
        report.jobs.push_back(finalizeJob(*job));
    }

    // Cluster-aggregate report (the sweep-facing row).
    Report &agg = report.aggregate;
    char label[64];
    std::snprintf(label, sizeof(label), "cluster(%zu jobs)",
                  jobs_.size());
    agg.workload = label;
    agg.totalTime = report.makespan;
    agg.perNpu.assign(static_cast<size_t>(topo_.npus()),
                      RuntimeBreakdown{});
    for (const JobResult &jr : report.jobs) {
        if (jr.failed)
            continue; // no residency interval to attribute.
        const JobPlacement &pl = *jobs_[static_cast<size_t>(jr.id)]
                                      ->placement;
        for (size_t l = 0; l < jr.report.perNpu.size(); ++l)
            agg.perNpu[static_cast<size_t>(pl.globalOf[l])] +=
                jr.report.perNpu[l];
    }
    for (const RuntimeBreakdown &b : agg.perNpu)
        agg.average += b;
    agg.average = agg.average.scaled(1.0 / double(topo_.npus()));
    agg.events = report.totalEvents;
    agg.messages = report.totalMessages;
    agg.bytesPerDim = net_->stats().bytesPerDim;
    agg.busyTimePerDim = net_->stats().busyTimePerDim;
    agg.linksPerDim = net_->stats().linksPerDim;
    agg.maxLinkBusyNs = net_->stats().maxLinkBusyNs;
    agg.queueingDelayNs = report.meanQueueingDelay();
    agg.interferenceSlowdown =
        cfg_.isolatedBaselines ? report.meanInterferenceSlowdown() : 0.0;
    // Failure-resilience aggregates: injected-event count from the
    // injector (all fault kinds), lost work / recovery summed over
    // jobs, goodput averaged over the jobs that measured one.
    agg.numFaults = injector_ ? injector_->firedCount() : 0;
    for (const JobResult &jr : report.jobs) {
        agg.lostWorkNs += jr.lostWork;
        agg.recoveryTimeNs += jr.recovery;
    }
    agg.goodput = report.meanGoodput();

    // Domain/spare resilience aggregates; all stay 0 (and are elided
    // from serialized reports) on fault-free runs.
    uint64_t incidents = 0;
    for (uint8_t f : incidentFired_)
        incidents += f;
    if (incidents > 0)
        report.blastRadius = double(disruptions_) / double(incidents);
    if (!recoveryGaps_.empty()) {
        std::vector<TimeNs> gaps = recoveryGaps_;
        std::sort(gaps.begin(), gaps.end());
        auto rank = [&gaps](double p) { // nearest-rank percentile.
            size_t idx = static_cast<size_t>(
                std::ceil(p * double(gaps.size())));
            return gaps[idx > 0 ? idx - 1 : 0];
        };
        report.recoveryP50 = rank(0.50);
        report.recoveryP95 = rank(0.95);
    }
    if (initialSpareCount_ > 0 && report.makespan > 0.0) {
        // Spares still held at the end accrue to the makespan.
        for (size_t id = 0; id < spareClaimedAt_.size(); ++id)
            if (spareClaimedAt_[id] >= 0.0) {
                spareBusyNs_ += std::max(
                    0.0, report.makespan - spareClaimedAt_[id]);
                spareClaimedAt_[id] = -1.0;
            }
        report.spareUtilization =
            spareBusyNs_ /
            (double(initialSpareCount_) * report.makespan);
    }
    agg.availability = report.meanAvailability();
    agg.blastRadius = report.blastRadius;
    agg.spareUtilization = report.spareUtilization;
    agg.recoveryP50Ns = report.recoveryP50;
    agg.recoveryP95Ns = report.recoveryP95;

    if (tracer_) {
        eq_.setProfile(nullptr);
        trace::Counters &c = tracer_->counters();
        c.add("trace_events", double(tracer_->eventCount()));
        trace::addQueueProfile(profile_, c);
        net_->fillTraceCounters(c);
        double write_wall = tracer_->writeOutputs();
        c.addWall("wall_trace_write_seconds", write_wall);
        agg.traceCounters = c.values;
        agg.traceHistograms = c.histograms;
        agg.traceWallSeconds = c.wallSeconds;
    }
    // Footprint rollup (telemetry protocol, docs/observability.md):
    // always measured, deterministic, capacity-based. Collective
    // bytes sum the live stacks and the graveyard — abandoned
    // incarnations are real held memory until the simulator dies.
    size_t coll_bytes = 0;
    for (const auto &job : jobs_) {
        if (job->stack && job->stack->coll)
            coll_bytes += job->stack->coll->bytesInUse();
        for (const auto &ghost : job->graveyard)
            if (ghost->coll)
                coll_bytes += ghost->coll->bytesInUse();
    }
    agg.footprintBySubsystem.emplace_back("event_queue",
                                          eq_.bytesInUse());
    agg.footprintBySubsystem.emplace_back("network", net_->bytesInUse());
    agg.footprintBySubsystem.emplace_back("collectives", coll_bytes);
    if (tracer_)
        agg.footprintBySubsystem.emplace_back("tracer",
                                              tracer_->bytesInUse());
    for (const auto &[name, bytes] : agg.footprintBySubsystem) {
        (void)name;
        agg.peakFootprintBytes += bytes;
    }
    size_t flow_slots = net_->flowSlots();
    if (flow_slots > 0)
        agg.bytesPerFlow =
            double(net_->bytesInUse()) / double(flow_slots);
    agg.bytesPerNpu =
        double(agg.peakFootprintBytes) / double(topo_.npus());
    if (monitor_ && monitor_->deterministicCadence())
        agg.telemetryHeartbeats = monitor_->heartbeatCount();
    agg.peakRssBytes = telemetry::peakRssBytes();
    agg.wallSeconds = telemetry::wallNow() - host_start;

    if (!cfg_.telemetry.manifest.empty()) {
        telemetry::ManifestInfo info;
        info.kind = "cluster";
        info.configHash = cfg_.telemetry.configHash;
        info.backend = backendName(cfg_.backend);
        info.topology = telemetry::topologyNotation(topo_);
        info.npus = topo_.npus();
        info.seed = cfg_.fault ? cfg_.fault->seed : 0;
        telemetry::fillManifestFromReport(info, agg);
        info.wallBreakdown.emplace_back("run", agg.wallSeconds);
        if (!cfg_.telemetry.file.empty())
            info.outputs.push_back(cfg_.telemetry.file);
        if (!cfg_.trace.file.empty())
            info.outputs.push_back(cfg_.trace.file);
        if (!cfg_.trace.utilizationFile.empty())
            info.outputs.push_back(cfg_.trace.utilizationFile);
        if (!cfg_.trace.analysisFile.empty())
            info.outputs.push_back(cfg_.trace.analysisFile);
        telemetry::writeManifest(cfg_.telemetry.manifest, info);
    }
    return report;
}

double
ClusterReport::meanGoodput() const
{
    double sum = 0.0;
    int n = 0;
    for (const JobResult &j : jobs) {
        if (j.goodput > 0.0) {
            sum += j.goodput;
            ++n;
        }
    }
    return n > 0 ? sum / double(n) : 0.0;
}

double
ClusterReport::meanAvailability() const
{
    double sum = 0.0;
    int n = 0;
    for (const JobResult &j : jobs) {
        if (j.availability > 0.0) {
            sum += j.availability;
            ++n;
        }
    }
    return n > 0 ? sum / double(n) : 0.0;
}

double
ClusterReport::meanQueueingDelay() const
{
    if (jobs.empty())
        return 0.0;
    double sum = 0.0;
    for (const JobResult &j : jobs)
        sum += j.queueingDelay;
    return sum / double(jobs.size());
}

double
ClusterReport::meanInterferenceSlowdown() const
{
    if (jobs.empty())
        return 0.0;
    double sum = 0.0;
    for (const JobResult &j : jobs)
        sum += j.interferenceSlowdown;
    return sum / double(jobs.size());
}

double
ClusterReport::maxInterferenceSlowdown() const
{
    double best = 0.0;
    for (const JobResult &j : jobs)
        best = std::max(best, j.interferenceSlowdown);
    return best;
}

std::string
ClusterReport::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cluster: %zu jobs, makespan %.3f ms, %llu events, "
                  "%llu messages\n"
                  "mean queueing delay %.3f ms, mean interference "
                  "slowdown %.3fx (max %.3fx)\n",
                  jobs.size(), makespan / kMs,
                  static_cast<unsigned long long>(totalEvents),
                  static_cast<unsigned long long>(totalMessages),
                  meanQueueingDelay() / kMs, meanInterferenceSlowdown(),
                  maxInterferenceSlowdown());
    std::string out = buf;
    uint64_t total_faults = 0;
    for (const JobResult &j : jobs)
        total_faults += j.numFaults;
    if (total_faults > 0 || meanGoodput() > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "job NPU faults: %llu, mean goodput %.3f, mean "
                      "availability %.3f\n",
                      static_cast<unsigned long long>(total_faults),
                      meanGoodput(), meanAvailability());
        out += buf;
    }
    if (blastRadius > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "blast radius %.2f jobs/incident, recovery p50 "
                      "%.3f ms / p95 %.3f ms\n",
                      blastRadius, recoveryP50 / kMs, recoveryP95 / kMs);
        out += buf;
    }
    if (spareUtilization > 0.0) {
        std::snprintf(buf, sizeof(buf), "spare utilization %.1f%%\n",
                      spareUtilization * 100.0);
        out += buf;
    }
    for (const JobResult &j : jobs) {
        if (j.failed) {
            std::snprintf(buf, sizeof(buf),
                          "  [%d] %-12s %4d NPUs FAILED: %s\n", j.id,
                          j.name.c_str(), j.size, j.error.c_str());
            out += buf;
            continue;
        }
        std::snprintf(
            buf, sizeof(buf),
            "  [%d] %-12s %4d NPUs %-20s arrive %.3f ms, wait %.3f "
            "ms, run %.3f ms, slowdown %.3fx\n",
            j.id, j.name.c_str(), j.size, j.placement.c_str(),
            j.arrival / kMs, j.queueingDelay / kMs, j.duration / kMs,
            j.interferenceSlowdown);
        out += buf;
    }
    return out;
}

json::Value
ClusterReport::toJson() const
{
    json::Object doc;
    doc["makespan_ns"] = json::Value(makespan);
    doc["events"] = json::Value(totalEvents);
    doc["messages"] = json::Value(totalMessages);
    doc["mean_queueing_delay_ns"] = json::Value(meanQueueingDelay());
    doc["mean_interference_slowdown"] =
        json::Value(meanInterferenceSlowdown());
    doc["mean_goodput"] = json::Value(meanGoodput());
    doc["mean_availability"] = json::Value(meanAvailability());
    if (blastRadius > 0.0)
        doc["blast_radius"] = json::Value(blastRadius);
    if (recoveryP50 > 0.0 || recoveryP95 > 0.0) {
        doc["recovery_p50_ns"] = json::Value(recoveryP50);
        doc["recovery_p95_ns"] = json::Value(recoveryP95);
    }
    if (spareUtilization > 0.0)
        doc["spare_utilization"] = json::Value(spareUtilization);
    doc["aggregate"] = reportToJson(aggregate);
    json::Array rows;
    rows.reserve(jobs.size());
    for (const JobResult &j : jobs) {
        json::Object row;
        row["id"] = json::Value(j.id);
        row["name"] = json::Value(j.name);
        row["size"] = json::Value(j.size);
        row["placement"] = json::Value(j.placement);
        row["arrival_ns"] = json::Value(j.arrival);
        row["admitted_ns"] = json::Value(j.admitted);
        row["finished_ns"] = json::Value(j.finished);
        row["queueing_delay_ns"] = json::Value(j.queueingDelay);
        row["duration_ns"] = json::Value(j.duration);
        row["isolated_duration_ns"] = json::Value(j.isolatedDuration);
        row["interference_slowdown"] =
            json::Value(j.interferenceSlowdown);
        row["num_faults"] = json::Value(j.numFaults);
        row["lost_work_ns"] = json::Value(j.lostWork);
        row["recovery_time_ns"] = json::Value(j.recovery);
        row["restarts"] = json::Value(j.restarts);
        row["goodput"] = json::Value(j.goodput);
        row["availability"] = json::Value(j.availability);
        row["failed"] = json::Value(j.failed);
        if (j.failed)
            row["error"] = json::Value(j.error);
        json::Array own;
        own.reserve(j.ownBusyPerDim.size());
        for (double b : j.ownBusyPerDim)
            own.push_back(json::Value(b));
        row["own_busy_per_dim_ns"] = json::Value(std::move(own));
        row["report"] = reportToJson(j.report);
        rows.push_back(json::Value(std::move(row)));
    }
    doc["jobs"] = json::Value(std::move(rows));
    return json::Value(std::move(doc));
}

std::string
ClusterReport::jobsCsv() const
{
    std::string out =
        "id,name,size,placement,arrival_ns,admitted_ns,finished_ns,"
        "queueing_delay_ns,duration_ns,isolated_duration_ns,"
        "interference_slowdown,num_faults,lost_work_ns,"
        "recovery_time_ns,restarts,goodput,availability,"
        "own_busy_per_dim_ns,status\n";
    char buf[256];
    for (const JobResult &j : jobs) {
        std::snprintf(buf, sizeof(buf), "%d,", j.id);
        out += buf;
        out += csvField(j.name) + ',';
        std::snprintf(buf, sizeof(buf), "%d,", j.size);
        out += buf;
        out += csvField(j.placement);
        std::snprintf(buf, sizeof(buf),
                      ",%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.6f,%llu,"
                      "%.3f,%.3f,%d,%.6f,%.6f,",
                      j.arrival, j.admitted, j.finished,
                      j.queueingDelay, j.duration, j.isolatedDuration,
                      j.interferenceSlowdown,
                      static_cast<unsigned long long>(j.numFaults),
                      j.lostWork, j.recovery, j.restarts, j.goodput,
                      j.availability);
        out += buf;
        // Per-dim own-busy as a semicolon-joined list (one CSV cell).
        std::string own;
        for (size_t d = 0; d < j.ownBusyPerDim.size(); ++d) {
            std::snprintf(buf, sizeof(buf), "%s%.3f",
                          d > 0 ? ";" : "", j.ownBusyPerDim[d]);
            own += buf;
        }
        out += csvField(own) + ',';
        out += j.failed ? "failed" : "ok";
        out += '\n';
    }
    return out;
}

} // namespace cluster
} // namespace astra
