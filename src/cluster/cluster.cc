#include "cluster/cluster.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/table.h"
#include "sweep/spec.h"

namespace astra {
namespace cluster {

namespace {

std::unique_ptr<MemoryModel>
makeMemory(const SimulatorConfig &cfg)
{
    ASTRA_USER_CHECK(!(cfg.pooledMem && cfg.zeroInfinityMem),
                     "configure at most one remote memory tier per job");
    if (cfg.pooledMem)
        return std::make_unique<MemoryModel>(cfg.localMem,
                                             *cfg.pooledMem);
    if (cfg.zeroInfinityMem)
        return std::make_unique<MemoryModel>(cfg.localMem,
                                             *cfg.zeroInfinityMem);
    return std::make_unique<MemoryModel>(cfg.localMem);
}

} // namespace

const char *
admissionPolicyName(AdmissionPolicy p)
{
    switch (p) {
      case AdmissionPolicy::Fifo: return "fifo";
      case AdmissionPolicy::Backfill: return "backfill";
    }
    return "?";
}

AdmissionPolicy
parseAdmissionPolicy(const std::string &name)
{
    if (name == "fifo")
        return AdmissionPolicy::Fifo;
    if (name == "backfill")
        return AdmissionPolicy::Backfill;
    fatal("unknown admission policy '%s' (fifo | backfill)",
          name.c_str());
}

/**
 * The per-job execution stack: rank-translation view, collective
 * engine, memory model, per-NPU system layers, execution engine.
 * Built by ClusterSimulator::buildStack for both the co-executed run
 * (on the shared fabric) and the isolated baseline (on a fresh one).
 */
struct ClusterSimulator::JobStack
{
    std::unique_ptr<RankViewNetwork> view;
    std::unique_ptr<CollectiveEngine> coll;
    std::unique_ptr<MemoryModel> mem;
    std::vector<std::unique_ptr<Sys>> sys;
    std::unique_ptr<ExecutionEngine> engine;
};

/**
 * One job's full runtime state. Heap-allocated (stable addresses: the
 * network view borrows the job topology, the collective engine
 * borrows the view, the system layers borrow both) and kept alive
 * until the ClusterSimulator dies — trailing fabric events may still
 * reference a finished job's callbacks.
 */
struct ClusterSimulator::JobRuntime
{
    int id = -1;
    JobSpec spec;
    Topology jobTopo;
    Workload wl;

    std::optional<JobPlacement> placement;
    JobStack stack;

    bool done = false;
    TimeNs admitted = 0.0;
    TimeNs finished = 0.0;
    TimeNs isolated = 0.0;

    // Fabric snapshots bracketing the residency (per-job report).
    uint64_t eventsAtAdmit = 0;
    uint64_t eventsAtFinish = 0;
    std::vector<double> busyAtAdmit;
    std::vector<double> busyAtFinish;
    double maxLinkAtFinish = 0.0;

    JobRuntime(JobSpec s, Topology jt, Workload w)
        : spec(std::move(s)), jobTopo(std::move(jt)), wl(std::move(w))
    {
    }
};

ClusterSimulator::ClusterSimulator(Topology topo, ClusterConfig cfg)
    : topo_(std::move(topo)), cfg_(std::move(cfg)),
      net_(makeNetwork(cfg_.backend, eq_, topo_)), placer_(topo_)
{
}

ClusterSimulator::~ClusterSimulator() = default;

int
ClusterSimulator::addJob(JobSpec spec)
{
    ASTRA_USER_CHECK(!ran_, "addJob after run()");
    ASTRA_USER_CHECK(spec.arrival >= 0.0,
                     "job '%s': negative arrival time",
                     spec.name.c_str());
    ASTRA_USER_CHECK(spec.workload.has_value() !=
                         !spec.workloadDoc.isNull(),
                     "job '%s': set exactly one of workload / "
                     "workloadDoc",
                     spec.name.c_str());

    Topology job_topo = [&] {
        if (spec.placement == PlacementPolicy::Explicit) {
            ASTRA_USER_CHECK(!spec.explicitNpus.empty(),
                             "job '%s': explicit placement needs "
                             "'npus'",
                             spec.name.c_str());
            int n = static_cast<int>(spec.explicitNpus.size());
            if (spec.explicitTopo) {
                ASTRA_USER_CHECK(
                    spec.explicitTopo->npus() == n,
                    "job '%s': job topology has %d NPUs but the "
                    "explicit placement lists %d",
                    spec.name.c_str(), spec.explicitTopo->npus(), n);
                return *spec.explicitTopo;
            }
            // Default shape for irregular placements: one flat
            // switch dimension with the cluster's innermost link
            // parameters (timing still comes from the real fabric).
            Dimension flat = topo_.dim(0);
            flat.type = BlockType::Switch;
            flat.size = n;
            return Topology({flat});
        }
        ASTRA_USER_CHECK(spec.size >= 1 && spec.size <= topo_.npus(),
                         "job '%s': size %d out of range (cluster has "
                         "%d NPUs)",
                         spec.name.c_str(), spec.size, topo_.npus());
        return sliceTopology(topo_, spec.size); // fatal if incompatible.
    }();

    Workload wl = spec.workload
                      ? *spec.workload
                      : sweep::workloadFromSpec(job_topo,
                                                spec.workloadDoc);
    validateWorkload(wl, job_topo.npus());

    auto job = std::make_unique<JobRuntime>(
        std::move(spec), std::move(job_topo), std::move(wl));
    job->id = static_cast<int>(jobs_.size());
    if (job->spec.name.empty())
        job->spec.name = "job" + std::to_string(job->id);
    jobs_.push_back(std::move(job));
    return jobs_.back()->id;
}

void
ClusterSimulator::buildStack(JobRuntime &job, NetworkApi &fabric,
                             JobStack &stack)
{
    // Per-job tag namespace: NPUs are reused over time, so a
    // finished tenant's unmatched deliveries must never satisfy a
    // successor's receives on the same global ids (rank_view.h).
    uint64_t salt = (static_cast<uint64_t>(job.id) + 1) << 48;
    stack.view = std::make_unique<RankViewNetwork>(
        fabric, job.jobTopo, *job.placement, salt);
    stack.coll = std::make_unique<CollectiveEngine>(*stack.view);
    stack.mem = makeMemory(job.spec.cfg);
    stack.sys.reserve(static_cast<size_t>(job.jobTopo.npus()));
    TimeNs now = fabric.eventQueue().now();
    for (NpuId n = 0; n < job.jobTopo.npus(); ++n) {
        stack.sys.push_back(std::make_unique<Sys>(
            n, job.spec.cfg.sys, *stack.coll, *stack.mem));
        stack.sys.back()->tracker().alignStart(now);
    }
    stack.engine = std::make_unique<ExecutionEngine>(stack.sys, job.wl);
}

bool
ClusterSimulator::admit(JobRuntime &job)
{
    std::optional<JobPlacement> placement =
        job.spec.placement == PlacementPolicy::Explicit
            ? placer_.tryPlaceExplicit(job.spec.explicitNpus)
            : placer_.tryPlace(job.jobTopo.npus(), job.spec.placement);
    if (!placement)
        return false;
    job.placement = std::move(*placement);

    buildStack(job, *net_, job.stack);
    size_t index = static_cast<size_t>(job.id);
    job.stack.engine->setOnFinished(
        [this, index] { onJobFinished(index); });

    job.admitted = eq_.now();
    job.eventsAtAdmit = eq_.executedEvents();
    job.busyAtAdmit = net_->stats().busyTimePerDim;
    ++runningJobs_;
    job.stack.engine->start();
    return true;
}

void
ClusterSimulator::tryAdmit()
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        JobRuntime &job = *jobs_[*it];
        if (admit(job)) {
            it = pending_.erase(it);
        } else if (cfg_.admission == AdmissionPolicy::Fifo) {
            break; // the head blocks everything behind it.
        } else {
            ++it; // backfill: later jobs may still fit.
        }
    }
}

void
ClusterSimulator::onJobFinished(size_t index)
{
    JobRuntime &job = *jobs_[index];
    ASTRA_ASSERT(!job.done, "job finished twice");
    job.done = true;
    job.finished = eq_.now();
    job.eventsAtFinish = eq_.executedEvents();
    job.busyAtFinish = net_->stats().busyTimePerDim;
    job.maxLinkAtFinish = net_->stats().maxLinkBusyNs;
    for (auto &sys : job.stack.sys)
        sys->tracker().finish(job.finished);
    placer_.release(*job.placement);
    --runningJobs_;
    tryAdmit();
}

TimeNs
ClusterSimulator::runIsolated(JobRuntime &job)
{
    // Fresh queue + fresh fabric, same placement, same workload, same
    // stack construction (buildStack): the only thing removed is the
    // other tenants. Finish is the last node's completion time (the
    // same definition the co-executed duration uses), so slowdown ==
    // 1.0 bit-exactly when nothing contended.
    EventQueue eq;
    std::unique_ptr<NetworkApi> net = makeNetwork(cfg_.backend, eq,
                                                  topo_);
    JobStack stack;
    buildStack(job, *net, stack);
    TimeNs finish = 0.0;
    stack.engine->setOnFinished([&finish, &eq] { finish = eq.now(); });
    stack.engine->start();
    eq.run();
    ASTRA_USER_CHECK(stack.engine->finished(),
                     "job '%s': isolated baseline deadlocked",
                     job.spec.name.c_str());
    return finish;
}

JobResult
ClusterSimulator::finalizeJob(JobRuntime &job)
{
    JobResult r;
    r.id = job.id;
    r.name = job.spec.name;
    r.size = job.jobTopo.npus();
    r.placement = job.placement->describe();
    r.arrival = job.spec.arrival;
    r.admitted = job.admitted;
    r.finished = job.finished;
    r.queueingDelay = job.admitted - job.spec.arrival;
    r.duration = job.finished - job.admitted;
    r.isolatedDuration = job.isolated;
    r.interferenceSlowdown =
        job.isolated > 0.0 ? r.duration / job.isolated : 0.0;

    Report &rep = r.report;
    rep.workload = job.wl.name;
    rep.totalTime = r.duration;
    rep.perNpu.reserve(job.stack.sys.size());
    for (auto &sys : job.stack.sys) {
        rep.perNpu.push_back(breakdownOf(sys->tracker()));
        rep.average += rep.perNpu.back();
    }
    rep.average = rep.average.scaled(1.0 / double(job.stack.sys.size()));
    rep.events = job.eventsAtFinish - job.eventsAtAdmit;
    rep.messages = job.stack.view->stats().messages;
    rep.bytesPerDim = job.stack.view->stats().bytesPerDim;
    rep.busyTimePerDim = job.busyAtFinish;
    for (size_t d = 0; d < rep.busyTimePerDim.size(); ++d)
        rep.busyTimePerDim[d] -= job.busyAtAdmit[d];
    rep.linksPerDim = net_->stats().linksPerDim;
    rep.maxLinkBusyNs = job.maxLinkAtFinish;
    rep.queueingDelayNs = r.queueingDelay;
    rep.interferenceSlowdown = r.interferenceSlowdown;
    return r;
}

ClusterReport
ClusterSimulator::run()
{
    ASTRA_USER_CHECK(!ran_, "a ClusterSimulator runs once; create a "
                            "fresh instance per run");
    ASTRA_USER_CHECK(!jobs_.empty(), "cluster has no jobs");
    ran_ = true;

    // Arrival order (time, then submission order). Admission order
    // within the pending queue is (priority desc, arrival, id).
    std::vector<size_t> order(jobs_.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return jobs_[a]->spec.arrival <
                                jobs_[b]->spec.arrival;
                     });

    auto enqueue = [&](size_t id) {
        auto pos = std::find_if(
            pending_.begin(), pending_.end(), [&](size_t other) {
                const JobSpec &a = jobs_[id]->spec;
                const JobSpec &b = jobs_[other]->spec;
                if (a.priority != b.priority)
                    return a.priority > b.priority;
                if (a.arrival != b.arrival)
                    return a.arrival < b.arrival;
                return id < other;
            });
        pending_.insert(pos, id);
    };

    size_t next = 0;
    while (next < order.size()) {
        TimeNs t = jobs_[order[next]]->spec.arrival;
        // Drain everything at or before the arrival, then admit at
        // exactly t (runUntil advances the clock through gaps). A
        // time-zero arrival executes no events first, so a
        // single-job cluster replays a plain Simulator run exactly.
        eq_.runUntil(t);
        while (next < order.size() &&
               jobs_[order[next]]->spec.arrival == t)
            enqueue(order[next++]);
        tryAdmit();
    }
    eq_.run();

    // Safety net: admission progress is normally driven by job
    // completions; if jobs are still pending on a drained queue,
    // either admit them now or report the stall as a user error.
    while (!pending_.empty()) {
        size_t before = pending_.size();
        tryAdmit();
        ASTRA_USER_CHECK(
            pending_.size() < before,
            "cluster admission stalled: job '%s' cannot be placed "
            "(free NPUs: %d of %d)",
            jobs_[pending_.front()]->spec.name.c_str(),
            placer_.freeCount(), placer_.totalCount());
        eq_.run();
    }

    ClusterReport report;
    report.makespan = eq_.now();
    report.totalEvents = eq_.executedEvents();
    report.totalMessages = net_->stats().messages;

    for (auto &job : jobs_) {
        ASTRA_USER_CHECK(job->done,
                         "job '%s' deadlocked: %zu of %zu nodes "
                         "completed (check send/recv pairing and "
                         "collective group membership)",
                         job->spec.name.c_str(),
                         job->stack.engine ? job->stack.engine->completedNodes()
                                          : 0,
                         job->wl.totalNodes());
        if (cfg_.isolatedBaselines)
            job->isolated = runIsolated(*job);
        report.jobs.push_back(finalizeJob(*job));
    }

    // Cluster-aggregate report (the sweep-facing row).
    Report &agg = report.aggregate;
    char label[64];
    std::snprintf(label, sizeof(label), "cluster(%zu jobs)",
                  jobs_.size());
    agg.workload = label;
    agg.totalTime = report.makespan;
    agg.perNpu.assign(static_cast<size_t>(topo_.npus()),
                      RuntimeBreakdown{});
    for (const JobResult &jr : report.jobs) {
        const JobPlacement &pl = *jobs_[static_cast<size_t>(jr.id)]
                                      ->placement;
        for (size_t l = 0; l < jr.report.perNpu.size(); ++l)
            agg.perNpu[static_cast<size_t>(pl.globalOf[l])] +=
                jr.report.perNpu[l];
    }
    for (const RuntimeBreakdown &b : agg.perNpu)
        agg.average += b;
    agg.average = agg.average.scaled(1.0 / double(topo_.npus()));
    agg.events = report.totalEvents;
    agg.messages = report.totalMessages;
    agg.bytesPerDim = net_->stats().bytesPerDim;
    agg.busyTimePerDim = net_->stats().busyTimePerDim;
    agg.linksPerDim = net_->stats().linksPerDim;
    agg.maxLinkBusyNs = net_->stats().maxLinkBusyNs;
    agg.queueingDelayNs = report.meanQueueingDelay();
    agg.interferenceSlowdown =
        cfg_.isolatedBaselines ? report.meanInterferenceSlowdown() : 0.0;
    return report;
}

double
ClusterReport::meanQueueingDelay() const
{
    if (jobs.empty())
        return 0.0;
    double sum = 0.0;
    for (const JobResult &j : jobs)
        sum += j.queueingDelay;
    return sum / double(jobs.size());
}

double
ClusterReport::meanInterferenceSlowdown() const
{
    if (jobs.empty())
        return 0.0;
    double sum = 0.0;
    for (const JobResult &j : jobs)
        sum += j.interferenceSlowdown;
    return sum / double(jobs.size());
}

double
ClusterReport::maxInterferenceSlowdown() const
{
    double best = 0.0;
    for (const JobResult &j : jobs)
        best = std::max(best, j.interferenceSlowdown);
    return best;
}

std::string
ClusterReport::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cluster: %zu jobs, makespan %.3f ms, %llu events, "
                  "%llu messages\n"
                  "mean queueing delay %.3f ms, mean interference "
                  "slowdown %.3fx (max %.3fx)\n",
                  jobs.size(), makespan / kMs,
                  static_cast<unsigned long long>(totalEvents),
                  static_cast<unsigned long long>(totalMessages),
                  meanQueueingDelay() / kMs, meanInterferenceSlowdown(),
                  maxInterferenceSlowdown());
    std::string out = buf;
    for (const JobResult &j : jobs) {
        std::snprintf(
            buf, sizeof(buf),
            "  [%d] %-12s %4d NPUs %-20s arrive %.3f ms, wait %.3f "
            "ms, run %.3f ms, slowdown %.3fx\n",
            j.id, j.name.c_str(), j.size, j.placement.c_str(),
            j.arrival / kMs, j.queueingDelay / kMs, j.duration / kMs,
            j.interferenceSlowdown);
        out += buf;
    }
    return out;
}

json::Value
ClusterReport::toJson() const
{
    json::Object doc;
    doc["makespan_ns"] = json::Value(makespan);
    doc["events"] = json::Value(totalEvents);
    doc["messages"] = json::Value(totalMessages);
    doc["mean_queueing_delay_ns"] = json::Value(meanQueueingDelay());
    doc["mean_interference_slowdown"] =
        json::Value(meanInterferenceSlowdown());
    doc["aggregate"] = reportToJson(aggregate);
    json::Array rows;
    rows.reserve(jobs.size());
    for (const JobResult &j : jobs) {
        json::Object row;
        row["id"] = json::Value(j.id);
        row["name"] = json::Value(j.name);
        row["size"] = json::Value(j.size);
        row["placement"] = json::Value(j.placement);
        row["arrival_ns"] = json::Value(j.arrival);
        row["admitted_ns"] = json::Value(j.admitted);
        row["finished_ns"] = json::Value(j.finished);
        row["queueing_delay_ns"] = json::Value(j.queueingDelay);
        row["duration_ns"] = json::Value(j.duration);
        row["isolated_duration_ns"] = json::Value(j.isolatedDuration);
        row["interference_slowdown"] =
            json::Value(j.interferenceSlowdown);
        row["report"] = reportToJson(j.report);
        rows.push_back(json::Value(std::move(row)));
    }
    doc["jobs"] = json::Value(std::move(rows));
    return json::Value(std::move(doc));
}

std::string
ClusterReport::jobsCsv() const
{
    std::string out =
        "id,name,size,placement,arrival_ns,admitted_ns,finished_ns,"
        "queueing_delay_ns,duration_ns,isolated_duration_ns,"
        "interference_slowdown\n";
    char buf[192];
    for (const JobResult &j : jobs) {
        std::snprintf(buf, sizeof(buf), "%d,", j.id);
        out += buf;
        out += csvField(j.name) + ',';
        std::snprintf(buf, sizeof(buf), "%d,", j.size);
        out += buf;
        out += csvField(j.placement);
        std::snprintf(buf, sizeof(buf),
                      ",%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.6f\n",
                      j.arrival, j.admitted, j.finished,
                      j.queueingDelay, j.duration, j.isolatedDuration,
                      j.interferenceSlowdown);
        out += buf;
    }
    return out;
}

} // namespace cluster
} // namespace astra
