#include "cluster/config.h"

#include <utility>

#include "astra/config.h"
#include "common/logging.h"
#include "sweep/spec.h"

namespace astra {
namespace cluster {

namespace {

/** Reject unknown keys with a path-qualified error ("cluster.jobs.2:
 *  unknown key 'placment'"). */
void
checkKeys(const json::Value &v, const std::string &path,
          std::initializer_list<const char *> allowed)
{
    if (!v.isObject())
        return;
    for (const auto &[key, value] : v.asObject()) {
        (void)value;
        bool known = false;
        for (const char *a : allowed)
            known = known || key == a;
        ASTRA_USER_CHECK(known, "%s: unknown key '%s'", path.c_str(),
                         key.c_str());
    }
}

JobSpec
jobFromJson(const json::Value &j, const Topology &topo,
            NetworkBackendKind backend, PlacementPolicy default_policy,
            const json::Value *default_system, const std::string &path)
{
    checkKeys(j, path,
              {"name", "arrival_ns", "priority", "placement", "npus",
               "job_topology", "size", "system", "workload", "count",
               "checkpoint", "estimated_duration_ns"});
    JobSpec spec;
    spec.name = j.getString("name", "");
    spec.arrival = j.getNumber("arrival_ns", 0.0);
    ASTRA_USER_CHECK(spec.arrival >= 0.0 &&
                         spec.arrival == spec.arrival,
                     "%s.arrival_ns: must be a non-negative time, got "
                     "%g",
                     path.c_str(), spec.arrival);
    spec.priority = static_cast<int>(j.getInt("priority", 0));
    spec.placement = j.has("placement")
                         ? parsePlacementPolicy(
                               j.at("placement").asString())
                         : default_policy;

    if (spec.placement == PlacementPolicy::Explicit) {
        ASTRA_USER_CHECK(j.has("npus"),
                         "%s: explicit placement needs 'npus'",
                         path.c_str());
        for (const json::Value &n : j.at("npus").asArray()) {
            double raw = n.asNumber();
            NpuId id = static_cast<NpuId>(raw);
            ASTRA_USER_CHECK(
                raw == static_cast<double>(id) && id >= 0 &&
                    id < topo.npus(),
                "%s.npus: placement index %g out of range (cluster "
                "has %d NPUs)",
                path.c_str(), raw, topo.npus());
            spec.explicitNpus.push_back(id);
        }
        if (j.has("job_topology"))
            spec.explicitTopo =
                sweep::topologyFromSpec(j.at("job_topology"));
    } else {
        ASTRA_USER_CHECK(j.has("size"), "%s: missing 'size'",
                         path.c_str());
        spec.size = static_cast<int>(j.at("size").asInt());
        ASTRA_USER_CHECK(spec.size >= 1 && spec.size <= topo.npus(),
                         "%s.size: %d out of range (cluster has %d "
                         "NPUs)",
                         path.c_str(), spec.size, topo.npus());
    }

    const json::Value *system =
        j.has("system") ? &j.at("system") : default_system;
    if (system != nullptr)
        spec.cfg = simulatorConfigFromJson(*system, backend);
    else
        spec.cfg.backend = backend;

    if (j.has("checkpoint"))
        spec.checkpoint = fault::checkpointFromJson(
            j.at("checkpoint"), path + ".checkpoint");

    spec.estimatedDuration = j.getNumber("estimated_duration_ns", 0.0);
    ASTRA_USER_CHECK(spec.estimatedDuration >= 0.0 &&
                         spec.estimatedDuration ==
                             spec.estimatedDuration,
                     "%s.estimated_duration_ns: must be a non-negative "
                     "time, got %g",
                     path.c_str(), spec.estimatedDuration);

    ASTRA_USER_CHECK(j.has("workload"), "%s: missing 'workload'",
                     path.c_str());
    spec.workloadDoc = j.at("workload").clone();
    return spec;
}

} // namespace

bool
isClusterDoc(const json::Value &doc)
{
    return doc.isObject() && doc.has("cluster");
}

ClusterScenario
scenarioFromJson(const json::Value &doc)
{
    ASTRA_USER_CHECK(isClusterDoc(doc),
                     "not a cluster configuration (missing 'cluster')");
    checkKeys(doc, "config",
              {"topology", "backend", "system", "cluster", "fault",
               "trace", "telemetry"});
    ASTRA_USER_CHECK(doc.has("topology"),
                     "cluster config: missing 'topology'");

    const json::Value &c = doc.at("cluster");
    checkKeys(c, "cluster",
              {"admission", "baselines", "placement", "jobs",
               "checkpoint", "spares"});
    ClusterScenario scenario{sweep::topologyFromSpec(doc.at("topology")),
                             ClusterConfig{},
                             {}};
    scenario.cfg.backend = backendFromJson(doc);
    scenario.cfg.admission =
        parseAdmissionPolicy(c.getString("admission", "fifo"));
    scenario.cfg.isolatedBaselines = c.getBool("baselines", true);
    if (doc.has("fault"))
        scenario.cfg.fault =
            fault::faultConfigFromJson(doc.at("fault"), "fault");
    if (doc.has("trace"))
        scenario.cfg.trace =
            trace::traceConfigFromJson(doc.at("trace"), "trace");
    if (doc.has("telemetry"))
        scenario.cfg.telemetry = telemetry::telemetryConfigFromJson(
            doc.at("telemetry"), "telemetry");
    // Stamped even when the block is absent: CLI-layered telemetry
    // (--manifest on cluster_runner) still gets run provenance.
    scenario.cfg.telemetry.configHash = sweep::configHash(doc);
    if (c.has("checkpoint"))
        scenario.cfg.defaultCheckpoint = fault::checkpointFromJson(
            c.at("checkpoint"), "cluster.checkpoint");
    if (c.has("spares")) {
        // A count reserves the highest NPU ids; a string names one
        // whole failure domain from fault.domains (docs/fault.md).
        const json::Value &s = c.at("spares");
        if (s.isString()) {
            scenario.cfg.spareDomain = s.asString();
            ASTRA_USER_CHECK(!scenario.cfg.spareDomain.empty(),
                             "cluster.spares: empty domain name");
        } else {
            scenario.cfg.spareCount = static_cast<int>(s.asInt());
            ASTRA_USER_CHECK(scenario.cfg.spareCount >= 1,
                             "cluster.spares: must be >= 1 (omit the "
                             "key for no spares)");
        }
    }

    PlacementPolicy default_policy =
        c.has("placement")
            ? parsePlacementPolicy(c.at("placement").asString())
            : PlacementPolicy::Contiguous;
    const json::Value *default_system =
        doc.has("system") ? &doc.at("system") : nullptr;

    ASTRA_USER_CHECK(c.has("jobs"), "cluster config: missing 'jobs'");
    size_t job_index = 0;
    for (const json::Value &j : c.at("jobs").asArray()) {
        std::string path =
            "cluster.jobs." + std::to_string(job_index++);
        JobSpec spec = jobFromJson(j, scenario.topo,
                                   scenario.cfg.backend, default_policy,
                                   default_system, path);
        int count = static_cast<int>(j.getInt("count", 1));
        ASTRA_USER_CHECK(count >= 1, "%s.count: must be >= 1",
                         path.c_str());
        for (int i = 0; i < count; ++i) {
            JobSpec copy = spec;
            copy.workloadDoc = spec.workloadDoc.clone();
            if (count > 1 && !copy.name.empty())
                copy.name += "#" + std::to_string(i);
            scenario.jobs.push_back(std::move(copy));
        }
    }
    ASTRA_USER_CHECK(!scenario.jobs.empty(),
                     "cluster config: empty 'jobs'");
    return scenario;
}

ClusterReport
runClusterScenario(const json::Value &doc)
{
    ClusterScenario scenario = scenarioFromJson(doc);
    ClusterSimulator sim(std::move(scenario.topo), scenario.cfg);
    for (JobSpec &job : scenario.jobs)
        sim.addJob(std::move(job));
    return sim.run();
}

Report
runClusterDoc(const json::Value &doc)
{
    return runClusterScenario(doc).aggregate;
}

void
writeSampleClusterConfig(const std::string &path)
{
    json::Value doc = json::parse(R"json({
      "topology": "Ring(16,100)",
      "backend": "flow",
      "system": {"peak_tflops": 234, "collective_chunks": 4},
      "cluster": {
        "admission": "fifo",
        "baselines": true,
        "placement": "contiguous",
        "jobs": [
          {"name": "train-a", "arrival_ns": 0, "size": 8,
           "workload": {"kind": "collective",
                        "collective": "all-reduce",
                        "bytes": 4194304}},
          {"name": "train-b", "arrival_ns": 0, "size": 8,
           "placement": "spread",
           "workload": {"kind": "collective",
                        "collective": "all-reduce",
                        "bytes": 4194304}}
        ]
      }
    })json");
    json::writeFile(path, doc);
}

} // namespace cluster
} // namespace astra
