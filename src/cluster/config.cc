#include "cluster/config.h"

#include <utility>

#include "astra/config.h"
#include "common/logging.h"
#include "sweep/spec.h"

namespace astra {
namespace cluster {

namespace {

JobSpec
jobFromJson(const json::Value &j, const Topology &topo,
            NetworkBackendKind backend, PlacementPolicy default_policy,
            const json::Value *default_system)
{
    JobSpec spec;
    spec.name = j.getString("name", "");
    spec.arrival = j.getNumber("arrival_ns", 0.0);
    spec.priority = static_cast<int>(j.getInt("priority", 0));
    spec.placement = j.has("placement")
                         ? parsePlacementPolicy(
                               j.at("placement").asString())
                         : default_policy;

    if (spec.placement == PlacementPolicy::Explicit) {
        ASTRA_USER_CHECK(j.has("npus"),
                         "cluster job '%s': explicit placement needs "
                         "'npus'",
                         spec.name.c_str());
        for (const json::Value &n : j.at("npus").asArray())
            spec.explicitNpus.push_back(
                static_cast<NpuId>(n.asNumber()));
        if (j.has("job_topology"))
            spec.explicitTopo =
                sweep::topologyFromSpec(j.at("job_topology"));
    } else {
        ASTRA_USER_CHECK(j.has("size"),
                         "cluster job '%s': missing 'size'",
                         spec.name.c_str());
        spec.size = static_cast<int>(j.at("size").asInt());
    }

    const json::Value *system =
        j.has("system") ? &j.at("system") : default_system;
    if (system != nullptr)
        spec.cfg = simulatorConfigFromJson(*system, backend);
    else
        spec.cfg.backend = backend;

    ASTRA_USER_CHECK(j.has("workload"),
                     "cluster job '%s': missing 'workload'",
                     spec.name.c_str());
    spec.workloadDoc = j.at("workload").clone();
    (void)topo;
    return spec;
}

} // namespace

bool
isClusterDoc(const json::Value &doc)
{
    return doc.isObject() && doc.has("cluster");
}

ClusterScenario
scenarioFromJson(const json::Value &doc)
{
    ASTRA_USER_CHECK(isClusterDoc(doc),
                     "not a cluster configuration (missing 'cluster')");
    ASTRA_USER_CHECK(doc.has("topology"),
                     "cluster config: missing 'topology'");

    const json::Value &c = doc.at("cluster");
    ClusterScenario scenario{sweep::topologyFromSpec(doc.at("topology")),
                             ClusterConfig{},
                             {}};
    scenario.cfg.backend = backendFromJson(doc);
    scenario.cfg.admission =
        parseAdmissionPolicy(c.getString("admission", "fifo"));
    scenario.cfg.isolatedBaselines = c.getBool("baselines", true);

    PlacementPolicy default_policy =
        c.has("placement")
            ? parsePlacementPolicy(c.at("placement").asString())
            : PlacementPolicy::Contiguous;
    const json::Value *default_system =
        doc.has("system") ? &doc.at("system") : nullptr;

    ASTRA_USER_CHECK(c.has("jobs"), "cluster config: missing 'jobs'");
    for (const json::Value &j : c.at("jobs").asArray()) {
        JobSpec spec = jobFromJson(j, scenario.topo,
                                   scenario.cfg.backend, default_policy,
                                   default_system);
        int count = static_cast<int>(j.getInt("count", 1));
        ASTRA_USER_CHECK(count >= 1,
                         "cluster job '%s': count must be >= 1",
                         spec.name.c_str());
        for (int i = 0; i < count; ++i) {
            JobSpec copy = spec;
            copy.workloadDoc = spec.workloadDoc.clone();
            if (count > 1 && !copy.name.empty())
                copy.name += "#" + std::to_string(i);
            scenario.jobs.push_back(std::move(copy));
        }
    }
    ASTRA_USER_CHECK(!scenario.jobs.empty(),
                     "cluster config: empty 'jobs'");
    return scenario;
}

ClusterReport
runClusterScenario(const json::Value &doc)
{
    ClusterScenario scenario = scenarioFromJson(doc);
    ClusterSimulator sim(std::move(scenario.topo), scenario.cfg);
    for (JobSpec &job : scenario.jobs)
        sim.addJob(std::move(job));
    return sim.run();
}

Report
runClusterDoc(const json::Value &doc)
{
    return runClusterScenario(doc).aggregate;
}

void
writeSampleClusterConfig(const std::string &path)
{
    json::Value doc = json::parse(R"json({
      "topology": "Ring(16,100)",
      "backend": "flow",
      "system": {"peak_tflops": 234, "collective_chunks": 4},
      "cluster": {
        "admission": "fifo",
        "baselines": true,
        "placement": "contiguous",
        "jobs": [
          {"name": "train-a", "arrival_ns": 0, "size": 8,
           "workload": {"kind": "collective",
                        "collective": "all-reduce",
                        "bytes": 4194304}},
          {"name": "train-b", "arrival_ns": 0, "size": 8,
           "placement": "spread",
           "workload": {"kind": "collective",
                        "collective": "all-reduce",
                        "bytes": 4194304}}
        ]
      }
    })json");
    json::writeFile(path, doc);
}

} // namespace cluster
} // namespace astra
