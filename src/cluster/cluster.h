/**
 * @file
 * Multi-tenant cluster simulation: N jobs co-executing on ONE shared
 * fabric (docs/cluster.md).
 *
 * A ClusterSimulator owns one EventQueue and one full-topology
 * network backend; every job gets its own workload, placement
 * (cluster/placement.h), rank-translation network view
 * (cluster/rank_view.h), collective engine, memory model, per-NPU
 * system layers, and execution engine — all driven by the shared
 * queue. Jobs arrive over time (JobSpec::arrival), wait in an
 * admission queue until a placement is free (FIFO or backfill), run
 * co-scheduled with whatever else holds the fabric, and report
 * per-job results: queueing delay, duration, and — against a fresh
 * isolated re-run of the same job at the same placement — an
 * interference slowdown that quantifies what co-tenancy cost.
 *
 * Fidelity note: inter-job interference is only visible to backends
 * that model shared links. The flow backend resolves it by max-min
 * fair sharing and the packet backend by store-and-forward queueing;
 * the analytical backends serialize per-(NPU, dim) transmit ports
 * only, so disjoint jobs can never contend there (slowdown stays
 * 1.0). See docs/cluster.md.
 */
#ifndef ASTRA_CLUSTER_CLUSTER_H_
#define ASTRA_CLUSTER_CLUSTER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "astra/simulator.h"
#include "cluster/placement.h"
#include "cluster/rank_view.h"
#include "common/json.h"
#include "workload/engine.h"

namespace astra {
namespace cluster {

/** Admission-queue policy. */
enum class AdmissionPolicy {
    Fifo,     //!< strict order; the head blocks everything behind it.
    Backfill, //!< later jobs may start whenever they fit.
};

const char *admissionPolicyName(AdmissionPolicy p);
AdmissionPolicy parseAdmissionPolicy(const std::string &name);

/** Cluster-level configuration. */
struct ClusterConfig
{
    NetworkBackendKind backend = NetworkBackendKind::Analytical;
    AdmissionPolicy admission = AdmissionPolicy::Fifo;
    /**
     * Re-run each job alone (same placement, fresh queue + fabric)
     * to compute its interference slowdown. Costs one extra
     * simulation per job; disable for pure capacity studies.
     */
    bool isolatedBaselines = true;
    /**
     * Optional fault scenario injected into the shared fabric
     * (docs/fault.md). The cluster layer supports the full fault
     * model including NPU fail/recover: a failed NPU takes its
     * resident job down (rollback to last checkpoint, restart per
     * the job's CheckpointPolicy) and is excluded from placement
     * until it recovers. Absent or empty scenarios leave every code
     * path bit-identical to a fault-free build.
     */
    std::optional<fault::FaultConfig> fault;
    /** Checkpoint policy for jobs that don't set their own. The
     *  default (zeroed) policy means "no checkpointing": a failed
     *  job re-executes from the beginning. */
    fault::CheckpointPolicy defaultCheckpoint;
    /**
     * Spare capacity for RestartMode::Spare (docs/fault.md
     * "Spare-capacity restart"): reserve either the `spareCount`
     * highest NPU ids or one whole failure domain (`spareDomain`
     * names a resolved domain from the fault config). Reserved NPUs
     * are excluded from every placement search; spare-mode restarts
     * consume them to patch failed placements. At most one of the
     * two may be set.
     */
    int spareCount = 0;
    std::string spareDomain;
    /**
     * Tracing & self-profiling (docs/trace.md). One shared tracer
     * covers the whole cluster: pid 0 is the fabric (link tracks,
     * fault instants), each job traces under pid = job id + 1 (rank
     * tracks, collective spans, lifecycle queued/admitted/checkpoint/
     * fail/restart/done). Isolated-baseline re-runs are never traced.
     */
    trace::TraceConfig trace;
    /**
     * Host-process telemetry (docs/observability.md): cluster
     * heartbeats additionally carry per-job progress entries, and
     * cluster-level progress aggregates workload nodes across every
     * registered job. Defaults all off (bit-identical).
     */
    telemetry::TelemetryConfig telemetry;
};

/** One job to run on the cluster. */
struct JobSpec
{
    std::string name;
    TimeNs arrival = 0.0; //!< submission time.
    int priority = 0;     //!< higher admits first among the queued.
    int size = 0;         //!< NPUs (ignored for Explicit: list length).
    PlacementPolicy placement = PlacementPolicy::Contiguous;
    /** Explicit policy: the cluster NPUs, in job-local rank order. */
    std::vector<NpuId> explicitNpus;
    /** Explicit policy: the job topology (product must equal the NPU
     *  count); sliced policies derive theirs from the cluster. */
    std::optional<Topology> explicitTopo;
    /** Per-job system/memory configuration (backend field unused —
     *  the fabric is the cluster's). */
    SimulatorConfig cfg;
    /**
     * The job's workload, in job-local NPU ids against the job
     * topology (sliceTopology(cluster, size), or the explicit one).
     * Exactly one of `workload` / `workloadDoc` must be set;
     * workloadDoc uses the sweep workload schema (sweep/spec.h) and
     * is built against the job topology at addJob time.
     */
    std::optional<Workload> workload;
    json::Value workloadDoc;
    /** Per-job checkpoint/restart policy; falls back to
     *  ClusterConfig::defaultCheckpoint when unset. */
    std::optional<fault::CheckpointPolicy> checkpoint;
    /**
     * User-supplied runtime estimate (0 = none). Backfill admission
     * becomes EASY-style when estimates are present: a later job may
     * jump a blocked queue head only if its estimate fits before the
     * head's projected start (docs/cluster.md "Backfill"). Purely an
     * admission hint; never affects execution.
     */
    TimeNs estimatedDuration = 0.0;
};

/** Per-job outcome. */
struct JobResult
{
    int id = -1;
    std::string name;
    int size = 0;
    std::string placement; //!< JobPlacement::describe().
    TimeNs arrival = 0.0;
    TimeNs admitted = 0.0;  //!< placement granted, execution started.
    TimeNs finished = 0.0;  //!< last workload node completed.
    TimeNs queueingDelay = 0.0;     //!< admitted - arrival.
    TimeNs duration = 0.0;          //!< finished - admitted.
    TimeNs isolatedDuration = 0.0;  //!< 0 when baselines disabled.
    /** duration / isolatedDuration (0 when baselines disabled). */
    double interferenceSlowdown = 0.0;
    /**
     * Failure-resilience outcome (docs/fault.md). `numFaults` counts
     * the NPU failures that hit this job; `lostWork` sums the
     * simulated time rolled back to the last checkpoint on each
     * failure; `recovery` sums failure-to-restart gaps; `restarts`
     * counts re-executions (checkpoint-resume or from scratch);
     * `goodput` = isolatedDuration / duration — the fraction of the
     * job's wall time that was ideal fault-free progress (0 when
     * baselines are disabled). A `failed` job never finished (its
     * NPUs never recovered, it could not be re-placed, or its
     * workload deadlocked); `error` carries the diagnostic and the
     * timing/goodput fields are left 0.
     */
    uint64_t numFaults = 0;
    TimeNs lostWork = 0.0;
    TimeNs recovery = 0.0;
    int restarts = 0;
    double goodput = 0.0;
    /** Fraction of the job's wall time it was making (or able to
     *  make) progress: 1 - recovery / duration. 1.0 for an
     *  undisturbed job, 0 when it never finished. */
    double availability = 0.0;
    bool failed = false;
    std::string error;
    /** This job's own link-busy ns per cluster dimension (separable
     *  per-tenant attribution; see RankViewNetwork::ownBusy). */
    std::vector<double> ownBusyPerDim;
    /**
     * Per-job report: breakdowns over [admitted, finished] per local
     * NPU; events = cluster events executed during the residency;
     * messages/bytesPerDim = this job's own traffic (cluster dims);
     * busyTimePerDim = fabric busy accrued during the residency
     * (all tenants); maxLinkBusyNs = fabric value at finish.
     */
    Report report;
};

/** Whole-cluster outcome. */
struct ClusterReport
{
    TimeNs makespan = 0.0;   //!< final simulated time (queue drained).
    uint64_t totalEvents = 0;
    uint64_t totalMessages = 0;
    std::vector<JobResult> jobs;
    /**
     * Cluster-aggregate Report (what a cluster config yields inside a
     * sweep): totalTime = makespan, per-NPU breakdowns summed over
     * the jobs resident on each cluster NPU, fabric-level traffic
     * stats, and the means of the per-job queueing delay /
     * interference slowdown.
     */
    Report aggregate;

    // -- Failure-resilience aggregates (docs/fault.md). All stay 0 on
    //    fault-free runs so serialized reports are unchanged.
    /** Mean jobs disrupted per fail incident (an NpuFail root or one
     *  whole DomainFail counts as a single incident). */
    double blastRadius = 0.0;
    /** Busy fraction of the reserved spare pool over the makespan. */
    double spareUtilization = 0.0;
    /** Nearest-rank percentiles of the failure-to-restart gaps. */
    TimeNs recoveryP50 = 0.0;
    TimeNs recoveryP95 = 0.0;

    double meanQueueingDelay() const;
    double meanInterferenceSlowdown() const;
    double maxInterferenceSlowdown() const;
    /** Mean goodput over the jobs that measured one (finished with
     *  isolated baselines enabled); 0 when none did. */
    double meanGoodput() const;
    /** Mean availability over the finished jobs; 0 when none did. */
    double meanAvailability() const;

    std::string summary() const;
    json::Value toJson() const;
    /** Tidy per-job CSV (incl. queueing_delay_ns and
     *  interference_slowdown columns). */
    std::string jobsCsv() const;
};

/** See file comment. */
class ClusterSimulator
{
  public:
    explicit ClusterSimulator(Topology topo, ClusterConfig cfg = {});

    ClusterSimulator(const ClusterSimulator &) = delete;
    ClusterSimulator &operator=(const ClusterSimulator &) = delete;
    ~ClusterSimulator();

    /**
     * Register a job before run(). Validates the size/placement
     * against the (empty) cluster and builds + validates the
     * workload against the job topology. Returns the job id (index
     * into ClusterReport::jobs).
     */
    int addJob(JobSpec spec);

    /** Admit + co-execute every registered job; callable once. */
    ClusterReport run();

    const Topology &topology() const { return topo_; }
    EventQueue &eventQueue() { return eq_; }
    NetworkApi &network() { return *net_; }
    int jobCount() const { return static_cast<int>(jobs_.size()); }

    /** The run's shared tracer (null unless cfg.trace enabled it);
     *  exposed so tests can inspect the timeline in memory. */
    trace::Tracer *tracer() { return tracer_.get(); }

    /** The run's heartbeat monitor (null unless cfg.telemetry enabled
     *  heartbeats); valid after run() returns. */
    telemetry::Monitor *monitor() { return monitor_.get(); }

  private:
    struct JobRuntime;
    struct JobStack;

    /** Build a job's full runtime stack (rank view, collective
     *  engine, memory, system layers, execution engine) on `fabric`,
     *  shared by co-executed admission and the isolated baseline so
     *  the two configurations cannot drift apart. Builds in place:
     *  the execution engine keeps a reference to the stack's system
     *  vector, so `stack` must already sit at its final address.
     *  `shared` marks the co-executed (shared-fabric) configuration:
     *  only it inherits straggler compute scales, the incarnation
     *  tag salt, and the checkpoint resume snapshot — the isolated
     *  baseline is always a fresh fault-free run. */
    void buildStack(JobRuntime &job, NetworkApi &fabric,
                    JobStack &stack, bool shared);

    void tryAdmit();
    bool admit(JobRuntime &job);
    /** Start (or restart) a placed job's current incarnation on the
     *  shared fabric. */
    void launch(JobRuntime &job);
    void enqueuePending(size_t id);
    void onJobFinished(size_t index);
    TimeNs runIsolated(JobRuntime &job);
    JobResult finalizeJob(JobRuntime &job);

    // Failure-resilience machinery (docs/fault.md).
    void scheduleCheckpoint(size_t index);
    void resolveAutoInterval(JobRuntime &job);
    void onStraggler(NpuId global, double compute_scale);
    void onNpuFail(const fault::FaultEvent &ev);
    void onNpuRecover(const fault::FaultEvent &ev);
    void onDomainFail(const fault::FaultEvent &ev);
    void failJob(JobRuntime &job, const fault::FaultEvent *ev);
    JobRuntime *residentJob(NpuId global);
    bool allSettled() const;
    /** Release a job's placement, accruing consumed-spare busy time. */
    void releasePlacement(JobRuntime &job);
    /** Scored-placement cost function for `policy` (avoid_degraded /
     *  anti_affinity), closed over the live fault state. */
    PlacementManager::SliceScorer sliceScorer(PlacementPolicy policy);
    /** "name (k/n NPUs faulted), ..." over the currently degraded
     *  failure domains; empty when none are. */
    std::string faultedDomainSummary() const;

    Topology topo_;
    ClusterConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<NetworkApi> net_;
    PlacementManager placer_;
    std::vector<std::unique_ptr<JobRuntime>> jobs_;
    /** Ids of jobs submitted but not yet admitted, kept sorted by
     *  (priority desc, arrival, id) — the admission order. */
    std::vector<size_t> pending_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<telemetry::Monitor> monitor_;
    QueueProfile profile_; //!< attached to eq_ while tracing.
    /** Last compute-scale fault applied per cluster NPU (stragglers
     *  outlive job turnover: new tenants inherit the slow NPU). */
    std::vector<double> npuComputeScale_;
    /** Finish time of the last job to complete. With faults or
     *  checkpoint timers active the drained queue's clock can sit on
     *  a no-op tail event past the last completion, so the makespan
     *  is taken here instead of from eq_.now(). */
    TimeNs lastFinish_ = 0.0;
    int runningJobs_ = 0;
    bool faultActive_ = false;
    bool ran_ = false;
    /** Outstanding checkpoint timer events. When the event queue holds
     *  nothing else, the fabric is quiescent and re-arming a timer
     *  would never terminate (see scheduleCheckpoint). */
    int ckptTimersPending_ = 0;

    // -- Failure-domain & spare state (docs/fault.md). All empty/zero
    //    unless the scenario declares domains or spares.
    std::vector<fault::FailureDomain> domains_; //!< resolved vs topo_.
    /** NPU id -> indices into domains_ containing it. */
    std::vector<std::vector<int>> domainsOfNpu_;
    /** Claim time per consumed spare NPU (-1 = not a consumed spare);
     *  accrued into spareBusyNs_ when its placement is released. */
    std::vector<TimeNs> spareClaimedAt_;
    double spareBusyNs_ = 0.0;
    int initialSpareCount_ = 0;
    /** Failure-to-restart gap samples (recovery percentiles). */
    std::vector<TimeNs> recoveryGaps_;
    /** Blast-radius accounting: distinct fail incidents applied, and
     *  job disruptions attributed to them. */
    std::vector<uint8_t> incidentFired_;
    uint64_t disruptions_ = 0;
};

} // namespace cluster
} // namespace astra

#endif // ASTRA_CLUSTER_CLUSTER_H_
