/**
 * @file
 * Job placement over the multi-dimensional hierarchy (multi-tenant
 * cluster simulation, docs/cluster.md).
 *
 * A placement maps a job's *local* NPU ids 0..n-1 onto cluster NPUs.
 * Jobs see a private "job topology" (a sub-hierarchy slice of the
 * cluster topology) so workload builders and the collective engine run
 * unmodified in job-local id space; the placement supplies the
 * local->global id table and a job-dim -> cluster-dim map used by the
 * rank-translation network view (cluster/rank_view.h).
 *
 * Sliced placements require a *hierarchy-compatible* job size: with
 * P_j the product of the first j dimension sizes, the size must be
 * c * P_j for some split dimension j and a factor c dividing that
 * dimension's size. The job topology is then dims [0, j) in full plus
 * (when c > 1) a partial outer dimension of size c with the split
 * dimension's block type and link parameters.
 *
 *  - Contiguous: the c coordinates of the split dimension are adjacent
 *    and the whole slice is one aligned global-id range [base,
 *    base + n). Ring routing between slice members never leaves the
 *    slice, so two contiguous jobs share no links (the isolation
 *    baseline).
 *  - Spread (striped): the c coordinates are spaced size_j / c apart,
 *    maximally interleaving jobs. A one-hop job-ring send traverses
 *    size_j / c physical hops *through other tenants' regions* — the
 *    classic fragmented-placement interference the congestion-aware
 *    backends resolve.
 *  - Explicit: an arbitrary NPU list plus a caller-supplied job
 *    topology; no dimension alignment is assumed, so every translated
 *    send uses dimension-ordered routing on the cluster fabric.
 */
#ifndef ASTRA_CLUSTER_PLACEMENT_H_
#define ASTRA_CLUSTER_PLACEMENT_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "topology/topology.h"

namespace astra {
namespace cluster {

/** See file comment. */
enum class PlacementPolicy {
    Contiguous,    //!< aligned sub-hierarchy slice (default).
    Spread,        //!< striped across the split dimension.
    Explicit,      //!< caller-provided NPU list + job topology.
    AvoidDegraded, //!< contiguous candidates scored by fault state
                   //!< (docs/fault.md "fault-aware placement").
    AntiAffinity,  //!< contiguous + striped candidates scored by
                   //!< failure-domain concentration.
};

const char *placementPolicyName(PlacementPolicy p);
PlacementPolicy parsePlacementPolicy(const std::string &name);

/** A realized mapping of one job onto cluster NPUs. */
struct JobPlacement
{
    PlacementPolicy policy = PlacementPolicy::Contiguous;
    /** Local NPU id -> cluster NPU id (dense, size = job size). */
    std::vector<NpuId> globalOf;
    /**
     * Job dimension -> cluster dimension, or -1 when unaligned. For
     * sliced placements this is the identity prefix (a send in job
     * dim d maps to a pair differing only in cluster dim d); explicit
     * placements carry all -1 and fall back to kAutoRoute.
     */
    std::vector<int> dimMap;

    int size() const { return static_cast<int>(globalOf.size()); }

    /** Human-readable summary ("contiguous@16" / "spread@0+4" ...). */
    std::string describe() const;
};

/**
 * The job topology a sliced placement of `size` NPUs presents to its
 * job (see file comment); fatal() if `size` is not
 * hierarchy-compatible with `topo`. Deterministic and placement-
 * independent, so workloads can be built before admission.
 */
Topology sliceTopology(const Topology &topo, int size);

/** True when `size` decomposes as c * P_j (no fatal); the check
 *  tryPlace and addJob validation share. */
bool sliceCompatible(const Topology &topo, int size);

/**
 * Free-NPU accounting plus the placement search. Not thread-safe; one
 * instance per ClusterSimulator.
 */
class PlacementManager
{
  public:
    explicit PlacementManager(const Topology &topo);

    /**
     * Try to place a sliced job of `size` NPUs under `policy`
     * (Contiguous or Spread). Returns nullopt when no candidate slice
     * is fully free; fatal() on hierarchy-incompatible sizes.
     */
    std::optional<JobPlacement> tryPlace(int size, PlacementPolicy policy);

    /** Candidate-slice cost function for the scored policies: lower is
     *  better; ties break toward the earlier candidate in enumeration
     *  order (deterministic). Only called on fully free candidates. */
    using SliceScorer =
        std::function<double(const std::vector<NpuId> &)>;

    /**
     * Scored placement (AvoidDegraded / AntiAffinity): enumerate every
     * feasible slice candidate — aligned contiguous blocks, plus
     * spread stripes for AntiAffinity — score each with `score`, and
     * claim the minimum. Returns nullopt when nothing is free.
     */
    std::optional<JobPlacement> tryPlaceScored(int size,
                                               PlacementPolicy policy,
                                               const SliceScorer &score);

    /** Try to claim an explicit NPU list; fatal() on invalid ids or
     *  duplicates, nullopt when any of them is busy. */
    std::optional<JobPlacement>
    tryPlaceExplicit(const std::vector<NpuId> &npus);

    /** Return a placement's NPUs to the free pool. */
    void release(const JobPlacement &placement);

    // ---- Spare pool (docs/fault.md "Spare-capacity restart") ----
    /**
     * Reserve `ids` as hot spares: excluded from every placement
     * search until consumed by trySpareSwap. fatal() if any id is
     * busy or already reserved.
     */
    void reserveSpares(const std::vector<NpuId> &ids);

    /**
     * Swap every currently-faulted NPU of `placement` for a healthy
     * reserved spare (ascending spare id order). On success the
     * consumed spares leave the pool, the faulted NPUs return to the
     * general pool, and the returned placement keeps the job's
     * local-rank order with policy Explicit (the patched id set is no
     * longer a hierarchy-aligned slice, so translated sends fall back
     * to dimension-ordered routing). Returns nullopt — and changes
     * nothing — when the healthy spare pool cannot cover the failure.
     */
    std::optional<JobPlacement>
    trySpareSwap(const JobPlacement &placement);

    /** Spares still reserved (consumed ones excluded). */
    int spareCount() const;
    /** Reserved spares that are currently healthy. */
    int spareFreeCount() const;
    bool isSpare(NpuId id) const;

    /**
     * Mark an NPU (un)usable for placement (fault injection,
     * docs/fault.md). Orthogonal to busy_: a faulted NPU may still be
     * held by a running job (the cluster simulator decides that job's
     * fate); it just cannot be handed to *new* placements until it
     * recovers.
     */
    void markFaulted(NpuId id, bool faulted);
    bool isFaulted(NpuId id) const;
    int faultedCount() const;

    int freeCount() const { return free_; }
    int totalCount() const { return static_cast<int>(busy_.size()); }
    bool isBusy(NpuId id) const;

  private:
    bool allFree(const std::vector<NpuId> &ids) const;
    JobPlacement claim(PlacementPolicy policy, std::vector<NpuId> ids,
                       std::vector<int> dim_map);

    const Topology &topo_;
    std::vector<uint8_t> busy_;
    std::vector<uint8_t> faulted_;
    std::vector<uint8_t> spare_;
    int free_;
};

} // namespace cluster
} // namespace astra

#endif // ASTRA_CLUSTER_PLACEMENT_H_
