/**
 * @file
 * Fault model: event kinds, schedules, failure domains, and
 * checkpoint policies.
 *
 * A fault scenario is a deterministic timeline of FaultEvents — either
 * written out explicitly in JSON (`fault.schedule`) or generated from
 * per-component MTBF/MTTR means with a seeded RNG (common/rng.h), so
 * the same config always produces the same timeline. The timeline is
 * applied to a running simulation by the FaultInjector
 * (fault/injector.h); this header is deliberately independent of the
 * network/event layers so configuration code can parse and validate
 * fault specs without pulling in a backend.
 *
 * Addressing: link faults name `(src, dst, dim)` in *NPU* coordinates.
 * `dst == kAllFaultPeers` means every egress link of `src`;
 * `dim == kAllFaultDims` means all dimensions. NPU faults and
 * stragglers name a single `npu`. Domain faults name a FailureDomain
 * (`fault.domains`) and expand deterministically into constituent NPU
 * fail-stops plus down-links crossing the domain boundary (see
 * buildTimeline). See docs/fault.md for the full model and
 * per-backend fidelity caveats.
 */
#ifndef ASTRA_FAULT_FAULT_H_
#define ASTRA_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"
#include "topology/topology.h"

namespace astra {
namespace fault {

/** Wildcard destination: all egress links of `src`. */
constexpr NpuId kAllFaultPeers = -1;
/** Wildcard dimension: all topology dimensions. */
constexpr int kAllFaultDims = -1;

/** What happens at a timeline point. */
enum class FaultKind {
    LinkDegrade,   //!< scale link capacity by `scale` (0 < scale).
    LinkDown,      //!< link fully out: flows stall / packets park.
    LinkUp,        //!< restore a downed link (capacity scale kept).
    NpuFail,       //!< fail-stop NPU: job rollback, egress links down.
    NpuRecover,    //!< NPU healthy again; eligible for restart/placement.
    Straggler,     //!< persistent per-NPU compute/injection slowdown.
    DomainFail,    //!< whole failure domain (rack/pod) fails at once.
    DomainRecover, //!< the domain's members and boundary links return.
};

const char *faultKindName(FaultKind kind);

/** One timeline entry; meaningful fields depend on `kind`. */
struct FaultEvent
{
    TimeNs at = 0.0;
    FaultKind kind = FaultKind::LinkDown;

    // -- Link faults (LinkDegrade / LinkDown / LinkUp).
    NpuId src = -1;
    NpuId dst = kAllFaultPeers;
    int dim = kAllFaultDims;
    double scale = 1.0; //!< LinkDegrade capacity multiplier (> 0).

    // -- NPU faults and stragglers.
    NpuId npu = -1;
    double computeScale = 1.0;   //!< Straggler compute-time multiplier.
    double injectionScale = 1.0; //!< Straggler egress-capacity scale.

    // -- Failure-domain attribution (docs/fault.md).
    /** Resolved domain index for DomainFail/DomainRecover and for the
     *  constituent events they expand into; -1 = no domain. */
    int domain = -1;
    /**
     * Fault-incident id: every NpuFail/DomainFail root in the built
     * timeline gets a distinct id, and the constituent events a
     * domain failure expands into inherit their parent's. Lets the
     * cluster layer report jobs-disrupted-per-incident blast radius
     * instead of counting every member NPU of one rack outage as a
     * separate failure. -1 = not a fail incident.
     */
    int incident = -1;
    /** Resolved domain name (diagnostics, trace instants); also how
     *  schedule entries reference a domain before resolution. */
    std::string domainName;
};

/**
 * A named failure domain: a set of NPUs that fail (and recover)
 * together, plus the links crossing its boundary.
 *
 * Two spec forms (mutually exclusive):
 *  - hierarchy slice: `level` j in [1, numDims] carves the topology
 *    into npus()/P_j contiguous blocks of P_j NPUs (P_j = product of
 *    the first j dimension sizes — the mixed-radix id layout makes
 *    every block contiguous). `index` picks one block; index == -1 in
 *    a spec expands to *all* blocks at that level, auto-named
 *    "<name>0", "<name>1", ....
 *  - explicit: `npus` lists arbitrary members (level == -1).
 *
 * `mtbfNs`/`mttrNs` override the scenario-wide domain means for this
 * spec (0 = inherit), so one flaky rack can fail faster than its
 * peers — exactly what fault-aware placement scores against.
 */
struct FailureDomain
{
    std::string name;
    int level = -1;
    int index = -1;
    std::vector<NpuId> npus;
    TimeNs mtbfNs = 0.0;
    TimeNs mttrNs = 0.0;
};

/** Response to an NPU/domain failure hitting a job (cluster layer). */
enum class RestartMode {
    Same,    //!< wait for recovery, restart in place from snapshot.
    Requeue, //!< fresh placement, cold start (snapshot discarded).
    Migrate, //!< fresh placement, resume from the carried snapshot.
    Spare,   //!< swap failed NPUs for reserved spares, resume from
             //!< snapshot in place (falls back to Migrate when the
             //!< spare pool can't cover the failure).
};

const char *restartModeName(RestartMode m);
RestartMode parseRestartMode(const std::string &name,
                             const std::string &path);

/**
 * Training-stack response to NPU failures (cluster layer).
 *
 * Checkpoints are optimistic and coordinated: at each interval the
 * job snapshots its engine progress instantaneously and every rank
 * pays `costNs` on its compute unit. On an NPU failure the job loses
 * all work since the last snapshot and restarts `restartDelayNs`
 * after recovery (or after the failure, for the re-placing modes),
 * per its RestartMode.
 *
 * `autoInterval` (JSON: `interval_ns: "auto"`) derives the interval
 * from the Young/Daly closed form sqrt(2 * costNs * MTBF) at launch
 * time, with the job's effective MTBF combining the per-NPU stream
 * and every failure domain intersecting its placement (docs/fault.md
 * "Checkpoint auto-tuning"). The sweep layer's resilience tuner
 * (sweep/resilience.h) refines the same seed point against simulated
 * goodput.
 */
struct CheckpointPolicy
{
    TimeNs intervalNs = 0.0; //!< 0 disables periodic checkpoints.
    bool autoInterval = false; //!< resolve intervalNs via Young/Daly.
    TimeNs costNs = 0.0;     //!< per-rank compute stall per checkpoint.
    TimeNs restartDelayNs = 0.0;
    RestartMode restart = RestartMode::Same;
};

/**
 * A complete fault scenario: an explicit schedule plus optional
 * MTBF/MTTR generation parameters (both may be combined; generated
 * events are merged into the explicit schedule and time-sorted).
 */
struct FaultConfig
{
    uint64_t seed = 1;
    /** Generation horizon; generated events beyond it are dropped. */
    TimeNs horizonNs = 0.0;

    std::vector<FaultEvent> schedule;

    // -- Per-NPU fail/recover generation (0 disables).
    TimeNs npuMtbfNs = 0.0;
    TimeNs npuMttrNs = 0.0;

    // -- Per-(NPU, dim) egress link fault generation (0 disables).
    TimeNs linkMtbfNs = 0.0;
    TimeNs linkMttrNs = 0.0;
    /** 0 = generated link faults are full outages (down/up pairs);
     *  in (0, 1) = degrade to this capacity scale instead. */
    double linkDegradeScale = 0.0;

    // -- Correlated whole-domain fail/recover generation. One seeded
    //    stream per *resolved* domain (componentRng kind 3), so a
    //    fixed (seed, topology) reproduces identical blast-radius
    //    timelines and adding a domain never shifts another's stream.
    std::vector<FailureDomain> domains;
    TimeNs domainMtbfNs = 0.0; //!< default per-domain MTBF (0 disables).
    TimeNs domainMttrNs = 0.0;

    /** True when any domain has a failure-generation stream. */
    bool generatesDomainFaults() const;

    /** True when the scenario injects nothing at all. */
    bool empty() const;
};

/**
 * Parse a fault scenario from its JSON object. Validates kinds,
 * scales (degrades must be > 0 — use link_down for a full outage),
 * and field presence with `path`-qualified fatal() messages
 * ("fault.schedule.3.src: ...").
 */
FaultConfig faultConfigFromJson(const json::Value &doc,
                                const std::string &path = "fault");

/** Serialize back to the JSON schema faultConfigFromJson accepts. */
json::Value faultConfigToJson(const FaultConfig &cfg);

/** Parse a checkpoint policy object (interval_ns — a time or "auto" —
 *  / cost_ns / restart_delay_ns /
 *  restart: "same"|"requeue"|"migrate"|"spare"). */
CheckpointPolicy checkpointFromJson(const json::Value &doc,
                                    const std::string &path);

/**
 * Resolve the config's domain specs against `topo`: expand
 * all-instances level specs into one FailureDomain per block, fill in
 * slice members, validate explicit member ids, and require unique
 * names (schedule entries and diagnostics reference domains by name).
 * Deterministic; fatal() on invalid specs.
 */
std::vector<FailureDomain> resolveDomains(const FaultConfig &cfg,
                                          const Topology &topo);

/**
 * Materialize the full timeline for `topo`: generate MTBF/MTTR events
 * per component with seeded per-component RNG streams, merge with the
 * explicit schedule, stable-sort by time, assign fault-incident ids,
 * and expand every DomainFail/DomainRecover into its constituent
 * events — per member NPU a fail-stop (ascending id order), plus a
 * LinkDown for every inbound link crossing the domain boundary
 * (member egress is cut by the NPU fail-stop itself). Recovery is
 * symmetric with boundary LinkUps emitted *before* the member
 * NpuRecover events so a zero-delay restart never races a half-healed
 * fabric. Range-checks every event against the topology (fatal() on
 * out-of-range components). Byte-identical across repeated calls for
 * a fixed (config, topology).
 */
std::vector<FaultEvent> buildTimeline(const FaultConfig &cfg,
                                      const Topology &topo);

/** Young/Daly optimal checkpoint interval sqrt(2 * costNs * mtbfNs)
 *  (first-order optimum for checkpoint cost << MTBF). */
TimeNs youngDalyInterval(TimeNs costNs, TimeNs mtbfNs);

} // namespace fault
} // namespace astra

#endif // ASTRA_FAULT_FAULT_H_
