/**
 * @file
 * Fault model: event kinds, schedules, and checkpoint policies.
 *
 * A fault scenario is a deterministic timeline of FaultEvents — either
 * written out explicitly in JSON (`fault.schedule`) or generated from
 * per-component MTBF/MTTR means with a seeded RNG (common/rng.h), so
 * the same config always produces the same timeline. The timeline is
 * applied to a running simulation by the FaultInjector
 * (fault/injector.h); this header is deliberately independent of the
 * network/event layers so configuration code can parse and validate
 * fault specs without pulling in a backend.
 *
 * Addressing: link faults name `(src, dst, dim)` in *NPU* coordinates.
 * `dst == kAllFaultPeers` means every egress link of `src`;
 * `dim == kAllFaultDims` means all dimensions. NPU faults and
 * stragglers name a single `npu`. See docs/fault.md for the full
 * model and per-backend fidelity caveats.
 */
#ifndef ASTRA_FAULT_FAULT_H_
#define ASTRA_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"
#include "topology/topology.h"

namespace astra {
namespace fault {

/** Wildcard destination: all egress links of `src`. */
constexpr NpuId kAllFaultPeers = -1;
/** Wildcard dimension: all topology dimensions. */
constexpr int kAllFaultDims = -1;

/** What happens at a timeline point. */
enum class FaultKind {
    LinkDegrade, //!< scale link capacity by `scale` (0 < scale).
    LinkDown,    //!< link fully out: flows stall / packets park.
    LinkUp,      //!< restore a downed link (capacity scale kept).
    NpuFail,     //!< fail-stop NPU: job rollback, egress links down.
    NpuRecover,  //!< NPU healthy again; eligible for restart/placement.
    Straggler,   //!< persistent per-NPU compute/injection slowdown.
};

const char *faultKindName(FaultKind kind);

/** One timeline entry; meaningful fields depend on `kind`. */
struct FaultEvent
{
    TimeNs at = 0.0;
    FaultKind kind = FaultKind::LinkDown;

    // -- Link faults (LinkDegrade / LinkDown / LinkUp).
    NpuId src = -1;
    NpuId dst = kAllFaultPeers;
    int dim = kAllFaultDims;
    double scale = 1.0; //!< LinkDegrade capacity multiplier (> 0).

    // -- NPU faults and stragglers.
    NpuId npu = -1;
    double computeScale = 1.0;   //!< Straggler compute-time multiplier.
    double injectionScale = 1.0; //!< Straggler egress-capacity scale.
};

/**
 * Training-stack response to NPU failures (cluster layer).
 *
 * Checkpoints are optimistic and coordinated: at each interval the
 * job snapshots its engine progress instantaneously and every rank
 * pays `costNs` on its compute unit. On an NPU failure the job loses
 * all work since the last snapshot, and restarts `restartDelayNs`
 * after recovery — either on the same placement (`requeue == false`,
 * waits for the failed NPU to come back) or re-queued for a fresh
 * placement that avoids currently-faulted NPUs.
 */
struct CheckpointPolicy
{
    TimeNs intervalNs = 0.0; //!< 0 disables periodic checkpoints.
    TimeNs costNs = 0.0;     //!< per-rank compute stall per checkpoint.
    TimeNs restartDelayNs = 0.0;
    bool requeue = false;    //!< restart on a fresh placement.
};

/**
 * A complete fault scenario: an explicit schedule plus optional
 * MTBF/MTTR generation parameters (both may be combined; generated
 * events are merged into the explicit schedule and time-sorted).
 */
struct FaultConfig
{
    uint64_t seed = 1;
    /** Generation horizon; generated events beyond it are dropped. */
    TimeNs horizonNs = 0.0;

    std::vector<FaultEvent> schedule;

    // -- Per-NPU fail/recover generation (0 disables).
    TimeNs npuMtbfNs = 0.0;
    TimeNs npuMttrNs = 0.0;

    // -- Per-(NPU, dim) egress link fault generation (0 disables).
    TimeNs linkMtbfNs = 0.0;
    TimeNs linkMttrNs = 0.0;
    /** 0 = generated link faults are full outages (down/up pairs);
     *  in (0, 1) = degrade to this capacity scale instead. */
    double linkDegradeScale = 0.0;

    /** True when the scenario injects nothing at all. */
    bool empty() const;
};

/**
 * Parse a fault scenario from its JSON object. Validates kinds,
 * scales (degrades must be > 0 — use link_down for a full outage),
 * and field presence with `path`-qualified fatal() messages
 * ("fault.schedule.3.src: ...").
 */
FaultConfig faultConfigFromJson(const json::Value &doc,
                                const std::string &path = "fault");

/** Serialize back to the JSON schema faultConfigFromJson accepts. */
json::Value faultConfigToJson(const FaultConfig &cfg);

/** Parse a checkpoint policy object (interval_ns / cost_ns /
 *  restart_delay_ns / restart: "same"|"requeue"). */
CheckpointPolicy checkpointFromJson(const json::Value &doc,
                                    const std::string &path);

/**
 * Materialize the full timeline for `topo`: generate MTBF/MTTR events
 * per component with seeded per-component RNG streams, merge with the
 * explicit schedule, stable-sort by time, and range-check every event
 * against the topology (fatal() on out-of-range components).
 */
std::vector<FaultEvent> buildTimeline(const FaultConfig &cfg,
                                      const Topology &topo);

} // namespace fault
} // namespace astra

#endif // ASTRA_FAULT_FAULT_H_
