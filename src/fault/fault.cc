#include "fault/fault.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace astra {
namespace fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDegrade: return "link_degrade";
      case FaultKind::LinkDown: return "link_down";
      case FaultKind::LinkUp: return "link_up";
      case FaultKind::NpuFail: return "npu_fail";
      case FaultKind::NpuRecover: return "npu_recover";
      case FaultKind::Straggler: return "straggler";
    }
    panic("unknown fault kind");
}

namespace {

FaultKind
parseKind(const std::string &name, const std::string &path)
{
    if (name == "link_degrade")
        return FaultKind::LinkDegrade;
    if (name == "link_down")
        return FaultKind::LinkDown;
    if (name == "link_up")
        return FaultKind::LinkUp;
    if (name == "npu_fail")
        return FaultKind::NpuFail;
    if (name == "npu_recover")
        return FaultKind::NpuRecover;
    if (name == "straggler")
        return FaultKind::Straggler;
    fatal("%s: unknown fault kind '%s' (expected link_degrade, "
          "link_down, link_up, npu_fail, npu_recover, or straggler)",
          path.c_str(), name.c_str());
}

void
checkKeys(const json::Value &doc, const std::string &path,
          std::initializer_list<const char *> allowed)
{
    for (const auto &[key, v] : doc.asObject()) {
        (void)v;
        bool ok = false;
        for (const char *a : allowed)
            if (key == a)
                ok = true;
        ASTRA_USER_CHECK(ok, "%s: unknown key '%s'", path.c_str(),
                         key.c_str());
    }
}

double
requireFinite(double v, const std::string &path, const char *what)
{
    ASTRA_USER_CHECK(std::isfinite(v), "%s: %s must be finite",
                     path.c_str(), what);
    return v;
}

double
requireNonNegative(double v, const std::string &path, const char *what)
{
    requireFinite(v, path, what);
    ASTRA_USER_CHECK(v >= 0.0, "%s: %s must be >= 0", path.c_str(),
                     what);
    return v;
}

FaultEvent
eventFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: fault event must be an object",
                     path.c_str());
    checkKeys(doc, path,
              {"at_ns", "kind", "src", "dst", "dim", "npu", "scale",
               "compute_scale", "injection_scale"});
    ASTRA_USER_CHECK(doc.has("kind"), "%s: missing 'kind'", path.c_str());
    ASTRA_USER_CHECK(doc.has("at_ns"), "%s: missing 'at_ns'",
                     path.c_str());

    FaultEvent ev;
    ev.kind = parseKind(doc.at("kind").asString(), path + ".kind");
    ev.at = requireNonNegative(doc.at("at_ns").asNumber(),
                               path + ".at_ns", "event time");

    switch (ev.kind) {
      case FaultKind::LinkDegrade:
      case FaultKind::LinkDown:
      case FaultKind::LinkUp:
        ASTRA_USER_CHECK(doc.has("src"),
                         "%s: link faults need 'src' (source NPU)",
                         path.c_str());
        ev.src = static_cast<NpuId>(doc.at("src").asInt());
        ev.dst = static_cast<NpuId>(doc.getInt("dst", kAllFaultPeers));
        ev.dim = static_cast<int>(doc.getInt("dim", kAllFaultDims));
        if (ev.kind == FaultKind::LinkDegrade) {
            ASTRA_USER_CHECK(doc.has("scale"),
                             "%s: link_degrade needs 'scale'",
                             path.c_str());
            ev.scale = requireFinite(doc.at("scale").asNumber(),
                                     path + ".scale", "capacity scale");
            ASTRA_USER_CHECK(
                ev.scale > 0.0,
                "%s.scale: capacity scale must be > 0 "
                "(use link_down for a full outage)", path.c_str());
        }
        break;
      case FaultKind::NpuFail:
      case FaultKind::NpuRecover:
        ASTRA_USER_CHECK(doc.has("npu"), "%s: %s needs 'npu'",
                         path.c_str(), faultKindName(ev.kind));
        ev.npu = static_cast<NpuId>(doc.at("npu").asInt());
        break;
      case FaultKind::Straggler:
        ASTRA_USER_CHECK(doc.has("npu"), "%s: straggler needs 'npu'",
                         path.c_str());
        ev.npu = static_cast<NpuId>(doc.at("npu").asInt());
        ev.computeScale =
            requireFinite(doc.getNumber("compute_scale", 1.0),
                          path + ".compute_scale", "compute scale");
        ASTRA_USER_CHECK(ev.computeScale > 0.0,
                         "%s.compute_scale: must be > 0", path.c_str());
        ev.injectionScale =
            requireFinite(doc.getNumber("injection_scale", 1.0),
                          path + ".injection_scale", "injection scale");
        ASTRA_USER_CHECK(
            ev.injectionScale > 0.0,
            "%s.injection_scale: must be > 0 "
            "(use link_down for a dead NIC)", path.c_str());
        break;
    }
    return ev;
}

json::Value
eventToJson(const FaultEvent &ev)
{
    json::Object o;
    o["at_ns"] = ev.at;
    o["kind"] = faultKindName(ev.kind);
    switch (ev.kind) {
      case FaultKind::LinkDegrade:
        o["scale"] = ev.scale;
        [[fallthrough]];
      case FaultKind::LinkDown:
      case FaultKind::LinkUp:
        o["src"] = int64_t(ev.src);
        o["dst"] = int64_t(ev.dst);
        o["dim"] = int64_t(ev.dim);
        break;
      case FaultKind::NpuFail:
      case FaultKind::NpuRecover:
        o["npu"] = int64_t(ev.npu);
        break;
      case FaultKind::Straggler:
        o["npu"] = int64_t(ev.npu);
        o["compute_scale"] = ev.computeScale;
        o["injection_scale"] = ev.injectionScale;
        break;
    }
    return json::Value(std::move(o));
}

/** Exponential variate with the given mean (inverse-CDF sampling). */
TimeNs
expSample(Rng &rng, TimeNs mean)
{
    return -mean * std::log(1.0 - rng.uniform());
}

/** Per-component RNG stream: decorrelated from the base seed so
 *  adding a component never shifts another component's timeline. */
Rng
componentRng(uint64_t seed, uint64_t kind, uint64_t index)
{
    return Rng(seed ^ (kind * 0x9e3779b97f4a7c15ULL) ^
               (index * 0xbf58476d1ce4e5b9ULL));
}

} // namespace

bool
FaultConfig::empty() const
{
    return schedule.empty() && npuMtbfNs <= 0.0 && linkMtbfNs <= 0.0;
}

FaultConfig
faultConfigFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: must be an object",
                     path.c_str());
    checkKeys(doc, path,
              {"seed", "horizon_ns", "schedule", "npu_mtbf_ns",
               "npu_mttr_ns", "link_mtbf_ns", "link_mttr_ns",
               "link_degrade_scale"});

    FaultConfig cfg;
    cfg.seed = static_cast<uint64_t>(doc.getInt("seed", 1));
    cfg.horizonNs = requireNonNegative(doc.getNumber("horizon_ns", 0.0),
                                       path + ".horizon_ns", "horizon");
    cfg.npuMtbfNs = requireNonNegative(doc.getNumber("npu_mtbf_ns", 0.0),
                                       path + ".npu_mtbf_ns", "MTBF");
    cfg.npuMttrNs = requireNonNegative(doc.getNumber("npu_mttr_ns", 0.0),
                                       path + ".npu_mttr_ns", "MTTR");
    cfg.linkMtbfNs =
        requireNonNegative(doc.getNumber("link_mtbf_ns", 0.0),
                           path + ".link_mtbf_ns", "MTBF");
    cfg.linkMttrNs =
        requireNonNegative(doc.getNumber("link_mttr_ns", 0.0),
                           path + ".link_mttr_ns", "MTTR");
    cfg.linkDegradeScale =
        requireNonNegative(doc.getNumber("link_degrade_scale", 0.0),
                           path + ".link_degrade_scale", "scale");
    ASTRA_USER_CHECK(cfg.linkDegradeScale < 1.0,
                     "%s.link_degrade_scale: must be in [0, 1) "
                     "(0 = full outages)", path.c_str());
    bool generates = cfg.npuMtbfNs > 0.0 || cfg.linkMtbfNs > 0.0;
    ASTRA_USER_CHECK(!generates || cfg.horizonNs > 0.0,
                     "%s.horizon_ns: MTBF-based generation needs a "
                     "positive horizon", path.c_str());

    if (doc.has("schedule")) {
        const json::Array &arr = doc.at("schedule").asArray();
        for (size_t i = 0; i < arr.size(); ++i)
            cfg.schedule.push_back(eventFromJson(
                arr[i], path + ".schedule." + std::to_string(i)));
    }
    return cfg;
}

json::Value
faultConfigToJson(const FaultConfig &cfg)
{
    json::Object o;
    o["seed"] = cfg.seed;
    if (cfg.horizonNs > 0.0)
        o["horizon_ns"] = cfg.horizonNs;
    if (cfg.npuMtbfNs > 0.0) {
        o["npu_mtbf_ns"] = cfg.npuMtbfNs;
        o["npu_mttr_ns"] = cfg.npuMttrNs;
    }
    if (cfg.linkMtbfNs > 0.0) {
        o["link_mtbf_ns"] = cfg.linkMtbfNs;
        o["link_mttr_ns"] = cfg.linkMttrNs;
        if (cfg.linkDegradeScale > 0.0)
            o["link_degrade_scale"] = cfg.linkDegradeScale;
    }
    if (!cfg.schedule.empty()) {
        json::Array arr;
        for (const FaultEvent &ev : cfg.schedule)
            arr.push_back(eventToJson(ev));
        o["schedule"] = json::Value(std::move(arr));
    }
    return json::Value(std::move(o));
}

CheckpointPolicy
checkpointFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: must be an object",
                     path.c_str());
    checkKeys(doc, path,
              {"interval_ns", "cost_ns", "restart_delay_ns", "restart"});
    CheckpointPolicy p;
    p.intervalNs = requireNonNegative(doc.getNumber("interval_ns", 0.0),
                                      path + ".interval_ns", "interval");
    p.costNs = requireNonNegative(doc.getNumber("cost_ns", 0.0),
                                  path + ".cost_ns", "cost");
    p.restartDelayNs =
        requireNonNegative(doc.getNumber("restart_delay_ns", 0.0),
                           path + ".restart_delay_ns", "restart delay");
    std::string restart = doc.getString("restart", "same");
    if (restart == "same")
        p.requeue = false;
    else if (restart == "requeue")
        p.requeue = true;
    else
        fatal("%s.restart: expected \"same\" or \"requeue\", got \"%s\"",
              path.c_str(), restart.c_str());
    return p;
}

std::vector<FaultEvent>
buildTimeline(const FaultConfig &cfg, const Topology &topo)
{
    std::vector<FaultEvent> timeline = cfg.schedule;

    // Generated NPU fail/recover pairs: one independent alternating
    // renewal process per NPU.
    if (cfg.npuMtbfNs > 0.0) {
        ASTRA_USER_CHECK(cfg.npuMttrNs > 0.0,
                         "fault.npu_mttr_ns: NPU fault generation needs "
                         "a positive MTTR");
        for (NpuId n = 0; n < topo.npus(); ++n) {
            Rng rng = componentRng(cfg.seed, 1, uint64_t(n));
            TimeNs t = expSample(rng, cfg.npuMtbfNs);
            while (t < cfg.horizonNs) {
                FaultEvent fail;
                fail.at = t;
                fail.kind = FaultKind::NpuFail;
                fail.npu = n;
                timeline.push_back(fail);
                t += expSample(rng, cfg.npuMttrNs);
                FaultEvent recover = fail;
                recover.at = t;
                recover.kind = FaultKind::NpuRecover;
                timeline.push_back(recover);
                t += expSample(rng, cfg.npuMtbfNs);
            }
        }
    }

    // Generated link faults: one process per (NPU, dim) egress group.
    if (cfg.linkMtbfNs > 0.0) {
        ASTRA_USER_CHECK(cfg.linkMttrNs > 0.0,
                         "fault.link_mttr_ns: link fault generation "
                         "needs a positive MTTR");
        bool degrade = cfg.linkDegradeScale > 0.0;
        for (NpuId n = 0; n < topo.npus(); ++n) {
            for (int d = 0; d < topo.numDims(); ++d) {
                uint64_t idx =
                    uint64_t(n) * uint64_t(topo.numDims()) + uint64_t(d);
                Rng rng = componentRng(cfg.seed, 2, idx);
                TimeNs t = expSample(rng, cfg.linkMtbfNs);
                while (t < cfg.horizonNs) {
                    FaultEvent down;
                    down.at = t;
                    down.kind = degrade ? FaultKind::LinkDegrade
                                        : FaultKind::LinkDown;
                    down.src = n;
                    down.dst = kAllFaultPeers;
                    down.dim = d;
                    if (degrade)
                        down.scale = cfg.linkDegradeScale;
                    timeline.push_back(down);
                    t += expSample(rng, cfg.linkMttrNs);
                    FaultEvent up = down;
                    up.at = t;
                    up.kind = degrade ? FaultKind::LinkDegrade
                                      : FaultKind::LinkUp;
                    up.scale = 1.0;
                    timeline.push_back(up);
                    t += expSample(rng, cfg.linkMtbfNs);
                }
            }
        }
    }

    // Range-check every event against the topology.
    for (size_t i = 0; i < timeline.size(); ++i) {
        const FaultEvent &ev = timeline[i];
        std::string where = "fault event " + std::to_string(i) + " (" +
                            std::string(faultKindName(ev.kind)) + ")";
        switch (ev.kind) {
          case FaultKind::LinkDegrade:
          case FaultKind::LinkDown:
          case FaultKind::LinkUp:
            ASTRA_USER_CHECK(ev.src >= 0 && ev.src < topo.npus(),
                             "%s: src %d out of range for %d NPUs",
                             where.c_str(), ev.src, topo.npus());
            ASTRA_USER_CHECK(
                ev.dst < topo.npus(),
                "%s: dst %d out of range for %d NPUs", where.c_str(),
                ev.dst, topo.npus());
            ASTRA_USER_CHECK(
                ev.dim < topo.numDims(),
                "%s: dim %d out of range for %d dims", where.c_str(),
                ev.dim, topo.numDims());
            break;
          case FaultKind::NpuFail:
          case FaultKind::NpuRecover:
          case FaultKind::Straggler:
            ASTRA_USER_CHECK(ev.npu >= 0 && ev.npu < topo.npus(),
                             "%s: npu %d out of range for %d NPUs",
                             where.c_str(), ev.npu, topo.npus());
            break;
        }
    }

    // Stable sort keeps same-time events in schedule-then-generated
    // order — fully deterministic for a given (config, topology).
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return timeline;
}

} // namespace fault
} // namespace astra
