#include "fault/fault.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace astra {
namespace fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDegrade: return "link_degrade";
      case FaultKind::LinkDown: return "link_down";
      case FaultKind::LinkUp: return "link_up";
      case FaultKind::NpuFail: return "npu_fail";
      case FaultKind::NpuRecover: return "npu_recover";
      case FaultKind::Straggler: return "straggler";
      case FaultKind::DomainFail: return "domain_fail";
      case FaultKind::DomainRecover: return "domain_recover";
    }
    panic("unknown fault kind");
}

const char *
restartModeName(RestartMode m)
{
    switch (m) {
      case RestartMode::Same: return "same";
      case RestartMode::Requeue: return "requeue";
      case RestartMode::Migrate: return "migrate";
      case RestartMode::Spare: return "spare";
    }
    panic("unknown restart mode");
}

RestartMode
parseRestartMode(const std::string &name, const std::string &path)
{
    if (name == "same")
        return RestartMode::Same;
    if (name == "requeue")
        return RestartMode::Requeue;
    if (name == "migrate")
        return RestartMode::Migrate;
    if (name == "spare")
        return RestartMode::Spare;
    fatal("%s: expected \"same\", \"requeue\", \"migrate\", or "
          "\"spare\", got \"%s\"",
          path.c_str(), name.c_str());
}

namespace {

FaultKind
parseKind(const std::string &name, const std::string &path)
{
    if (name == "link_degrade")
        return FaultKind::LinkDegrade;
    if (name == "link_down")
        return FaultKind::LinkDown;
    if (name == "link_up")
        return FaultKind::LinkUp;
    if (name == "npu_fail")
        return FaultKind::NpuFail;
    if (name == "npu_recover")
        return FaultKind::NpuRecover;
    if (name == "straggler")
        return FaultKind::Straggler;
    if (name == "domain_fail")
        return FaultKind::DomainFail;
    if (name == "domain_recover")
        return FaultKind::DomainRecover;
    fatal("%s: unknown fault kind '%s' (expected link_degrade, "
          "link_down, link_up, npu_fail, npu_recover, straggler, "
          "domain_fail, or domain_recover)",
          path.c_str(), name.c_str());
}

void
checkKeys(const json::Value &doc, const std::string &path,
          std::initializer_list<const char *> allowed)
{
    for (const auto &[key, v] : doc.asObject()) {
        (void)v;
        bool ok = false;
        for (const char *a : allowed)
            if (key == a)
                ok = true;
        ASTRA_USER_CHECK(ok, "%s: unknown key '%s'", path.c_str(),
                         key.c_str());
    }
}

double
requireFinite(double v, const std::string &path, const char *what)
{
    ASTRA_USER_CHECK(std::isfinite(v), "%s: %s must be finite",
                     path.c_str(), what);
    return v;
}

double
requireNonNegative(double v, const std::string &path, const char *what)
{
    requireFinite(v, path, what);
    ASTRA_USER_CHECK(v >= 0.0, "%s: %s must be >= 0", path.c_str(),
                     what);
    return v;
}

FaultEvent
eventFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: fault event must be an object",
                     path.c_str());
    checkKeys(doc, path,
              {"at_ns", "kind", "src", "dst", "dim", "npu", "scale",
               "compute_scale", "injection_scale", "domain"});
    ASTRA_USER_CHECK(doc.has("kind"), "%s: missing 'kind'", path.c_str());
    ASTRA_USER_CHECK(doc.has("at_ns"), "%s: missing 'at_ns'",
                     path.c_str());

    FaultEvent ev;
    ev.kind = parseKind(doc.at("kind").asString(), path + ".kind");
    ev.at = requireNonNegative(doc.at("at_ns").asNumber(),
                               path + ".at_ns", "event time");

    switch (ev.kind) {
      case FaultKind::LinkDegrade:
      case FaultKind::LinkDown:
      case FaultKind::LinkUp:
        ASTRA_USER_CHECK(doc.has("src"),
                         "%s: link faults need 'src' (source NPU)",
                         path.c_str());
        ev.src = static_cast<NpuId>(doc.at("src").asInt());
        ev.dst = static_cast<NpuId>(doc.getInt("dst", kAllFaultPeers));
        ev.dim = static_cast<int>(doc.getInt("dim", kAllFaultDims));
        if (ev.kind == FaultKind::LinkDegrade) {
            ASTRA_USER_CHECK(doc.has("scale"),
                             "%s: link_degrade needs 'scale'",
                             path.c_str());
            ev.scale = requireFinite(doc.at("scale").asNumber(),
                                     path + ".scale", "capacity scale");
            ASTRA_USER_CHECK(
                ev.scale > 0.0,
                "%s.scale: capacity scale must be > 0 "
                "(use link_down for a full outage)", path.c_str());
        }
        break;
      case FaultKind::NpuFail:
      case FaultKind::NpuRecover:
        ASTRA_USER_CHECK(doc.has("npu"), "%s: %s needs 'npu'",
                         path.c_str(), faultKindName(ev.kind));
        ev.npu = static_cast<NpuId>(doc.at("npu").asInt());
        break;
      case FaultKind::Straggler:
        ASTRA_USER_CHECK(doc.has("npu"), "%s: straggler needs 'npu'",
                         path.c_str());
        ev.npu = static_cast<NpuId>(doc.at("npu").asInt());
        ev.computeScale =
            requireFinite(doc.getNumber("compute_scale", 1.0),
                          path + ".compute_scale", "compute scale");
        ASTRA_USER_CHECK(ev.computeScale > 0.0,
                         "%s.compute_scale: must be > 0", path.c_str());
        ev.injectionScale =
            requireFinite(doc.getNumber("injection_scale", 1.0),
                          path + ".injection_scale", "injection scale");
        ASTRA_USER_CHECK(
            ev.injectionScale > 0.0,
            "%s.injection_scale: must be > 0 "
            "(use link_down for a dead NIC)", path.c_str());
        break;
      case FaultKind::DomainFail:
      case FaultKind::DomainRecover:
        ASTRA_USER_CHECK(doc.has("domain"),
                         "%s: %s needs 'domain' (a name from "
                         "fault.domains)",
                         path.c_str(), faultKindName(ev.kind));
        ev.domainName = doc.at("domain").asString();
        ASTRA_USER_CHECK(!ev.domainName.empty(),
                         "%s.domain: empty domain name", path.c_str());
        break;
    }
    return ev;
}

json::Value
eventToJson(const FaultEvent &ev)
{
    json::Object o;
    o["at_ns"] = ev.at;
    o["kind"] = faultKindName(ev.kind);
    switch (ev.kind) {
      case FaultKind::LinkDegrade:
        o["scale"] = ev.scale;
        [[fallthrough]];
      case FaultKind::LinkDown:
      case FaultKind::LinkUp:
        o["src"] = int64_t(ev.src);
        o["dst"] = int64_t(ev.dst);
        o["dim"] = int64_t(ev.dim);
        break;
      case FaultKind::NpuFail:
      case FaultKind::NpuRecover:
        o["npu"] = int64_t(ev.npu);
        break;
      case FaultKind::Straggler:
        o["npu"] = int64_t(ev.npu);
        o["compute_scale"] = ev.computeScale;
        o["injection_scale"] = ev.injectionScale;
        break;
      case FaultKind::DomainFail:
      case FaultKind::DomainRecover:
        o["domain"] = ev.domainName;
        break;
    }
    return json::Value(std::move(o));
}

FailureDomain
domainFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: domain must be an object",
                     path.c_str());
    checkKeys(doc, path,
              {"name", "level", "index", "npus", "mtbf_ns", "mttr_ns"});
    FailureDomain d;
    ASTRA_USER_CHECK(doc.has("name"), "%s: missing 'name'",
                     path.c_str());
    d.name = doc.at("name").asString();
    ASTRA_USER_CHECK(!d.name.empty(), "%s.name: empty domain name",
                     path.c_str());
    ASTRA_USER_CHECK(doc.has("level") != doc.has("npus"),
                     "%s: give exactly one of 'level' (hierarchy "
                     "slice) or 'npus' (explicit member list)",
                     path.c_str());
    if (doc.has("level")) {
        d.level = static_cast<int>(doc.at("level").asInt());
        ASTRA_USER_CHECK(d.level >= 1,
                         "%s.level: must be >= 1 (level j = blocks of "
                         "the first j dimensions)",
                         path.c_str());
        if (doc.has("index")) {
            d.index = static_cast<int>(doc.at("index").asInt());
            ASTRA_USER_CHECK(d.index >= 0, "%s.index: must be >= 0",
                             path.c_str());
        }
    } else {
        ASTRA_USER_CHECK(!doc.has("index"),
                         "%s.index: only meaningful with 'level'",
                         path.c_str());
        for (const json::Value &n : doc.at("npus").asArray())
            d.npus.push_back(static_cast<NpuId>(n.asInt()));
        ASTRA_USER_CHECK(!d.npus.empty(), "%s.npus: empty member list",
                         path.c_str());
    }
    d.mtbfNs = requireNonNegative(doc.getNumber("mtbf_ns", 0.0),
                                  path + ".mtbf_ns", "MTBF");
    d.mttrNs = requireNonNegative(doc.getNumber("mttr_ns", 0.0),
                                  path + ".mttr_ns", "MTTR");
    return d;
}

json::Value
domainToJson(const FailureDomain &d)
{
    json::Object o;
    o["name"] = d.name;
    if (d.level >= 0) {
        o["level"] = int64_t(d.level);
        if (d.index >= 0)
            o["index"] = int64_t(d.index);
    } else {
        json::Array npus;
        for (NpuId n : d.npus)
            npus.push_back(json::Value(int64_t(n)));
        o["npus"] = json::Value(std::move(npus));
    }
    if (d.mtbfNs > 0.0)
        o["mtbf_ns"] = d.mtbfNs;
    if (d.mttrNs > 0.0)
        o["mttr_ns"] = d.mttrNs;
    return json::Value(std::move(o));
}

/** Exponential variate with the given mean (inverse-CDF sampling). */
TimeNs
expSample(Rng &rng, TimeNs mean)
{
    return -mean * std::log(1.0 - rng.uniform());
}

/** Per-component RNG stream: decorrelated from the base seed so
 *  adding a component never shifts another component's timeline.
 *  Kind 1 = NPU streams, 2 = link streams, 3 = domain streams. */
Rng
componentRng(uint64_t seed, uint64_t kind, uint64_t index)
{
    return Rng(seed ^ (kind * 0x9e3779b97f4a7c15ULL) ^
               (index * 0xbf58476d1ce4e5b9ULL));
}

} // namespace

bool
FaultConfig::generatesDomainFaults() const
{
    if (domains.empty())
        return false;
    if (domainMtbfNs > 0.0)
        return true;
    for (const FailureDomain &d : domains)
        if (d.mtbfNs > 0.0)
            return true;
    return false;
}

bool
FaultConfig::empty() const
{
    return schedule.empty() && npuMtbfNs <= 0.0 && linkMtbfNs <= 0.0 &&
           !generatesDomainFaults();
}

FaultConfig
faultConfigFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: must be an object",
                     path.c_str());
    checkKeys(doc, path,
              {"seed", "horizon_ns", "schedule", "npu_mtbf_ns",
               "npu_mttr_ns", "link_mtbf_ns", "link_mttr_ns",
               "link_degrade_scale", "domains", "domain_mtbf_ns",
               "domain_mttr_ns"});

    FaultConfig cfg;
    cfg.seed = static_cast<uint64_t>(doc.getInt("seed", 1));
    cfg.horizonNs = requireNonNegative(doc.getNumber("horizon_ns", 0.0),
                                       path + ".horizon_ns", "horizon");
    cfg.npuMtbfNs = requireNonNegative(doc.getNumber("npu_mtbf_ns", 0.0),
                                       path + ".npu_mtbf_ns", "MTBF");
    cfg.npuMttrNs = requireNonNegative(doc.getNumber("npu_mttr_ns", 0.0),
                                       path + ".npu_mttr_ns", "MTTR");
    cfg.linkMtbfNs =
        requireNonNegative(doc.getNumber("link_mtbf_ns", 0.0),
                           path + ".link_mtbf_ns", "MTBF");
    cfg.linkMttrNs =
        requireNonNegative(doc.getNumber("link_mttr_ns", 0.0),
                           path + ".link_mttr_ns", "MTTR");
    cfg.linkDegradeScale =
        requireNonNegative(doc.getNumber("link_degrade_scale", 0.0),
                           path + ".link_degrade_scale", "scale");
    ASTRA_USER_CHECK(cfg.linkDegradeScale < 1.0,
                     "%s.link_degrade_scale: must be in [0, 1) "
                     "(0 = full outages)", path.c_str());
    cfg.domainMtbfNs =
        requireNonNegative(doc.getNumber("domain_mtbf_ns", 0.0),
                           path + ".domain_mtbf_ns", "MTBF");
    cfg.domainMttrNs =
        requireNonNegative(doc.getNumber("domain_mttr_ns", 0.0),
                           path + ".domain_mttr_ns", "MTTR");

    if (doc.has("domains")) {
        const json::Array &arr = doc.at("domains").asArray();
        for (size_t i = 0; i < arr.size(); ++i)
            cfg.domains.push_back(domainFromJson(
                arr[i], path + ".domains." + std::to_string(i)));
    }
    ASTRA_USER_CHECK(cfg.domainMtbfNs <= 0.0 || !cfg.domains.empty(),
                     "%s.domain_mtbf_ns: needs 'domains' to generate "
                     "failures for", path.c_str());

    bool generates = cfg.npuMtbfNs > 0.0 || cfg.linkMtbfNs > 0.0 ||
                     cfg.generatesDomainFaults();
    ASTRA_USER_CHECK(!generates || cfg.horizonNs > 0.0,
                     "%s.horizon_ns: MTBF-based generation needs a "
                     "positive horizon", path.c_str());

    if (doc.has("schedule")) {
        const json::Array &arr = doc.at("schedule").asArray();
        for (size_t i = 0; i < arr.size(); ++i)
            cfg.schedule.push_back(eventFromJson(
                arr[i], path + ".schedule." + std::to_string(i)));
    }
    return cfg;
}

json::Value
faultConfigToJson(const FaultConfig &cfg)
{
    json::Object o;
    o["seed"] = cfg.seed;
    if (cfg.horizonNs > 0.0)
        o["horizon_ns"] = cfg.horizonNs;
    if (cfg.npuMtbfNs > 0.0) {
        o["npu_mtbf_ns"] = cfg.npuMtbfNs;
        o["npu_mttr_ns"] = cfg.npuMttrNs;
    }
    if (cfg.linkMtbfNs > 0.0) {
        o["link_mtbf_ns"] = cfg.linkMtbfNs;
        o["link_mttr_ns"] = cfg.linkMttrNs;
        if (cfg.linkDegradeScale > 0.0)
            o["link_degrade_scale"] = cfg.linkDegradeScale;
    }
    if (!cfg.domains.empty()) {
        json::Array arr;
        for (const FailureDomain &d : cfg.domains)
            arr.push_back(domainToJson(d));
        o["domains"] = json::Value(std::move(arr));
        if (cfg.domainMtbfNs > 0.0) {
            o["domain_mtbf_ns"] = cfg.domainMtbfNs;
            o["domain_mttr_ns"] = cfg.domainMttrNs;
        }
    }
    if (!cfg.schedule.empty()) {
        json::Array arr;
        for (const FaultEvent &ev : cfg.schedule)
            arr.push_back(eventToJson(ev));
        o["schedule"] = json::Value(std::move(arr));
    }
    return json::Value(std::move(o));
}

CheckpointPolicy
checkpointFromJson(const json::Value &doc, const std::string &path)
{
    ASTRA_USER_CHECK(doc.isObject(), "%s: must be an object",
                     path.c_str());
    checkKeys(doc, path,
              {"interval_ns", "cost_ns", "restart_delay_ns", "restart"});
    CheckpointPolicy p;
    if (doc.has("interval_ns") && doc.at("interval_ns").isString()) {
        const std::string &s = doc.at("interval_ns").asString();
        ASTRA_USER_CHECK(s == "auto",
                         "%s.interval_ns: expected a time in ns or "
                         "\"auto\", got \"%s\"",
                         path.c_str(), s.c_str());
        p.autoInterval = true;
    } else {
        p.intervalNs =
            requireNonNegative(doc.getNumber("interval_ns", 0.0),
                               path + ".interval_ns", "interval");
    }
    p.costNs = requireNonNegative(doc.getNumber("cost_ns", 0.0),
                                  path + ".cost_ns", "cost");
    ASTRA_USER_CHECK(!p.autoInterval || p.costNs > 0.0,
                     "%s.interval_ns: \"auto\" needs a positive "
                     "cost_ns (Young/Daly trades checkpoint cost "
                     "against expected rollback)", path.c_str());
    p.restartDelayNs =
        requireNonNegative(doc.getNumber("restart_delay_ns", 0.0),
                           path + ".restart_delay_ns", "restart delay");
    p.restart = parseRestartMode(doc.getString("restart", "same"),
                                 path + ".restart");
    return p;
}

std::vector<FailureDomain>
resolveDomains(const FaultConfig &cfg, const Topology &topo)
{
    std::vector<FailureDomain> out;
    for (size_t s = 0; s < cfg.domains.size(); ++s) {
        const FailureDomain &spec = cfg.domains[s];
        std::string where = "fault.domains." + std::to_string(s) +
                            " ('" + spec.name + "')";
        if (spec.level < 0) {
            // Explicit member list.
            std::vector<uint8_t> seen(
                static_cast<size_t>(topo.npus()), 0);
            for (NpuId id : spec.npus) {
                ASTRA_USER_CHECK(id >= 0 && id < topo.npus(),
                                 "%s: npu %d out of range for %d NPUs",
                                 where.c_str(), id, topo.npus());
                ASTRA_USER_CHECK(!seen[static_cast<size_t>(id)],
                                 "%s: npu %d listed twice",
                                 where.c_str(), id);
                seen[static_cast<size_t>(id)] = 1;
            }
            FailureDomain d = spec;
            // Members sorted ascending: expansion order (and thus the
            // built timeline) is independent of how the list was
            // written.
            std::sort(d.npus.begin(), d.npus.end());
            out.push_back(std::move(d));
            continue;
        }
        ASTRA_USER_CHECK(spec.level <= topo.numDims(),
                         "%s: level %d out of range for %d dims",
                         where.c_str(), spec.level, topo.numDims());
        int block = 1;
        for (int dd = 0; dd < spec.level; ++dd)
            block *= topo.dim(dd).size;
        int instances = topo.npus() / block;
        ASTRA_USER_CHECK(spec.index < instances,
                         "%s: index %d out of range (%d level-%d "
                         "blocks of %d NPUs)",
                         where.c_str(), spec.index, instances,
                         spec.level, block);
        int first = spec.index >= 0 ? spec.index : 0;
        int last = spec.index >= 0 ? spec.index : instances - 1;
        for (int i = first; i <= last; ++i) {
            FailureDomain d;
            d.name = spec.index >= 0 ? spec.name
                                     : spec.name + std::to_string(i);
            d.level = spec.level;
            d.index = i;
            d.mtbfNs = spec.mtbfNs;
            d.mttrNs = spec.mttrNs;
            d.npus.reserve(static_cast<size_t>(block));
            for (int n = 0; n < block; ++n)
                d.npus.push_back(i * block + n);
            out.push_back(std::move(d));
        }
    }
    for (size_t a = 0; a < out.size(); ++a)
        for (size_t b = a + 1; b < out.size(); ++b)
            ASTRA_USER_CHECK(out[a].name != out[b].name,
                             "fault.domains: duplicate domain name "
                             "'%s' (schedule entries reference domains "
                             "by name)",
                             out[a].name.c_str());
    return out;
}

TimeNs
youngDalyInterval(TimeNs costNs, TimeNs mtbfNs)
{
    ASTRA_ASSERT(costNs > 0.0 && mtbfNs > 0.0,
                 "Young/Daly needs positive cost and MTBF");
    return std::sqrt(2.0 * costNs * mtbfNs);
}

namespace {

/** Append the constituent events a domain fail/recover expands into.
 *  Members in ascending id order; boundary links enumerated per
 *  (member, dim) in the dimension's group order — fully deterministic
 *  for a fixed (domain, topology). */
void
expandDomainEvent(const FaultEvent &root, const FailureDomain &d,
                  const Topology &topo,
                  const std::vector<uint8_t> &member,
                  std::vector<FaultEvent> &timeline)
{
    bool failing = root.kind == FaultKind::DomainFail;

    FaultEvent proto;
    proto.at = root.at;
    proto.domain = root.domain;
    proto.incident = root.incident;
    proto.domainName = root.domainName;

    auto boundary_links = [&](FaultKind kind) {
        for (NpuId id : d.npus) {
            for (int dim = 0; dim < topo.numDims(); ++dim) {
                for (NpuId peer : topo.groupInDim(id, dim)) {
                    if (peer == id || member[static_cast<size_t>(peer)])
                        continue;
                    FaultEvent link = proto;
                    link.kind = kind;
                    link.src = peer;
                    link.dst = id;
                    link.dim = dim;
                    timeline.push_back(std::move(link));
                }
            }
        }
    };
    auto member_npus = [&](FaultKind kind) {
        for (NpuId id : d.npus) {
            FaultEvent npu = proto;
            npu.kind = kind;
            npu.npu = id;
            timeline.push_back(std::move(npu));
        }
    };

    if (failing) {
        // Fail-stop every member first (the cluster layer marks the
        // whole domain unplaceable on the parent event, so admissions
        // between member failures cannot land inside the blast
        // radius), then cut the inbound boundary links. Member egress
        // is cut by the NPU fail-stops themselves.
        member_npus(FaultKind::NpuFail);
        boundary_links(FaultKind::LinkDown);
    } else {
        // Heal the fabric before the members: a zero-delay restart
        // triggered by the last member's recovery must never see a
        // boundary link still down.
        boundary_links(FaultKind::LinkUp);
        member_npus(FaultKind::NpuRecover);
    }
}

} // namespace

std::vector<FaultEvent>
buildTimeline(const FaultConfig &cfg, const Topology &topo)
{
    std::vector<FaultEvent> roots = cfg.schedule;

    // Generated NPU fail/recover pairs: one independent alternating
    // renewal process per NPU.
    if (cfg.npuMtbfNs > 0.0) {
        ASTRA_USER_CHECK(cfg.npuMttrNs > 0.0,
                         "fault.npu_mttr_ns: NPU fault generation needs "
                         "a positive MTTR");
        for (NpuId n = 0; n < topo.npus(); ++n) {
            Rng rng = componentRng(cfg.seed, 1, uint64_t(n));
            TimeNs t = expSample(rng, cfg.npuMtbfNs);
            while (t < cfg.horizonNs) {
                FaultEvent fail;
                fail.at = t;
                fail.kind = FaultKind::NpuFail;
                fail.npu = n;
                roots.push_back(fail);
                t += expSample(rng, cfg.npuMttrNs);
                FaultEvent recover = fail;
                recover.at = t;
                recover.kind = FaultKind::NpuRecover;
                roots.push_back(recover);
                t += expSample(rng, cfg.npuMtbfNs);
            }
        }
    }

    // Generated link faults: one process per (NPU, dim) egress group.
    if (cfg.linkMtbfNs > 0.0) {
        ASTRA_USER_CHECK(cfg.linkMttrNs > 0.0,
                         "fault.link_mttr_ns: link fault generation "
                         "needs a positive MTTR");
        bool degrade = cfg.linkDegradeScale > 0.0;
        for (NpuId n = 0; n < topo.npus(); ++n) {
            for (int d = 0; d < topo.numDims(); ++d) {
                uint64_t idx =
                    uint64_t(n) * uint64_t(topo.numDims()) + uint64_t(d);
                Rng rng = componentRng(cfg.seed, 2, idx);
                TimeNs t = expSample(rng, cfg.linkMtbfNs);
                while (t < cfg.horizonNs) {
                    FaultEvent down;
                    down.at = t;
                    down.kind = degrade ? FaultKind::LinkDegrade
                                        : FaultKind::LinkDown;
                    down.src = n;
                    down.dst = kAllFaultPeers;
                    down.dim = d;
                    if (degrade)
                        down.scale = cfg.linkDegradeScale;
                    roots.push_back(down);
                    t += expSample(rng, cfg.linkMttrNs);
                    FaultEvent up = down;
                    up.at = t;
                    up.kind = degrade ? FaultKind::LinkDegrade
                                      : FaultKind::LinkUp;
                    up.scale = 1.0;
                    roots.push_back(up);
                    t += expSample(rng, cfg.linkMtbfNs);
                }
            }
        }
    }

    // Correlated domain fail/recover pairs: one alternating renewal
    // process per resolved domain, seeded by the domain's ordinal so
    // a fixed (seed, topology) reproduces identical blast-radius
    // timelines.
    std::vector<FailureDomain> domains = resolveDomains(cfg, topo);
    for (size_t i = 0; i < domains.size(); ++i) {
        const FailureDomain &d = domains[i];
        TimeNs mtbf = d.mtbfNs > 0.0 ? d.mtbfNs : cfg.domainMtbfNs;
        if (mtbf <= 0.0)
            continue;
        TimeNs mttr = d.mttrNs > 0.0 ? d.mttrNs : cfg.domainMttrNs;
        ASTRA_USER_CHECK(mttr > 0.0,
                         "fault.domain_mttr_ns: domain fault "
                         "generation needs a positive MTTR (domain "
                         "'%s')", d.name.c_str());
        Rng rng = componentRng(cfg.seed, 3, uint64_t(i));
        TimeNs t = expSample(rng, mtbf);
        while (t < cfg.horizonNs) {
            FaultEvent fail;
            fail.at = t;
            fail.kind = FaultKind::DomainFail;
            fail.domain = static_cast<int>(i);
            fail.domainName = d.name;
            roots.push_back(fail);
            t += expSample(rng, mttr);
            FaultEvent recover = fail;
            recover.at = t;
            recover.kind = FaultKind::DomainRecover;
            roots.push_back(recover);
            t += expSample(rng, mtbf);
        }
    }

    // Resolve schedule entries' by-name domain references and
    // range-check every root against the topology.
    for (size_t i = 0; i < roots.size(); ++i) {
        FaultEvent &ev = roots[i];
        std::string where = "fault event " + std::to_string(i) + " (" +
                            std::string(faultKindName(ev.kind)) + ")";
        switch (ev.kind) {
          case FaultKind::LinkDegrade:
          case FaultKind::LinkDown:
          case FaultKind::LinkUp:
            ASTRA_USER_CHECK(ev.src >= 0 && ev.src < topo.npus(),
                             "%s: src %d out of range for %d NPUs",
                             where.c_str(), ev.src, topo.npus());
            ASTRA_USER_CHECK(
                ev.dst < topo.npus(),
                "%s: dst %d out of range for %d NPUs", where.c_str(),
                ev.dst, topo.npus());
            ASTRA_USER_CHECK(
                ev.dim < topo.numDims(),
                "%s: dim %d out of range for %d dims", where.c_str(),
                ev.dim, topo.numDims());
            break;
          case FaultKind::NpuFail:
          case FaultKind::NpuRecover:
          case FaultKind::Straggler:
            ASTRA_USER_CHECK(ev.npu >= 0 && ev.npu < topo.npus(),
                             "%s: npu %d out of range for %d NPUs",
                             where.c_str(), ev.npu, topo.npus());
            break;
          case FaultKind::DomainFail:
          case FaultKind::DomainRecover:
            if (ev.domain < 0) {
                for (size_t j = 0; j < domains.size(); ++j)
                    if (domains[j].name == ev.domainName) {
                        ev.domain = static_cast<int>(j);
                        break;
                    }
                ASTRA_USER_CHECK(
                    ev.domain >= 0,
                    "%s: unknown domain '%s' (declare it under "
                    "fault.domains)",
                    where.c_str(), ev.domainName.c_str());
            }
            break;
        }
    }

    // Stable sort keeps same-time events in schedule-then-generated
    // order — fully deterministic for a given (config, topology).
    std::stable_sort(roots.begin(), roots.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });

    // Assign fault-incident ids in time order and expand domain
    // events in place (expansion preserves the sort: constituents
    // share their parent's timestamp and follow it).
    std::vector<FaultEvent> timeline;
    timeline.reserve(roots.size());
    std::vector<uint8_t> member(static_cast<size_t>(topo.npus()), 0);
    int incident = 0;
    for (FaultEvent &ev : roots) {
        switch (ev.kind) {
          case FaultKind::NpuFail:
            ev.incident = incident++;
            timeline.push_back(std::move(ev));
            break;
          case FaultKind::DomainFail:
          case FaultKind::DomainRecover: {
            if (ev.kind == FaultKind::DomainFail)
                ev.incident = incident++;
            const FailureDomain &d =
                domains[static_cast<size_t>(ev.domain)];
            std::fill(member.begin(), member.end(), 0);
            for (NpuId id : d.npus)
                member[static_cast<size_t>(id)] = 1;
            timeline.push_back(ev);
            expandDomainEvent(ev, d, topo, member, timeline);
            break;
          }
          default:
            timeline.push_back(std::move(ev));
            break;
        }
    }
    return timeline;
}

} // namespace fault
} // namespace astra
