#include "fault/injector.h"

#include <utility>

#include "common/logging.h"
#include "trace/tracer.h"

namespace astra {
namespace fault {

FaultInjector::FaultInjector(EventQueue &eq, const Topology &topo,
                             const FaultConfig &cfg, FaultHooks hooks)
    : eq_(eq), hooks_(std::move(hooks)),
      timeline_(buildTimeline(cfg, topo))
{
    for (const FaultEvent &ev : timeline_) {
        switch (ev.kind) {
          case FaultKind::LinkDegrade:
          case FaultKind::LinkDown:
          case FaultKind::LinkUp:
            ASTRA_ASSERT(hooks_.net,
                         "fault timeline has link events but no "
                         "network hook");
            break;
          case FaultKind::NpuFail:
          case FaultKind::NpuRecover:
            ASTRA_USER_CHECK(
                hooks_.npuFail && hooks_.npuRecover,
                "fault schedule contains NPU fail/recover events, "
                "which need the cluster simulator's checkpoint/restart "
                "machinery — run this scenario as a cluster config "
                "(single-workload simulations support only link faults "
                "and stragglers)");
            break;
          case FaultKind::Straggler:
            ASTRA_ASSERT(hooks_.computeScale,
                         "fault timeline has stragglers but no "
                         "compute-scale hook");
            ASTRA_ASSERT(ev.injectionScale == 1.0 || hooks_.net,
                         "straggler injection slowdown needs a "
                         "network hook");
            break;
          case FaultKind::DomainFail:
          case FaultKind::DomainRecover:
            // Parent markers only; the cluster requirement is carried
            // by the constituent NpuFail/NpuRecover events they
            // expanded into.
            break;
        }
    }
}

void
FaultInjector::start()
{
    ASTRA_ASSERT(!started_, "fault injector started twice");
    started_ = true;
    scheduleNext(0);
}

void
FaultInjector::scheduleNext(size_t index)
{
    if (index >= timeline_.size())
        return;
    eq_.scheduleAt(timeline_[index].at, [this, index] {
        if (hooks_.active && !hooks_.active())
            return; // Work is done; cut the chain.
        apply(timeline_[index]);
        ++fired_;
        scheduleNext(index + 1);
    });
}

void
FaultInjector::apply(const FaultEvent &ev)
{
    debugT("fault", "t=%.0f firing %s (src=%d dst=%d npu=%d dim=%d)",
           ev.at, faultKindName(ev.kind), ev.src, ev.dst, ev.npu,
           ev.dim);
    if (tracer_) {
        switch (ev.kind) {
          case FaultKind::LinkDegrade:
            tracer_->instant(tracePid_, trace::Tracer::kLifecycleTid,
                             "fault", "link degrade %lld->%lld d%lld",
                             ev.at, ev.src, ev.dst, ev.dim);
            break;
          case FaultKind::LinkDown:
            tracer_->instant(tracePid_, trace::Tracer::kLifecycleTid,
                             "fault", "link down %lld->%lld d%lld",
                             ev.at, ev.src, ev.dst, ev.dim);
            break;
          case FaultKind::LinkUp:
            tracer_->instant(tracePid_, trace::Tracer::kLifecycleTid,
                             "fault", "link up %lld->%lld d%lld",
                             ev.at, ev.src, ev.dst, ev.dim);
            break;
          case FaultKind::NpuFail:
            if (ev.domain >= 0)
                tracer_->instantStr(
                    tracePid_, trace::Tracer::kLifecycleTid, "fault",
                    "npu fail " + std::to_string(ev.npu) + " [" +
                        ev.domainName + "]",
                    ev.at);
            else
                tracer_->instant(tracePid_, trace::Tracer::kLifecycleTid,
                                 "fault", "npu fail %lld", ev.at,
                                 ev.npu);
            break;
          case FaultKind::NpuRecover:
            if (ev.domain >= 0)
                tracer_->instantStr(
                    tracePid_, trace::Tracer::kLifecycleTid, "fault",
                    "npu recover " + std::to_string(ev.npu) + " [" +
                        ev.domainName + "]",
                    ev.at);
            else
                tracer_->instant(tracePid_, trace::Tracer::kLifecycleTid,
                                 "fault", "npu recover %lld", ev.at,
                                 ev.npu);
            break;
          case FaultKind::Straggler:
            tracer_->instant(tracePid_, trace::Tracer::kLifecycleTid,
                             "fault", "straggler n%lld x%lld%%", ev.at,
                             ev.npu,
                             static_cast<long long>(ev.computeScale *
                                                    100.0));
            break;
          case FaultKind::DomainFail:
            tracer_->instantStr(tracePid_, trace::Tracer::kLifecycleTid,
                                "fault", "domain fail " + ev.domainName,
                                ev.at);
            break;
          case FaultKind::DomainRecover:
            tracer_->instantStr(tracePid_, trace::Tracer::kLifecycleTid,
                                "fault",
                                "domain recover " + ev.domainName,
                                ev.at);
            break;
        }
    }
    switch (ev.kind) {
      case FaultKind::LinkDegrade:
        hooks_.net->setLinkCapacityScale(ev.src, ev.dst, ev.dim,
                                         ev.scale);
        break;
      case FaultKind::LinkDown:
        hooks_.net->setLinkUp(ev.src, ev.dst, ev.dim, false);
        break;
      case FaultKind::LinkUp:
        hooks_.net->setLinkUp(ev.src, ev.dst, ev.dim, true);
        break;
      case FaultKind::NpuFail:
        hooks_.npuFail(ev);
        break;
      case FaultKind::NpuRecover:
        hooks_.npuRecover(ev);
        break;
      case FaultKind::Straggler:
        hooks_.computeScale(ev.npu, ev.computeScale);
        // The latest scale wins (absolute, not compounding).
        if (ev.injectionScale != 1.0)
            hooks_.net->setLinkCapacityScale(
                ev.npu, kAllFaultPeers, kAllFaultDims,
                ev.injectionScale);
        break;
      case FaultKind::DomainFail:
        if (hooks_.domainFail)
            hooks_.domainFail(ev);
        break;
      case FaultKind::DomainRecover:
        if (hooks_.domainRecover)
            hooks_.domainRecover(ev);
        break;
    }
}

} // namespace fault
} // namespace astra
