/**
 * @file
 * FaultInjector: drives a fault timeline through the event queue.
 *
 * The injector materializes the timeline once (fault/fault.h
 * buildTimeline — explicit schedule merged with seeded MTBF/MTTR
 * generation) and then *chains* its events: only the next pending
 * fault is ever in the event queue, and each firing schedules its
 * successor. Chaining matters for two reasons: the queue never holds
 * a long tail of far-future fault events (which would extend the
 * queue-drained time to the fault horizon), and the `active` hook can
 * cut the chain as soon as the simulation's real work is done — at
 * most one no-op fault event fires past the workload's finish.
 *
 * Link faults are applied directly through the NetworkApi fault
 * hooks; NPU faults and stragglers are delegated to the owner
 * (Simulator or ClusterSimulator) via FaultHooks callbacks, because
 * the training-stack response (rollback, restart, placement) lives
 * above the network layer. Constructing an injector whose timeline
 * contains NPU failures without an `npuFail` hook is a user error:
 * the plain single-job Simulator has no failure-recovery story, so it
 * rejects such schedules up front instead of hanging.
 */
#ifndef ASTRA_FAULT_INJECTOR_H_
#define ASTRA_FAULT_INJECTOR_H_

#include <functional>
#include <vector>

#include "event/event_queue.h"
#include "fault/fault.h"
#include "network/network_api.h"

namespace astra {

namespace trace { class Tracer; }

namespace fault {

/** Owner callbacks; see file comment. `net` is required whenever the
 *  timeline contains link faults or stragglers with injection
 *  slowdown; `npuFail`/`npuRecover` whenever it contains NPU faults. */
struct FaultHooks
{
    NetworkApi *net = nullptr;
    std::function<void(NpuId, double)> computeScale;
    /** NPU fail-stop/recovery; the full event carries domain/incident
     *  attribution for blast-radius accounting. */
    std::function<void(const FaultEvent &)> npuFail;
    std::function<void(const FaultEvent &)> npuRecover;
    /** Optional: fired on the DomainFail/DomainRecover *parent* event,
     *  before any of its constituent events. Lets the cluster layer
     *  mark a whole domain unplaceable atomically so admissions between
     *  member failures cannot land inside the blast radius. */
    std::function<void(const FaultEvent &)> domainFail;
    std::function<void(const FaultEvent &)> domainRecover;
    /** Chain gate: when it returns false the injector stops applying
     *  and scheduling events (the simulation's work is done). Null
     *  means "always active". */
    std::function<bool()> active;
};

/** See file comment. */
class FaultInjector
{
  public:
    FaultInjector(EventQueue &eq, const Topology &topo,
                  const FaultConfig &cfg, FaultHooks hooks);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Schedule the first timeline event (no-op on empty timelines). */
    void start();

    /** Attach the tracing sink (docs/trace.md): every applied fault
     *  event becomes an instant on the lifecycle track of process
     *  `pid`. Null detaches. Purely observational. */
    void
    setTracer(trace::Tracer *tracer, int32_t pid)
    {
        tracer_ = tracer;
        tracePid_ = pid;
    }

    /** Number of fault events applied so far. */
    uint64_t firedCount() const { return fired_; }

    /** Total timeline length (explicit + generated events). */
    size_t timelineSize() const { return timeline_.size(); }

  private:
    void scheduleNext(size_t index);
    void apply(const FaultEvent &ev);

    EventQueue &eq_;
    FaultHooks hooks_;
    std::vector<FaultEvent> timeline_;
    uint64_t fired_ = 0;
    bool started_ = false;
    trace::Tracer *tracer_ = nullptr; //!< null = tracing disabled.
    int32_t tracePid_ = 0;
};

} // namespace fault
} // namespace astra

#endif // ASTRA_FAULT_INJECTOR_H_
