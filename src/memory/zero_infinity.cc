#include "memory/zero_infinity.h"

#include "common/logging.h"

namespace astra {

ZeroInfinityMemory::ZeroInfinityMemory(ZeroInfinityConfig cfg) : cfg_(cfg)
{
    ASTRA_USER_CHECK(cfg_.tierBandwidth > 0.0,
                     "ZeRO-Infinity tier bandwidth must be positive");
}

TimeNs
ZeroInfinityMemory::accessTime(MemOp op, Bytes bytes, bool fused) const
{
    (void)op;
    ASTRA_USER_CHECK(!fused, "ZeRO-Infinity has no in-switch collective "
                             "support (no pooled fabric)");
    ASTRA_USER_CHECK(bytes >= 0.0, "negative tensor size");
    if (bytes == 0.0)
        return 0.0;
    // Independent per-GPU transfer over the private CPU/NVMe path.
    return cfg_.baseLatency + txTime(bytes, cfg_.tierBandwidth);
}

} // namespace astra
