/**
 * @file
 * Combined memory model facade: dispatches the Memory API by tensor
 * location (Fig. 1(c) "Memory API"). Local accesses hit the HBM
 * model; remote accesses hit the configured disaggregated model
 * (pooled RemoteMemory or the ZeRO-Infinity baseline).
 */
#ifndef ASTRA_MEMORY_MEMORY_MODEL_H_
#define ASTRA_MEMORY_MEMORY_MODEL_H_

#include <memory>

#include "memory/local_memory.h"
#include "memory/remote_memory.h"
#include "memory/zero_infinity.h"

namespace astra {

/** Which remote tier backs MemLocation::Remote. */
enum class RemoteKind {
    None,         //!< remote accesses are a user error.
    Pooled,       //!< RemoteMemory (HierMem & friends).
    ZeroInfinity, //!< per-GPU CPU/NVMe tier.
};

/** Facade wiring local + remote models (see file comment). */
class MemoryModel
{
  public:
    /** Local-memory-only system. */
    explicit MemoryModel(LocalMemoryConfig local = {});

    /** Local + pooled remote memory. */
    MemoryModel(LocalMemoryConfig local, RemoteMemoryConfig remote);

    /** Local + ZeRO-Infinity tier. */
    MemoryModel(LocalMemoryConfig local, ZeroInfinityConfig remote);

    /** Access time by location; fatal() on remote access without a
     *  remote tier. */
    TimeNs accessTime(MemLocation loc, MemOp op, Bytes bytes,
                      bool fused = false) const;

    RemoteKind remoteKind() const { return remoteKind_; }
    const LocalMemory &local() const { return local_; }

    /** The pooled remote model; fatal() unless remoteKind()==Pooled. */
    const RemoteMemory &pooled() const;

    /** True if remote accesses can fuse collectives in the fabric. */
    bool supportsInSwitchCollectives() const;

  private:
    LocalMemory local_;
    RemoteKind remoteKind_ = RemoteKind::None;
    std::unique_ptr<MemoryApi> remote_;
};

} // namespace astra

#endif // ASTRA_MEMORY_MEMORY_MODEL_H_
