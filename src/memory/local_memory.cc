#include "memory/local_memory.h"

#include "common/logging.h"

namespace astra {

const char *
memLocationName(MemLocation l)
{
    switch (l) {
      case MemLocation::Local: return "local";
      case MemLocation::Remote: return "remote";
    }
    return "?";
}

const char *
memOpName(MemOp op)
{
    switch (op) {
      case MemOp::Load: return "load";
      case MemOp::Store: return "store";
    }
    return "?";
}

LocalMemory::LocalMemory(LocalMemoryConfig cfg) : cfg_(cfg)
{
    ASTRA_USER_CHECK(cfg_.bandwidth > 0.0,
                     "local memory bandwidth must be positive");
    ASTRA_USER_CHECK(cfg_.latency >= 0.0,
                     "local memory latency must be non-negative");
}

TimeNs
LocalMemory::accessTime(MemOp op, Bytes bytes, bool fused) const
{
    (void)op; // loads and stores are symmetric in the HBM model.
    (void)fused;
    ASTRA_USER_CHECK(bytes >= 0.0, "negative tensor size");
    return cfg_.latency + txTime(bytes, cfg_.bandwidth);
}

} // namespace astra
