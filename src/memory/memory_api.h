/**
 * @file
 * The Memory API of paper §IV-D (Fig. 1(c)/(d)).
 *
 * The Memory API takes tensor location (local or remote), tensor
 * size, and the memory system design, and returns the time to load or
 * store the tensor. Remote models assume the synchronous-training
 * access pattern of the paper's Fig. 6: every GPU in the system
 * issues the access together, so the returned time already accounts
 * for the shared-fabric load.
 */
#ifndef ASTRA_MEMORY_MEMORY_API_H_
#define ASTRA_MEMORY_MEMORY_API_H_

#include "common/units.h"

namespace astra {

/** Where a tensor lives (ET memory-node metadata). */
enum class MemLocation {
    Local,  //!< NPU-attached HBM.
    Remote, //!< disaggregated pool / CPU+NVMe tier.
};

/** Access direction. */
enum class MemOp {
    Load,
    Store,
};

const char *memLocationName(MemLocation l);
const char *memOpName(MemOp op);

/**
 * Abstract memory timing interface.
 *
 * @param op       load or store.
 * @param bytes    per-GPU tensor bytes.
 * @param fused    request in-switch collective fusion (§IV-D.3):
 *                 parameters are gathered while being loaded
 *                 (All-Gather) or sharded while being stored
 *                 (Reduce-Scatter). Only meaningful for pooled
 *                 remote memories that support it.
 */
class MemoryApi
{
  public:
    virtual ~MemoryApi() = default;

    virtual TimeNs accessTime(MemOp op, Bytes bytes,
                              bool fused = false) const = 0;

    /** True if the model performs collective fusion in the fabric. */
    virtual bool supportsInSwitchCollectives() const { return false; }
};

} // namespace astra

#endif // ASTRA_MEMORY_MEMORY_API_H_
