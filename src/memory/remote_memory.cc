#include "memory/remote_memory.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace astra {

const char *
poolArchName(PoolArch a)
{
    switch (a) {
      case PoolArch::Hierarchical: return "hierarchical";
      case PoolArch::MultiLevelSwitch: return "multi_level_switch";
      case PoolArch::Ring: return "ring";
      case PoolArch::Mesh: return "mesh";
    }
    return "?";
}

RemoteMemory::RemoteMemory(RemoteMemoryConfig cfg) : cfg_(cfg)
{
    ASTRA_USER_CHECK(cfg_.numNodes >= 1 && cfg_.gpusPerNode >= 1,
                     "remote memory needs at least one node and GPU");
    ASTRA_USER_CHECK(cfg_.numOutNodeSwitches >= 1,
                     "remote memory needs at least one out-node switch");
    ASTRA_USER_CHECK(cfg_.numRemoteMemoryGroups >= 1,
                     "remote memory needs at least one memory group");
    ASTRA_USER_CHECK(cfg_.chunkBytes > 0.0, "chunk size must be positive");
    ASTRA_USER_CHECK(cfg_.remoteMemGroupBw > 0.0 &&
                         cfg_.gpuSideOutNodeBw > 0.0 &&
                         cfg_.inNodeFabricBw > 0.0,
                     "remote memory bandwidths must be positive");
}

TimeNs
RemoteMemory::StageTimes::max() const
{
    return std::max({rem2outSw, outSw2inSw, inSw2Gpu});
}

double
RemoteMemory::numStages(Bytes bytes) const
{
    // (Tensor Size x Num GPUs) / (Num Remote Memory Groups x
    //  Num Out-node Switches x Chunk Size)   [paper, Fig. 7]
    double stages = (bytes * double(cfg_.totalGpus())) /
                    (double(cfg_.numRemoteMemoryGroups) *
                     double(cfg_.numOutNodeSwitches) * cfg_.chunkBytes);
    return std::max(1.0, std::ceil(stages));
}

RemoteMemory::StageTimes
RemoteMemory::hierStageTimes(bool fused) const
{
    StageTimes tx;
    // TX_rem2outSW = ChunkSize / MemSideOutNodeFabricBW
    tx.rem2outSw = txTime(cfg_.chunkBytes, cfg_.remoteMemGroupBw);
    if (!fused) {
        // TX_outSW2inSW = (NumRemoteMemoryGroups x ChunkSize)
        //               / (NumNodes x GPUSideOutNodeFabricBW)
        tx.outSw2inSw =
            txTime(double(cfg_.numRemoteMemoryGroups) * cfg_.chunkBytes,
                   double(cfg_.numNodes) * cfg_.gpuSideOutNodeBw);
        // TX_inSW2GPU = (NumRemMemGroups x NumOutNodeSW x ChunkSize)
        //             / (NumGPUs x InNodeFabricBW)
        tx.inSw2Gpu =
            txTime(double(cfg_.numRemoteMemoryGroups) *
                       double(cfg_.numOutNodeSwitches) * cfg_.chunkBytes,
                   double(cfg_.totalGpus()) * cfg_.inNodeFabricBw);
    } else {
        // In-switch collective (Fig. 8): parameters are gathered while
        // being loaded, so the reconstructed tensor crosses every
        // node-facing link in full.
        // TX_outSW2inSW = (NumRemoteMemoryGroups x ChunkSize)
        //               / GPUSideOutNodeFabricBW
        tx.outSw2inSw =
            txTime(double(cfg_.numRemoteMemoryGroups) * cfg_.chunkBytes,
                   cfg_.gpuSideOutNodeBw);
        // TX_inSW2GPU = (NumRemMemGroups x NumOutNodeSW x ChunkSize)
        //             / InNodeFabricBW
        tx.inSw2Gpu =
            txTime(double(cfg_.numRemoteMemoryGroups) *
                       double(cfg_.numOutNodeSwitches) * cfg_.chunkBytes,
                   cfg_.inNodeFabricBw);
    }
    return tx;
}

TimeNs
RemoteMemory::hierarchicalTime(Bytes bytes, bool fused) const
{
    StageTimes tx = hierStageTimes(fused);
    double stages = numStages(bytes);
    // Pipelined transfer (Fig. 7): critical path = one full traversal
    // plus (stages - 1) repetitions of the slowest stage.
    return cfg_.baseLatency + tx.sum() + (stages - 1.0) * tx.max();
}

TimeNs
RemoteMemory::multiLevelSwitchTime(Bytes bytes, bool fused) const
{
    // Fig. 5(a): GPUs hang off a switch level directly (no in-node
    // pooled fabric). Two pipeline stages: memory group -> switch,
    // switch -> GPU.
    TimeNs rem2sw = txTime(cfg_.chunkBytes, cfg_.remoteMemGroupBw);
    TimeNs sw2gpu;
    if (!fused) {
        sw2gpu = txTime(double(cfg_.numRemoteMemoryGroups) *
                            double(cfg_.numOutNodeSwitches) *
                            cfg_.chunkBytes,
                        double(cfg_.totalGpus()) * cfg_.gpuSideOutNodeBw);
    } else {
        sw2gpu = txTime(double(cfg_.numRemoteMemoryGroups) *
                            double(cfg_.numOutNodeSwitches) *
                            cfg_.chunkBytes,
                        cfg_.gpuSideOutNodeBw);
    }
    double stages = numStages(bytes);
    TimeNs max_stage = std::max(rem2sw, sw2gpu);
    return cfg_.baseLatency + rem2sw + sw2gpu + (stages - 1.0) * max_stage;
}

TimeNs
RemoteMemory::ringTime(Bytes bytes) const
{
    // Fig. 5(b): GPUs and remote memory groups alternate on one ring
    // of inNodeFabricBw links. First-order model: the W x NumGPUs
    // payload travels an average of (ring size)/4 hops over
    // (ring size) links, so the busiest-link time bounds the access.
    double ring_size =
        double(cfg_.totalGpus() + cfg_.numRemoteMemoryGroups);
    double avg_hops = std::max(1.0, ring_size / 4.0);
    double total_bytes = bytes * double(cfg_.totalGpus());
    double link_work = total_bytes * avg_hops / ring_size;
    return cfg_.baseLatency + txTime(link_work, cfg_.inNodeFabricBw);
}

TimeNs
RemoteMemory::meshTime(Bytes bytes) const
{
    // Fig. 5(c): GPUs in a 2-D mesh with memory groups on the rim.
    // First-order bisection bound: W x NumGPUs bytes cross the
    // 2*sqrt(N) bisection links.
    double n = double(cfg_.totalGpus());
    double side = std::max(1.0, std::floor(std::sqrt(n)));
    double total_bytes = bytes * n;
    double link_work = total_bytes / (2.0 * side);
    return cfg_.baseLatency + txTime(link_work, cfg_.inNodeFabricBw);
}

TimeNs
RemoteMemory::accessTime(MemOp op, Bytes bytes, bool fused) const
{
    (void)op; // loads (gather) and stores (scatter) are symmetric.
    ASTRA_USER_CHECK(bytes >= 0.0, "negative tensor size");
    if (bytes == 0.0)
        return 0.0;
    switch (cfg_.arch) {
      case PoolArch::Hierarchical:
        return hierarchicalTime(bytes, fused);
      case PoolArch::MultiLevelSwitch:
        return multiLevelSwitchTime(bytes, fused);
      case PoolArch::Ring:
        return ringTime(bytes);
      case PoolArch::Mesh:
        return meshTime(bytes);
    }
    panic("unknown pool architecture");
}

} // namespace astra
