/**
 * @file
 * Local (HBM) memory model, paper §IV-D.1:
 *
 *   access_time = access_latency + tensor_size / bandwidth
 */
#ifndef ASTRA_MEMORY_LOCAL_MEMORY_H_
#define ASTRA_MEMORY_LOCAL_MEMORY_H_

#include "memory/memory_api.h"

namespace astra {

/** Configuration of the NPU-attached memory. */
struct LocalMemoryConfig
{
    GBps bandwidth = 4096.0;  //!< Table V "GPU Local HBM BW".
    TimeNs latency = 100.0;   //!< access latency, ns.
};

/** Simple bandwidth/latency HBM model. */
class LocalMemory : public MemoryApi
{
  public:
    explicit LocalMemory(LocalMemoryConfig cfg = {});

    TimeNs accessTime(MemOp op, Bytes bytes,
                      bool fused = false) const override;

    const LocalMemoryConfig &config() const { return cfg_; }

  private:
    LocalMemoryConfig cfg_;
};

} // namespace astra

#endif // ASTRA_MEMORY_LOCAL_MEMORY_H_
