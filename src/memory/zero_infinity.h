/**
 * @file
 * ZeRO-Infinity baseline disaggregated memory model (paper §V-B,
 * Fig. 10).
 *
 * ZeRO-Infinity is "a nascent form of memory disaggregation": every
 * GPU augments its HBM with its own node's CPU memory and NVMe behind
 * a fixed per-GPU path. There is no pooled fabric, so an access of W
 * bytes per GPU costs each GPU an independent transfer over its
 * private tier link — the model cannot exploit an arbitrary number
 * of remote memory groups (the paper's stated limitation).
 */
#ifndef ASTRA_MEMORY_ZERO_INFINITY_H_
#define ASTRA_MEMORY_ZERO_INFINITY_H_

#include "memory/memory_api.h"

namespace astra {

/** Per-GPU tier configuration (Table V column "ZeRO-Infinity"). */
struct ZeroInfinityConfig
{
    GBps tierBandwidth = 100.0; //!< CPU+NVMe tier BW per GPU, GB/s.
    TimeNs baseLatency = 2000.0; //!< NVMe-path access latency, ns.
};

/** See file comment. */
class ZeroInfinityMemory : public MemoryApi
{
  public:
    explicit ZeroInfinityMemory(ZeroInfinityConfig cfg = {});

    TimeNs accessTime(MemOp op, Bytes bytes,
                      bool fused = false) const override;

    const ZeroInfinityConfig &config() const { return cfg_; }

  private:
    ZeroInfinityConfig cfg_;
};

} // namespace astra

#endif // ASTRA_MEMORY_ZERO_INFINITY_H_
