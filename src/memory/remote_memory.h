/**
 * @file
 * Disaggregated (pooled) remote memory models, paper §IV-D.2/3.
 *
 * The flagship model is the hierarchical pool of Fig. 6 ("HierMem" in
 * §V-B): nodes of CPU/GPU pairs behind in-node switches, out-node
 * switches, and remote memory groups that collectively form a shared
 * pool. A synchronized access of W bytes per GPU is transferred in
 * pipelined chunks through three stages, with per-stage transfer
 * times given by the paper's TX equations (reproduced at the
 * implementation). In-switch collective fusion (Fig. 8) gathers
 * parameters while loading / shards them while storing, changing the
 * per-stage link loads.
 *
 * The other pool architectures of Fig. 5 (multi-level switch, ring,
 * mesh) are provided as first-order variants for the design-space
 * ablation; their stage structure is documented inline.
 */
#ifndef ASTRA_MEMORY_REMOTE_MEMORY_H_
#define ASTRA_MEMORY_REMOTE_MEMORY_H_

#include <string>

#include "memory/memory_api.h"

namespace astra {

/** The pool architectures of Fig. 5. */
enum class PoolArch {
    Hierarchical,     //!< Fig. 5(d)/Fig. 6, the HierMem of §V-B.
    MultiLevelSwitch, //!< Fig. 5(a).
    Ring,             //!< Fig. 5(b).
    Mesh,             //!< Fig. 5(c).
};

const char *poolArchName(PoolArch a);

/** Disaggregated memory system configuration (Table V defaults). */
struct RemoteMemoryConfig
{
    PoolArch arch = PoolArch::Hierarchical;
    int numNodes = 16;            //!< nodes in the system.
    int gpusPerNode = 16;         //!< CPU/GPU pairs per node.
    int numOutNodeSwitches = 16;  //!< Table V.
    int numRemoteMemoryGroups = 256; //!< Table V.
    Bytes chunkBytes = 256.0 * 1024.0; //!< pipeline transfer unit.
    GBps remoteMemGroupBw = 100.0;   //!< mem-side out-node fabric BW.
    GBps gpuSideOutNodeBw = 256.0;   //!< out-node to in-node fabric BW.
    GBps inNodeFabricBw = 256.0;     //!< in-node pooled fabric BW.
    TimeNs baseLatency = 1000.0;     //!< end-to-end access latency.

    int totalGpus() const { return numNodes * gpusPerNode; }
};

/**
 * Pooled remote memory timing model (see file comment).
 *
 * accessTime() returns the time for the synchronized access pattern:
 * every GPU in the system loads/stores `bytes` at once.
 */
class RemoteMemory : public MemoryApi
{
  public:
    explicit RemoteMemory(RemoteMemoryConfig cfg = {});

    TimeNs accessTime(MemOp op, Bytes bytes,
                      bool fused = false) const override;

    bool
    supportsInSwitchCollectives() const override
    {
        return cfg_.arch == PoolArch::Hierarchical ||
               cfg_.arch == PoolArch::MultiLevelSwitch;
    }

    const RemoteMemoryConfig &config() const { return cfg_; }

    /** Per-stage transfer times for one chunk (exposed for tests):
     *  {TX_rem2outSW, TX_outSW2inSW, TX_inSW2GPU}. */
    struct StageTimes
    {
        TimeNs rem2outSw = 0.0;
        TimeNs outSw2inSw = 0.0;
        TimeNs inSw2Gpu = 0.0;

        TimeNs sum() const { return rem2outSw + outSw2inSw + inSw2Gpu; }
        TimeNs max() const;
    };
    StageTimes hierStageTimes(bool fused) const;

    /** Pipeline stage count for a per-GPU tensor of `bytes`. */
    double numStages(Bytes bytes) const;

  private:
    TimeNs hierarchicalTime(Bytes bytes, bool fused) const;
    TimeNs multiLevelSwitchTime(Bytes bytes, bool fused) const;
    TimeNs ringTime(Bytes bytes) const;
    TimeNs meshTime(Bytes bytes) const;

    RemoteMemoryConfig cfg_;
};

} // namespace astra

#endif // ASTRA_MEMORY_REMOTE_MEMORY_H_
