#include "memory/memory_model.h"

#include "common/logging.h"

namespace astra {

MemoryModel::MemoryModel(LocalMemoryConfig local) : local_(local)
{
}

MemoryModel::MemoryModel(LocalMemoryConfig local, RemoteMemoryConfig remote)
    : local_(local), remoteKind_(RemoteKind::Pooled),
      remote_(std::make_unique<RemoteMemory>(remote))
{
}

MemoryModel::MemoryModel(LocalMemoryConfig local, ZeroInfinityConfig remote)
    : local_(local), remoteKind_(RemoteKind::ZeroInfinity),
      remote_(std::make_unique<ZeroInfinityMemory>(remote))
{
}

TimeNs
MemoryModel::accessTime(MemLocation loc, MemOp op, Bytes bytes,
                        bool fused) const
{
    if (loc == MemLocation::Local)
        return local_.accessTime(op, bytes, fused);
    ASTRA_USER_CHECK(remote_ != nullptr,
                     "workload accesses remote memory but the system has "
                     "no remote tier configured");
    return remote_->accessTime(op, bytes, fused);
}

const RemoteMemory &
MemoryModel::pooled() const
{
    ASTRA_USER_CHECK(remoteKind_ == RemoteKind::Pooled,
                     "system has no pooled remote memory");
    return static_cast<const RemoteMemory &>(*remote_);
}

bool
MemoryModel::supportsInSwitchCollectives() const
{
    return remote_ && remote_->supportsInSwitchCollectives();
}

} // namespace astra
