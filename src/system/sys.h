/**
 * @file
 * The per-NPU system layer (paper Fig. 1(c)).
 *
 * Sys owns one NPU's execution resources and the boundary to the
 * shared backends: a serializing compute unit (roofline-timed), a
 * serializing DMA queue into the Memory API, the collective engine,
 * and point-to-point sends/receives through the NetworkAPI. The
 * graph-based execution engine issues ready ET nodes here; Sys
 * schedules them, tracks per-class busy intervals in a
 * BreakdownTracker (compute / comm / local mem / remote mem), and
 * invokes the completion callback that lets the workload layer
 * release dependent nodes.
 */
#ifndef ASTRA_SYSTEM_SYS_H_
#define ASTRA_SYSTEM_SYS_H_

#include <cstdint>

#include "collective/engine.h"
#include "common/stats.h"
#include "memory/memory_model.h"
#include "system/compute.h"

namespace astra {

/** Per-NPU system-layer configuration. */
struct SysConfig
{
    ComputeConfig compute;
    /** Default chunking factor applied to collective nodes. */
    int collectiveChunks = 8;
    /** Default collective scheduling policy (§V-A). */
    SchedPolicy policy = SchedPolicy::Baseline;
    /** Conservative chunk serialization (see CollectiveRequest). */
    bool serializeChunks = false;
};

/** See file comment. */
class Sys
{
  public:
    Sys(NpuId npu, const SysConfig &cfg, CollectiveEngine &coll,
        const MemoryModel &mem);

    Sys(const Sys &) = delete;
    Sys &operator=(const Sys &) = delete;

    NpuId npu() const { return npu_; }

    /** Run a roofline-timed operator on the NPU's compute unit. */
    void issueCompute(Flops flops, Bytes tensor_bytes, EventCallback done);

    /** Run a memory transfer through the Memory API (DMA queue). */
    void issueMemory(MemLocation loc, MemOp op, Bytes bytes, bool fused,
                     EventCallback done);

    /**
     * Join a collective. `req.chunks == 0` / default policy fields
     * are filled from the SysConfig.
     */
    void issueCollective(uint64_t key, CollectiveRequest req,
                         EventCallback done);

    /** Point-to-point send; completes when fully injected. */
    void issueSend(NpuId peer, Bytes bytes, uint64_t tag,
                   EventCallback done);

    /** Point-to-point receive; completes at message delivery. */
    void issueRecv(NpuId peer, uint64_t tag, EventCallback done);

    /** Busy-interval integration; finish() before reading. */
    BreakdownTracker &tracker() { return tracker_; }
    const BreakdownTracker &tracker() const { return tracker_; }

    /** Simulated time the NPU last completed any operation. */
    TimeNs lastBusy() const { return lastBusy_; }

    /**
     * Persistent compute slowdown (fault injection's "straggler"):
     * every subsequent compute duration is multiplied by `scale`.
     * Absolute, not compounding — the latest call wins. The default
     * 1.0 is bit-identical to an unscaled NPU.
     */
    void setComputeScale(double scale) { computeScale_ = scale; }
    double computeScale() const { return computeScale_; }

    /**
     * Occupy the compute unit for `duration` ns starting as soon as
     * it is free (checkpoint cost): queued work behind it is pushed
     * back exactly like a compute node, and the interval is tracked
     * as Compute activity. No-op for duration <= 0.
     */
    void stallCompute(TimeNs duration);

    const SysConfig &config() const { return cfg_; }

    /** The shared event queue driving this NPU's backends. */
    EventQueue &eventQueue() { return coll_.network().eventQueue(); }

    /** The network backend this NPU's traffic flows through. */
    NetworkApi &network() { return coll_.network(); }

  private:
    using Activity = BreakdownTracker::Activity;

    EventQueue &eq();
    void noteBusy();

    NpuId npu_;
    SysConfig cfg_;
    CollectiveEngine &coll_;
    const MemoryModel &mem_;
    RooflineCompute roofline_;
    BreakdownTracker tracker_;
    TimeNs computeFreeAt_ = 0.0;
    TimeNs memFreeAt_ = 0.0;
    TimeNs lastBusy_ = 0.0;
    double computeScale_ = 1.0;
};

} // namespace astra

#endif // ASTRA_SYSTEM_SYS_H_
