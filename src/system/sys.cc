#include "system/sys.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace astra {

Sys::Sys(NpuId npu, const SysConfig &cfg, CollectiveEngine &coll,
         const MemoryModel &mem)
    : npu_(npu), cfg_(cfg), coll_(coll), mem_(mem),
      roofline_(cfg.compute)
{
}

EventQueue &
Sys::eq()
{
    return coll_.network().eventQueue();
}

void
Sys::noteBusy()
{
    lastBusy_ = std::max(lastBusy_, eq().now());
}

void
Sys::stallCompute(TimeNs duration)
{
    if (duration <= 0.0)
        return;
    TimeNs start = std::max(eq().now(), computeFreeAt_);
    computeFreeAt_ = start + duration;
    eq().scheduleAt(start, [this] {
        tracker_.beginActivity(Activity::Compute, eq().now());
    });
    eq().scheduleAt(start + duration, [this] {
        tracker_.endActivity(Activity::Compute, eq().now());
        noteBusy();
    });
}

void
Sys::issueCompute(Flops flops, Bytes tensor_bytes, EventCallback done)
{
    TimeNs duration =
        roofline_.computeTime(flops, tensor_bytes) * computeScale_;
    TimeNs start = std::max(eq().now(), computeFreeAt_);
    computeFreeAt_ = start + duration;
    eq().scheduleAt(start, [this] {
        tracker_.beginActivity(Activity::Compute, eq().now());
    });
    eq().scheduleAt(start + duration,
                    [this, done = std::move(done)]() mutable {
                        tracker_.endActivity(Activity::Compute, eq().now());
                        noteBusy();
                        if (done)
                            done();
                    });
}

void
Sys::issueMemory(MemLocation loc, MemOp op, Bytes bytes, bool fused,
                 EventCallback done)
{
    TimeNs duration = mem_.accessTime(loc, op, bytes, fused);
    Activity activity = (loc == MemLocation::Local)
                            ? Activity::LocalMem
                            : Activity::RemoteMem;
    // In-switch collective fusion is communication performed by the
    // fabric (§IV-D.3): account it as comm so Fig. 11's "Exp. Comm"
    // component captures it.
    if (fused)
        activity = Activity::Comm;
    TimeNs start = std::max(eq().now(), memFreeAt_);
    memFreeAt_ = start + duration;
    eq().scheduleAt(start, [this, activity] {
        tracker_.beginActivity(activity, eq().now());
    });
    eq().scheduleAt(start + duration,
                    [this, activity, done = std::move(done)]() mutable {
                        tracker_.endActivity(activity, eq().now());
                        noteBusy();
                        if (done)
                            done();
                    });
}

void
Sys::issueCollective(uint64_t key, CollectiveRequest req,
                     EventCallback done)
{
    if (req.chunks <= 0)
        req.chunks = cfg_.collectiveChunks;
    req.policy = cfg_.policy;
    req.serializeChunks = cfg_.serializeChunks;
    tracker_.beginActivity(Activity::Comm, eq().now());
    coll_.join(key, npu_, req,
               [this, done = std::move(done)]() mutable {
                   tracker_.endActivity(Activity::Comm, eq().now());
                   noteBusy();
                   if (done)
                       done();
               });
}

void
Sys::issueSend(NpuId peer, Bytes bytes, uint64_t tag, EventCallback done)
{
    tracker_.beginActivity(Activity::Comm, eq().now());
    SendHandlers handlers;
    handlers.onInjected = [this, done = std::move(done)]() mutable {
        tracker_.endActivity(Activity::Comm, eq().now());
        noteBusy();
        if (done)
            done();
    };
    coll_.network().simSend(npu_, peer, bytes, kAutoRoute, tag,
                            std::move(handlers));
}

void
Sys::issueRecv(NpuId peer, uint64_t tag, EventCallback done)
{
    tracker_.beginActivity(Activity::Comm, eq().now());
    coll_.network().simRecv(npu_, peer, tag,
                            [this, done = std::move(done)]() mutable {
                                tracker_.endActivity(Activity::Comm,
                                                     eq().now());
                                noteBusy();
                                if (done)
                                    done();
                            });
}

} // namespace astra
