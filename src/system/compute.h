/**
 * @file
 * NPU compute timing via a roofline model (paper §IV-A: "ASTRA-sim
 * calculates the number of cycles to perform the operation with an
 * internal roofline model").
 *
 * An operator with F floating-point operations touching B bytes runs
 * in max(F / peak_flops, B / memory_bandwidth): compute-bound
 * operators ride the flat roof, memory-bound operators the slope.
 */
#ifndef ASTRA_SYSTEM_COMPUTE_H_
#define ASTRA_SYSTEM_COMPUTE_H_

#include "common/units.h"

namespace astra {

/** NPU compute capability (defaults: the paper's A100 at 234 TFLOPS
 *  with its HBM2e bandwidth). */
struct ComputeConfig
{
    double peakTflops = 234.0; //!< peak throughput, TFLOP/s.
    GBps memBandwidth = 2039.0; //!< operator-fusion-level HBM BW.
    TimeNs kernelOverhead = 0.0; //!< fixed per-operator launch cost.
};

/** Roofline operator timing (see file comment). */
class RooflineCompute
{
  public:
    explicit RooflineCompute(ComputeConfig cfg = {});

    /** Execution time of one operator. */
    TimeNs computeTime(Flops flops, Bytes tensor_bytes) const;

    /** Arithmetic intensity (FLOP/byte) at the roofline ridge. */
    double ridgeIntensity() const;

    const ComputeConfig &config() const { return cfg_; }

  private:
    ComputeConfig cfg_;
};

} // namespace astra

#endif // ASTRA_SYSTEM_COMPUTE_H_
