#include "system/compute.h"

#include <algorithm>

#include "common/logging.h"

namespace astra {

RooflineCompute::RooflineCompute(ComputeConfig cfg) : cfg_(cfg)
{
    ASTRA_USER_CHECK(cfg_.peakTflops > 0.0,
                     "peak compute must be positive");
    ASTRA_USER_CHECK(cfg_.memBandwidth > 0.0,
                     "compute memory bandwidth must be positive");
    ASTRA_USER_CHECK(cfg_.kernelOverhead >= 0.0,
                     "kernel overhead must be non-negative");
}

TimeNs
RooflineCompute::computeTime(Flops flops, Bytes tensor_bytes) const
{
    ASTRA_USER_CHECK(flops >= 0.0 && tensor_bytes >= 0.0,
                     "negative compute node metadata");
    TimeNs flop_time = flops / tflopsToFlopPerNs(cfg_.peakTflops);
    TimeNs mem_time = txTime(tensor_bytes, cfg_.memBandwidth);
    return cfg_.kernelOverhead + std::max(flop_time, mem_time);
}

double
RooflineCompute::ridgeIntensity() const
{
    // FLOP/byte where the two roofline regimes meet.
    return tflopsToFlopPerNs(cfg_.peakTflops) / cfg_.memBandwidth;
}

} // namespace astra
