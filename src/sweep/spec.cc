#include "sweep/spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "astra/config.h"
#include "common/logging.h"
#include "fault/fault.h"
#include "topology/notation.h"
#include "topology/presets.h"
#include "workload/builders.h"

namespace astra {
namespace sweep {

namespace {

std::string
toLower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::vector<json::Value>
expandRange(const json::Value &range)
{
    double from = range.at("from").asNumber();
    double to = range.at("to").asNumber();
    double step = range.at("step").asNumber();
    ASTRA_USER_CHECK(step > 0.0, "sweep axis range: step must be > 0");
    ASTRA_USER_CHECK(to >= from,
                     "sweep axis range: 'to' (%g) below 'from' (%g)", to,
                     from);
    // Grid points are from + i*step (multiplication, not accumulation:
    // no drift, and a step below the ULP of `from` cannot hang the
    // expansion). Inclusive endpoint with a tolerance sized only for
    // rounding — it must never admit a genuine extra point past 'to'.
    double count = std::floor((to - from) / step + 1e-9) + 1.0;
    ASTRA_USER_CHECK(count <= 1e6,
                     "sweep axis range: %g..%g step %g expands to %g "
                     "values (limit 1e6)",
                     from, to, step, count);
    std::vector<json::Value> values;
    for (size_t i = 0; i < static_cast<size_t>(count); ++i)
        values.push_back(json::Value(from + double(i) * step));
    return values;
}

Axis
axisFromJson(const json::Value &doc)
{
    Axis axis;
    ASTRA_USER_CHECK(doc.has("path") != doc.has("paths"),
                     "sweep axis: give exactly one of 'path' or "
                     "'paths'");
    if (doc.has("path")) {
        axis.paths.push_back(doc.at("path").asString());
    } else {
        for (const json::Value &p : doc.at("paths").asArray())
            axis.paths.push_back(p.asString());
    }
    ASTRA_USER_CHECK(!axis.paths.empty(), "sweep axis: empty 'paths'");
    for (const std::string &p : axis.paths)
        ASTRA_USER_CHECK(!p.empty(), "sweep axis: empty path");

    ASTRA_USER_CHECK(doc.has("values") != doc.has("range"),
                     "sweep axis '%s': give exactly one of 'values' or "
                     "'range'",
                     axis.pathLabel().c_str());
    if (doc.has("values"))
        axis.values = doc.at("values").asArray();
    else
        axis.values = expandRange(doc.at("range"));
    ASTRA_USER_CHECK(!axis.values.empty(), "sweep axis '%s': no values",
                     axis.pathLabel().c_str());

    if (doc.has("name")) {
        axis.name = doc.at("name").asString();
    } else {
        const std::string &first = axis.paths.front();
        size_t dot = first.rfind('.');
        axis.name =
            dot == std::string::npos ? first : first.substr(dot + 1);
    }

    if (doc.has("labels")) {
        for (const json::Value &l : doc.at("labels").asArray())
            axis.labels.push_back(l.asString());
        ASTRA_USER_CHECK(axis.labels.size() == axis.values.size(),
                         "sweep axis '%s': %zu labels for %zu values",
                         axis.pathLabel().c_str(), axis.labels.size(),
                         axis.values.size());
    }
    return axis;
}

ModelDesc
modelByName(const std::string &name)
{
    std::string key = toLower(name);
    if (key == "dlrm")
        return dlrm();
    if (key == "gpt3" || key == "gpt-3")
        return gpt3();
    if (key == "transformer1t" || key == "transformer-1t")
        return transformer1T();
    if (key == "moe1t" || key == "moe-1t")
        return moe1T();
    fatal("sweep workload: unknown model '%s' (dlrm | gpt3 | "
          "transformer1t | moe1t)",
          name.c_str());
}

} // namespace

Workload
workloadFromSpec(const Topology &topo, const json::Value &w)
{
    std::string kind = toLower(w.getString("kind", "hybrid"));
    int iterations = static_cast<int>(w.getInt("iterations", 1));

    if (kind == "collective") {
        ASTRA_USER_CHECK(w.has("bytes"),
                         "sweep workload: collective needs 'bytes'");
        CollectiveType type =
            parseCollectiveType(w.getString("collective", "all-reduce"));
        return buildSingleCollective(topo, type,
                                     w.at("bytes").asNumber());
    }

    if (kind == "hybrid") {
        ASTRA_USER_CHECK(w.has("model"),
                         "sweep workload: hybrid needs 'model'");
        HybridOptions opts;
        opts.mp = static_cast<int>(w.getInt("mp", 1));
        opts.iterations = iterations;
        opts.simLayers = static_cast<int>(w.getInt("sim_layers", 0));
        return buildHybridTransformer(
            topo, modelByName(w.at("model").asString()), opts);
    }

    if (kind == "dlrm") {
        DlrmOptions opts;
        opts.iterations = iterations;
        ModelDesc model = w.has("model")
                              ? modelByName(w.at("model").asString())
                              : dlrm();
        return buildDlrm(topo, model, opts);
    }

    if (kind == "pipeline") {
        ASTRA_USER_CHECK(w.has("model"),
                         "sweep workload: pipeline needs 'model'");
        PipelineOptions opts;
        opts.microbatches =
            static_cast<int>(w.getInt("microbatches", 8));
        opts.iterations = iterations;
        return buildPipelineParallel(
            topo, modelByName(w.at("model").asString()), opts);
    }

    if (kind == "moe") {
        MoEOptions opts;
        opts.iterations = iterations;
        opts.simLayers = static_cast<int>(w.getInt("sim_layers", 0));
        std::string path = toLower(w.getString("param_path", "network"));
        if (path == "network")
            opts.path = ParamPath::NetworkCollectives;
        else if (path == "fused")
            opts.path = ParamPath::FusedInSwitch;
        else
            fatal("sweep workload: unknown param_path '%s' (network | "
                  "fused)",
                  path.c_str());
        ModelDesc model = w.has("model")
                              ? modelByName(w.at("model").asString())
                              : moe1T();
        return buildMoEDisaggregated(topo, model, opts);
    }

    fatal("sweep workload: unknown kind '%s' (hybrid | dlrm | pipeline "
          "| moe | collective)",
          kind.c_str());
}

Topology
topologyFromSpec(const json::Value &v)
{
    if (v.isString()) {
        const std::string &s = v.asString();
        // Notation always carries parenthesized factors; anything else
        // is a preset name ("conv4d", "dgxa100", ...).
        if (s.find('(') != std::string::npos)
            return parseTopology(s);
        return presets::byName(s);
    }
    ASTRA_USER_CHECK(v.isObject(),
                     "sweep config: 'topology' must be a preset name, "
                     "notation string, or {\"dims\": [...]} object");
    return topologyFromJson(v);
}

std::string
Axis::pathLabel() const
{
    std::string out;
    for (const std::string &p : paths) {
        if (!out.empty())
            out += '+';
        out += p;
    }
    return out;
}

std::string
Axis::valueString(size_t i) const
{
    ASTRA_ASSERT(i < values.size(), "axis value index out of range");
    if (!labels.empty())
        return labels[i];
    const json::Value &v = values[i];
    if (v.isString())
        return v.asString();
    return v.dump();
}

SweepSpec
SweepSpec::fromJson(const json::Value &doc)
{
    SweepSpec spec;
    spec.name_ = doc.getString("name", "sweep");

    std::string mode = toLower(doc.getString("mode", "cartesian"));
    if (mode == "cartesian")
        spec.mode_ = GridMode::Cartesian;
    else if (mode == "zip")
        spec.mode_ = GridMode::Zip;
    else
        fatal("sweep spec: unknown mode '%s' (cartesian | zip)",
              mode.c_str());

    ASTRA_USER_CHECK(doc.has("base"),
                     "sweep spec: missing required key 'base'");
    ASTRA_USER_CHECK(doc.at("base").isObject(),
                     "sweep spec: 'base' must be an object");
    spec.base_ = doc.at("base").clone();

    ASTRA_USER_CHECK(doc.has("axes") || doc.has("seeds"),
                     "sweep spec: missing required key 'axes'");
    if (doc.has("axes")) {
        for (const json::Value &a : doc.at("axes").asArray())
            spec.axes_.push_back(axisFromJson(a));
    }

    // `seeds: N` is shorthand for a trailing `fault.seed` axis with
    // values 1..N — every grid point is replicated under N independent
    // failure realizations, and studies report mean/p95 metrics over
    // that axis (docs/sweep.md). Trailing so it varies fastest in
    // cartesian mode: replications of one grid point stay adjacent.
    if (doc.has("seeds")) {
        int64_t n = doc.at("seeds").asInt();
        ASTRA_USER_CHECK(n >= 1,
                         "sweep spec: 'seeds' must be >= 1, got %lld",
                         static_cast<long long>(n));
        Axis axis;
        axis.paths = {"fault.seed"};
        axis.name = "seed";
        for (int64_t i = 1; i <= n; ++i)
            axis.values.push_back(json::Value(i));
        spec.axes_.push_back(std::move(axis));
    }
    ASTRA_USER_CHECK(!spec.axes_.empty(), "sweep spec: no axes");

    if (spec.mode_ == GridMode::Zip) {
        size_t len = spec.axes_.front().values.size();
        for (const Axis &axis : spec.axes_)
            ASTRA_USER_CHECK(axis.values.size() == len,
                             "sweep spec: zip mode needs equal-length "
                             "axes ('%s' has %zu values, expected %zu)",
                             axis.pathLabel().c_str(),
                             axis.values.size(), len);
    }
    return spec;
}

SweepSpec
SweepSpec::fromFile(const std::string &path)
{
    return fromJson(json::parseFile(path));
}

size_t
SweepSpec::configCount() const
{
    if (mode_ == GridMode::Zip)
        return axes_.front().values.size();
    size_t n = 1;
    for (const Axis &axis : axes_)
        n *= axis.values.size();
    return n;
}

std::vector<std::string>
SweepSpec::axisNames() const
{
    std::vector<std::string> names;
    names.reserve(axes_.size());
    for (const Axis &axis : axes_)
        names.push_back(axis.name);
    return names;
}

SweepConfig
SweepSpec::config(size_t index) const
{
    ASTRA_USER_CHECK(index < configCount(),
                     "sweep config index %zu out of range (%zu configs)",
                     index, configCount());

    // Per-axis value indices: lockstep for zip; mixed-radix with the
    // first axis slowest for cartesian (so the expansion order reads
    // like nested loops in axis order).
    std::vector<size_t> pick(axes_.size(), index);
    if (mode_ == GridMode::Cartesian) {
        size_t rest = 1;
        for (const Axis &axis : axes_)
            rest *= axis.values.size();
        size_t rem = index;
        for (size_t a = 0; a < axes_.size(); ++a) {
            rest /= axes_[a].values.size();
            pick[a] = rem / rest;
            rem %= rest;
        }
    }

    SweepConfig cfg;
    cfg.index = index;
    cfg.doc = base_.clone();
    for (size_t a = 0; a < axes_.size(); ++a) {
        const Axis &axis = axes_[a];
        for (const std::string &path : axis.paths)
            applyOverride(cfg.doc, path, axis.values[pick[a]]);
        std::string value = axis.valueString(pick[a]);
        if (!cfg.label.empty())
            cfg.label += ' ';
        cfg.label += axis.name + '=' + value;
        cfg.axisValues.push_back(std::move(value));
    }
    cfg.hash = configHash(cfg.doc);
    return cfg;
}

void
applyOverride(json::Value &doc, const std::string &path,
              const json::Value &value)
{
    json::Value *node = &doc;
    size_t start = 0;
    for (;;) {
        size_t dot = path.find('.', start);
        std::string key = path.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        ASTRA_USER_CHECK(!key.empty(),
                         "sweep axis path '%s': empty segment",
                         path.c_str());
        bool numeric = key.find_first_not_of("0123456789") ==
                       std::string::npos;
        json::Value *child;
        if (node->isArray() && numeric) {
            // All-digit segments index existing array elements
            // ("cluster.jobs.0.placement"); arrays are never grown.
            json::Array &arr = node->mutableArray();
            size_t index = static_cast<size_t>(
                std::strtoull(key.c_str(), nullptr, 10));
            ASTRA_USER_CHECK(index < arr.size(),
                             "sweep axis path '%s': index %zu out of "
                             "range (array has %zu elements)",
                             path.c_str(), index, arr.size());
            child = &arr[index];
        } else {
            ASTRA_USER_CHECK(node->isObject() || node->isNull(),
                             "sweep axis path '%s': segment '%s' "
                             "traverses a non-object value",
                             path.c_str(), key.c_str());
            child = &node->mutableObject()[key];
        }
        if (dot == std::string::npos) {
            *child = value.clone();
            return;
        }
        node = child;
        start = dot + 1;
    }
}

uint64_t
configHash(const json::Value &doc)
{
    // FNV-1a over the compact serialization. json::Object keys are
    // ordered (std::map) and numbers print with %.17g, so equal
    // documents always hash equal and any value change reaches the
    // hash.
    std::string text = doc.dump();
    uint64_t h = 14695981039346656037ULL ^ (kSpecSchemaVersion * 31);
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
configHashString(uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

MaterializedConfig
materializeConfig(const json::Value &doc)
{
    // Reject unknown top-level keys with a path-qualified error: a
    // typoed key ("falut", "backund") would otherwise be silently
    // ignored and the run would report healthy default behavior.
    static const char *const kKnownKeys[] = {"topology", "backend",
                                             "system", "workload",
                                             "fault", "trace",
                                             "telemetry"};
    for (const auto &[key, value] : doc.asObject()) {
        (void)value;
        bool known = false;
        for (const char *k : kKnownKeys)
            known = known || key == k;
        ASTRA_USER_CHECK(known,
                         "config: unknown top-level key '%s' "
                         "(topology | backend | system | workload | "
                         "fault | trace | telemetry)",
                         key.c_str());
    }
    ASTRA_USER_CHECK(doc.has("topology"),
                     "sweep config: missing 'topology'");
    Topology topo = topologyFromSpec(doc.at("topology"));

    NetworkBackendKind backend = backendFromJson(doc);
    SimulatorConfig cfg =
        doc.has("system")
            ? simulatorConfigFromJson(doc.at("system"), backend)
            : [&] {
                  SimulatorConfig c;
                  c.backend = backend;
                  return c;
              }();
    if (doc.has("fault"))
        cfg.fault = fault::faultConfigFromJson(doc.at("fault"), "fault");
    if (doc.has("trace"))
        cfg.trace = trace::traceConfigFromJson(doc.at("trace"), "trace");
    if (doc.has("telemetry")) {
        cfg.telemetry = telemetry::telemetryConfigFromJson(
            doc.at("telemetry"), "telemetry");
        // Provenance for the run's manifest: the hash of this very
        // document (the sweep cache identity).
        cfg.telemetry.configHash = configHash(doc);
    }

    ASTRA_USER_CHECK(doc.has("workload"),
                     "sweep config: missing 'workload'");
    Workload wl = workloadFromSpec(topo, doc.at("workload"));
    return MaterializedConfig{std::move(topo), std::move(cfg),
                              std::move(wl)};
}

void
writeSampleSpec(const std::string &path)
{
    json::Object workload;
    workload["kind"] = json::Value("moe");
    workload["model"] = json::Value("moe1t");
    workload["param_path"] = json::Value("fused");

    json::Object remote;
    remote["kind"] = json::Value("pooled");

    json::Object system;
    system["peak_tflops"] = json::Value(2048.0);
    system["local_memory"] = [] {
        json::Object local;
        local["bandwidth_gbps"] = json::Value(4096.0);
        return json::Value(std::move(local));
    }();
    system["remote_memory"] = json::Value(std::move(remote));

    json::Object base;
    base["topology"] =
        json::Value("Switch(16,300,300)_Switch(16,25,700)");
    base["backend"] = json::Value("analytical");
    base["system"] = json::Value(std::move(system));
    base["workload"] = json::Value(std::move(workload));

    json::Array axes;
    axes.push_back([] {
        json::Object axis;
        axis["path"] = json::Value(
            "system.remote_memory.in_node_fabric_bw_gbps");
        axis["name"] = json::Value("fabric_bw");
        axis["values"] = json::Value(json::Array{
            json::Value(256.0), json::Value(512.0), json::Value(1024.0)});
        return json::Value(std::move(axis));
    }());
    axes.push_back([] {
        json::Object axis;
        axis["path"] = json::Value(
            "system.remote_memory.remote_group_bw_gbps");
        axis["name"] = json::Value("group_bw");
        axis["range"] = [] {
            json::Object range;
            range["from"] = json::Value(100.0);
            range["to"] = json::Value(500.0);
            range["step"] = json::Value(200.0);
            return json::Value(std::move(range));
        }();
        return json::Value(std::move(axis));
    }());

    json::Object doc;
    doc["name"] = json::Value("hiermem-sample");
    doc["mode"] = json::Value("cartesian");
    doc["base"] = json::Value(std::move(base));
    doc["axes"] = json::Value(std::move(axes));
    json::writeFile(path, json::Value(std::move(doc)));
}

} // namespace sweep
} // namespace astra
