/**
 * @file
 * Sweep auto-diffing: trace the argmin and argmax configurations of a
 * finished sweep and explain their runtime difference span-by-span
 * (docs/sweep.md, docs/trace.md "Analysis").
 *
 * The sweep table says *which* grid point is fastest; the trace diff
 * says *why* — which span population (a collective phase on one
 * dimension, a compute kernel, message transport) absorbed the
 * difference. Both extreme configurations are re-run with full
 * in-memory tracing (results are deterministic, so the re-run
 * reproduces the tabled numbers exactly) and their span timelines are
 * aligned by the stable taxonomy and diffed.
 */
#ifndef ASTRA_SWEEP_AUTO_DIFF_H_
#define ASTRA_SWEEP_AUTO_DIFF_H_

#include <string>

#include "sweep/result_store.h"
#include "trace/analysis/diff.h"

namespace astra {
namespace sweep {

/** Outcome of autoDiffExtremes. A = argmin row, B = argmax row. */
struct AutoDiffResult
{
    size_t indexMin = 0;  //!< config index of the metric's argmin.
    size_t indexMax = 0;
    std::string labelMin; //!< axis-value summary of that grid point.
    std::string labelMax;
    trace::analysis::TraceDiff diff; //!< argmin -> argmax span deltas.
};

/**
 * Re-run the argmin and argmax configurations of `metric` with full
 * in-memory tracing and diff their traces. fatal() if the extremes
 * are cluster documents (per-job timelines diff individually; the
 * aggregate has no single trace), or if no row succeeded.
 */
AutoDiffResult autoDiffExtremes(const SweepSpec &spec,
                                const ResultStore &store, Metric metric);

/**
 * Same re-run-with-tracing diff for an arbitrary row pair (the
 * `--diff-rows I J` CLI path): A = row_a, B = row_b. fatal() if
 * either index is out of range or the row failed. Rows are store
 * indices (== config indices when the store came from fromBatch).
 */
AutoDiffResult autoDiffRows(const SweepSpec &spec,
                            const ResultStore &store, size_t row_a,
                            size_t row_b);

} // namespace sweep
} // namespace astra

#endif // ASTRA_SWEEP_AUTO_DIFF_H_
