/**
 * @file
 * Resilience studies: checkpoint-interval auto-tuning and seeded
 * failure-realization replication over cluster scenarios
 * (docs/fault.md "Checkpoint auto-tuning", docs/sweep.md).
 *
 * The tuner searches the checkpoint interval of a *cluster* config
 * document (cluster.checkpoint.interval_ns) for maximum simulated
 * goodput. It seeds the search at the Young/Daly closed form
 * sqrt(2 * C * MTBF) — C the checkpoint cost, MTBF the job's
 * effective mean time between failures combining the per-NPU stream
 * and every declared failure domain — probes a geometric ladder
 * {yd/4, yd/2, yd, 2*yd, 4*yd} around it, then golden-section refines
 * in log-interval space inside the bracket around the best probe.
 * The returned interval is the argmax over *every* evaluation, so it
 * can never lose to a fixed-interval grid drawn from the same ladder.
 * Everything is deterministic: the evaluations are ordinary
 * simulations and the search order is fixed.
 *
 * A resilience study wraps the tuner and the `seeds: N` replication
 * shorthand (sweep/spec.h) into one runner: optionally tune the
 * interval, then run every placement-policy variant under N failure
 * realizations and report mean/p95 goodput, availability, blast
 * radius, recovery percentiles, and spare utilization per variant.
 */
#ifndef ASTRA_SWEEP_RESILIENCE_H_
#define ASTRA_SWEEP_RESILIENCE_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"
#include "sweep/result_store.h"

namespace astra {
namespace sweep {

/** One checkpoint-interval evaluation (in search order). */
struct IntervalProbe
{
    TimeNs intervalNs = 0.0;
    double goodput = 0.0;
};

/** Outcome of tuneCheckpointInterval. */
struct CheckpointTuning
{
    TimeNs youngDalyNs = 0.0; //!< closed-form seed interval.
    TimeNs intervalNs = 0.0;  //!< best interval found (argmax probe).
    double goodput = 0.0;     //!< aggregate goodput at intervalNs.
    std::vector<IntervalProbe> probes; //!< every evaluation made.
};

json::Value tuningToJson(const CheckpointTuning &t);

/**
 * Young/Daly seed interval for a cluster config document: C is
 * cluster.checkpoint.cost_ns, and the failure rate is the largest
 * job's size over fault.npu_mtbf_ns plus one 1/MTBF term per declared
 * failure domain (a job may intersect any of them; the cluster
 * layer's per-placement resolution in resolveAutoInterval is the
 * exact counterpart). fatal() unless the document carries a
 * checkpoint cost and at least one MTBF-based generation stream.
 */
TimeNs youngDalySeed(const json::Value &clusterDoc);

/**
 * Tune cluster.checkpoint.interval_ns of `clusterDoc` for maximum
 * aggregate goodput; see file comment. `refineEvals` is the number of
 * golden-section evaluations after the 5-probe ladder (>= 0).
 */
CheckpointTuning tuneCheckpointInterval(const json::Value &clusterDoc,
                                        int refineEvals = 6);

/**
 * Run a resilience study document:
 * ```json
 * {
 *   "name": "rack-resilience",
 *   "config": { ... },            // full cluster config document
 *   "seeds": 4,                   // failure realizations per variant
 *   "tune_checkpoint": true,      // run the interval tuner first
 *   "placements": ["contiguous", "avoid_degraded"]  // optional axis
 * }
 * ```
 * Returns a JSON report: the tuning result (when requested), one
 * summary block per placement variant (mean/p95 goodput, mean
 * availability / blast radius / recovery percentiles / spare
 * utilization over the seed axis), and the full per-run result table.
 * `threads` parallelizes the underlying sweep batch (<= 0 = all).
 */
json::Value runResilienceStudy(const json::Value &studyDoc,
                               int threads = 1);

/** Write a commented-by-example study document (CLI scaffolding). */
void writeSampleResilienceStudy(const std::string &path);

} // namespace sweep
} // namespace astra

#endif // ASTRA_SWEEP_RESILIENCE_H_
