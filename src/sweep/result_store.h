/**
 * @file
 * Tidy tabulation of sweep results with strategy-search queries.
 *
 * A ResultStore holds one row per sweep configuration — axis values as
 * leading columns, the paper's five-way runtime breakdown (compute /
 * exposed comm / exposed local mem / exposed remote mem / idle) plus
 * totals as metric columns — and renders them as CSV or JSON for
 * downstream analysis. min/max/argmin/argmax over any metric answer
 * the design-space questions the paper's sweeps exist for ("which
 * bandwidth provision minimizes iteration time?").
 *
 * Determinism: serialization covers only simulated quantities (host
 * wall-clock and cache provenance are excluded), so the same spec
 * renders byte-identical tables regardless of thread count or cache
 * state. Failed configurations keep their row (status column) but are
 * skipped by the queries.
 */
#ifndef ASTRA_SWEEP_RESULT_STORE_H_
#define ASTRA_SWEEP_RESULT_STORE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/runner.h"

namespace astra {
namespace sweep {

/** Metric columns exposed to queries. */
enum class Metric {
    TotalTime,        //!< simulated end-to-end time (ns).
    Compute,          //!< mean compute time (ns).
    ExposedComm,      //!< mean exposed communication time (ns).
    ExposedLocalMem,  //!< mean exposed local-memory time (ns).
    ExposedRemoteMem, //!< mean exposed remote-memory time (ns).
    Idle,             //!< mean idle time (ns).
    Events,           //!< DES events executed.
    Messages,         //!< network messages simulated.
    MaxLinkUtil,      //!< busiest-link busy fraction [0, 1].
    QueueingDelay,    //!< mean admission-queue wait (ns; cluster runs).
    InterferenceSlowdown, //!< mean co-tenancy slowdown (cluster runs).
    LostWork,         //!< re-executed work after failures (ns).
    RecoveryTime,     //!< failure-to-restart downtime (ns).
    NumFaults,        //!< fault events fired during the run.
    Goodput,          //!< useful-work fraction under faults [0, 1].
    /** Trace-analysis critical-path length (ns); 0 unless the sweep
     *  ran with `trace.analysis` enabled (docs/trace.md). */
    CriticalPath,
    /** Failure-domain resilience metrics (docs/fault.md "Failure
     *  domains & placement policies"); 0 on fault-free rows. */
    Availability,     //!< 1 - recovery/duration, mean over jobs.
    BlastRadius,      //!< mean jobs disrupted per fail incident.
    SpareUtilization, //!< busy fraction of the reserved spare pool.
};

/** Column name of a metric (matches the CSV/JSON headers). */
const char *metricName(Metric m);

/** See file comment. */
class ResultStore
{
  public:
    ResultStore(std::string sweep_name,
                std::vector<std::string> axis_names);

    /** Convenience: tabulate a whole batch outcome. */
    static ResultStore fromBatch(const SweepSpec &spec,
                                 const BatchOutcome &outcome);

    /** Move overload: steals the outcome's rows (config documents and
     *  per-NPU report arrays are heavy; callers done with the outcome
     *  should not pay for a deep copy of every row). */
    static ResultStore fromBatch(const SweepSpec &spec,
                                 BatchOutcome &&outcome);

    /** Append a result row (rows keep insertion order; fromBatch
     *  inserts in config-index order). Pass an rvalue to move. */
    void add(SweepResult result);

    size_t rows() const { return rows_.size(); }
    const SweepResult &row(size_t i) const;

    /** Metric value of row `i`; fatal() if the row failed. */
    double value(size_t i, Metric m) const;

    /** Row index minimizing / maximizing a metric (failed rows are
     *  skipped); fatal() if no row succeeded. */
    size_t argmin(Metric m) const;
    size_t argmax(Metric m) const;

    double min(Metric m) const { return value(argmin(m), m); }
    double max(Metric m) const { return value(argmax(m), m); }

    /** Mean of a metric over successful rows; fatal() if none
     *  succeeded. Resilience studies report mean goodput over the
     *  `fault.seed` axis (docs/sweep.md). */
    double mean(Metric m) const;

    /** Nearest-rank percentile (p in [0, 1]) of a metric over
     *  successful rows; fatal() if none succeeded. p95 goodput over
     *  failure realizations is the resilience studies' tail metric. */
    double percentile(Metric m, double p) const;

    /** Render the tidy table; see file comment for the column set. */
    std::string toCsv() const;
    json::Value toJson() const;

    void writeCsv(const std::string &path) const;
    void writeJson(const std::string &path) const;

  private:
    std::string sweepName_;
    std::vector<std::string> axisNames_;
    std::vector<SweepResult> rows_;
};

} // namespace sweep
} // namespace astra

#endif // ASTRA_SWEEP_RESULT_STORE_H_
