#include "sweep/resilience.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/config.h"
#include "common/logging.h"
#include "fault/fault.h"
#include "sweep/runner.h"

namespace astra {
namespace sweep {

namespace {

/** Goodput of `clusterDoc` with the cluster-wide default checkpoint
 *  interval overridden to `interval`. One full simulation. */
double
goodputAtInterval(const json::Value &clusterDoc, TimeNs interval)
{
    json::Value doc = clusterDoc.clone();
    applyOverride(doc, "cluster.checkpoint.interval_ns",
                  json::Value(interval));
    return runConfig(doc).goodput;
}

} // namespace

json::Value
tuningToJson(const CheckpointTuning &t)
{
    json::Object o;
    o["young_daly_ns"] = json::Value(t.youngDalyNs);
    o["interval_ns"] = json::Value(t.intervalNs);
    o["goodput"] = json::Value(t.goodput);
    json::Array probes;
    probes.reserve(t.probes.size());
    for (const IntervalProbe &p : t.probes) {
        json::Object row;
        row["interval_ns"] = json::Value(p.intervalNs);
        row["goodput"] = json::Value(p.goodput);
        probes.push_back(json::Value(std::move(row)));
    }
    o["probes"] = json::Value(std::move(probes));
    return json::Value(std::move(o));
}

TimeNs
youngDalySeed(const json::Value &clusterDoc)
{
    ASTRA_USER_CHECK(cluster::isClusterDoc(clusterDoc),
                     "resilience tuner: not a cluster config document "
                     "(missing 'cluster')");
    cluster::ClusterScenario sc =
        cluster::scenarioFromJson(clusterDoc);
    ASTRA_USER_CHECK(sc.cfg.fault.has_value(),
                     "resilience tuner: config has no 'fault' scenario");
    const fault::FaultConfig &fc = *sc.cfg.fault;
    TimeNs cost = sc.cfg.defaultCheckpoint.costNs;
    ASTRA_USER_CHECK(cost > 0.0,
                     "resilience tuner: cluster.checkpoint.cost_ns "
                     "must be > 0");

    int largest = 0;
    for (const cluster::JobSpec &j : sc.jobs) {
        int size = j.size > 0 ? j.size
                              : static_cast<int>(j.explicitNpus.size());
        largest = std::max(largest, size);
    }

    // Effective failure rate of the largest job: its own NPUs'
    // fail-stop streams, plus every declared domain's stream (before
    // placement is known, any domain may intersect it — the cluster
    // layer's resolveAutoInterval is the per-placement counterpart).
    double rate = 0.0;
    if (fc.npuMtbfNs > 0.0)
        rate += double(largest) / fc.npuMtbfNs;
    for (const fault::FailureDomain &d :
         fault::resolveDomains(fc, sc.topo)) {
        TimeNs mtbf = d.mtbfNs > 0.0 ? d.mtbfNs : fc.domainMtbfNs;
        if (mtbf > 0.0)
            rate += 1.0 / mtbf;
    }
    ASTRA_USER_CHECK(rate > 0.0,
                     "resilience tuner: needs MTBF-based fault "
                     "generation (fault.npu_mtbf_ns or fault.domains "
                     "with domain_mtbf_ns)");
    return fault::youngDalyInterval(cost, 1.0 / rate);
}

CheckpointTuning
tuneCheckpointInterval(const json::Value &clusterDoc, int refineEvals)
{
    ASTRA_USER_CHECK(refineEvals >= 0,
                     "resilience tuner: refineEvals must be >= 0");
    CheckpointTuning t;
    t.youngDalyNs = youngDalySeed(clusterDoc);

    auto eval = [&](TimeNs interval) {
        double g = goodputAtInterval(clusterDoc, interval);
        t.probes.push_back({interval, g});
        debugT("sweep", "tuner probe interval=%.0f ns goodput=%.4f",
               interval, g);
        return g;
    };

    // Geometric ladder around the Young/Daly seed. bench.sh's fixed-
    // interval comparison grid is drawn from these exact multiples,
    // so "tuned >= best grid point" holds by construction.
    static const double kLadder[] = {0.25, 0.5, 1.0, 2.0, 4.0};
    size_t best = 0;
    for (size_t i = 0; i < 5; ++i) {
        eval(t.youngDalyNs * kLadder[i]);
        if (t.probes[i].goodput > t.probes[best].goodput)
            best = i;
    }

    // Golden-section refinement in log-interval space, bracketed by
    // the ladder neighbors of the best probe. Fixed evaluation count
    // keeps the search deterministic.
    double a = std::log(t.probes[best].intervalNs * 0.5);
    double b = std::log(t.probes[best].intervalNs * 2.0);
    const double invphi = (std::sqrt(5.0) - 1.0) / 2.0;
    double c = b - (b - a) * invphi;
    double d = a + (b - a) * invphi;
    double fc = 0.0, fd = 0.0;
    int evals = 0;
    if (refineEvals > 0) {
        fc = eval(std::exp(c));
        ++evals;
    }
    if (refineEvals > 1) {
        fd = eval(std::exp(d));
        ++evals;
    }
    while (evals < refineEvals) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * invphi;
            fc = eval(std::exp(c));
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * invphi;
            fd = eval(std::exp(d));
        }
        ++evals;
    }

    size_t arg = 0;
    for (size_t i = 1; i < t.probes.size(); ++i) {
        if (t.probes[i].goodput > t.probes[arg].goodput)
            arg = i;
    }
    t.intervalNs = t.probes[arg].intervalNs;
    t.goodput = t.probes[arg].goodput;
    return t;
}

json::Value
runResilienceStudy(const json::Value &studyDoc, int threads)
{
    if (studyDoc.isObject()) {
        for (const auto &[key, value] : studyDoc.asObject()) {
            (void)value;
            bool known = false;
            for (const char *a : {"name", "config", "seeds",
                                  "tune_checkpoint", "placements"})
                known = known || key == a;
            ASTRA_USER_CHECK(known,
                             "resilience study: unknown key '%s'",
                             key.c_str());
        }
    }
    std::string name = studyDoc.getString("name", "resilience_study");
    ASTRA_USER_CHECK(studyDoc.has("config"),
                     "resilience study: missing 'config'");
    json::Value base = studyDoc.at("config").clone();
    ASTRA_USER_CHECK(cluster::isClusterDoc(base),
                     "resilience study: 'config' must be a cluster "
                     "document (has 'cluster')");
    int64_t seeds = studyDoc.getInt("seeds", 1);
    ASTRA_USER_CHECK(seeds >= 1,
                     "resilience study: 'seeds' must be >= 1, got %lld",
                     static_cast<long long>(seeds));
    std::vector<std::string> placements;
    if (studyDoc.has("placements")) {
        for (const json::Value &p : studyDoc.at("placements").asArray())
            placements.push_back(p.asString());
        ASTRA_USER_CHECK(!placements.empty(),
                         "resilience study: empty 'placements'");
    }

    json::Object out;
    out["study"] = json::Value(name);
    out["seeds"] = json::Value(seeds);

    if (studyDoc.getBool("tune_checkpoint", false)) {
        CheckpointTuning tuning = tuneCheckpointInterval(base);
        applyOverride(base, "cluster.checkpoint.interval_ns",
                      json::Value(tuning.intervalNs));
        out["tuning"] = tuningToJson(tuning);
    }

    // One sweep: optional placement axis (slowest) x fault.seed axis
    // (fastest, via the `seeds` shorthand), so each variant's seed
    // replications are a contiguous row block.
    json::Object spec_doc;
    spec_doc["name"] = json::Value(name);
    spec_doc["base"] = base;
    if (!placements.empty()) {
        json::Object axis;
        axis["path"] = json::Value("cluster.placement");
        axis["name"] = json::Value("placement");
        json::Array values;
        for (const std::string &p : placements)
            values.push_back(json::Value(p));
        axis["values"] = json::Value(std::move(values));
        json::Array axes;
        axes.push_back(json::Value(std::move(axis)));
        spec_doc["axes"] = json::Value(std::move(axes));
    }
    spec_doc["seeds"] = json::Value(seeds);
    SweepSpec spec = SweepSpec::fromJson(json::Value(std::move(spec_doc)));

    BatchOptions opts;
    opts.threads = threads;
    ResultStore store =
        ResultStore::fromBatch(spec, runBatch(spec, opts));

    size_t variants = placements.empty() ? 1 : placements.size();
    size_t per = store.rows() / variants;
    json::Array blocks;
    for (size_t v = 0; v < variants; ++v) {
        ResultStore group(spec.name(), spec.axisNames());
        size_t failures = 0;
        double recovery_p95_sum = 0.0;
        size_t recovery_p95_n = 0;
        for (size_t i = 0; i < per; ++i) {
            const SweepResult &r = store.row(v * per + i);
            group.add(r);
            if (r.failed) {
                ++failures;
            } else if (r.report.recoveryP95Ns > 0.0) {
                recovery_p95_sum += r.report.recoveryP95Ns;
                ++recovery_p95_n;
            }
        }
        std::string label = placements.empty()
                                ? std::string("default")
                                : placements[v];
        ASTRA_USER_CHECK(failures < per,
                         "resilience study: every seed failed for "
                         "variant '%s': %s",
                         label.c_str(),
                         store.row(v * per).error.c_str());
        json::Object block;
        block["placement"] = json::Value(label);
        block["failures"] =
            json::Value(static_cast<uint64_t>(failures));
        block["mean_goodput"] = json::Value(group.mean(Metric::Goodput));
        block["p95_goodput"] =
            json::Value(group.percentile(Metric::Goodput, 0.95));
        block["mean_availability"] =
            json::Value(group.mean(Metric::Availability));
        block["mean_blast_radius"] =
            json::Value(group.mean(Metric::BlastRadius));
        block["mean_spare_utilization"] =
            json::Value(group.mean(Metric::SpareUtilization));
        block["mean_total_ns"] =
            json::Value(group.mean(Metric::TotalTime));
        if (recovery_p95_n > 0)
            block["mean_recovery_p95_ns"] = json::Value(
                recovery_p95_sum / double(recovery_p95_n));
        blocks.push_back(json::Value(std::move(block)));
    }
    out["variants"] = json::Value(std::move(blocks));
    out["results"] = store.toJson();
    return json::Value(std::move(out));
}

void
writeSampleResilienceStudy(const std::string &path)
{
    json::Value doc = json::parse(R"json({
      "name": "rack-resilience",
      "seeds": 4,
      "tune_checkpoint": true,
      "placements": ["contiguous", "avoid_degraded"],
      "config": {
        "topology": "Ring(4,100)_Switch(2,50)",
        "backend": "flow",
        "fault": {
          "seed": 1,
          "horizon_ns": 2000000,
          "domains": [{"name": "rack", "level": 1}],
          "domain_mtbf_ns": 500000,
          "domain_mttr_ns": 50000
        },
        "cluster": {
          "admission": "backfill",
          "checkpoint": {"interval_ns": "auto", "cost_ns": 2000,
                         "restart_delay_ns": 10000,
                         "restart": "migrate"},
          "jobs": [
            {"name": "train", "arrival_ns": 0, "size": 4, "count": 3,
             "estimated_duration_ns": 200000,
             "workload": {"kind": "collective",
                          "collective": "all-reduce",
                          "bytes": 16777216}}
          ]
        }
      }
    })json");
    json::writeFile(path, doc);
}

} // namespace sweep
} // namespace astra
