/**
 * @file
 * Declarative design-space sweep specification.
 *
 * Every headline result in the paper is a sweep (the Fig. 9
 * scheduling-policy grid, the Table V hierarchical-memory scan, the
 * Fig. 11 disaggregated-system comparison), so sweeps are a
 * first-class input format: a SweepSpec names a *base* configuration
 * (topology + network backend + system config + workload) and a set of
 * *axes*, each a JSON path into the base document plus the values to
 * substitute there. Expanding the spec yields one self-contained
 * configuration document per grid point; src/sweep/runner.h executes
 * them in parallel and src/sweep/result_store.h tabulates the Reports.
 *
 * Spec schema (JSON, via common/json):
 * ```json
 * {
 *   "name": "hiermem-sweep",
 *   "mode": "cartesian" | "zip",   // default cartesian
 *   "base": {
 *     "topology": "conv4d",        // preset name, notation string,
 *                                  // or {"dims": [...]} (config.h)
 *     "backend": "analytical" | "analytical-pure" | "flow" | "packet",
 *     "system": { ... },           // system-config schema (config.h)
 *     "workload": {
 *       "kind": "hybrid" | "dlrm" | "pipeline" | "moe" | "collective",
 *       "model": "dlrm" | "gpt3" | "transformer1t" | "moe1t",
 *       "mp": 16, "iterations": 1, "sim_layers": 0,   // hybrid
 *       "microbatches": 8,                            // pipeline
 *       "param_path": "network" | "fused",            // moe
 *       "collective": "all-reduce", "bytes": 1048576, // collective
 *     }
 *   },
 *   "axes": [
 *     {"path": "system.remote_memory.in_node_fabric_bw_gbps",
 *      "values": [256, 512, 1024]},
 *     {"paths": ["system.remote_memory.in_node_fabric_bw_gbps",
 *                "system.remote_memory.gpu_side_bw_gbps"],
 *      "name": "fabric", "values": [256, 512]},   // one knob, 2 paths
 *     {"path": "system.remote_memory.remote_group_bw_gbps",
 *      "name": "group_bw",
 *      "range": {"from": 100, "to": 500, "step": 100}},
 *     {"path": "workload.param_path",
 *      "values": ["network", "fused"],
 *      "labels": ["baseline", "opt"]}
 *   ],
 *   "seeds": 8   // shorthand for a trailing {"path": "fault.seed",
 *                // "values": [1..8]} axis: N failure realizations
 *                // per grid point (docs/sweep.md)
 * }
 * ```
 *
 * Axis values may be any JSON value (numbers, strings, whole objects —
 * e.g. swapping complete `remote_memory` blocks). `mode` controls
 * expansion: `cartesian` enumerates the full product with the *first*
 * axis varying slowest; `zip` requires equal-length axes and pairs
 * them index-by-index (configuration i takes value i of every axis).
 *
 * Every expanded configuration carries a stable 64-bit FNV-1a hash of
 * its compact-serialized document (json::Object keys are ordered, so
 * serialization — and hence the hash — is deterministic). The hash
 * identifies the configuration in the result cache: any change to any
 * setting reaching the document changes the hash and invalidates the
 * cached result.
 */
#ifndef ASTRA_SWEEP_SPEC_H_
#define ASTRA_SWEEP_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "astra/simulator.h"
#include "common/json.h"
#include "workload/et.h"

namespace astra {
namespace sweep {

/**
 * One sweep dimension: the config path(s) it patches and the values it
 * takes. Most axes patch a single path; an axis may instead list
 * several `paths` that all receive the same value — one provisioning
 * knob driving several model parameters (Table V raises the GPU-side
 * out-node bandwidth together with the in-node fabric), or one
 * placement policy applied to every job of a cluster mix.
 */
struct Axis
{
    /** Dot-separated paths into the base document (>= 1). Segments
     *  that are all digits index into arrays ("cluster.jobs.0"). */
    std::vector<std::string> paths;
    std::string name;   //!< column name (defaults to last path segment).
    std::vector<json::Value> values;
    /** Optional display labels, one per value (useful when values are
     *  whole JSON objects). Empty means "stringify the value". */
    std::vector<std::string> labels;

    /** Display string for value `i` (label if present). */
    std::string valueString(size_t i) const;

    /** Joined path list for diagnostics ("a.b+a.c"). */
    std::string pathLabel() const;
};

/** Grid expansion mode. */
enum class GridMode {
    Cartesian, //!< full product, first axis slowest.
    Zip,       //!< equal-length axes advanced in lockstep.
};

/** One expanded grid point: a self-contained configuration. */
struct SweepConfig
{
    size_t index = 0;       //!< position in the deterministic order.
    std::string label;      //!< "axis=value axis=value ..." summary.
    uint64_t hash = 0;      //!< config-document hash (cache identity).
    json::Value doc;        //!< fully-patched configuration document.
    std::vector<std::string> axisValues; //!< display value per axis.
};

/** Runnable pieces materialized from a configuration document. */
struct MaterializedConfig
{
    Topology topo;
    SimulatorConfig cfg;
    Workload workload;
};

/** See file comment. */
class SweepSpec
{
  public:
    /** Parse and validate a spec document; fatal() on schema errors. */
    static SweepSpec fromJson(const json::Value &doc);

    /** Parse a spec file; fatal() if unreadable or invalid. */
    static SweepSpec fromFile(const std::string &path);

    const std::string &name() const { return name_; }
    GridMode mode() const { return mode_; }
    const std::vector<Axis> &axes() const { return axes_; }
    const json::Value &base() const { return base_; }

    /** Number of configurations the grid expands to. */
    size_t configCount() const;

    /** Expand grid point `index` (0 <= index < configCount()). */
    SweepConfig config(size_t index) const;

    /** Column names, one per axis (for result tables). */
    std::vector<std::string> axisNames() const;

  private:
    std::string name_ = "sweep";
    GridMode mode_ = GridMode::Cartesian;
    json::Value base_;
    std::vector<Axis> axes_;
};

/**
 * Overlay `value` at dot-separated `path` inside `doc` (creating
 * intermediate objects as needed); fatal() if a path segment collides
 * with a non-object value. An all-digits segment indexes into an
 * existing array ("cluster.jobs.0.placement"); out-of-range indices
 * are a user error (arrays are never grown implicitly).
 */
void applyOverride(json::Value &doc, const std::string &path,
                   const json::Value &value);

/** Stable 64-bit FNV-1a hash of a configuration document (includes a
 *  schema-version salt so a materialization change invalidates old
 *  cache files). */
uint64_t configHash(const json::Value &doc);

/** Canonical 16-digit hex rendering of a config hash — the one format
 *  shared by cache-file keys and the result tables' `config` column,
 *  so rows can be cross-referenced against cache entries. */
std::string configHashString(uint64_t hash);

/**
 * Version of the configuration semantics baked into config hashes and
 * cache files. BUMP THIS whenever a change alters what a configuration
 * document *means* or the results it produces — materialization
 * changes, collective/timing model fixes — so persisted caches from
 * older builds are orphaned instead of silently serving stale Reports.
 */
constexpr uint64_t kSpecSchemaVersion = 5; //!< 5: failure domains,
                                           //!< fault-aware placement,
                                           //!< domain-metric columns.

/**
 * Turn a configuration document into runnable pieces: topology,
 * simulator config, and the workload trace built against that
 * topology. fatal() on invalid configuration.
 */
MaterializedConfig materializeConfig(const json::Value &doc);

/** A topology from a preset name, notation string, or {"dims": [...]}
 *  document (the `topology` value of sweep and cluster configs). */
Topology topologyFromSpec(const json::Value &v);

/** Build a workload from the sweep workload schema (see file
 *  comment) against `topo`. Shared with cluster job specs, whose
 *  workloads are built against the job's sliced topology. */
Workload workloadFromSpec(const Topology &topo, const json::Value &w);

/** Write a commented-by-example sweep spec (CLI scaffolding). */
void writeSampleSpec(const std::string &path);

} // namespace sweep
} // namespace astra

#endif // ASTRA_SWEEP_SPEC_H_
