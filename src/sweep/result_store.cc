#include "sweep/result_store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/table.h"

namespace astra {
namespace sweep {

namespace {

std::string
formatNs(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

const char *
metricName(Metric m)
{
    switch (m) {
      case Metric::TotalTime:        return "total_ns";
      case Metric::Compute:          return "compute_ns";
      case Metric::ExposedComm:      return "exposed_comm_ns";
      case Metric::ExposedLocalMem:  return "exposed_local_mem_ns";
      case Metric::ExposedRemoteMem: return "exposed_remote_mem_ns";
      case Metric::Idle:             return "idle_ns";
      case Metric::Events:           return "events";
      case Metric::Messages:         return "messages";
      case Metric::MaxLinkUtil:      return "max_link_util";
      case Metric::QueueingDelay:    return "queueing_delay_ns";
      case Metric::InterferenceSlowdown:
        return "interference_slowdown";
      case Metric::LostWork:         return "lost_work_ns";
      case Metric::RecoveryTime:     return "recovery_time_ns";
      case Metric::NumFaults:        return "num_faults";
      case Metric::Goodput:          return "goodput";
      case Metric::CriticalPath:     return "critical_path_ns";
      case Metric::Availability:     return "availability";
      case Metric::BlastRadius:      return "blast_radius";
      case Metric::SpareUtilization: return "spare_utilization";
    }
    return "?";
}

ResultStore::ResultStore(std::string sweep_name,
                         std::vector<std::string> axis_names)
    : sweepName_(std::move(sweep_name)), axisNames_(std::move(axis_names))
{
}

ResultStore
ResultStore::fromBatch(const SweepSpec &spec, const BatchOutcome &outcome)
{
    ResultStore store(spec.name(), spec.axisNames());
    for (const SweepResult &r : outcome.results)
        store.add(r);
    return store;
}

ResultStore
ResultStore::fromBatch(const SweepSpec &spec, BatchOutcome &&outcome)
{
    ResultStore store(spec.name(), spec.axisNames());
    for (SweepResult &r : outcome.results)
        store.add(std::move(r));
    return store;
}

void
ResultStore::add(SweepResult result)
{
    ASTRA_USER_CHECK(result.config.axisValues.size() == axisNames_.size(),
                     "result row has %zu axis values, store expects %zu",
                     result.config.axisValues.size(), axisNames_.size());
    rows_.push_back(std::move(result));
}

const SweepResult &
ResultStore::row(size_t i) const
{
    ASTRA_USER_CHECK(i < rows_.size(), "result row %zu out of range", i);
    return rows_[i];
}

double
ResultStore::value(size_t i, Metric m) const
{
    const SweepResult &r = row(i);
    ASTRA_USER_CHECK(!r.failed, "result row %zu failed: %s", i,
                     r.error.c_str());
    switch (m) {
      case Metric::TotalTime:        return r.report.totalTime;
      case Metric::Compute:          return r.report.average.compute;
      case Metric::ExposedComm:      return r.report.average.exposedComm;
      case Metric::ExposedLocalMem:
        return r.report.average.exposedLocalMem;
      case Metric::ExposedRemoteMem:
        return r.report.average.exposedRemoteMem;
      case Metric::Idle:             return r.report.average.idle;
      case Metric::Events:           return double(r.report.events);
      case Metric::Messages:         return double(r.report.messages);
      case Metric::MaxLinkUtil:
        return r.report.maxLinkUtilization();
      case Metric::QueueingDelay:    return r.report.queueingDelayNs;
      case Metric::InterferenceSlowdown:
        return r.report.interferenceSlowdown;
      case Metric::LostWork:         return r.report.lostWorkNs;
      case Metric::RecoveryTime:     return r.report.recoveryTimeNs;
      case Metric::NumFaults:        return double(r.report.numFaults);
      case Metric::Goodput:          return r.report.goodput;
      case Metric::CriticalPath:     return r.report.criticalPathNs;
      case Metric::Availability:     return r.report.availability;
      case Metric::BlastRadius:      return r.report.blastRadius;
      case Metric::SpareUtilization:
        return r.report.spareUtilization;
    }
    return 0.0;
}

size_t
ResultStore::argmin(Metric m) const
{
    size_t best = rows_.size();
    for (size_t i = 0; i < rows_.size(); ++i) {
        if (rows_[i].failed)
            continue;
        if (best == rows_.size() || value(i, m) < value(best, m))
            best = i;
    }
    ASTRA_USER_CHECK(best < rows_.size(),
                     "argmin over an empty/all-failed result store");
    return best;
}

size_t
ResultStore::argmax(Metric m) const
{
    size_t best = rows_.size();
    for (size_t i = 0; i < rows_.size(); ++i) {
        if (rows_[i].failed)
            continue;
        if (best == rows_.size() || value(i, m) > value(best, m))
            best = i;
    }
    ASTRA_USER_CHECK(best < rows_.size(),
                     "argmax over an empty/all-failed result store");
    return best;
}

double
ResultStore::mean(Metric m) const
{
    double sum = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < rows_.size(); ++i) {
        if (rows_[i].failed)
            continue;
        sum += value(i, m);
        ++n;
    }
    ASTRA_USER_CHECK(n > 0,
                     "mean over an empty/all-failed result store");
    return sum / double(n);
}

double
ResultStore::percentile(Metric m, double p) const
{
    ASTRA_USER_CHECK(p >= 0.0 && p <= 1.0,
                     "percentile: p must be in [0, 1], got %g", p);
    std::vector<double> values;
    for (size_t i = 0; i < rows_.size(); ++i) {
        if (!rows_[i].failed)
            values.push_back(value(i, m));
    }
    ASTRA_USER_CHECK(!values.empty(),
                     "percentile over an empty/all-failed result store");
    std::sort(values.begin(), values.end());
    // Nearest-rank: smallest value with cumulative frequency >= p.
    size_t rank = static_cast<size_t>(
        std::ceil(p * double(values.size())));
    return values[rank > 0 ? rank - 1 : 0];
}

std::string
ResultStore::toCsv() const
{
    std::string out = "index,label,config";
    for (const std::string &name : axisNames_)
        out += ',' + csvField(name);
    out += ",total_ns,compute_ns,exposed_comm_ns,exposed_local_mem_ns,"
           "exposed_remote_mem_ns,idle_ns,events,messages,"
           "max_link_util,queueing_delay_ns,interference_slowdown,"
           "lost_work_ns,recovery_time_ns,num_faults,goodput,"
           "critical_path_ns,availability,blast_radius,"
           "spare_utilization,peak_footprint_bytes,bytes_per_flow,"
           "manifest,status\n";

    char buf[64];
    for (const SweepResult &r : rows_) {
        std::snprintf(buf, sizeof(buf), "%zu", r.config.index);
        out += buf;
        out += ',' + csvField(r.config.label);
        out += ',' + configHashString(r.config.hash);
        for (const std::string &v : r.config.axisValues)
            out += ',' + csvField(v);
        if (r.failed) {
            // Twenty-two empty metric fields, then the status field —
            // same arity as the ok branch so header-keyed parsers
            // align.
            out += ",,,,,,,,,,,,,,,,,,,,,,,";
            out += csvField("failed: " + r.error);
        } else {
            const RuntimeBreakdown &b = r.report.average;
            out += ',' + formatNs(r.report.totalTime);
            out += ',' + formatNs(b.compute);
            out += ',' + formatNs(b.exposedComm);
            out += ',' + formatNs(b.exposedLocalMem);
            out += ',' + formatNs(b.exposedRemoteMem);
            out += ',' + formatNs(b.idle);
            std::snprintf(buf, sizeof(buf), ",%llu,%llu,%.6f",
                          static_cast<unsigned long long>(r.report.events),
                          static_cast<unsigned long long>(
                              r.report.messages),
                          r.report.maxLinkUtilization());
            out += buf;
            out += ',' + formatNs(r.report.queueingDelayNs);
            std::snprintf(buf, sizeof(buf), ",%.6f",
                          r.report.interferenceSlowdown);
            out += buf;
            out += ',' + formatNs(r.report.lostWorkNs);
            out += ',' + formatNs(r.report.recoveryTimeNs);
            std::snprintf(buf, sizeof(buf), ",%llu,%.6f",
                          static_cast<unsigned long long>(
                              r.report.numFaults),
                          r.report.goodput);
            out += buf;
            out += ',' + formatNs(r.report.criticalPathNs);
            std::snprintf(buf, sizeof(buf), ",%.6f,%.6f,%.6f",
                          r.report.availability, r.report.blastRadius,
                          r.report.spareUtilization);
            out += buf;
            std::snprintf(buf, sizeof(buf), ",%zu,%.3f",
                          r.report.peakFootprintBytes,
                          r.report.bytesPerFlow);
            out += buf;
            out += ',' + csvField(r.manifest);
            out += ",ok";
        }
        out += '\n';
    }
    return out;
}

json::Value
ResultStore::toJson() const
{
    json::Object doc;
    doc["sweep"] = json::Value(sweepName_);
    json::Array axes;
    for (const std::string &name : axisNames_)
        axes.push_back(json::Value(name));
    doc["axes"] = json::Value(std::move(axes));

    json::Array rows;
    rows.reserve(rows_.size());
    for (const SweepResult &r : rows_) {
        json::Object row;
        row["index"] = json::Value(static_cast<uint64_t>(r.config.index));
        row["label"] = json::Value(r.config.label);
        row["config"] = json::Value(configHashString(r.config.hash));
        json::Object axis_values;
        for (size_t a = 0; a < axisNames_.size(); ++a)
            axis_values[axisNames_[a]] =
                json::Value(r.config.axisValues[a]);
        row["axis_values"] = json::Value(std::move(axis_values));
        if (r.failed) {
            row["status"] = json::Value("failed");
            row["error"] = json::Value(r.error);
        } else {
            row["status"] = json::Value("ok");
            if (!r.manifest.empty())
                row["manifest"] = json::Value(r.manifest);
            row["report"] = reportToJson(r.report);
        }
        rows.push_back(json::Value(std::move(row)));
    }
    doc["rows"] = json::Value(std::move(rows));
    return json::Value(std::move(doc));
}

void
ResultStore::writeCsv(const std::string &path) const
{
    std::string text = toCsv();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASTRA_USER_CHECK(f != nullptr, "cannot write '%s'", path.c_str());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

void
ResultStore::writeJson(const std::string &path) const
{
    json::writeFile(path, toJson());
}

} // namespace sweep
} // namespace astra
