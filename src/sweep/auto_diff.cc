#include "sweep/auto_diff.h"

#include "astra/simulator.h"
#include "cluster/config.h"
#include "common/logging.h"
#include "trace/analysis/trace_data.h"

namespace astra {
namespace sweep {

namespace {

/** Run one grid point with full in-memory tracing and capture its
 *  span timeline. File outputs are suppressed — the caller wants the
 *  TraceData, not export side effects. */
trace::analysis::TraceData
traceConfig(const SweepSpec &spec, size_t index)
{
    SweepConfig config = spec.config(index);
    ASTRA_USER_CHECK(!cluster::isClusterDoc(config.doc),
                     "auto-diff: config %zu is a cluster document; "
                     "per-job timelines must be diffed individually",
                     index);
    MaterializedConfig mat = materializeConfig(config.doc);
    mat.cfg.trace.detail = trace::Detail::Full;
    mat.cfg.trace.file.clear();
    mat.cfg.trace.utilizationFile.clear();
    mat.cfg.trace.analysis = false;
    mat.cfg.trace.analysisFile.clear();
    // The re-run is an internal probe: suppress telemetry outputs so
    // it can never clobber the original run's heartbeats or manifest.
    mat.cfg.telemetry = telemetry::TelemetryConfig{};
    Simulator sim(std::move(mat.topo), std::move(mat.cfg));
    sim.run(mat.workload);
    return trace::analysis::TraceData::fromTracer(*sim.tracer());
}

} // namespace

AutoDiffResult
autoDiffRows(const SweepSpec &spec, const ResultStore &store,
             size_t row_a, size_t row_b)
{
    ASTRA_USER_CHECK(row_a < store.rows(),
                     "--diff-rows: row %zu out of range (sweep has "
                     "%zu rows)",
                     row_a, store.rows());
    ASTRA_USER_CHECK(row_b < store.rows(),
                     "--diff-rows: row %zu out of range (sweep has "
                     "%zu rows)",
                     row_b, store.rows());
    ASTRA_USER_CHECK(!store.row(row_a).failed,
                     "--diff-rows: row %zu failed: %s", row_a,
                     store.row(row_a).error.c_str());
    ASTRA_USER_CHECK(!store.row(row_b).failed,
                     "--diff-rows: row %zu failed: %s", row_b,
                     store.row(row_b).error.c_str());
    AutoDiffResult out;
    out.indexMin = store.row(row_a).config.index;
    out.indexMax = store.row(row_b).config.index;
    out.labelMin = spec.config(out.indexMin).label;
    out.labelMax = spec.config(out.indexMax).label;
    trace::analysis::TraceData a = traceConfig(spec, out.indexMin);
    trace::analysis::TraceData b = traceConfig(spec, out.indexMax);
    out.diff = trace::analysis::diffTraces(a, b);
    return out;
}

AutoDiffResult
autoDiffExtremes(const SweepSpec &spec, const ResultStore &store,
                 Metric metric)
{
    return autoDiffRows(spec, store, store.argmin(metric),
                        store.argmax(metric));
}

} // namespace sweep
} // namespace astra
