#include "sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>
#include <utility>

#include "cluster/config.h"
#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace astra {
namespace sweep {

namespace {

uint64_t
parseHashKey(const std::string &key)
{
    return std::strtoull(key.c_str(), nullptr, 16);
}

/**
 * Per-worker deque of configuration indices. Owners pop the front of
 * their shard (preserving the cheap cache-friendly in-order walk);
 * thieves take from the back, so an owner and a thief only collide on
 * the last element.
 */
struct WorkDeque
{
    std::mutex mutex;
    std::deque<size_t> items;

    bool
    popFront(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (items.empty())
            return false;
        *out = items.front();
        items.pop_front();
        return true;
    }

    bool
    stealBack(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (items.empty())
            return false;
        *out = items.back();
        items.pop_back();
        return true;
    }

    size_t
    size()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return items.size();
    }
};

/**
 * Batch heartbeat emitter (docs/observability.md). A dedicated
 * sampling thread wakes on the wall-clock cadence and appends one
 * NDJSON line with rows done/total, cache hits, failures, and
 * per-worker occupancy. Constructed only when telemetry asks for it;
 * workers touch nothing but a few atomics, so results are untouched
 * and the batch stays byte-identical at any thread count.
 */
class SweepPulse
{
  public:
    SweepPulse(const telemetry::TelemetryConfig &cfg, size_t total,
               int workers)
        : total_(total), busy_(static_cast<size_t>(workers))
    {
        for (auto &b : busy_)
            b.store(0, std::memory_order_relaxed);
        if (!cfg.file.empty()) {
            out_ = std::fopen(cfg.file.c_str(), "wb");
            ASTRA_USER_CHECK(out_ != nullptr,
                             "telemetry: cannot write heartbeat file "
                             "'%s'",
                             cfg.file.c_str());
        }
        intervalMs_ = cfg.intervalMs > 0.0 ? cfg.intervalMs : 500.0;
        start_ = telemetry::wallNow();
        sampler_ = std::thread([this] { loop(); });
    }

    ~SweepPulse() { stop(); }

    /** Final beat + shutdown; idempotent. */
    void
    stop()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (stopped_)
                return;
            stopped_ = true;
        }
        wake_.notify_all();
        sampler_.join();
        emit(); // final beat: rows_done == rows_total on success.
        if (out_ != nullptr) {
            std::fclose(out_);
            out_ = nullptr;
        }
    }

    void
    markBusy(int worker, bool busy)
    {
        busy_[static_cast<size_t>(worker)].store(
            busy ? 1 : 0, std::memory_order_relaxed);
    }

    void
    rowDone(bool from_cache, bool failed)
    {
        done_.fetch_add(1, std::memory_order_relaxed);
        if (from_cache)
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
        if (failed)
            failures_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            wake_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                     intervalMs_));
            if (stopped_)
                return;
            emit();
        }
    }

    void
    emit()
    {
        if (out_ == nullptr)
            return;
        size_t done = done_.load(std::memory_order_relaxed);
        double wall = telemetry::wallNow() - start_;
        double rate = wall > 0.0 ? double(done) / wall : 0.0;
        double eta = rate > 0.0 && done < total_
                         ? double(total_ - done) / rate
                         : 0.0;
        size_t busy = 0;
        std::string workers = "[";
        for (size_t w = 0; w < busy_.size(); ++w) {
            int b = busy_[w].load(std::memory_order_relaxed);
            busy += static_cast<size_t>(b);
            workers += (w > 0 ? "," : "") + std::to_string(b);
        }
        workers += "]";
        std::fprintf(
            out_,
            "{\"seq\":%llu,\"rows_done\":%zu,\"rows_total\":%zu,"
            "\"cache_hits\":%zu,\"failures\":%zu,\"workers_busy\":%zu,"
            "\"worker_busy\":%s,\"wall_seconds\":%.6f,"
            "\"wall_rows_per_s\":%.6f,\"wall_eta_seconds\":%.6f}\n",
            static_cast<unsigned long long>(seq_++), done, total_,
            cacheHits_.load(std::memory_order_relaxed),
            failures_.load(std::memory_order_relaxed), busy,
            workers.c_str(), wall, rate, eta);
        std::fflush(out_);
    }

    size_t total_;
    std::vector<std::atomic<int>> busy_;
    std::atomic<size_t> done_{0};
    std::atomic<size_t> cacheHits_{0};
    std::atomic<size_t> failures_{0};
    std::FILE *out_ = nullptr;
    double intervalMs_ = 500.0;
    double start_ = 0.0;
    uint64_t seq_ = 0;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::thread sampler_;
    bool stopped_ = false;
};

/**
 * Per-row run manifest (docs/observability.md): written for every
 * configuration the batch resolved — including cache hits, whose
 * manifest records from_cache — so any result row can be traced to a
 * provenance document whose config_hash matches the cache key.
 */
void
writeRowManifest(const json::Value &doc, SweepResult &slot,
                 const std::string &dir)
{
    telemetry::ManifestInfo info;
    info.kind = "sweep-row";
    info.configHash = slot.config.hash;
    info.fromCache = slot.fromCache;
    info.backend = doc.getString("backend", "analytical");
    Topology topo = topologyFromSpec(doc.at("topology"));
    info.topology = telemetry::topologyNotation(topo);
    info.npus = topo.npus();
    if (doc.has("fault"))
        info.seed = static_cast<uint64_t>(
            doc.at("fault").getNumber("seed", 1.0));
    telemetry::fillManifestFromReport(info, slot.report);
    info.wallBreakdown.emplace_back("run", slot.report.wallSeconds);
    std::string path =
        dir + "/manifest-" + configHashString(slot.config.hash) +
        ".json";
    telemetry::writeManifest(path, info);
    slot.manifest = path;
}

void
runOne(const SweepSpec &spec, size_t index, const BatchOptions &opts,
       SweepResult &slot)
{
    ResultCache *cache = opts.cache;
    // std::exception (not just FatalError): a worker thread has no
    // one to rethrow to — anything escaping the thread body would
    // std::terminate the whole batch. bad_alloc from an oversized
    // grid point is a per-row failure like any misconfiguration.
    try {
        slot.config = spec.config(index);
    } catch (const std::exception &err) {
        // Expansion itself can be a user error (an axis path that
        // traverses a scalar); isolate it like a failed run so the
        // rest of the batch survives. The row keeps placeholder axis
        // values so result tables stay rectangular.
        slot.config.index = index;
        slot.config.label = "expansion failed";
        slot.config.axisValues.assign(spec.axes().size(), "-");
        slot.failed = true;
        slot.error = err.what();
        return;
    }
    // The expanded document is only needed to run (and is cheap to
    // regenerate via spec.config(index)); drop it afterwards so batch
    // memory is bounded by reports, not by grid-size x base-doc-size.
    json::Value doc = std::move(slot.config.doc);
    slot.config.doc = json::Value();

    if (cache != nullptr) {
        bool hit = false;
        try {
            hit = cache->lookup(slot.config.hash, &slot.report);
        } catch (const std::exception &err) {
            // A malformed cached report (hand-edited or wrong-shape
            // entry) is a miss, not an error — same degrade-to-cold
            // contract as loadFile.
            warnT("sweep", "ignoring malformed cache entry %s: %s",
                 configHashString(slot.config.hash).c_str(), err.what());
        }
        if (hit) {
            slot.fromCache = true;
            if (!opts.manifestDir.empty())
                writeRowManifest(doc, slot, opts.manifestDir);
            return;
        }
    }
    try {
        slot.report = runConfig(doc);
    } catch (const std::exception &err) {
        slot.failed = true;
        slot.error = err.what();
        return;
    }
    if (cache != nullptr)
        cache->insert(slot.config.hash, slot.report);
    if (!opts.manifestDir.empty())
        writeRowManifest(doc, slot, opts.manifestDir);
}

} // namespace

const std::string &
cacheFingerprint()
{
    // configHash already salts with kSpecSchemaVersion and hashes the
    // canonical dump; feeding it a default-constructed Report's JSON
    // makes the fingerprint cover every field key reportToJson writes
    // (json::Object keys are ordered), so the fingerprint moves
    // whenever the report schema does — regardless of whether anyone
    // remembered to bump the constant.
    static const std::string fp =
        configHashString(configHash(reportToJson(Report{})));
    return fp;
}

size_t
ResultCache::loadFile(const std::string &path)
{
    std::FILE *probe = std::fopen(path.c_str(), "rb");
    if (probe == nullptr)
        return 0; // first run: empty cache.
    std::fclose(probe);

    // The cache is disposable acceleration state: a corrupt,
    // truncated, or wrong-shape file degrades to a cold cache, never
    // to an error — so the *entire* read runs under the try, and
    // entries are staged before merging so a mid-file failure cannot
    // leave a partial load.
    std::unordered_map<uint64_t, json::Value> staged;
    try {
        json::Value doc = json::parseFile(path);
        // Version mismatch = the file was written by a build whose
        // configuration semantics or report schema differ; its
        // entries are stale even where hashes collide with ours. The
        // version string is the automatic build fingerprint, so a
        // report-shape change invalidates without a manual bump.
        if (doc.getString("version", "") != cacheFingerprint()) {
            warnT("sweep",
                  "ignoring result cache '%s': version '%s' != '%s' "
                 "(results from a different build are stale)",
                 path.c_str(), doc.getString("version", "").c_str(),
                 cacheFingerprint().c_str());
            return 0;
        }
        if (!doc.has("entries"))
            return 0;
        for (const auto &[key, report] : doc.at("entries").asObject())
            staged.emplace(parseHashKey(key), report.clone());
    } catch (const FatalError &err) {
        warnT("sweep", "ignoring unreadable result cache '%s': %s",
              path.c_str(),
             err.what());
        return 0;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[hash, report] : staged)
        entries_[hash] = std::move(report);
    return staged.size();
}

void
ResultCache::saveFile(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Object entries;
    for (const auto &[hash, report] : entries_)
        entries[configHashString(hash)] = report.clone();
    json::Object doc;
    doc["kind"] = json::Value("astra-sweep-result-cache");
    doc["version"] = json::Value(cacheFingerprint());
    doc["entries"] = json::Value(std::move(entries));
    // Write-then-rename so an interrupted save can only ever leave the
    // previous cache (or a stray .tmp), never a truncated file.
    std::string tmp = path + ".tmp";
    json::writeFile(tmp, json::Value(std::move(doc)));
    ASTRA_USER_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                     "cannot move '%s' into place", tmp.c_str());
}

bool
ResultCache::lookup(uint64_t hash, Report *out) const
{
    // Copy the document under the lock (cheap shared_ptr copies) and
    // deserialize outside it, so warm-cache batches don't serialize
    // every worker on the O(npus) reportFromJson walk.
    json::Value doc;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(hash);
        if (it == entries_.end())
            return false;
        doc = it->second;
    }
    *out = reportFromJson(doc);
    return true;
}

void
ResultCache::insert(uint64_t hash, const Report &report)
{
    // Serialize outside nothing — reportToJson is pure; only the map
    // mutation needs the lock.
    json::Value doc = reportToJson(report);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[hash] = std::move(doc);
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

Report
runConfig(const json::Value &doc)
{
    // Cluster documents (multi-tenant job mixes) run on the
    // ClusterSimulator and yield the cluster-aggregate report; plain
    // documents stay one Simulator = one workload.
    if (cluster::isClusterDoc(doc))
        return cluster::runClusterDoc(doc);
    MaterializedConfig mat = materializeConfig(doc);
    Simulator sim(std::move(mat.topo), std::move(mat.cfg));
    return sim.run(mat.workload);
}

BatchOutcome
runBatch(const SweepSpec &spec, const BatchOptions &opts)
{
    size_t n = spec.configCount();
    BatchOutcome out;
    out.results.resize(n);

    int threads = opts.threads;
    if (threads <= 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    // Never spin up more workers than configurations.
    threads = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(threads), std::max<size_t>(n, 1)));
    out.threadsUsed = threads;

    auto host_start = std::chrono::steady_clock::now();

    // Batch heartbeats (created only when asked for; results are
    // untouched either way).
    std::unique_ptr<SweepPulse> pulse;
    if (opts.telemetry.heartbeatsEnabled())
        pulse = std::make_unique<SweepPulse>(opts.telemetry, n, threads);
    auto run_slot = [&](int worker, size_t index) {
        if (pulse)
            pulse->markBusy(worker, true);
        runOne(spec, index, opts, out.results[index]);
        if (pulse) {
            pulse->markBusy(worker, false);
            pulse->rowDone(out.results[index].fromCache,
                           out.results[index].failed);
        }
    };

    if (threads == 1) {
        for (size_t i = 0; i < n; ++i)
            run_slot(0, i);
        out.workerPoolStats.push_back(CallbackPool::stats());
    } else {
        // Deal contiguous shards: worker w owns [w*n/T, (w+1)*n/T).
        std::vector<WorkDeque> shards(static_cast<size_t>(threads));
        for (int w = 0; w < threads; ++w) {
            size_t lo = n * static_cast<size_t>(w) /
                        static_cast<size_t>(threads);
            size_t hi = n * static_cast<size_t>(w + 1) /
                        static_cast<size_t>(threads);
            for (size_t i = lo; i < hi; ++i)
                shards[static_cast<size_t>(w)].items.push_back(i);
        }

        out.workerPoolStats.resize(static_cast<size_t>(threads));
        auto worker = [&](int id) {
            WorkDeque &own = shards[static_cast<size_t>(id)];
            size_t index;
            for (;;) {
                if (own.popFront(&index)) {
                    run_slot(id, index);
                    continue;
                }
                // Own shard drained: steal from the most loaded
                // victim. A failed steal (victim emptied between the
                // size probe and the pop) rescans the other deques
                // rather than retiring the worker — queued work may
                // still sit behind a busy owner. The rescan loop
                // terminates because the global item count only ever
                // shrinks; a pass that observes every deque empty
                // means all remaining work is already claimed.
                bool stole = false;
                for (;;) {
                    int victim = -1;
                    size_t victim_load = 0;
                    for (int v = 0; v < threads; ++v) {
                        if (v == id)
                            continue;
                        size_t load =
                            shards[static_cast<size_t>(v)].size();
                        if (load > victim_load) {
                            victim_load = load;
                            victim = v;
                        }
                    }
                    if (victim < 0)
                        break; // every deque observed empty.
                    if (shards[static_cast<size_t>(victim)].stealBack(
                            &index)) {
                        stole = true;
                        break;
                    }
                }
                if (!stole)
                    break;
                run_slot(id, index);
            }
            // Snapshot this worker's thread_local pool counters while
            // the thread is still alive.
            out.workerPoolStats[static_cast<size_t>(id)] =
                CallbackPool::stats();
        };

        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads));
        for (int w = 0; w < threads; ++w)
            pool.emplace_back(worker, w);
        for (std::thread &t : pool)
            t.join();
    }

    if (pulse)
        pulse->stop();

    auto host_end = std::chrono::steady_clock::now();
    out.wallSeconds =
        std::chrono::duration<double>(host_end - host_start).count();

    for (const SweepResult &r : out.results) {
        if (r.fromCache)
            ++out.cacheHits;
        if (r.failed)
            ++out.failures;
    }

    // A sweep whose configurations all produced identical results is
    // almost always a mistyped axis path: applyOverride() happily
    // creates keys nothing reads, yielding a plausible-looking but
    // constant grid. Warn rather than fail — a genuinely flat
    // response surface is legitimate, just rare.
    if (n > 1 && out.failures == 0) {
        bool all_equal = true;
        for (size_t i = 1; i < n && all_equal; ++i)
            all_equal = out.results[i].report.totalTime ==
                            out.results[0].report.totalTime &&
                        out.results[i].report.events ==
                            out.results[0].report.events;
        if (all_equal)
            warnT("sweep",
                  "sweep '%s': all %zu configurations produced "
                 "identical results — check the axis paths for typos "
                 "(overrides at unknown paths are not detected)",
                 spec.name().c_str(), n);
    }
    return out;
}

} // namespace sweep
} // namespace astra
