/**
 * @file
 * Multi-threaded sweep batch runner with a config-hash result cache.
 *
 * Each configuration of a SweepSpec is an independent simulation — a
 * Simulator owns its own EventQueue, and all remaining cross-simulation
 * state is immutable, atomic, or thread_local (see the threading
 * contract in src/event/inline_event.h) — so a batch is embarrassingly
 * parallel. The runner places whole simulations on worker threads:
 *
 *  - Work-stealing pool: configurations are dealt to per-worker deques
 *    in contiguous shards; a worker drains its own shard front-to-back
 *    and, when empty, steals from the *back* of the most loaded
 *    victim. Stealing granularity is one configuration — tasks are
 *    whole simulations (milliseconds to seconds), so the deque mutexes
 *    are uncontended and imbalance (sweeps mixing cheap and expensive
 *    grid points) is absorbed.
 *  - Deterministic results: every result is written to the slot of its
 *    configuration index, so the outcome is ordered by grid position
 *    regardless of which thread finished first, and — because each
 *    simulation is internally deterministic and serialized reports
 *    exclude host timing — a batch yields byte-identical ResultStore
 *    contents at any thread count.
 *  - Result cache: an optional ResultCache keyed by the configuration
 *    document hash skips simulations whose config is unchanged since a
 *    previous run (incremental re-runs of edited sweeps). Cache files
 *    round-trip through JSON with %.17g doubles, so cached reports are
 *    bit-equal to freshly computed ones.
 *
 * A configuration that fails validation (fatal() throws FatalError)
 * does not abort the batch: the error is recorded on its result row
 * and the remaining configurations run normally.
 */
#ifndef ASTRA_SWEEP_RUNNER_H_
#define ASTRA_SWEEP_RUNNER_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "astra/report.h"
#include "event/inline_event.h"
#include "sweep/spec.h"

namespace astra {
namespace sweep {

/**
 * Build fingerprint stamped into result-cache files as their version
 * string: a hash of `kSpecSchemaVersion` *and* the serialized field
 * list of a Report. The manual schema bump still invalidates caches
 * when configuration semantics change, but a report-shape change
 * (field added, removed, or renamed) now orphans old cache files
 * automatically — forgetting the bump can no longer serve stale rows
 * shaped for a different report schema (docs/sweep.md).
 */
const std::string &cacheFingerprint();

/**
 * Thread-safe configuration-hash -> Report cache with JSON
 * persistence. Lookups and inserts may come from any worker thread.
 */
class ResultCache
{
  public:
    ResultCache() = default;

    /** Merge a cache file's entries into this cache; a missing file
     *  loads nothing. Returns the number of entries loaded. */
    size_t loadFile(const std::string &path);

    /** Persist the cache; fatal() if unwritable. */
    void saveFile(const std::string &path) const;

    /** Fetch the cached report for `hash`; true on hit. */
    bool lookup(uint64_t hash, Report *out) const;

    void insert(uint64_t hash, const Report &report);

    size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, json::Value> entries_;
};

/** Batch execution options. */
struct BatchOptions
{
    /** Worker threads; <= 0 uses std::thread::hardware_concurrency().
     *  1 runs inline on the calling thread. */
    int threads = 1;
    /** Optional cache consulted before and filled after each run. */
    ResultCache *cache = nullptr;
    /**
     * Sweep-level telemetry (docs/observability.md). `file` +
     * `intervalMs` drive batch heartbeats — NDJSON lines with rows
     * done/total, cache hits, failures, and per-worker occupancy,
     * sampled on a wall-clock cadence by a dedicated thread (batch
     * progress is inherently wall-paced; results are untouched).
     * `intervalEvents` is ignored at the batch level.
     */
    telemetry::TelemetryConfig telemetry;
    /**
     * Directory for per-row run manifests ("" = none). Each
     * configuration — including rows served from the cache — writes
     * `manifest-<confighash16>.json` there, and its result row
     * carries the path (SweepResult::manifest), so every row is
     * resolvable to the provenance record of what produced it.
     */
    std::string manifestDir;
};

/** Outcome of one configuration. */
struct SweepResult
{
    /** Identity of the grid point. `config.doc` is released (reset to
     *  null) once the run finishes — expansion is deterministic, so
     *  SweepSpec::config(index) regenerates it on demand — keeping
     *  batch memory bounded by reports rather than config documents. */
    SweepConfig config;
    Report report;
    bool fromCache = false;
    bool failed = false;
    std::string error; //!< failure message when failed.
    /** Path of this row's run manifest ("" unless the batch ran with
     *  BatchOptions::manifestDir). */
    std::string manifest;
};

/** Outcome of a whole batch. */
struct BatchOutcome
{
    /** One result per configuration, ordered by config index. */
    std::vector<SweepResult> results;
    int threadsUsed = 1;
    double wallSeconds = 0.0; //!< host wall-clock of the batch.
    size_t cacheHits = 0;
    size_t failures = 0;
    /** Per-worker callback-pool counters (thread_local pools; index =
     *  worker id, worker 0 is the calling thread when threads == 1). */
    std::vector<CallbackPool::Stats> workerPoolStats;
};

/** Run every configuration of `spec`; see file comment. */
BatchOutcome runBatch(const SweepSpec &spec,
                      const BatchOptions &opts = {});

/** Run a single configuration document to a Report (no threading; the
 *  sequential building block runBatch parallelizes). */
Report runConfig(const json::Value &doc);

} // namespace sweep
} // namespace astra

#endif // ASTRA_SWEEP_RUNNER_H_
