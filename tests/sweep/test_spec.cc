/** @file Unit tests for the declarative sweep specification. */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "sweep/spec.h"

namespace astra {
namespace sweep {
namespace {

json::Value
minimalSpec()
{
    return json::parse(R"json({
      "name": "t",
      "base": {
        "topology": "Ring(4,100)",
        "backend": "analytical",
        "workload": {"kind": "collective", "collective": "all-reduce",
                     "bytes": 1048576}
      },
      "axes": [
        {"path": "workload.bytes",
         "values": [1048576, 2097152, 4194304]},
        {"path": "system.scheduling_policy",
         "values": ["baseline", "themis"]}
      ]
    })json");
}

TEST(SweepSpec, CartesianExpansion)
{
    SweepSpec spec = SweepSpec::fromJson(minimalSpec());
    EXPECT_EQ(spec.name(), "t");
    EXPECT_EQ(spec.mode(), GridMode::Cartesian);
    ASSERT_EQ(spec.configCount(), 6u);
    ASSERT_EQ(spec.axes().size(), 2u);
    EXPECT_EQ(spec.axisNames(),
              (std::vector<std::string>{"bytes", "scheduling_policy"}));

    // First axis varies slowest: index 0..5 maps to
    // (bytes[0], pol[0]), (bytes[0], pol[1]), (bytes[1], pol[0]), ...
    SweepConfig c0 = spec.config(0);
    SweepConfig c1 = spec.config(1);
    SweepConfig c2 = spec.config(2);
    EXPECT_EQ(c0.doc.at("workload").at("bytes").asInt(), 1048576);
    EXPECT_EQ(c0.doc.at("system").at("scheduling_policy").asString(),
              "baseline");
    EXPECT_EQ(c1.doc.at("workload").at("bytes").asInt(), 1048576);
    EXPECT_EQ(c1.doc.at("system").at("scheduling_policy").asString(),
              "themis");
    EXPECT_EQ(c2.doc.at("workload").at("bytes").asInt(), 2097152);
    EXPECT_EQ(c0.label, "bytes=1048576 scheduling_policy=baseline");
    EXPECT_EQ(c0.axisValues,
              (std::vector<std::string>{"1048576", "baseline"}));
}

TEST(SweepSpec, OverridesDoNotLeakAcrossConfigs)
{
    SweepSpec spec = SweepSpec::fromJson(minimalSpec());
    SweepConfig c5 = spec.config(5);
    SweepConfig c0 = spec.config(0);
    // Expanding config 5 first must not mutate the shared base.
    EXPECT_EQ(c0.doc.at("workload").at("bytes").asInt(), 1048576);
    EXPECT_EQ(c5.doc.at("workload").at("bytes").asInt(), 4194304);
}

TEST(SweepSpec, ZipExpansion)
{
    json::Value doc = minimalSpec();
    json::Object &obj = doc.mutableObject();
    obj["mode"] = json::Value("zip");
    obj["axes"] = json::parse(R"json([
      {"path": "workload.bytes", "values": [1, 2]},
      {"path": "system.scheduling_policy",
       "values": ["baseline", "themis"], "labels": ["b", "t"]}
    ])json");
    SweepSpec spec = SweepSpec::fromJson(doc);
    EXPECT_EQ(spec.mode(), GridMode::Zip);
    ASSERT_EQ(spec.configCount(), 2u);
    SweepConfig c1 = spec.config(1);
    EXPECT_EQ(c1.doc.at("workload").at("bytes").asInt(), 2);
    EXPECT_EQ(c1.doc.at("system").at("scheduling_policy").asString(),
              "themis");
    EXPECT_EQ(c1.axisValues[1], "t"); // label, not value.
}

TEST(SweepSpec, RangeAxis)
{
    json::Value doc = minimalSpec();
    doc.mutableObject()["axes"] = json::parse(R"json([
      {"path": "workload.bytes",
       "range": {"from": 100, "to": 500, "step": 100}}
    ])json");
    SweepSpec spec = SweepSpec::fromJson(doc);
    ASSERT_EQ(spec.configCount(), 5u);
    EXPECT_EQ(spec.config(4).doc.at("workload").at("bytes").asInt(),
              500);

    // A 'to' that falls between grid points must not round up to an
    // extra value beyond the declared bound.
    doc.mutableObject()["axes"] = json::parse(R"json([
      {"path": "workload.bytes",
       "range": {"from": 100, "to": 550, "step": 100}}
    ])json");
    EXPECT_EQ(SweepSpec::fromJson(doc).configCount(), 5u);

    // Fractional steps still reach an accumulated endpoint.
    doc.mutableObject()["axes"] = json::parse(R"json([
      {"path": "workload.bytes",
       "range": {"from": 0, "to": 0.3, "step": 0.1}}
    ])json");
    EXPECT_EQ(SweepSpec::fromJson(doc).configCount(), 4u);

    // A step below the ULP of 'from' must be a bounded user error,
    // not a hang (from + step == from in double precision).
    doc.mutableObject()["axes"] = json::parse(R"json([
      {"path": "workload.bytes",
       "range": {"from": 1e16, "to": 2e16, "step": 1}}
    ])json");
    EXPECT_THROW(SweepSpec::fromJson(doc), FatalError);
}

TEST(SweepSpec, ParseErrors)
{
    auto with = [](const char *mutation) {
        json::Value doc = minimalSpec();
        json::Value patch = json::parse(mutation);
        for (const auto &[key, v] : patch.asObject())
            doc.mutableObject()[key] = v.clone();
        return doc;
    };

    // Missing required keys.
    EXPECT_THROW(SweepSpec::fromJson(json::parse(R"({"axes": []})")),
                 FatalError);
    EXPECT_THROW(SweepSpec::fromJson(
                     json::parse(R"({"base": {}, "axes": []})")),
                 FatalError);
    // Unknown mode.
    EXPECT_THROW(SweepSpec::fromJson(with(R"({"mode": "diagonal"})")),
                 FatalError);
    // Axis without path / with empty values / with both values+range.
    EXPECT_THROW(SweepSpec::fromJson(
                     with(R"({"axes": [{"values": [1]}]})")),
                 FatalError);
    EXPECT_THROW(SweepSpec::fromJson(
                     with(R"({"axes": [{"path": "a", "values": []}]})")),
                 FatalError);
    EXPECT_THROW(
        SweepSpec::fromJson(with(
            R"({"axes": [{"path": "a", "values": [1],
                          "range": {"from": 1, "to": 2, "step": 1}}]})")),
        FatalError);
    // Bad range.
    EXPECT_THROW(
        SweepSpec::fromJson(with(
            R"({"axes": [{"path": "a",
                          "range": {"from": 1, "to": 2, "step": 0}}]})")),
        FatalError);
    EXPECT_THROW(
        SweepSpec::fromJson(with(
            R"({"axes": [{"path": "a",
                          "range": {"from": 3, "to": 2, "step": 1}}]})")),
        FatalError);
    // Mismatched label count.
    EXPECT_THROW(
        SweepSpec::fromJson(with(
            R"({"axes": [{"path": "a", "values": [1, 2],
                          "labels": ["only-one"]}]})")),
        FatalError);
    // Zip with unequal axis lengths.
    EXPECT_THROW(
        SweepSpec::fromJson(with(
            R"({"mode": "zip",
                "axes": [{"path": "a", "values": [1, 2]},
                         {"path": "b", "values": [1]}]})")),
        FatalError);
}

TEST(SweepSpec, ApplyOverride)
{
    json::Value doc = json::parse(R"({"a": {"b": 1}})");
    applyOverride(doc, "a.b", json::Value(2));
    EXPECT_EQ(doc.at("a").at("b").asInt(), 2);
    // Creates intermediate objects.
    applyOverride(doc, "x.y.z", json::Value("deep"));
    EXPECT_EQ(doc.at("x").at("y").at("z").asString(), "deep");
    // Traversing through a scalar is a user error.
    EXPECT_THROW(applyOverride(doc, "a.b.c", json::Value(1)),
                 FatalError);
}

TEST(SweepSpec, ApplyOverrideArrayIndices)
{
    json::Value doc = json::parse(
        R"({"jobs": [{"size": 4}, {"size": 8}]})");
    applyOverride(doc, "jobs.1.size", json::Value(16));
    EXPECT_EQ(doc.at("jobs").asArray()[1].at("size").asInt(), 16);
    EXPECT_EQ(doc.at("jobs").asArray()[0].at("size").asInt(), 4);
    // New keys inside an indexed element still work.
    applyOverride(doc, "jobs.0.placement", json::Value("spread"));
    EXPECT_EQ(doc.at("jobs").asArray()[0].at("placement").asString(),
              "spread");
    // Arrays are never grown implicitly.
    EXPECT_THROW(applyOverride(doc, "jobs.2.size", json::Value(1)),
                 FatalError);
    // A numeric key against an object is a plain object key.
    json::Value obj = json::parse(R"({"m": {}})");
    applyOverride(obj, "m.0", json::Value("zero"));
    EXPECT_EQ(obj.at("m").at("0").asString(), "zero");
}

TEST(SweepSpec, MultiPathAxisPatchesEveryPath)
{
    json::Value doc = json::parse(R"json({
      "base": {"topology": "Ring(4,100)",
               "system": {"a": 1, "b": 1},
               "workload": {"kind": "collective", "bytes": 1024}},
      "axes": [{"paths": ["system.a", "system.b"],
                "name": "knob", "values": [10, 20]}]
    })json");
    SweepSpec spec = SweepSpec::fromJson(doc);
    ASSERT_EQ(spec.configCount(), 2u);
    EXPECT_EQ(spec.axisNames(), std::vector<std::string>{"knob"});

    SweepConfig cfg = spec.config(1);
    EXPECT_EQ(cfg.doc.at("system").at("a").asInt(), 20);
    EXPECT_EQ(cfg.doc.at("system").at("b").asInt(), 20);
    EXPECT_EQ(cfg.label, "knob=20");
    // Both paths reach the hash.
    EXPECT_NE(spec.config(0).hash, spec.config(1).hash);

    // 'path' and 'paths' together (or neither) is a user error.
    EXPECT_THROW(SweepSpec::fromJson(json::parse(R"json({
        "base": {},
        "axes": [{"path": "a", "paths": ["b"], "values": [1]}]
      })json")),
                 FatalError);
    EXPECT_THROW(SweepSpec::fromJson(json::parse(R"json({
        "base": {},
        "axes": [{"paths": [], "values": [1]}]
      })json")),
                 FatalError);
}

TEST(SweepSpec, ConfigHashIdentityAndSensitivity)
{
    SweepSpec spec = SweepSpec::fromJson(minimalSpec());
    EXPECT_EQ(spec.config(0).hash, spec.config(0).hash);
    EXPECT_NE(spec.config(0).hash, spec.config(1).hash);

    // Any base change reaches every config hash.
    json::Value doc = minimalSpec();
    applyOverride(doc, "base.system.collective_chunks", json::Value(4));
    SweepSpec changed = SweepSpec::fromJson(doc);
    EXPECT_NE(spec.config(0).hash, changed.config(0).hash);
}

TEST(SweepSpec, MaterializeTopologyForms)
{
    // Notation string.
    MaterializedConfig notation = materializeConfig(json::parse(R"json({
      "topology": "Ring(4,100)_Switch(2,50)",
      "workload": {"kind": "collective", "bytes": 1024}
    })json"));
    EXPECT_EQ(notation.topo.npus(), 8);

    // Preset name (case-insensitive, no parentheses).
    MaterializedConfig preset = materializeConfig(json::parse(R"json({
      "topology": "conv3d",
      "workload": {"kind": "collective", "bytes": 1024}
    })json"));
    EXPECT_EQ(preset.topo.npus(), 512);

    // Explicit dims object (network-config schema).
    MaterializedConfig dims = materializeConfig(json::parse(R"json({
      "topology": {"dims": [{"type": "Ring", "size": 4,
                             "bandwidth_gbps": 100}]},
      "workload": {"kind": "collective", "bytes": 1024}
    })json"));
    EXPECT_EQ(dims.topo.npus(), 4);
}

TEST(SweepSpec, MaterializeWorkloadsAndErrors)
{
    // Hybrid transformer with explicit parallelism degrees.
    MaterializedConfig hybrid = materializeConfig(json::parse(R"json({
      "topology": "Ring(4,100)_Switch(4,50)",
      "system": {"collective_chunks": 2},
      "workload": {"kind": "hybrid", "model": "gpt3", "mp": 4,
                   "sim_layers": 2}
    })json"));
    EXPECT_EQ(hybrid.cfg.sys.collectiveChunks, 2);
    EXPECT_FALSE(hybrid.workload.name.empty());

    // MoE with the fused parameter path and a pooled tier.
    MaterializedConfig moe = materializeConfig(json::parse(R"json({
      "topology": "Switch(16,300)_Switch(16,25)",
      "system": {"remote_memory": {"kind": "pooled"}},
      "workload": {"kind": "moe", "param_path": "fused",
                   "sim_layers": 2}
    })json"));
    EXPECT_TRUE(moe.cfg.pooledMem.has_value());

    // Missing sections and unknown enumerations are user errors.
    EXPECT_THROW(materializeConfig(json::parse(
                     R"json({"workload": {"kind": "collective"}})json")),
                 FatalError);
    EXPECT_THROW(materializeConfig(json::parse(
                     R"json({"topology": "Ring(4,100)"})json")),
                 FatalError);
    EXPECT_THROW(
        materializeConfig(json::parse(
            R"json({"topology": "Ring(4,100)",
                    "workload": {"kind": "quantum"}})json")),
        FatalError);
    EXPECT_THROW(
        materializeConfig(json::parse(
            R"json({"topology": "Ring(4,100)",
                    "workload": {"kind": "hybrid",
                                 "model": "gpt5"}})json")),
        FatalError);
    EXPECT_THROW(
        materializeConfig(json::parse(
            R"json({"topology": "Ring(4,100)",
                    "workload": {"kind": "moe",
                                 "param_path": "psychic"}})json")),
        FatalError);
}

TEST(SweepSpec, SampleSpecRoundTrips)
{
    std::string path = "sweep_sample_spec_test.json";
    writeSampleSpec(path);
    SweepSpec spec = SweepSpec::fromFile(path);
    EXPECT_GT(spec.configCount(), 0u);
    // Every sample config materializes.
    MaterializedConfig mat = materializeConfig(spec.config(0).doc);
    EXPECT_EQ(mat.topo.npus(), 256);
    std::remove(path.c_str());
}

} // namespace
} // namespace sweep
} // namespace astra
