/** @file Tests for the sweep result store (tables + queries). */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "sweep/result_store.h"

namespace astra {
namespace sweep {
namespace {

SweepResult
makeRow(size_t index, const std::string &axis_value, double total,
        double comm, uint64_t events)
{
    SweepResult r;
    r.config.index = index;
    r.config.label = "x=" + axis_value;
    r.config.hash = 0x1000 + index;
    r.config.axisValues = {axis_value};
    r.report.workload = "w";
    r.report.totalTime = total;
    r.report.average.compute = total - comm;
    r.report.average.exposedComm = comm;
    r.report.events = events;
    r.report.messages = events / 2;
    r.report.maxLinkBusyNs = total / 2.0; // 50% hot-link utilization.
    return r;
}

ResultStore
makeStore()
{
    ResultStore store("unit", {"x"});
    store.add(makeRow(0, "a", 300.0, 100.0, 30));
    store.add(makeRow(1, "b", 100.0, 80.0, 10));
    store.add(makeRow(2, "c", 200.0, 10.0, 20));
    return store;
}

TEST(ResultStore, QueriesSelectExtremes)
{
    ResultStore store = makeStore();
    EXPECT_EQ(store.rows(), 3u);
    EXPECT_EQ(store.argmin(Metric::TotalTime), 1u);
    EXPECT_EQ(store.argmax(Metric::TotalTime), 0u);
    EXPECT_DOUBLE_EQ(store.min(Metric::TotalTime), 100.0);
    EXPECT_DOUBLE_EQ(store.max(Metric::TotalTime), 300.0);
    EXPECT_EQ(store.argmin(Metric::ExposedComm), 2u);
    EXPECT_EQ(store.argmax(Metric::Events), 0u);
    EXPECT_DOUBLE_EQ(store.value(1, Metric::Compute), 20.0);
    EXPECT_DOUBLE_EQ(store.value(2, Metric::Messages), 10.0);
    EXPECT_DOUBLE_EQ(store.value(0, Metric::MaxLinkUtil), 0.5);
}

TEST(ResultStore, MeanAndPercentileOverSuccessfulRows)
{
    ResultStore store = makeStore(); // totals 300, 100, 200.
    EXPECT_DOUBLE_EQ(store.mean(Metric::TotalTime), 200.0);
    // Nearest-rank over {100, 200, 300}.
    EXPECT_DOUBLE_EQ(store.percentile(Metric::TotalTime, 0.0), 100.0);
    EXPECT_DOUBLE_EQ(store.percentile(Metric::TotalTime, 0.5), 200.0);
    EXPECT_DOUBLE_EQ(store.percentile(Metric::TotalTime, 0.95), 300.0);
    EXPECT_DOUBLE_EQ(store.percentile(Metric::TotalTime, 1.0), 300.0);
    EXPECT_THROW(store.percentile(Metric::TotalTime, 1.5), FatalError);

    // Failed rows are excluded from both aggregates.
    SweepResult bad = makeRow(3, "boom", 9999.0, 0.0, 1);
    bad.failed = true;
    store.add(bad);
    EXPECT_DOUBLE_EQ(store.mean(Metric::TotalTime), 200.0);
    EXPECT_DOUBLE_EQ(store.percentile(Metric::TotalTime, 1.0), 300.0);

    ResultStore empty("unit", {"x"});
    EXPECT_THROW(empty.mean(Metric::TotalTime), FatalError);
    EXPECT_THROW(empty.percentile(Metric::TotalTime, 0.5), FatalError);
}

TEST(ResultStore, FailedRowsKeptButSkippedByQueries)
{
    ResultStore store("unit", {"x"});
    SweepResult bad = makeRow(0, "boom", 1.0, 0.0, 1);
    bad.failed = true;
    bad.error = "mp does not divide";
    store.add(bad);
    store.add(makeRow(1, "ok", 50.0, 5.0, 5));

    EXPECT_EQ(store.rows(), 2u);
    EXPECT_EQ(store.argmin(Metric::TotalTime), 1u);
    EXPECT_THROW(store.value(0, Metric::TotalTime), FatalError);

    std::string csv = store.toCsv();
    EXPECT_NE(csv.find("failed: mp does not divide"),
              std::string::npos);
    // Failed rows carry the same field count as ok rows, so
    // header-keyed CSV parsers put the message in the status column.
    {
        std::istringstream lines(csv);
        std::string line;
        std::getline(lines, line); // header
        size_t header_fields = std::count(line.begin(), line.end(), ',');
        std::getline(lines, line); // failed row (no quoted commas)
        EXPECT_EQ(size_t(std::count(line.begin(), line.end(), ',')),
                  header_fields);
    }
    json::Value doc = store.toJson();
    EXPECT_EQ(doc.at("rows").asArray()[0].at("status").asString(),
              "failed");
    EXPECT_EQ(doc.at("rows").asArray()[1].at("status").asString(),
              "ok");

    // All rows failed -> queries are a user error.
    ResultStore all_failed("unit", {"x"});
    all_failed.add(bad);
    EXPECT_THROW(all_failed.argmin(Metric::TotalTime), FatalError);
}

TEST(ResultStore, CsvShapeAndQuoting)
{
    ResultStore store("unit", {"x"});
    store.add(makeRow(0, "has,comma \"quoted\"", 10.0, 1.0, 2));
    std::string csv = store.toCsv();

    // Header + one row.
    std::istringstream lines(csv);
    std::string header, row, extra;
    ASSERT_TRUE(std::getline(lines, header));
    ASSERT_TRUE(std::getline(lines, row));
    EXPECT_FALSE(std::getline(lines, extra));
    EXPECT_EQ(header,
              "index,label,config,x,total_ns,compute_ns,"
              "exposed_comm_ns,exposed_local_mem_ns,"
              "exposed_remote_mem_ns,idle_ns,events,messages,"
              "max_link_util,queueing_delay_ns,"
              "interference_slowdown,lost_work_ns,recovery_time_ns,"
              "num_faults,goodput,critical_path_ns,availability,"
              "blast_radius,spare_utilization,peak_footprint_bytes,"
              "bytes_per_flow,manifest,status");
    // RFC-4180: embedded quotes doubled, field quoted.
    EXPECT_NE(row.find("\"has,comma \"\"quoted\"\"\""),
              std::string::npos);
    EXPECT_NE(row.find("10.000"), std::string::npos);
    EXPECT_NE(row.find(",ok"), std::string::npos);
}

TEST(ResultStore, JsonShape)
{
    json::Value doc = makeStore().toJson();
    EXPECT_EQ(doc.at("sweep").asString(), "unit");
    EXPECT_EQ(doc.at("axes").asArray().size(), 1u);
    const json::Array &rows = doc.at("rows").asArray();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1].at("axis_values").at("x").asString(), "b");
    EXPECT_DOUBLE_EQ(
        rows[1].at("report").at("total_time_ns").asNumber(), 100.0);
    // Host wall-clock must not be serialized (determinism contract).
    EXPECT_FALSE(rows[1].at("report").has("wall_seconds"));
}

TEST(ResultStore, FileOutput)
{
    ResultStore store = makeStore();
    std::string csv_path = "result_store_test.csv";
    std::string json_path = "result_store_test.json";
    store.writeCsv(csv_path);
    store.writeJson(json_path);

    std::ifstream csv(csv_path);
    std::stringstream csv_text;
    csv_text << csv.rdbuf();
    EXPECT_EQ(csv_text.str(), store.toCsv());

    json::Value doc = json::parseFile(json_path);
    EXPECT_EQ(doc.at("rows").asArray().size(), 3u);
    std::remove(csv_path.c_str());
    std::remove(json_path.c_str());
}

TEST(ResultStore, AxisArityValidated)
{
    ResultStore store("unit", {"x", "y"});
    EXPECT_THROW(store.add(makeRow(0, "only-x", 1.0, 0.0, 1)),
                 FatalError);
}

} // namespace
} // namespace sweep
} // namespace astra
