/**
 * @file
 * Tests for the `seeds` sweep shorthand and the checkpoint-interval
 * auto-tuner / resilience-study runner (sweep/resilience.h,
 * docs/sweep.md "Seed replication", docs/fault.md "Checkpoint
 * auto-tuning").
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "sweep/resilience.h"
#include "sweep/result_store.h"
#include "sweep/runner.h"

namespace astra {
namespace sweep {
namespace {

/** Tiny faulty cluster config: quick to simulate, failures guaranteed
 *  inside the job's runtime. */
json::Value
faultyClusterDoc()
{
    return json::parse(R"json({
      "topology": "Ring(4,100)",
      "backend": "analytical",
      "fault": {
        "seed": 1,
        "horizon_ns": 100000,
        "npu_mtbf_ns": 25000,
        "npu_mttr_ns": 5000
      },
      "cluster": {
        "checkpoint": {"interval_ns": 10000, "cost_ns": 500,
                       "restart_delay_ns": 1000},
        "jobs": [
          {"name": "train", "size": 4,
           "workload": {"kind": "collective",
                        "collective": "all-reduce",
                        "bytes": 4194304}}
        ]
      }
    })json");
}

TEST(SeedsShorthand, ExpandsToATrailingFaultSeedAxis)
{
    json::Value doc = json::parse(R"json({
      "name": "replicated",
      "base": {"topology": "Ring(4,100)", "backend": "analytical",
               "cluster": {"jobs": [
                 {"name": "j", "size": 4,
                  "workload": {"kind": "collective",
                               "collective": "all-reduce",
                               "bytes": 1048576}}]}},
      "axes": [{"path": "cluster.placement", "name": "placement",
                "values": ["contiguous", "anti_affinity"]}],
      "seeds": 3
    })json");
    SweepSpec spec = SweepSpec::fromJson(doc);
    EXPECT_EQ(spec.configCount(), 6u);
    // The seed axis is appended last, so it varies fastest: the
    // replications of one variant are a contiguous row block.
    std::vector<std::string> names = spec.axisNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "placement");
    EXPECT_EQ(names[1], "seed");
    for (size_t i = 0; i < 6; ++i) {
        json::Value cfg = spec.config(i).doc;
        EXPECT_EQ(cfg.at("fault").at("seed").asInt(),
                  static_cast<int64_t>(i % 3 + 1));
    }
}

TEST(SeedsShorthand, WorksWithoutExplicitAxesAndValidates)
{
    json::Value doc = json::parse(R"json({
      "name": "seeds-only",
      "base": {"topology": "Ring(4,100)"},
      "seeds": 2
    })json");
    SweepSpec spec = SweepSpec::fromJson(doc);
    EXPECT_EQ(spec.configCount(), 2u);
    EXPECT_EQ(spec.axisNames(), std::vector<std::string>{"seed"});

    // seeds must be >= 1.
    json::Value zero = doc.clone();
    applyOverride(zero, "seeds", json::Value(int64_t{0}));
    EXPECT_THROW(SweepSpec::fromJson(zero), FatalError);

    // Neither axes nor seeds: nothing to sweep.
    EXPECT_THROW(
        SweepSpec::fromJson(json::parse(
            R"json({"name": "x", "base": {"topology": "Ring(4,100)"}})json")),
        FatalError);
}

TEST(SeedsShorthand, SeedSweepDeterministicAcrossThreadCounts)
{
    json::Object doc;
    doc["name"] = json::Value(std::string("seed-replication"));
    doc["base"] = faultyClusterDoc();
    doc["seeds"] = json::Value(int64_t{4});
    SweepSpec spec = SweepSpec::fromJson(json::Value(std::move(doc)));
    ASSERT_EQ(spec.configCount(), 4u);

    auto bytes = [&](int threads) {
        BatchOptions opts;
        opts.threads = threads;
        ResultStore store =
            ResultStore::fromBatch(spec, runBatch(spec, opts));
        return store.toCsv() + store.toJson().dump(2);
    };
    std::string one = bytes(1);
    EXPECT_EQ(bytes(2), one);
    EXPECT_EQ(bytes(8), one);

    // Different seeds draw different failure realizations: at least
    // one metric column must differ across the replications.
    ResultStore store =
        ResultStore::fromBatch(spec, runBatch(spec, BatchOptions{}));
    double lo = store.value(store.argmin(Metric::NumFaults),
                            Metric::NumFaults);
    double hi = store.value(store.argmax(Metric::NumFaults),
                            Metric::NumFaults);
    EXPECT_GT(hi, 0.0);
    EXPECT_NE(lo, hi);
}

TEST(CheckpointTuner, ProbesLadderPlusRefinementAndPicksArgmax)
{
    json::Value doc = faultyClusterDoc();
    CheckpointTuning t = tuneCheckpointInterval(doc, /*refineEvals=*/2);
    EXPECT_GT(t.youngDalyNs, 0.0);
    // Five ladder probes + two golden-section refinements.
    ASSERT_EQ(t.probes.size(), 7u);
    // The first five probes ARE the fixed-interval grid {yd/4 ..
    // 4*yd}; the tuned result is the argmax over every probe, so it
    // can never lose to that grid.
    double best_grid = 0.0;
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(t.probes[i].intervalNs,
                    t.youngDalyNs * (0.25 * double(1 << i)), 1e-6);
        best_grid = std::max(best_grid, t.probes[i].goodput);
    }
    EXPECT_GE(t.goodput, best_grid);
    double best_all = 0.0;
    for (const IntervalProbe &p : t.probes)
        best_all = std::max(best_all, p.goodput);
    EXPECT_EQ(t.goodput, best_all);
    // Determinism: the same document tunes to the same interval.
    CheckpointTuning again = tuneCheckpointInterval(doc, 2);
    EXPECT_EQ(again.intervalNs, t.intervalNs);
    EXPECT_EQ(tuningToJson(again).dump(), tuningToJson(t).dump());
}

TEST(CheckpointTuner, YoungDalySeedValidatesItsInputs)
{
    // No fault scenario at all.
    json::Value no_fault = json::parse(R"json({
      "topology": "Ring(4,100)", "backend": "analytical",
      "cluster": {
        "checkpoint": {"interval_ns": 10000, "cost_ns": 500},
        "jobs": [{"name": "j", "size": 4,
                  "workload": {"kind": "collective",
                               "collective": "all-reduce",
                               "bytes": 1048576}}]}
    })json");
    EXPECT_THROW(youngDalySeed(no_fault), FatalError);

    // Scheduled-only faults: no MTBF to derive a rate from.
    json::Value sched = faultyClusterDoc();
    applyOverride(sched, "fault", json::parse(R"({"schedule":
        [{"at_ns": 1000, "kind": "npu_fail", "npu": 1}]})"));
    EXPECT_THROW(youngDalySeed(sched), FatalError);

    // Zero checkpoint cost: Young/Daly degenerates.
    json::Value free_ckpt = faultyClusterDoc();
    applyOverride(free_ckpt, "cluster.checkpoint.cost_ns",
                  json::Value(int64_t{0}));
    EXPECT_THROW(youngDalySeed(free_ckpt), FatalError);
}

TEST(ResilienceStudy, RunsVariantsAndValidatesKeys)
{
    json::Object study;
    study["name"] = json::Value(std::string("mini"));
    study["config"] = faultyClusterDoc();
    study["seeds"] = json::Value(int64_t{2});
    json::Array placements;
    placements.push_back(json::Value(std::string("contiguous")));
    placements.push_back(json::Value(std::string("anti_affinity")));
    study["placements"] = json::Value(std::move(placements));

    json::Value report =
        runResilienceStudy(json::Value(study), /*threads=*/2);
    EXPECT_EQ(report.at("study").asString(), "mini");
    EXPECT_EQ(report.at("seeds").asInt(), 2);
    const json::Array &variants = report.at("variants").asArray();
    ASSERT_EQ(variants.size(), 2u);
    for (const json::Value &v : variants) {
        EXPECT_TRUE(v.has("placement"));
        EXPECT_GT(v.at("mean_goodput").asNumber(), 0.0);
        EXPECT_GE(v.at("p95_goodput").asNumber(),
                  v.at("mean_goodput").asNumber() * 0.5);
        EXPECT_GT(v.at("mean_availability").asNumber(), 0.0);
        EXPECT_EQ(v.at("failures").asInt(), 0);
    }
    // The full per-row store rides along for downstream analysis.
    EXPECT_EQ(report.at("results").at("rows").asArray().size(), 4u);

    // Unknown keys and malformed fields are user errors.
    study["typo"] = json::Value(true);
    EXPECT_THROW(runResilienceStudy(json::Value(study), 1),
                 FatalError);
    EXPECT_THROW(runResilienceStudy(json::parse(R"({"seeds": 2})"), 1),
                 FatalError);
}

TEST(ResilienceStudy, SampleStudyRoundTrips)
{
    std::string path = "/tmp/astra_test_resilience_sample.json";
    writeSampleResilienceStudy(path);
    json::Value doc = json::parseFile(path);
    EXPECT_TRUE(doc.has("config"));
    EXPECT_TRUE(doc.at("config").has("fault"));
    std::remove(path.c_str());
}

} // namespace
} // namespace sweep
} // namespace astra
