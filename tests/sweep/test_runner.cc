/** @file Tests for the parallel batch runner and the result cache. */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "sweep/result_store.h"
#include "sweep/runner.h"

namespace astra {
namespace sweep {
namespace {

/** Eight quick single-collective configurations over two topologies —
 *  heavy enough to exercise real simulations, light enough for CI. */
json::Value
smallSpec()
{
    return json::parse(R"json({
      "name": "runner-test",
      "base": {
        "topology": "Ring(4,100)_Switch(2,50)",
        "backend": "analytical",
        "workload": {"kind": "collective", "collective": "all-reduce",
                     "bytes": 1048576}
      },
      "axes": [
        {"path": "topology",
         "values": ["Ring(4,100)_Switch(2,50)", "FC(8,200)"]},
        {"path": "workload.bytes",
         "values": [262144, 1048576, 4194304, 16777216]}
      ]
    })json");
}

std::string
storeBytes(const SweepSpec &spec, const BatchOutcome &outcome)
{
    ResultStore store = ResultStore::fromBatch(spec, outcome);
    return store.toCsv() + store.toJson().dump(2);
}

TEST(BatchRunner, ResultsOrderedAndComplete)
{
    SweepSpec spec = SweepSpec::fromJson(smallSpec());
    BatchOutcome outcome = runBatch(spec);
    ASSERT_EQ(outcome.results.size(), 8u);
    EXPECT_EQ(outcome.threadsUsed, 1);
    EXPECT_EQ(outcome.failures, 0u);
    EXPECT_EQ(outcome.cacheHits, 0u);
    ASSERT_EQ(outcome.workerPoolStats.size(), 1u);
    for (size_t i = 0; i < outcome.results.size(); ++i) {
        EXPECT_EQ(outcome.results[i].config.index, i);
        EXPECT_GT(outcome.results[i].report.totalTime, 0.0);
        EXPECT_FALSE(outcome.results[i].fromCache);
        // The expanded config document is released after the run
        // (regenerable via spec.config(i)); only identity remains.
        EXPECT_TRUE(outcome.results[i].config.doc.isNull());
        EXPECT_NE(outcome.results[i].config.hash, 0u);
    }
    // Larger collectives take longer on the same topology.
    EXPECT_LT(outcome.results[0].report.totalTime,
              outcome.results[3].report.totalTime);
}

TEST(BatchRunner, DeterministicAcrossThreadCounts)
{
    SweepSpec spec = SweepSpec::fromJson(smallSpec());

    BatchOptions one;
    one.threads = 1;
    std::string bytes1 = storeBytes(spec, runBatch(spec, one));

    BatchOptions two;
    two.threads = 2;
    BatchOutcome out2 = runBatch(spec, two);
    EXPECT_EQ(out2.threadsUsed, 2);
    EXPECT_EQ(out2.workerPoolStats.size(), 2u);
    std::string bytes2 = storeBytes(spec, out2);

    BatchOptions eight;
    eight.threads = 8;
    std::string bytes8 = storeBytes(spec, runBatch(spec, eight));

    // The determinism guarantee: byte-identical rendered stores for
    // any thread count.
    EXPECT_EQ(bytes1, bytes2);
    EXPECT_EQ(bytes1, bytes8);
}

TEST(BatchRunner, ThreadsClampedToConfigCount)
{
    SweepSpec spec = SweepSpec::fromJson(smallSpec());
    BatchOptions opts;
    opts.threads = 64;
    BatchOutcome outcome = runBatch(spec, opts);
    EXPECT_EQ(outcome.threadsUsed, 8);
    EXPECT_EQ(outcome.failures, 0u);
}

TEST(BatchRunner, FailedConfigDoesNotAbortBatch)
{
    json::Value doc = smallSpec();
    // Second topology value cannot host the hybrid mp=3 mapping;
    // switch the workload so one axis value is invalid.
    doc.mutableObject()["axes"] = json::parse(R"json([
      {"path": "workload.mp", "values": [1, 3, 2]}
    ])json");
    applyOverride(doc, "base.workload",
                  json::parse(R"json({"kind": "hybrid", "model": "gpt3",
                                      "mp": 1, "sim_layers": 1})json"));
    SweepSpec spec = SweepSpec::fromJson(doc);
    BatchOutcome outcome = runBatch(spec);
    ASSERT_EQ(outcome.results.size(), 3u);
    EXPECT_EQ(outcome.failures, 1u);
    EXPECT_FALSE(outcome.results[0].failed);
    EXPECT_TRUE(outcome.results[1].failed);   // mp=3 over 8 NPUs.
    EXPECT_FALSE(outcome.results[1].error.empty());
    EXPECT_FALSE(outcome.results[2].failed);
}

TEST(BatchRunner, ExpansionErrorIsolatedPerRow)
{
    // An axis path traversing a scalar fails in spec.config(), not in
    // the simulation — it must still land on its row, not terminate
    // the process (worker threads would otherwise std::terminate).
    json::Value doc = smallSpec();
    doc.mutableObject()["axes"] = json::parse(R"json([
      {"path": "topology.size", "values": [1, 2]}
    ])json");
    SweepSpec spec = SweepSpec::fromJson(doc);
    BatchOptions opts;
    opts.threads = 2;
    BatchOutcome outcome = runBatch(spec, opts);
    ASSERT_EQ(outcome.results.size(), 2u);
    EXPECT_EQ(outcome.failures, 2u);
    for (const SweepResult &r : outcome.results) {
        EXPECT_TRUE(r.failed);
        EXPECT_FALSE(r.error.empty());
        // Placeholder axis values keep the table rectangular.
        EXPECT_EQ(r.config.axisValues.size(), 1u);
    }
    // The store still renders (header-aligned failed rows).
    ResultStore store = ResultStore::fromBatch(spec, outcome);
    EXPECT_NE(store.toCsv().find("failed: "), std::string::npos);
}

TEST(ResultCache, HitsSkipSimulationAndPreserveBytes)
{
    SweepSpec spec = SweepSpec::fromJson(smallSpec());
    ResultCache cache;
    BatchOptions opts;
    opts.cache = &cache;

    BatchOutcome cold = runBatch(spec, opts);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cache.size(), 8u);
    std::string cold_bytes = storeBytes(spec, cold);

    BatchOutcome warm = runBatch(spec, opts);
    EXPECT_EQ(warm.cacheHits, 8u);
    for (const SweepResult &r : warm.results)
        EXPECT_TRUE(r.fromCache);
    // Cached reports round-trip bit-exactly (%.17g doubles): rendered
    // stores stay byte-identical.
    EXPECT_EQ(storeBytes(spec, warm), cold_bytes);
}

TEST(ResultCache, InvalidationIsPerConfig)
{
    SweepSpec spec = SweepSpec::fromJson(smallSpec());
    ResultCache cache;
    BatchOptions opts;
    opts.cache = &cache;
    runBatch(spec, opts);

    // Change one axis value: only the four configs that contain it
    // re-simulate; the other four hit.
    json::Value doc = smallSpec();
    doc.mutableObject()["axes"] = json::parse(R"json([
      {"path": "topology",
       "values": ["Ring(4,100)_Switch(2,50)", "FC(4,200)"]},
      {"path": "workload.bytes",
       "values": [262144, 1048576, 4194304, 16777216]}
    ])json");
    SweepSpec changed = SweepSpec::fromJson(doc);
    BatchOutcome outcome = runBatch(changed, opts);
    EXPECT_EQ(outcome.cacheHits, 4u);
    EXPECT_EQ(cache.size(), 12u);
}

TEST(ResultCache, FileRoundTrip)
{
    SweepSpec spec = SweepSpec::fromJson(smallSpec());
    ResultCache cache;
    BatchOptions opts;
    opts.cache = &cache;
    BatchOutcome cold = runBatch(spec, opts);
    std::string path = "sweep_cache_test.json";
    cache.saveFile(path);

    ResultCache loaded;
    EXPECT_EQ(loaded.loadFile(path), 8u);
    BatchOptions warm_opts;
    warm_opts.cache = &loaded;
    BatchOutcome warm = runBatch(spec, warm_opts);
    EXPECT_EQ(warm.cacheHits, 8u);
    EXPECT_EQ(storeBytes(spec, warm), storeBytes(spec, cold));

    // Missing files load as empty, not as errors.
    ResultCache empty;
    EXPECT_EQ(empty.loadFile("does_not_exist_cache.json"), 0u);
    std::remove(path.c_str());
}

TEST(ResultCache, CorruptFileDegradesToCold)
{
    // A truncated/garbage cache file (killed run, disk hiccup) must
    // behave like a cold cache, not abort the sweep.
    std::string path = "sweep_cache_corrupt_test.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"kind\": \"astra-sweep-result-cac", f);
    std::fclose(f);

    ResultCache cache;
    EXPECT_EQ(cache.loadFile(path), 0u);
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());
}

TEST(ResultCache, MalformedEntryIsAMissNotACrash)
{
    // A cached report whose body has the wrong shape (hand-edited
    // file) must count as a miss and re-simulate — in a worker thread
    // an escaping FatalError would std::terminate the process.
    SweepSpec spec = SweepSpec::fromJson(smallSpec());
    // insert() always writes valid shapes, so craft a cache file whose
    // entry for every config has per_npu as a number, not an array.
    std::string path = "sweep_cache_poison_test.json";
    {
        std::string text = "{\"kind\": \"astra-sweep-result-cache\", "
                           "\"version\": \"" +
                           sweep::cacheFingerprint() +
                           "\", \"entries\": {";
        for (size_t i = 0; i < spec.configCount(); ++i) {
            if (i > 0)
                text += ',';
            text += '"' + configHashString(spec.config(i).hash) +
                    "\": {\"per_npu\": 7}";
        }
        text += "}}";
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs(text.c_str(), f);
        std::fclose(f);
    }
    ResultCache poisoned;
    EXPECT_EQ(poisoned.loadFile(path), spec.configCount());

    BatchOptions opts;
    opts.threads = 2;
    opts.cache = &poisoned;
    BatchOutcome outcome = runBatch(spec, opts);
    EXPECT_EQ(outcome.cacheHits, 0u); // every entry malformed -> miss.
    EXPECT_EQ(outcome.failures, 0u);  // every config re-simulated.
    std::remove(path.c_str());
}

TEST(ResultCache, WrongShapeFileDegradesToCold)
{
    // Valid JSON with the wrong structure ('entries' as an array)
    // must also degrade to a cold cache, not escape as FatalError.
    std::string path = "sweep_cache_shape_test.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::string text = "{\"kind\": \"astra-sweep-result-cache\", "
                       "\"version\": \"" +
                       cacheFingerprint() + "\", \"entries\": []}";
    std::fputs(text.c_str(), f);
    std::fclose(f);

    ResultCache cache;
    EXPECT_EQ(cache.loadFile(path), 0u);
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());
}

TEST(ResultCache, VersionMismatchRejected)
{
    // Entries written by a different build describe different
    // semantics; they must load as a cold cache. Both the legacy
    // integer version of pre-fingerprint builds and a wrong
    // fingerprint string are rejected.
    std::string path = "sweep_cache_version_test.json";
    for (const char *version : {"0", "2", "\"0123456789abcdef\""}) {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::string text = "{\"kind\": \"astra-sweep-result-cache\", "
                           "\"version\": " +
                           std::string(version) +
                           ", \"entries\": "
                           "{\"0000000000000001\": {\"workload\": "
                           "\"w\"}}}";
        std::fputs(text.c_str(), f);
        std::fclose(f);

        ResultCache cache;
        EXPECT_EQ(cache.loadFile(path), 0u) << version;
        EXPECT_EQ(cache.size(), 0u) << version;
    }
    std::remove(path.c_str());
}

TEST(ResultCache, SaveStampsTheBuildFingerprint)
{
    // The persisted version string is the automatic build fingerprint
    // (kSpecSchemaVersion + report field list), not the bare manual
    // constant — a report-schema change invalidates caches even if
    // the constant was not bumped.
    EXPECT_EQ(cacheFingerprint().size(), 16u); // 16-hex-digit hash.
    EXPECT_NE(cacheFingerprint(), std::to_string(kSpecSchemaVersion));

    std::string path = "sweep_cache_fingerprint_test.json";
    ResultCache cache;
    cache.insert(1, Report{});
    cache.saveFile(path);
    json::Value doc = json::parseFile(path);
    EXPECT_EQ(doc.getString("version", ""), cacheFingerprint());

    ResultCache reload;
    EXPECT_EQ(reload.loadFile(path), 1u);
    std::remove(path.c_str());
}

} // namespace
} // namespace sweep
} // namespace astra
