/**
 * @file
 * Full-stack tests for `backend: "flow"`: the collective engine, the
 * workload engine, and the sweep runner drive the FlowNetwork
 * unchanged through the NetworkApi, produce sane congestion-aware
 * results, and stay byte-identical across thread counts.
 */
#include <gtest/gtest.h>

#include "astra/config.h"
#include "astra/simulator.h"
#include "collective/engine.h"
#include "network/flow/flow_network.h"
#include "sweep/result_store.h"
#include "sweep/runner.h"
#include "workload/builders.h"

namespace astra {
namespace {

using namespace astra::literals;

TEST(FlowSimulator, BackendParsesFromConfig)
{
    json::Value doc = json::parse(R"({"backend": "flow"})");
    EXPECT_EQ(backendFromJson(doc), NetworkBackendKind::Flow);
}

TEST(FlowSimulator, CollectiveEngineRunsOnFlowBackend)
{
    Topology topo({{BlockType::Ring, 8, 100.0, 500.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    CollectiveEngine engine(net);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.bytes = 64_MB;
    req.chunks = 2;
    TimeNs finish = runCollective(engine, req).finish;

    // Ring All-Reduce moves 2(k-1)/k of the tensor over every NPU's
    // ring port; the fluid model cannot beat that bandwidth bound and
    // chunk overlap keeps it within a small factor of it.
    TimeNs bound = 2.0 * 7.0 / 8.0 * 64_MB / 100.0;
    EXPECT_GT(finish, bound);
    EXPECT_LT(finish, bound * 1.25);
}

TEST(FlowSimulator, EndToEndRunPopulatesUtilizationStats)
{
    Topology topo({{BlockType::Ring, 4, 100.0, 500.0},
                   {BlockType::Switch, 2, 50.0, 700.0}});
    SimulatorConfig cfg;
    cfg.backend = NetworkBackendKind::Flow;
    Simulator sim(topo, cfg);
    Report report = sim.run(
        buildSingleCollective(topo, CollectiveType::AllReduce, 8_MB));

    EXPECT_GT(report.totalTime, 0.0);
    EXPECT_GT(report.messages, 0u);
    ASSERT_EQ(report.busyTimePerDim.size(), 2u);
    EXPECT_GT(report.busyTimePerDim[0], 0.0);
    EXPECT_GT(report.busyTimePerDim[1], 0.0);
    EXPECT_EQ(report.linksPerDim[0], 16);
    EXPECT_GT(report.maxLinkUtilization(), 0.0);
    EXPECT_LE(report.maxLinkUtilization(), 1.0 + 1e-9);
    std::vector<double> busy = report.dimBusyFraction();
    ASSERT_EQ(busy.size(), 2u);
    for (size_t d = 0; d < busy.size(); ++d) {
        // Mean busy fraction per dim: positive, physical, and never
        // above the hottest single link's fraction.
        EXPECT_GT(busy[d], 0.0);
        EXPECT_LE(busy[d], report.maxLinkUtilization() + 1e-12);
    }

    // Same run, same backend: byte-identical serialized reports.
    Simulator again(topo, cfg);
    Report repeat = again.run(
        buildSingleCollective(topo, CollectiveType::AllReduce, 8_MB));
    EXPECT_EQ(reportToJson(report).dump(), reportToJson(repeat).dump());
}

TEST(FlowSimulator, SweepBackendAxisIsByteIdenticalAcrossThreads)
{
    json::Value spec_doc = json::parse(R"json({
      "name": "flow-backend-axis",
      "base": {
        "topology": "Ring(4,100)_Switch(2,50)",
        "backend": "analytical",
        "workload": {"kind": "collective", "collective": "all-reduce",
                     "bytes": 1048576}
      },
      "axes": [
        {"path": "backend",
         "values": ["analytical", "flow", "packet"]},
        {"path": "workload.bytes", "values": [262144, 4194304]}
      ]
    })json");
    sweep::SweepSpec spec = sweep::SweepSpec::fromJson(spec_doc);

    auto run_at = [&](int threads) {
        sweep::BatchOptions opts;
        opts.threads = threads;
        sweep::BatchOutcome outcome = sweep::runBatch(spec, opts);
        EXPECT_EQ(outcome.failures, 0u);
        sweep::ResultStore store =
            sweep::ResultStore::fromBatch(spec, outcome);
        return store.toCsv() + store.toJson().dump(2);
    };

    std::string one = run_at(1);
    std::string two = run_at(2);
    std::string eight = run_at(8);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);

    // The flow rows must be real simulations with utilization data.
    sweep::BatchOutcome outcome = sweep::runBatch(spec);
    for (const sweep::SweepResult &r : outcome.results) {
        EXPECT_GT(r.report.totalTime, 0.0);
        EXPECT_GT(r.report.maxLinkUtilization(), 0.0);
    }
}

TEST(FlowSimulator, FlowSeesContentionAnalyticalMisses)
{
    // Hierarchical all-to-all-heavy traffic: the congestion-aware
    // backend can only be slower (or equal), never faster, than the
    // congestion-unaware closed form on the same workload.
    Topology topo({{BlockType::Ring, 4, 100.0, 500.0},
                   {BlockType::Switch, 4, 25.0, 700.0}});
    Workload wl =
        buildSingleCollective(topo, CollectiveType::AllToAll, 16_MB);

    SimulatorConfig flow_cfg;
    flow_cfg.backend = NetworkBackendKind::Flow;
    Simulator flow_sim(topo, flow_cfg);
    TimeNs t_flow = flow_sim.run(wl).totalTime;

    SimulatorConfig ana_cfg;
    ana_cfg.backend = NetworkBackendKind::AnalyticalPure;
    Simulator ana_sim(topo, ana_cfg);
    TimeNs t_ana = ana_sim.run(wl).totalTime;

    EXPECT_GE(t_flow, t_ana * (1.0 - 1e-9));
}

} // namespace
} // namespace astra
