/**
 * @file
 * LinkGraph expansion and routing tests: per-BlockType link rules,
 * node numbering, dimension-ordered paths, latency sums, and path
 * caching (docs/network.md).
 */
#include <gtest/gtest.h>

#include "network/flow/link_graph.h"
#include "network/network_api.h"

namespace astra {
namespace {

TEST(LinkGraph, RingExpandsBidirectionalNeighbourLinks)
{
    Topology topo({{BlockType::Ring, 8, 100.0, 300.0}});
    LinkGraph g(topo);
    // 8 NPUs x 2 directions.
    EXPECT_EQ(g.linkCount(), 16u);
    EXPECT_EQ(g.numNodes(), 8);
    EXPECT_EQ(g.linksPerDim()[0], 16);
    for (const LinkGraph::Link &l : g.links()) {
        EXPECT_DOUBLE_EQ(l.bandwidth, 100.0);
        EXPECT_DOUBLE_EQ(l.latency, 300.0);
        EXPECT_EQ(l.dim, 0);
    }
}

TEST(LinkGraph, RingOfTwoHasOneLinkPerDirection)
{
    Topology topo({{BlockType::Ring, 2, 100.0, 300.0}});
    LinkGraph g(topo);
    // Both "directions" reach the same neighbour; no duplicates.
    EXPECT_EQ(g.linkCount(), 2u);
}

TEST(LinkGraph, FullyConnectedSplitsBandwidthAcrossPairLinks)
{
    Topology topo({{BlockType::FullyConnected, 8, 210.0, 250.0}});
    LinkGraph g(topo);
    // 8*7 ordered pairs.
    EXPECT_EQ(g.linkCount(), 56u);
    for (const LinkGraph::Link &l : g.links())
        EXPECT_DOUBLE_EQ(l.bandwidth, 210.0 / 7.0);
}

TEST(LinkGraph, SwitchAddsExplicitSwitchNodes)
{
    Topology topo({{BlockType::Switch, 8, 150.0, 400.0}});
    LinkGraph g(topo);
    EXPECT_EQ(g.numNodes(), 9); // 8 NPUs + 1 switch.
    EXPECT_EQ(g.linkCount(), 16u); // up + down per NPU.
    EXPECT_EQ(g.switchNodeOf(0, 3), 8);
}

TEST(LinkGraph, MultiDimCountsPerDimension)
{
    Topology topo({{BlockType::Ring, 4, 150.0, 500.0},
                   {BlockType::Switch, 2, 50.0, 700.0}});
    LinkGraph g(topo);
    // Dim 0: 2 groups x 4 NPUs x 2 directions = 16 ring links.
    // Dim 1: 4 groups x 2 members x (up+down) = 16 switch links.
    EXPECT_EQ(g.linksPerDim()[0], 16);
    EXPECT_EQ(g.linksPerDim()[1], 16);
    EXPECT_EQ(g.numNodes(), 8 + 4);
}

TEST(LinkGraph, RingPathTakesMinimalDirection)
{
    Topology topo({{BlockType::Ring, 8, 100.0, 300.0}});
    LinkGraph g(topo);
    const std::vector<LinkId> *fwd = g.pathFor(0, 3, 0);
    EXPECT_EQ(fwd->size(), 3u);
    const std::vector<LinkId> *bwd = g.pathFor(0, 6, 0);
    EXPECT_EQ(bwd->size(), 2u); // 0 -> 7 -> 6 wraps backwards.
    EXPECT_DOUBLE_EQ(g.pathLatency(*fwd), 3 * 300.0);
}

TEST(LinkGraph, SwitchPathGoesThroughTheSwitch)
{
    Topology topo({{BlockType::Switch, 8, 150.0, 400.0}});
    LinkGraph g(topo);
    const std::vector<LinkId> *path = g.pathFor(1, 5, 0);
    ASSERT_EQ(path->size(), 2u);
    EXPECT_EQ(g.link((*path)[0]).to, 8);   // up-link into the switch.
    EXPECT_EQ(g.link((*path)[1]).from, 8); // down-link out of it.
    EXPECT_DOUBLE_EQ(g.pathLatency(*path), 2 * 400.0);
}

TEST(LinkGraph, AutoRoutePathIsDimensionOrdered)
{
    Topology topo({{BlockType::Ring, 4, 150.0, 500.0},
                   {BlockType::Switch, 2, 50.0, 700.0}});
    LinkGraph g(topo);
    // 0 -> 5: one ring hop (0->1), then switch up/down (1 -> sw -> 5).
    const std::vector<LinkId> *path = g.pathFor(0, 5, kAutoRoute);
    ASSERT_EQ(path->size(), 3u);
    EXPECT_EQ(g.link((*path)[0]).dim, 0);
    EXPECT_EQ(g.link((*path)[1]).dim, 1);
    EXPECT_EQ(g.link((*path)[2]).dim, 1);
    EXPECT_DOUBLE_EQ(g.pathLatency(*path), 500.0 + 2 * 700.0);
}

TEST(LinkGraph, PathsAreCachedWithStableStorage)
{
    Topology topo({{BlockType::Ring, 8, 100.0, 300.0}});
    LinkGraph g(topo);
    const std::vector<LinkId> *a = g.pathFor(0, 3, 0);
    // A different lookup must not invalidate the first pointer.
    for (NpuId d = 1; d < 8; ++d)
        g.pathFor(0, d, 0);
    EXPECT_EQ(g.pathFor(0, 3, 0), a);
    EXPECT_EQ(a->size(), 3u);
}

} // namespace
} // namespace astra
