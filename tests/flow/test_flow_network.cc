/**
 * @file
 * FlowNetwork behaviour tests: closed-form agreement when
 * uncongested, exact max-min fair sharing under contention (1/2 and
 * 1/N rates, bandwidth redistribution on departure), event-driven
 * re-rating, simRecv matching, per-link utilization stats, slot
 * recycling, and byte-identical determinism.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "event/event_queue.h"
#include "network/analytical.h"
#include "network/flow/flow_network.h"

namespace astra {
namespace {

using namespace astra::literals;

/** Deliver one message and return its delivery time. */
TimeNs
oneSend(NetworkApi &net, EventQueue &eq, NpuId src, NpuId dst,
        Bytes bytes, int dim)
{
    TimeNs delivered = -1.0;
    SendHandlers h;
    h.onDelivered = [&] { delivered = eq.now(); };
    net.simSend(src, dst, bytes, dim, kNoTag, std::move(h));
    eq.run();
    return delivered;
}

TEST(FlowNetwork, UncongestedRingMatchesAnalyticalClosedForm)
{
    Topology topo({{BlockType::Ring, 8, 100.0, 300.0}});
    Bytes bytes = 1_MB;

    EventQueue eq_a;
    AnalyticalNetwork a(eq_a, topo);
    TimeNs t_a = oneSend(a, eq_a, 0, 3, bytes, 0);

    EventQueue eq_f;
    FlowNetwork f(eq_f, topo);
    TimeNs t_f = oneSend(f, eq_f, 0, 3, bytes, 0);

    EXPECT_NEAR(t_f, t_a, kTimeEpsNs);
    EXPECT_NEAR(t_f, bytes / 100.0 + 3 * 300.0, kTimeEpsNs);
}

TEST(FlowNetwork, UncongestedSwitchMatchesAnalyticalClosedForm)
{
    // The fluid model serializes once at the bottleneck (no
    // store-and-forward double serialization), exactly like the
    // analytical equation.
    Topology topo({{BlockType::Switch, 8, 150.0, 400.0}});
    Bytes bytes = 1_MB;

    EventQueue eq_a;
    AnalyticalNetwork a(eq_a, topo);
    TimeNs t_a = oneSend(a, eq_a, 0, 5, bytes, 0);

    EventQueue eq_f;
    FlowNetwork f(eq_f, topo);
    TimeNs t_f = oneSend(f, eq_f, 0, 5, bytes, 0);

    EXPECT_NEAR(t_f, t_a, kTimeEpsNs);
    EXPECT_NEAR(t_f, bytes / 150.0 + 2 * 400.0, kTimeEpsNs);
}

TEST(FlowNetwork, AutoRouteMatchesAnalyticalAcrossDimensions)
{
    // Dimension-ordered multi-dim route: the flow's max-min rate is
    // the bottleneck link bandwidth, and hop latencies add up — the
    // analytical closed form, reproduced by the solver.
    Topology topo({{BlockType::Ring, 4, 150.0, 500.0},
                   {BlockType::Switch, 2, 50.0, 700.0}});
    Bytes bytes = 4_MB;
    NpuId src = 0, dst = 5; // one ring hop + through the switch.

    EventQueue eq_a;
    AnalyticalNetwork a(eq_a, topo);
    TimeNs t_a = oneSend(a, eq_a, src, dst, bytes, kAutoRoute);

    EventQueue eq_f;
    FlowNetwork f(eq_f, topo);
    TimeNs t_f = oneSend(f, eq_f, src, dst, bytes, kAutoRoute);

    EXPECT_NEAR(t_f, t_a, kTimeEpsNs);
    EXPECT_NEAR(t_f, bytes / 50.0 + 500.0 + 2 * 700.0, kTimeEpsNs);
}

TEST(FlowNetwork, TwoFlowsSharingALinkGetHalfBandwidthEach)
{
    Topology topo({{BlockType::Switch, 4, 100.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    Bytes bytes = 1_MB;

    std::vector<TimeNs> delivered;
    for (NpuId src : {1, 2}) {
        SendHandlers h;
        h.onDelivered = [&delivered, &eq] {
            delivered.push_back(eq.now());
        };
        net.simSend(src, 0, bytes, 0, kNoTag, std::move(h));
    }
    eq.run();

    // Both flows share the down-link into NPU 0: exactly bw/2 each.
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_DOUBLE_EQ(delivered[0], 2.0 * bytes / 100.0);
    EXPECT_DOUBLE_EQ(delivered[1], 2.0 * bytes / 100.0);
}

TEST(FlowNetwork, SwitchIncastScalesAsOneOverN)
{
    const int kSenders = 16;
    Topology topo({{BlockType::Switch, kSenders + 1, 100.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    Bytes bytes = 1_MB;

    int done = 0;
    TimeNs last = 0.0;
    for (NpuId src = 1; src <= kSenders; ++src) {
        SendHandlers h;
        h.onDelivered = [&] {
            ++done;
            last = std::max(last, eq.now());
        };
        net.simSend(src, 0, bytes, 0, kNoTag, std::move(h));
    }
    eq.run();

    EXPECT_EQ(done, kSenders);
    // All N share the destination's down-link: each gets exactly
    // bw/N, so the incast completes at N * (bytes / bw).
    EXPECT_DOUBLE_EQ(last, kSenders * bytes / 100.0);
    // The whole incast needs ONE max-min solve: the same-timestamp
    // arrivals batch into a single deferred re-rate, and the
    // departure batch leaves no flows behind to re-rate.
    EXPECT_EQ(net.solveCount(), 1u);
}

TEST(FlowNetwork, MaxMinRedistributesHeadroomAcrossBottlenecks)
{
    // Classic water-filling scenario on Ring(4), latency 0, bw 90:
    //   A: 0 -> 2 (links 0->1 and 1->2), B: 0 -> 1, C, D: 1 -> 2.
    // Link 1->2 is the first bottleneck (A, C, D -> 30 each); B then
    // soaks up the leftover on 0->1 (90 - 30 = 60).
    Topology topo({{BlockType::Ring, 4, 90.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    Bytes bytes = 900.0 * kKB;

    TimeNs t_a = -1, t_b = -1, t_c = -1, t_d = -1;
    auto send = [&](NpuId src, NpuId dst, TimeNs *out) {
        SendHandlers h;
        h.onDelivered = [out, &eq] { *out = eq.now(); };
        net.simSend(src, dst, bytes, 0, kNoTag, std::move(h));
    };
    send(0, 2, &t_a);
    send(0, 1, &t_b);
    send(1, 2, &t_c);
    send(1, 2, &t_d);
    eq.run();

    EXPECT_NEAR(t_b, bytes / 60.0, 1e-6);          // 15000 ns.
    EXPECT_NEAR(t_a, bytes / 30.0, 1e-6);          // 30000 ns.
    EXPECT_NEAR(t_c, bytes / 30.0, 1e-6);
    EXPECT_NEAR(t_d, bytes / 30.0, 1e-6);
}

TEST(FlowNetwork, DeparturesAccelerateRemainingFlows)
{
    // Same topology; C and D carry half the bytes. When B, C, D all
    // finish at t = 15000 ns, A (450 KB left) gets the full 90 GB/s
    // and must finish at 20000 ns — its original completion event
    // (predicted for 30000 ns) is superseded by the re-rate.
    Topology topo({{BlockType::Ring, 4, 90.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);

    TimeNs t_a = -1, t_b = -1, t_c = -1, t_d = -1;
    auto send = [&](NpuId src, NpuId dst, Bytes bytes, TimeNs *out) {
        SendHandlers h;
        h.onDelivered = [out, &eq] { *out = eq.now(); };
        net.simSend(src, dst, bytes, 0, kNoTag, std::move(h));
    };
    send(0, 2, 900.0 * kKB, &t_a);
    send(0, 1, 900.0 * kKB, &t_b);
    send(1, 2, 450.0 * kKB, &t_c);
    send(1, 2, 450.0 * kKB, &t_d);
    eq.run();

    EXPECT_NEAR(t_b, 15000.0, 1e-6);
    EXPECT_NEAR(t_c, 15000.0, 1e-6);
    EXPECT_NEAR(t_d, 15000.0, 1e-6);
    EXPECT_NEAR(t_a, 20000.0, 1e-6);
}

TEST(FlowNetwork, LateArrivalSlowsAnInFlightFlow)
{
    // A starts alone at full bandwidth; B arrives halfway through and
    // the link is split fairly from that instant on.
    Topology topo({{BlockType::Ring, 2, 100.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    Bytes bytes = 1_MB; // alone: 10000 ns.

    TimeNs t_a = -1, t_b = -1;
    SendHandlers ha;
    ha.onDelivered = [&] { t_a = eq.now(); };
    net.simSend(0, 1, bytes, 0, kNoTag, std::move(ha));

    eq.schedule(5000.0, [&] {
        SendHandlers hb;
        hb.onDelivered = [&] { t_b = eq.now(); };
        net.simSend(0, 1, bytes, 0, kNoTag, std::move(hb));
    });
    eq.run();

    // A: 500 KB at 100, then 500 KB at 50 -> 15000 ns. B: 500 KB at
    // 50 while A drains, then 500 KB at 100 -> 20000 ns.
    EXPECT_NEAR(t_a, 15000.0, 1e-6);
    EXPECT_NEAR(t_b, 20000.0, 1e-6);
}

TEST(FlowNetwork, InjectionPrecedesDeliveryByPathLatency)
{
    Topology topo({{BlockType::Switch, 4, 100.0, 400.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);

    TimeNs injected = -1.0, delivered = -1.0;
    SendHandlers h;
    h.onInjected = [&] { injected = eq.now(); };
    h.onDelivered = [&] { delivered = eq.now(); };
    net.simSend(1, 2, 1_MB, 0, kNoTag, std::move(h));
    eq.run();

    EXPECT_NEAR(injected, 1_MB / 100.0, kTimeEpsNs);
    EXPECT_NEAR(delivered - injected, 2 * 400.0, kTimeEpsNs);
}

TEST(FlowNetwork, SimRecvMatchingAndLoopback)
{
    Topology topo({{BlockType::Ring, 4, 100.0, 100.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);

    // Posted receive fires at delivery time.
    TimeNs recv_at = -1.0;
    net.simRecv(1, 0, 7, [&] { recv_at = eq.now(); });
    net.simSend(0, 1, 1000.0, 0, 7, SendHandlers{});

    // Loopback costs no network time.
    TimeNs loop_at = -1.0;
    SendHandlers h;
    h.onDelivered = [&] { loop_at = eq.now(); };
    net.simSend(2, 2, 1_MB, 0, kNoTag, std::move(h));

    eq.run();
    EXPECT_NEAR(recv_at, 1000.0 / 100.0 + 100.0, kTimeEpsNs);
    EXPECT_DOUBLE_EQ(loop_at, 0.0);
}

TEST(FlowNetwork, PerLinkUtilizationStats)
{
    Topology topo({{BlockType::Ring, 8, 100.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    EXPECT_EQ(net.stats().linksPerDim[0], 16);

    // One flow over two hops: both links busy for bytes/bw each.
    oneSend(net, eq, 0, 2, 1_MB, 0);
    EXPECT_NEAR(net.stats().busyTimePerDim[0], 2 * 1_MB / 100.0, 1e-6);
    EXPECT_NEAR(net.stats().maxLinkBusyNs, 1_MB / 100.0, 1e-6);
    EXPECT_DOUBLE_EQ(net.stats().bytesPerDim[0], 1_MB);
    EXPECT_EQ(net.stats().messages, 1u);
}

TEST(FlowNetwork, FlowSlotsAreRecycled)
{
    Topology topo({{BlockType::Ring, 4, 100.0, 100.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    for (int i = 0; i < 5; ++i)
        oneSend(net, eq, 0, 1, 1000.0, 0);
    EXPECT_EQ(net.flowSlots(), 1u); // sequential flows reuse one slot.
    EXPECT_EQ(net.activeFlowCount(), 0u);
}

/** Chaotic congestion workload: staggered sends over a hierarchical
 *  topology; returns every delivery time in completion order. */
std::vector<TimeNs>
chaosDeliveries(uint64_t seed)
{
    Topology topo({{BlockType::Ring, 4, 150.0, 500.0},
                   {BlockType::Switch, 4, 50.0, 700.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    Rng rng(seed);
    std::vector<TimeNs> deliveries;

    for (int i = 0; i < 200; ++i) {
        NpuId src = static_cast<NpuId>(rng.uniformInt(0, 15));
        NpuId dst = static_cast<NpuId>(rng.uniformInt(0, 15));
        Bytes bytes = rng.uniform(1.0, 4.0) * 256.0 * kKB;
        TimeNs at = rng.uniform(0.0, 50000.0);
        eq.schedule(at, [&net, &eq, &deliveries, src, dst, bytes] {
            SendHandlers h;
            h.onDelivered = [&deliveries, &eq] {
                deliveries.push_back(eq.now());
            };
            net.simSend(src, dst, bytes, kAutoRoute, kNoTag,
                        std::move(h));
        });
    }
    eq.run();
    return deliveries;
}

TEST(FlowNetwork, RepeatedRunsAreByteIdentical)
{
    std::vector<TimeNs> a = chaosDeliveries(42);
    std::vector<TimeNs> b = chaosDeliveries(42);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), 200u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "delivery " << i; // exact doubles.
}

} // namespace
} // namespace astra
