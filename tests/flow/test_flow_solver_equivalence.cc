/**
 * @file
 * Incremental vs full max-min solver equivalence (docs/network.md).
 *
 * The incremental solver's contract is *bit-stable equivalence*: only
 * re-rating the affected component (flows transitively sharing a link
 * with a changed flow), lazily integrating bytes per flow, and keeping
 * the completion events of rate-unchanged flows must produce results
 * byte-identical to re-solving every active flow at every dirty batch.
 * `setFullSolveVerify(true)` runs the full per-component fill
 * alongside every incremental solve and panics on any divergence
 * (rates inside the affected set, rate/prediction drift outside it);
 * the chaos tests here drive both modes end-to-end over randomized
 * 200+ flow workloads and compare everything observable — delivery
 * times, executed events, per-link busy time, solver counters — with
 * exact double equality. Targeted tests pin the component-isolation
 * property itself: a flow on disjoint links is untouched by a solve
 * (rate, event epoch, and integration timestamp unchanged).
 */
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "event/event_queue.h"
#include "network/flow/flow_network.h"

namespace astra {
namespace {

using namespace astra::literals;

struct ChaosResult
{
    std::vector<TimeNs> deliveries; //!< in completion order.
    uint64_t events = 0;
    TimeNs finalTime = 0.0;
    std::vector<TimeNs> linkBusy; //!< per link, end of run.
    FlowNetwork::SolverStats solver;
};

/** Randomized staggered congestion workload (`flows` messages over
 *  `topo`), run with or without the full-solve verification pass. */
ChaosResult
runChaos(const Topology &topo, uint64_t seed, int flows, bool verify)
{
    EventQueue eq;
    FlowNetwork net(eq, topo);
    net.setFullSolveVerify(verify);
    Rng rng(seed);
    ChaosResult out;

    int npus = topo.npus();
    for (int i = 0; i < flows; ++i) {
        NpuId src = static_cast<NpuId>(rng.uniformInt(0, npus - 1));
        NpuId dst = static_cast<NpuId>(rng.uniformInt(0, npus - 1));
        Bytes bytes = rng.uniform(1.0, 4.0) * 256.0 * kKB;
        TimeNs at = rng.uniform(0.0, 60000.0);
        eq.schedule(at, [&net, &eq, &out, src, dst, bytes] {
            SendHandlers h;
            h.onDelivered = [&out, &eq] {
                out.deliveries.push_back(eq.now());
            };
            net.simSend(src, dst, bytes, kAutoRoute, kNoTag,
                        std::move(h));
        });
    }
    eq.run();

    out.events = eq.executedEvents();
    out.finalTime = eq.now();
    out.linkBusy.reserve(net.graph().linkCount());
    for (LinkId l = 0; l < net.graph().linkCount(); ++l)
        out.linkBusy.push_back(net.linkBusyNs(l));
    out.solver = net.solverStats();
    return out;
}

void
expectIdentical(const ChaosResult &inc, const ChaosResult &full,
                size_t expected_deliveries)
{
    ASSERT_EQ(inc.deliveries.size(), expected_deliveries);
    ASSERT_EQ(full.deliveries.size(), expected_deliveries);
    for (size_t i = 0; i < inc.deliveries.size(); ++i)
        EXPECT_EQ(inc.deliveries[i], full.deliveries[i])
            << "delivery " << i; // exact doubles.
    EXPECT_EQ(inc.events, full.events);
    EXPECT_EQ(inc.finalTime, full.finalTime);
    ASSERT_EQ(inc.linkBusy.size(), full.linkBusy.size());
    for (size_t l = 0; l < inc.linkBusy.size(); ++l)
        EXPECT_EQ(inc.linkBusy[l], full.linkBusy[l]) << "link " << l;
    // The verification pass is read-only: the work the incremental
    // solver reports must not depend on it.
    EXPECT_EQ(inc.solver.solves, full.solver.solves);
    EXPECT_EQ(inc.solver.flowsTouched, full.solver.flowsTouched);
    EXPECT_EQ(inc.solver.componentsTouched,
              full.solver.componentsTouched);
    EXPECT_EQ(inc.solver.componentFracSum, full.solver.componentFracSum);
}

TEST(FlowSolverEquivalence, ChaosHierarchicalRingSwitch)
{
    // 240 staggered flows over Ring(4) x Switch(4): multi-hop paths,
    // heavy sharing, plenty of mid-flight arrivals and departures.
    Topology topo({{BlockType::Ring, 4, 150.0, 500.0},
                   {BlockType::Switch, 4, 50.0, 700.0}});
    ChaosResult inc = runChaos(topo, 42, 240, false);
    ChaosResult full = runChaos(topo, 42, 240, true);
    // Loopback picks (src == dst) deliver without entering the solver,
    // so the delivery count is always the full 240.
    expectIdentical(inc, full, 240);
    EXPECT_GT(inc.solver.solves, 0u);
    // The incidence walk must be earning its keep on this workload:
    // staggered arrivals/departures leave most solves touching only a
    // slice of the active set.
    EXPECT_LT(inc.solver.avgComponentFrac(), 1.0);
}

TEST(FlowSolverEquivalence, ChaosFullyConnectedSwitch)
{
    // Per-pair FullyConnected links plus a switch tier: many small
    // disjoint components, the regime where incremental solving skips
    // the most work.
    Topology topo({{BlockType::FullyConnected, 8, 120.0, 300.0},
                   {BlockType::Switch, 4, 60.0, 600.0}});
    ChaosResult inc = runChaos(topo, 1234, 220, false);
    ChaosResult full = runChaos(topo, 1234, 220, true);
    expectIdentical(inc, full, 220);
    EXPECT_LT(inc.solver.avgComponentFrac(), 1.0);
}

TEST(FlowSolverEquivalence, ChaosSecondSeedIsAlsoByteIdentical)
{
    Topology topo({{BlockType::Ring, 4, 150.0, 500.0},
                   {BlockType::Switch, 4, 50.0, 700.0}});
    ChaosResult inc = runChaos(topo, 777, 200, false);
    ChaosResult full = runChaos(topo, 777, 200, true);
    expectIdentical(inc, full, 200);
}

TEST(FlowSolverEquivalence, DisjointComponentFlowIsUntouched)
{
    // Two switch groups: {0,1} and {2,3} in dim 0 — flows A (0 -> 1)
    // and B (2 -> 3) share no link. A finishes first; the departure
    // solve must not touch B at all: same rate, same completion-event
    // epoch, same lazy-integration timestamp.
    Topology topo({{BlockType::Switch, 2, 100.0, 0.0},
                   {BlockType::Switch, 2, 100.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    net.setFullSolveVerify(true);

    TimeNs t_a = -1.0, t_b = -1.0;
    auto send = [&](NpuId src, NpuId dst, Bytes bytes, TimeNs *out) {
        SendHandlers h;
        h.onDelivered = [out, &eq] { *out = eq.now(); };
        net.simSend(src, dst, bytes, 0, kNoTag, std::move(h));
    };
    send(0, 1, 100.0 * kKB, &t_a); // done at 1000 ns.
    send(2, 3, 800.0 * kKB, &t_b); // done at 8000 ns.

    FlowNetwork::FlowProbe before{}, after{};
    bool probed = false;
    // Between A's completion (1000 ns, plus its zero-delay re-solve)
    // and B's completion: B must be the only active flow, bit-equal to
    // its state right after the initial solve.
    eq.schedule(500.0, [&] {
        ASSERT_EQ(net.activeFlowCount(), 2u);
        for (size_t i = 0; i < 2; ++i)
            if (net.probeActiveFlow(i).src == 2)
                before = net.probeActiveFlow(i);
    });
    eq.schedule(4000.0, [&] {
        ASSERT_EQ(net.activeFlowCount(), 1u);
        after = net.probeActiveFlow(0);
        probed = true;
    });
    eq.run();

    ASSERT_TRUE(probed);
    EXPECT_EQ(after.src, 2);
    EXPECT_EQ(after.rate, before.rate);          // still the full 100.
    EXPECT_EQ(after.rate, 100.0);
    EXPECT_EQ(after.epoch, before.epoch);        // event never moved.
    EXPECT_EQ(after.lastUpdateNs, before.lastUpdateNs); // never settled.
    EXPECT_EQ(after.predictedFinishNs, before.predictedFinishNs);
    EXPECT_EQ(after.remaining, before.remaining); // lazy: untouched.

    EXPECT_DOUBLE_EQ(t_a, 1000.0);
    EXPECT_DOUBLE_EQ(t_b, 8000.0);

    // Work accounting: the arrival batch solved two one-flow
    // components; A's departure solve found nothing to re-rate (B is
    // unreachable from A's links); B's departure left no flows.
    const FlowNetwork::SolverStats &s = net.solverStats();
    EXPECT_EQ(s.solves, 2u);
    EXPECT_EQ(s.flowsTouched, 2u);
    EXPECT_EQ(s.componentsTouched, 2u);
    EXPECT_DOUBLE_EQ(s.avgComponentFrac(), 0.5);
}

TEST(FlowSolverEquivalence, SharedLinkFlowIsReRated)
{
    // Control for the isolation test: C shares B's switch group, so
    // C's departure must re-rate B (new epoch, new rate, integration
    // timestamp advanced to the departure instant).
    Topology topo({{BlockType::Switch, 2, 100.0, 0.0},
                   {BlockType::Switch, 2, 100.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    net.setFullSolveVerify(true);

    TimeNs t_b = -1.0, t_c = -1.0;
    auto send = [&](NpuId src, NpuId dst, Bytes bytes, TimeNs *out) {
        SendHandlers h;
        h.onDelivered = [out, &eq] { *out = eq.now(); };
        net.simSend(src, dst, bytes, 0, kNoTag, std::move(h));
    };
    send(2, 3, 800.0 * kKB, &t_b);
    send(2, 3, 100.0 * kKB, &t_c); // shares both links with B.

    FlowNetwork::FlowProbe before{}, after{};
    eq.schedule(500.0, [&] {
        for (size_t i = 0; i < net.activeFlowCount(); ++i)
            if (net.probeActiveFlow(i).remaining > 400.0 * kKB)
                before = net.probeActiveFlow(i);
    });
    // C (50 GB/s each) finishes at 2000 ns; B then re-rates to 100.
    eq.schedule(4000.0, [&] {
        ASSERT_EQ(net.activeFlowCount(), 1u);
        after = net.probeActiveFlow(0);
    });
    eq.run();

    EXPECT_EQ(before.rate, 50.0);
    EXPECT_EQ(after.rate, 100.0);
    EXPECT_GT(after.epoch, before.epoch);
    EXPECT_EQ(after.lastUpdateNs, 2000.0); // settled at the re-rate.
    EXPECT_DOUBLE_EQ(t_c, 2000.0);
    // B: 800 KB total, 100 KB/µs shared phase then full rate:
    // 2000 ns at 50 -> 700 KB left -> 7000 ns more.
    EXPECT_DOUBLE_EQ(t_b, 9000.0);
}

TEST(FlowSolverEquivalence, WaterFillingAgreesUnderVerify)
{
    // The PR 3 water-filling scenario run entirely under the
    // full-solve assertion path: multi-level bottlenecks, departures,
    // headroom redistribution.
    Topology topo({{BlockType::Ring, 4, 90.0, 0.0}});
    EventQueue eq;
    FlowNetwork net(eq, topo);
    net.setFullSolveVerify(true);
    Bytes bytes = 900.0 * kKB;

    TimeNs t_a = -1, t_b = -1, t_c = -1, t_d = -1;
    auto send = [&](NpuId src, NpuId dst, Bytes b, TimeNs *out) {
        SendHandlers h;
        h.onDelivered = [out, &eq] { *out = eq.now(); };
        net.simSend(src, dst, b, 0, kNoTag, std::move(h));
    };
    send(0, 2, bytes, &t_a);
    send(0, 1, bytes, &t_b);
    send(1, 2, bytes / 2.0, &t_c);
    send(1, 2, bytes / 2.0, &t_d);
    eq.run();

    EXPECT_NEAR(t_b, 15000.0, 1e-6);
    EXPECT_NEAR(t_c, 15000.0, 1e-6);
    EXPECT_NEAR(t_d, 15000.0, 1e-6);
    EXPECT_NEAR(t_a, 20000.0, 1e-6);
}

} // namespace
} // namespace astra
