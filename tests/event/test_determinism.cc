/**
 * @file
 * Determinism regression tests for the event core.
 *
 * The documented guarantee: events fire in nondecreasing time, equal
 * timestamps fire in insertion order, and two identical runs produce
 * byte-identical execution traces. These tests exercise the bucketed
 * queue's corner cases directly — equal-timestamp runs, nested
 * zero-delay scheduling, the far-future overflow heap, window
 * advancement — and cross-check against a plain stable sort.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "collective/engine.h"
#include "common/rng.h"
#include "event/event_queue.h"
#include "network/network_api.h"
#include "topology/topology.h"

namespace astra {
namespace {

using namespace astra::literals;

/** One executed event in a recorded trace. */
struct TraceEntry
{
    TimeNs when;
    uint64_t label;
    bool operator==(const TraceEntry &) const = default;
};

/**
 * Pseudo-random self-scheduling workload: every event may schedule
 * up to three follow-ups spanning the zero-delay FIFO, the near
 * window, and the overflow heap. Returns the full execution trace.
 */
std::vector<TraceEntry>
runChaosWorkload(uint64_t seed, int initial, int max_events)
{
    EventQueue eq;
    Rng rng(seed);
    std::vector<TraceEntry> trace;
    int budget = max_events;
    uint64_t next_label = 0;

    // Delay palette: FIFO hit, same-bucket, near window, window edge,
    // far overflow.
    auto pick_delay = [&rng]() -> TimeNs {
        switch (rng.uniformInt(0, 4)) {
          case 0: return 0.0;
          case 1: return rng.uniform(0.0, 64.0);
          case 2: return rng.uniform(64.0, 10000.0);
          case 3: return rng.uniform(10000.0, 70000.0);
          default: return rng.uniform(70000.0, 5.0 * kSec);
        }
    };

    struct Ctx
    {
        EventQueue &eq;
        Rng &rng;
        std::vector<TraceEntry> &trace;
        int &budget;
        uint64_t &next_label;
        std::function<void(uint64_t)> fire;
        std::function<TimeNs()> pick;
    };
    Ctx ctx{eq, rng, trace, budget, next_label, {}, pick_delay};
    ctx.fire = [&ctx](uint64_t label) {
        ctx.trace.push_back({ctx.eq.now(), label});
        if (ctx.budget <= 0)
            return;
        int fanout = static_cast<int>(ctx.rng.uniformInt(0, 3));
        for (int i = 0; i < fanout && ctx.budget > 0; ++i) {
            --ctx.budget;
            uint64_t child = ctx.next_label++;
            ctx.eq.schedule(ctx.pick(),
                            [&ctx, child] { ctx.fire(child); });
        }
    };

    for (int i = 0; i < initial; ++i) {
        --budget;
        uint64_t label = next_label++;
        eq.schedule(pick_delay(), [&ctx, label] { ctx.fire(label); });
    }
    eq.run();
    return trace;
}

TEST(EventCoreDeterminism, IdenticalRunsProduceIdenticalTraces)
{
    std::vector<TraceEntry> a = runChaosWorkload(0xA5A5, 64, 20000);
    std::vector<TraceEntry> b = runChaosWorkload(0xA5A5, 64, 20000);
    ASSERT_GT(a.size(), 10000u);
    EXPECT_EQ(a, b);

    // Time never decreases.
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].when, a[i - 1].when);
}

TEST(EventCoreDeterminism, FinalStateMatchesAcrossRuns)
{
    EventQueue q1, q2;
    for (EventQueue *eq : {&q1, &q2}) {
        Rng rng(7);
        for (int i = 0; i < 5000; ++i)
            eq->schedule(rng.uniform(0.0, 1.0 * kSec), [] {});
        eq->run();
    }
    EXPECT_DOUBLE_EQ(q1.now(), q2.now());
    EXPECT_EQ(q1.executedEvents(), q2.executedEvents());
    EXPECT_EQ(q1.executedEvents(), 5000u);
}

TEST(EventCoreDeterminism, MatchesStableSortReference)
{
    // Schedule everything up front, then verify the firing order is
    // exactly a stable sort by time (ties resolved by insertion).
    Rng rng(0xBEEF);
    const int n = 20000;
    std::vector<TimeNs> when(n);
    for (int i = 0; i < n; ++i) {
        // Coarse quantization forces plenty of exact ties.
        when[static_cast<size_t>(i)] =
            double(rng.uniformInt(0, 500)) * 123.0 +
            (rng.uniformInt(0, 3) == 0 ? 2.0 * kSec : 0.0);
    }

    EventQueue eq;
    std::vector<int> fired;
    fired.reserve(n);
    for (int i = 0; i < n; ++i)
        eq.scheduleAt(when[static_cast<size_t>(i)],
                      [&fired, i] { fired.push_back(i); });
    eq.run();

    std::vector<int> expected(n);
    std::iota(expected.begin(), expected.end(), 0);
    std::stable_sort(expected.begin(), expected.end(),
                     [&when](int a, int b) {
                         return when[static_cast<size_t>(a)] <
                                when[static_cast<size_t>(b)];
                     });
    EXPECT_EQ(fired, expected);
}

TEST(EventCoreDeterminism, CollectiveRunsAreReproducible)
{
    // End-to-end: two simulations of the same collective produce the
    // same finish time, event count, and traffic accounting.
    Topology topo({{BlockType::Ring, 4, 56.0, 500.0},
                   {BlockType::Switch, 8, 25.0, 700.0}});
    CollectiveRequest req =
        CollectiveRequest::overDims(CollectiveType::AllReduce, 8_MiB);
    req.chunks = 4;

    TimeNs finish[2];
    uint64_t events[2];
    std::vector<double> sent[2];
    for (int r = 0; r < 2; ++r) {
        EventQueue eq;
        auto net =
            makeNetwork(NetworkBackendKind::Analytical, eq, topo);
        CollectiveEngine engine(*net);
        CollectiveRunResult res = runCollective(engine, req);
        finish[r] = res.finish;
        events[r] = eq.executedEvents();
        sent[r] = res.sentPerDim;
    }
    EXPECT_EQ(finish[0], finish[1]);
    EXPECT_EQ(events[0], events[1]);
    EXPECT_EQ(sent[0], sent[1]);
}

TEST(EventCoreStress, MillionEventsWithTiesAndOverflow)
{
    // 1M events: heavy same-timestamp batches (FIFO + run promotion),
    // near-window spread, and a far-future overflow tail that forces
    // repeated window re-basing.
    EventQueue eq;
    eq.reserve(1 << 16);
    const int kBatches = 1000;
    const int kPerBatch = 800;   // same-timestamp ties.
    const int kScattered = 150000;
    const int kFar = 50000;
    uint64_t executed_payload = 0;
    std::vector<int> batch_order;
    batch_order.reserve(kPerBatch);

    Rng rng(0x5EED);
    for (int b = 0; b < kBatches; ++b) {
        TimeNs t = double(b) * 333.33;
        for (int i = 0; i < kPerBatch; ++i) {
            eq.scheduleAt(t, [&executed_payload, &batch_order, b, i] {
                ++executed_payload;
                if (b == 499)
                    batch_order.push_back(i);
            });
        }
    }
    for (int i = 0; i < kScattered; ++i) {
        eq.schedule(rng.uniform(0.0, 400000.0),
                    [&executed_payload] { ++executed_payload; });
    }
    for (int i = 0; i < kFar; ++i) {
        // Well past the bucket window: exercises the overflow heap and
        // its migration on window advance.
        eq.schedule(rng.uniform(1.0 * kSec, 50.0 * kSec),
                    [&executed_payload] { ++executed_payload; });
    }

    uint64_t total = uint64_t(kBatches) * kPerBatch + kScattered + kFar;
    EXPECT_EQ(eq.pending(), total);
    eq.run();
    EXPECT_EQ(eq.executedEvents(), total);
    EXPECT_EQ(executed_payload, total);

    // Ties fired in insertion order.
    ASSERT_EQ(batch_order.size(), static_cast<size_t>(kPerBatch));
    for (int i = 0; i < kPerBatch; ++i)
        EXPECT_EQ(batch_order[static_cast<size_t>(i)], i);
}

TEST(EventCoreStress, ResetAfterHeavyLoadIsReusable)
{
    EventQueue eq;
    for (int i = 0; i < 100000; ++i)
        eq.schedule(double(i % 977) * 41.0, [] {});
    eq.runUntil(10000.0);
    EXPECT_GT(eq.pending(), 0u);
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_DOUBLE_EQ(eq.now(), 0.0);
    EXPECT_EQ(eq.executedEvents(), 0u);

    // The queue keeps working (and stays ordered) after reset.
    std::vector<int> order;
    eq.schedule(5.0, [&order] { order.push_back(1); });
    eq.schedule(1.0, [&order] { order.push_back(0); });
    eq.schedule(1.0 * kSec, [&order] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

} // namespace
} // namespace astra
