/** @file Unit tests for the zero-allocation event callback. */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "event/inline_event.h"

namespace astra {
namespace {

TEST(InlineEvent, DefaultIsEmpty)
{
    InlineEvent ev;
    EXPECT_FALSE(static_cast<bool>(ev));
    InlineEvent null_ev(nullptr);
    EXPECT_FALSE(static_cast<bool>(null_ev));
}

TEST(InlineEvent, SmallCaptureStaysInline)
{
    int fired = 0;
    int a = 1, b = 2, c = 3, d = 4;
    InlineEvent ev([&fired, a, b, c, d] { fired = a + b + c + d; });
    EXPECT_TRUE(ev.isInline());
    ev();
    EXPECT_EQ(fired, 10);
}

TEST(InlineEvent, HotPathClosureShapeIsInline)
{
    // The collective engine's delivery closure: this-like pointer,
    // two 64-bit ids, two ints. Must never allocate.
    uint64_t inst_id = 42;
    void *self = nullptr;
    int chunk = 1, rank = 7;
    size_t phase = 3;
    uint64_t sink = 0;
    size_t live_before = CallbackPool::outstanding();
    InlineEvent ev([&sink, self, inst_id, rank, chunk, phase] {
        sink = inst_id + uint64_t(rank) + uint64_t(chunk) + phase +
               (self != nullptr);
    });
    EXPECT_TRUE(ev.isInline());
    EXPECT_EQ(CallbackPool::outstanding(), live_before);
    ev();
    EXPECT_EQ(sink, 53u);
}

TEST(InlineEvent, LargeCaptureUsesPool)
{
    size_t live_before = CallbackPool::outstanding();
    double payload[16] = {};
    payload[15] = 4.0;
    double sink = 0.0;
    {
        InlineEvent ev([&sink, payload] { sink = payload[15]; });
        EXPECT_FALSE(ev.isInline());
        EXPECT_EQ(CallbackPool::outstanding(), live_before + 1);
        ev();
    }
    EXPECT_DOUBLE_EQ(sink, 4.0);
    EXPECT_EQ(CallbackPool::outstanding(), live_before);
}

TEST(InlineEvent, PoolRecyclesBlocks)
{
    double payload[16] = {};
    // Warm the free list.
    { InlineEvent warm([payload] { (void)payload; }); }
    uint64_t heap_before = CallbackPool::heapAllocs();
    for (int i = 0; i < 1000; ++i) {
        InlineEvent ev([payload] { (void)payload; });
        EXPECT_FALSE(ev.isInline());
    }
    // Steady-state churn of identical-size captures never returns to
    // the system heap.
    EXPECT_EQ(CallbackPool::heapAllocs(), heap_before);
}

TEST(InlineEvent, MoveTransfersOwnership)
{
    int fired = 0;
    InlineEvent a([&fired] { ++fired; });
    InlineEvent b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(fired, 1);

    InlineEvent c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(fired, 2);
}

TEST(InlineEvent, MovePooledTransfersWithoutCopy)
{
    size_t live_before = CallbackPool::outstanding();
    double payload[16] = {};
    payload[0] = 7.0;
    double sink = 0.0;
    InlineEvent a([&sink, payload] { sink = payload[0]; });
    EXPECT_EQ(CallbackPool::outstanding(), live_before + 1);
    InlineEvent b(std::move(a));
    // Still exactly one live block: the move re-seated the pointer.
    EXPECT_EQ(CallbackPool::outstanding(), live_before + 1);
    b();
    EXPECT_DOUBLE_EQ(sink, 7.0);
    b = nullptr;
    EXPECT_EQ(CallbackPool::outstanding(), live_before);
}

TEST(InlineEvent, AcceptsMoveOnlyCallable)
{
    // std::function cannot hold this; InlineEvent must.
    auto owned = std::make_unique<int>(99);
    int sink = 0;
    InlineEvent ev(
        [&sink, owned = std::move(owned)] { sink = *owned; });
    ev();
    EXPECT_EQ(sink, 99);
}

TEST(InlineEvent, NonTriviallyMovableInlineCapture)
{
    // A vector capture fits inline (24 B) but needs real move/destroy
    // semantics through the vtable.
    std::vector<int> payload{1, 2, 3};
    int sink = 0;
    InlineEvent a([&sink, payload = std::move(payload)] {
        sink = payload[2];
    });
    EXPECT_TRUE(a.isInline());
    InlineEvent b(std::move(a));
    b();
    EXPECT_EQ(sink, 3);
}

TEST(InlineEvent, AssignCallableReplacesPrevious)
{
    int first = 0, second = 0;
    InlineEvent ev([&first] { ++first; });
    ev = [&second] { ++second; };
    ev();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
    ev = nullptr;
    EXPECT_FALSE(static_cast<bool>(ev));
}

TEST(InlineEvent, NestedEventCaptureFallsBackToPool)
{
    // A closure owning another InlineEvent (a completion chain, the
    // shape Sys and the network wrappers produce) exceeds the inline
    // budget and must round-trip through the pool correctly.
    size_t live_before = CallbackPool::outstanding();
    int fired = 0;
    InlineEvent inner([&fired] { ++fired; });
    InlineEvent outer([inner = std::move(inner)]() mutable { inner(); });
    EXPECT_FALSE(outer.isInline());
    EXPECT_EQ(CallbackPool::outstanding(), live_before + 1);
    outer();
    EXPECT_EQ(fired, 1);
    outer = nullptr;
    EXPECT_EQ(CallbackPool::outstanding(), live_before);
}

TEST(CallbackPool, StateIsPerThread)
{
    // The threading contract (file comment): each thread has its own
    // pool, so pooled allocations on a worker never perturb another
    // thread's counters — the property the sweep batch runner relies
    // on to run simulations concurrently.
    size_t live_before = CallbackPool::outstanding();
    uint64_t heap_before = CallbackPool::heapAllocs();

    CallbackPool::Stats worker_during{};
    CallbackPool::Stats worker_after{};
    std::thread worker([&] {
        EXPECT_EQ(CallbackPool::outstanding(), 0u); // fresh pool.
        double payload[16] = {};
        double sink = 0.0;
        InlineEvent ev([&sink, payload] { sink = payload[0]; });
        EXPECT_FALSE(ev.isInline());
        worker_during = CallbackPool::stats();
        ev = nullptr;
        worker_after = CallbackPool::stats();
    });
    worker.join();

    EXPECT_EQ(worker_during.outstanding, 1u);
    EXPECT_GE(worker_during.heapAllocs, 1u);
    EXPECT_EQ(worker_after.outstanding, 0u);
    EXPECT_EQ(worker_after.cached, 1u); // block back on its free list.

    // This thread's pool never noticed.
    EXPECT_EQ(CallbackPool::outstanding(), live_before);
    EXPECT_EQ(CallbackPool::heapAllocs(), heap_before);
}

} // namespace
} // namespace astra
