/** @file Unit tests for the discrete-event simulation core. */
#include <gtest/gtest.h>

#include <vector>

#include "event/event_queue.h"

namespace astra {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30.0, [&] { order.push_back(3); });
    eq.schedule(10.0, [&] { order.push_back(1); });
    eq.schedule(20.0, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 30.0);
}

TEST(EventQueue, StableForEqualTimestamps)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5.0, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<double> times;
    eq.schedule(1.0, [&] {
        times.push_back(eq.now());
        eq.schedule(2.0, [&] {
            times.push_back(eq.now());
            eq.schedule(3.0, [&] { times.push_back(eq.now()); });
        });
    });
    eq.run();
    ASSERT_EQ(times.size(), 3u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 3.0);
    EXPECT_DOUBLE_EQ(times[2], 6.0);
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10.0, [&] { ++fired; });
    eq.schedule(20.0, [&] { ++fired; });
    eq.schedule(30.0, [&] { ++fired; });
    eq.runUntil(20.0);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(eq.now(), 20.0);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] { ++fired; });
    eq.schedule(2.0, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ZeroDelayFiresAtCurrentTime)
{
    EventQueue eq;
    eq.schedule(5.0, [&] {
        eq.schedule(0.0, [&] { EXPECT_DOUBLE_EQ(eq.now(), 5.0); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(eq.now(), 5.0);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 42; ++i)
        eq.schedule(double(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 42u);
}

TEST(EventQueue, ScheduleIntoGapAfterRunUntil)
{
    // runUntil() stopping inside a gap must not prevent later events
    // from being scheduled between `until` and the next pending event
    // (the bucket window has already advanced to the far event).
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(10.0, [&] { order.push_back(0); });
    eq.scheduleAt(1e9, [&] { order.push_back(3); });
    eq.runUntil(1000.0);
    EXPECT_DOUBLE_EQ(eq.now(), 1000.0);
    // Both inside the gap, one far beyond the original window.
    eq.scheduleAt(2000.0, [&] { order.push_back(1); });
    eq.scheduleAt(5e8, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 1e9);
}

TEST(EventQueue, ReserveDoesNotDisturbPending)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(3.0, [&] { ++fired; });
    eq.reserve(4096);
    eq.schedule(1.0, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(10.0, [] {});
    eq.run();
    eq.reset();
    EXPECT_DOUBLE_EQ(eq.now(), 0.0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executedEvents(), 0u);
}

} // namespace
} // namespace astra
